# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench experiments fuzz verify lint lint-baseline tools clean

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Domain static analysis (doc/LINT.md): determinism, RNG ownership,
# float comparisons, hot-path allocation budgets. Exits 1 on any
# finding that is neither suppressed in source nor baselined.
lint:
	$(GO) run ./cmd/mpg-lint ./...

# Absorb all current findings into lint.baseline.json. Use sparingly:
# the committed baseline is empty and is supposed to stay that way.
lint-baseline:
	$(GO) run ./cmd/mpg-lint -write-baseline ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation with pass/fail verdicts.
experiments: tools
	bin/mpg-experiments

fuzz:
	$(GO) test -fuzz=FuzzDecoder -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzTextReader -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzTextRoundTrip -fuzztime=30s ./internal/trace

# Differential verification: graph traversal vs the DES oracle,
# metamorphic properties, trace/graph linter (doc/VERIFY.md).
verify:
	$(GO) run ./cmd/mpg-verify -seed 1 -n 200

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
