# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench experiments fuzz verify tools clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation with pass/fail verdicts.
experiments: tools
	bin/mpg-experiments

fuzz:
	$(GO) test -fuzz=FuzzDecoder -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzTextReader -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzTextRoundTrip -fuzztime=30s ./internal/trace

# Differential verification: graph traversal vs the DES oracle,
# metamorphic properties, trace/graph linter (doc/VERIFY.md).
verify:
	$(GO) run ./cmd/mpg-verify -seed 1 -n 200

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
