// Benchmark harness regenerating every figure and experiment of the
// paper's evaluation, plus the ablations called out in DESIGN.md.
// Each benchmark reports the experiment's headline numbers through
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction run; EXPERIMENTS.md records the paper-vs-measured
// comparison.
package mpgraph_test

import (
	"fmt"
	"testing"

	"mpgraph"
	"mpgraph/internal/baseline"
	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/microbench"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// mustTrace runs a workload and returns its trace set.
func mustTrace(b *testing.B, name string, nranks int, opts workloads.Options, seed uint64) *trace.Set {
	b.Helper()
	prog, err := workloads.BuildByName(name, opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: nranks, Seed: seed}}, prog)
	if err != nil {
		b.Fatal(err)
	}
	set, err := res.TraceSet()
	if err != nil {
		b.Fatal(err)
	}
	return set
}

func mustAnalyze(b *testing.B, set *trace.Set, model *core.Model) *core.Result {
	b.Helper()
	res, err := core.Analyze(set, model, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig1TraceGeneration measures the tracing substrate itself:
// generating the alternating compute/messaging phase structure of
// Fig. 1 for a 32-rank halo-exchange run. Metric: traced events/sec.
func BenchmarkFig1TraceGeneration(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		prog, err := workloads.BuildByName("stencil1d", workloads.Options{Iterations: 10})
		if err != nil {
			b.Fatal(err)
		}
		res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 32, Seed: uint64(i)}}, prog)
		if err != nil {
			b.Fatal(err)
		}
		events = res.Stats.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkFig2Eq1Propagation exercises the blocking send/receive
// subgraph (Fig. 2 / Eq. 1) at scale: a token ring is pure blocking
// pairs. Metric: analyzed events/sec and the propagated delay.
func BenchmarkFig2Eq1Propagation(b *testing.B) {
	model := &core.Model{
		OSNoise:    dist.Exponential{MeanValue: 100},
		MsgLatency: dist.Exponential{MeanValue: 300},
		PerByte:    dist.Constant{C: 0.01},
	}
	var res *core.Result
	for i := 0; i < b.N; i++ {
		set := mustTrace(b, "tokenring", 32, workloads.Options{Iterations: 20}, 1)
		res = mustAnalyze(b, set, model)
	}
	b.ReportMetric(float64(res.Events)/b.Elapsed().Seconds()*float64(b.N), "events/s")
	b.ReportMetric(res.MaxFinalDelay, "max-delay-cycles")
}

// BenchmarkFig3Eq2Propagation exercises the nonblocking pair + wait
// subgraph (Fig. 3 / Eq. 2): the 1-D stencil is isend/irecv/waitall
// traffic.
func BenchmarkFig3Eq2Propagation(b *testing.B) {
	model := &core.Model{
		OSNoise:    dist.Exponential{MeanValue: 100},
		MsgLatency: dist.Exponential{MeanValue: 300},
	}
	var res *core.Result
	for i := 0; i < b.N; i++ {
		set := mustTrace(b, "stencil1d", 32, workloads.Options{Iterations: 20}, 2)
		res = mustAnalyze(b, set, model)
	}
	b.ReportMetric(res.MaxFinalDelay, "max-delay-cycles")
}

// BenchmarkFig4AllReduce compares the paper's compact collective model
// (Fig. 4) with the explicit butterfly construction across world
// sizes — both the analysis cost and the predicted delay, the paper's
// space/time-efficiency argument for the approximation.
func BenchmarkFig4AllReduce(b *testing.B) {
	for _, p := range []int{8, 32, 128} {
		for _, mode := range []core.CollectiveMode{core.CollectiveApprox, core.CollectiveExplicit} {
			b.Run(fmt.Sprintf("p=%d/%s", p, mode), func(b *testing.B) {
				model := &core.Model{
					OSNoise:     dist.Exponential{MeanValue: 50},
					MsgLatency:  dist.Exponential{MeanValue: 200},
					Collectives: mode,
				}
				var res *core.Result
				for i := 0; i < b.N; i++ {
					set := mustTrace(b, "cg", p, workloads.Options{Iterations: 10}, 3)
					res = mustAnalyze(b, set, model)
				}
				b.ReportMetric(res.MaxFinalDelay, "max-delay-cycles")
			})
		}
	}
}

// BenchmarkFig5DOTExport regenerates the Fig. 5 artifact: the
// materialized graph and its Graphviz rendering for a small
// blocking-only trace.
func BenchmarkFig5DOTExport(b *testing.B) {
	var dotLen int
	for i := 0; i < b.N; i++ {
		set := mustTrace(b, "tokenring", 4, workloads.Options{Iterations: 3}, 4)
		g, err := core.BuildGraph(set)
		if err != nil {
			b.Fatal(err)
		}
		dotLen = len(g.DOT("fig5"))
	}
	b.ReportMetric(float64(dotLen), "dot-bytes")
}

// BenchmarkSec61TokenRingSweep is the paper's quantitative experiment:
// 128 ranks, 10 ring traversals, constant per-message perturbation
// swept 0..700 by 100. The reported slope metric is the paper's
// "traversals × p" (expected 1280).
func BenchmarkSec61TokenRingSweep(b *testing.B) {
	const ranks, traversals = 128, 10
	var fit dist.LinearFit
	for i := 0; i < b.N; i++ {
		var xs, ys []float64
		for c := 0.0; c <= 700; c += 100 {
			set := mustTrace(b, "tokenring", ranks, workloads.Options{Iterations: traversals}, 5)
			res := mustAnalyze(b, set, &core.Model{MsgLatency: dist.Constant{C: c}})
			xs = append(xs, c)
			ys = append(ys, res.MaxFinalDelay)
		}
		fit = dist.FitLinear(xs, ys)
	}
	b.ReportMetric(fit.Slope, "slope-cycles-per-unit")
	b.ReportMetric(float64(traversals*ranks), "paper-expected-slope")
	b.ReportMetric(fit.R2, "R2")
}

// BenchmarkAblationWindowSizes measures the streaming builder's
// scheduling fairness: smaller bursts keep the matching window tiny at
// a modest scheduling cost (§4.2's bounded-memory claim).
func BenchmarkAblationWindowSizes(b *testing.B) {
	for _, burst := range []int{1, 8, 64, 1024} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			var hw int
			for i := 0; i < b.N; i++ {
				set := mustTrace(b, "stencil1d", 16, workloads.Options{Iterations: 50}, 6)
				res, err := core.Analyze(set, &core.Model{}, core.Options{Burst: burst})
				if err != nil {
					b.Fatal(err)
				}
				hw = res.WindowHighWater
			}
			b.ReportMetric(float64(hw), "window-high-water")
		})
	}
}

// BenchmarkAblationEmpiricalVsAnalytic compares the two Section 5
// parameterization paths on identical microbenchmark data: sampling
// cost and resulting delay prediction.
func BenchmarkAblationEmpiricalVsAnalytic(b *testing.B) {
	// One shared microbenchmark data set.
	samples, err := microbench.FTQ(machine.Config{
		NRanks: 2, Seed: 7, Noise: dist.Exponential{MeanValue: 150},
	}, 10_000, 2000)
	if err != nil {
		b.Fatal(err)
	}
	empirical := dist.NewEmpirical(samples)
	fitted, err := dist.FitExponential(samples)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		noise dist.Distribution
	}{
		{"empirical", empirical},
		{"fitted-exponential", fitted},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				set := mustTrace(b, "cg", 16, workloads.Options{Iterations: 10}, 8)
				res = mustAnalyze(b, set, &core.Model{Seed: 9, OSNoise: tc.noise})
			}
			b.ReportMetric(res.MaxFinalDelay, "max-delay-cycles")
		})
	}
}

// BenchmarkAblationGraphVsDES compares the graph-traversal analyzer
// with the Dimemas-style DES replayer on identical traces: analysis
// cost (ns/op) and predicted makespan growth for the same latency
// bump.
func BenchmarkAblationGraphVsDES(b *testing.B) {
	const delta = 2000
	b.Run("graph", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			set := mustTrace(b, "tokenring", 64, workloads.Options{Iterations: 10}, 10)
			res = mustAnalyze(b, set, &core.Model{MsgLatency: dist.Constant{C: delta}})
		}
		b.ReportMetric(res.MakespanDelay, "makespan-growth")
	})
	b.Run("des-replay", func(b *testing.B) {
		var growth float64
		for i := 0; i < b.N; i++ {
			base, err := baseline.Replay(
				mustTrace(b, "tokenring", 64, workloads.Options{Iterations: 10}, 10),
				baseline.Params{Latency: 1000, BytesPerCycle: 1})
			if err != nil {
				b.Fatal(err)
			}
			bumped, err := baseline.Replay(
				mustTrace(b, "tokenring", 64, workloads.Options{Iterations: 10}, 10),
				baseline.Params{Latency: 1000 + delta, BytesPerCycle: 1})
			if err != nil {
				b.Fatal(err)
			}
			growth = float64(bumped.Makespan - base.Makespan)
		}
		b.ReportMetric(growth, "makespan-growth")
	})
}

// BenchmarkAblationCollectiveModels scales the collective-model
// comparison (approx hub vs explicit pattern) over world size on a
// collective-dominated workload.
func BenchmarkAblationCollectiveModels(b *testing.B) {
	for _, p := range []int{16, 64, 256} {
		for _, mode := range []core.CollectiveMode{core.CollectiveApprox, core.CollectiveExplicit} {
			b.Run(fmt.Sprintf("p=%d/%s", p, mode), func(b *testing.B) {
				model := &core.Model{
					OSNoise:     dist.Exponential{MeanValue: 100},
					MsgLatency:  dist.Exponential{MeanValue: 100},
					Collectives: mode,
				}
				var res *core.Result
				for i := 0; i < b.N; i++ {
					set := mustTrace(b, "bsp", p, workloads.Options{Iterations: 5}, 11)
					res = mustAnalyze(b, set, model)
				}
				b.ReportMetric(res.MaxFinalDelay, "max-delay-cycles")
			})
		}
	}
}

// BenchmarkExtensionNegativeNoise is the paper's Section 7 future-work
// analysis: trace on a noisy platform, then model a *quieter* one with
// negative deltas under the order-preservation guard.
func BenchmarkExtensionNegativeNoise(b *testing.B) {
	mcfg := machine.Config{NRanks: 16, Seed: 12, Noise: dist.Exponential{MeanValue: 300}}
	model := &core.Model{
		Seed:          13,
		OSNoise:       dist.Constant{C: -150}, // remove ~half the noise
		AllowNegative: true,
	}
	var res *core.Result
	for i := 0; i < b.N; i++ {
		prog, err := workloads.BuildByName("cg", workloads.Options{Iterations: 10})
		if err != nil {
			b.Fatal(err)
		}
		run, err := mpi.Run(mpi.Config{Machine: mcfg}, prog)
		if err != nil {
			b.Fatal(err)
		}
		set, err := run.TraceSet()
		if err != nil {
			b.Fatal(err)
		}
		res = mustAnalyze(b, set, model)
	}
	b.ReportMetric(res.MeanFinalDelay, "mean-delay-cycles")
	b.ReportMetric(float64(res.OrderViolations), "order-violations-clamped")
}

// BenchmarkAnalyzerThroughput is the engineering headline: events per
// second through the streaming builder at 128 ranks (no benchmark in
// the paper, but the §6 scalability claim).
func BenchmarkAnalyzerThroughput(b *testing.B) {
	model := &core.Model{
		OSNoise:    dist.Exponential{MeanValue: 100},
		MsgLatency: dist.Exponential{MeanValue: 100},
	}
	set := mustTrace(b, "stencil1d", 128, workloads.Options{Iterations: 100}, 14)
	mem := memify(b, set)
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		s, err := trace.SetFromMem(mem)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Analyze(s, model, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// replayBenchSet is the 64-rank sweep workload behind the
// compile-once acceptance pair below.
func replayBenchSet(b *testing.B) *trace.Set {
	return mustTrace(b, "stencil1d", 64, workloads.Options{Iterations: 10, CollEvery: 4}, 18)
}

// replayBenchModel is one Monte Carlo trial's perturbation, mixing all
// three sampled delta classes so both engines pay representative
// sampling and kernel costs.
func replayBenchModel(trial int) *core.Model {
	return &core.Model{
		Seed:       18 + uint64(trial),
		OSNoise:    dist.Exponential{MeanValue: 300},
		MsgLatency: dist.Exponential{MeanValue: 500},
		PerByte:    dist.Constant{C: 0.5},
	}
}

// BenchmarkReplayStreaming is the per-trial cost of re-running the
// streaming analyzer over a snapshot, the pre-compile Monte Carlo hot
// path. Its compiled counterpart below must beat it by ≥2x (see
// BENCH_replay.json for the recorded datapoint).
func BenchmarkReplayStreaming(b *testing.B) {
	snap, err := trace.NewSnapshot(replayBenchSet(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, release := snap.Acquire()
		_, err := core.Analyze(s, replayBenchModel(i), core.Options{})
		release()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayCompiled replays the same trials over the compiled
// program: the matcher ran once at compile time, so each iteration is
// a single pass over the flat op tape with pooled buffers.
func BenchmarkReplayCompiled(b *testing.B) {
	prog, err := core.Compile(replayBenchSet(b), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReplayCompiled(prog, replayBenchModel(i), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayBatch replays the same Monte Carlo trials K lanes at
// a time: one decode of each tape op fans its delay update across K
// models, so per-replay cost amortizes the op-dispatch and memory-walk
// overhead ReplayCompiled pays per trial. Lanes are byte-identical to
// standalone replays (see TestReplayBatchMatchesSingle); the per-op
// metric here is ns per *replay*, i.e. batch walk time divided by K.
func BenchmarkReplayBatch(b *testing.B) {
	prog, err := core.Compile(replayBenchSet(b), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, lanes := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			models := make([]*core.Model, lanes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := range models {
					models[k] = replayBenchModel(i*lanes + k)
				}
				if _, err := core.ReplayBatch(prog, models, core.BatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			nsPerReplay := float64(b.Elapsed().Nanoseconds()) / float64(b.N*lanes)
			b.ReportMetric(nsPerReplay, "ns/replay")
		})
	}
}

// memify drains a set into reusable in-memory traces.
func memify(b *testing.B, set *trace.Set) []*trace.MemTrace {
	b.Helper()
	out := make([]*trace.MemTrace, set.NRanks())
	for r := 0; r < set.NRanks(); r++ {
		m, err := trace.ReadAll(set.Rank(r))
		if err != nil {
			b.Fatal(err)
		}
		m.Hdr = set.Rank(r).Header()
		out[r] = m
	}
	return out
}

// sweepBenchConfig is the ≥32-point sweep behind the parallel-scaling
// benchmarks: 32 latency values, each an independent trace + replay.
func sweepBenchConfig(workers int) mpgraph.SweepConfig {
	return mpgraph.SweepConfig{
		Workload:        "tokenring",
		WorkloadOptions: workloads.Options{Iterations: 5},
		Machine:         machine.Config{NRanks: 16, Seed: 16},
		Param:           mpgraph.SweepLatency,
		From:            0, To: 775, Step: 25,
		ModelSeed: 1,
		Workers:   workers,
	}
}

func runSweepBench(b *testing.B, workers int) {
	b.Helper()
	cfg := sweepBenchConfig(workers)
	var res *mpgraph.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = mpgraph.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Points)), "sweep-points")
	b.ReportMetric(res.Fit.Slope, "slope-cycles-per-unit")
}

// BenchmarkSweepSerial is the single-worker reference for the replay
// fan-out engine; the Parallel variants below must reproduce its
// results bit-for-bit while scaling with the pool (≥3x at 8 workers on
// an 8-core runner).
func BenchmarkSweepSerial(b *testing.B)    { runSweepBench(b, 1) }
func BenchmarkSweepParallel2(b *testing.B) { runSweepBench(b, 2) }
func BenchmarkSweepParallel4(b *testing.B) { runSweepBench(b, 4) }
func BenchmarkSweepParallel8(b *testing.B) { runSweepBench(b, 8) }

// BenchmarkFacadePipeline measures the public API end to end, as a
// downstream user would drive it.
func BenchmarkFacadePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := mpgraph.Workload("tokenring", mpgraph.WorkloadOptions{Iterations: 5})
		if err != nil {
			b.Fatal(err)
		}
		run, err := mpgraph.Trace(mpgraph.RunConfig{
			Machine: mpgraph.MachineConfig{NRanks: 16, Seed: 15},
		}, prog)
		if err != nil {
			b.Fatal(err)
		}
		set, err := run.TraceSet()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mpgraph.Analyze(set, &mpgraph.Model{
			MsgLatency: dist.Constant{C: 100},
		}, mpgraph.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
