package mpgraph_test

import (
	"fmt"
	"log"

	"mpgraph"
)

// Example traces a two-rank ping on the simulated cluster and analyzes
// it with a constant per-message perturbation — the smallest complete
// use of the pipeline.
func Example() {
	run, err := mpgraph.Trace(mpgraph.RunConfig{
		Machine: mpgraph.MachineConfig{NRanks: 2, Seed: 1},
	}, func(r *mpgraph.Rank) error {
		if r.Rank() == 0 {
			r.Send(1, 0, 1024)
		} else {
			r.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mpgraph.Analyze(set, &mpgraph.Model{
		MsgLatency: mpgraph.MustParseDistribution("constant:500"),
	}, mpgraph.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// The receiver is delayed by the data-path delta, the sender by
	// data + acknowledgment (Eq. 1).
	fmt.Printf("receiver delay: %.0f cycles\n", res.Ranks[1].FinalDelay)
	fmt.Printf("sender delay:   %.0f cycles\n", res.Ranks[0].FinalDelay)
	// Output:
	// receiver delay: 500 cycles
	// sender delay:   1000 cycles
}

// ExampleWorkload runs a registered workload (the paper's token ring)
// and reports the traced message count.
func ExampleWorkload() {
	prog, err := mpgraph.Workload("tokenring", mpgraph.WorkloadOptions{Iterations: 3})
	if err != nil {
		log.Fatal(err)
	}
	run, err := mpgraph.Trace(mpgraph.RunConfig{
		Machine: mpgraph.MachineConfig{NRanks: 4, Seed: 1},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("messages: %d\n", run.Stats.Messages)
	// Output:
	// messages: 12
}

// ExampleParseDistribution shows the textual distribution specs the
// tools and library accept.
func ExampleParseDistribution() {
	d, err := mpgraph.ParseDistribution("spike:0.25,constant:1000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s mean=%.0f\n", d, d.Mean())
	// Output:
	// spike(p=0.25,constant(1000)) mean=250
}

// ExampleModel_rankOSNoise demonstrates the one-bad-node analysis:
// noise on a single rank, blame attribution identifying it everywhere.
func ExampleModel_rankOSNoise() {
	prog, err := mpgraph.Workload("tokenring", mpgraph.WorkloadOptions{Iterations: 4})
	if err != nil {
		log.Fatal(err)
	}
	run, err := mpgraph.Trace(mpgraph.RunConfig{
		Machine: mpgraph.MachineConfig{NRanks: 4, Seed: 2},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		log.Fatal(err)
	}
	perRank := make([]mpgraph.Distribution, 4)
	perRank[2] = mpgraph.MustParseDistribution("constant:300")
	res, err := mpgraph.Analyze(set, &mpgraph.Model{RankOSNoise: perRank},
		mpgraph.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	r0 := res.Ranks[0].Attr
	fmt.Printf("rank 0 blame: own=%.0f remote=%.0f\n", r0.OwnNoise, r0.RemoteNoise)
	// Output:
	// rank 0 blame: own=0 remote=3600
}
