// Command mpg-experiments regenerates the paper's evaluation: every
// figure, the Section 6.1 sweep, and the DESIGN.md ablations, each
// with a measured-vs-expected verdict. This is the one-command
// reproduction of EXPERIMENTS.md:
//
//	mpg-experiments                 # everything, paper-faithful sizes
//	mpg-experiments -quick          # reduced sizes (seconds)
//	mpg-experiments -run sec6.1     # one experiment
//	mpg-experiments -run fig5 -dot fig5.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpgraph/internal/cli"
	"mpgraph/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mpg-experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced problem sizes")
	seed := fs.Uint64("seed", 2006, "experiment seed")
	workers := fs.Int("workers", 0, "replay worker pool size (0 = GOMAXPROCS); output is identical for any value")
	replayWorkers := fs.Int("replay-workers", 1, "cores per grid replay (wavefront-slab parallel engine; splits the -workers budget; output is identical for any value)")
	only := fs.String("run", "", fmt.Sprintf("run a single experiment (%s)",
		strings.Join(experiments.IDs(), ", ")))
	dotOut := fs.String("dot", "", "write fig5's DOT artifact to this path")
	csv := fs.Bool("csv", false, "emit tables as CSV")
	md := fs.Bool("md", false, "emit tables as markdown (for EXPERIMENTS.md)")
	var of cli.ObsvFlags
	of.Register(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	of.Start(os.Stderr)
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers,
		ReplayWorkers: *replayWorkers, Metrics: of.Registry()}

	var list []experiments.Experiment
	if *only != "" {
		e, ok := experiments.Get(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", *only,
				strings.Join(experiments.IDs(), ", "))
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	failed := 0
	for _, e := range list {
		fmt.Fprintf(w, "=== %s — %s\n", e.ID, e.Title)
		out, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch {
		case *csv:
			err = out.Table.CSV(w)
		case *md:
			err = out.Table.Markdown(w)
		default:
			err = out.Table.Render(w)
		}
		if err != nil {
			return err
		}
		status := "PASS"
		if !out.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%s: %s\n\n", status, out.Verdict)
		if e.ID == "fig5" && *dotOut != "" {
			if err := os.WriteFile(*dotOut, []byte(out.Extra), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "fig5 DOT written to %s\n\n", *dotOut)
		}
	}
	if err := of.Flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape check", failed)
	}
	return nil
}
