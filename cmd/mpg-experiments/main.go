// Command mpg-experiments regenerates the paper's evaluation: every
// figure, the Section 6.1 sweep, and the DESIGN.md ablations, each
// with a measured-vs-expected verdict. This is the one-command
// reproduction of EXPERIMENTS.md:
//
//	mpg-experiments                 # everything, paper-faithful sizes
//	mpg-experiments -quick          # reduced sizes (seconds)
//	mpg-experiments -run sec6.1     # one experiment
//	mpg-experiments -run fig5 -dot fig5.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpgraph/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced problem sizes")
	seed := fs.Uint64("seed", 2006, "experiment seed")
	only := fs.String("run", "", fmt.Sprintf("run a single experiment (%s)",
		strings.Join(experiments.IDs(), ", ")))
	dotOut := fs.String("dot", "", "write fig5's DOT artifact to this path")
	csv := fs.Bool("csv", false, "emit tables as CSV")
	md := fs.Bool("md", false, "emit tables as markdown (for EXPERIMENTS.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	var list []experiments.Experiment
	if *only != "" {
		e, ok := experiments.Get(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", *only,
				strings.Join(experiments.IDs(), ", "))
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	failed := 0
	for _, e := range list {
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		out, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch {
		case *csv:
			err = out.Table.CSV(os.Stdout)
		case *md:
			err = out.Table.Markdown(os.Stdout)
		default:
			err = out.Table.Render(os.Stdout)
		}
		if err != nil {
			return err
		}
		status := "PASS"
		if !out.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s: %s\n\n", status, out.Verdict)
		if e.ID == "fig5" && *dotOut != "" {
			if err := os.WriteFile(*dotOut, []byte(out.Extra), 0o644); err != nil {
				return err
			}
			fmt.Printf("fig5 DOT written to %s\n\n", *dotOut)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape check", failed)
	}
	return nil
}
