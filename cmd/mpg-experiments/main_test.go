package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleQuick(t *testing.T) {
	if err := run([]string{"-quick", "-run", "fig2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllQuick(t *testing.T) {
	if err := run([]string{"-quick"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDOTArtifactWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig5.dot")
	if err := run([]string{"-quick", "-run", "fig5", "-dot", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatal("DOT artifact malformed")
	}
}

func TestCSVMode(t *testing.T) {
	if err := run([]string{"-quick", "-run", "ablD", "-csv"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestMarkdownMode(t *testing.T) {
	if err := run([]string{"-quick", "-run", "fig2", "-md"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}
