package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from serial (-workers 1) runs")

// goldenCases pin the exact CLI output. The goldens are generated with
// -workers 1; the tests replay each case with an 8-worker pool, so any
// scheduling-dependent byte in the output is a failure.
var goldenCases = []struct {
	name string
	args []string
}{
	{"fig2_quick", []string{"-quick", "-seed", "7", "-run", "fig2"}},
	{"sec61_quick", []string{"-quick", "-seed", "7", "-run", "sec6.1"}},
	{"abld_quick_md", []string{"-quick", "-seed", "7", "-run", "ablD", "-md"}},
}

func TestGoldenParallelMatchesSerial(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				var buf bytes.Buffer
				if err := run(append(tc.args, "-workers", "1"), &buf); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			for _, workers := range []string{"1", "8"} {
				var buf bytes.Buffer
				if err := run(append(tc.args, "-workers", workers), &buf); err != nil {
					t.Fatalf("workers=%s: %v", workers, err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("workers=%s output deviates from serial golden:\n--- got\n%s\n--- want\n%s",
						workers, buf.Bytes(), want)
				}
			}
		})
	}
}
