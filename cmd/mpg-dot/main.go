// Command mpg-dot renders a trace directory's message-passing graph in
// Graphviz DOT format — the paper's Fig. 5 artifact:
//
//	mpg-dot -traces traces/ > graph.dot && dot -Tpdf graph.dot -o graph.pdf
//
// Intended for small traces; the node count is 2× the event count.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/core"
	"mpgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-dot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-dot", flag.ContinueOnError)
	traces := fs.String("traces", "", "trace directory from mpg-trace (required)")
	title := fs.String("title", "message-passing graph", "graph title")
	maxEvents := fs.Int64("max-events", 10_000, "refuse traces with more events than this (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traces == "" {
		return fmt.Errorf("-traces is required")
	}
	set, closeFn, err := trace.OpenDir(*traces)
	if err != nil {
		return err
	}
	defer closeFn() //nolint:errcheck

	g := &core.Graph{}
	res, err := core.Analyze(set, &core.Model{}, core.Options{Graph: g})
	if err != nil {
		return err
	}
	if *maxEvents > 0 && res.Events > *maxEvents {
		return fmt.Errorf("trace has %d events (> -max-events %d); DOT output would be unreadable",
			res.Events, *maxEvents)
	}
	fmt.Print(g.DOT(*title))
	return nil
}
