package main

import (
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/workloads"
)

func writeTraces(t *testing.T, iters int) string {
	t.Helper()
	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine:  machine.Config{NRanks: 3, Seed: 1},
		TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDotRuns(t *testing.T) {
	if err := run([]string{"-traces", writeTraces(t, 2)}); err != nil {
		t.Fatal(err)
	}
}

func TestDotRequiresTraces(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -traces accepted")
	}
}

func TestDotRefusesHugeTraces(t *testing.T) {
	if err := run([]string{"-traces", writeTraces(t, 50), "-max-events", "10"}); err == nil {
		t.Fatal("oversized trace accepted")
	}
}
