package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenCritPath pins the exact -critpath-csv and -critpath-dot
// bytes for a deterministic workload (tokenring, 4 ranks, seed 1)
// under a constant-latency model. Any change to trace generation,
// graph construction, path extraction, or rendering shows up here.
// TestGoldenTimeline pins the exact -timeline export bytes for the
// same deterministic workload, and requires every engine — streaming,
// compiled, and batched at several lane widths — to reproduce them
// bit-for-bit. The timeline is a pure function of (trace, model), not
// of the machinery that replays them.
func TestGoldenTimeline(t *testing.T) {
	dir := writeTraces(t)
	golden := filepath.Join("testdata", "timeline.golden")
	engines := []struct {
		name string
		args []string
	}{
		{"streaming", []string{"-engine", "streaming"}},
		{"compiled", []string{"-engine", "compiled"}},
		{"batched-1", []string{"-engine", "batched", "-replay-lanes", "1"}},
		{"batched-4", []string{"-engine", "batched", "-replay-lanes", "4"}},
		{"batched-default", []string{"-engine", "batched"}},
	}
	for i, eng := range engines {
		out := filepath.Join(t.TempDir(), "run.trace.json")
		args := append([]string{"-traces", dir, "-latency", "constant:500",
			"-os-noise", "constant:20", "-timeline", out, "-timeline-window", "1000"}, eng.args...)
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s timeline deviates from golden (%d vs %d bytes)", eng.name, len(got), len(want))
		}
	}
}

func TestGoldenCritPath(t *testing.T) {
	dir := writeTraces(t)
	tmp := t.TempDir()
	csvPath := filepath.Join(tmp, "crit.csv")
	dotPath := filepath.Join(tmp, "crit.dot")
	if err := run([]string{"-traces", dir, "-latency", "constant:500",
		"-critpath-csv", csvPath, "-critpath-dot", dotPath}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ name, path string }{
		{"critpath_csv", csvPath},
		{"critpath_dot", dotPath},
	} {
		got, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", tc.name+".golden")
		if *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s deviates from golden:\n--- got\n%s\n--- want\n%s", tc.name, got, want)
		}
	}
}
