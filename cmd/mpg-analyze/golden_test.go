package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenCritPath pins the exact -critpath-csv and -critpath-dot
// bytes for a deterministic workload (tokenring, 4 ranks, seed 1)
// under a constant-latency model. Any change to trace generation,
// graph construction, path extraction, or rendering shows up here.
func TestGoldenCritPath(t *testing.T) {
	dir := writeTraces(t)
	tmp := t.TempDir()
	csvPath := filepath.Join(tmp, "crit.csv")
	dotPath := filepath.Join(tmp, "crit.dot")
	if err := run([]string{"-traces", dir, "-latency", "constant:500",
		"-critpath-csv", csvPath, "-critpath-dot", dotPath}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ name, path string }{
		{"critpath_csv", csvPath},
		{"critpath_dot", dotPath},
	} {
		got, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", tc.name+".golden")
		if *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s deviates from golden:\n--- got\n%s\n--- want\n%s", tc.name, got, want)
		}
	}
}
