package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpgraph/internal/dist"
)

// TestGoldenProvenance pins the sampler version this directory's
// goldens were generated with: the checked-in testdata/sampler_version
// note must match the live dist.SamplerVersion. A sampler algorithm
// change bumps the version, the goldens encode the old random stream,
// and this test fails until they are regenerated — run with -update to
// rewrite both the goldens and the note.
func TestGoldenProvenance(t *testing.T) {
	path := filepath.Join("testdata", "sampler_version")
	if *update {
		note := "# Sampler provenance: the goldens in this directory were generated\n" +
			"# with the internal/dist sampling algorithms named below. Regenerate\n" +
			"# everything with `go test -update` when dist.SamplerVersion changes.\n" +
			dist.SamplerVersion + "\n"
		if err := os.WriteFile(path, []byte(note), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing sampler provenance note (regenerate with -update): %v", err)
	}
	got := ""
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		got = line
		break
	}
	if got != dist.SamplerVersion {
		t.Fatalf("goldens were generated with sampler %q but the live sampler is %q; regenerate with -update",
			got, dist.SamplerVersion)
	}
}
