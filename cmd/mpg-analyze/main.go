// Command mpg-analyze builds the message-passing graph from a trace
// directory, injects the configured perturbations, and reports the
// per-rank delay outcome — the paper's core analysis:
//
//	mpg-analyze -traces traces/ -os-noise exponential:200 \
//	    -latency spike:0.01,constant:5000
//
// A platform signature from mpg-bench can supply the distributions:
//
//	mpg-analyze -traces traces/ -signature noisy-platform.json
//
// With -timeline the run additionally reconstructs per-rank interval
// tracks with wait-state decomposition and writes them as Perfetto
// trace-event JSON (see doc/TIMELINE.md):
//
//	mpg-analyze -traces traces/ -os-noise exponential:200 \
//	    -timeline run.trace.json -timeline-window 5000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/cli"
	"mpgraph/internal/core"
	"mpgraph/internal/microbench"
	"mpgraph/internal/report"
	"mpgraph/internal/scenario"
	"mpgraph/internal/timeline"
	"mpgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-analyze", flag.ContinueOnError)
	var mf cli.ModelFlags
	mf.Register(fs)
	traces := fs.String("traces", "", "trace directory from mpg-trace (required)")
	sigPath := fs.String("signature", "", "platform signature JSON; its empirical distributions override -os-noise/-latency")
	scenarioPath := fs.String("scenario", "", "scenario JSON bundling all model parameters (overrides individual model flags)")
	maxWindow := fs.Int("max-window", 0, "abort if the streaming window exceeds this many pending ops (0 = unbounded)")
	maxRanks := fs.Int("max-ranks", 32, "per-rank rows to print (0 = all)")
	asciiCols := fs.Int("ascii-timeline", 0, "print a per-rank activity timeline this many columns wide (0 = off)")
	tlPath := fs.String("timeline", "", "write per-rank interval tracks with wait-state decomposition as Perfetto trace-event JSON to this path")
	tlWindow := fs.Float64("timeline-window", 0, "window width in cycles for the timeline's counter tracks (0 = auto)")
	tlRanks := fs.String("timeline-ranks", "", "ranks to include in the timeline export, e.g. \"0-3,7\" (empty or \"all\" = every rank)")
	tlValidate := fs.String("timeline-validate", "", "validate an existing trace-event JSON file against the exporter's contract and exit")
	engine := fs.String("engine", "streaming", "analysis engine: streaming, compiled, batched, or parallel (all byte-identical)")
	replayLanes := fs.Int("replay-lanes", 0, "lane width for -engine batched (0 = default)")
	replayWorkers := fs.Int("replay-workers", 0, "cores for -engine parallel (0 = GOMAXPROCS); results are identical for any value")
	trajectory := fs.String("trajectory", "", "write a per-event delay CSV (rank,event,kind,orig_end,delay,region) to this path")
	history := fs.String("history", "", "append this run's summary to a JSON-lines history file (§7)")
	label := fs.String("label", "", "label for the history entry")
	critpath := fs.Bool("critpath", false, "extract the critical path behind the makespan delay and print its blame tables")
	critpathCSV := fs.String("critpath-csv", "", "write the critical path as CSV to this path (implies extraction)")
	critpathDOT := fs.String("critpath-dot", "", "write a DOT rendering of the graph with the critical path highlighted (implies extraction)")
	var of cli.ObsvFlags
	of.Register(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tlValidate != "" {
		// Standalone validation mode: check a previously exported file
		// (e.g. a CI artifact) and exit without analyzing anything.
		data, err := os.ReadFile(*tlValidate)
		if err != nil {
			return err
		}
		if msgs := timeline.Validate(data); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, m)
			}
			return fmt.Errorf("%s: %d trace-event contract violations", *tlValidate, len(msgs))
		}
		fmt.Printf("%s: valid trace-event JSON\n", *tlValidate)
		return nil
	}
	if *traces == "" {
		return fmt.Errorf("-traces is required")
	}
	switch *engine {
	case "streaming", "compiled", "batched", "parallel":
	default:
		return fmt.Errorf("unknown -engine %q (want streaming, compiled, batched, or parallel)", *engine)
	}
	if *critpathDOT != "" && *engine != "streaming" {
		return fmt.Errorf("-critpath-dot needs the graph sink; use -engine streaming")
	}
	model, err := mf.Build()
	if err != nil {
		return err
	}
	if *scenarioPath != "" {
		m, f, err := scenario.Load(*scenarioPath)
		if err != nil {
			return err
		}
		model = m
		if f.Name != "" {
			fmt.Printf("scenario %q\n", f.Name)
		}
	}
	if *sigPath != "" {
		sig, err := microbench.Load(*sigPath)
		if err != nil {
			return err
		}
		model.OSNoise = sig.NoiseEmpirical()
		model.NoiseQuantum = sig.Quantum
		model.MsgLatency = sig.LatencyJitterEmpirical()
		fmt.Printf("signature %q: noise %s; latency %s\n",
			sig.Platform, sig.NoiseSummary(), sig.LatencySummary())
	}

	if *asciiCols > 0 {
		// The ASCII chart drains its own copy of the traces.
		set, closeFn, err := trace.OpenDir(*traces)
		if err != nil {
			return err
		}
		if err := report.Timeline(os.Stdout, set, *asciiCols); err != nil {
			closeFn() //nolint:errcheck
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}

	set, closeFn, err := trace.OpenDir(*traces)
	if err != nil {
		return err
	}
	defer closeFn() //nolint:errcheck

	opts := core.Options{MaxWindow: *maxWindow, Metrics: of.Registry()}
	wantCrit := *critpath || *critpathCSV != "" || *critpathDOT != ""
	opts.RecordCritPath = wantCrit
	var graph *core.Graph
	if *critpathDOT != "" {
		graph = &core.Graph{}
		opts.Graph = graph
	}
	var tl *timeline.Timeline
	if *tlPath != "" {
		// The export draws critical-path flow arrows, so extraction is
		// forced whenever a timeline is requested.
		tl = timeline.New(0)
		opts.RecordCritPath = true
		opts.Interval = tl.Record
	}
	var trajFile *os.File
	if *trajectory != "" {
		trajFile, err = os.Create(*trajectory)
		if err != nil {
			return err
		}
		defer trajFile.Close() //nolint:errcheck
		bw := bufio.NewWriter(trajFile)
		defer bw.Flush() //nolint:errcheck
		fmt.Fprintln(bw, "rank,event,kind,orig_end,delay,region")
		opts.Trajectory = func(p core.TrajectoryPoint) {
			fmt.Fprintf(bw, "%d,%d,%s,%d,%.3f,%d\n",
				p.Rank, p.Event, trace.Kind(p.Kind), p.OrigEnd, p.Delay, p.Region)
		}
	}

	res, err := analyze(set, model, opts, *engine, *replayLanes, *replayWorkers)
	if err != nil {
		return err
	}
	if *history != "" {
		modelDesc := map[string]string{}
		if mf.OSNoise != "" {
			modelDesc["os-noise"] = mf.OSNoise
		}
		if mf.Latency != "" {
			modelDesc["latency"] = mf.Latency
		}
		if mf.PerByte != "" {
			modelDesc["per-byte"] = mf.PerByte
		}
		if *sigPath != "" {
			modelDesc["signature"] = *sigPath
		}
		entry := report.NewHistoryEntry(*label, *traces, modelDesc, res)
		entry.AttachTiming(of.DurationMS(), of.Registry().Snapshot())
		if err := report.AppendHistory(*history, entry); err != nil {
			return err
		}
	}
	if err := report.Analysis(os.Stdout, res, *maxRanks); err != nil {
		return err
	}
	if tl != nil {
		if err := report.WaitStates(os.Stdout, tl, res); err != nil {
			return err
		}
		sel, err := timeline.ParseRanks(*tlRanks, res.NRanks)
		if err != nil {
			return err
		}
		eopts := timeline.ExportOptions{
			Window:   *tlWindow,
			Ranks:    sel,
			CritPath: res.CritPath,
		}
		if of.SelfTrace != "" {
			// Embedding wall-clock spans makes the file nondeterministic,
			// so the engine process group only appears on request.
			eopts.Spans = of.Registry().Spans().Snapshot()
		}
		f, err := os.Create(*tlPath)
		if err != nil {
			return err
		}
		if err := tl.WriteJSON(f, eopts); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if wantCrit {
		if *critpath {
			if err := report.CritPath(os.Stdout, res.CritPath); err != nil {
				return err
			}
		}
		if *critpathCSV != "" {
			f, err := os.Create(*critpathCSV)
			if err != nil {
				return err
			}
			if err := report.CritPathCSV(f, res.CritPath); err != nil {
				f.Close() //nolint:errcheck
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *critpathDOT != "" {
			dot := graph.DOTWithPath("critical path", res.CritPath.Steps)
			if err := os.WriteFile(*critpathDOT, []byte(dot), 0o644); err != nil {
				return err
			}
		}
	}
	return of.Flush()
}

// analyze runs the model through the selected engine. All four
// engines are pinned byte-identical by the core equivalence suite, so
// the choice changes performance characteristics, never results: the
// compiled engine pre-flattens the schedule into an op tape, the
// parallel engine executes one replay's wavefront slabs across cores,
// and the batched engine propagates the model as lane 0 of a replay
// batch whose other lanes carry derived-seed variants (their results
// are discarded — the lane exists to exercise the SoA walk).
func analyze(set *trace.Set, model *core.Model, opts core.Options, engine string, lanes, workers int) (*core.Result, error) {
	if engine == "streaming" {
		return core.Analyze(set, model, opts)
	}
	prog, err := core.Compile(set, core.Options{MaxWindow: opts.MaxWindow, Metrics: opts.Metrics})
	if err != nil {
		return nil, err
	}
	if engine == "compiled" {
		return core.ReplayCompiled(prog, model, opts)
	}
	if engine == "parallel" {
		return core.ReplayParallel(prog, model, opts, workers)
	}
	lanes = core.PickReplayLanes(lanes, core.DefaultReplayLanes)
	models := make([]*core.Model, lanes)
	models[0] = model
	for k := 1; k < lanes; k++ {
		m := model.Clone()
		m.Seed = m.Seed*31 + uint64(k)*1000003 + 17
		models[k] = m
	}
	bopts := core.BatchOptions{Options: opts}
	if opts.Interval != nil {
		iv := opts.Interval
		bopts.Options.Interval = nil
		bopts.LaneInterval = func(lane int, p core.IntervalPoint) {
			if lane == 0 {
				iv(p)
			}
		}
	}
	if opts.Trajectory != nil {
		tj := opts.Trajectory
		bopts.Options.Trajectory = nil
		bopts.LaneTrajectory = func(lane int, p core.TrajectoryPoint) {
			if lane == 0 {
				tj(p)
			}
		}
	}
	results, err := core.ReplayBatch(prog, models, bopts)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}
