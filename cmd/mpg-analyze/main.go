// Command mpg-analyze builds the message-passing graph from a trace
// directory, injects the configured perturbations, and reports the
// per-rank delay outcome — the paper's core analysis:
//
//	mpg-analyze -traces traces/ -os-noise exponential:200 \
//	    -latency spike:0.01,constant:5000
//
// A platform signature from mpg-bench can supply the distributions:
//
//	mpg-analyze -traces traces/ -signature noisy-platform.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/cli"
	"mpgraph/internal/core"
	"mpgraph/internal/microbench"
	"mpgraph/internal/report"
	"mpgraph/internal/scenario"
	"mpgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-analyze", flag.ContinueOnError)
	var mf cli.ModelFlags
	mf.Register(fs)
	traces := fs.String("traces", "", "trace directory from mpg-trace (required)")
	sigPath := fs.String("signature", "", "platform signature JSON; its empirical distributions override -os-noise/-latency")
	scenarioPath := fs.String("scenario", "", "scenario JSON bundling all model parameters (overrides individual model flags)")
	maxWindow := fs.Int("max-window", 0, "abort if the streaming window exceeds this many pending ops (0 = unbounded)")
	maxRanks := fs.Int("max-ranks", 32, "per-rank rows to print (0 = all)")
	timeline := fs.Int("timeline", 0, "print a per-rank activity timeline this many columns wide (0 = off)")
	trajectory := fs.String("trajectory", "", "write a per-event delay CSV (rank,event,kind,orig_end,delay,region) to this path")
	history := fs.String("history", "", "append this run's summary to a JSON-lines history file (§7)")
	label := fs.String("label", "", "label for the history entry")
	critpath := fs.Bool("critpath", false, "extract the critical path behind the makespan delay and print its blame tables")
	critpathCSV := fs.String("critpath-csv", "", "write the critical path as CSV to this path (implies extraction)")
	critpathDOT := fs.String("critpath-dot", "", "write a DOT rendering of the graph with the critical path highlighted (implies extraction)")
	var of cli.ObsvFlags
	of.Register(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traces == "" {
		return fmt.Errorf("-traces is required")
	}
	model, err := mf.Build()
	if err != nil {
		return err
	}
	if *scenarioPath != "" {
		m, f, err := scenario.Load(*scenarioPath)
		if err != nil {
			return err
		}
		model = m
		if f.Name != "" {
			fmt.Printf("scenario %q\n", f.Name)
		}
	}
	if *sigPath != "" {
		sig, err := microbench.Load(*sigPath)
		if err != nil {
			return err
		}
		model.OSNoise = sig.NoiseEmpirical()
		model.NoiseQuantum = sig.Quantum
		model.MsgLatency = sig.LatencyJitterEmpirical()
		fmt.Printf("signature %q: noise %s; latency %s\n",
			sig.Platform, sig.NoiseSummary(), sig.LatencySummary())
	}

	if *timeline > 0 {
		// The timeline drains its own copy of the traces.
		set, closeFn, err := trace.OpenDir(*traces)
		if err != nil {
			return err
		}
		if err := report.Timeline(os.Stdout, set, *timeline); err != nil {
			closeFn() //nolint:errcheck
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}

	set, closeFn, err := trace.OpenDir(*traces)
	if err != nil {
		return err
	}
	defer closeFn() //nolint:errcheck

	opts := core.Options{MaxWindow: *maxWindow, Metrics: of.Registry()}
	wantCrit := *critpath || *critpathCSV != "" || *critpathDOT != ""
	opts.RecordCritPath = wantCrit
	var graph *core.Graph
	if *critpathDOT != "" {
		graph = &core.Graph{}
		opts.Graph = graph
	}
	var trajFile *os.File
	if *trajectory != "" {
		trajFile, err = os.Create(*trajectory)
		if err != nil {
			return err
		}
		defer trajFile.Close() //nolint:errcheck
		bw := bufio.NewWriter(trajFile)
		defer bw.Flush() //nolint:errcheck
		fmt.Fprintln(bw, "rank,event,kind,orig_end,delay,region")
		opts.Trajectory = func(p core.TrajectoryPoint) {
			fmt.Fprintf(bw, "%d,%d,%s,%d,%.3f,%d\n",
				p.Rank, p.Event, trace.Kind(p.Kind), p.OrigEnd, p.Delay, p.Region)
		}
	}

	res, err := core.Analyze(set, model, opts)
	if err != nil {
		return err
	}
	if *history != "" {
		modelDesc := map[string]string{}
		if mf.OSNoise != "" {
			modelDesc["os-noise"] = mf.OSNoise
		}
		if mf.Latency != "" {
			modelDesc["latency"] = mf.Latency
		}
		if mf.PerByte != "" {
			modelDesc["per-byte"] = mf.PerByte
		}
		if *sigPath != "" {
			modelDesc["signature"] = *sigPath
		}
		entry := report.NewHistoryEntry(*label, *traces, modelDesc, res)
		entry.AttachTiming(of.DurationMS(), of.Registry().Snapshot())
		if err := report.AppendHistory(*history, entry); err != nil {
			return err
		}
	}
	if err := report.Analysis(os.Stdout, res, *maxRanks); err != nil {
		return err
	}
	if wantCrit {
		if *critpath {
			if err := report.CritPath(os.Stdout, res.CritPath); err != nil {
				return err
			}
		}
		if *critpathCSV != "" {
			f, err := os.Create(*critpathCSV)
			if err != nil {
				return err
			}
			if err := report.CritPathCSV(f, res.CritPath); err != nil {
				f.Close() //nolint:errcheck
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *critpathDOT != "" {
			dot := graph.DOTWithPath("critical path", res.CritPath.Steps)
			if err := os.WriteFile(*critpathDOT, []byte(dot), 0o644); err != nil {
				return err
			}
		}
	}
	return of.Flush()
}
