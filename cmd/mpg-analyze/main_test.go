package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/microbench"
	"mpgraph/internal/mpi"
	"mpgraph/internal/report"
	"mpgraph/internal/timeline"
	"mpgraph/internal/workloads"
)

// writeTraces produces a trace directory for the tests.
func writeTraces(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine:  machine.Config{NRanks: 4, Seed: 1},
		TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAnalyzeRuns(t *testing.T) {
	dir := writeTraces(t)
	if err := run([]string{"-traces", dir, "-latency", "constant:100"}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRequiresTraces(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -traces accepted")
	}
}

func TestAnalyzeRejectsBadModel(t *testing.T) {
	dir := writeTraces(t)
	if err := run([]string{"-traces", dir, "-os-noise", "bad"}); err == nil {
		t.Fatal("bad model spec accepted")
	}
}

func TestAnalyzeWithSignature(t *testing.T) {
	dir := writeTraces(t)
	sig, err := microbench.Measure(machine.Config{
		NRanks: 2, Seed: 2,
	}, microbench.Config{FTQSamples: 50, PingPongSamples: 20, BandwidthSamples: 3}, "t")
	if err != nil {
		t.Fatal(err)
	}
	sigPath := filepath.Join(t.TempDir(), "sig.json")
	if err := sig.Save(sigPath); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-traces", dir, "-signature", sigPath}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRejectsMissingSignature(t *testing.T) {
	dir := writeTraces(t)
	if err := run([]string{"-traces", dir, "-signature", "/nonexistent.json"}); err == nil {
		t.Fatal("missing signature accepted")
	}
}

func TestMain(m *testing.M) {
	// Silence the tools' stdout noise in test logs? No — keep output;
	// go test captures it per test anyway.
	os.Exit(m.Run())
}

func TestAnalyzeWithASCIITimeline(t *testing.T) {
	dir := writeTraces(t)
	if err := run([]string{"-traces", dir, "-ascii-timeline", "60"}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeWithTimelineExport(t *testing.T) {
	dir := writeTraces(t)
	out := filepath.Join(t.TempDir(), "run.trace.json")
	if err := run([]string{"-traces", dir, "-latency", "constant:100",
		"-timeline", out, "-timeline-window", "500"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := timeline.Validate(data); len(msgs) > 0 {
		t.Fatalf("exported timeline invalid:\n%s", strings.Join(msgs, "\n"))
	}
	s := string(data)
	for _, want := range []string{`"ph":"B"`, `"ph":"s"`, `"ph":"f"`, `"cat":"critpath"`, `"parallel_efficiency"`, "wait:late-sender"} {
		if !strings.Contains(s, want) {
			t.Fatalf("exported timeline missing %s", want)
		}
	}
	// The standalone validator accepts the export and rejects garbage.
	if err := run([]string{"-timeline-validate", out}); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-timeline-validate", badPath}); err == nil {
		t.Fatal("validator accepted unbalanced trace")
	}
}

func TestAnalyzeTimelineRankFilter(t *testing.T) {
	dir := writeTraces(t)
	out := filepath.Join(t.TempDir(), "run.trace.json")
	if err := run([]string{"-traces", dir, "-latency", "constant:100",
		"-timeline", out, "-timeline-ranks", "1-2"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, `"rank 0"`) || !strings.Contains(s, `"rank 1"`) {
		t.Fatalf("rank filter not applied:\n%.400s", s)
	}
	if err := run([]string{"-traces", dir, "-timeline", out,
		"-timeline-ranks", "0-9"}); err == nil {
		t.Fatal("out-of-world rank filter accepted")
	}
}

func TestAnalyzeEngineFlag(t *testing.T) {
	dir := writeTraces(t)
	if err := run([]string{"-traces", dir, "-engine", "warp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"-traces", dir, "-engine", "compiled",
		"-critpath-dot", filepath.Join(t.TempDir(), "g.dot")}); err == nil {
		t.Fatal("-critpath-dot with compiled engine accepted")
	}
}

func TestAnalyzeSelfTrace(t *testing.T) {
	dir := writeTraces(t)
	out := filepath.Join(t.TempDir(), "self.trace.json")
	if err := run([]string{"-traces", dir, "-latency", "constant:100",
		"-selftrace", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := timeline.Validate(data); len(msgs) > 0 {
		t.Fatalf("self-trace invalid:\n%s", strings.Join(msgs, "\n"))
	}
	if !strings.Contains(string(data), `"analyze"`) {
		t.Fatalf("self-trace missing analyze span:\n%s", data)
	}
}

func TestAnalyzeWithTrajectory(t *testing.T) {
	dir := writeTraces(t)
	out := filepath.Join(t.TempDir(), "traj.csv")
	if err := run([]string{"-traces", dir, "-latency", "constant:100",
		"-trajectory", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "rank,event,kind,orig_end,delay,region\n") {
		t.Fatalf("missing header: %q", s[:60])
	}
	if !strings.Contains(s, "send") || !strings.Contains(s, "recv") {
		t.Fatal("trajectory missing event kinds")
	}
	if strings.Count(s, "\n") < 10 {
		t.Fatalf("too few trajectory rows:\n%s", s)
	}
}

func TestAnalyzeWithHistory(t *testing.T) {
	dir := writeTraces(t)
	hist := filepath.Join(t.TempDir(), "history.jsonl")
	for i := 0; i < 2; i++ {
		if err := run([]string{"-traces", dir, "-latency", "constant:100",
			"-history", hist, "-label", "unit"}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := report.LoadHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("history entries = %d", len(entries))
	}
	if entries[0].Label != "unit" || entries[0].MaxDelay <= 0 {
		t.Fatalf("entry = %+v", entries[0])
	}
	if entries[0].Model["latency"] != "constant:100" {
		t.Fatalf("model not archived: %+v", entries[0].Model)
	}
}

func TestAnalyzeWithScenario(t *testing.T) {
	dir := writeTraces(t)
	sc := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(sc, []byte(`{"name":"unit","latency":"constant:100"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-traces", dir, "-scenario", sc}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-traces", dir, "-scenario", "/missing.json"}); err == nil {
		t.Fatal("missing scenario accepted")
	}
}
