package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from serial (-workers 1) runs")

// goldenCases pin the exact CLI output. The goldens are generated with
// -workers 1; the tests replay each case with an 8-worker pool, so any
// scheduling-dependent byte in the output is a failure.
var goldenCases = []struct {
	name string
	args []string
}{
	{"latency_tokenring", []string{
		"-workload", "tokenring", "-ranks", "4", "-iters", "2",
		"-sweep", "latency", "-from", "0", "-to", "300", "-step", "100"}},
	{"ranks_trials_csv", []string{
		"-workload", "cg", "-ranks", "4", "-iters", "2",
		"-sweep", "ranks", "-from", "2", "-to", "4", "-step", "1",
		"-os-noise-mean", "150", "-trials", "5", "-csv"}},
	{"noise_baseline", []string{
		"-workload", "stencil1d", "-ranks", "3", "-iters", "2",
		"-sweep", "noise", "-from", "0", "-to", "100", "-step", "50",
		"-baseline"}},
}

func TestGoldenParallelMatchesSerial(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				var buf bytes.Buffer
				if err := run(append(tc.args, "-workers", "1"), &buf, io.Discard); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			for _, workers := range []string{"1", "8"} {
				var buf bytes.Buffer
				if err := run(append(tc.args, "-workers", workers), &buf, io.Discard); err != nil {
					t.Fatalf("workers=%s: %v", workers, err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("workers=%s output deviates from serial golden:\n--- got\n%s\n--- want\n%s",
						workers, buf.Bytes(), want)
				}
			}
		})
	}
}
