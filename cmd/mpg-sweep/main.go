// Command mpg-sweep traces a workload once per sweep point and reports
// how the analyzed delay grows as a perturbation parameter increases —
// the paper's Section 6.1 experiment and its generalizations:
//
//	mpg-sweep -workload tokenring -ranks 128 -iters 10 \
//	    -sweep latency -from 0 -to 700 -step 100
//
// reproduces the paper's 128-processor study (constant per-message
// perturbation swept from 0 to 700 cycles) and prints the linear fit
// the paper describes ("runtime increased by approximately
// traversals × increment × p"). With -baseline the same sweep also
// runs through the Dimemas-style DES replayer for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpgraph/internal/baseline"
	"mpgraph/internal/cli"
	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/mpi"
	"mpgraph/internal/report"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-sweep", flag.ContinueOnError)
	var mf cli.MachineFlags
	var wf cli.WorkloadFlags
	mf.Register(fs)
	wf.Register(fs)
	sweep := fs.String("sweep", "latency", "swept parameter: latency|noise|perbyte|ranks (ranks: value = world size, perturbation fixed by -os-noise-mean)")
	noiseMean := fs.Float64("os-noise-mean", 200, "per-edge noise mean used by -sweep ranks")
	from := fs.Float64("from", 0, "sweep start value (cycles, or cycles/byte for perbyte)")
	to := fs.Float64("to", 700, "sweep end value (inclusive)")
	step := fs.Float64("step", 100, "sweep increment")
	useBaseline := fs.Bool("baseline", false, "also run the Dimemas-style DES replayer per point")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *step <= 0 || *to < *from {
		return fmt.Errorf("invalid sweep range [%g,%g] step %g", *from, *to, *step)
	}
	mcfg, err := mf.Build()
	if err != nil {
		return err
	}
	prog, err := workloads.BuildByName(wf.Name, wf.Options())
	if err != nil {
		return err
	}
	// Trace per sweep point (the machine's rank count may vary when
	// sweeping over ranks).
	runTrace := func(nranks int) (*trace.Set, error) {
		cfg := mcfg
		cfg.NRanks = nranks
		res, err := mpi.Run(mpi.Config{Machine: cfg}, prog)
		if err != nil {
			return nil, err
		}
		return res.TraceSet()
	}

	headers := []string{"value", "max-delay", "mean-delay", "makespan-delay"}
	if *useBaseline {
		headers = append(headers, "des-makespan-growth")
	}
	tbl := report.NewTable(
		fmt.Sprintf("%s sweep of %q on %d ranks", *sweep, wf.Name, mcfg.NRanks),
		headers...)

	var baseMakespan int64 = -1
	var xs, ys []float64
	for v := *from; v <= *to+1e-9; v += *step {
		model := &core.Model{Seed: 1}
		nranks := mcfg.NRanks
		switch strings.ToLower(*sweep) {
		case "latency":
			model.MsgLatency = dist.Constant{C: v}
		case "noise":
			model.OSNoise = dist.Constant{C: v}
		case "perbyte":
			model.PerByte = dist.Constant{C: v}
		case "ranks":
			nranks = int(v)
			if nranks < 1 {
				return fmt.Errorf("-sweep ranks needs positive values, got %g", v)
			}
			model.OSNoise = dist.Exponential{MeanValue: *noiseMean}
		default:
			return fmt.Errorf("unknown sweep parameter %q", *sweep)
		}
		set, err := runTrace(nranks)
		if err != nil {
			return err
		}
		res, err := core.Analyze(set, model, core.Options{})
		if err != nil {
			return err
		}
		xs = append(xs, v)
		ys = append(ys, res.MaxFinalDelay)
		row := []interface{}{v, res.MaxFinalDelay, res.MeanFinalDelay, res.MakespanDelay}
		if *useBaseline {
			set, err := runTrace(nranks)
			if err != nil {
				return err
			}
			params := baseline.Params{Latency: 1000 + int64(v), BytesPerCycle: mcfg.BytesPerCycle}
			if strings.ToLower(*sweep) != "latency" {
				params.Latency = 1000
				params.OSNoise = dist.Constant{C: v}
			}
			rep, err := baseline.Replay(set, params)
			if err != nil {
				return err
			}
			if baseMakespan < 0 {
				baseMakespan = rep.Makespan
			}
			row = append(row, rep.Makespan-baseMakespan)
		}
		tbl.AddRow(row...)
	}

	if *csv {
		if err := tbl.CSV(os.Stdout); err != nil {
			return err
		}
	} else if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	if len(xs) >= 2 {
		fit := dist.FitLinear(xs, ys)
		fmt.Printf("linear fit: max-delay = %.2f*value + %.1f (R²=%.5f)\n",
			fit.Slope, fit.Intercept, fit.R2)
		if wf.Name == "tokenring" && strings.ToLower(*sweep) == "latency" {
			w, _ := workloads.Get("tokenring")
			iters := wf.Options().Iterations
			if iters == 0 {
				iters = w.Defaults.Iterations
			}
			fmt.Printf("paper §6.1 expectation: slope ≈ traversals × p = %d × %d = %d\n",
				iters, mcfg.NRanks, iters*mcfg.NRanks)
		}
	}
	return nil
}
