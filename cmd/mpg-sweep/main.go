// Command mpg-sweep traces a workload once per sweep point and reports
// how the analyzed delay grows as a perturbation parameter increases —
// the paper's Section 6.1 experiment and its generalizations:
//
//	mpg-sweep -workload tokenring -ranks 128 -iters 10 \
//	    -sweep latency -from 0 -to 700 -step 100
//
// reproduces the paper's 128-processor study (constant per-message
// perturbation swept from 0 to 700 cycles) and prints the linear fit
// the paper describes ("runtime increased by approximately
// traversals × increment × p"). Points are independent replays, so
// -workers fans them out across a pool (identical output for any pool
// size); -trials N turns each point into a Monte Carlo study over N
// derived seeds. With -baseline the same sweep also runs through the
// Dimemas-style DES replayer for comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpgraph/internal/baseline"
	"mpgraph/internal/cli"
	"mpgraph/internal/dist"
	"mpgraph/internal/mpi"
	"mpgraph/internal/obsv"
	"mpgraph/internal/parallel"
	"mpgraph/internal/report"
	"mpgraph/internal/sweep"
	"mpgraph/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("mpg-sweep", flag.ContinueOnError)
	var mf cli.MachineFlags
	var wf cli.WorkloadFlags
	var of cli.ObsvFlags
	mf.Register(fs)
	wf.Register(fs)
	of.Register(fs, true)
	param := fs.String("sweep", "latency", "swept parameter: latency|noise|perbyte|ranks (ranks: value = world size, perturbation fixed by -os-noise-mean)")
	noiseMean := fs.Float64("os-noise-mean", 200, "per-edge noise mean used by -sweep ranks")
	from := fs.Float64("from", 0, "sweep start value (cycles, or cycles/byte for perbyte)")
	to := fs.Float64("to", 700, "sweep end value (inclusive)")
	step := fs.Float64("step", 100, "sweep increment")
	workers := fs.Int("workers", 0, "replay worker pool size (0 = GOMAXPROCS); output is identical for any value")
	trials := fs.Int("trials", 1, "Monte Carlo replays per point, each under a seed derived from (model seed, trial)")
	streaming := fs.Bool("streaming-trials", false, "force Monte Carlo trials through the streaming analyzer instead of the compiled replay engine (A/B debugging; results are identical)")
	lanes := fs.Int("replay-lanes", 0, "Monte Carlo trials batched per tape walk (0 = scalar single-replay path, the default; set > 1 to opt into lane batching; results are identical for any value)")
	replayWorkers := fs.Int("replay-workers", 1, "cores per Monte Carlo trial replay (wavefront-slab parallel engine; the -workers budget is split between trials and slab workers; results are identical for any value)")
	useBaseline := fs.Bool("baseline", false, "also run the Dimemas-style DES replayer per point")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	progress := fs.Bool("progress", false, "report live replay progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *step <= 0 || *to < *from {
		return fmt.Errorf("invalid sweep range [%g,%g] step %g", *from, *to, *step)
	}
	mcfg, err := mf.Build()
	if err != nil {
		return err
	}
	p, err := sweep.ParseParam(strings.ToLower(*param))
	if err != nil {
		return fmt.Errorf("unknown sweep parameter %q", *param)
	}
	of.Start(stderr)
	cfg := sweep.Config{
		Workload:        wf.Name,
		WorkloadOptions: wf.Options(),
		Machine:         mcfg,
		Param:           p,
		From:            *from,
		To:              *to,
		Step:            *step,
		NoiseMean:       *noiseMean,
		ModelSeed:       1,
		Workers:         *workers,
		Trials:          *trials,
		StreamingTrials: *streaming,
		ReplayLanes:     *lanes,
		ReplayWorkers:   *replayWorkers,
		Metrics:         of.Registry(),
	}
	var rep *obsv.Progress
	if *progress {
		total := len(cfg.Values())
		if *trials > 1 {
			total *= *trials
		}
		rep = obsv.NewProgress(stderr, "replays", total, 0)
		// The defer only covers error returns: the reporter must stop
		// before the results render, or its ticker repaints interleave
		// with the table on a shared terminal.
		defer rep.Done()
		cfg.Progress = func(done, total int) { rep.Add(1) }
	}
	res, err := sweep.Run(cfg)
	rep.Done()
	if err != nil {
		return err
	}

	headers := []string{"value", "max-delay", "mean-delay", "makespan-delay"}
	if *trials > 1 {
		headers = append(headers, "trials-mean-max", "trials-p95-max", "trials-stddev")
	}
	if *useBaseline {
		headers = append(headers, "des-makespan-growth")
	}
	tbl := report.NewTable(
		fmt.Sprintf("%s sweep of %q on %d ranks", p, wf.Name, mcfg.NRanks),
		headers...)

	var growth []int64
	if *useBaseline {
		if growth, err = baselineGrowth(cfg, res.Points, *workers); err != nil {
			return err
		}
	}
	for i, pt := range res.Points {
		row := []interface{}{pt.Value, pt.Result.MaxFinalDelay,
			pt.Result.MeanFinalDelay, pt.Result.MakespanDelay}
		if *trials > 1 {
			row = append(row, pt.Trials.MeanMax, pt.Trials.P95Max, pt.Trials.StdDevMax)
		}
		if *useBaseline {
			row = append(row, growth[i])
		}
		tbl.AddRow(row...)
	}

	// In CSV mode the data stream must stay machine-parseable, so the
	// fit and expectation diagnostics go to stderr instead of
	// interleaving with the rows.
	diag := w
	if *csv {
		diag = stderr
		if err := tbl.CSV(w); err != nil {
			return err
		}
	} else if err := tbl.Render(w); err != nil {
		return err
	}

	if res.HasFit {
		fmt.Fprintf(diag, "linear fit: max-delay = %.2f*value + %.1f (R²=%.5f)\n",
			res.Fit.Slope, res.Fit.Intercept, res.Fit.R2)
		if wf.Name == "tokenring" && p == sweep.ParamLatency {
			tr, _ := workloads.Get("tokenring")
			iters := wf.Options().Iterations
			if iters == 0 {
				iters = tr.Defaults.Iterations
			}
			fmt.Fprintf(diag, "paper §6.1 expectation: slope ≈ traversals × p = %d × %d = %d\n",
				iters, mcfg.NRanks, iters*mcfg.NRanks)
		}
	}
	return of.Flush()
}

// baselineGrowth replays every sweep point through the DES baseline and
// reports makespan growth relative to the first point. Replays fan out
// like the sweep itself; growth is computed after ordered collection so
// the reference point never depends on scheduling.
func baselineGrowth(cfg sweep.Config, points []sweep.Point, workers int) ([]int64, error) {
	spans, err := parallel.Map(len(points), parallel.Options{Workers: workers}, func(i int) (int64, error) {
		v := points[i].Value
		mcfg := cfg.Machine
		params := baseline.Params{Latency: 1000 + int64(v), BytesPerCycle: mcfg.BytesPerCycle}
		if cfg.Param == sweep.ParamRanks {
			mcfg.NRanks = int(v)
		}
		if cfg.Param != sweep.ParamLatency {
			params.Latency = 1000
			params.OSNoise = dist.Constant{C: v}
		}
		prog, err := workloads.BuildByName(cfg.Workload, cfg.WorkloadOptions)
		if err != nil {
			return 0, err
		}
		run, err := mpi.Run(mpi.Config{Machine: mcfg}, prog)
		if err != nil {
			return 0, err
		}
		set, err := run.TraceSet()
		if err != nil {
			return 0, err
		}
		rep, err := baseline.Replay(set, params)
		if err != nil {
			return 0, err
		}
		return rep.Makespan, nil
	})
	if err != nil {
		if te, ok := err.(*parallel.TaskError); ok {
			err = te.Err
		}
		return nil, err
	}
	out := make([]int64, len(spans))
	for i, s := range spans {
		out[i] = s - spans[0]
	}
	return out, nil
}
