package main

import (
	"bytes"
	"io"
	"testing"
)

func TestSweepLatency(t *testing.T) {
	err := run([]string{"-workload", "tokenring", "-ranks", "4", "-iters", "2",
		"-sweep", "latency", "-from", "0", "-to", "200", "-step", "100"}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepNoiseWithBaselineCSV(t *testing.T) {
	err := run([]string{"-workload", "cg", "-ranks", "3", "-iters", "2",
		"-sweep", "noise", "-from", "0", "-to", "100", "-step", "50",
		"-baseline", "-csv"}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepPerByte(t *testing.T) {
	err := run([]string{"-workload", "pipeline", "-ranks", "3", "-iters", "2",
		"-sweep", "perbyte", "-from", "0", "-to", "1", "-step", "0.5"}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepTrials(t *testing.T) {
	err := run([]string{"-workload", "tokenring", "-ranks", "3", "-iters", "2",
		"-sweep", "ranks", "-from", "2", "-to", "3", "-step", "1",
		"-trials", "4", "-workers", "2"}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSweepTrialsReplayLanesIdentical pins the -replay-lanes contract
// at the CLI surface: any lane width (and the streaming escape hatch)
// emits byte-identical CSV for the same Monte Carlo sweep.
func TestSweepTrialsReplayLanesIdentical(t *testing.T) {
	base := []string{"-workload", "stencil1d", "-ranks", "4", "-iters", "2",
		"-sweep", "noise", "-from", "0", "-to", "100", "-step", "50",
		"-trials", "5", "-workers", "2", "-csv"}
	outFor := func(extra ...string) string {
		var buf bytes.Buffer
		if err := run(append(append([]string{}, base...), extra...), &buf, io.Discard); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		return buf.String()
	}
	want := outFor("-replay-lanes", "1")
	for _, extra := range [][]string{
		{},
		{"-replay-lanes", "3"},
		{"-replay-lanes", "64"},
		{"-streaming-trials"},
	} {
		if got := outFor(extra...); got != want {
			t.Errorf("%v output diverges from -replay-lanes 1:\n--- want\n%s--- got\n%s", extra, want, got)
		}
	}
}

func TestSweepRejectsBadRange(t *testing.T) {
	if err := run([]string{"-from", "100", "-to", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := run([]string{"-step", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestSweepRejectsUnknownParam(t *testing.T) {
	if err := run([]string{"-sweep", "phase-of-moon", "-ranks", "2",
		"-workload", "tokenring", "-iters", "1", "-to", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown sweep parameter accepted")
	}
}
