package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/verify"
	"mpgraph/internal/workloads"
)

// writeTraces produces a clean trace directory for lint-mode tests.
func writeTraces(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine:  machine.Config{NRanks: 4, Seed: 1},
		TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	return dir
}

// writeMalformedTraces hand-writes a directory holding a head-to-head
// receive deadlock (clean matching, unrunnable schedule).
func writeMalformedTraces(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rank int, recs []trace.Record) {
		w, closeFn, err := trace.CreateFileWriter(dir, trace.Header{Rank: rank, NRanks: 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Record(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := closeFn(); err != nil {
			t.Fatal(err)
		}
	}
	write(0, []trace.Record{
		{Kind: trace.KindRecv, Begin: 0, End: 10, Peer: 1},
		{Kind: trace.KindSend, Begin: 10, End: 20, Peer: 1},
	})
	write(1, []trace.Record{
		{Kind: trace.KindRecv, Begin: 0, End: 10, Peer: 0},
		{Kind: trace.KindSend, Begin: 10, End: 20, Peer: 0},
	})
	return dir
}

func unitScenario() *verify.Scenario {
	return &verify.Scenario{
		Workload:      "tokenring",
		Ranks:         4,
		Iterations:    2,
		Tasks:         1,
		Bytes:         512,
		Compute:       5_000,
		CollEvery:     1,
		WorkloadSeed:  1,
		MachineSeed:   1,
		BaseLatency:   800,
		BaseBandwidth: 1,
		Class:         verify.ClassLatency,
		DeltaLatency:  400,
	}
}

func TestVerifyCampaignPasses(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-seed", "1", "-n", "4"}, &buf); err != nil {
		t.Fatalf("campaign failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "seed=1 scenarios=4 checked=4 failed=0") {
		t.Fatalf("missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "all scenarios agree") {
		t.Fatalf("missing success line:\n%s", out)
	}
}

func TestVerifyCampaignJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-seed", "1", "-n", "3", "-json"}, &buf); err != nil {
		t.Fatalf("campaign failed: %v\n%s", err, buf.String())
	}
	var rep verify.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if rep.Checked != 3 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestVerifyLintCleanTraces(t *testing.T) {
	dir := writeTraces(t)
	var buf bytes.Buffer
	if err := run([]string{"-traces", dir}, &buf); err != nil {
		t.Fatalf("clean traces flagged: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "lint: no findings") {
		t.Fatalf("missing clean bill:\n%s", buf.String())
	}
}

func TestVerifyLintFlagsDeadlock(t *testing.T) {
	dir := writeMalformedTraces(t)
	var buf bytes.Buffer
	err := run([]string{"-traces", dir}, &buf)
	if err == nil {
		t.Fatalf("deadlocked traces accepted:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), verify.LintDeadlock) {
		t.Fatalf("missing deadlock finding:\n%s", buf.String())
	}
}

func TestVerifyLintJSON(t *testing.T) {
	dir := writeMalformedTraces(t)
	var buf bytes.Buffer
	if err := run([]string{"-traces", dir, "-json"}, &buf); err == nil {
		t.Fatal("deadlocked traces accepted")
	}
	var out struct {
		Dir      string           `json:"dir"`
		Findings []verify.Finding `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(out.Findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
}

func TestVerifyScenarioRerun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := verify.SaveScenario(unitScenario(), path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-scenario", path}, &buf); err != nil {
		t.Fatalf("scenario rerun failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "0 failures") {
		t.Fatalf("missing pass line:\n%s", buf.String())
	}
}

func TestVerifyReproducerRerun(t *testing.T) {
	rep := &verify.Reproducer{
		CampaignSeed: 9,
		Index:        2,
		Scenario:     unitScenario(),
		Failures:     []string{"differential: synthetic"},
		Original:     unitScenario(),
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "repro-2.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-scenario", path}, &buf); err != nil {
		t.Fatalf("reproducer rerun failed: %v\n%s", err, buf.String())
	}
}

func TestVerifyScenarioRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(path, []byte(`{"neither":"fish nor fowl"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("garbage scenario file accepted")
	}
}

func TestVerifyRejectsMissingTraceDir(t *testing.T) {
	if err := run([]string{"-traces", "/nonexistent-mpg-verify"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing trace dir accepted")
	}
}
