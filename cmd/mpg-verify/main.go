// Command mpg-verify is the standing correctness harness: it checks
// the graph-traversal engine against the DES oracle on randomly
// generated scenarios, runs the metamorphic property suite, and lints
// traces and built graphs.
//
// Randomized campaign (the default mode):
//
//	mpg-verify -seed 1 -n 200 -repro out/
//
// Re-run one scenario or a reproducer written by a failing campaign:
//
//	mpg-verify -scenario out/repro-17.json
//
// Lint a trace directory (structure + built graph):
//
//	mpg-verify -traces traces/
//
// All modes exit nonzero when anything fails; -json switches the
// report to machine-readable output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mpgraph/internal/cli"
	"mpgraph/internal/core"
	"mpgraph/internal/report"
	"mpgraph/internal/trace"
	"mpgraph/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-verify:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mpg-verify", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "campaign base seed (scenario i derives from TaskSeed(seed, i))")
	n := fs.Int("n", 100, "number of random scenarios to generate and check")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	shrinkBudget := fs.Int("shrink-budget", 0, "max re-checks while minimizing a failing scenario (0 = default)")
	reproDir := fs.String("repro", "", "write reproducer JSON files for failing scenarios to this directory")
	scenarioPath := fs.String("scenario", "", "re-check one scenario or reproducer JSON instead of a campaign")
	tracesDir := fs.String("traces", "", "lint a trace directory instead of running a campaign")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	var of cli.ObsvFlags
	of.Register(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *tracesDir != "":
		return runLint(stdout, *tracesDir, *jsonOut)
	case *scenarioPath != "":
		return runScenario(stdout, *scenarioPath, *jsonOut)
	default:
		return runCampaign(stdout, verify.CampaignOptions{
			Seed:         *seed,
			N:            *n,
			Workers:      *workers,
			ShrinkBudget: *shrinkBudget,
			ReproDir:     *reproDir,
			Metrics:      of.Registry(),
		}, *jsonOut, &of)
	}
}

func runCampaign(stdout io.Writer, opts verify.CampaignOptions, jsonOut bool, of *cli.ObsvFlags) error {
	rep, err := verify.Campaign(opts)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(stdout, rep); err != nil {
			return err
		}
	} else if err := report.VerifyCampaign(stdout, rep); err != nil {
		return err
	}
	if err := of.Flush(); err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("%d of %d scenarios failed", rep.Failed, rep.Checked)
	}
	return nil
}

// runScenario re-checks a single case from a scenario JSON or a
// reproducer file written by a failing campaign.
func runScenario(stdout io.Writer, path string, jsonOut bool) error {
	sc, err := verify.LoadScenario(path)
	if err != nil {
		rep, rerr := verify.LoadReproducer(path)
		if rerr != nil {
			return fmt.Errorf("%s is neither a scenario (%v) nor a reproducer (%v)", path, err, rerr)
		}
		sc = rep.Scenario
	}
	failures := verify.CheckScenario(sc)
	if jsonOut {
		if err := writeJSON(stdout, map[string]interface{}{
			"scenario": sc,
			"failures": failures,
		}); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "scenario %s: %d failures\n", sc.Name(), len(failures))
		for _, f := range failures {
			fmt.Fprintf(stdout, "  %s\n", f)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("scenario %s failed %d checks", sc.Name(), len(failures))
	}
	return nil
}

// runLint structurally checks a trace directory and, when the traces
// are clean enough to build, the constructed graph.
func runLint(stdout io.Writer, dir string, jsonOut bool) error {
	set, closeFn, err := trace.OpenDir(dir)
	if err != nil {
		return err
	}
	defer closeFn()
	findings, err := verify.LintSet(set)
	if err != nil {
		return err
	}
	if len(findings) == 0 {
		// Traces are structurally sound: build the graph and lint it
		// too (negative edges, cycles).
		set2, closeFn2, err := trace.OpenDir(dir)
		if err != nil {
			return err
		}
		defer closeFn2()
		g := verify.NewGraphCollector()
		if _, err := core.Analyze(set2, &core.Model{}, core.Options{Graph: g}); err != nil {
			return fmt.Errorf("graph build: %w", err)
		}
		findings = append(findings, verify.LintGraph(g)...)
	}
	if jsonOut {
		if err := writeJSON(stdout, map[string]interface{}{
			"dir":      dir,
			"findings": findings,
		}); err != nil {
			return err
		}
	} else if err := report.LintFindings(stdout, findings); err != nil {
		return err
	}
	if len(findings) > 0 {
		return fmt.Errorf("%d lint findings", len(findings))
	}
	return nil
}

func writeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
