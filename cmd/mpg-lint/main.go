// Command mpg-lint runs the repository's domain static-analysis
// suite (internal/analysis): determinism, RNG-ownership, float-
// comparison and hot-path-allocation checks that prove at lint time
// what the replay equivalence suites can only sample at run time.
//
//	mpg-lint ./...                 # text report, exit 1 on findings
//	mpg-lint -json ./...           # machine-readable report on stdout
//	mpg-lint -format sarif ./...   # SARIF 2.1.0 on stdout (code scanning)
//	mpg-lint -sarif-out f.sarif    # also write the SARIF log to a file
//	mpg-lint -list                 # describe the analyzers
//	mpg-lint -write-baseline ./... # absorb current findings
//
// Exit codes: 0 — clean (every finding suppressed or baselined);
// 1 — outstanding findings; 2 — usage or load error. The JSON report
// is always written before a findings-driven nonzero exit, so CI can
// both gate on the code and archive the report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpgraph/internal/analysis"
	"mpgraph/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mpg-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text (alias for -format json)")
	format := fs.String("format", "", "report format on stdout: text (default), json, sarif")
	outPath := fs.String("out", "", "also write the JSON report to this file")
	sarifPath := fs.String("sarif-out", "", "also write the SARIF 2.1.0 report to this file")
	baselinePath := fs.String("baseline", "lint.baseline.json", "baseline file (missing file = empty baseline)")
	writeBaseline := fs.Bool("write-baseline", false, "absorb all current findings into the baseline file and exit 0")
	list := fs.Bool("list", false, "list the analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", ".", "analyze the module enclosing this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "mpg-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	baseline, err := analysis.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "mpg-lint:", err)
		return 2
	}
	res, err := analysis.Run(*dir, analysis.Config{
		Patterns:  patterns,
		Analyzers: analyzers,
		Baseline:  baseline,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mpg-lint:", err)
		return 2
	}
	if *writeBaseline {
		b := analysis.FromDiagnostics(res.Diagnostics)
		if err := b.Save(*baselinePath); err != nil {
			fmt.Fprintln(stderr, "mpg-lint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "mpg-lint: wrote %d baseline entries to %s\n", len(b.Entries), *baselinePath)
		return 0
	}

	stdoutFormat := *format
	if stdoutFormat == "" {
		if *jsonOut {
			stdoutFormat = "json"
		} else {
			stdoutFormat = "text"
		}
	}
	var render func(*report.LintReport, *os.File) error
	switch stdoutFormat {
	case "text":
		render = func(r *report.LintReport, f *os.File) error { return r.WriteText(f) }
	case "json":
		render = func(r *report.LintReport, f *os.File) error { return r.WriteJSON(f) }
	case "sarif":
		render = func(r *report.LintReport, f *os.File) error { return r.WriteSARIF(f) }
	default:
		fmt.Fprintf(stderr, "mpg-lint: unknown format %q (want text, json or sarif)\n", stdoutFormat)
		return 2
	}

	rep := buildReport(res, analyzers)
	if *outPath != "" {
		if err := writeReportFile(*outPath, rep.WriteJSON); err != nil {
			fmt.Fprintln(stderr, "mpg-lint:", err)
			return 2
		}
	}
	if *sarifPath != "" {
		if err := writeReportFile(*sarifPath, rep.WriteSARIF); err != nil {
			fmt.Fprintln(stderr, "mpg-lint:", err)
			return 2
		}
	}
	if err := render(rep, stdout); err != nil {
		fmt.Fprintln(stderr, "mpg-lint:", err)
		return 2
	}
	if rep.Outstanding > 0 {
		return 1
	}
	return 0
}

func writeReportFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildReport(res *analysis.Result, analyzers []*analysis.Analyzer) *report.LintReport {
	rep := &report.LintReport{Packages: res.Packages}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
		rep.AnalyzerDocs = append(rep.AnalyzerDocs, a.Doc)
	}
	for _, d := range res.Diagnostics {
		rep.Diagnostics = append(rep.Diagnostics, report.LintDiagnostic{
			Analyzer:   d.Analyzer,
			File:       d.File,
			Line:       d.Line,
			Col:        d.Col,
			Func:       d.Func,
			Message:    d.Message,
			Severity:   d.Severity,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
			Baselined:  d.Baselined,
		})
	}
	rep.Outstanding = len(res.Outstanding())
	return rep
}
