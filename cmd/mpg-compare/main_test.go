package main

import (
	"os"
	"path/filepath"
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/workloads"
)

func writeTraces(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine: machine.Config{NRanks: 4, Seed: 1}, TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	return dir
}

func writeScenario(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareScenarios(t *testing.T) {
	dir := writeTraces(t)
	a := writeScenario(t, "a.json", `{"name":"quiet"}`)
	b := writeScenario(t, "b.json", `{"name":"noisy","latency":"constant:500"}`)
	if err := run([]string{"-traces", dir, a, b}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareCSV(t *testing.T) {
	dir := writeTraces(t)
	a := writeScenario(t, "a.json", `{"os_noise":"constant:50"}`)
	if err := run([]string{"-traces", dir, "-csv", a}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -traces accepted")
	}
	if err := run([]string{"-traces", writeTraces(t)}); err == nil {
		t.Fatal("no scenarios accepted")
	}
	if err := run([]string{"-traces", writeTraces(t), "/missing.json"}); err == nil {
		t.Fatal("missing scenario accepted")
	}
	bad := writeScenario(t, "bad.json", `{"os_noise":"??"}`)
	if err := run([]string{"-traces", writeTraces(t), bad}); err == nil {
		t.Fatal("bad scenario accepted")
	}
}
