// Command mpg-compare analyzes the same traces under several
// scenarios and prints them side by side — the platform-procurement
// question the paper's conclusion targets ("determine the best
// platform for applications of interest"):
//
//	mpg-compare -traces traces/ quiet.json desktop.json shared-node.json
//
// Each positional argument is a scenario JSON file (see
// internal/scenario); rows are ordered as given.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpgraph/internal/core"
	"mpgraph/internal/report"
	"mpgraph/internal/scenario"
	"mpgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-compare:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-compare", flag.ContinueOnError)
	traces := fs.String("traces", "", "trace directory from mpg-trace (required)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traces == "" {
		return fmt.Errorf("-traces is required")
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("at least one scenario file is required")
	}

	tbl := report.NewTable(
		fmt.Sprintf("scenario comparison over %s", *traces),
		"scenario", "max-delay", "mean-delay", "makespan-delay",
		"own-noise", "remote-noise", "msg-delta", "warnings")

	for _, path := range paths {
		model, f, err := scenario.Load(path)
		if err != nil {
			return err
		}
		name := f.Name
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(path), ".json")
		}
		set, closeFn, err := trace.OpenDir(*traces)
		if err != nil {
			return err
		}
		res, err := core.Analyze(set, model, core.Options{})
		closeErr := closeFn()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if closeErr != nil {
			return closeErr
		}
		// Aggregate attribution over the makespan-defining rank.
		var worst core.RankResult
		for _, rr := range res.Ranks {
			if rr.FinalDelay >= worst.FinalDelay {
				worst = rr
			}
		}
		tbl.AddRow(name, res.MaxFinalDelay, res.MeanFinalDelay, res.MakespanDelay,
			worst.Attr.OwnNoise, worst.Attr.RemoteNoise, worst.Attr.MsgDelta,
			len(res.Warnings))
	}
	if *csv {
		return tbl.CSV(os.Stdout)
	}
	return tbl.Render(os.Stdout)
}
