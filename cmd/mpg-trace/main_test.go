package main

import (
	"path/filepath"
	"testing"

	"mpgraph/internal/trace"
)

func TestRunWritesTraces(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	if err := run([]string{"-workload", "tokenring", "-ranks", "4",
		"-iters", "2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	set, closeFn, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck
	if set.NRanks() != 4 {
		t.Fatalf("NRanks = %d", set.NRanks())
	}
	m, err := trace.ReadAll(set.Rank(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Hdr.Meta["workload"] != "tokenring" {
		t.Fatalf("meta = %v", m.Hdr.Meta)
	}
}

func TestRunRequiresOut(t *testing.T) {
	if err := run([]string{"-workload", "tokenring"}); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run([]string{"-workload", "nope", "-out", t.TempDir()}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunRejectsBadMachineSpec(t *testing.T) {
	if err := run([]string{"-machine-noise", "zzz", "-out", t.TempDir()}); err == nil {
		t.Fatal("bad machine spec accepted")
	}
}

func TestListWorkloads(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}
