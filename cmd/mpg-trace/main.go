// Command mpg-trace runs a workload on the simulated cluster and
// writes per-rank trace files, the first stage of the analysis
// pipeline:
//
//	mpg-trace -workload tokenring -ranks 128 -iters 10 -out traces/
//
// The machine model (noise, latency, bandwidth, clock distortion) is
// fully configurable; see -help.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/cli"
	"mpgraph/internal/mpi"
	"mpgraph/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-trace", flag.ContinueOnError)
	var mf cli.MachineFlags
	var wf cli.WorkloadFlags
	mf.Register(fs)
	wf.Register(fs)
	out := fs.String("out", "", "output directory for per-rank trace files (required)")
	bufCap := fs.Int("trace-buffer", 4096, "PMPI trace buffer capacity in records")
	list := fs.Bool("list", false, "list the registered workloads and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range workloads.Names() {
			w, _ := workloads.Get(name)
			fmt.Printf("%-14s %s\n", name, w.Description)
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	mcfg, err := mf.Build()
	if err != nil {
		return err
	}
	prog, err := workloads.BuildByName(wf.Name, wf.Options())
	if err != nil {
		return err
	}
	res, err := mpi.Run(mpi.Config{
		Machine:        mcfg,
		TraceDir:       *out,
		TraceBufferCap: *bufCap,
		TraceMeta: map[string]string{
			"workload": wf.Name,
			"tool":     "mpg-trace",
		},
	}, prog)
	if err != nil {
		return err
	}
	fmt.Printf("workload=%s ranks=%d makespan=%d cycles\n", wf.Name, mcfg.NRanks, res.Makespan)
	fmt.Printf("events=%d messages=%d bytes=%d collectives=%d\n",
		res.Stats.Events, res.Stats.Messages, res.Stats.BytesSent, res.Stats.Collectives)
	fmt.Printf("traces written to %s\n", *out)
	return nil
}
