// Command mpg-stat summarizes a trace directory: per-kind event
// counts, message-size and compute-gap statistics, per-rank volume —
// the quick census one runs before deciding what to perturb:
//
//	mpg-stat -traces traces/
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mpgraph/internal/dist"
	"mpgraph/internal/obsv"
	"mpgraph/internal/report"
	"mpgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-stat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-stat", flag.ContinueOnError)
	traces := fs.String("traces", "", "trace directory from mpg-trace (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traces == "" {
		return fmt.Errorf("-traces is required")
	}
	set, closeFn, err := trace.OpenDir(*traces)
	if err != nil {
		return err
	}
	defer closeFn() //nolint:errcheck

	// Scan throughput instrumentation: how fast this census chews
	// through the trace directory.
	reg := obsv.NewRegistry()
	nEvents := reg.Counter("stat_events_total")
	nBytes := reg.Counter("stat_sent_bytes_total")
	stopScan := reg.Timer("stat_scan").Start()

	kindCounts := map[trace.Kind]int64{}
	var msgBytes, gaps, durations []float64
	type rankAgg struct {
		events int64
		bytes  int64
		span   int64
	}
	perRank := make([]rankAgg, set.NRanks())

	for rank := 0; rank < set.NRanks(); rank++ {
		rd := set.Rank(rank)
		var prevEnd int64
		var first, last int64
		started := false
		for {
			rec, err := rd.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			kindCounts[rec.Kind]++
			perRank[rank].events++
			nEvents.Inc()
			if rec.Kind == trace.KindSend || rec.Kind == trace.KindIsend {
				msgBytes = append(msgBytes, float64(rec.Bytes))
				perRank[rank].bytes += rec.Bytes
				nBytes.Add(rec.Bytes)
			}
			if started {
				gaps = append(gaps, float64(rec.Begin-prevEnd))
			} else {
				first = rec.Begin
				started = true
			}
			durations = append(durations, float64(rec.Duration()))
			prevEnd = rec.End
			last = rec.End
		}
		perRank[rank].span = last - first
	}
	stopScan()

	// Per-kind table, sorted by count.
	type kc struct {
		k trace.Kind
		n int64
	}
	var kcs []kc
	for k, n := range kindCounts {
		kcs = append(kcs, kc{k, n})
	}
	sort.Slice(kcs, func(i, j int) bool {
		if kcs[i].n != kcs[j].n {
			return kcs[i].n > kcs[j].n
		}
		return kcs[i].k < kcs[j].k
	})
	kt := report.NewTable("events by kind", "kind", "count")
	for _, e := range kcs {
		kt.AddRow(e.k.String(), e.n)
	}
	if err := kt.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\nmessage sizes:  %s\n", dist.Summarize(msgBytes))
	fmt.Printf("compute gaps:   %s\n", dist.Summarize(gaps))
	fmt.Printf("event durations: %s\n", dist.Summarize(durations))
	if secs := reg.Timer("stat_scan").Total().Seconds(); secs > 0 {
		fmt.Printf("scan rate:      %.3g events/sec, %.3g sent-bytes/sec (%d events in %.1fms)\n",
			float64(nEvents.Value())/secs, float64(nBytes.Value())/secs,
			nEvents.Value(), secs*1000)
	}

	rt := report.NewTable("per-rank", "rank", "events", "sent-bytes", "local-span")
	for rank, agg := range perRank {
		rt.AddRow(rank, agg.events, agg.bytes, agg.span)
	}
	fmt.Println()
	return rt.Render(os.Stdout)
}
