package main

import (
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/workloads"
)

func writeTraces(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	prog, err := workloads.BuildByName("cg", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine: machine.Config{NRanks: 4, Seed: 1}, TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStatRuns(t *testing.T) {
	if err := run([]string{"-traces", writeTraces(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestStatRequiresTraces(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -traces accepted")
	}
}

func TestStatRejectsMissingDir(t *testing.T) {
	if err := run([]string{"-traces", t.TempDir()}); err == nil {
		t.Fatal("empty dir accepted")
	}
}
