// Command mpg-dump converts binary per-rank trace files to the
// human-readable text format (and back), for debugging and for
// hand-authoring fixtures:
//
//	mpg-dump -traces traces/ -rank 0          # dump one rank to stdout
//	mpg-dump -traces traces/ -all -out txt/   # dump every rank to files
//	mpg-dump -from-text fixture.txt -out traces/  # text -> binary
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mpgraph/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-dump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-dump", flag.ContinueOnError)
	traces := fs.String("traces", "", "trace directory to dump")
	rank := fs.Int("rank", 0, "rank to dump (with -traces)")
	all := fs.Bool("all", false, "dump every rank (requires -out)")
	fromText := fs.String("from-text", "", "convert a text trace to a binary rank file (requires -out)")
	out := fs.String("out", "", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *fromText != "":
		if *out == "" {
			return fmt.Errorf("-from-text requires -out")
		}
		f, err := os.Open(*fromText)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck
		h, recs, err := trace.ReadText(f)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		w, closeFn, err := trace.CreateFileWriter(*out, h, 4096)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if err := w.Record(r); err != nil {
				closeFn() //nolint:errcheck
				return err
			}
		}
		if err := closeFn(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n",
			filepath.Join(*out, trace.FileName(h.Rank)), len(recs))
		return nil

	case *traces != "":
		set, closeFn, err := trace.OpenDir(*traces)
		if err != nil {
			return err
		}
		defer closeFn() //nolint:errcheck
		if *all {
			if *out == "" {
				return fmt.Errorf("-all requires -out")
			}
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			for r := 0; r < set.NRanks(); r++ {
				path := filepath.Join(*out, fmt.Sprintf("rank-%04d.txt", r))
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := trace.DumpText(f, set.Rank(r)); err != nil {
					f.Close() //nolint:errcheck
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			fmt.Printf("dumped %d ranks to %s\n", set.NRanks(), *out)
			return nil
		}
		if *rank < 0 || *rank >= set.NRanks() {
			return fmt.Errorf("rank %d outside [0,%d)", *rank, set.NRanks())
		}
		return trace.DumpText(os.Stdout, set.Rank(*rank))

	default:
		return fmt.Errorf("one of -traces or -from-text is required")
	}
}
