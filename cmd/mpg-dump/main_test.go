package main

import (
	"os"
	"path/filepath"
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

func writeTraces(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mpi.Config{
		Machine: machine.Config{NRanks: 3, Seed: 1}, TraceDir: dir,
	}, prog); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDumpSingleRank(t *testing.T) {
	if err := run([]string{"-traces", writeTraces(t), "-rank", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestDumpAllRanks(t *testing.T) {
	out := filepath.Join(t.TempDir(), "txt")
	if err := run([]string{"-traces", writeTraces(t), "-all", "-out", out}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if _, err := os.Stat(filepath.Join(out, trace.FileName(r)[:len("rank-0000")]+".txt")); err != nil {
			t.Fatalf("rank %d text file missing: %v", r, err)
		}
	}
}

func TestTextToBinaryRoundTrip(t *testing.T) {
	// Dump rank 0 to text, convert back to binary, reopen.
	dir := writeTraces(t)
	txtDir := filepath.Join(t.TempDir(), "txt")
	if err := run([]string{"-traces", dir, "-all", "-out", txtDir}); err != nil {
		t.Fatal(err)
	}
	binDir := filepath.Join(t.TempDir(), "bin")
	if err := run([]string{"-from-text", filepath.Join(txtDir, "rank-0000.txt"),
		"-out", binDir}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(binDir, trace.FileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) == 0 {
		t.Fatal("converted trace empty")
	}
}

func TestDumpErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run([]string{"-traces", writeTraces(t), "-rank", "9"}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := run([]string{"-traces", writeTraces(t), "-all"}); err == nil {
		t.Fatal("-all without -out accepted")
	}
	if err := run([]string{"-from-text", "x.txt"}); err == nil {
		t.Fatal("-from-text without -out accepted")
	}
}
