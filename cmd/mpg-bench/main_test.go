package main

import (
	"path/filepath"
	"testing"

	"mpgraph/internal/microbench"
)

func TestBenchWritesSignature(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sig.json")
	err := run([]string{"-ranks", "2", "-machine-noise", "exponential:100",
		"-out", out, "-label", "unit",
		"-ftq-samples", "50", "-pingpong-samples", "20", "-bandwidth-samples", "3"})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := microbench.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Platform != "unit" || len(sig.NoisePerQuantum) != 50 {
		t.Fatalf("signature = %+v", sig)
	}
	if sig.NoiseSummary().Mean <= 0 {
		t.Fatal("no noise measured")
	}
}

func TestBenchRequiresOut(t *testing.T) {
	if err := run([]string{"-ranks", "2"}); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestBenchRejectsBadMachine(t *testing.T) {
	if err := run([]string{"-machine-latency", "x", "-out", "sig.json"}); err == nil {
		t.Fatal("bad machine spec accepted")
	}
}
