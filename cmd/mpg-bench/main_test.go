package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpgraph/internal/microbench"
)

func TestBenchWritesSignature(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sig.json")
	err := run([]string{"-ranks", "2", "-machine-noise", "exponential:100",
		"-out", out, "-label", "unit",
		"-ftq-samples", "50", "-pingpong-samples", "20", "-bandwidth-samples", "3"})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := microbench.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Platform != "unit" || len(sig.NoisePerQuantum) != 50 {
		t.Fatalf("signature = %+v", sig)
	}
	if sig.NoiseSummary().Mean <= 0 {
		t.Fatal("no noise measured")
	}
}

func TestBenchRequiresOut(t *testing.T) {
	if err := run([]string{"-ranks", "2"}); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestBenchRejectsBadMachine(t *testing.T) {
	if err := run([]string{"-machine-latency", "x", "-out", "sig.json"}); err == nil {
		t.Fatal("bad machine spec accepted")
	}
}

// TestBenchReplayBatchReport drives the -replay-batch mode over a tiny
// trace and checks the report carries the lane trajectory, an effective
// (never zero) worker count, and passes its in-band equivalence gates.
func TestBenchReplayBatchReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "replay.json")
	err := run([]string{"-replay-batch",
		"-replay-workload", "stencil1d", "-replay-ranks", "6",
		"-replay-iters", "2", "-replay-collevery", "2",
		"-replay-trials", "9", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep replayReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workers <= 0 {
		t.Fatalf("report records workers = %d; want the effective pool size", rep.Workers)
	}
	if len(rep.Batched) != len(batchLaneWidths) {
		t.Fatalf("batched trajectory has %d points, want %d", len(rep.Batched), len(batchLaneWidths))
	}
	for i, bp := range rep.Batched {
		if bp.Lanes != batchLaneWidths[i] {
			t.Errorf("point %d lanes = %d, want %d", i, bp.Lanes, batchLaneWidths[i])
		}
		if bp.ReplaysPerSec <= 0 || bp.NsPerReplay <= 0 {
			t.Errorf("lanes=%d has empty stats: %+v", bp.Lanes, bp)
		}
	}
	if rep.BestBatchSpeedup <= 0 {
		t.Fatalf("best batch speedup = %g", rep.BestBatchSpeedup)
	}
}
