package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"mpgraph/internal/analysis"
)

// lintConfig parameterizes the linter self-benchmark.
type lintConfig struct {
	trials int
	out    string
}

// lintStage is one timed phase of an analysis run, aggregated over
// trials: "load" (type-checking the module through the lenient
// loader), "callgraph" (building the shared whole-module call graph,
// once per run regardless of how many interprocedural analyzers
// consume it), then one entry per analyzer.
type lintStage struct {
	Name   string  `json:"name"`
	BestMs float64 `json:"best_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// lintReport is the BENCH_lint.json schema: the analysis suite
// benchmarked against the repository itself. The edge counts are the
// precision trend line — EdgesUnknown is the number of call sites the
// resolver had to taint as dynamic, so a rising count means the
// interprocedural analyzers are proving less than they used to.
type lintReport struct {
	GoVersion string `json:"go_version"`
	Packages  int    `json:"packages"`
	Trials    int    `json:"trials"`

	// Call-graph shape.
	Functions     int `json:"functions"`
	EdgesStatic   int `json:"edges_static"`
	EdgesExternal int `json:"edges_external"`
	EdgesUnknown  int `json:"edges_unknown"`

	// Findings profile of the benchmarked run (the suite gates
	// in-band: outstanding must be zero for the report to be written).
	Outstanding int `json:"outstanding"`
	Info        int `json:"info"`
	Suppressed  int `json:"suppressed"`
	Baselined   int `json:"baselined"`

	// Stages in execution order; TotalBestMs sums the per-stage bests.
	Stages      []lintStage `json:"stages"`
	TotalBestMs float64     `json:"total_best_ms"`
	TotalMeanMs float64     `json:"total_mean_ms"`
}

// runLint benchmarks the full analyzer suite over the enclosing
// module, trials times, and writes BENCH_lint.json. Like the replay
// and sampler benchmarks it carries its gate in-band: a run with
// outstanding findings is a failure, not a data point.
func runLint(cfg lintConfig) error {
	baseline, err := analysis.LoadBaseline("lint.baseline.json")
	if err != nil {
		return err
	}
	type agg struct {
		best, sum float64
		n         int
	}
	stages := map[string]*agg{}
	var order []string
	var last *analysis.Result
	for t := 0; t < cfg.trials; t++ {
		res, err := analysis.Run(".", analysis.Config{Baseline: baseline})
		if err != nil {
			return err
		}
		if out := res.Outstanding(); len(out) != 0 {
			return fmt.Errorf("lint benchmark gate: %d outstanding findings; the suite must be clean to benchmark it", len(out))
		}
		for _, st := range res.Timings {
			a, ok := stages[st.Name]
			if !ok {
				a = &agg{best: st.Ms}
				stages[st.Name] = a
				order = append(order, st.Name)
			}
			if st.Ms < a.best {
				a.best = st.Ms
			}
			a.sum += st.Ms
			a.n++
		}
		last = res
	}
	rep := lintReport{
		GoVersion: runtime.Version(),
		Packages:  last.Packages,
		Trials:    cfg.trials,
	}
	if g := last.Graph; g != nil {
		rep.Functions = len(g.Funcs)
		rep.EdgesStatic = g.EdgeCount(analysis.EdgeStatic)
		rep.EdgesExternal = g.EdgeCount(analysis.EdgeExternal)
		rep.EdgesUnknown = g.EdgeCount(analysis.EdgeUnknown)
	}
	for _, d := range last.Diagnostics {
		switch {
		case d.Suppressed:
			rep.Suppressed++
		case d.Baselined:
			rep.Baselined++
		case d.Severity == analysis.SeverityInfo:
			rep.Info++
		default:
			rep.Outstanding++
		}
	}
	// order holds the stages as the first trial executed them, so the
	// report reads like the run: load, callgraph, then each analyzer.
	for _, name := range order {
		a := stages[name]
		st := lintStage{Name: name, BestMs: a.best, MeanMs: a.sum / float64(a.n)}
		rep.Stages = append(rep.Stages, st)
		rep.TotalBestMs += st.BestMs
		rep.TotalMeanMs += st.MeanMs
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("lint self-benchmark: %d packages, %d functions, %d/%d/%d static/external/unknown edges\n",
		rep.Packages, rep.Functions, rep.EdgesStatic, rep.EdgesExternal, rep.EdgesUnknown)
	for _, st := range rep.Stages {
		fmt.Printf("  %-16s best %8.2f ms  mean %8.2f ms\n", st.Name, st.BestMs, st.MeanMs)
	}
	fmt.Printf("  %-16s best %8.2f ms  mean %8.2f ms\n", "total", rep.TotalBestMs, rep.TotalMeanMs)
	fmt.Printf("report written to %s\n", cfg.out)
	return nil
}
