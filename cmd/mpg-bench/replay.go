package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/parallel"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// replayConfig parameterizes the replay-throughput benchmark.
type replayConfig struct {
	workload  string
	ranks     int
	iters     int
	collEvery int
	trials    int
	workers   int
	seed      uint64
	out       string
	// batch adds the lane-width trajectory: the same trials replayed
	// through core.ReplayBatch at each width in batchLaneWidths, gated
	// in-band on batch-vs-single equivalence.
	batch bool
	// par adds the intra-replay worker trajectory: the same trials
	// replayed through core.ReplayParallel at each count in
	// parallelWorkerCounts, gated in-band on parallel-vs-single
	// byte-equality.
	par bool
}

// batchLaneWidths is the lane trajectory -replay-batch sweeps.
var batchLaneWidths = []int{1, 4, 16, 64}

// parallelWorkerCounts is the worker trajectory -replay-parallel
// sweeps.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// pathStats is one engine path's measured replay throughput.
type pathStats struct {
	NsPerReplay     float64 `json:"ns_per_replay"`
	ReplaysPerSec   float64 `json:"replays_per_sec"`
	AllocsPerReplay float64 `json:"allocs_per_replay"`
}

// batchPoint is one lane width of the batched-replay trajectory.
type batchPoint struct {
	Lanes int `json:"lanes"`
	pathStats
	// SpeedupVsCompiled is single-lane compiled ns/replay over this
	// width's ns/replay.
	SpeedupVsCompiled float64 `json:"speedup_vs_compiled"`
}

// parallelPoint is one worker count of the intra-replay parallel
// trajectory.
type parallelPoint struct {
	Workers int `json:"workers"`
	pathStats
	// SpeedupVsCompiled is serial compiled ns/replay over this worker
	// count's ns/replay.
	SpeedupVsCompiled float64 `json:"speedup_vs_compiled"`
}

// replayReport is the BENCH_replay.json schema: the benchmark's
// configuration, the one-time compile cost, and per-path throughput
// for the streaming analyzer (serial and parallel) against the
// compiled replay engine, plus (with -replay-batch) the lane-batched
// replay trajectory and (with -replay-parallel) the wavefront-slab
// intra-replay worker trajectory.
type replayReport struct {
	Workload   string `json:"workload"`
	Ranks      int    `json:"ranks"`
	Iterations int    `json:"iterations"`
	CollEvery  int    `json:"coll_every"`
	Trials     int    `json:"trials"`
	// Workers is the effective parallel-path pool size (GOMAXPROCS
	// when the flag was left at 0), never the raw flag value.
	Workers           int       `json:"workers"`
	Events            int64     `json:"events"`
	CompileNs         int64     `json:"compile_ns"`
	StreamingSerial   pathStats `json:"streaming_serial"`
	StreamingParallel pathStats `json:"streaming_parallel"`
	Compiled          pathStats `json:"compiled"`
	// Speedup is streaming-serial ns/replay over compiled ns/replay.
	Speedup float64 `json:"speedup_vs_streaming_serial"`
	// Batched is the -replay-batch lane trajectory in width order.
	Batched []batchPoint `json:"batched,omitempty"`
	// BestBatchSpeedup is the largest Batched speedup vs single-lane
	// compiled replay.
	BestBatchSpeedup float64 `json:"best_batch_speedup_vs_compiled,omitempty"`
	// Parallel is the -replay-parallel worker trajectory in count order.
	Parallel []parallelPoint `json:"parallel,omitempty"`
	// BestParallelSpeedup is the largest Parallel speedup vs the serial
	// compiled replay.
	BestParallelSpeedup float64 `json:"best_parallel_speedup_vs_compiled,omitempty"`
}

// replayModel builds the per-trial perturbation model. The model mixes
// all three sampled delta classes so the benchmark pays representative
// RNG and kernel costs.
func replayModel(seed uint64, trial int) *core.Model {
	return &core.Model{
		Seed:       parallel.TaskSeed(seed, trial),
		OSNoise:    dist.Exponential{MeanValue: 300},
		MsgLatency: dist.Exponential{MeanValue: 500},
		PerByte:    dist.Constant{C: 0.5},
	}
}

// measure times trials sequential calls of fn and attributes the
// heap-allocation delta evenly across them. The GC pass beforehand
// keeps Mallocs deltas comparable between paths.
func measure(trials int, fn func(trial int) error) (pathStats, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < trials; i++ {
		if err := fn(i); err != nil {
			return pathStats{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ns := float64(elapsed.Nanoseconds()) / float64(trials)
	return pathStats{
		NsPerReplay:     ns,
		ReplaysPerSec:   1e9 / ns,
		AllocsPerReplay: float64(after.Mallocs-before.Mallocs) / float64(trials),
	}, nil
}

// measureOnce is measure for a single fan-out call covering all trials.
func measureOnce(trials int, fn func() error) (pathStats, error) {
	return measure(1, func(int) error { return fn() })
}

func runReplay(cfg replayConfig) error {
	prog, err := workloads.BuildByName(cfg.workload, workloads.Options{
		Iterations: cfg.iters, CollEvery: cfg.collEvery,
	})
	if err != nil {
		return err
	}
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{
		NRanks: cfg.ranks, Seed: cfg.seed,
	}}, prog)
	if err != nil {
		return err
	}
	set, err := res.TraceSet()
	if err != nil {
		return err
	}
	snap, err := trace.NewSnapshot(set)
	if err != nil {
		return err
	}

	compileStart := time.Now()
	cset, release := snap.Acquire()
	compiled, err := core.Compile(cset, core.Options{})
	release()
	if err != nil {
		return err
	}
	compileNs := time.Since(compileStart).Nanoseconds()

	// Equivalence gate: before timing anything, both engines must
	// agree byte for byte on the same model. A divergence here fails
	// the benchmark (and the CI job running it).
	gateModel := replayModel(cfg.seed, 0)
	gateModel.Propagation = core.PropagationAnchored
	gset, grelease := snap.Acquire()
	want, err := core.Analyze(gset, gateModel, core.Options{RecordCritPath: true})
	grelease()
	if err != nil {
		return err
	}
	got, err := core.ReplayCompiled(compiled, gateModel, core.Options{RecordCritPath: true})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("compiled replay diverged from streaming analyze (makespan %g vs %g)",
			got.MakespanDelay, want.MakespanDelay)
	}

	streamOne := func(trial int) error {
		s, rel := snap.Acquire()
		defer rel()
		_, err := core.Analyze(s, replayModel(cfg.seed, trial), core.Options{})
		return err
	}
	serial, err := measure(cfg.trials, streamOne)
	if err != nil {
		return err
	}
	par, err := measureOnce(cfg.trials, func() error {
		_, err := parallel.Map(cfg.trials, parallel.Options{Workers: cfg.workers},
			func(i int) (struct{}, error) { return struct{}{}, streamOne(i) })
		return err
	})
	if err != nil {
		return err
	}
	par.NsPerReplay /= float64(cfg.trials)
	par.ReplaysPerSec = 1e9 / par.NsPerReplay
	par.AllocsPerReplay /= float64(cfg.trials)
	comp, err := measure(cfg.trials, func(trial int) error {
		_, err := core.ReplayCompiled(compiled, replayModel(cfg.seed, trial), core.Options{})
		return err
	})
	if err != nil {
		return err
	}

	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := replayReport{
		Workload:          cfg.workload,
		Ranks:             cfg.ranks,
		Iterations:        cfg.iters,
		CollEvery:         cfg.collEvery,
		Trials:            cfg.trials,
		Workers:           workers,
		Events:            snap.Events(),
		CompileNs:         compileNs,
		StreamingSerial:   serial,
		StreamingParallel: par,
		Compiled:          comp,
		Speedup:           serial.NsPerReplay / comp.NsPerReplay,
	}
	if cfg.batch {
		if rep.Batched, err = runBatchTrajectory(compiled, cfg, comp); err != nil {
			return err
		}
		for _, bp := range rep.Batched {
			if bp.SpeedupVsCompiled > rep.BestBatchSpeedup {
				rep.BestBatchSpeedup = bp.SpeedupVsCompiled
			}
		}
	}
	if cfg.par {
		if rep.Parallel, err = runParallelTrajectory(compiled, cfg, comp); err != nil {
			return err
		}
		for _, pp := range rep.Parallel {
			if pp.SpeedupVsCompiled > rep.BestParallelSpeedup {
				rep.BestParallelSpeedup = pp.SpeedupVsCompiled
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("replay benchmark: %s ranks=%d events=%d trials=%d\n",
		cfg.workload, cfg.ranks, rep.Events, cfg.trials)
	fmt.Printf("compile once:       %.3f ms\n", float64(compileNs)/1e6)
	fmt.Printf("streaming serial:   %.3f ms/replay (%.0f allocs)\n",
		serial.NsPerReplay/1e6, serial.AllocsPerReplay)
	fmt.Printf("streaming parallel: %.3f ms/replay (workers=%d)\n",
		par.NsPerReplay/1e6, workers)
	fmt.Printf("compiled replay:    %.3f ms/replay (%.0f allocs)\n",
		comp.NsPerReplay/1e6, comp.AllocsPerReplay)
	fmt.Printf("speedup (compiled vs streaming serial): %.2fx\n", rep.Speedup)
	for _, bp := range rep.Batched {
		fmt.Printf("batched lanes=%-3d   %.3f ms/replay (%.0f allocs, %.2fx vs compiled)\n",
			bp.Lanes, bp.NsPerReplay/1e6, bp.AllocsPerReplay, bp.SpeedupVsCompiled)
	}
	if rep.BestBatchSpeedup > 0 {
		fmt.Printf("best batched speedup vs compiled: %.2fx\n", rep.BestBatchSpeedup)
	}
	for _, pp := range rep.Parallel {
		fmt.Printf("parallel workers=%-2d %.3f ms/replay (%.0f allocs, %.2fx vs compiled)\n",
			pp.Workers, pp.NsPerReplay/1e6, pp.AllocsPerReplay, pp.SpeedupVsCompiled)
	}
	if rep.BestParallelSpeedup > 0 {
		fmt.Printf("best parallel speedup vs compiled: %.2fx\n", rep.BestParallelSpeedup)
	}
	fmt.Printf("report written to %s\n", cfg.out)
	return nil
}

// runParallelTrajectory measures the wavefront-slab parallel replay
// engine at every worker count in parallelWorkerCounts. Before any
// timing, each count passes an in-band byte-equality gate: the first
// few trial models — both propagation modes — must reproduce their
// serial ReplayCompiled results deeply equal, critical paths and all.
// Each trial then runs as one ReplayParallel call at that worker
// count, so every point pays the same total replay count as the
// serial compiled path it is compared to.
func runParallelTrajectory(compiled *core.Compiled, cfg replayConfig, comp pathStats) ([]parallelPoint, error) {
	points := make([]parallelPoint, 0, len(parallelWorkerCounts))
	for _, workers := range parallelWorkerCounts {
		gateK := 4
		if gateK > cfg.trials {
			gateK = cfg.trials
		}
		gopts := core.Options{RecordCritPath: true}
		for k := 0; k < gateK; k++ {
			m := replayModel(cfg.seed, k)
			if k%2 == 1 {
				m.Propagation = core.PropagationAnchored
			}
			want, err := core.ReplayCompiled(compiled, m, gopts)
			if err != nil {
				return nil, err
			}
			got, err := core.ReplayParallel(compiled, m, gopts, workers)
			if err != nil {
				return nil, err
			}
			if !reflect.DeepEqual(want, got) {
				return nil, fmt.Errorf("workers=%d: parallel replay diverged from serial compiled replay (makespan %g vs %g)",
					workers, got.MakespanDelay, want.MakespanDelay)
			}
		}

		stats, err := measure(cfg.trials, func(trial int) error {
			_, err := core.ReplayParallel(compiled, replayModel(cfg.seed, trial), core.Options{}, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		points = append(points, parallelPoint{
			Workers:           workers,
			pathStats:         stats,
			SpeedupVsCompiled: comp.NsPerReplay / stats.NsPerReplay,
		})
	}
	return points, nil
}

// runBatchTrajectory measures the lane-batched replay engine at every
// width in batchLaneWidths. Before any timing, each width passes an
// in-band equivalence gate: a batch of the first K trial models —
// heterogeneous propagation modes included — must reproduce its K
// standalone compiled replays deeply equal, critical paths and all.
// Trials then replay in chunks of K, so each width pays the same total
// replay count as the single-lane compiled path it is compared to.
func runBatchTrajectory(compiled *core.Compiled, cfg replayConfig, comp pathStats) ([]batchPoint, error) {
	points := make([]batchPoint, 0, len(batchLaneWidths))
	for _, lanes := range batchLaneWidths {
		gateK := lanes
		if gateK > cfg.trials {
			gateK = cfg.trials
		}
		gate := make([]*core.Model, gateK)
		for k := range gate {
			gate[k] = replayModel(cfg.seed, k)
			if k%2 == 1 {
				gate[k].Propagation = core.PropagationAnchored
			}
		}
		gopts := core.Options{RecordCritPath: true}
		batch, err := core.ReplayBatch(compiled, gate, core.BatchOptions{Options: gopts})
		if err != nil {
			return nil, err
		}
		for k, m := range gate {
			want, err := core.ReplayCompiled(compiled, m, gopts)
			if err != nil {
				return nil, err
			}
			if !reflect.DeepEqual(want, batch[k]) {
				return nil, fmt.Errorf("lanes=%d: batch lane %d diverged from single compiled replay (makespan %g vs %g)",
					lanes, k, batch[k].MakespanDelay, want.MakespanDelay)
			}
		}

		models := make([]*core.Model, lanes)
		stats, err := measureOnce(cfg.trials, func() error {
			for lo := 0; lo < cfg.trials; lo += lanes {
				n := lanes
				if cfg.trials-lo < n {
					n = cfg.trials - lo
				}
				for k := 0; k < n; k++ {
					models[k] = replayModel(cfg.seed, lo+k)
				}
				if _, err := core.ReplayBatch(compiled, models[:n], core.BatchOptions{}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		stats.NsPerReplay /= float64(cfg.trials)
		stats.ReplaysPerSec = 1e9 / stats.NsPerReplay
		stats.AllocsPerReplay /= float64(cfg.trials)
		points = append(points, batchPoint{
			Lanes:             lanes,
			pathStats:         stats,
			SpeedupVsCompiled: comp.NsPerReplay / stats.NsPerReplay,
		})
	}
	return points, nil
}
