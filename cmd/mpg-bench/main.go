// Command mpg-bench runs the microbenchmark suite (FTQ OS-noise probe,
// ping-pong latency, bandwidth) against a machine model and writes the
// resulting platform signature, the paper's Section 5 parameterization
// stage:
//
//	mpg-bench -ranks 2 -machine-noise exponential:300 -out noisy.json
//
// The signature feeds mpg-analyze -signature.
//
// With -replay the command instead benchmarks the Monte Carlo replay
// engines — the streaming analyzer (serial and parallel) against the
// compile-once/replay-many path — and writes a machine-readable
// BENCH_replay.json report. The run fails if the two engines disagree
// on a reference model, so CI can use it as an equivalence gate:
//
//	mpg-bench -replay -replay-ranks 64 -out BENCH_replay.json
//
// With -sampler it benchmarks the distribution samplers themselves —
// the ziggurat fast paths against the retained exact reference
// algorithms, and scalar draws against the lane-vectorized batch
// draws — behind in-band KS and bit-identity gates, and writes
// BENCH_sampler.json:
//
//	mpg-bench -sampler -out BENCH_sampler.json
//
// With -lint it benchmarks the static-analysis suite itself against
// this repository — load, call-graph construction, and each analyzer
// timed separately, with the call-graph edge mix recorded as a
// precision trend line — and writes BENCH_lint.json. The run fails if
// the suite reports outstanding findings:
//
//	mpg-bench -lint -out BENCH_lint.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/cli"
	"mpgraph/internal/microbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpg-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpg-bench", flag.ContinueOnError)
	var mf cli.MachineFlags
	mf.Register(fs)
	out := fs.String("out", "", "output signature JSON path (required)")
	label := fs.String("label", "platform", "platform label stored in the signature")
	quantum := fs.Int64("ftq-quantum", 10_000, "FTQ work quantum in cycles")
	ftqSamples := fs.Int("ftq-samples", 2000, "FTQ sample count")
	ppSamples := fs.Int("pingpong-samples", 1000, "ping-pong sample count")
	ppBytes := fs.Int64("pingpong-bytes", 8, "ping-pong message size")
	bwBytes := fs.Int64("bandwidth-bytes", 1<<20, "bandwidth probe message size")
	bwSamples := fs.Int("bandwidth-samples", 50, "bandwidth probe sample count")
	replay := fs.Bool("replay", false, "benchmark the replay engines instead of probing the platform")
	lint := fs.Bool("lint", false, "benchmark the static-analysis suite against this repository and write BENCH_lint.json")
	lintTrials := fs.Int("lint-trials", 3, "analysis runs per lint benchmark")
	sampler := fs.Bool("sampler", false, "benchmark the distribution samplers (ziggurat vs exact reference, scalar vs lane-batched) and write BENCH_sampler.json")
	samplerDraws := fs.Int("sampler-draws", 2_000_000, "draws per sampler benchmark case")
	replayBatch := fs.Bool("replay-batch", false, "with -replay (implied): also sweep the lane-batched replay engine over K=1,4,16,64, gated on batch-vs-single equivalence")
	replayParallel := fs.Bool("replay-parallel", false, "with -replay (implied): also sweep the wavefront-slab parallel replay engine over workers=1,2,4,8, gated on parallel-vs-single byte-equality")
	replayWorkload := fs.String("replay-workload", "stencil1d", "workload for the replay benchmark")
	replayRanks := fs.Int("replay-ranks", 64, "world size for the replay benchmark")
	replayIters := fs.Int("replay-iters", 10, "workload iterations for the replay benchmark")
	replayCollEvery := fs.Int("replay-collevery", 4, "collective cadence for the replay benchmark")
	replayTrials := fs.Int("replay-trials", 100, "Monte Carlo replays per engine path")
	replayWorkers := fs.Int("replay-workers", 0, "parallel-path workers (0 = GOMAXPROCS)")
	replaySeed := fs.Uint64("replay-seed", 1, "trace and model seed for the replay benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lint {
		path := *out
		if path == "" {
			path = "BENCH_lint.json"
		}
		return runLint(lintConfig{trials: *lintTrials, out: path})
	}
	if *sampler {
		path := *out
		if path == "" {
			path = "BENCH_sampler.json"
		}
		return runSampler(samplerConfig{draws: *samplerDraws, out: path})
	}
	if *replay || *replayBatch || *replayParallel {
		path := *out
		if path == "" {
			path = "BENCH_replay.json"
		}
		return runReplay(replayConfig{
			workload:  *replayWorkload,
			ranks:     *replayRanks,
			iters:     *replayIters,
			collEvery: *replayCollEvery,
			trials:    *replayTrials,
			workers:   *replayWorkers,
			seed:      *replaySeed,
			out:       path,
			batch:     *replayBatch,
			par:       *replayParallel,
		})
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	mcfg, err := mf.Build()
	if err != nil {
		return err
	}
	sig, err := microbench.Measure(mcfg, microbench.Config{
		Quantum:          *quantum,
		FTQSamples:       *ftqSamples,
		PingPongSamples:  *ppSamples,
		PingPongBytes:    *ppBytes,
		BandwidthBytes:   *bwBytes,
		BandwidthSamples: *bwSamples,
	}, *label)
	if err != nil {
		return err
	}
	if err := sig.Save(*out); err != nil {
		return err
	}
	fmt.Printf("platform %q\n", sig.Platform)
	fmt.Printf("FTQ noise/quantum: %s\n", sig.NoiseSummary())
	fmt.Printf("one-way latency:   %s\n", sig.LatencySummary())
	fmt.Printf("bandwidth:         %.3f bytes/cycle\n", sig.BytesPerCycle)
	fmt.Printf("signature written to %s\n", *out)
	return nil
}
