package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mpgraph/internal/dist"
)

// Sampler benchmark (-sampler): measures the distribution samplers
// themselves — the ziggurat fast paths against the retained exact
// reference algorithms, and the scalar draws against the
// lane-vectorized SampleInto batch draws — and writes a
// machine-readable BENCH_sampler.json report.
//
// Before timing anything the run passes two in-band gates, so CI can
// use it as a sampler-correctness check as well as a benchmark:
// a two-sample Kolmogorov–Smirnov test between the ziggurat and exact
// reference streams, and a bit-identity check between batched and
// scalar draws.

// samplerConfig parameterizes the sampler benchmark.
type samplerConfig struct {
	draws int
	out   string
}

// samplerBatchLanes is the lane width the batch-draw trajectory uses —
// the same K the batched replay engine defaults to.
const samplerBatchLanes = 16

// samplerPoint is one distribution's measured draw throughput.
type samplerPoint struct {
	Dist        string  `json:"dist"`
	NsPerDraw   float64 `json:"ns_per_draw"`
	DrawsPerSec float64 `json:"draws_per_sec"`
}

// samplerReport is the BENCH_sampler.json schema.
type samplerReport struct {
	SamplerVersion string `json:"sampler_version"`
	Draws          int    `json:"draws_per_case"`
	BatchLanes     int    `json:"batch_lanes"`
	// Scalar times Distribution.Sample for the hot families; Exact
	// times the retained pre-ziggurat reference samplers over the same
	// laws; Batch times the lane-vectorized SampleInto draws (ns per
	// individual draw, amortized across the lanes).
	Scalar []samplerPoint `json:"scalar"`
	Exact  []samplerPoint `json:"exact_reference"`
	Batch  []samplerPoint `json:"batch"`
	// ExpSpeedup / NormSpeedup compare the ziggurat scalar draw against
	// the exact reference for the two rewritten families.
	ExpSpeedup  float64 `json:"exponential_speedup_vs_exact"`
	NormSpeedup float64 `json:"normal_speedup_vs_exact"`
}

// benchSink defeats dead-code elimination of the timing loops.
var benchSink float64

// timeScalar measures one distribution's scalar draw cost.
func timeScalar(d dist.Distribution, n int, seed uint64) samplerPoint {
	r := dist.NewRNG(seed)
	var sink float64
	start := time.Now()
	for i := 0; i < n; i++ {
		sink += d.Sample(r)
	}
	ns := float64(time.Since(start).Nanoseconds()) / float64(n)
	benchSink += sink
	return samplerPoint{Dist: d.String(), NsPerDraw: ns, DrawsPerSec: 1e9 / ns}
}

// timeBatch measures one BatchSampler's per-draw cost through the
// lane-vectorized path: n total draws in rounds of samplerBatchLanes.
func timeBatch(b dist.BatchSampler, n int, seed uint64) samplerPoint {
	rngs := make([]dist.RNG, samplerBatchLanes)
	for i := range rngs {
		rngs[i].Reseed(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	dst := make([]float64, samplerBatchLanes)
	rounds := n / samplerBatchLanes
	if rounds < 1 {
		rounds = 1
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		b.SampleInto(dst, 1, rngs)
	}
	total := rounds * samplerBatchLanes
	ns := float64(time.Since(start).Nanoseconds()) / float64(total)
	benchSink += dst[0]
	return samplerPoint{Dist: b.String(), NsPerDraw: ns, DrawsPerSec: 1e9 / ns}
}

// samplerGates runs the in-band correctness gates: ziggurat-vs-exact
// two-sample KS for the rewritten families, and batched-vs-scalar
// bit identity for every BatchSampler. Any failure aborts the
// benchmark (and the CI job running it).
func samplerGates() error {
	const n = 40000
	const alpha = 1e-4
	for _, d := range []dist.Distribution{
		dist.Exponential{MeanValue: 300},
		dist.Normal{Mu: 0, Sigma: 1},
		dist.LogNormal{Mu: 1, Sigma: 0.5},
	} {
		exact := dist.Exact(d)
		rf, re := dist.NewRNG(101), dist.NewRNG(202)
		fast := make([]float64, n)
		ref := make([]float64, n)
		for i := 0; i < n; i++ {
			fast[i] = d.Sample(rf)
			ref[i] = exact.Sample(re)
		}
		stat := dist.KSStatTwo(fast, ref)
		if crit := dist.KSCriticalTwo(alpha, n, n); stat > crit {
			return fmt.Errorf("sampler gate: %s diverged from %s (two-sample KS %.5f > critical %.5f)",
				d, exact, stat, crit)
		}
	}
	for _, b := range []dist.BatchSampler{
		dist.Exponential{MeanValue: 300},
		dist.Normal{Mu: 0, Sigma: 1},
		dist.Uniform{Low: 0, High: 1},
		dist.Constant{C: 7},
	} {
		batchRNG := make([]dist.RNG, samplerBatchLanes)
		scalarRNG := make([]dist.RNG, samplerBatchLanes)
		for i := range batchRNG {
			seed := 1000 + uint64(i)*0x9e3779b97f4a7c15
			batchRNG[i].Reseed(seed)
			scalarRNG[i].Reseed(seed)
		}
		dst := make([]float64, samplerBatchLanes)
		for round := 0; round < 64; round++ {
			b.SampleInto(dst, 1, batchRNG)
			for k := range dst {
				want := b.Sample(&scalarRNG[k])
				if dst[k] != want {
					return fmt.Errorf("sampler gate: %s batch lane %d round %d drew %v, scalar drew %v",
						b, k, round, dst[k], want)
				}
			}
		}
	}
	return nil
}

func runSampler(cfg samplerConfig) error {
	if err := samplerGates(); err != nil {
		return err
	}
	n := cfg.draws

	scalarCases := []dist.Distribution{
		dist.Exponential{MeanValue: 300},
		dist.Normal{Mu: 0, Sigma: 1},
		dist.LogNormal{Mu: 1, Sigma: 0.5},
		dist.Uniform{Low: 0, High: 1},
	}
	exactCases := []dist.Distribution{
		dist.Exact(dist.Exponential{MeanValue: 300}),
		dist.Exact(dist.Normal{Mu: 0, Sigma: 1}),
		dist.Exact(dist.LogNormal{Mu: 1, Sigma: 0.5}),
	}
	batchCases := []dist.BatchSampler{
		dist.Exponential{MeanValue: 300},
		dist.Normal{Mu: 0, Sigma: 1},
		dist.Uniform{Low: 0, High: 1},
		dist.Constant{C: 7},
	}

	rep := samplerReport{
		SamplerVersion: dist.SamplerVersion,
		Draws:          n,
		BatchLanes:     samplerBatchLanes,
	}
	for i, d := range scalarCases {
		rep.Scalar = append(rep.Scalar, timeScalar(d, n, uint64(10+i)))
	}
	for i, d := range exactCases {
		rep.Exact = append(rep.Exact, timeScalar(d, n, uint64(20+i)))
	}
	for i, b := range batchCases {
		rep.Batch = append(rep.Batch, timeBatch(b, n, uint64(30+i)))
	}
	rep.ExpSpeedup = rep.Exact[0].NsPerDraw / rep.Scalar[0].NsPerDraw
	rep.NormSpeedup = rep.Exact[1].NsPerDraw / rep.Scalar[1].NsPerDraw

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sampler benchmark: %s, %d draws/case, %d-lane batches\n",
		rep.SamplerVersion, n, samplerBatchLanes)
	for _, p := range rep.Scalar {
		fmt.Printf("scalar %-28s %6.2f ns/draw\n", p.Dist, p.NsPerDraw)
	}
	for _, p := range rep.Exact {
		fmt.Printf("exact  %-28s %6.2f ns/draw\n", p.Dist, p.NsPerDraw)
	}
	for _, p := range rep.Batch {
		fmt.Printf("batch  %-28s %6.2f ns/draw\n", p.Dist, p.NsPerDraw)
	}
	fmt.Printf("exponential speedup vs exact: %.2fx\n", rep.ExpSpeedup)
	fmt.Printf("normal speedup vs exact:      %.2fx\n", rep.NormSpeedup)
	fmt.Printf("report written to %s\n", cfg.out)
	return nil
}
