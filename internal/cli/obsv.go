package cli

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers the profiling handlers on DefaultServeMux
	"time"

	"mpgraph/internal/obsv"
)

// ObsvFlags collects the shared observability flags of the tools:
// -metrics-out (JSON metrics snapshot at exit) and, for long-running
// tools, -pprof (live profiling endpoint).
type ObsvFlags struct {
	// MetricsOut is the snapshot destination path ("" = don't write).
	MetricsOut string
	// Pprof is the profiling listen address ("" = don't serve).
	Pprof string

	reg   *obsv.Registry
	start time.Time
}

// Register adds -metrics-out to fs; withPprof also adds -pprof.
func (o *ObsvFlags) Register(fs *flag.FlagSet, withPprof bool) {
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot (counters, gauges, phase timings) to this path at exit")
	if withPprof {
		fs.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	}
}

// Registry returns the tool's metrics registry, creating it on first
// use and marking the run's start time.
func (o *ObsvFlags) Registry() *obsv.Registry {
	if o.reg == nil {
		o.reg = obsv.NewRegistry()
		o.start = time.Now()
	}
	return o.reg
}

// DurationMS returns the wall time since the registry was created.
func (o *ObsvFlags) DurationMS() float64 {
	if o.reg == nil {
		return 0
	}
	return float64(time.Since(o.start)) / float64(time.Millisecond)
}

// Start launches the pprof server when -pprof was given. Errors (e.g.
// an occupied port) are reported to stderr, never fatal: profiling is
// a diagnostic aid, not a run prerequisite.
func (o *ObsvFlags) Start(stderr io.Writer) {
	if o.Pprof == "" {
		return
	}
	addr := o.Pprof
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(stderr, "pprof:", err)
		}
	}()
}

// Flush writes the metrics snapshot when -metrics-out was given.
func (o *ObsvFlags) Flush() error {
	if o.MetricsOut == "" {
		return nil
	}
	return obsv.WriteJSONFile(o.MetricsOut, o.Registry().Snapshot())
}
