package cli

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers the profiling handlers on DefaultServeMux
	"os"
	"time"

	"mpgraph/internal/obsv"
	"mpgraph/internal/timeline"
)

// ObsvFlags collects the shared observability flags of the tools:
// -metrics-out (JSON metrics snapshot at exit), -selftrace (engine
// self-profiling spans as a Perfetto timeline at exit) and, for
// long-running tools, -pprof (live profiling endpoint).
type ObsvFlags struct {
	// MetricsOut is the snapshot destination path ("" = don't write).
	MetricsOut string
	// SelfTrace is the engine span timeline path ("" = don't record).
	SelfTrace string
	// Pprof is the profiling listen address ("" = don't serve).
	Pprof string

	reg   *obsv.Registry
	start time.Time
}

// Register adds -metrics-out and -selftrace to fs; withPprof also adds
// -pprof.
func (o *ObsvFlags) Register(fs *flag.FlagSet, withPprof bool) {
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot (counters, gauges, phase timings) to this path at exit")
	fs.StringVar(&o.SelfTrace, "selftrace", "", "record engine self-profiling spans (compile, replay, sweep points, verify scenarios) and write them as Perfetto trace-event JSON to this path at exit")
	if withPprof {
		fs.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	}
}

// Registry returns the tool's metrics registry, creating it on first
// use and marking the run's start time. Span recording is enabled on
// the registry when -selftrace was given, so any engine code handed
// this registry contributes spans for free.
func (o *ObsvFlags) Registry() *obsv.Registry {
	if o.reg == nil {
		o.reg = obsv.NewRegistry()
		o.start = time.Now()
		if o.SelfTrace != "" {
			o.reg.EnableSpans(obsv.DefaultSpanCapacity)
		}
	}
	return o.reg
}

// DurationMS returns the wall time since the registry was created.
func (o *ObsvFlags) DurationMS() float64 {
	if o.reg == nil {
		return 0
	}
	return float64(time.Since(o.start)) / float64(time.Millisecond)
}

// Start launches the pprof server when -pprof was given. Errors (e.g.
// an occupied port) are reported to stderr, never fatal: profiling is
// a diagnostic aid, not a run prerequisite.
func (o *ObsvFlags) Start(stderr io.Writer) {
	if o.Pprof == "" {
		return
	}
	addr := o.Pprof
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(stderr, "pprof:", err)
		}
	}()
}

// Flush writes the metrics snapshot when -metrics-out was given and
// the self-trace timeline when -selftrace was given.
func (o *ObsvFlags) Flush() error {
	if o.MetricsOut != "" {
		if err := obsv.WriteJSONFile(o.MetricsOut, o.Registry().Snapshot()); err != nil {
			return err
		}
	}
	if o.SelfTrace != "" {
		f, err := os.Create(o.SelfTrace)
		if err != nil {
			return err
		}
		if err := timeline.WriteSpansJSON(f, o.Registry().Spans().Snapshot()); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
