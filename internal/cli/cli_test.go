package cli

import (
	"flag"
	"io"
	"testing"

	"mpgraph/internal/core"
)

func parseMachine(t *testing.T, args ...string) (*MachineFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var mf MachineFlags
	mf.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	_, err := mf.Build()
	return &mf, err
}

func TestMachineFlagsDefaults(t *testing.T) {
	mf, err := parseMachine(t)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := mf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NRanks != 8 || cfg.BytesPerCycle != 1 || cfg.SendOverhead != 100 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Noise != nil || cfg.Latency != nil {
		t.Fatal("unset distributions should be nil (machine applies its own defaults)")
	}
}

func TestMachineFlagsFull(t *testing.T) {
	mf, err := parseMachine(t,
		"-ranks", "32", "-seed", "9",
		"-machine-noise", "exponential:250",
		"-machine-latency", "uniform:500,1500",
		"-machine-bandwidth", "4",
		"-eager-limit", "4096",
		"-nic-contention",
		"-clock-offset", "uniform:0,1000000",
		"-clock-drift", "normal:0,100",
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := mf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NRanks != 32 || cfg.Seed != 9 || !cfg.NICContention || cfg.EagerLimit != 4096 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Noise == nil || cfg.Latency == nil || cfg.ClockOffset == nil || cfg.ClockDriftPPM == nil {
		t.Fatal("distributions not parsed")
	}
}

func TestMachineFlagsBadSpec(t *testing.T) {
	if _, err := parseMachine(t, "-machine-noise", "bogus:1"); err == nil {
		t.Fatal("bad noise spec accepted")
	}
	if _, err := parseMachine(t, "-clock-drift", "??"); err == nil {
		t.Fatal("bad drift spec accepted")
	}
}

func parseModel(t *testing.T, args ...string) (*core.Model, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var mf ModelFlags
	mf.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return mf.Build()
}

func TestModelFlagsDefaults(t *testing.T) {
	m, err := parseModel(t)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Zero() {
		t.Fatal("default model should inject nothing")
	}
	if m.Propagation != core.PropagationAdditive || m.Collectives != core.CollectiveApprox {
		t.Fatalf("default modes wrong: %+v", m)
	}
}

func TestModelFlagsModes(t *testing.T) {
	m, err := parseModel(t,
		"-os-noise", "constant:10",
		"-latency", "constant:20",
		"-per-byte", "constant:0.5",
		"-propagation", "anchored",
		"-collectives", "explicit",
		"-collective-bytes",
		"-allow-negative",
		"-noise-quantum", "1000",
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Propagation != core.PropagationAnchored || m.Collectives != core.CollectiveExplicit {
		t.Fatalf("modes: %+v", m)
	}
	if !m.CollectiveBytes || !m.AllowNegative || m.NoiseQuantum != 1000 {
		t.Fatalf("flags lost: %+v", m)
	}
	if m.OSNoise == nil || m.MsgLatency == nil || m.PerByte == nil {
		t.Fatal("distributions not set")
	}
}

func TestModelFlagsBadModes(t *testing.T) {
	if _, err := parseModel(t, "-propagation", "sideways"); err == nil {
		t.Fatal("bad propagation accepted")
	}
	if _, err := parseModel(t, "-collectives", "magic"); err == nil {
		t.Fatal("bad collectives accepted")
	}
	if _, err := parseModel(t, "-per-byte", "nope"); err == nil {
		t.Fatal("bad per-byte spec accepted")
	}
}

func TestWorkloadFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var wf WorkloadFlags
	wf.Register(fs)
	if err := fs.Parse([]string{"-workload", "cg", "-iters", "7", "-bytes", "512",
		"-tasks", "3", "-workload-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	o := wf.Options()
	if wf.Name != "cg" || o.Iterations != 7 || o.Bytes != 512 || o.Tasks != 3 || o.Seed != 5 {
		t.Fatalf("options = %+v name=%s", o, wf.Name)
	}
}

func TestMachineFlagsTopology(t *testing.T) {
	mf, err := parseMachine(t, "-topology", "ring")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := mf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.String() != "ring" {
		t.Fatalf("topology = %v", cfg.Topology)
	}
	if _, err := parseMachine(t, "-topology", "donut"); err == nil {
		t.Fatal("bad topology accepted")
	}
}
