// Package cli provides the shared flag groups of the command-line
// tools: machine-model flags, perturbation-model flags, and workload
// flags, each registering on a flag.FlagSet and building the
// corresponding configuration.
package cli

import (
	"flag"
	"fmt"
	"strings"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/workloads"
)

// MachineFlags collects the simulated platform parameters.
type MachineFlags struct {
	Ranks         int
	Seed          uint64
	Noise         string
	Quantum       int64
	Latency       string
	Bandwidth     float64
	SendOverhead  int64
	RecvOverhead  int64
	EagerLimit    int64
	NICContention bool
	Topology      string
	ClockOffset   string
	ClockDrift    string
}

// Register adds the machine flags to fs.
func (m *MachineFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&m.Ranks, "ranks", 8, "number of simulated ranks")
	fs.Uint64Var(&m.Seed, "seed", 1, "machine randomness seed")
	fs.StringVar(&m.Noise, "machine-noise", "", "per-op OS noise distribution (e.g. exponential:200)")
	fs.Int64Var(&m.Quantum, "machine-quantum", 0, "compute-noise sampling quantum in cycles (0 = per call)")
	fs.StringVar(&m.Latency, "machine-latency", "", "message latency distribution (default constant:1000)")
	fs.Float64Var(&m.Bandwidth, "machine-bandwidth", 1, "link bandwidth in bytes/cycle")
	fs.Int64Var(&m.SendOverhead, "send-overhead", 100, "send call overhead in cycles")
	fs.Int64Var(&m.RecvOverhead, "recv-overhead", 100, "receive call overhead in cycles")
	fs.Int64Var(&m.EagerLimit, "eager-limit", 0, "eager send threshold in bytes (0 = rendezvous)")
	fs.BoolVar(&m.NICContention, "nic-contention", false, "serialize message injection per NIC")
	fs.StringVar(&m.Topology, "topology", "full", "interconnect topology: full|ring|mesh2d|hypercube (latency scales with hops)")
	fs.StringVar(&m.ClockOffset, "clock-offset", "", "per-rank clock offset distribution (cycles)")
	fs.StringVar(&m.ClockDrift, "clock-drift", "", "per-rank clock drift distribution (ppm)")
}

// Build resolves the flags into a machine configuration.
func (m *MachineFlags) Build() (machine.Config, error) {
	cfg := machine.Config{
		NRanks:         m.Ranks,
		Seed:           m.Seed,
		ComputeQuantum: m.Quantum,
		BytesPerCycle:  m.Bandwidth,
		SendOverhead:   m.SendOverhead,
		RecvOverhead:   m.RecvOverhead,
		EagerLimit:     m.EagerLimit,
		NICContention:  m.NICContention,
	}
	var err error
	if cfg.Topology, err = machine.ParseTopology(m.Topology); err != nil {
		return cfg, fmt.Errorf("-topology: %w", err)
	}
	if cfg.Noise, err = optDist(m.Noise); err != nil {
		return cfg, fmt.Errorf("-machine-noise: %w", err)
	}
	if cfg.Latency, err = optDist(m.Latency); err != nil {
		return cfg, fmt.Errorf("-machine-latency: %w", err)
	}
	if cfg.ClockOffset, err = optDist(m.ClockOffset); err != nil {
		return cfg, fmt.Errorf("-clock-offset: %w", err)
	}
	if cfg.ClockDriftPPM, err = optDist(m.ClockDrift); err != nil {
		return cfg, fmt.Errorf("-clock-drift: %w", err)
	}
	return cfg, nil
}

// ModelFlags collects the perturbation-model parameters (paper §5).
type ModelFlags struct {
	Seed          uint64
	OSNoise       string
	Quantum       int64
	Latency       string
	PerByte       string
	Propagation   string
	Collectives   string
	CollBytes     bool
	AllowNegative bool
}

// Register adds the model flags to fs.
func (m *ModelFlags) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&m.Seed, "model-seed", 1, "perturbation sampling seed")
	fs.StringVar(&m.OSNoise, "os-noise", "", "OS-noise delta distribution per local edge")
	fs.Int64Var(&m.Quantum, "noise-quantum", 0, "compute-gap noise quantum in cycles (0 = per edge)")
	fs.StringVar(&m.Latency, "latency", "", "latency delta distribution per message edge")
	fs.StringVar(&m.PerByte, "per-byte", "", "per-byte delta distribution per message edge")
	fs.StringVar(&m.Propagation, "propagation", "additive", "delta combining: additive|anchored")
	fs.StringVar(&m.Collectives, "collectives", "approx", "collective model: approx|explicit")
	fs.BoolVar(&m.CollBytes, "collective-bytes", false, "include per-byte deltas in collective rounds")
	fs.BoolVar(&m.AllowNegative, "allow-negative", false, "permit negative deltas (less-noise what-if, §7)")
}

// Build resolves the flags into a perturbation model.
func (m *ModelFlags) Build() (*core.Model, error) {
	model := &core.Model{
		Seed:            m.Seed,
		NoiseQuantum:    m.Quantum,
		CollectiveBytes: m.CollBytes,
		AllowNegative:   m.AllowNegative,
	}
	var err error
	if model.OSNoise, err = optDist(m.OSNoise); err != nil {
		return nil, fmt.Errorf("-os-noise: %w", err)
	}
	if model.MsgLatency, err = optDist(m.Latency); err != nil {
		return nil, fmt.Errorf("-latency: %w", err)
	}
	if model.PerByte, err = optDist(m.PerByte); err != nil {
		return nil, fmt.Errorf("-per-byte: %w", err)
	}
	switch strings.ToLower(m.Propagation) {
	case "additive", "":
		model.Propagation = core.PropagationAdditive
	case "anchored":
		model.Propagation = core.PropagationAnchored
	default:
		return nil, fmt.Errorf("-propagation: unknown mode %q", m.Propagation)
	}
	switch strings.ToLower(m.Collectives) {
	case "approx", "":
		model.Collectives = core.CollectiveApprox
	case "explicit":
		model.Collectives = core.CollectiveExplicit
	default:
		return nil, fmt.Errorf("-collectives: unknown mode %q", m.Collectives)
	}
	return model, nil
}

// WorkloadFlags collects the workload selection and knobs.
type WorkloadFlags struct {
	Name       string
	Iterations int
	Bytes      int64
	Compute    int64
	CollEvery  int
	Tasks      int
	Seed       uint64
}

// Register adds the workload flags to fs.
func (w *WorkloadFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.Name, "workload", "tokenring",
		fmt.Sprintf("workload name (%s)", strings.Join(workloads.Names(), ", ")))
	fs.IntVar(&w.Iterations, "iters", 0, "iterations (0 = workload default)")
	fs.Int64Var(&w.Bytes, "bytes", 0, "message payload bytes (0 = workload default)")
	fs.Int64Var(&w.Compute, "compute", 0, "per-iteration compute cycles (0 = workload default)")
	fs.IntVar(&w.CollEvery, "coll-every", 0, "collective cadence (0 = workload default)")
	fs.IntVar(&w.Tasks, "tasks", 0, "task count for masterworker (0 = default)")
	fs.Uint64Var(&w.Seed, "workload-seed", 1, "workload-internal randomness seed")
}

// Options converts the flags to workload options.
func (w *WorkloadFlags) Options() workloads.Options {
	return workloads.Options{
		Iterations: w.Iterations,
		Bytes:      w.Bytes,
		Compute:    w.Compute,
		CollEvery:  w.CollEvery,
		Tasks:      w.Tasks,
		Seed:       w.Seed,
	}
}

// optDist parses a distribution spec, treating "" as nil (absent).
func optDist(spec string) (dist.Distribution, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	return dist.Parse(spec)
}
