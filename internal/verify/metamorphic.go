package verify

import (
	"fmt"
	"math"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/scenario"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// analyzeMem runs the graph analyzer over in-memory traces.
func analyzeMem(traces []*trace.MemTrace, m *core.Model, opts core.Options) (*core.Result, error) {
	set, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	return core.Analyze(set, m, opts)
}

// ZeroIdentity asserts the paper's base invariant: analyzing a trace
// under an empty perturbation model reproduces the observed schedule
// exactly — every per-rank delay and the makespan delay are zero.
func ZeroIdentity(traces []*trace.MemTrace) error {
	res, err := analyzeMem(traces, &core.Model{}, core.Options{})
	if err != nil {
		return fmt.Errorf("zero-identity: %w", err)
	}
	for r := range res.Ranks {
		//mpg:lint-ignore floateq zero identity is an exact contract: the empty model must yield bitwise-zero delay
		if d := res.Ranks[r].FinalDelay; d != 0 {
			return fmt.Errorf("zero-identity: rank %d has delay %g under the empty model", r, d)
		}
	}
	//mpg:lint-ignore floateq zero identity is an exact contract: the empty model must yield bitwise-zero makespan delay
	if res.MakespanDelay != 0 {
		return fmt.Errorf("zero-identity: makespan delay %g under the empty model", res.MakespanDelay)
	}
	return nil
}

// Monotonicity asserts that doubling every constant delta never
// shrinks any rank's delay: with constant (deterministic) deltas the
// propagation is a composition of + and max, both monotone, so delays
// are pointwise monotone in the perturbation magnitude.
func Monotonicity(sc *Scenario, traces []*trace.MemTrace) error {
	run := func(k float64) (*core.Result, error) {
		m, err := sc.scaledFile(k).Model()
		if err != nil {
			return nil, err
		}
		return analyzeMem(traces, m, core.Options{})
	}
	r1, err := run(1)
	if err != nil {
		return fmt.Errorf("monotonicity: %w", err)
	}
	r2, err := run(2)
	if err != nil {
		return fmt.Errorf("monotonicity: %w", err)
	}
	const eps = 1e-9
	for r := range r1.Ranks {
		d1, d2 := r1.Ranks[r].FinalDelay, r2.Ranks[r].FinalDelay
		if d1 < -eps {
			return fmt.Errorf("monotonicity: rank %d has negative delay %g under non-negative deltas", r, d1)
		}
		if d2+eps < d1 {
			return fmt.Errorf("monotonicity: rank %d delay shrank from %g to %g when deltas doubled", r, d1, d2)
		}
	}
	if r2.MakespanDelay+eps < r1.MakespanDelay {
		return fmt.Errorf("monotonicity: makespan delay shrank from %g to %g when deltas doubled", r1.MakespanDelay, r2.MakespanDelay)
	}
	return nil
}

// OrderPreservation asserts the paper's §4.3 guarantee end to end:
// even under negative perturbations (AllowNegative with a symmetric
// uniform distribution) the perturbed per-rank event order equals the
// traced order — each rank's perturbed end times, observed through
// Options.Trajectory, never decrease.
func OrderPreservation(traces []*trace.MemTrace, magnitude int64, seed uint64) error {
	if magnitude <= 0 {
		magnitude = 500
	}
	m := &core.Model{
		Seed:          seed,
		OSNoise:       dist.Uniform{Low: -float64(magnitude), High: float64(magnitude)},
		MsgLatency:    dist.Uniform{Low: -float64(magnitude), High: float64(magnitude)},
		AllowNegative: true,
	}
	last := map[int]float64{}
	var violation error
	opts := core.Options{Trajectory: func(tp core.TrajectoryPoint) {
		perturbed := float64(tp.OrigEnd) + tp.Delay
		if prev, ok := last[tp.Rank]; ok && perturbed < prev-1e-6 && violation == nil {
			violation = fmt.Errorf("order-preservation: rank %d event %d ends at %g before its predecessor at %g",
				tp.Rank, tp.Event, perturbed, prev)
		}
		last[tp.Rank] = perturbed
	}}
	if _, err := analyzeMem(traces, m, opts); err != nil {
		return fmt.Errorf("order-preservation: %w", err)
	}
	return violation
}

// Telescoping asserts the critical-path identities: the per-step
// deltas of the recorded argmax chain telescope exactly to the sink
// delay, as do the per-kind and per-rank blame aggregates, and the
// reported makespan delay equals SinkDelay + SinkOffset.
func Telescoping(traces []*trace.MemTrace, f *scenario.File) error {
	m, err := f.Model()
	if err != nil {
		return fmt.Errorf("telescoping: %w", err)
	}
	res, err := analyzeMem(traces, m, core.Options{RecordCritPath: true})
	if err != nil {
		return fmt.Errorf("telescoping: %w", err)
	}
	cp := res.CritPath
	if cp == nil {
		return fmt.Errorf("telescoping: analysis returned no critical path")
	}
	eps := 1e-6 * (1 + math.Abs(cp.SinkDelay))
	var sumDelta, sumKind, sumRank float64
	prev := 0.0
	for i, st := range cp.Steps {
		sumDelta += st.Delta
		if i == 0 {
			//mpg:lint-ignore floateq the critical path's source step carries an exact zero delta by construction
			if st.Delta != 0 {
				return fmt.Errorf("telescoping: source step has nonzero delta %g", st.Delta)
			}
		} else if math.Abs(st.Delay-(prev+st.Delta)) > eps {
			return fmt.Errorf("telescoping: step %d delay %g != previous %g + delta %g", i, st.Delay, prev, st.Delta)
		}
		prev = st.Delay
	}
	for _, v := range cp.KindBlame {
		sumKind += v
	}
	for _, v := range cp.RankBlame {
		sumRank += v
	}
	sums := []struct {
		what string
		sum  float64
	}{{"step deltas", sumDelta}, {"kind blame", sumKind}, {"rank blame", sumRank}}
	for _, s := range sums {
		if math.Abs(s.sum-cp.SinkDelay) > eps {
			return fmt.Errorf("telescoping: %s sum %g != sink delay %g", s.what, s.sum, cp.SinkDelay)
		}
	}
	if math.Abs(res.MakespanDelay-(cp.SinkDelay+cp.SinkOffset)) > eps {
		return fmt.Errorf("telescoping: makespan delay %g != sink delay %g + sink offset %g",
			res.MakespanDelay, cp.SinkDelay, cp.SinkOffset)
	}
	return nil
}

// ExplicitBounded asserts the Fig. 4 bounding relation: under constant
// non-negative deltas the explicit (dissemination/binomial) collective
// model never predicts more delay than the compact hub model, which
// charges every participant the worst participant's full per-round
// cost. Traces containing rooted collectives are skipped (the compact
// model's single-round Reduce simplification is not an upper bound for
// the explicit binomial tree).
func ExplicitBounded(traces []*trace.MemTrace, f *scenario.File) error {
	for _, mt := range traces {
		for _, rec := range mt.Records {
			if rec.Kind.IsRooted() {
				return nil
			}
		}
	}
	run := func(mode string) (*core.Result, error) {
		g := *f
		g.Collectives = mode
		m, err := g.Model()
		if err != nil {
			return nil, err
		}
		return analyzeMem(traces, m, core.Options{})
	}
	approx, err := run("approx")
	if err != nil {
		return fmt.Errorf("explicit-bounded: %w", err)
	}
	explicit, err := run("explicit")
	if err != nil {
		return fmt.Errorf("explicit-bounded: %w", err)
	}
	for r := range approx.Ranks {
		a, e := approx.Ranks[r].FinalDelay, explicit.Ranks[r].FinalDelay
		if e > a+1e-6 {
			return fmt.Errorf("explicit-bounded: rank %d: explicit delay %g exceeds compact delay %g", r, e, a)
		}
	}
	return nil
}

// ButterflyBound asserts the Fig. 4 relation from the other side: a
// hand-written butterfly (explicit hypercube Sendrecv stages — the
// point-to-point realization of Allreduce) suffers at least as much
// latency delay as the same iteration structure using the compact
// collective, because each p2p stage pays the data path plus an
// acknowledgment while the compact hub charges exactly
// ceil(log2 p) × Δλ per iteration.
func ButterflyBound(ranks, iterations int, bytes, compute, deltaLatency int64) error {
	if ranks < 2 || ranks&(ranks-1) != 0 {
		return fmt.Errorf("butterfly-bound: ranks must be a power of two >= 2, got %d", ranks)
	}
	if deltaLatency <= 0 {
		deltaLatency = 500
	}
	cfg := mpi.Config{Machine: machine.Config{NRanks: ranks, Seed: 1}}
	bfProg, err := workloads.BuildByName("butterfly", workloads.Options{
		Iterations: iterations, Bytes: bytes, Compute: compute,
	})
	if err != nil {
		return fmt.Errorf("butterfly-bound: %w", err)
	}
	bfRun, err := mpi.Run(cfg, bfProg)
	if err != nil {
		return fmt.Errorf("butterfly-bound: %w", err)
	}
	compact := func(r *mpi.Rank) error {
		for k := 0; k < iterations; k++ {
			r.Compute(compute)
			r.Allreduce(bytes)
		}
		return nil
	}
	cRun, err := mpi.Run(cfg, compact)
	if err != nil {
		return fmt.Errorf("butterfly-bound: %w", err)
	}
	m, err := scenario.Constants("butterfly-bound", float64(deltaLatency), 0, 0).Model()
	if err != nil {
		return fmt.Errorf("butterfly-bound: %w", err)
	}
	bf, err := analyzeMem(bfRun.Traces, m, core.Options{})
	if err != nil {
		return fmt.Errorf("butterfly-bound: %w", err)
	}
	cc, err := analyzeMem(cRun.Traces, m, core.Options{})
	if err != nil {
		return fmt.Errorf("butterfly-bound: %w", err)
	}
	for r := range bf.Ranks {
		if bf.Ranks[r].FinalDelay+1e-6 < cc.Ranks[r].FinalDelay {
			return fmt.Errorf("butterfly-bound: rank %d: explicit butterfly delay %g below compact collective delay %g",
				r, bf.Ranks[r].FinalDelay, cc.Ranks[r].FinalDelay)
		}
	}
	return nil
}

// metaFile picks the perturbation the non-differential properties run
// under: the scenario's own deltas, or a representative constant mix
// when the scenario is the zero class (whose own model would make
// every property trivially about zeros).
func metaFile(sc *Scenario) *scenario.File {
	if sc.Class == ClassZero {
		return scenario.Constants(sc.Name()+"/meta", 300, 0.01, 100)
	}
	return sc.PerturbationFile()
}

// Metamorphic runs the property suite against one scenario's trace.
// The returned strings are property violations; a non-nil error means
// the harness itself failed.
func Metamorphic(sc *Scenario) ([]string, error) {
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return nil, err
	}
	var failures []string
	check := func(err error) {
		if err != nil {
			failures = append(failures, err.Error())
		}
	}
	check(ZeroIdentity(traces))
	check(Monotonicity(sc, traces))
	check(OrderPreservation(traces, sc.NoiseCycles, sc.MachineSeed))
	check(Telescoping(traces, metaFile(sc)))
	check(ExplicitBounded(traces, metaFile(sc)))
	if sc.Workload == "butterfly" {
		check(ButterflyBound(sc.Ranks, sc.Iterations, sc.Bytes, sc.Compute, sc.DeltaLatency))
	}
	return failures, nil
}
