package verify

import (
	"testing"

	"mpgraph/internal/baseline"
	"mpgraph/internal/dist"
	"mpgraph/internal/parallel"
	"mpgraph/internal/trace"
)

// fixedScenario is a small deterministic case used across tests.
func fixedScenario(class Class) *Scenario {
	sc := &Scenario{
		Workload:      "tokenring",
		Ranks:         4,
		Iterations:    3,
		Tasks:         1,
		Bytes:         1024,
		Compute:       10_000,
		CollEvery:     1,
		WorkloadSeed:  1,
		MachineSeed:   1,
		BaseLatency:   800,
		BaseBandwidth: 1,
		Class:         class,
	}
	switch class {
	case ClassLatency:
		sc.DeltaLatency = 500
	case ClassBandwidth:
		sc.BandwidthFactor = 0.5
	case ClassNoise:
		sc.NoiseCycles = 300
	case ClassMixed:
		sc.DeltaLatency = 500
		sc.BandwidthFactor = 0.5
		sc.NoiseCycles = 300
	}
	return sc
}

func TestDifferentialFixedScenarios(t *testing.T) {
	for _, class := range Classes {
		class := class
		t.Run(string(class), func(t *testing.T) {
			d, err := Differential(fixedScenario(class))
			if err != nil {
				t.Fatalf("Differential: %v", err)
			}
			if !d.OK() {
				t.Fatalf("bounds violated:\n%v", d.Failures)
			}
		})
	}
}

// TestDifferentialGenerated sweeps randomly generated scenarios — the
// same generator the mpg-verify campaign uses.
func TestDifferentialGenerated(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		rng := dist.NewRNG(parallel.TaskSeed(7, i))
		sc := Generate(rng)
		if err := sc.Validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v", i, err)
		}
		d, err := Differential(sc)
		if err != nil {
			t.Fatalf("scenario %d (%s): %v", i, sc.Name(), err)
		}
		if !d.OK() {
			t.Errorf("scenario %d (%s): bounds violated:\n  budgets=%+v\n  graph=%v\n  des=%v\n  %v",
				i, sc.Name(), d.Budgets, d.GraphDelay, d.DESDelay, d.Failures)
		}
	}
}

// TestRetimedIdempotent pins the fixed-point property of the retimed
// trace directly at the baseline layer.
func TestRetimedIdempotent(t *testing.T) {
	sc := fixedScenario(ClassLatency)
	set, err := sc.BuildTraces()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := baseline.ReplayRetimed(set, sc.BaseParams())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Slack < 0 {
		t.Fatalf("negative merge slack %d", rt.Slack)
	}
	set2, err := trace.SetFromMem(rt.Traces)
	if err != nil {
		t.Fatal(err)
	}
	again, err := baseline.Replay(set2, sc.BaseParams())
	if err != nil {
		t.Fatal(err)
	}
	for r := range again.FinalTimes {
		if again.FinalTimes[r] != rt.Result.FinalTimes[r] {
			t.Errorf("rank %d: re-replay finished at %d, want %d", r, again.FinalTimes[r], rt.Result.FinalTimes[r])
		}
	}
	// The retimed records must be per-rank monotone with End >= Begin.
	for rank, mt := range rt.Traces {
		var prevEnd int64
		for i, rec := range mt.Records {
			if rec.End < rec.Begin {
				t.Fatalf("rank %d record %d: End %d < Begin %d", rank, i, rec.End, rec.Begin)
			}
			if rec.Begin < prevEnd {
				t.Fatalf("rank %d record %d: Begin %d < previous End %d", rank, i, rec.Begin, prevEnd)
			}
			prevEnd = rec.End
		}
	}
}

// TestEagerVsRendezvousDiffer documents why the harness uses eager
// mode: the two transfer models produce different schedules when a
// receiver posts late.
func TestEagerVsRendezvousDiffer(t *testing.T) {
	sc := fixedScenario(ClassZero)
	sc.Workload = "pipeline"
	sc.Compute = 50_000
	set, err := sc.BuildTraces()
	if err != nil {
		t.Fatal(err)
	}
	p := sc.BaseParams()
	p.EagerData = true
	eager, err := baseline.Replay(set, p)
	if err != nil {
		t.Fatal(err)
	}
	set2, err := sc.BuildTraces()
	if err != nil {
		t.Fatal(err)
	}
	p.EagerData = false
	rendez, err := baseline.Replay(set2, p)
	if err != nil {
		t.Fatal(err)
	}
	if rendez.Makespan < eager.Makespan {
		t.Errorf("rendezvous makespan %d < eager %d: rendezvous can only delay transfers", rendez.Makespan, eager.Makespan)
	}
}

func TestDESEventLimit(t *testing.T) {
	sc := fixedScenario(ClassZero)
	set, err := sc.BuildTraces()
	if err != nil {
		t.Fatal(err)
	}
	p := sc.BaseParams()
	p.MaxEvents = 3
	if _, err := baseline.Replay(set, p); err == nil {
		t.Fatal("replay with a 3-event budget should fail")
	}
}
