package verify

import "testing"

// TestCompiledEquivalenceClasses runs the compiled-vs-streaming check
// over one fixed scenario per perturbation class. Any divergence here
// means the compiled tape or the replay kernels drifted from the
// streaming analyzer.
func TestCompiledEquivalenceClasses(t *testing.T) {
	for _, class := range []Class{ClassLatency, ClassBandwidth, ClassNoise, ClassMixed} {
		sc := fixedScenario(class)
		failures, err := CompiledEquivalence(sc)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		for _, f := range failures {
			t.Errorf("%s: %s", class, f)
		}
	}
}

// TestCompiledEquivalenceCollectiveWorkload points the check at a
// collective-heavy scenario so the collective resolve tape (approx and
// explicit) is exercised, not just point-to-point matching.
func TestCompiledEquivalenceCollectiveWorkload(t *testing.T) {
	sc := fixedScenario(ClassMixed)
	sc.Workload = "bsp"
	sc.Ranks = 6
	failures, err := CompiledEquivalence(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Error(f)
	}
}

// TestCompiledBatchEquivalenceClasses runs the batch-vs-single lane
// check over one fixed scenario per perturbation class: the whole
// heterogeneous model grid rides a single batched tape walk and every
// lane must reproduce its standalone replay bit for bit.
func TestCompiledBatchEquivalenceClasses(t *testing.T) {
	for _, class := range []Class{ClassLatency, ClassBandwidth, ClassNoise, ClassMixed} {
		sc := fixedScenario(class)
		failures, err := CompiledBatchEquivalence(sc)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		for _, f := range failures {
			t.Errorf("%s: %s", class, f)
		}
	}
}

// TestCompiledBatchEquivalenceCollectiveWorkload exercises the lane-
// strided collective resolve kernels inside the batch walk.
func TestCompiledBatchEquivalenceCollectiveWorkload(t *testing.T) {
	sc := fixedScenario(ClassMixed)
	sc.Workload = "bsp"
	sc.Ranks = 6
	failures, err := CompiledBatchEquivalence(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Error(f)
	}
}
