package verify

import "testing"

// TestCompiledEquivalenceClasses runs the compiled-vs-streaming check
// over one fixed scenario per perturbation class. Any divergence here
// means the compiled tape or the replay kernels drifted from the
// streaming analyzer.
func TestCompiledEquivalenceClasses(t *testing.T) {
	for _, class := range []Class{ClassLatency, ClassBandwidth, ClassNoise, ClassMixed} {
		sc := fixedScenario(class)
		failures, err := CompiledEquivalence(sc)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		for _, f := range failures {
			t.Errorf("%s: %s", class, f)
		}
	}
}

// TestCompiledEquivalenceCollectiveWorkload points the check at a
// collective-heavy scenario so the collective resolve tape (approx and
// explicit) is exercised, not just point-to-point matching.
func TestCompiledEquivalenceCollectiveWorkload(t *testing.T) {
	sc := fixedScenario(ClassMixed)
	sc.Workload = "bsp"
	sc.Ranks = 6
	failures, err := CompiledEquivalence(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Error(f)
	}
}
