package verify

import (
	"fmt"
	"reflect"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// CompiledEquivalence asserts that the compile-once/replay-many engine
// is indistinguishable from the streaming analyzer over the scenario's
// trace. The compiled program is built once; each model × propagation
// mode × collective mode combination is then run through both engines
// with critical-path recording on, and the full Results (delays,
// attributions, regions, warnings, critical path) must be deeply
// equal. Two models are exercised: the scenario's own constant deltas
// (the same perturbation the differential check replays against the
// DES oracle) and a sampled stochastic model seeded from the scenario,
// so both the degenerate and the RNG-driven draw orders are covered.
func CompiledEquivalence(sc *Scenario) ([]string, error) {
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return nil, err
	}
	cset, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(cset, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	sset, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	snap, err := trace.NewSnapshot(sset)
	if err != nil {
		return nil, err
	}

	lat, perByte, noise := sc.graphDeltas()
	models := []*core.Model{
		// The scenario's constant perturbation, as the differential
		// check models it.
		{
			Seed:       sc.MachineSeed,
			MsgLatency: dist.Constant{C: lat},
			PerByte:    dist.Constant{C: perByte},
			OSNoise:    dist.Constant{C: noise},
		},
		// A stochastic model: equivalence must hold draw for draw, not
		// just in expectation, so exercise the sampler streams too.
		{
			Seed:            sc.MachineSeed*6364136223846793005 + 1442695040888963407,
			OSNoise:         dist.Exponential{MeanValue: 120},
			MsgLatency:      dist.Exponential{MeanValue: float64(sc.BaseLatency)/4 + 1},
			PerByte:         dist.Constant{C: 0.25},
			CollectiveBytes: true,
		},
	}

	var failures []string
	for _, m := range models {
		for _, pm := range []core.PropagationMode{core.PropagationAdditive, core.PropagationAnchored} {
			for _, cm := range []core.CollectiveMode{core.CollectiveApprox, core.CollectiveExplicit} {
				trial := m.Clone()
				trial.Propagation = pm
				trial.Collectives = cm
				opts := core.Options{RecordCritPath: true}
				set, release := snap.Acquire()
				want, err := core.Analyze(set, trial, opts)
				release()
				if err != nil {
					failures = append(failures, fmt.Sprintf("%s/%s: streaming analyze: %v", pm, cm, err))
					continue
				}
				got, err := core.ReplayCompiled(prog, trial, opts)
				if err != nil {
					failures = append(failures, fmt.Sprintf("%s/%s: compiled replay: %v", pm, cm, err))
					continue
				}
				if !reflect.DeepEqual(want, got) {
					failures = append(failures, fmt.Sprintf(
						"%s/%s seed %d: compiled replay diverged from streaming analyze (makespan %g vs %g, crit-path steps %d vs %d, warnings %d vs %d)",
						pm, cm, trial.Seed,
						got.MakespanDelay, want.MakespanDelay,
						critSteps(got), critSteps(want),
						len(got.Warnings), len(want.Warnings)))
				}
			}
		}
	}
	return failures, nil
}

// critSteps counts a result's critical-path steps (0 when unrecorded).
func critSteps(res *core.Result) int {
	if res.CritPath == nil {
		return 0
	}
	return len(res.CritPath.Steps)
}
