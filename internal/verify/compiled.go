package verify

import (
	"fmt"
	"reflect"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// CompiledEquivalence asserts that the compile-once/replay-many engine
// is indistinguishable from the streaming analyzer over the scenario's
// trace. The compiled program is built once; each model × propagation
// mode × collective mode combination is then run through both engines
// with critical-path recording on, and the full Results (delays,
// attributions, regions, warnings, critical path) must be deeply
// equal. Two models are exercised: the scenario's own constant deltas
// (the same perturbation the differential check replays against the
// DES oracle) and a sampled stochastic model seeded from the scenario,
// so both the degenerate and the RNG-driven draw orders are covered.
func CompiledEquivalence(sc *Scenario) ([]string, error) {
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return nil, err
	}
	cset, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(cset, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	sset, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	snap, err := trace.NewSnapshot(sset)
	if err != nil {
		return nil, err
	}

	models, labels := equivalenceGrid(sc)
	var failures []string
	for i, trial := range models {
		opts := core.Options{RecordCritPath: true}
		set, release := snap.Acquire()
		want, err := core.Analyze(set, trial, opts)
		release()
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: streaming analyze: %v", labels[i], err))
			continue
		}
		got, err := core.ReplayCompiled(prog, trial, opts)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: compiled replay: %v", labels[i], err))
			continue
		}
		if !reflect.DeepEqual(want, got) {
			failures = append(failures, fmt.Sprintf(
				"%s: compiled replay diverged from streaming analyze (makespan %g vs %g, crit-path steps %d vs %d, warnings %d vs %d)",
				labels[i],
				got.MakespanDelay, want.MakespanDelay,
				critSteps(got), critSteps(want),
				len(got.Warnings), len(want.Warnings)))
		}
	}
	return failures, nil
}

// CompiledBatchEquivalence asserts the lane-batched replayer is
// indistinguishable from the single-lane compiled replayer: the same
// model grid CompiledEquivalence walks one at a time is packed as the
// lanes of a single ReplayBatch tape walk — heterogeneous propagation
// modes, collective modes, and sampler seeds side by side — and every
// lane's Result must be deeply equal to a standalone ReplayCompiled of
// that lane's model. Together with CompiledEquivalence this closes the
// chain streaming ≡ compiled ≡ batched for the scenario.
func CompiledBatchEquivalence(sc *Scenario) ([]string, error) {
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return nil, err
	}
	cset, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(cset, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	models, labels := equivalenceGrid(sc)
	opts := core.Options{RecordCritPath: true}
	batch, err := core.ReplayBatch(prog, models, core.BatchOptions{Options: opts})
	if err != nil {
		return nil, fmt.Errorf("batch replay: %w", err)
	}
	var failures []string
	for i, trial := range models {
		want, err := core.ReplayCompiled(prog, trial, opts)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: compiled replay: %v", labels[i], err))
			continue
		}
		if !reflect.DeepEqual(want, batch[i]) {
			failures = append(failures, fmt.Sprintf(
				"%s: batch lane %d diverged from single compiled replay (makespan %g vs %g, crit-path steps %d vs %d, warnings %d vs %d)",
				labels[i], i,
				batch[i].MakespanDelay, want.MakespanDelay,
				critSteps(batch[i]), critSteps(want),
				len(batch[i].Warnings), len(want.Warnings)))
		}
	}
	return failures, nil
}

// CompiledParallelEquivalence asserts the wavefront-slab parallel
// replayer is indistinguishable from the single-core compiled
// replayer: every model in the shared equivalence grid is replayed
// through core.ReplayParallel at 2 and 4 workers, and each Result must
// be deeply equal to the serial ReplayCompiled of the same model —
// critical path included. Together with CompiledEquivalence this
// closes the chain streaming ≡ compiled ≡ parallel for the scenario,
// for every worker count (1 and >nranks are degenerate cases of the
// same engine, pinned by the core test suite).
func CompiledParallelEquivalence(sc *Scenario) ([]string, error) {
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return nil, err
	}
	cset, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(cset, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	models, labels := equivalenceGrid(sc)
	opts := core.Options{RecordCritPath: true}
	var failures []string
	for i, trial := range models {
		want, err := core.ReplayCompiled(prog, trial, opts)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: compiled replay: %v", labels[i], err))
			continue
		}
		for _, workers := range []int{2, 4} {
			got, err := core.ReplayParallel(prog, trial, opts, workers)
			if err != nil {
				failures = append(failures, fmt.Sprintf("%s: parallel replay (%d workers): %v", labels[i], workers, err))
				continue
			}
			if !reflect.DeepEqual(want, got) {
				failures = append(failures, fmt.Sprintf(
					"%s: parallel replay at %d workers diverged from serial compiled replay (makespan %g vs %g, crit-path steps %d vs %d, warnings %d vs %d)",
					labels[i], workers,
					got.MakespanDelay, want.MakespanDelay,
					critSteps(got), critSteps(want),
					len(got.Warnings), len(want.Warnings)))
			}
		}
	}
	return failures, nil
}

// equivalenceGrid builds the model grid both compiled-replay checks
// share — the scenario's constant perturbation (as the differential
// check models it) and a seeded stochastic model (equivalence must
// hold draw for draw, not just in expectation), each crossed with both
// propagation modes and both collective modes — plus one label per
// cell for failure messages. Grid order is deterministic, so batch
// lane i always carries the model labels[i] names.
func equivalenceGrid(sc *Scenario) ([]*core.Model, []string) {
	lat, perByte, noise := sc.graphDeltas()
	bases := []*core.Model{
		{
			Seed:       sc.MachineSeed,
			MsgLatency: dist.Constant{C: lat},
			PerByte:    dist.Constant{C: perByte},
			OSNoise:    dist.Constant{C: noise},
		},
		{
			Seed:            sc.MachineSeed*6364136223846793005 + 1442695040888963407,
			OSNoise:         dist.Exponential{MeanValue: 120},
			MsgLatency:      dist.Exponential{MeanValue: float64(sc.BaseLatency)/4 + 1},
			PerByte:         dist.Constant{C: 0.25},
			CollectiveBytes: true,
		},
	}
	var models []*core.Model
	var labels []string
	for _, m := range bases {
		for _, pm := range []core.PropagationMode{core.PropagationAdditive, core.PropagationAnchored} {
			for _, cm := range []core.CollectiveMode{core.CollectiveApprox, core.CollectiveExplicit} {
				trial := m.Clone()
				trial.Propagation = pm
				trial.Collectives = cm
				models = append(models, trial)
				labels = append(labels, fmt.Sprintf("%s/%s seed %d", pm, cm, trial.Seed))
			}
		}
	}
	return models, labels
}

// critSteps counts a result's critical-path steps (0 when unrecorded).
func critSteps(res *core.Result) int {
	if res.CritPath == nil {
		return 0
	}
	return len(res.CritPath.Steps)
}
