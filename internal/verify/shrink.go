package verify

// Shrink greedily minimizes a failing scenario: it repeatedly tries
// size-reducing mutations (halving iterations, ranks, payloads,
// deltas, simplifying seeds) and keeps any mutant that still fails,
// until no mutation helps or the evaluation budget runs out. The
// predicate is typically "CheckScenario reports failures"; budget
// counts predicate evaluations (each one replays the scenario through
// both engines, so campaigns keep it modest).
func Shrink(sc *Scenario, failing func(*Scenario) bool, budget int) *Scenario {
	cur := *sc
	if budget <= 0 {
		budget = 60
	}
	// Each mutation returns false when it cannot reduce further.
	mutations := []func(*Scenario) bool{
		func(c *Scenario) bool { return halveInt(&c.Iterations, 1) },
		func(c *Scenario) bool { return halveInt(&c.Tasks, 1) },
		func(c *Scenario) bool { return halveInt(&c.Ranks, 1) },
		func(c *Scenario) bool { return halveInt64(&c.Bytes, 1) },
		func(c *Scenario) bool { return halveInt64(&c.Compute, 1) },
		func(c *Scenario) bool { return setInt(&c.CollEvery, 1) },
		func(c *Scenario) bool { return setInt64(&c.EagerLimit, 0) },
		func(c *Scenario) bool { return halveInt64(&c.BaseLatency, 1) },
		func(c *Scenario) bool { return halveInt64(&c.DeltaLatency, minDelta(c.Class, ClassLatency)) },
		func(c *Scenario) bool { return halveInt64(&c.NoiseCycles, minDelta(c.Class, ClassNoise)) },
		func(c *Scenario) bool { return setUint64(&c.WorkloadSeed, 1) },
		func(c *Scenario) bool { return setUint64(&c.MachineSeed, 1) },
	}
	progress := true
	for progress && budget > 0 {
		progress = false
		for _, mutate := range mutations {
			if budget <= 0 {
				break
			}
			cand := cur
			if !mutate(&cand) || cand.Validate() != nil {
				continue
			}
			budget--
			if failing(&cand) {
				cur = cand
				progress = true
			}
		}
	}
	return &cur
}

// minDelta is the smallest value a class-specific delta may shrink to:
// 0 when the class does not use it, 1 when it does (a zero delta would
// change the perturbation class).
func minDelta(have, uses Class) int64 {
	if have == uses || have == ClassMixed {
		return 1
	}
	return 0
}

func halveInt(v *int, min int) bool {
	if *v <= min {
		return false
	}
	*v /= 2
	if *v < min {
		*v = min
	}
	return true
}

func halveInt64(v *int64, min int64) bool {
	if *v <= min {
		return false
	}
	*v /= 2
	if *v < min {
		*v = min
	}
	return true
}

func setInt(v *int, to int) bool {
	if *v == to {
		return false
	}
	*v = to
	return true
}

func setInt64(v *int64, to int64) bool {
	if *v == to {
		return false
	}
	*v = to
	return true
}

func setUint64(v *uint64, to uint64) bool {
	if *v == to {
		return false
	}
	*v = to
	return true
}
