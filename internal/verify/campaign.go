package verify

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mpgraph/internal/dist"
	"mpgraph/internal/obsv"
	"mpgraph/internal/parallel"
)

// CheckScenario runs every check the harness has against one
// scenario: the structural linter over its generated trace, the
// differential graph-vs-DES comparison, the metamorphic property
// suite, the compiled-replay and lane-batched-replay equivalence
// checks, and the timeline wait-state decomposition invariant. The
// returned strings are check failures; an empty slice means
// the scenario passes. Infrastructure errors (the scenario cannot even
// be traced) are reported as failures too — a generated scenario that
// crashes an engine is a finding, not an excuse.
func CheckScenario(sc *Scenario) []string {
	var failures []string
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return []string{fmt.Sprintf("build: %v", err)}
	}
	for _, f := range LintTraces(traces) {
		failures = append(failures, "lint: "+f.String())
	}
	d, err := Differential(sc)
	if err != nil {
		failures = append(failures, fmt.Sprintf("differential: %v", err))
	} else {
		for _, f := range d.Failures {
			failures = append(failures, "differential: "+f)
		}
	}
	mf, err := Metamorphic(sc)
	if err != nil {
		failures = append(failures, fmt.Sprintf("metamorphic: %v", err))
	} else {
		for _, f := range mf {
			failures = append(failures, "metamorphic: "+f)
		}
	}
	cf, err := CompiledEquivalence(sc)
	if err != nil {
		failures = append(failures, fmt.Sprintf("compiled: %v", err))
	} else {
		for _, f := range cf {
			failures = append(failures, "compiled: "+f)
		}
	}
	bf, err := CompiledBatchEquivalence(sc)
	if err != nil {
		failures = append(failures, fmt.Sprintf("compiled-batch: %v", err))
	} else {
		for _, f := range bf {
			failures = append(failures, "compiled-batch: "+f)
		}
	}
	pf, err := CompiledParallelEquivalence(sc)
	if err != nil {
		failures = append(failures, fmt.Sprintf("compiled-parallel: %v", err))
	} else {
		for _, f := range pf {
			failures = append(failures, "compiled-parallel: "+f)
		}
	}
	tf, err := TimelineInvariant(sc)
	if err != nil {
		failures = append(failures, fmt.Sprintf("timeline: %v", err))
	} else {
		for _, f := range tf {
			failures = append(failures, "timeline: "+f)
		}
	}
	return failures
}

// ScenarioResult is one campaign entry.
type ScenarioResult struct {
	// Index is the scenario's position in the campaign; together with
	// the campaign seed it fully determines the scenario.
	Index int `json:"index"`
	// Scenario is the generated case.
	Scenario *Scenario `json:"scenario"`
	// Failures lists check violations (empty = pass).
	Failures []string `json:"failures,omitempty"`
	// Shrunk is the minimized still-failing scenario (failures only).
	Shrunk *Scenario `json:"shrunk,omitempty"`
	// ShrunkFailures are the failures the shrunk scenario exhibits.
	ShrunkFailures []string `json:"shrunk_failures,omitempty"`
}

// OK reports whether the scenario passed.
func (r *ScenarioResult) OK() bool { return len(r.Failures) == 0 }

// Report summarizes a campaign.
type Report struct {
	// Seed and N identify the campaign (scenario i derives from
	// parallel.TaskSeed(Seed, i), independent of worker scheduling).
	Seed uint64 `json:"seed"`
	N    int    `json:"n"`
	// Checked and Failed count scenarios.
	Checked int `json:"checked"`
	Failed  int `json:"failed"`
	// ByWorkload and ByClass count checked scenarios per kind.
	ByWorkload map[string]int `json:"by_workload"`
	ByClass    map[string]int `json:"by_class"`
	// Results holds every scenario outcome in index order.
	Results []ScenarioResult `json:"results"`
	// ReproPaths lists reproducer files written for failures.
	ReproPaths []string `json:"repro_paths,omitempty"`
}

// OK reports whether the whole campaign passed.
func (r *Report) OK() bool { return r.Failed == 0 }

// CampaignOptions configure a randomized campaign.
type CampaignOptions struct {
	// Seed is the base seed; equal (Seed, N) yield equal campaigns
	// regardless of Workers.
	Seed uint64
	// N is the number of scenarios to generate and check.
	N int
	// Workers bounds the parallel.Map pool (0 = GOMAXPROCS).
	Workers int
	// ShrinkBudget caps predicate evaluations per failing scenario
	// (0 = default).
	ShrinkBudget int
	// ReproDir, when non-empty, receives one reproducer JSON per
	// failing scenario.
	ReproDir string
	// Metrics, when non-nil, records one engine self-profiling span
	// per checked scenario ("verify_scenario") so long campaigns show
	// up on a -selftrace timeline. Nil disables recording.
	Metrics *obsv.Registry
}

// Campaign generates and checks N random scenarios across a worker
// pool. Failing scenarios are shrunk to minimal reproducers. The
// result is deterministic in (Seed, N): scenario generation derives
// from per-index seeds and results are reassembled in index order.
func Campaign(opts CampaignOptions) (*Report, error) {
	if opts.N <= 0 {
		opts.N = 1
	}
	results, err := parallel.Map(opts.N, parallel.Options{Workers: opts.Workers}, func(i int) (ScenarioResult, error) {
		defer opts.Metrics.SpanStart("verify_scenario")()
		rng := dist.NewRNG(parallel.TaskSeed(opts.Seed, i))
		sc := Generate(rng)
		res := ScenarioResult{Index: i, Scenario: sc, Failures: CheckScenario(sc)}
		if len(res.Failures) > 0 {
			res.Shrunk = Shrink(sc, func(c *Scenario) bool {
				return len(CheckScenario(c)) > 0
			}, opts.ShrinkBudget)
			res.ShrunkFailures = CheckScenario(res.Shrunk)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:       opts.Seed,
		N:          opts.N,
		ByWorkload: map[string]int{},
		ByClass:    map[string]int{},
		Results:    results,
	}
	for i := range results {
		r := &results[i]
		rep.Checked++
		rep.ByWorkload[r.Scenario.Workload]++
		rep.ByClass[string(r.Scenario.Class)]++
		if !r.OK() {
			rep.Failed++
			if opts.ReproDir != "" {
				path, err := writeReproducer(opts.ReproDir, opts.Seed, r)
				if err != nil {
					return nil, err
				}
				rep.ReproPaths = append(rep.ReproPaths, path)
			}
		}
	}
	return rep, nil
}

// Reproducer is the persisted form of one failing scenario: enough to
// re-run the exact case without the campaign that found it.
type Reproducer struct {
	// CampaignSeed and Index locate the failure in its campaign.
	CampaignSeed uint64 `json:"campaign_seed"`
	Index        int    `json:"index"`
	// Scenario is the minimized failing case (falls back to the
	// original when shrinking lost the failure).
	Scenario *Scenario `json:"scenario"`
	// Failures are the checks the scenario violates.
	Failures []string `json:"failures"`
	// Original is the unshrunk scenario, kept for context.
	Original *Scenario `json:"original,omitempty"`
}

// writeReproducer persists one failure as ReproDir/repro-<index>.json.
func writeReproducer(dir string, seed uint64, r *ScenarioResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	rep := Reproducer{
		CampaignSeed: seed,
		Index:        r.Index,
		Scenario:     r.Scenario,
		Failures:     r.Failures,
	}
	if r.Shrunk != nil && len(r.ShrunkFailures) > 0 {
		rep.Scenario = r.Shrunk
		rep.Failures = r.ShrunkFailures
		rep.Original = r.Scenario
	}
	path := filepath.Join(dir, fmt.Sprintf("repro-%d.json", r.Index))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadReproducer reads a reproducer file.
func LoadReproducer(path string) (*Reproducer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Reproducer
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("verify: %s: %w", path, err)
	}
	if rep.Scenario == nil {
		return nil, fmt.Errorf("verify: %s: reproducer has no scenario", path)
	}
	if err := rep.Scenario.Validate(); err != nil {
		return nil, fmt.Errorf("verify: %s: %w", path, err)
	}
	return &rep, nil
}
