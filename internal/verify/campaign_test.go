package verify

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCampaignPasses is the in-tree slice of the mpg-verify campaign:
// every generated scenario must clear the linter, the differential
// bounds, and the metamorphic properties.
func TestCampaignPasses(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	rep, err := Campaign(CampaignOptions{Seed: 1, N: n})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, r := range rep.Results {
			for _, f := range r.Failures {
				t.Errorf("scenario %d (%s): %s", r.Index, r.Scenario.Name(), f)
			}
		}
	}
	if rep.Checked != n {
		t.Fatalf("checked %d, want %d", rep.Checked, n)
	}
}

// TestCampaignParallelMatchesSerial pins that worker count never
// changes results: scenario generation is index-seeded and results
// are reassembled in order, so a 4-worker campaign must equal the
// serial one bit for bit. Run under -race this also exercises the
// harness's concurrency safety.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 4
	}
	serial, err := Campaign(CampaignOptions{Seed: 42, N: n, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Campaign(CampaignOptions{Seed: 42, N: n, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel campaign diverged from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	sc := fixedScenario(ClassMixed)
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := SaveScenario(sc, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario: %+v vs %+v", sc, back)
	}
}

func TestReproducerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := fixedScenario(ClassLatency)
	shrunk := fixedScenario(ClassLatency)
	shrunk.Iterations = 1
	res := &ScenarioResult{
		Index:          3,
		Scenario:       orig,
		Failures:       []string{"differential: rank 0: synthetic"},
		Shrunk:         shrunk,
		ShrunkFailures: []string{"differential: rank 0: synthetic"},
	}
	path, err := writeReproducer(dir, 99, res)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CampaignSeed != 99 || rep.Index != 3 {
		t.Fatalf("identity lost: %+v", rep)
	}
	if !reflect.DeepEqual(rep.Scenario, shrunk) {
		t.Fatalf("reproducer should carry the shrunk scenario, got %+v", rep.Scenario)
	}
	if !reflect.DeepEqual(rep.Original, orig) {
		t.Fatalf("reproducer should keep the original scenario, got %+v", rep.Original)
	}
}

// TestShrinkMinimizes drives the shrinker with a synthetic predicate
// and checks it reaches the minimum the predicate allows.
func TestShrinkMinimizes(t *testing.T) {
	sc := fixedScenario(ClassLatency)
	sc.Iterations = 6
	sc.Bytes = 8000
	sc.Compute = 40_000
	// Fails whenever the workload still sends at least one message:
	// the minimum is a 1-iteration, 1-byte, tiny scenario.
	evals := 0
	shrunk := Shrink(sc, func(c *Scenario) bool {
		evals++
		return c.Iterations >= 1
	}, 200)
	if shrunk.Iterations != 1 {
		t.Errorf("iterations not minimized: %d", shrunk.Iterations)
	}
	if shrunk.Bytes != 1 || shrunk.Compute != 1 {
		t.Errorf("payload/compute not minimized: bytes=%d compute=%d", shrunk.Bytes, shrunk.Compute)
	}
	if shrunk.Validate() != nil {
		t.Errorf("shrunk scenario invalid: %v", shrunk.Validate())
	}
	if evals > 200 {
		t.Errorf("budget exceeded: %d evaluations", evals)
	}
}

// TestShrinkPreservesFailure: the shrunk scenario must still fail the
// predicate it was shrunk against.
func TestShrinkPreservesFailure(t *testing.T) {
	sc := fixedScenario(ClassMixed)
	pred := func(c *Scenario) bool { return c.DeltaLatency >= 1 && c.Ranks >= 2 }
	shrunk := Shrink(sc, pred, 100)
	if !pred(shrunk) {
		t.Fatalf("shrinking lost the failure: %+v", shrunk)
	}
	if shrunk.Ranks != 2 {
		t.Errorf("ranks not minimized to the predicate floor: %d", shrunk.Ranks)
	}
}

// TestCheckScenarioFindsNothing pins the full per-scenario check on
// the fixed cases (the unit the campaign fans out).
func TestCheckScenarioFindsNothing(t *testing.T) {
	for _, class := range Classes {
		if failures := CheckScenario(fixedScenario(class)); len(failures) > 0 {
			t.Errorf("%s:\n%s", class, strings.Join(failures, "\n"))
		}
	}
}
