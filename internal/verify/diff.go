package verify

import (
	"fmt"
	"math"

	"mpgraph/internal/baseline"
	"mpgraph/internal/core"
	"mpgraph/internal/trace"
)

// budgets are the model-equivalence allowances separating the two
// engines on one scenario. doc/VERIFY.md derives each term; the short
// version: the engines share the same dependency DAG (matching is
// timing-independent, §4.3), so per merge node the DES delay change is
// at most the graph's propagated delay (lower side) and the graph can
// overshoot the DES by at most the base schedule's slack at that merge
// (upper side). Everything else is bookkeeping differences between the
// two models.
type budgets struct {
	// Slack is the summed |local - remote| over every max() merge of
	// the base replay (baseline.Retimed.Slack): the graph engine
	// propagates delays without consulting base-schedule wait slack,
	// so it may overestimate by up to this much in total.
	Slack float64
	// Noise covers OS-noise draws the graph model makes and the DES
	// does not (per-operation draws; compute-gap draws cancel exactly).
	Noise float64
	// Trunc covers int64 truncation of the DES bandwidth term
	// (1 cycle per transfer or collective round; zero when bandwidth
	// is unperturbed).
	Trunc float64
	// CollUpper / CollLower cover collective-model differences: the
	// graph charges CollectiveRounds(kind) rounds with per-round
	// payloads, the DES charges ceil(log2 p) rounds of the record's
	// payload to every kind.
	CollUpper, CollLower float64
}

// epsLow is the lower-bound allowance: DES delay may exceed graph
// delay by at most this.
func (b budgets) epsLow() float64 { return b.Trunc + b.CollLower + 1e-6 }

// epsHigh is the upper-bound allowance: graph delay may exceed DES
// delay by at most this.
func (b budgets) epsHigh() float64 {
	return b.Slack + b.Noise + b.Trunc + b.CollUpper + 1e-6
}

// DiffResult is the outcome of one differential comparison.
type DiffResult struct {
	// Scenario is the case compared.
	Scenario *Scenario `json:"scenario"`
	// BaseFinal is the unperturbed DES schedule's per-rank completion
	// (the shared base both engines perturb).
	BaseFinal []int64 `json:"base_final"`
	// GraphDelay and DESDelay are the per-rank predicted delays.
	GraphDelay []float64 `json:"graph_delay"`
	DESDelay   []int64   `json:"des_delay"`
	// Budgets are the allowances the comparison ran under.
	Budgets budgets `json:"budgets"`
	// Failures lists bound violations (empty = the engines agree).
	Failures []string `json:"failures,omitempty"`
}

// OK reports whether every assertion held.
func (d *DiffResult) OK() bool { return len(d.Failures) == 0 }

func (d *DiffResult) failf(format string, args ...interface{}) {
	d.Failures = append(d.Failures, fmt.Sprintf(format, args...))
}

// Differential runs one scenario through both engines and checks the
// documented model-equivalence bounds:
//
//  1. Trace the workload, then retime the trace through the
//     unperturbed eager-mode DES (baseline.ReplayRetimed) so both
//     engines start from one globally aligned base schedule.
//  2. Idempotency: replaying the retimed trace unperturbed must
//     reproduce it exactly (the base schedule is a DES fixed point).
//  3. Replay the retimed trace under the perturbed DES model, analyze
//     it under the equivalent constant-delta graph model, and assert
//     per-rank and makespan agreement within budgets.
//
// A non-nil error means the harness itself failed (bad scenario,
// engine error); bound violations land in DiffResult.Failures.
func Differential(sc *Scenario) (*DiffResult, error) {
	set, err := sc.BuildTraces()
	if err != nil {
		return nil, err
	}
	rt, err := baseline.ReplayRetimed(set, sc.BaseParams())
	if err != nil {
		return nil, fmt.Errorf("verify: %s: base replay: %w", sc.Name(), err)
	}
	d := &DiffResult{
		Scenario:  sc,
		BaseFinal: rt.Result.FinalTimes,
	}
	d.Budgets = computeBudgets(sc, rt.Traces)
	d.Budgets.Slack = float64(rt.Slack)

	// Idempotency: the retimed trace is its own base schedule.
	again, err := replayMem(rt.Traces, sc.BaseParams())
	if err != nil {
		return nil, fmt.Errorf("verify: %s: idempotency replay: %w", sc.Name(), err)
	}
	for r, t := range again.FinalTimes {
		if t != rt.Result.FinalTimes[r] {
			d.failf("idempotency: rank %d: re-replay of the retimed trace finished at %d, want %d", r, t, rt.Result.FinalTimes[r])
		}
	}

	// Perturbed DES replay.
	perturbed, err := replayMem(rt.Traces, sc.PerturbedParams())
	if err != nil {
		return nil, fmt.Errorf("verify: %s: perturbed replay: %w", sc.Name(), err)
	}
	d.DESDelay = make([]int64, len(perturbed.FinalTimes))
	for r := range perturbed.FinalTimes {
		d.DESDelay[r] = perturbed.FinalTimes[r] - rt.Result.FinalTimes[r]
	}

	// Graph analysis under the equivalent constant-delta model.
	model, err := sc.PerturbationFile().Model()
	if err != nil {
		return nil, fmt.Errorf("verify: %s: model: %w", sc.Name(), err)
	}
	gset, err := trace.SetFromMem(rt.Traces)
	if err != nil {
		return nil, err
	}
	graph, err := core.Analyze(gset, model, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("verify: %s: graph analysis: %w", sc.Name(), err)
	}
	d.GraphDelay = make([]float64, len(graph.Ranks))
	for r := range graph.Ranks {
		d.GraphDelay[r] = graph.Ranks[r].FinalDelay
	}

	if sc.Class == ClassZero {
		// Nothing was perturbed: both engines must report exact zeros.
		for r := range d.GraphDelay {
			//mpg:lint-ignore floateq zero identity is an exact contract: an unperturbed model must yield bitwise-zero delay
			if d.GraphDelay[r] != 0 {
				d.failf("zero identity: rank %d: graph delay %g, want 0", r, d.GraphDelay[r])
			}
			if d.DESDelay[r] != 0 {
				d.failf("zero identity: rank %d: DES delay %d, want 0", r, d.DESDelay[r])
			}
		}
		return d, nil
	}

	epsLow, epsHigh := d.Budgets.epsLow(), d.Budgets.epsHigh()
	var desMak, graphMak float64
	for r := range d.GraphDelay {
		des := float64(d.DESDelay[r])
		gr := d.GraphDelay[r]
		if des > desMak {
			desMak = des
		}
		if gr > graphMak {
			graphMak = gr
		}
		if des < 0 {
			d.failf("rank %d: DES delay %g < 0 under a non-negative perturbation", r, des)
		}
		if gr < 0 {
			d.failf("rank %d: graph delay %g < 0 under a non-negative perturbation", r, gr)
		}
		if des > gr+epsLow {
			d.failf("rank %d: DES delay %g exceeds graph delay %g + lower allowance %g", r, des, gr, epsLow)
		}
		if gr > des+epsHigh {
			d.failf("rank %d: graph delay %g exceeds DES delay %g + upper allowance %g", r, gr, des, epsHigh)
		}
	}
	// Makespan deltas obey the same envelope (both are maxima of
	// per-rank series that obey it pointwise on a shared base).
	if math.Abs(desMak-graphMak) > math.Max(epsLow, epsHigh) {
		d.failf("makespan: DES delta %g vs graph delta %g beyond allowance %g", desMak, graphMak, math.Max(epsLow, epsHigh))
	}
	return d, nil
}

// replayMem wraps the retimed in-memory traces as a fresh Set and
// replays them.
func replayMem(traces []*trace.MemTrace, p baseline.Params) (*baseline.Result, error) {
	set, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	return baseline.Replay(set, p)
}

// computeBudgets scans the retimed trace and prices every modeling
// difference between the two engines (see budgets).
func computeBudgets(sc *Scenario, traces []*trace.MemTrace) budgets {
	dLat, dInv, c := sc.graphDeltas()
	p0, p1 := sc.BaseParams(), sc.PerturbedParams()
	// dInv is a model *parameter* delta (1/B1 − 1/B0), exactly zero
	// iff the scenario leaves bandwidth unperturbed — an identity
	// test on configuration, not a comparison of computed values.
	//mpg:lint-ignore floateq parameter-identity check: dInv is exactly 0 for bandwidth-unperturbed scenarios
	bandwidthPerturbed := dInv != 0
	byteDeltaInt := func(bytes int64) float64 {
		//mpg:lint-ignore floateq parameter-identity check: both sides are the scenario's configured BytesPerCycle
		if p1.BytesPerCycle == p0.BytesPerCycle || bytes <= 0 {
			return 0
		}
		return float64(int64(float64(bytes)/p1.BytesPerCycle) - int64(float64(bytes)/p0.BytesPerCycle))
	}
	var b budgets
	for _, mt := range traces {
		for _, rec := range mt.Records {
			switch {
			case rec.Kind == trace.KindMarker:
			case rec.Kind.IsNonblocking():
				if rec.Kind == trace.KindIsend && bandwidthPerturbed {
					b.Trunc++
				}
			case rec.Kind.IsCollective():
				p := int(rec.CommSize)
				gRounds := core.CollectiveRounds(rec.Kind, p)
				dRounds := baseline.CollectiveRounds(p)
				b.Noise += c * float64(gRounds)
				gCharge := float64(gRounds) * dLat
				if bandwidthPerturbed {
					for j := 0; j < gRounds; j++ {
						gCharge += dInv * float64(core.CollectiveRoundBytes(rec.Kind, rec.Bytes, j, p))
					}
					b.Trunc += float64(dRounds)
				}
				dCharge := float64(dRounds) * (dLat + byteDeltaInt(rec.Bytes))
				gLower := gCharge
				if rec.Kind == trace.KindScan {
					// Scan uses the explicit prefix chain in every
					// mode; rank 0 receives no charge at all.
					gCharge *= float64(p - 1)
					gLower = 0
				}
				if gCharge > dCharge {
					b.CollUpper += gCharge - dCharge
				}
				if dCharge > gLower {
					b.CollLower += dCharge - gLower
				}
			default:
				// Blocking p2p, waits, init, finalize: the graph draws
				// one per-operation noise sample the DES does not.
				b.Noise += c
				if rec.Kind == trace.KindSend && bandwidthPerturbed {
					b.Trunc++
				}
			}
		}
	}
	return b
}
