package verify

import (
	"strings"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/parallel"
)

func TestMetamorphicFixedScenarios(t *testing.T) {
	for _, class := range Classes {
		class := class
		t.Run(string(class), func(t *testing.T) {
			failures, err := Metamorphic(fixedScenario(class))
			if err != nil {
				t.Fatalf("Metamorphic: %v", err)
			}
			if len(failures) > 0 {
				t.Fatalf("properties violated:\n%s", strings.Join(failures, "\n"))
			}
		})
	}
}

func TestMetamorphicGenerated(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	for i := 0; i < n; i++ {
		rng := dist.NewRNG(parallel.TaskSeed(11, i))
		sc := Generate(rng)
		failures, err := Metamorphic(sc)
		if err != nil {
			t.Fatalf("scenario %d (%s): %v", i, sc.Name(), err)
		}
		for _, f := range failures {
			t.Errorf("scenario %d (%s): %s", i, sc.Name(), f)
		}
	}
}

func TestButterflyBound(t *testing.T) {
	for _, ranks := range []int{2, 4, 8} {
		if err := ButterflyBound(ranks, 3, 1024, 10_000, 500); err != nil {
			t.Errorf("ranks=%d: %v", ranks, err)
		}
	}
	if err := ButterflyBound(3, 1, 1, 1, 1); err == nil {
		t.Error("non-power-of-two ranks should be rejected")
	}
}

func TestOrderPreservationUnderNegativeDeltas(t *testing.T) {
	sc := fixedScenario(ClassNoise)
	traces, err := sc.BuildMemTraces()
	if err != nil {
		t.Fatal(err)
	}
	for _, magnitude := range []int64{100, 2_000, 50_000} {
		if err := OrderPreservation(traces, magnitude, 3); err != nil {
			t.Errorf("magnitude %d: %v", magnitude, err)
		}
	}
}
