// Package verify is the standing correctness harness for the two
// schedule-prediction engines: a differential oracle that replays
// randomly generated scenarios through both the graph-traversal
// analyzer (internal/core) and the DES baseline (internal/baseline)
// and asserts agreement within documented model-equivalence bounds, a
// metamorphic property suite over the graph engine, and a structural
// linter for traces and built graphs. The paper's Section 1 claim —
// that direct graph traversal computes the same perturbed schedules a
// general discrete-event simulation would — is exactly the property
// this package checks on every generated scenario (doc/VERIFY.md
// derives the bounds).
package verify

import (
	"encoding/json"
	"fmt"
	"os"

	"mpgraph/internal/baseline"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/scenario"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// Class selects which machine parameter a scenario perturbs. Constant
// (deterministic) deltas only: they admit exact model-equivalence
// bounds between the two engines.
type Class string

// Perturbation classes.
const (
	// ClassZero perturbs nothing; both engines must reproduce the base
	// schedule exactly.
	ClassZero Class = "zero"
	// ClassLatency adds a constant per-message latency delta.
	ClassLatency Class = "latency"
	// ClassBandwidth scales the link bandwidth down by a factor.
	ClassBandwidth Class = "bandwidth"
	// ClassNoise adds a constant per-operation OS-noise delta.
	ClassNoise Class = "noise"
	// ClassMixed applies all three at once.
	ClassMixed Class = "mixed"
)

// Classes lists every perturbation class in generation order.
var Classes = []Class{ClassZero, ClassLatency, ClassBandwidth, ClassNoise, ClassMixed}

// Scenario is one differential test case: a workload configuration
// that generates a trace, a base machine model, and a perturbation.
// It is the unit the shrinker minimizes and the reproducer file
// persists.
type Scenario struct {
	// Workload names the internal/workloads program.
	Workload string `json:"workload"`
	// Ranks is the world size (power of two when the workload is
	// butterfly).
	Ranks int `json:"ranks"`
	// Iterations, Tasks, Bytes, Compute, CollEvery feed
	// workloads.Options. All are >= 1 so a generated scenario never
	// falls back to the workload's (larger) defaults.
	Iterations int   `json:"iterations"`
	Tasks      int   `json:"tasks"`
	Bytes      int64 `json:"bytes"`
	Compute    int64 `json:"compute"`
	CollEvery  int   `json:"coll_every"`
	// WorkloadSeed drives workload-internal randomness (random pairs).
	WorkloadSeed uint64 `json:"workload_seed"`
	// MachineSeed drives the tracing platform's randomness.
	MachineSeed uint64 `json:"machine_seed"`
	// EagerLimit is the tracing platform's eager threshold in bytes
	// (affects trace structure only; 0 = rendezvous sends).
	EagerLimit int64 `json:"eager_limit,omitempty"`

	// BaseLatency and BaseBandwidth are the DES baseline's unperturbed
	// communication model (cycles and bytes/cycle).
	BaseLatency   int64   `json:"base_latency"`
	BaseBandwidth float64 `json:"base_bandwidth"`

	// Class picks the perturbation; the delta fields below apply only
	// to the classes that read them.
	Class Class `json:"class"`
	// DeltaLatency is the added per-message latency in cycles
	// (latency/mixed).
	DeltaLatency int64 `json:"delta_latency,omitempty"`
	// BandwidthFactor scales BaseBandwidth, in (0, 1] (bandwidth/mixed).
	BandwidthFactor float64 `json:"bandwidth_factor,omitempty"`
	// NoiseCycles is the constant per-operation OS noise in cycles
	// (noise/mixed).
	NoiseCycles int64 `json:"noise_cycles,omitempty"`
}

// genWorkloads are the workloads the generator draws from, with the
// rank range each supports. Butterfly is power-of-two only.
var genWorkloads = []struct {
	name     string
	minRanks int
	maxRanks int
}{
	{"tokenring", 2, 8},
	{"stencil1d", 2, 8},
	{"stencil2d", 2, 8},
	{"cg", 2, 6},
	{"masterworker", 2, 6},
	{"dynfarm", 2, 6},
	{"pipeline", 2, 8},
	{"butterfly", 2, 8},
	{"randompairs", 2, 8},
	{"bsp", 2, 6},
	{"wavefront", 2, 8},
}

// bandwidthChoices keeps generated bandwidths on values whose
// reciprocals are exact in float64, so documented truncation bounds
// stay tight.
var bandwidthChoices = []float64{0.5, 1, 2, 4}

// factorChoices are the bandwidth slowdown factors (<= 1 so the
// per-byte delta 1/B1 - 1/B0 is never negative).
var factorChoices = []float64{0.25, 0.5, 0.75, 1}

// Generate draws a random scenario from rng. Equal RNG states yield
// equal scenarios; the campaign derives one RNG per index via
// parallel.TaskSeed so generation is schedule-independent.
func Generate(rng *dist.RNG) *Scenario {
	w := genWorkloads[rng.Intn(len(genWorkloads))]
	ranks := w.minRanks + rng.Intn(w.maxRanks-w.minRanks+1)
	if w.name == "butterfly" {
		ranks = 1 << uint(rng.Intn(3)+1) // 2, 4, 8
	}
	sc := &Scenario{
		Workload:      w.name,
		Ranks:         ranks,
		Iterations:    1 + rng.Intn(6),
		Tasks:         1 + rng.Intn(12),
		Bytes:         1 + rng.Int63n(8192),
		Compute:       1 + rng.Int63n(50_000),
		CollEvery:     1 + rng.Intn(4),
		WorkloadSeed:  rng.Uint64(),
		MachineSeed:   rng.Uint64(),
		BaseLatency:   1 + rng.Int63n(2000),
		BaseBandwidth: bandwidthChoices[rng.Intn(len(bandwidthChoices))],
		Class:         Classes[rng.Intn(len(Classes))],
	}
	if rng.Intn(2) == 0 {
		sc.EagerLimit = 1 + rng.Int63n(4096)
	}
	switch sc.Class {
	case ClassLatency:
		sc.DeltaLatency = 1 + rng.Int63n(5000)
	case ClassBandwidth:
		sc.BandwidthFactor = factorChoices[rng.Intn(len(factorChoices)-1)] // exclude 1
	case ClassNoise:
		sc.NoiseCycles = 1 + rng.Int63n(2000)
	case ClassMixed:
		sc.DeltaLatency = 1 + rng.Int63n(5000)
		sc.BandwidthFactor = factorChoices[rng.Intn(len(factorChoices))]
		sc.NoiseCycles = 1 + rng.Int63n(2000)
	}
	return sc
}

// Validate rejects scenarios the harness cannot run meaningfully.
func (sc *Scenario) Validate() error {
	if _, ok := workloads.Get(sc.Workload); !ok {
		return fmt.Errorf("verify: unknown workload %q", sc.Workload)
	}
	if sc.Ranks < 1 {
		return fmt.Errorf("verify: ranks %d < 1", sc.Ranks)
	}
	if sc.Workload == "butterfly" && sc.Ranks&(sc.Ranks-1) != 0 {
		return fmt.Errorf("verify: butterfly needs power-of-two ranks, got %d", sc.Ranks)
	}
	if sc.Iterations < 1 || sc.Tasks < 1 || sc.Bytes < 1 || sc.Compute < 1 || sc.CollEvery < 1 {
		return fmt.Errorf("verify: workload size fields must be >= 1 (zero would silently fall back to workload defaults)")
	}
	if sc.BaseLatency < 0 || sc.BaseBandwidth <= 0 {
		return fmt.Errorf("verify: base machine model needs latency >= 0 and bandwidth > 0")
	}
	switch sc.Class {
	case ClassZero, ClassLatency, ClassBandwidth, ClassNoise, ClassMixed:
	default:
		return fmt.Errorf("verify: unknown perturbation class %q", sc.Class)
	}
	if sc.BandwidthFactor < 0 || sc.BandwidthFactor > 1 {
		return fmt.Errorf("verify: bandwidth factor %g outside (0, 1]", sc.BandwidthFactor)
	}
	if sc.DeltaLatency < 0 || sc.NoiseCycles < 0 {
		return fmt.Errorf("verify: negative perturbation delta")
	}
	return nil
}

// Name is a compact human-readable identity for reports.
func (sc *Scenario) Name() string {
	return fmt.Sprintf("%s/p%d/%s", sc.Workload, sc.Ranks, sc.Class)
}

// options maps the scenario onto workloads.Options.
func (sc *Scenario) options() workloads.Options {
	return workloads.Options{
		Iterations: sc.Iterations,
		Bytes:      sc.Bytes,
		Compute:    sc.Compute,
		CollEvery:  sc.CollEvery,
		Tasks:      sc.Tasks,
		Seed:       sc.WorkloadSeed,
	}
}

// BuildMemTraces runs the scenario's workload on the simulated
// platform and returns the in-memory per-rank traces. The traced
// timestamps only seed the differential harness's retiming pass; the
// platform model here shapes trace *structure* (matching, request ids,
// eager sends), not the compared schedules.
func (sc *Scenario) BuildMemTraces() ([]*trace.MemTrace, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	prog, err := workloads.BuildByName(sc.Workload, sc.options())
	if err != nil {
		return nil, err
	}
	cfg := mpi.Config{Machine: machine.Config{
		NRanks:        sc.Ranks,
		Seed:          sc.MachineSeed,
		Latency:       dist.Constant{C: float64(sc.BaseLatency)},
		BytesPerCycle: sc.BaseBandwidth,
		EagerLimit:    sc.EagerLimit,
	}}
	res, err := mpi.Run(cfg, prog)
	if err != nil {
		return nil, fmt.Errorf("verify: %s: trace generation: %w", sc.Name(), err)
	}
	return res.Traces, nil
}

// BuildTraces wraps BuildMemTraces as a trace.Set.
func (sc *Scenario) BuildTraces() (*trace.Set, error) {
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return nil, err
	}
	return trace.SetFromMem(traces)
}

// maxReplayEvents caps DES replays during campaigns; a well-formed
// generated scenario stays far below it.
const maxReplayEvents = 50_000_000

// BaseParams is the unperturbed DES model. Eager data anchors every
// transfer at the sender, aligning the replayer's merge structure with
// the graph model's Fig. 2 data path (doc/VERIFY.md).
func (sc *Scenario) BaseParams() baseline.Params {
	return baseline.Params{
		Latency:       sc.BaseLatency,
		BytesPerCycle: sc.BaseBandwidth,
		EagerData:     true,
		MaxEvents:     maxReplayEvents,
	}
}

// PerturbedParams applies the scenario's class deltas to the base DES
// model. Noise uses a constant distribution, so the replay stays
// deterministic and pointwise comparable.
func (sc *Scenario) PerturbedParams() baseline.Params {
	p := sc.BaseParams()
	switch sc.Class {
	case ClassLatency:
		p.Latency += sc.DeltaLatency
	case ClassBandwidth:
		p.BytesPerCycle *= sc.BandwidthFactor
	case ClassNoise:
		if sc.NoiseCycles > 0 {
			p.OSNoise = dist.Constant{C: float64(sc.NoiseCycles)}
		}
	case ClassMixed:
		p.Latency += sc.DeltaLatency
		if sc.BandwidthFactor > 0 {
			p.BytesPerCycle *= sc.BandwidthFactor
		}
		if sc.NoiseCycles > 0 {
			p.OSNoise = dist.Constant{C: float64(sc.NoiseCycles)}
		}
	}
	return p
}

// deltaPerByte is the graph model's per-byte delta matching the DES
// bandwidth change: 1/B1 - 1/B0 cycles per byte (0 when bandwidth is
// unperturbed).
func (sc *Scenario) deltaPerByte() float64 {
	p0, p1 := sc.BaseParams(), sc.PerturbedParams()
	//mpg:lint-ignore floateq parameter-identity check: both sides are the scenario's configured BytesPerCycle
	if p1.BytesPerCycle == p0.BytesPerCycle {
		return 0
	}
	return 1/p1.BytesPerCycle - 1/p0.BytesPerCycle
}

// graphDeltas returns the constant graph-model deltas equivalent to
// the scenario's DES perturbation.
func (sc *Scenario) graphDeltas() (latency, perByte, noise float64) {
	p0, p1 := sc.BaseParams(), sc.PerturbedParams()
	latency = float64(p1.Latency - p0.Latency)
	perByte = sc.deltaPerByte()
	if p1.OSNoise != nil {
		noise = float64(sc.NoiseCycles)
	}
	return latency, perByte, noise
}

// PerturbationFile expresses the scenario's perturbation as a
// persistable scenario.File (constant distributions only).
func (sc *Scenario) PerturbationFile() *scenario.File {
	return sc.scaledFile(1)
}

// scaledFile is PerturbationFile with every delta multiplied by k
// (the metamorphic monotonicity probe).
func (sc *Scenario) scaledFile(k float64) *scenario.File {
	lat, perByte, noise := sc.graphDeltas()
	return scenario.Constants(sc.Name(), lat*k, perByte*k, noise*k)
}

// SaveScenario writes the scenario as indented JSON (the reproducer
// format the shrinker emits).
func SaveScenario(sc *Scenario, path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadScenario reads a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("verify: %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("verify: %s: %w", path, err)
	}
	return &sc, nil
}
