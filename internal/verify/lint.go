package verify

import (
	"fmt"
	"sort"

	"mpgraph/internal/core"
	"mpgraph/internal/trace"
)

// Lint finding classes.
const (
	// LintBadRecord: a record fails trace.Record.Validate (field
	// applicability, End < Begin, missing request/sequence ids) or
	// reuses a still-pending request id.
	LintBadRecord = "bad-record"
	// LintNonMonotone: a record begins before its predecessor on the
	// same rank ended — local timestamps must be monotone.
	LintNonMonotone = "non-monotone-timestamp"
	// LintUnmatchedSend / LintUnmatchedRecv: a point-to-point posting
	// with no counterpart on the peer rank.
	LintUnmatchedSend = "unmatched-send"
	LintUnmatchedRecv = "unmatched-recv"
	// LintDanglingWait: a wait whose request id was never posted (or
	// was already completed).
	LintDanglingWait = "dangling-wait"
	// LintUnwaitedRequest: a nonblocking posting whose request is
	// never completed (the paper's §4.3 caveat: perturbations cannot
	// propagate back to a rank that never checks completion).
	LintUnwaitedRequest = "unwaited-request"
	// LintCollectiveMismatch: participants of one (comm, seq)
	// collective disagree on kind/root/size, or too many arrive.
	LintCollectiveMismatch = "collective-mismatch"
	// LintIncompleteCollective: fewer participants than the recorded
	// communicator size.
	LintIncompleteCollective = "incomplete-collective"
	// LintDeadlock: the trace cannot be replayed to completion — the
	// dependency structure stalls (a waits-for cycle, or a wait on an
	// exhausted peer).
	LintDeadlock = "deadlock"
	// LintNegativeEdge: a built graph edge with negative weight
	// (a non-monotone local interval that survived into the graph).
	LintNegativeEdge = "negative-edge"
	// LintGraphCycle: a cycle in the built graph — traversal order is
	// undefined, the trace cannot describe a real execution.
	LintGraphCycle = "graph-cycle"
)

// Finding is one linter diagnosis.
type Finding struct {
	// Class is one of the Lint* constants.
	Class string `json:"class"`
	// Rank is the offending rank, or -1 when the finding is global.
	Rank int `json:"rank"`
	// Event is the offending record index on Rank, or -1.
	Event int64 `json:"event"`
	// Message is the human-readable diagnosis.
	Message string `json:"message"`
}

// String renders the finding for text reports.
func (f Finding) String() string {
	where := "world"
	if f.Rank >= 0 {
		where = fmt.Sprintf("rank %d", f.Rank)
		if f.Event >= 0 {
			where = fmt.Sprintf("rank %d event %d", f.Rank, f.Event)
		}
	}
	return fmt.Sprintf("%s: %s: %s", f.Class, where, f.Message)
}

// chanKey identifies a directed point-to-point channel.
type chanKey struct {
	comm     int32
	src, dst int32
	tag      int32
}

// sortedChanKeys returns the map's channel keys in (comm, src, dst,
// tag) order, decoupling lint output from map iteration order.
func sortedChanKeys(m map[chanKey][]lintRef) []chanKey {
	keys := make([]chanKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.comm != b.comm {
			return a.comm < b.comm
		}
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	return keys
}

// lintRef remembers where a posting came from.
type lintRef struct {
	rank  int
	event int64
	bytes int64
}

// collGroup accumulates one (comm, seq) collective's participants.
type collGroup struct {
	kind   trace.Kind
	root   int32
	size   int32
	first  lintRef
	seen   map[int]bool
	nParts int
	extra  bool
}

// LintTraces statically checks a set of per-rank traces: per-record
// validity, local timestamp monotonicity, request lifecycle,
// point-to-point matching, collective consistency, and replayability
// (deadlock freedom under an eager-send interpretation). Findings are
// returned sorted by rank, then event.
func LintTraces(traces []*trace.MemTrace) []Finding {
	var out []Finding
	addf := func(class string, rank int, event int64, format string, args ...interface{}) {
		out = append(out, Finding{Class: class, Rank: rank, Event: event, Message: fmt.Sprintf(format, args...)})
	}

	sends := map[chanKey][]lintRef{}
	recvs := map[chanKey][]lintRef{}
	colls := map[collKey]*collGroup{}
	var collOrder []collKey

	for rank, mt := range traces {
		var prevEnd int64
		pending := map[uint64]trace.Kind{}
		for i, rec := range mt.Records {
			ev := int64(i)
			if err := rec.Validate(); err != nil {
				addf(LintBadRecord, rank, ev, "%v", err)
				continue
			}
			if i > 0 && rec.Begin < prevEnd {
				addf(LintNonMonotone, rank, ev, "%s begins at %d before the previous event ended at %d", rec.Kind, rec.Begin, prevEnd)
			}
			if rec.End > prevEnd {
				prevEnd = rec.End
			}
			switch {
			case rec.Kind == trace.KindSend || rec.Kind == trace.KindIsend:
				key := chanKey{comm: rec.Comm, src: int32(rank), dst: rec.Peer, tag: rec.Tag}
				sends[key] = append(sends[key], lintRef{rank: rank, event: ev, bytes: rec.Bytes})
			case rec.Kind == trace.KindRecv || rec.Kind == trace.KindIrecv:
				key := chanKey{comm: rec.Comm, src: rec.Peer, dst: int32(rank), tag: rec.Tag}
				recvs[key] = append(recvs[key], lintRef{rank: rank, event: ev, bytes: rec.Bytes})
			case rec.Kind.IsCollective():
				key := collKey{comm: rec.Comm, seq: rec.Seq}
				g := colls[key]
				if g == nil {
					g = &collGroup{
						kind:  rec.Kind,
						root:  rec.Root,
						size:  rec.CommSize,
						first: lintRef{rank: rank, event: ev},
						seen:  map[int]bool{},
					}
					colls[key] = g
					collOrder = append(collOrder, key)
				}
				switch {
				case g.kind != rec.Kind || g.root != rec.Root || g.size != rec.CommSize:
					addf(LintCollectiveMismatch, rank, ev,
						"%s(root=%d,size=%d) at comm %d seq %d conflicts with %s(root=%d,size=%d) posted by rank %d",
						rec.Kind, rec.Root, rec.CommSize, rec.Comm, rec.Seq, g.kind, g.root, g.size, g.first.rank)
				case g.seen[rank]:
					addf(LintCollectiveMismatch, rank, ev, "rank participates twice in %s comm %d seq %d", rec.Kind, rec.Comm, rec.Seq)
				default:
					g.seen[rank] = true
					g.nParts++
					if g.nParts > int(g.size) && !g.extra {
						g.extra = true
						addf(LintCollectiveMismatch, rank, ev, "%s comm %d seq %d has more participants than its size %d", rec.Kind, rec.Comm, rec.Seq, g.size)
					}
				}
			}
			if rec.Kind.IsNonblocking() {
				if _, dup := pending[rec.Req]; dup {
					addf(LintBadRecord, rank, ev, "%s reuses still-pending request %d", rec.Kind, rec.Req)
				} else {
					pending[rec.Req] = rec.Kind
				}
			}
			if rec.Kind.IsCompletion() {
				if _, ok := pending[rec.Req]; !ok {
					addf(LintDanglingWait, rank, ev, "%s completes request %d, which is not pending", rec.Kind, rec.Req)
				} else {
					delete(pending, rec.Req)
				}
			}
		}
		if len(pending) > 0 {
			reqs := make([]uint64, 0, len(pending))
			for req := range pending {
				reqs = append(reqs, req)
			}
			sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
			for _, req := range reqs {
				addf(LintUnwaitedRequest, rank, -1, "%s request %d is never completed", pending[req], req)
			}
		}
	}

	// FIFO point-to-point matching: pair sends and recvs per channel.
	// Channels are visited in sorted key order: the final sort below
	// keys findings by (rank, event) only, so ties between findings
	// at the same position must not inherit map iteration order.
	for _, key := range sortedChanKeys(sends) {
		ss := sends[key]
		rs := recvs[key]
		for i := len(rs); i < len(ss); i++ {
			addf(LintUnmatchedSend, ss[i].rank, ss[i].event, "send to rank %d tag %d comm %d has no matching receive", key.dst, key.tag, key.comm)
		}
	}
	for _, key := range sortedChanKeys(recvs) {
		rs := recvs[key]
		ss := sends[key]
		for i := len(ss); i < len(rs); i++ {
			addf(LintUnmatchedRecv, rs[i].rank, rs[i].event, "receive from rank %d tag %d comm %d has no matching send", key.src, key.tag, key.comm)
		}
	}
	for _, key := range collOrder {
		g := colls[key]
		if !g.extra && g.nParts < int(g.size) {
			addf(LintIncompleteCollective, g.first.rank, g.first.event, "%s comm %d seq %d has %d of %d participants", g.kind, key.comm, key.seq, g.nParts, g.size)
		}
	}

	out = append(out, lintProgress(traces)...)

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// collKey matches internal collective grouping (comm, seq).
type collKey struct {
	comm int32
	seq  int64
}

// lintProgress replays the traces' dependency structure with a
// pointer-per-rank simulation under an eager-send interpretation
// (sends and nonblocking postings never block; receives and waits
// block on data availability; collectives block until every
// participant arrives). If the simulation stalls before every rank
// drains, the trace deadlocks: the waits-for graph at the stall point
// names the cycle.
func lintProgress(traces []*trace.MemTrace) []Finding {
	n := len(traces)
	idx := make([]int, n)
	avail := map[chanKey]int{}   // posted sends not yet consumed
	arrived := map[collKey]int{} // collective arrivals
	inColl := make([]collKey, n) // the collective a rank has arrived at
	posted := make([]bool, n)
	// irecvKey maps a rank's pending irecv request to its channel.
	irecvKey := make([]map[uint64]chanKey, n)
	for r := range irecvKey {
		irecvKey[r] = map[uint64]chanKey{}
	}

	// canFire reports whether rank r's current record can complete,
	// and fires its side effects when it can.
	canFire := func(r int) bool {
		rec := traces[r].Records[idx[r]]
		if rec.Validate() != nil {
			return true // structurally bad records were already reported; skip
		}
		switch {
		case rec.Kind == trace.KindSend || rec.Kind == trace.KindIsend:
			avail[chanKey{comm: rec.Comm, src: int32(r), dst: rec.Peer, tag: rec.Tag}]++
			if rec.Kind == trace.KindIsend {
				// request completes trivially at its wait
				irecvKey[r][rec.Req] = chanKey{}
			}
			return true
		case rec.Kind == trace.KindRecv:
			key := chanKey{comm: rec.Comm, src: rec.Peer, dst: int32(r), tag: rec.Tag}
			if avail[key] > 0 {
				avail[key]--
				return true
			}
			return false
		case rec.Kind == trace.KindIrecv:
			irecvKey[r][rec.Req] = chanKey{comm: rec.Comm, src: rec.Peer, dst: int32(r), tag: rec.Tag}
			return true
		case rec.Kind.IsCompletion():
			key, ok := irecvKey[r][rec.Req]
			if !ok {
				return true // dangling wait, already reported
			}
			if key == (chanKey{}) { // isend completion
				delete(irecvKey[r], rec.Req)
				return true
			}
			if avail[key] > 0 {
				avail[key]--
				delete(irecvKey[r], rec.Req)
				return true
			}
			return false
		case rec.Kind.IsCollective():
			key := collKey{comm: rec.Comm, seq: rec.Seq}
			if !posted[r] {
				posted[r] = true
				inColl[r] = key
				arrived[key]++
			}
			if arrived[key] >= int(rec.CommSize) {
				posted[r] = false
				return true
			}
			return false
		default: // init, finalize, marker
			return true
		}
	}

	for {
		progressed := false
		done := true
		for r := 0; r < n; r++ {
			for idx[r] < len(traces[r].Records) && canFire(r) {
				idx[r]++
				progressed = true
			}
			if idx[r] < len(traces[r].Records) {
				done = false
			}
		}
		if done {
			return nil
		}
		if !progressed {
			break
		}
	}

	// Stalled: diagnose via the waits-for graph.
	waitsOn := make([][]int, n)
	describe := make([]string, n)
	stuck := make([]bool, n)
	for r := 0; r < n; r++ {
		if idx[r] >= len(traces[r].Records) {
			continue
		}
		stuck[r] = true
		rec := traces[r].Records[idx[r]]
		switch {
		case rec.Kind == trace.KindRecv || rec.Kind.IsCompletion():
			peer := rec.Peer
			if rec.Kind.IsCompletion() {
				if key, ok := irecvKey[r][rec.Req]; ok {
					peer = key.src
				}
			}
			describe[r] = fmt.Sprintf("%s from rank %d (tag %d)", rec.Kind, peer, rec.Tag)
			if int(peer) >= 0 && int(peer) < n {
				waitsOn[r] = append(waitsOn[r], int(peer))
			}
		case rec.Kind.IsCollective():
			describe[r] = fmt.Sprintf("%s comm %d seq %d (%d/%d arrived)", rec.Kind, rec.Comm, rec.Seq, arrived[collKey{comm: rec.Comm, seq: rec.Seq}], rec.CommSize)
			for p := 0; p < n; p++ {
				if p != r && (!posted[p] || inColl[p] != collKey{comm: rec.Comm, seq: rec.Seq}) {
					waitsOn[r] = append(waitsOn[r], p)
				}
			}
		default:
			describe[r] = rec.Kind.String()
		}
	}

	// Find a waits-for cycle among stuck ranks.
	cycle := findCycle(waitsOn, stuck)
	var out []Finding
	for r := 0; r < n; r++ {
		if !stuck[r] {
			continue
		}
		msg := fmt.Sprintf("stalled at %s", describe[r])
		if len(cycle) > 0 && cycle[r] {
			msg = fmt.Sprintf("waits-for cycle: stalled at %s", describe[r])
		}
		out = append(out, Finding{Class: LintDeadlock, Rank: r, Event: int64(idx[r]), Message: msg})
	}
	return out
}

// findCycle looks for a cycle in the waits-for digraph restricted to
// stuck ranks; it returns the membership set of the first cycle found
// (nil if none).
func findCycle(adj [][]int, stuck []bool) map[int]bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(adj))
	parent := make([]int, len(adj))
	for i := range parent {
		parent[i] = -1
	}
	var cycleAt, cycleTo = -1, -1
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			if !stuck[v] {
				continue
			}
			if color[v] == gray {
				cycleAt, cycleTo = u, v
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := range adj {
		if stuck[u] && color[u] == white && dfs(u) {
			members := map[int]bool{cycleTo: true}
			for x := cycleAt; x != -1 && x != cycleTo; x = parent[x] {
				members[x] = true
			}
			return members
		}
	}
	return nil
}

// GraphCollector implements core.GraphSink, retaining the built graph
// for structural linting.
type GraphCollector struct {
	// Nodes maps every introduced subevent to its traced local time.
	Nodes map[core.NodeRef]int64
	// Edges holds every edge in introduction order.
	Edges []GraphEdge
}

// GraphEdge is one collected edge.
type GraphEdge struct {
	From, To core.NodeRef
	Kind     core.EdgeKind
	Weight   int64
	Label    string
}

// NewGraphCollector returns an empty collector.
func NewGraphCollector() *GraphCollector {
	return &GraphCollector{Nodes: map[core.NodeRef]int64{}}
}

// AddNode implements core.GraphSink.
func (g *GraphCollector) AddNode(ref core.NodeRef, localTime int64, rec trace.Record) {
	g.Nodes[ref] = localTime
}

// AddEdge implements core.GraphSink.
func (g *GraphCollector) AddEdge(from, to core.NodeRef, kind core.EdgeKind, weight int64, label string) {
	g.Edges = append(g.Edges, GraphEdge{From: from, To: to, Kind: kind, Weight: weight, Label: label})
}

// LintGraph structurally checks a collected graph: local edges must
// have non-negative weights (a negative weight is a non-monotone local
// interval) and the digraph must be acyclic (a cycle means the trace
// cannot describe any real execution; traversal would not terminate).
func LintGraph(g *GraphCollector) []Finding {
	var out []Finding
	nodes := map[core.NodeRef]int{}
	//mpg:lint-ignore nondet map-to-map seeding is order-insensitive
	for ref := range g.Nodes {
		nodes[ref] = 0
	}
	for _, e := range g.Edges {
		if e.Weight < 0 {
			out = append(out, Finding{
				Class: LintNegativeEdge,
				Rank:  e.From.Rank,
				Event: e.From.Event,
				Message: fmt.Sprintf("%s edge %s -> %s has negative weight %d (%s)",
					e.Kind, e.From, e.To, e.Weight, e.Label),
			})
		}
		if _, ok := nodes[e.From]; !ok {
			nodes[e.From] = 0
		}
		if _, ok := nodes[e.To]; !ok {
			nodes[e.To] = 0
		}
	}
	// Kahn's algorithm: nodes left over after peeling zero-indegree
	// nodes lie on (or downstream of) a cycle.
	indeg := nodes
	succ := map[core.NodeRef][]core.NodeRef{}
	for _, e := range g.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	queue := make([]core.NodeRef, 0, len(indeg))
	//mpg:lint-ignore nondet Kahn's peel set is independent of seeding order; cycle members are sorted before output
	for ref, d := range indeg {
		if d == 0 {
			queue = append(queue, ref)
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, v := range succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if removed < len(indeg) {
		var members []string
		for ref, d := range indeg {
			if d > 0 {
				members = append(members, ref.String())
			}
		}
		sort.Strings(members)
		if len(members) > 6 {
			members = append(members[:6], "...")
		}
		out = append(out, Finding{
			Class:   LintGraphCycle,
			Rank:    -1,
			Event:   -1,
			Message: fmt.Sprintf("graph has a cycle through %d nodes (%v)", len(indeg)-removed, members),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// LintSet drains a trace.Set into memory and lints it.
func LintSet(set *trace.Set) ([]Finding, error) {
	traces := make([]*trace.MemTrace, set.NRanks())
	for i := 0; i < set.NRanks(); i++ {
		mt, err := trace.ReadAll(set.Rank(i))
		if err != nil {
			return nil, err
		}
		traces[i] = mt
	}
	return LintTraces(traces), nil
}
