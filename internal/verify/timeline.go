package verify

import (
	"bytes"
	"fmt"

	"mpgraph/internal/core"
	"mpgraph/internal/timeline"
	"mpgraph/internal/trace"
)

// TimelineInvariant asserts the wait-state decomposition is exact for
// the scenario under the full equivalence model grid: every model is
// replayed with interval recording on, and timeline.Check must confirm
// that each rank's interval segments tile from first start to the
// rank's completion time bit-for-bit, that per-rank wait totals equal
// RankResult.DelayInduced bitwise, and that the recorded critical path
// lies on the timeline. For the first grid cell the exported Perfetto
// JSON is additionally schema-validated and pinned byte-identical
// between the compiled and the streaming engine (the instrumentation
// must observe, never perturb — and must observe the same thing from
// both engines).
func TimelineInvariant(sc *Scenario) ([]string, error) {
	traces, err := sc.BuildMemTraces()
	if err != nil {
		return nil, err
	}
	cset, err := trace.SetFromMem(traces)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(cset, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}

	models, labels := equivalenceGrid(sc)
	var failures []string
	for i, trial := range models {
		tl := timeline.New(prog.NRanks())
		res, err := core.ReplayCompiled(prog, trial, core.Options{
			RecordCritPath: true,
			Interval:       tl.Record,
		})
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: compiled replay: %v", labels[i], err))
			continue
		}
		for _, msg := range tl.Check(res) {
			failures = append(failures, fmt.Sprintf("%s: %s", labels[i], msg))
		}
		if i > 0 {
			continue
		}

		// First cell only: the export must be schema-clean and engine-
		// independent. The streaming analyzer replays the same model with
		// the same recorder; both timelines must serialize identically.
		var compiledJSON bytes.Buffer
		if err := tl.WriteJSON(&compiledJSON, timeline.ExportOptions{CritPath: res.CritPath}); err != nil {
			failures = append(failures, fmt.Sprintf("%s: export: %v", labels[i], err))
			continue
		}
		for _, msg := range timeline.Validate(compiledJSON.Bytes()) {
			failures = append(failures, fmt.Sprintf("%s: exported JSON: %s", labels[i], msg))
		}
		sset, err := trace.SetFromMem(traces)
		if err != nil {
			return nil, err
		}
		stl := timeline.New(prog.NRanks())
		sres, err := core.Analyze(sset, trial, core.Options{
			RecordCritPath: true,
			Interval:       stl.Record,
		})
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: streaming analyze: %v", labels[i], err))
			continue
		}
		for _, msg := range stl.Check(sres) {
			failures = append(failures, fmt.Sprintf("%s: streaming: %s", labels[i], msg))
		}
		var streamingJSON bytes.Buffer
		if err := stl.WriteJSON(&streamingJSON, timeline.ExportOptions{CritPath: sres.CritPath}); err != nil {
			failures = append(failures, fmt.Sprintf("%s: streaming export: %v", labels[i], err))
			continue
		}
		if !bytes.Equal(compiledJSON.Bytes(), streamingJSON.Bytes()) {
			failures = append(failures, fmt.Sprintf(
				"%s: exported timeline differs between engines (%d vs %d bytes)",
				labels[i], compiledJSON.Len(), streamingJSON.Len()))
		}
	}
	return failures, nil
}
