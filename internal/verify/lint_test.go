package verify

import (
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/trace"
)

// mem builds a one-rank MemTrace for lint fixtures.
func mem(rank, nranks int, recs ...trace.Record) *trace.MemTrace {
	return &trace.MemTrace{
		Hdr:     trace.Header{Rank: rank, NRanks: nranks},
		Records: recs,
	}
}

// hasClass reports whether findings contain a class.
func hasClass(fs []Finding, class string) bool {
	for _, f := range fs {
		if f.Class == class {
			return true
		}
	}
	return false
}

func classes(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Class
	}
	return out
}

func TestLintCleanTraces(t *testing.T) {
	for _, class := range Classes {
		traces, err := fixedScenario(class).BuildMemTraces()
		if err != nil {
			t.Fatal(err)
		}
		if fs := LintTraces(traces); len(fs) > 0 {
			t.Fatalf("%s: clean workload trace produced findings: %v", class, fs)
		}
	}
}

func TestLintBadRecord(t *testing.T) {
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 1, trace.Record{Kind: trace.KindSend, Begin: 100, End: 50, Peer: 0}),
	})
	if !hasClass(fs, LintBadRecord) {
		t.Fatalf("want %s, got %v", LintBadRecord, classes(fs))
	}
}

func TestLintNonMonotone(t *testing.T) {
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2,
			trace.Record{Kind: trace.KindSend, Begin: 100, End: 200, Peer: 1},
			trace.Record{Kind: trace.KindSend, Begin: 150, End: 250, Peer: 1},
		),
		mem(1, 2,
			trace.Record{Kind: trace.KindRecv, Begin: 0, End: 10, Peer: 0},
			trace.Record{Kind: trace.KindRecv, Begin: 10, End: 20, Peer: 0},
		),
	})
	if !hasClass(fs, LintNonMonotone) {
		t.Fatalf("want %s, got %v", LintNonMonotone, classes(fs))
	}
}

func TestLintUnmatchedSend(t *testing.T) {
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2, trace.Record{Kind: trace.KindSend, Begin: 0, End: 10, Peer: 1}),
		mem(1, 2),
	})
	if !hasClass(fs, LintUnmatchedSend) {
		t.Fatalf("want %s, got %v", LintUnmatchedSend, classes(fs))
	}
}

func TestLintUnmatchedRecvDeadlocks(t *testing.T) {
	// A receive with no matching send is both a matching error and a
	// stall: the rank can never progress past it.
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2, trace.Record{Kind: trace.KindRecv, Begin: 0, End: 10, Peer: 1}),
		mem(1, 2),
	})
	if !hasClass(fs, LintUnmatchedRecv) {
		t.Fatalf("want %s, got %v", LintUnmatchedRecv, classes(fs))
	}
	if !hasClass(fs, LintDeadlock) {
		t.Fatalf("want %s, got %v", LintDeadlock, classes(fs))
	}
}

func TestLintDanglingWait(t *testing.T) {
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 1, trace.Record{Kind: trace.KindWait, Begin: 0, End: 10, Peer: trace.NoRank, Req: 7}),
	})
	if !hasClass(fs, LintDanglingWait) {
		t.Fatalf("want %s, got %v", LintDanglingWait, classes(fs))
	}
}

func TestLintUnwaitedRequest(t *testing.T) {
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2, trace.Record{Kind: trace.KindIsend, Begin: 0, End: 0, Peer: 1, Req: 1}),
		mem(1, 2, trace.Record{Kind: trace.KindRecv, Begin: 0, End: 10, Peer: 0}),
	})
	if !hasClass(fs, LintUnwaitedRequest) {
		t.Fatalf("want %s, got %v", LintUnwaitedRequest, classes(fs))
	}
}

func TestLintCollectiveMismatch(t *testing.T) {
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2, trace.Record{Kind: trace.KindBarrier, Begin: 0, End: 10, Peer: trace.NoRank, Root: trace.NoRank, Seq: 1, CommSize: 2}),
		mem(1, 2, trace.Record{Kind: trace.KindAllreduce, Begin: 0, End: 10, Peer: trace.NoRank, Root: trace.NoRank, Seq: 1, CommSize: 2, Bytes: 8}),
	})
	if !hasClass(fs, LintCollectiveMismatch) {
		t.Fatalf("want %s, got %v", LintCollectiveMismatch, classes(fs))
	}
}

func TestLintIncompleteCollective(t *testing.T) {
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2, trace.Record{Kind: trace.KindBarrier, Begin: 0, End: 10, Peer: trace.NoRank, Root: trace.NoRank, Seq: 1, CommSize: 2}),
		mem(1, 2),
	})
	if !hasClass(fs, LintIncompleteCollective) {
		t.Fatalf("want %s, got %v", LintIncompleteCollective, classes(fs))
	}
}

func TestLintDeadlockRecvCycle(t *testing.T) {
	// Classic head-to-head receive deadlock: both ranks receive first,
	// send after. Matching is clean; the schedule can never run.
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2,
			trace.Record{Kind: trace.KindRecv, Begin: 0, End: 10, Peer: 1},
			trace.Record{Kind: trace.KindSend, Begin: 10, End: 20, Peer: 1},
		),
		mem(1, 2,
			trace.Record{Kind: trace.KindRecv, Begin: 0, End: 10, Peer: 0},
			trace.Record{Kind: trace.KindSend, Begin: 10, End: 20, Peer: 0},
		),
	})
	if !hasClass(fs, LintDeadlock) {
		t.Fatalf("want %s, got %v", LintDeadlock, classes(fs))
	}
	if hasClass(fs, LintUnmatchedSend) || hasClass(fs, LintUnmatchedRecv) {
		t.Fatalf("matching is clean in this fixture, got %v", classes(fs))
	}
	for _, f := range fs {
		if f.Class == LintDeadlock && f.Rank == 0 {
			if want := "waits-for cycle"; len(f.Message) < len(want) || f.Message[:len(want)] != want {
				t.Fatalf("deadlock finding should name the cycle, got %q", f.Message)
			}
		}
	}
}

func TestLintDeadlockCollectiveOrder(t *testing.T) {
	// Rank 0 enters barrier seq 1 then seq 2; rank 1 the reverse.
	bar := func(seq int64, b, e int64) trace.Record {
		return trace.Record{Kind: trace.KindBarrier, Begin: b, End: e, Peer: trace.NoRank, Root: trace.NoRank, Seq: seq, CommSize: 2}
	}
	fs := LintTraces([]*trace.MemTrace{
		mem(0, 2, bar(1, 0, 10), bar(2, 10, 20)),
		mem(1, 2, bar(2, 0, 10), bar(1, 10, 20)),
	})
	if !hasClass(fs, LintDeadlock) {
		t.Fatalf("want %s, got %v", LintDeadlock, classes(fs))
	}
}

func TestLintGraphNegativeEdgeAndCycle(t *testing.T) {
	g := NewGraphCollector()
	a := core.NodeRef{Rank: 0, Event: 0}
	b := core.NodeRef{Rank: 0, Event: 0, End: true}
	g.AddNode(a, 0, trace.Record{Kind: trace.KindInit})
	g.AddNode(b, 10, trace.Record{Kind: trace.KindInit})
	g.AddEdge(a, b, core.EdgeLocal, -5, "dur")
	g.AddEdge(b, a, core.EdgeLocal, 5, "back")
	fs := LintGraph(g)
	if !hasClass(fs, LintNegativeEdge) {
		t.Fatalf("want %s, got %v", LintNegativeEdge, classes(fs))
	}
	if !hasClass(fs, LintGraphCycle) {
		t.Fatalf("want %s, got %v", LintGraphCycle, classes(fs))
	}
}

func TestLintGraphCleanFromAnalyzer(t *testing.T) {
	traces, err := fixedScenario(ClassLatency).BuildMemTraces()
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraphCollector()
	if _, err := analyzeMem(traces, &core.Model{}, core.Options{Graph: g}); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatal("collector saw no graph")
	}
	if fs := LintGraph(g); len(fs) > 0 {
		t.Fatalf("built graph from a clean trace produced findings: %v", fs)
	}
}
