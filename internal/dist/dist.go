package dist

import (
	"fmt"
	"math"
)

// Distribution is a source of perturbation magnitudes. Sample draws one
// value using the supplied generator; Mean reports the theoretical (or,
// for empirical distributions, sample) mean. Samples are expressed in
// the same unit as the simulator clock (cycles) but the package itself
// is unit-agnostic.
//
// Implementations must be pure: all randomness comes from the RNG
// argument, never from internal state, so that a Distribution value can
// be shared across ranks and goroutine-free replays stay deterministic.
type Distribution interface {
	// Sample draws a single value.
	Sample(r *RNG) float64
	// Mean returns the expected value of the distribution.
	Mean() float64
	// String returns a short human-readable description, e.g.
	// "exponential(mean=250)".
	String() string
}

// Constant is a degenerate distribution that always returns C. A zero
// Constant is the canonical "no perturbation" source.
type Constant struct {
	C float64
}

// Sample implements Distribution.
func (c Constant) Sample(*RNG) float64 { return c.C }

// Mean implements Distribution.
func (c Constant) Mean() float64 { return c.C }

// String implements Distribution.
func (c Constant) String() string { return fmt.Sprintf("constant(%g)", c.C) }

// Uniform is the continuous uniform distribution on [Low, High).
type Uniform struct {
	Low, High float64
}

// Sample implements Distribution.
//
//mpg:hotpath
func (u Uniform) Sample(r *RNG) float64 {
	return u.Low + (u.High-u.Low)*r.Float64()
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Low + u.High) / 2 }

// String implements Distribution.
func (u Uniform) String() string {
	return fmt.Sprintf("uniform[%g,%g)", u.Low, u.High)
}

// Exponential is the exponential distribution with the given mean
// (i.e. rate 1/MeanValue). The paper singles out the exponential as the
// customary model for queueing-like delays (Section 5).
type Exponential struct {
	MeanValue float64
}

// Sample implements Distribution via the 256-layer ziggurat
// (ziggurat.go): ~99% of draws are one Uint64, one table lookup, and
// one compare; math.Log survives only on the rare tail. The exact
// inverse-CDF sampler this replaced remains available through Exact().
//
//mpg:hotpath
func (e Exponential) Sample(r *RNG) float64 {
	return e.MeanValue * stdExp(r)
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.MeanValue }

// String implements Distribution.
func (e Exponential) String() string {
	return fmt.Sprintf("exponential(mean=%g)", e.MeanValue)
}

// Normal is the normal (Gaussian) distribution. Negative samples are
// possible; callers modeling strictly-positive delays should wrap it in
// Truncated or use LogNormal.
type Normal struct {
	Mu, Sigma float64
}

// Sample implements Distribution via the 256-layer symmetric ziggurat
// (ziggurat.go); the Box–Muller sampler it replaced remains available
// through Exact().
//
//mpg:hotpath
func (n Normal) Sample(r *RNG) float64 {
	return n.Mu + n.Sigma*stdNorm(r)
}

// Mean implements Distribution.
func (n Normal) Mean() float64 { return n.Mu }

// String implements Distribution.
func (n Normal) String() string {
	return fmt.Sprintf("normal(mu=%g,sigma=%g)", n.Mu, n.Sigma)
}

// LogNormal is the log-normal distribution: exp(X) where X is normal
// with parameters Mu and Sigma (of the underlying normal).
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(Normal{Mu: l.Mu, Sigma: l.Sigma}.Sample(r))
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// String implements Distribution.
func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", l.Mu, l.Sigma)
}

// Pareto is the Pareto (power-law) distribution with scale Xm > 0 and
// shape Alpha > 0. Heavy-tailed OS interference (rare long daemon
// activations) is well modeled by small Alpha.
type Pareto struct {
	Xm, Alpha float64
}

// Sample implements Distribution by inverse-CDF.
func (p Pareto) Sample(r *RNG) float64 {
	return p.Xm / math.Pow(r.Float64Open(), 1/p.Alpha)
}

// Mean implements Distribution. The mean is infinite for Alpha <= 1; in
// that case +Inf is returned.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// String implements Distribution.
func (p Pareto) String() string {
	return fmt.Sprintf("pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha)
}

// Spike models intermittent interference: with probability P the value
// is drawn from Magnitude, otherwise it is zero. This is the natural
// shape of timer-tick / daemon OS noise observed by FTQ-style
// microbenchmarks: most quanta are clean, a few lose a large chunk.
type Spike struct {
	P         float64
	Magnitude Distribution
}

// Sample implements Distribution.
func (s Spike) Sample(r *RNG) float64 {
	if r.Float64() < s.P {
		return s.Magnitude.Sample(r)
	}
	// Burn the magnitude draw? No: keep streams minimal and document
	// that Spike consumes one uniform always and one magnitude sample
	// only when it fires.
	return 0
}

// Mean implements Distribution.
func (s Spike) Mean() float64 { return s.P * s.Magnitude.Mean() }

// String implements Distribution.
func (s Spike) String() string {
	return fmt.Sprintf("spike(p=%g,%s)", s.P, s.Magnitude)
}

// Shifted adds a constant offset to every sample of the inner
// distribution. Useful to express "base latency + jitter".
type Shifted struct {
	Offset float64
	Inner  Distribution
}

// Sample implements Distribution.
func (s Shifted) Sample(r *RNG) float64 { return s.Offset + s.Inner.Sample(r) }

// Mean implements Distribution.
func (s Shifted) Mean() float64 { return s.Offset + s.Inner.Mean() }

// String implements Distribution.
func (s Shifted) String() string {
	return fmt.Sprintf("shifted(%g+%s)", s.Offset, s.Inner)
}

// Scaled multiplies every sample of the inner distribution by Factor.
type Scaled struct {
	Factor float64
	Inner  Distribution
}

// Sample implements Distribution.
func (s Scaled) Sample(r *RNG) float64 { return s.Factor * s.Inner.Sample(r) }

// Mean implements Distribution.
func (s Scaled) Mean() float64 { return s.Factor * s.Inner.Mean() }

// String implements Distribution.
func (s Scaled) String() string {
	return fmt.Sprintf("scaled(%g*%s)", s.Factor, s.Inner)
}

// Truncated clamps samples of the inner distribution to [Low, High].
// It clamps rather than rejection-samples so that the number of RNG
// draws per sample is constant (replay determinism is easier to reason
// about, and the analyzer samples in hot loops).
type Truncated struct {
	Low, High float64
	Inner     Distribution
}

// Sample implements Distribution.
func (t Truncated) Sample(r *RNG) float64 {
	v := t.Inner.Sample(r)
	if v < t.Low {
		return t.Low
	}
	if v > t.High {
		return t.High
	}
	return v
}

// Mean implements Distribution. The clamped mean has no closed form in
// general; the inner mean clamped to the interval is returned as an
// approximation and documented as such.
func (t Truncated) Mean() float64 {
	m := t.Inner.Mean()
	if m < t.Low {
		return t.Low
	}
	if m > t.High {
		return t.High
	}
	return m
}

// String implements Distribution.
func (t Truncated) String() string {
	return fmt.Sprintf("truncated[%g,%g](%s)", t.Low, t.High, t.Inner)
}

// Mixture draws from one of several component distributions with the
// given weights (which need not be normalized).
type Mixture struct {
	Weights    []float64
	Components []Distribution
}

// NewMixture builds a mixture; it panics if the slice lengths differ,
// are empty, or any weight is negative.
func NewMixture(weights []float64, comps []Distribution) Mixture {
	if len(weights) != len(comps) || len(comps) == 0 {
		panic("dist: mixture needs equal, non-zero numbers of weights and components")
	}
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("dist: mixture weight must be non-negative")
		}
	}
	return Mixture{Weights: weights, Components: comps}
}

func (m Mixture) total() float64 {
	t := 0.0
	for _, w := range m.Weights {
		t += w
	}
	return t
}

// Sample implements Distribution.
func (m Mixture) Sample(r *RNG) float64 {
	u := r.Float64() * m.total()
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean implements Distribution.
func (m Mixture) Mean() float64 {
	t := m.total()
	if t == 0 {
		return 0
	}
	sum := 0.0
	for i, w := range m.Weights {
		sum += w * m.Components[i].Mean()
	}
	return sum / t
}

// String implements Distribution.
func (m Mixture) String() string {
	return fmt.Sprintf("mixture(%d components)", len(m.Components))
}
