package dist

import (
	"math"
	"sort"
)

// Kolmogorov–Smirnov machinery for the statistical correctness
// harness: the sampler acceptance suite (statcheck_test.go) pins every
// Distribution implementation against its analytic CDF, and the
// differential ziggurat tests (ziggurat_test.go) pin the fast samplers
// against the exact reference samplers with the two-sample statistic.
// The helpers are exported so external tooling (mpg-bench -sampler
// uses the two-sample gate) can reuse them.

// KSStat computes the one-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_n(x) − F(x)| of the samples against a continuous CDF.
// The input is not modified.
func KSStat(samples []float64, cdf func(float64) float64) float64 {
	return KSStatAtomic(samples, cdf, cdf)
}

// KSStatAtomic is KSStat generalized to distributions with atoms
// (point masses): cdfLeft must return the left limit F(x⁻). The
// statistic is then D = sup_x max(F_n(x) − F(x), F(x⁻) − F_n(x⁻)),
// which reduces to the classic two-sided statistic when F is
// continuous (cdfLeft == cdf) and stays conservative at jumps — a
// correct empirical atom contributes no spurious deviation. Degenerate
// and clamped distributions (Constant, Spike, Truncated) need this
// form.
func KSStatAtomic(samples []float64, cdf, cdfLeft func(float64) float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, samples)
	sort.Float64s(s)
	d := 0.0
	fn := float64(n)
	for i, x := range s {
		if up := float64(i+1)/fn - cdf(x); up > d {
			d = up
		}
		if down := cdfLeft(x) - float64(i)/fn; down > d {
			d = down
		}
	}
	return d
}

// KSCriticalOne returns the asymptotic one-sample rejection threshold
// at significance level alpha: c(α)/√n with c(α) = √(ln(2/α)/2). A
// statistic above it rejects the hypothesis that the samples follow
// the reference CDF with false-positive probability ≤ α. The harness
// runs at fixed seeds, so a pass is deterministic; α only calibrates
// how far from the analytic law a code change must wander to fail.
func KSCriticalOne(alpha float64, n int) float64 {
	return math.Sqrt(math.Log(2/alpha)/2) / math.Sqrt(float64(n))
}

// KSStatTwo computes the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) − F_b(x)| between two sample sets. Ties across
// the sets are handled by advancing both empirical CDFs past the tied
// value before comparing. The inputs are not modified.
func KSStatTwo(a, b []float64) float64 {
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)
	na, nb := float64(len(sa)), float64(len(sb))
	d := 0.0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] <= v {
			i++
		}
		for j < len(sb) && sb[j] <= v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// KSCriticalTwo returns the asymptotic two-sample rejection threshold
// at significance level alpha for sample sizes n and m:
// c(α)·√((n+m)/(n·m)).
func KSCriticalTwo(alpha float64, n, m int) float64 {
	return math.Sqrt(math.Log(2/alpha)/2) *
		math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}
