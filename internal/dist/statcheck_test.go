package dist

import (
	"math"
	"testing"
)

// Statistical acceptance suite: every Distribution implementation is
// pinned against its analytic law at fixed seeds — a one-sample
// Kolmogorov–Smirnov test against the analytic CDF (generalized to
// atoms for the degenerate/clamped families) plus mean/variance moment
// checks with CLT-derived tolerances. The table is the acceptance
// gate for any sampler change: a new sampling algorithm (the ziggurat
// being the motivating one) must keep drawing the right distribution,
// and a new Distribution added to the package gets coverage by adding
// one table row.

// statCase is one distribution's acceptance pin.
type statCase struct {
	name string
	d    Distribution
	// cdf is the analytic CDF F(x) = P(X <= x); nil skips the KS check
	// (used only where no closed form is tractable, e.g. Gamma).
	cdf func(float64) float64
	// cdfLeft is the left limit F(x⁻) for distributions with atoms;
	// nil means continuous (cdfLeft = cdf).
	cdfLeft func(float64) float64
	// mean is the analytic mean; +Inf skips the mean check.
	mean float64
	// variance is the analytic variance; NaN skips the variance check
	// (heavy tails, clamps without closed forms).
	variance float64
}

// statN is the per-case sample count and statAlpha the KS significance
// level. The run is seeded, so outcomes are deterministic; alpha only
// calibrates how far from the analytic law a code change must wander
// before the suite fails (crit ≈ 0.0157 at n=20000).
const (
	statN     = 20000
	statAlpha = 1e-4
)

func phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// quantileCDF inverts a monotone quantile function numerically:
// sup{q : Q(q) <= x} (or, strict, sup{q : Q(q) < x} — the left limit).
// It is the exact law of any sampler of the form X = Q(U) with U
// uniform, so empirical-family CDFs need no hand derivation.
func quantileCDF(quant func(float64) float64, x float64, strict bool) float64 {
	ok := func(v float64) bool {
		if strict {
			return v < x
		}
		return v <= x
	}
	if !ok(quant(0)) {
		return 0
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if ok(quant(mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func statCases() []statCase {
	expCDF := func(mean float64) func(float64) float64 {
		return func(x float64) float64 {
			if x < 0 {
				return 0
			}
			return 1 - math.Exp(-x/mean)
		}
	}

	// The sampled law of Empirical is the piecewise-linear interpolation
	// of the order statistics (X = Quantile(U)), whose mean is the
	// average of the segment midpoints — not the raw sample mean that
	// Mean() reports.
	empSamples := []float64{1, 2, 2, 3, 5, 8, 13}
	empirical := NewEmpirical(empSamples)
	empMean := 0.0
	for i := 0; i+1 < len(empSamples); i++ {
		empMean += (empSamples[i] + empSamples[i+1]) / 2
	}
	empMean /= float64(len(empSamples) - 1)

	hist := NewHistogram(0, 10, 8)
	histSamples := []float64{3, 7, 12, 12, 18, 25, 31, 33, 47, 52, 55, 61, 74, 74, 79}
	hist.AddAll(histSamples)
	histCDF := func(x float64) float64 {
		if x <= hist.Low {
			return 0
		}
		var acc float64
		for i, c := range hist.Counts {
			lo := hist.Low + hist.Width*float64(i)
			if x >= lo+hist.Width {
				acc += float64(c)
				continue
			}
			acc += float64(c) * (x - lo) / hist.Width
			break
		}
		f := acc / float64(hist.Total)
		if f > 1 {
			return 1
		}
		return f
	}
	histMean := 0.0
	for i, c := range hist.Counts {
		histMean += float64(c) * hist.BinCenter(i)
	}
	histMean /= float64(hist.Total)

	mix := NewMixture([]float64{1, 3}, []Distribution{Uniform{Low: 0, High: 1}, Exponential{MeanValue: 200}})
	mixMean := 0.25*0.5 + 0.75*200
	mixM2 := 0.25*(1.0/3) + 0.75*(2*200*200) // E[X²]

	weibull := Weibull{Lambda: 100, K: 1.5}
	wg1 := math.Gamma(1 + 1/weibull.K)
	wg2 := math.Gamma(1 + 2/weibull.K)

	// Truncated exponential clamped to [1,4]: atoms at both edges.
	// E = 1·F(1) + ∫₁⁴ x f(x) dx + 4·(1−F(4)) = 1 + 3e^{-1/3} − 3e^{-4/3}.
	truncMean := 1 + 3*math.Exp(-1.0/3) - 3*math.Exp(-4.0/3)

	return []statCase{
		{
			name: "constant", d: Constant{C: 7.5},
			cdf: func(x float64) float64 {
				if x < 7.5 {
					return 0
				}
				return 1
			},
			cdfLeft: func(x float64) float64 {
				if x <= 7.5 {
					return 0
				}
				return 1
			},
			mean: 7.5, variance: 0,
		},
		{
			name: "uniform", d: Uniform{Low: 3, High: 11},
			cdf: func(x float64) float64 {
				switch {
				case x < 3:
					return 0
				case x >= 11:
					return 1
				}
				return (x - 3) / 8
			},
			mean: 7, variance: 64.0 / 12,
		},
		{
			name: "exponential", d: Exponential{MeanValue: 250},
			cdf: expCDF(250), mean: 250, variance: 250 * 250,
		},
		{
			name: "normal", d: Normal{Mu: 5, Sigma: 2},
			cdf:  func(x float64) float64 { return phi((x - 5) / 2) },
			mean: 5, variance: 4,
		},
		{
			name: "lognormal", d: LogNormal{Mu: 1, Sigma: 0.5},
			cdf: func(x float64) float64 {
				if x <= 0 {
					return 0
				}
				return phi((math.Log(x) - 1) / 0.5)
			},
			mean:     math.Exp(1 + 0.125),
			variance: (math.Exp(0.25) - 1) * math.Exp(2+0.25),
		},
		{
			name: "pareto", d: Pareto{Xm: 2, Alpha: 3},
			cdf: func(x float64) float64 {
				if x < 2 {
					return 0
				}
				return 1 - math.Pow(2/x, 3)
			},
			mean: 3, variance: 3, // α·xm²/((α−1)²(α−2))
		},
		{
			name: "spike", d: Spike{P: 0.3, Magnitude: Exponential{MeanValue: 100}},
			cdf: func(x float64) float64 {
				if x < 0 {
					return 0
				}
				return 0.7 + 0.3*(1-math.Exp(-x/100))
			},
			cdfLeft: func(x float64) float64 {
				if x <= 0 {
					return 0
				}
				return 0.7 + 0.3*(1-math.Exp(-x/100))
			},
			mean: 30, variance: 0.3*2*100*100 - 30*30,
		},
		{
			name: "shifted", d: Shifted{Offset: 10, Inner: Exponential{MeanValue: 50}},
			cdf: func(x float64) float64 {
				if x < 10 {
					return 0
				}
				return 1 - math.Exp(-(x-10)/50)
			},
			mean: 60, variance: 2500,
		},
		{
			name: "scaled", d: Scaled{Factor: 2.5, Inner: Uniform{Low: 0, High: 1}},
			cdf: func(x float64) float64 {
				switch {
				case x < 0:
					return 0
				case x >= 2.5:
					return 1
				}
				return x / 2.5
			},
			mean: 1.25, variance: 2.5 * 2.5 / 12,
		},
		{
			name: "truncated", d: Truncated{Low: 1, High: 4, Inner: Exponential{MeanValue: 3}},
			cdf: func(x float64) float64 {
				switch {
				case x < 1:
					return 0
				case x >= 4:
					return 1
				}
				return 1 - math.Exp(-x/3)
			},
			cdfLeft: func(x float64) float64 {
				switch {
				case x <= 1:
					return 0
				case x <= 4:
					return 1 - math.Exp(-x/3)
				}
				return 1
			},
			mean: truncMean, variance: math.NaN(),
		},
		{
			name: "mixture", d: mix,
			cdf: func(x float64) float64 {
				u := 0.0
				switch {
				case x >= 1:
					u = 1
				case x > 0:
					u = x
				}
				e := 0.0
				if x > 0 {
					e = 1 - math.Exp(-x/200)
				}
				return 0.25*u + 0.75*e
			},
			mean: mixMean, variance: mixM2 - mixMean*mixMean,
		},
		{
			name: "empirical", d: empirical,
			cdf: func(x float64) float64 {
				return quantileCDF(empirical.Quantile, x, false)
			},
			cdfLeft: func(x float64) float64 {
				return quantileCDF(empirical.Quantile, x, true)
			},
			mean: empMean, variance: math.NaN(),
		},
		{
			name: "histogram", d: hist,
			cdf: histCDF, mean: histMean, variance: math.NaN(),
		},
		{
			name: "weibull", d: weibull,
			cdf: func(x float64) float64 {
				if x < 0 {
					return 0
				}
				return 1 - math.Exp(-math.Pow(x/100, 1.5))
			},
			mean:     100 * wg1,
			variance: 100 * 100 * (wg2 - wg1*wg1),
		},
		{
			name: "gamma", d: Gamma{K: 2.5, Theta: 40},
			cdf:  nil, // no stdlib regularized incomplete gamma; moments only
			mean: 100, variance: 2.5 * 40 * 40,
		},
		{
			name: "bernoulli", d: Bernoulli{P: 0.25, Value: 8},
			cdf: func(x float64) float64 {
				switch {
				case x < 0:
					return 0
				case x < 8:
					return 0.75
				}
				return 1
			},
			cdfLeft: func(x float64) float64 {
				switch {
				case x <= 0:
					return 0
				case x <= 8:
					return 0.75
				}
				return 1
			},
			mean: 2, variance: 0.25*64 - 4,
		},
	}
}

// statSeed derives a fixed per-case seed from the case name so adding
// a row never reshuffles another row's stream.
func statSeed(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h | 1
}

// TestStatCheckAcceptance is the acceptance gate: KS against the
// analytic CDF plus moment checks for every Distribution.
func TestStatCheckAcceptance(t *testing.T) {
	for _, tc := range statCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := NewRNG(statSeed(tc.name))
			samples := make([]float64, statN)
			for i := range samples {
				samples[i] = tc.d.Sample(r)
			}

			if tc.cdf != nil {
				left := tc.cdfLeft
				if left == nil {
					left = tc.cdf
				}
				d := KSStatAtomic(samples, tc.cdf, left)
				if crit := KSCriticalOne(statAlpha, statN); d > crit {
					t.Errorf("%s: KS statistic %.5f exceeds critical value %.5f (alpha=%g, n=%d)",
						tc.d, d, crit, statAlpha, statN)
				}
			}

			sum := 0.0
			for _, v := range samples {
				sum += v
			}
			m := sum / statN
			var m2, m4 float64
			for _, v := range samples {
				dlt := v - m
				m2 += dlt * dlt
				m4 += dlt * dlt * dlt * dlt
			}
			m2 /= statN
			m4 /= statN
			sd := math.Sqrt(m2)

			if !math.IsInf(tc.mean, 0) {
				// CLT band: the sample mean of n draws lies within
				// z·σ/√n of the true mean; z=6 keeps the fixed-seed run
				// far from the boundary while still catching any real
				// parameter or algorithm regression.
				tol := 6*sd/math.Sqrt(statN) + 1e-9*(1+math.Abs(tc.mean))
				if diff := math.Abs(m - tc.mean); diff > tol {
					t.Errorf("%s: sample mean %.6g deviates from analytic mean %.6g by %.3g (tolerance %.3g)",
						tc.d, m, tc.mean, diff, tol)
				}
			}
			if !math.IsNaN(tc.variance) {
				// Var(s²) ≈ (μ₄ − σ⁴)/n; the sample fourth moment
				// stands in for μ₄, so the band self-derives even for
				// families with no closed fourth moment.
				tol := 6*math.Sqrt(math.Abs(m4-m2*m2)/statN) + 1e-9*(1+tc.variance)
				v := m2 * statN / (statN - 1)
				if diff := math.Abs(v - tc.variance); diff > tol {
					t.Errorf("%s: sample variance %.6g deviates from analytic variance %.6g by %.3g (tolerance %.3g)",
						tc.d, v, tc.variance, diff, tol)
				}
			}
		})
	}
}

// TestStatCheckDeterminism pins the per-seed reproducibility contract
// for every Distribution: identical seeds yield identical sample
// streams, and sampling draws no hidden state.
func TestStatCheckDeterminism(t *testing.T) {
	for _, tc := range statCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := NewRNG(statSeed(tc.name))
			b := NewRNG(statSeed(tc.name))
			for i := 0; i < 512; i++ {
				va, vb := tc.d.Sample(a), tc.d.Sample(b)
				if va != vb {
					t.Fatalf("%s: draw %d diverged under equal seeds: %v vs %v", tc.d, i, va, vb)
				}
			}
		})
	}
}

// TestStatCheckSampleAllocs pins every Distribution's scalar draw at
// zero heap allocations: samplers run inside the replay hot loops,
// where one allocation multiplies by events × trials.
func TestStatCheckSampleAllocs(t *testing.T) {
	for _, tc := range statCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := NewRNG(statSeed(tc.name))
			var sink float64
			allocs := testing.AllocsPerRun(200, func() {
				sink += tc.d.Sample(r)
			})
			if allocs != 0 {
				t.Errorf("%s: Sample allocates %.1f objects/draw; want 0", tc.d, allocs)
			}
			_ = sink
		})
	}
}
