package dist

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Distribution from a compact textual specification, the
// format the command-line tools accept for perturbation scenarios:
//
//	constant:250
//	uniform:0,500
//	exponential:250            (mean)
//	normal:250,50              (mu, sigma)
//	lognormal:5.0,0.4          (mu, sigma of underlying normal)
//	pareto:100,2.5             (xm, alpha)
//	spike:0.01,exponential:5000
//	shifted:100,exponential:50
//	scaled:2,uniform:0,10
//	truncated:0,1000,normal:250,50
//
// Composite specs nest after their scalar arguments, so the final
// argument of spike/shifted/scaled/truncated is itself a spec and may
// contain further colons and commas.
func Parse(spec string) (Distribution, error) {
	spec = strings.TrimSpace(spec)
	name, rest, _ := strings.Cut(spec, ":")
	name = strings.ToLower(strings.TrimSpace(name))
	switch name {
	case "constant", "const":
		v, err := one(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: constant: %w", err)
		}
		return Constant{C: v}, nil
	case "zero":
		return Constant{}, nil
	case "uniform":
		lo, hi, err := two(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: uniform: %w", err)
		}
		if hi < lo {
			return nil, fmt.Errorf("dist: uniform: high %g < low %g", hi, lo)
		}
		return Uniform{Low: lo, High: hi}, nil
	case "exponential", "exp":
		v, err := one(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: exponential: %w", err)
		}
		if v < 0 {
			return nil, fmt.Errorf("dist: exponential: negative mean %g", v)
		}
		return Exponential{MeanValue: v}, nil
	case "normal", "gaussian":
		mu, sigma, err := two(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: normal: %w", err)
		}
		if sigma < 0 {
			return nil, fmt.Errorf("dist: normal: negative sigma %g", sigma)
		}
		return Normal{Mu: mu, Sigma: sigma}, nil
	case "lognormal":
		mu, sigma, err := two(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: lognormal: %w", err)
		}
		if sigma < 0 {
			return nil, fmt.Errorf("dist: lognormal: negative sigma %g", sigma)
		}
		return LogNormal{Mu: mu, Sigma: sigma}, nil
	case "pareto":
		xm, alpha, err := two(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: pareto: %w", err)
		}
		if xm <= 0 || alpha <= 0 {
			return nil, fmt.Errorf("dist: pareto: xm and alpha must be positive")
		}
		return Pareto{Xm: xm, Alpha: alpha}, nil
	case "weibull":
		lambda, k, err := two(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: weibull: %w", err)
		}
		if lambda <= 0 || k <= 0 {
			return nil, fmt.Errorf("dist: weibull: lambda and k must be positive")
		}
		return Weibull{Lambda: lambda, K: k}, nil
	case "gamma":
		k, theta, err := two(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: gamma: %w", err)
		}
		if k <= 0 || theta <= 0 {
			return nil, fmt.Errorf("dist: gamma: k and theta must be positive")
		}
		return Gamma{K: k, Theta: theta}, nil
	case "bernoulli":
		p, v, err := two(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: bernoulli: %w", err)
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("dist: bernoulli: probability %g outside [0,1]", p)
		}
		return Bernoulli{P: p, Value: v}, nil
	case "spike":
		p, inner, err := scalarThenSpec(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: spike: %w", err)
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("dist: spike: probability %g outside [0,1]", p)
		}
		return Spike{P: p, Magnitude: inner}, nil
	case "shifted":
		off, inner, err := scalarThenSpec(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: shifted: %w", err)
		}
		return Shifted{Offset: off, Inner: inner}, nil
	case "scaled":
		f, inner, err := scalarThenSpec(rest)
		if err != nil {
			return nil, fmt.Errorf("dist: scaled: %w", err)
		}
		return Scaled{Factor: f, Inner: inner}, nil
	case "truncated":
		parts := strings.SplitN(rest, ",", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("dist: truncated: want low,high,spec")
		}
		lo, err := one(parts[0])
		if err != nil {
			return nil, fmt.Errorf("dist: truncated low: %w", err)
		}
		hi, err := one(parts[1])
		if err != nil {
			return nil, fmt.Errorf("dist: truncated high: %w", err)
		}
		if hi < lo {
			return nil, fmt.Errorf("dist: truncated: high %g < low %g", hi, lo)
		}
		inner, err := Parse(parts[2])
		if err != nil {
			return nil, err
		}
		return Truncated{Low: lo, High: hi, Inner: inner}, nil
	case "":
		return nil, fmt.Errorf("dist: empty distribution spec")
	default:
		return nil, fmt.Errorf("dist: unknown distribution %q", name)
	}
}

// MustParse is Parse that panics on error; for tests and compile-time
// constant specs.
func MustParse(spec string) Distribution {
	d, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return d
}

func one(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func two(s string) (float64, float64, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want two comma-separated numbers, got %q", s)
	}
	a, err := one(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := one(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func scalarThenSpec(s string) (float64, Distribution, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, nil, fmt.Errorf("want scalar,spec, got %q", s)
	}
	v, err := one(parts[0])
	if err != nil {
		return 0, nil, err
	}
	inner, err := Parse(parts[1])
	if err != nil {
		return 0, nil, err
	}
	return v, inner, nil
}
