package dist

import (
	"fmt"
	"math"
)

// Weibull is the Weibull distribution with scale Lambda > 0 and shape
// K > 0. K < 1 gives heavy-tailed interference; K = 1 degenerates to
// the exponential; K > 1 concentrates around the scale — a flexible
// family for fitted latency models.
type Weibull struct {
	Lambda, K float64
}

// Sample implements Distribution by inverse-CDF.
func (w Weibull) Sample(r *RNG) float64 {
	return w.Lambda * math.Pow(-math.Log(r.Float64Open()), 1/w.K)
}

// Mean implements Distribution: λ·Γ(1+1/k).
func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

// String implements Distribution.
func (w Weibull) String() string {
	return fmt.Sprintf("weibull(lambda=%g,k=%g)", w.Lambda, w.K)
}

// Gamma is the gamma distribution with shape K > 0 and scale Theta > 0
// (mean K·Theta). Erlang-like delay chains (K integral) and
// sub-exponential noise (K < 1) both live here.
type Gamma struct {
	K, Theta float64
}

// Sample implements Distribution with the Marsaglia–Tsang method
// (rejection sampling; the number of RNG draws per sample varies, but
// the stream remains fully deterministic).
func (g Gamma) Sample(r *RNG) float64 {
	k := g.K
	boost := 1.0
	if k < 1 {
		// Boost the shape and correct with U^(1/k) (Marsaglia–Tsang
		// small-shape trick).
		boost = math.Pow(r.Float64Open(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := Normal{Mu: 0, Sigma: 1}.Sample(r)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return g.Theta * d * v * boost
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return g.Theta * d * v * boost
		}
	}
}

// Mean implements Distribution.
func (g Gamma) Mean() float64 { return g.K * g.Theta }

// String implements Distribution.
func (g Gamma) String() string {
	return fmt.Sprintf("gamma(k=%g,theta=%g)", g.K, g.Theta)
}

// Bernoulli yields Value with probability P and zero otherwise — the
// scalar special case of Spike, convenient in specs.
type Bernoulli struct {
	P     float64
	Value float64
}

// Sample implements Distribution.
func (b Bernoulli) Sample(r *RNG) float64 {
	if r.Float64() < b.P {
		return b.Value
	}
	return 0
}

// Mean implements Distribution.
func (b Bernoulli) Mean() float64 { return b.P * b.Value }

// String implements Distribution.
func (b Bernoulli) String() string {
	return fmt.Sprintf("bernoulli(p=%g,value=%g)", b.P, b.Value)
}
