package dist

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpiricalBasics(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2})
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	if e.Min() != 1 || e.Max() != 3 {
		t.Fatalf("min/max = %g/%g", e.Min(), e.Max())
	}
	wantClose(t, "mean", e.Mean(), 2, 1e-12)
}

func TestEmpiricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sample")
		}
	}()
	NewEmpirical(nil)
}

func TestEmpiricalPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NaN sample")
		}
	}()
	NewEmpirical([]float64{1, math.NaN()})
}

func TestEmpiricalQuantiles(t *testing.T) {
	e := NewEmpirical([]float64{0, 10, 20, 30, 40})
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
		{-1, 0}, {2, 40}, {0.125, 5},
	} {
		if got := e.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestEmpiricalSingleSample(t *testing.T) {
	e := NewEmpirical([]float64{7})
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if v := e.Sample(r); v != 7 {
			t.Fatalf("single-sample empirical returned %g", v)
		}
	}
}

func TestEmpiricalSamplesWithinRange(t *testing.T) {
	e := NewEmpirical([]float64{5, 10, 15, 20})
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := e.Sample(r)
		if v < 5 || v > 20 {
			t.Fatalf("sample %g outside data range [5,20]", v)
		}
	}
}

func TestEmpiricalCDF(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 2, 3})
	for _, tc := range []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	} {
		if got := e.CDF(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

// TestEmpiricalApproachesAnalytic is Ablation B's core invariant: an
// empirical distribution built from n samples of an analytic family
// converges (in KS distance and in mean) to that family as n grows —
// the law-of-large-numbers argument in Section 5 of the paper.
func TestEmpiricalApproachesAnalytic(t *testing.T) {
	truth := Exponential{MeanValue: 100}
	prevKS := math.Inf(1)
	for _, n := range []int{100, 1000, 10000, 100000} {
		r := NewRNG(uint64(n))
		data := SampleN(truth, r, n)
		emp := NewEmpirical(data)

		// Resample from the empirical distribution and compare with a
		// fresh draw from the truth.
		resampled := SampleN(emp, NewRNG(1), 20000)
		fresh := SampleN(truth, NewRNG(2), 20000)
		ks := KSStatistic(resampled, fresh)
		if n >= 10000 && ks > 0.03 {
			t.Errorf("n=%d: KS distance %g too large", n, ks)
		}
		// The KS distance should broadly shrink with n (allow noise by
		// only comparing the two extremes).
		if n == 100 {
			prevKS = ks
		}
		if n == 100000 && ks > prevKS {
			t.Errorf("KS did not shrink: n=100 gave %g, n=100000 gave %g", prevKS, ks)
		}
		wantClose(t, "empirical mean", emp.Mean(), 100, 5/math.Sqrt(float64(n)))
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins [0,10) [10,20) ... [40,50)
	h.AddAll([]float64{-1, 0, 5, 9.999, 10, 45, 50, 1000})
	if h.Underflow != 1 {
		t.Fatalf("underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Fatalf("overflow = %d, want 2 (50 and 1000)", h.Overflow)
	}
	if h.Counts[0] != 3 {
		t.Fatalf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("bins = %v", h.Counts)
	}
	if h.Total != 5 {
		t.Fatalf("total = %d, want 5", h.Total)
	}
	if h.NonEmptyBins() != 3 {
		t.Fatalf("NonEmptyBins = %d, want 3", h.NonEmptyBins())
	}
}

func TestHistogramPanicsOnBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramSampleWithinBins(t *testing.T) {
	h := NewHistogram(100, 50, 4)
	h.AddAll([]float64{110, 120, 260, 260, 260})
	r := NewRNG(3)
	lowBin, highBin := 0, 0
	for i := 0; i < 10000; i++ {
		v := h.Sample(r)
		switch {
		case v >= 100 && v < 150:
			lowBin++
		case v >= 250 && v < 300:
			highBin++
		default:
			t.Fatalf("sample %g fell in an empty bin", v)
		}
	}
	frac := float64(highBin) / float64(lowBin+highBin)
	wantClose(t, "bin weighting", frac, 0.6, 0.05)
}

func TestHistogramEmptySamplesZero(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	if v := h.Sample(NewRNG(4)); v != 0 {
		t.Fatalf("empty histogram sampled %g", v)
	}
	if h.Mean() != 0 {
		t.Fatalf("empty histogram mean %g", h.Mean())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{5, 5, 25}) // centers 5,5,25 -> mean ~11.67
	wantClose(t, "histogram mean", h.Mean(), 35.0/3, 1e-9)
}

func TestQuickEmpiricalQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		data := SampleN(Normal{Mu: 0, Sigma: 10}, r, 64)
		e := NewEmpirical(data)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := e.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEmpiricalSampleInHull(t *testing.T) {
	f := func(seed uint64, raw []float64) bool {
		var data []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		e := NewEmpirical(data)
		sort.Float64s(data)
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := e.Sample(r)
			if v < data[0] || v > data[len(data)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
