package dist

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("stream diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %g", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("bucket %d has fraction %g, want ~0.1", i, frac)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(13)
	for _, n := range []int{1, 2, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	c1 := parent.Fork()
	c2 := parent.Fork()
	// The two children must have distinct streams.
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked children share %d/100 values", same)
	}
}

func TestForkReproducible(t *testing.T) {
	mk := func() uint64 {
		p := NewRNG(99)
		return p.Fork().Uint64()
	}
	if mk() != mk() {
		t.Fatal("fork of identically-seeded parents differs")
	}
}

func TestForkNamedStable(t *testing.T) {
	a := NewRNG(3).ForkNamed("rank-0").Uint64()
	b := NewRNG(3).ForkNamed("rank-0").Uint64()
	c := NewRNG(3).ForkNamed("rank-1").Uint64()
	if a != b {
		t.Fatal("same label produced different streams")
	}
	if a == c {
		t.Fatal("different labels produced identical streams")
	}
}

func TestShufflePermutes(t *testing.T) {
	r := NewRNG(21)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("shuffle lost element %d", v)
		}
	}
}

func TestUint64QuickNoShortCycles(t *testing.T) {
	// Property: for arbitrary seeds, the stream does not immediately
	// repeat (period is astronomically larger than anything testable,
	// but a short prefix must already be collision-free).
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		seen := map[uint64]bool{}
		for i := 0; i < 64; i++ {
			v := r.Uint64()
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
