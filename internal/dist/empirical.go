package dist

import (
	"fmt"
	"math"
	"sort"
)

// Empirical is a distribution built directly from observed samples, the
// paper's second parameterization method (Section 5): "use the data
// itself to build an empirical distribution". Sampling draws uniformly
// from the sorted sample set with linear interpolation between adjacent
// order statistics, i.e. it inverts the empirical CDF. By the law of
// large numbers the empirical distribution converges to the true one as
// the sample count grows; TestEmpiricalApproachesAnalytic exercises
// exactly that property.
type Empirical struct {
	sorted []float64
	mean   float64
}

// NewEmpirical builds an empirical distribution from the given samples.
// The input slice is copied and may be reused by the caller. It panics
// if no samples are provided or any sample is NaN.
func NewEmpirical(samples []float64) *Empirical {
	if len(samples) == 0 {
		panic("dist: empirical distribution needs at least one sample")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sum := 0.0
	for _, v := range s {
		if math.IsNaN(v) {
			panic("dist: empirical sample is NaN")
		}
		sum += v
	}
	sort.Float64s(s)
	return &Empirical{sorted: s, mean: sum / float64(len(s))}
}

// Sample implements Distribution by inverse transform sampling of the
// piecewise-linear empirical CDF.
func (e *Empirical) Sample(r *RNG) float64 {
	return e.Quantile(r.Float64())
}

// Quantile returns the q-th quantile (q in [0,1]) of the empirical
// distribution, with linear interpolation between order statistics.
func (e *Empirical) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// Mean implements Distribution, returning the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// Min returns the smallest observed sample.
func (e *Empirical) Min() float64 { return e.sorted[0] }

// Max returns the largest observed sample.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Len returns the number of underlying samples.
func (e *Empirical) Len() int { return len(e.sorted) }

// String implements Distribution.
func (e *Empirical) String() string {
	return fmt.Sprintf("empirical(n=%d,mean=%g)", len(e.sorted), e.mean)
}

// CDF returns the empirical cumulative probability at x: the fraction
// of samples <= x.
func (e *Empirical) CDF(x float64) float64 {
	// sort.SearchFloat64s gives the count of samples < x when we search
	// for x and adjust for equal values.
	n := len(e.sorted)
	i := sort.SearchFloat64s(e.sorted, x)
	for i < n && e.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(n)
}

// Histogram summarizes samples into fixed-width bins, the form in which
// microbenchmark output is reported and persisted. It is both a
// summary statistic and (via Distribution) a sampleable object, so a
// persisted histogram can parameterize later analysis runs without
// keeping raw samples.
type Histogram struct {
	Low       float64  // left edge of the first bin
	Width     float64  // bin width (> 0)
	Counts    []uint64 // one count per bin
	Total     uint64   // sum of Counts
	Underflow uint64   // samples below Low
	Overflow  uint64   // samples at or above Low + Width*len(Counts)
}

// NewHistogram creates an empty histogram with the given geometry.
// It panics if width <= 0 or bins <= 0.
func NewHistogram(low, width float64, bins int) *Histogram {
	if width <= 0 || bins <= 0 {
		panic("dist: histogram needs positive width and bin count")
	}
	return &Histogram{Low: low, Width: width, Counts: make([]uint64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Low {
		h.Underflow++
		return
	}
	i := int((x - h.Low) / h.Width)
	if i >= len(h.Counts) {
		h.Overflow++
		return
	}
	h.Counts[i]++
	h.Total++
}

// AddAll records a batch of samples.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Low + h.Width*(float64(i)+0.5)
}

// Mean implements Distribution using bin centers; under/overflow are
// excluded.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	sum := 0.0
	for i, c := range h.Counts {
		sum += float64(c) * h.BinCenter(i)
	}
	return sum / float64(h.Total)
}

// Sample implements Distribution: a bin is chosen with probability
// proportional to its count, then a point is drawn uniformly within the
// bin. An empty histogram samples zero.
func (h *Histogram) Sample(r *RNG) float64 {
	if h.Total == 0 {
		return 0
	}
	target := r.Uint64() % h.Total
	var acc uint64
	for i, c := range h.Counts {
		acc += c
		if target < acc {
			return h.Low + h.Width*(float64(i)+r.Float64())
		}
	}
	// Unreachable when Total == sum(Counts); defend anyway.
	return h.BinCenter(len(h.Counts) - 1)
}

// String implements Distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("histogram(bins=%d,n=%d)", len(h.Counts), h.Total)
}

// NonEmptyBins returns the number of bins with at least one sample.
func (h *Histogram) NonEmptyBins() int {
	n := 0
	for _, c := range h.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}
