package dist

import (
	"strings"
	"testing"
)

func TestFitExponentialRecoversMean(t *testing.T) {
	truth := Exponential{MeanValue: 321}
	data := SampleN(truth, NewRNG(1), 50000)
	got, err := FitExponential(data)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "fitted mean", got.MeanValue, 321, 0.02)
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential(nil); err == nil {
		t.Fatal("expected error on empty sample")
	}
	if _, err := FitExponential([]float64{1, -2}); err == nil {
		t.Fatal("expected error on negative sample")
	}
}

func TestFitNormalRecoversParams(t *testing.T) {
	truth := Normal{Mu: 42, Sigma: 7}
	data := SampleN(truth, NewRNG(2), 50000)
	got, err := FitNormal(data)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "mu", got.Mu, 42, 0.01)
	wantClose(t, "sigma", got.Sigma, 7, 0.03)
}

func TestFitNormalErrors(t *testing.T) {
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Fatal("expected error on single sample")
	}
}

func TestFitLogNormalRecoversParams(t *testing.T) {
	truth := LogNormal{Mu: 2, Sigma: 0.5}
	data := SampleN(truth, NewRNG(3), 50000)
	got, err := FitLogNormal(data)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "mu", got.Mu, 2, 0.02)
	wantClose(t, "sigma", got.Sigma, 0.5, 0.03)
}

func TestFitLogNormalRejectsNonPositive(t *testing.T) {
	if _, err := FitLogNormal([]float64{1, 0}); err == nil {
		t.Fatal("expected error on zero sample")
	}
	if _, err := FitLogNormal([]float64{5}); err == nil {
		t.Fatal("expected error on single sample")
	}
}

func TestFitSpike(t *testing.T) {
	truth := Spike{P: 0.2, Magnitude: Constant{C: 500}}
	data := SampleN(truth, NewRNG(4), 20000)
	got, err := FitSpike(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "p", got.P, 0.2, 0.05)
	wantClose(t, "magnitude mean", got.Magnitude.Mean(), 500, 0.01)
}

func TestFitSpikeAllQuiet(t *testing.T) {
	got, err := FitSpike([]float64{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != 0 {
		t.Fatalf("quiet fit has p = %g", got.P)
	}
	if got.Sample(NewRNG(1)) != 0 {
		t.Fatal("quiet spike sampled non-zero")
	}
}

func TestFitSpikeEmptyErrors(t *testing.T) {
	if _, err := FitSpike(nil, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestKSStatisticIdentical(t *testing.T) {
	data := SampleN(Uniform{Low: 0, High: 1}, NewRNG(5), 1000)
	if ks := KSStatistic(data, data); ks != 0 {
		t.Fatalf("KS of identical samples = %g", ks)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{100, 200, 300}
	if ks := KSStatistic(a, b); ks != 1 {
		t.Fatalf("KS of disjoint samples = %g, want 1", ks)
	}
}

func TestKSStatisticSameFamily(t *testing.T) {
	a := SampleN(Exponential{MeanValue: 10}, NewRNG(6), 20000)
	b := SampleN(Exponential{MeanValue: 10}, NewRNG(7), 20000)
	if ks := KSStatistic(a, b); ks > 0.03 {
		t.Fatalf("KS between same-family samples = %g, want small", ks)
	}
	c := SampleN(Exponential{MeanValue: 30}, NewRNG(8), 20000)
	if ks := KSStatistic(a, c); ks < 0.2 {
		t.Fatalf("KS between different means = %g, want large", ks)
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, tc := range []struct {
		spec string
		mean float64
	}{
		{"constant:250", 250},
		{"const: 42", 42},
		{"zero", 0},
		{"uniform:0,500", 250},
		{"exponential:250", 250},
		{"exp:100", 100},
		{"normal:250,50", 250},
		{"gaussian:10,1", 10},
		{"pareto:100,3", 150},
		{"spike:0.5,constant:100", 50},
		{"shifted:100,constant:11", 111},
		{"scaled:2,constant:21", 42},
		{"truncated:0,1000,constant:500", 500},
		{"spike:0.1,shifted:10,exponential:5", 0.1 * (10 + 5)},
	} {
		d, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		wantClose(t, tc.spec, d.Mean(), tc.mean, 1e-9)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"bogus:1",
		"constant:abc",
		"uniform:1",
		"uniform:5,1",
		"exponential:-3",
		"normal:0,-1",
		"lognormal:0,-1",
		"pareto:0,1",
		"pareto:1,0",
		"spike:2,constant:1",
		"spike:0.5",
		"truncated:1,0,constant:0",
		"truncated:1,2",
		"scaled:x,constant:1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		} else if !strings.Contains(err.Error(), "dist:") {
			t.Errorf("Parse(%q) error %q lacks package prefix", spec, err)
		}
	}
}

func TestMustParsePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("nope")
}

func TestParsedDistributionSamples(t *testing.T) {
	d := MustParse("truncated:0,100,normal:50,20")
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 0 || v > 100 {
			t.Fatalf("parsed truncated sample %g out of range", v)
		}
	}
}
