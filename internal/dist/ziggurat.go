package dist

import "math"

// Ziggurat fast sampling (Marsaglia & Tsang 2000) for the two
// distributions that dominate replay cost: Exponential and Normal.
//
// The batch-replay profile (DESIGN.md §8.1) showed ~50% of replay time
// inside `-mean * math.Log(u)`. The ziggurat replaces the per-draw
// logarithm with a 256-layer table lookup: the target density is
// covered by 256 equal-area horizontal regions; a draw picks a region
// from 8 random bits and a horizontal position from 53 more, and in
// ~99% of draws the position falls strictly inside the region's
// rectangle, where acceptance needs one compare against a precomputed
// edge — no transcendental at all. Only wedge and tail draws (the
// remaining ~1%) fall back to math.Exp/math.Log.
//
// Determinism contract: all randomness still flows through the caller's
// *RNG, so a draw is a pure function of the generator's state and two
// generators with equal seeds produce identical sample streams — across
// engines, platforms, and lane widths. The *stream itself* differs from
// the pre-ziggurat inverse-CDF/Box–Muller samplers (a fast-path draw
// consumes exactly one Uint64; wedge retries consume one Uint64 plus
// one Float64 each; tail draws consume Float64Open pairs), which is why
// SamplerVersion exists and the exact reference samplers survive behind
// Exact() for differential testing.
//
// Table construction follows the standard recurrence: with R the tail
// cut and V the common region area (V = R·f(R) + tail mass), the layer
// edges satisfy x₀ = V/f(R), x₁ = R, xᵢ = f⁻¹(V/xᵢ₋₁ + f(xᵢ₋₁)). The
// published 256-layer cut points make the recurrence close to within
// double-precision rounding; the acceptance tests in statcheck_test.go
// and ziggurat_test.go pin the resulting distributions against analytic
// CDFs and the exact samplers.

// SamplerVersion names the random-stream-defining sampling algorithms
// in this package. Any change that alters the values or the RNG bit
// consumption of a Sample implementation must bump it; sampler-
// dependent goldens record the version they were generated with (see
// the TestGoldenProvenance tests next to each golden set).
const SamplerVersion = "ziggurat-v1"

const (
	zigLayers = 256
	// zigExpR / zigNormR are the published 256-layer tail cut points
	// for f(x)=e^{-x} and f(x)=e^{-x²/2} respectively.
	zigExpR  = 7.6971174701310497140446280481
	zigNormR = 3.6541528853610087963519472518
	// inv53 converts a 53-bit integer to [0,1).
	inv53 = 1.0 / (1 << 53)
)

var (
	// zigExpX[i] is layer i's right edge (x₀ > R is the virtual base
	// edge; x₂₅₆ = 0); zigExpF[i] = f(zigExpX[i]); zigExpW[i] =
	// zigExpX[i]/2⁵³ pre-divides the edge so the hot path turns 53
	// random bits into a position with one multiply.
	zigExpX [zigLayers + 1]float64
	zigExpF [zigLayers + 1]float64
	zigExpW [zigLayers]float64

	zigNormX [zigLayers + 1]float64
	zigNormF [zigLayers + 1]float64
	zigNormW [zigLayers]float64
)

func init() {
	expPDF := func(x float64) float64 { return math.Exp(-x) }
	expInv := func(y float64) float64 { return -math.Log(y) }
	buildZiggurat(zigExpR, math.Exp(-zigExpR), expPDF, expInv,
		&zigExpX, &zigExpF, &zigExpW)

	normPDF := func(x float64) float64 { return math.Exp(-0.5 * x * x) }
	normInv := func(y float64) float64 { return math.Sqrt(-2 * math.Log(y)) }
	normTail := math.Sqrt(math.Pi/2) * math.Erfc(zigNormR/math.Sqrt2)
	buildZiggurat(zigNormR, normTail, normPDF, normInv,
		&zigNormX, &zigNormF, &zigNormW)
}

// buildZiggurat fills one table set from the tail cut r, the tail mass
// beyond it, the (unnormalized) density f, and its inverse on (0, f(0)].
func buildZiggurat(r, tail float64, f, finv func(float64) float64,
	x, fv *[zigLayers + 1]float64, w *[zigLayers]float64) {
	v := r*f(r) + tail
	x[0] = v / f(r)
	x[1] = r
	for i := 2; i < zigLayers; i++ {
		x[i] = finv(v/x[i-1] + f(x[i-1]))
	}
	x[zigLayers] = 0
	for i := range x {
		fv[i] = f(x[i])
	}
	for i := range w {
		w[i] = x[i] * inv53
	}
}

// stdExp draws a standard exponential (mean 1) variate. The fast path
// is one Uint64: 8 low bits select a layer, 53 high bits place the
// draw inside it, one compare accepts ~98.9% of draws.
//
//mpg:hotpath
func stdExp(r *RNG) float64 {
	u := r.Uint64()
	i := u & 0xff
	x := float64(u>>11) * zigExpW[i]
	if x < zigExpX[i+1] {
		return x
	}
	return stdExpSlow(r, i, x)
}

// stdExpSlow resolves a draw that landed outside layer i's inner
// rectangle: layer 0 overflows into the analytic tail (memorylessness:
// the conditional law beyond R is R + Exp(1)), other layers run the
// wedge test against the true density and redraw on rejection.
//
//mpg:hotpath
func stdExpSlow(r *RNG, i uint64, x float64) float64 {
	for {
		if i == 0 {
			return zigExpR - math.Log(r.Float64Open())
		}
		if zigExpF[i+1]+(zigExpF[i]-zigExpF[i+1])*r.Float64() < math.Exp(-x) {
			return x
		}
		u := r.Uint64()
		i = u & 0xff
		x = float64(u>>11) * zigExpW[i]
		if x < zigExpX[i+1] {
			return x
		}
	}
}

// stdNorm draws a standard normal variate. As stdExp, but one extra
// bit (bit 8, disjoint from both the layer index and the 53 position
// bits) carries the sign of the symmetric density.
//
//mpg:hotpath
func stdNorm(r *RNG) float64 {
	u := r.Uint64()
	i := u & 0xff
	x := float64(u>>11) * zigNormW[i]
	if x < zigNormX[i+1] {
		if u&0x100 != 0 {
			return -x
		}
		return x
	}
	return stdNormSlow(r, u)
}

// stdNormSlow resolves a normal draw outside the inner rectangle:
// layer 0 uses Marsaglia's tail algorithm beyond R, other layers run
// the wedge test and redraw on rejection.
//
//mpg:hotpath
func stdNormSlow(r *RNG, u uint64) float64 {
	i := u & 0xff
	x := float64(u>>11) * zigNormW[i]
	for {
		if i == 0 {
			for {
				xt := -math.Log(r.Float64Open()) / zigNormR
				yt := -math.Log(r.Float64Open())
				if yt+yt > xt*xt {
					if u&0x100 != 0 {
						return -(zigNormR + xt)
					}
					return zigNormR + xt
				}
			}
		}
		if zigNormF[i+1]+(zigNormF[i]-zigNormF[i+1])*r.Float64() < math.Exp(-0.5*x*x) {
			if u&0x100 != 0 {
				return -x
			}
			return x
		}
		u = r.Uint64()
		i = u & 0xff
		x = float64(u>>11) * zigNormW[i]
		if x < zigNormX[i+1] {
			if u&0x100 != 0 {
				return -x
			}
			return x
		}
	}
}

// BatchSampler is the lane-vectorized draw interface: one table-lookup
// loop fills a lane-strided span instead of K interface-dispatched
// scalar draws. Lane i draws from r[i] alone and lands at dst[i*stride],
// so dst[i*stride] is bit-identical to what Sample(&r[i]) would have
// returned and each generator advances exactly as a scalar draw would
// advance it — batching is invisible to per-lane streams, which is what
// lets the lane-batched replay engine stay byte-identical per lane.
type BatchSampler interface {
	Distribution
	SampleInto(dst []float64, stride int, r []RNG)
}

var (
	_ BatchSampler = Exponential{}
	_ BatchSampler = Normal{}
	_ BatchSampler = Uniform{}
	_ BatchSampler = Constant{}
)

// SampleInto implements BatchSampler.
//
//mpg:hotpath
func (e Exponential) SampleInto(dst []float64, stride int, r []RNG) {
	for i := range r {
		dst[i*stride] = e.MeanValue * stdExp(&r[i])
	}
}

// SampleInto implements BatchSampler.
//
//mpg:hotpath
func (n Normal) SampleInto(dst []float64, stride int, r []RNG) {
	for i := range r {
		dst[i*stride] = n.Mu + n.Sigma*stdNorm(&r[i])
	}
}

// SampleInto implements BatchSampler.
//
//mpg:hotpath
func (u Uniform) SampleInto(dst []float64, stride int, r []RNG) {
	for i := range r {
		dst[i*stride] = u.Low + (u.High-u.Low)*r[i].Float64()
	}
}

// SampleInto implements BatchSampler. Constant consumes no RNG bits,
// exactly like its scalar Sample.
//
//mpg:hotpath
func (c Constant) SampleInto(dst []float64, stride int, r []RNG) {
	for i := range r {
		dst[i*stride] = c.C
	}
}

// Exact returns a distribution over the same law as d that samples
// with the pre-ziggurat reference algorithms: inverse-CDF for
// Exponential (-mean·ln U), Box–Muller for Normal, and exp(Box–Muller)
// for LogNormal, recursing through the wrapper distributions (Shifted,
// Scaled, Truncated, Spike, Mixture). Distributions whose sampler
// never changed are returned unchanged. Exact exists for differential
// testing — two-sample KS between the ziggurat and reference streams —
// and as an escape hatch for experiments that must reproduce
// pre-ziggurat sample streams bit for bit.
func Exact(d Distribution) Distribution {
	switch v := d.(type) {
	case Exponential:
		return exactExponential{v}
	case Normal:
		return exactNormal{v}
	case LogNormal:
		return exactLogNormal{v}
	case Shifted:
		return Shifted{Offset: v.Offset, Inner: Exact(v.Inner)}
	case Scaled:
		return Scaled{Factor: v.Factor, Inner: Exact(v.Inner)}
	case Truncated:
		return Truncated{Low: v.Low, High: v.High, Inner: Exact(v.Inner)}
	case Spike:
		return Spike{P: v.P, Magnitude: Exact(v.Magnitude)}
	case Mixture:
		comps := make([]Distribution, len(v.Components))
		for i, c := range v.Components {
			comps[i] = Exact(c)
		}
		return Mixture{Weights: v.Weights, Components: comps}
	default:
		return d
	}
}

// exactExponential samples by inverse CDF, the pre-ziggurat algorithm:
// one Float64Open draw, -mean·ln(u).
type exactExponential struct{ Exponential }

// Sample implements Distribution.
func (e exactExponential) Sample(r *RNG) float64 {
	return -e.MeanValue * math.Log(r.Float64Open())
}

// String implements Distribution.
func (e exactExponential) String() string {
	return "exact(" + e.Exponential.String() + ")"
}

// exactNormal samples with the Box–Muller transform, the pre-ziggurat
// algorithm: one Float64Open and one Float64 draw, only the cosine
// variate used so sampling remains a pure function of stream position.
type exactNormal struct{ Normal }

// Sample implements Distribution.
func (n exactNormal) Sample(r *RNG) float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return n.Mu + n.Sigma*z
}

// String implements Distribution.
func (n exactNormal) String() string {
	return "exact(" + n.Normal.String() + ")"
}

// exactLogNormal exponentiates an exact normal draw.
type exactLogNormal struct{ LogNormal }

// Sample implements Distribution.
func (l exactLogNormal) Sample(r *RNG) float64 {
	return math.Exp(exactNormal{Normal{Mu: l.Mu, Sigma: l.Sigma}}.Sample(r))
}

// String implements Distribution.
func (l exactLogNormal) String() string {
	return "exact(" + l.LogNormal.String() + ")"
}
