// Package dist provides the deterministic random-number machinery and
// the probability distributions used to parameterize simulated
// perturbations (operating-system noise, message latency, bandwidth
// variation) in the message-passing graph analyzer.
//
// The paper (Section 5) treats every perturbation parameter as a random
// variable whose distribution is either (a) an analytic family fitted to
// microbenchmark output, or (b) an empirical distribution built directly
// from microbenchmark samples. Both paths are implemented here.
//
// All randomness is fully deterministic given a seed: the analyzer must
// produce identical results for identical inputs so that experiments are
// reproducible and tests can assert exact values.
package dist

import "math/bits"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** (Blackman & Vigna). It is not safe for concurrent use;
// each simulated component owns its own RNG, forked from a parent seed,
// so that adding components never perturbs the random streams of
// existing ones.
type RNG struct {
	s [4]uint64
}

// splitMix64 is used to seed the xoshiro state from a single word, as
// recommended by the xoshiro authors.
//
//mpg:hotpath
func splitMix64(x uint64) (uint64, uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z = z ^ (z >> 31)
	return z, x
}

// NewRNG returns a generator seeded from the given 64-bit seed.
// Two generators with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r in place, exactly as NewRNG(seed) would,
// without allocating. It exists for pooled replay state that re-seeds
// a fixed hierarchy of generators once per replay.
//
//mpg:hotpath
func (r *RNG) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i], x = splitMix64(x)
	}
	// xoshiro must not start from the all-zero state; splitMix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64-bit value in the stream. The body keeps
// the state in locals and rotates through the math/bits intrinsics so
// it stays under the compiler's inlining budget — every sampler fast
// path draws through here, and the per-draw call overhead is
// measurable at replay scale.
//
//mpg:hotpath
func (r *RNG) Uint64() uint64 {
	s1 := r.s[1]
	x := bits.RotateLeft64(s1*5, 7) * 9
	s2 := r.s[2] ^ r.s[0]
	s3 := r.s[3] ^ s1
	r.s[1] = s1 ^ s2
	r.s[0] ^= s3
	r.s[2] = s2 ^ (s1 << 17)
	r.s[3] = bits.RotateLeft64(s3, 45)
	return x
}

// Float64 returns a value uniformly distributed in [0, 1).
//
//mpg:hotpath
func (r *RNG) Float64() float64 {
	// 53 high bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a value uniformly distributed in (0, 1).
// Useful for inverse-CDF sampling where log(0) must be avoided.
//
//mpg:hotpath
func (r *RNG) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a value uniformly distributed in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value uniformly distributed in [0, n). It panics if
// n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("dist: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Fork derives an independent generator from this one. The child's
// stream is a deterministic function of the parent's state at the time
// of the call, so forking in a fixed order yields reproducible
// hierarchies of generators (one per rank, per link, and so on).
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// ForkNamed derives an independent generator whose stream depends on
// both the parent state and the given label, so components created in
// any order still receive stable streams as long as their labels are
// stable.
func (r *RNG) ForkNamed(label string) *RNG {
	return NewRNG(r.Uint64() ^ fnv64(label))
}

// ForkNamedInto is ForkNamed writing into an existing generator
// instead of allocating one: dst ends in exactly the state
// ForkNamed(label)'s result would have, and r advances identically.
//
//mpg:hotpath
func (r *RNG) ForkNamedInto(label string, dst *RNG) {
	dst.Reseed(r.Uint64() ^ fnv64(label))
}

// ForkHierarchyInto re-seeds a whole named-fork hierarchy in place:
// a root generator is seeded from seed, then dst[i] receives the
// named fork for labels[i], in slice order. The result is exactly
// what NewRNG(seed) followed by ForkNamed(labels[0]), ForkNamed(
// labels[1]), ... would produce — fork order matters, because every
// fork advances the root stream — but without allocating. It exists
// for pooled replay state that re-seeds a fixed generator hierarchy
// (one per rank plus shared streams) once per replay, and for the
// batched replayer, which re-seeds one such hierarchy per lane.
// It panics if len(dst) < len(labels).
//
//mpg:hotpath
func ForkHierarchyInto(seed uint64, labels []string, dst []RNG) {
	ForkHierarchyIntoStride(seed, labels, dst, 1)
}

// ForkHierarchyIntoStride is ForkHierarchyInto writing labels[i]'s
// generator into dst[i*stride] instead of dst[i]. The lane-batched
// replayer keeps its K lane hierarchies stream-major (one stream's K
// lane generators contiguous, so batched SampleInto draws walk a
// contiguous span); each lane seeds its strided column with exactly
// the states a dense ForkHierarchyInto would produce. It panics if
// dst cannot hold (len(labels)-1)*stride+1 generators.
//
//mpg:hotpath
func ForkHierarchyIntoStride(seed uint64, labels []string, dst []RNG, stride int) {
	var root RNG
	root.Reseed(seed)
	for i := range labels {
		root.ForkNamedInto(labels[i], &dst[i*stride])
	}
}

// fnv64 is the FNV-1a hash of the label, the stable component of the
// named-fork seed derivation.
//
//mpg:hotpath
func fnv64(label string) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// Shuffle permutes the first n elements using the supplied swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
