package dist

import (
	"math"
	"testing"
)

func TestWeibullMoments(t *testing.T) {
	for _, tc := range []struct{ lambda, k float64 }{
		{100, 1},   // exponential
		{100, 2},   // Rayleigh-like
		{50, 0.7},  // heavy tail
		{200, 3.5}, // concentrated
	} {
		w := Weibull{Lambda: tc.lambda, K: tc.k}
		want := tc.lambda * math.Gamma(1+1/tc.k)
		wantClose(t, w.String()+" analytic mean", w.Mean(), want, 1e-12)
		wantClose(t, w.String()+" sample mean", sampleMean(t, w, 1, 300000), want, 0.03)
	}
}

func TestWeibullK1MatchesExponential(t *testing.T) {
	// Weibull(λ, 1) is exponential(λ); their means agree and both
	// distributions' sampled CDFs should be close.
	w := SampleN(Weibull{Lambda: 100, K: 1}, NewRNG(2), 30000)
	e := SampleN(Exponential{MeanValue: 100}, NewRNG(3), 30000)
	if ks := KSStatistic(w, e); ks > 0.02 {
		t.Fatalf("Weibull(k=1) vs exponential KS = %g", ks)
	}
}

func TestWeibullNonNegative(t *testing.T) {
	w := Weibull{Lambda: 10, K: 0.5}
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if w.Sample(r) < 0 {
			t.Fatal("negative Weibull sample")
		}
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ k, theta float64 }{
		{1, 100},  // exponential
		{4, 25},   // Erlang-4
		{0.5, 50}, // sub-exponential shape
		{9, 10},
	} {
		g := Gamma{K: tc.k, Theta: tc.theta}
		want := tc.k * tc.theta
		wantClose(t, g.String()+" analytic mean", g.Mean(), want, 1e-12)
		wantClose(t, g.String()+" sample mean", sampleMean(t, g, 5, 300000), want, 0.03)
	}
}

func TestGammaVariance(t *testing.T) {
	g := Gamma{K: 4, Theta: 25}
	r := NewRNG(6)
	var w Welford
	for i := 0; i < 300000; i++ {
		w.Add(g.Sample(r))
	}
	// Var = k·θ² = 2500.
	wantClose(t, "gamma variance", w.Variance(), 2500, 0.05)
}

func TestGammaK1MatchesExponential(t *testing.T) {
	g := SampleN(Gamma{K: 1, Theta: 100}, NewRNG(7), 30000)
	e := SampleN(Exponential{MeanValue: 100}, NewRNG(8), 30000)
	if ks := KSStatistic(g, e); ks > 0.02 {
		t.Fatalf("Gamma(k=1) vs exponential KS = %g", ks)
	}
}

func TestGammaPositive(t *testing.T) {
	g := Gamma{K: 0.3, Theta: 5}
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := g.Sample(r); v <= 0 {
			t.Fatalf("non-positive gamma sample %g", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	b := Bernoulli{P: 0.25, Value: 400}
	wantClose(t, "bernoulli mean", b.Mean(), 100, 1e-12)
	r := NewRNG(10)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		switch v := b.Sample(r); v {
		case 0:
		case 400:
			hits++
		default:
			t.Fatalf("bernoulli sample %g", v)
		}
	}
	wantClose(t, "bernoulli rate", float64(hits)/n, 0.25, 0.03)
}

func TestParseExtraFamilies(t *testing.T) {
	for _, tc := range []struct {
		spec string
		mean float64
	}{
		{"weibull:100,1", 100},
		{"gamma:4,25", 100},
		{"bernoulli:0.5,200", 100},
	} {
		d, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		wantClose(t, tc.spec, d.Mean(), tc.mean, 1e-9)
	}
	for _, bad := range []string{
		"weibull:0,1", "weibull:1,0", "weibull:1",
		"gamma:0,1", "gamma:1,0",
		"bernoulli:2,1", "bernoulli:-0.1,1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestExtraFamiliesDeterministic(t *testing.T) {
	for _, d := range []Distribution{
		Weibull{Lambda: 10, K: 2},
		Gamma{K: 3, Theta: 7},
		Bernoulli{P: 0.5, Value: 9},
	} {
		a, b := NewRNG(42), NewRNG(42)
		for i := 0; i < 200; i++ {
			if x, y := d.Sample(a), d.Sample(b); x != y {
				t.Fatalf("%s: nondeterministic at %d", d, i)
			}
		}
	}
}
