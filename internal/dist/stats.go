package dist

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample set, the form in
// which microbenchmark results are reported and compared across
// platforms ("platform signature" components, paper Section 5).
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
	P95      float64
	P99      float64
}

// Summarize computes descriptive statistics for the given samples. An
// empty input yields a zero Summary.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	s := make([]float64, n)
	copy(s, samples)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	varsum := 0.0
	for _, v := range s {
		d := v - mean
		varsum += d * d
	}
	variance := 0.0
	if n > 1 {
		variance = varsum / float64(n-1)
	}
	return Summary{
		N:        n,
		Mean:     mean,
		Variance: variance,
		StdDev:   math.Sqrt(variance),
		Min:      s[0],
		Max:      s[n-1],
		Median:   quantileSorted(s, 0.5),
		P95:      quantileSorted(s, 0.95),
		P99:      quantileSorted(s, 0.99),
	}
}

// quantileSorted interpolates the q-quantile of an already-sorted
// sample.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples without
// requiring them to be pre-sorted.
func Quantile(samples []float64, q float64) float64 {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// String renders the summary in a single line suitable for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.P99, s.Max)
}

// Welford is an online mean/variance accumulator (Welford's algorithm).
// The streaming analyzer uses it to accumulate per-rank slack and delay
// statistics without retaining samples.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
//
//mpg:hotpath
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (zero if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running variance (zero if n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (zero if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (zero if empty).
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into this one (parallel reduction of
// partial statistics).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	min := w.min
	if o.min < min {
		min = o.min
	}
	max := w.max
	if o.max > max {
		max = o.max
	}
	*w = Welford{n: n, mean: mean, m2: m2, min: min, max: max}
}

// LinearFit holds the result of an ordinary least-squares fit
// y = Slope*x + Intercept, used by the Section 6.1 experiment to test
// the paper's claim that runtime grows linearly with injected noise.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
}

// FitLinear performs an OLS fit of ys against xs. It panics if the
// slices differ in length or have fewer than two points.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("dist: linear fit needs >= 2 paired points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("dist: linear fit with zero x variance")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - (slope*xs[i] + intercept)
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}
