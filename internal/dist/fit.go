package dist

import (
	"fmt"
	"math"
)

// FitExponential estimates an Exponential distribution from samples by
// maximum likelihood (the MLE of the mean is the sample mean). This is
// the paper's first parameterization method: assume a family, estimate
// its parameters from microbenchmark measurements (Section 5).
func FitExponential(samples []float64) (Exponential, error) {
	if len(samples) == 0 {
		return Exponential{}, fmt.Errorf("dist: cannot fit exponential to empty sample")
	}
	sum := 0.0
	for _, v := range samples {
		if v < 0 {
			return Exponential{}, fmt.Errorf("dist: exponential fit saw negative sample %g", v)
		}
		sum += v
	}
	return Exponential{MeanValue: sum / float64(len(samples))}, nil
}

// FitNormal estimates a Normal distribution from samples by maximum
// likelihood (sample mean, biased sample standard deviation).
func FitNormal(samples []float64) (Normal, error) {
	n := len(samples)
	if n < 2 {
		return Normal{}, fmt.Errorf("dist: normal fit needs >= 2 samples, got %d", n)
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	mu := sum / float64(n)
	ss := 0.0
	for _, v := range samples {
		d := v - mu
		ss += d * d
	}
	return Normal{Mu: mu, Sigma: math.Sqrt(ss / float64(n))}, nil
}

// FitLogNormal estimates a LogNormal distribution by fitting a normal
// to the logarithms of the samples. All samples must be positive.
func FitLogNormal(samples []float64) (LogNormal, error) {
	if len(samples) < 2 {
		return LogNormal{}, fmt.Errorf("dist: lognormal fit needs >= 2 samples")
	}
	logs := make([]float64, len(samples))
	for i, v := range samples {
		if v <= 0 {
			return LogNormal{}, fmt.Errorf("dist: lognormal fit saw non-positive sample %g", v)
		}
		logs[i] = math.Log(v)
	}
	n, err := FitNormal(logs)
	if err != nil {
		return LogNormal{}, err
	}
	return LogNormal{Mu: n.Mu, Sigma: n.Sigma}, nil
}

// FitSpike estimates a Spike distribution from samples where "zero"
// (quiet quanta) dominate: the firing probability is the fraction of
// samples above the threshold, and the magnitude is the empirical
// distribution of the above-threshold samples. This matches how
// FTQ-style noise data is usually reduced.
func FitSpike(samples []float64, threshold float64) (Spike, error) {
	if len(samples) == 0 {
		return Spike{}, fmt.Errorf("dist: cannot fit spike to empty sample")
	}
	var hot []float64
	for _, v := range samples {
		if v > threshold {
			hot = append(hot, v)
		}
	}
	if len(hot) == 0 {
		return Spike{P: 0, Magnitude: Constant{C: 0}}, nil
	}
	return Spike{
		P:         float64(len(hot)) / float64(len(samples)),
		Magnitude: NewEmpirical(hot),
	}, nil
}

// KSStatistic computes the two-sample Kolmogorov–Smirnov statistic
// between sample sets a and b: the maximum distance between their
// empirical CDFs. Used in tests and ablations to quantify how close an
// empirical parameterization is to the analytic family it was drawn
// from.
func KSStatistic(a, b []float64) float64 {
	ea := NewEmpirical(a)
	eb := NewEmpirical(b)
	maxD := 0.0
	probe := func(xs []float64) {
		for _, x := range xs {
			d := math.Abs(ea.CDF(x) - eb.CDF(x))
			if d > maxD {
				maxD = d
			}
		}
	}
	probe(a)
	probe(b)
	return maxD
}

// SampleN draws n samples from d into a fresh slice.
func SampleN(d Distribution, r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}
