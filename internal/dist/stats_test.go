package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	wantClose(t, "mean", s.Mean, 5, 1e-12)
	// Unbiased variance of this classic data set is 32/7.
	wantClose(t, "variance", s.Variance, 32.0/7, 1e-9)
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	if s.N != 8 {
		t.Fatalf("n = %d", s.N)
	}
	wantClose(t, "median", s.Median, 4.5, 1e-12)
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Variance != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Variance != 0 || s.Median != 3 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantileFunction(t *testing.T) {
	data := []float64{40, 10, 20, 30, 0}
	if got := Quantile(data, 0.5); got != 20 {
		t.Fatalf("median = %g", got)
	}
	if got := Quantile(data, 0); got != 0 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(data, 1); got != 40 {
		t.Fatalf("q1 = %g", got)
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	data := SampleN(Normal{Mu: 50, Sigma: 10}, NewRNG(1), 5000)
	var w Welford
	for _, v := range data {
		w.Add(v)
	}
	s := Summarize(data)
	wantClose(t, "welford mean", w.Mean(), s.Mean, 1e-9)
	wantClose(t, "welford variance", w.Variance(), s.Variance, 1e-6)
	if w.Min() != s.Min || w.Max() != s.Max {
		t.Fatalf("welford min/max %g/%g vs %g/%g", w.Min(), w.Max(), s.Min, s.Max)
	}
	if w.N() != int64(s.N) {
		t.Fatalf("welford n = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("empty welford not zero")
	}
}

func TestWelfordMerge(t *testing.T) {
	data := SampleN(Exponential{MeanValue: 5}, NewRNG(2), 1000)
	var whole, a, b Welford
	for i, v := range data {
		whole.Add(v)
		if i < 300 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	wantClose(t, "merged mean", a.Mean(), whole.Mean(), 1e-9)
	wantClose(t, "merged variance", a.Variance(), whole.Variance(), 1e-9)
	if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged counters disagree")
	}
}

func TestWelfordMergeWithEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge with empty changed state: n=%d mean=%g", a.N(), a.Mean())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty wrong: n=%d mean=%g", b.N(), b.Mean())
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{10, 13, 16, 19, 22} // y = 3x + 10
	f := FitLinear(xs, ys)
	wantClose(t, "slope", f.Slope, 3, 1e-12)
	wantClose(t, "intercept", f.Intercept, 10, 1e-12)
	wantClose(t, "r2", f.R2, 1, 1e-12)
}

func TestFitLinearNoisy(t *testing.T) {
	r := NewRNG(3)
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2*x+5+Normal{Sigma: 1}.Sample(r))
	}
	f := FitLinear(xs, ys)
	wantClose(t, "slope", f.Slope, 2, 0.01)
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %g too low for nearly-linear data", f.R2)
	}
}

func TestFitLinearPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"short":    func() { FitLinear([]float64{1}, []float64{2}) },
		"mismatch": func() { FitLinear([]float64{1, 2}, []float64{3}) },
		"constant": func() { FitLinear([]float64{1, 1}, []float64{2, 3}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestQuickWelfordMeanWithinHull(t *testing.T) {
	f := func(raw []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			w.Add(v)
			n++
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if n == 0 {
			return true
		}
		m := w.Mean()
		return m >= lo-1e-9 && m <= hi+1e-9 && w.Variance() >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
