package dist

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(t *testing.T, d Distribution, seed uint64, n int) float64 {
	t.Helper()
	r := NewRNG(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

// wantClose fails unless got is within rel of want (or within abs for
// tiny want).
func wantClose(t *testing.T, name string, got, want, rel float64) {
	t.Helper()
	tol := rel * math.Abs(want)
	if tol < 1e-9 {
		tol = 1e-9
	}
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestConstant(t *testing.T) {
	c := Constant{C: 42}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if v := c.Sample(r); v != 42 {
			t.Fatalf("constant sample %g != 42", v)
		}
	}
	if c.Mean() != 42 {
		t.Fatalf("constant mean %g != 42", c.Mean())
	}
}

func TestUniformMeanAndBounds(t *testing.T) {
	u := Uniform{Low: 10, High: 30}
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 10 || v >= 30 {
			t.Fatalf("uniform sample %g out of [10,30)", v)
		}
	}
	wantClose(t, "uniform mean", sampleMean(t, u, 3, 100000), 20, 0.01)
	if u.Mean() != 20 {
		t.Fatalf("uniform analytic mean %g != 20", u.Mean())
	}
}

func TestExponentialMoments(t *testing.T) {
	e := Exponential{MeanValue: 250}
	wantClose(t, "exp mean", sampleMean(t, e, 4, 200000), 250, 0.02)
	// Exponential variance = mean^2; check via second moment.
	r := NewRNG(5)
	var sum, sum2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := e.Sample(r)
		if v < 0 {
			t.Fatalf("exponential produced negative sample %g", v)
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	wantClose(t, "exp variance", variance, 250*250, 0.05)
}

func TestNormalMoments(t *testing.T) {
	nrm := Normal{Mu: 100, Sigma: 15}
	r := NewRNG(6)
	var sum, sum2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := nrm.Sample(r)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	wantClose(t, "normal mean", mean, 100, 0.01)
	wantClose(t, "normal sd", sd, 15, 0.03)
}

func TestLogNormalMean(t *testing.T) {
	l := LogNormal{Mu: 3, Sigma: 0.5}
	want := math.Exp(3 + 0.25/2)
	wantClose(t, "lognormal analytic mean", l.Mean(), want, 1e-12)
	wantClose(t, "lognormal sample mean", sampleMean(t, l, 7, 300000), want, 0.03)
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if v := l.Sample(r); v <= 0 {
			t.Fatalf("lognormal produced non-positive sample %g", v)
		}
	}
}

func TestParetoMeanAndSupport(t *testing.T) {
	p := Pareto{Xm: 100, Alpha: 3}
	wantClose(t, "pareto analytic mean", p.Mean(), 150, 1e-12)
	wantClose(t, "pareto sample mean", sampleMean(t, p, 9, 400000), 150, 0.05)
	r := NewRNG(10)
	for i := 0; i < 1000; i++ {
		if v := p.Sample(r); v < 100 {
			t.Fatalf("pareto sample %g below xm", v)
		}
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("pareto mean should be +Inf for alpha <= 1")
	}
}

func TestSpikeFiringRateAndMean(t *testing.T) {
	s := Spike{P: 0.1, Magnitude: Constant{C: 1000}}
	r := NewRNG(11)
	const n = 100000
	fired := 0
	for i := 0; i < n; i++ {
		v := s.Sample(r)
		switch v {
		case 0:
		case 1000:
			fired++
		default:
			t.Fatalf("spike sample %g is neither 0 nor 1000", v)
		}
	}
	rate := float64(fired) / n
	wantClose(t, "spike rate", rate, 0.1, 0.05)
	wantClose(t, "spike mean", s.Mean(), 100, 1e-12)
}

func TestShiftedScaledTruncated(t *testing.T) {
	base := Uniform{Low: 0, High: 10}
	sh := Shifted{Offset: 100, Inner: base}
	wantClose(t, "shifted mean", sh.Mean(), 105, 1e-12)
	r := NewRNG(12)
	for i := 0; i < 1000; i++ {
		if v := sh.Sample(r); v < 100 || v >= 110 {
			t.Fatalf("shifted sample %g out of [100,110)", v)
		}
	}

	sc := Scaled{Factor: 3, Inner: base}
	wantClose(t, "scaled mean", sc.Mean(), 15, 1e-12)
	for i := 0; i < 1000; i++ {
		if v := sc.Sample(r); v < 0 || v >= 30 {
			t.Fatalf("scaled sample %g out of [0,30)", v)
		}
	}

	tr := Truncated{Low: 2, High: 5, Inner: base}
	for i := 0; i < 1000; i++ {
		if v := tr.Sample(r); v < 2 || v > 5 {
			t.Fatalf("truncated sample %g out of [2,5]", v)
		}
	}
}

func TestMixtureMeanAndComponents(t *testing.T) {
	m := NewMixture(
		[]float64{1, 3},
		[]Distribution{Constant{C: 0}, Constant{C: 100}},
	)
	wantClose(t, "mixture mean", m.Mean(), 75, 1e-12)
	r := NewRNG(13)
	const n = 100000
	hi := 0
	for i := 0; i < n; i++ {
		v := m.Sample(r)
		if v != 0 && v != 100 {
			t.Fatalf("mixture sample %g not from components", v)
		}
		if v == 100 {
			hi++
		}
	}
	wantClose(t, "mixture weight", float64(hi)/n, 0.75, 0.02)
}

func TestMixturePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"mismatched", func() { NewMixture([]float64{1}, nil) }},
		{"negative weight", func() {
			NewMixture([]float64{-1}, []Distribution{Constant{}})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSampleDeterminismAcrossDistributions(t *testing.T) {
	// Property: every distribution type, sampled with identically
	// seeded RNGs, yields identical streams.
	dists := []Distribution{
		Constant{C: 5},
		Uniform{Low: 0, High: 1},
		Exponential{MeanValue: 3},
		Normal{Mu: 0, Sigma: 1},
		LogNormal{Mu: 0, Sigma: 0.3},
		Pareto{Xm: 1, Alpha: 2},
		Spike{P: 0.3, Magnitude: Exponential{MeanValue: 10}},
		Shifted{Offset: 1, Inner: Uniform{Low: 0, High: 1}},
		Truncated{Low: 0, High: 2, Inner: Normal{Mu: 1, Sigma: 1}},
	}
	for _, d := range dists {
		a, b := NewRNG(77), NewRNG(77)
		for i := 0; i < 100; i++ {
			if x, y := d.Sample(a), d.Sample(b); x != y {
				t.Fatalf("%s: non-deterministic sample at %d: %g != %g", d, i, x, y)
			}
		}
	}
}

func TestQuickUniformWithinBounds(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		u := Uniform{Low: lo, High: hi}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := u.Sample(r)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExponentialNonNegative(t *testing.T) {
	f := func(seed uint64, m uint16) bool {
		e := Exponential{MeanValue: float64(m)}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if e.Sample(r) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionStrings(t *testing.T) {
	for _, tc := range []struct {
		d    Distribution
		want string
	}{
		{Constant{C: 5}, "constant(5)"},
		{Uniform{Low: 0, High: 2}, "uniform[0,2)"},
		{Exponential{MeanValue: 3}, "exponential(mean=3)"},
		{Normal{Mu: 1, Sigma: 2}, "normal(mu=1,sigma=2)"},
	} {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
