package dist

import (
	"math"
	"testing"
)

// Differential tests for the ziggurat fast path: the fast samplers are
// compared against the retained pre-ziggurat reference samplers
// (Exact()) with the two-sample Kolmogorov–Smirnov statistic, the rare
// slow branches are stress-tested directly, and the lane-vectorized
// SampleInto draws are pinned bit-identical to scalar draws.

const (
	zigTestN     = 40000
	zigTestAlpha = 1e-4
)

// TestZigguratTableInvariants checks the structural properties the
// fast path relies on: strictly decreasing layer edges, x₁ = R,
// x₂₅₆ = 0, and densities increasing toward the mode.
func TestZigguratTableInvariants(t *testing.T) {
	check := func(name string, x, f *[zigLayers + 1]float64, w *[zigLayers]float64, r float64) {
		if x[1] != r {
			t.Errorf("%s: x[1] = %v, want tail cut %v", name, x[1], r)
		}
		if x[zigLayers] != 0 {
			t.Errorf("%s: x[%d] = %v, want 0", name, zigLayers, x[zigLayers])
		}
		for i := 0; i < zigLayers; i++ {
			if !(x[i] > x[i+1]) {
				t.Fatalf("%s: layer edges not strictly decreasing at %d: %v <= %v",
					name, i, x[i], x[i+1])
			}
			if f[i] > f[i+1] {
				t.Fatalf("%s: density not monotone at %d: f(x[%d])=%v > f(x[%d])=%v",
					name, i, i, f[i], i+1, f[i+1])
			}
			if w[i] != x[i]*inv53 {
				t.Errorf("%s: w[%d] not premultiplied edge", name, i)
			}
		}
		if f[zigLayers] != 1 {
			t.Errorf("%s: f(0) = %v, want 1", name, f[zigLayers])
		}
	}
	check("exp", &zigExpX, &zigExpF, &zigExpW, zigExpR)
	check("norm", &zigNormX, &zigNormF, &zigNormW, zigNormR)
}

// TestZigguratVsExactKS is the differential acceptance gate: the
// ziggurat stream and the exact reference stream must be statistically
// indistinguishable under the two-sample KS test at fixed seeds.
func TestZigguratVsExactKS(t *testing.T) {
	cases := []struct {
		name string
		d    Distribution
	}{
		{"exponential", Exponential{MeanValue: 300}},
		{"normal", Normal{Mu: -2, Sigma: 7}},
		{"lognormal", LogNormal{Mu: 0.5, Sigma: 0.8}},
		{"shifted-exponential", Shifted{Offset: 40, Inner: Exponential{MeanValue: 500}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			exact := Exact(tc.d)
			rf := NewRNG(statSeed("zigdiff-fast-" + tc.name))
			re := NewRNG(statSeed("zigdiff-exact-" + tc.name))
			fast := make([]float64, zigTestN)
			ref := make([]float64, zigTestN)
			for i := range fast {
				fast[i] = tc.d.Sample(rf)
				ref[i] = exact.Sample(re)
			}
			d := KSStatTwo(fast, ref)
			if crit := KSCriticalTwo(zigTestAlpha, zigTestN, zigTestN); d > crit {
				t.Errorf("%s vs %s: two-sample KS %.5f exceeds critical %.5f",
					tc.d, exact, d, crit)
			}
		})
	}
}

// TestZigguratTailBranch stress-tests the rare slow paths directly:
// conditioned on exceeding the tail cut R, the exponential excess must
// again be Exp(1) (memorylessness) and the normal tail must follow the
// conditional normal law. Drawing until enough tail samples accumulate
// exercises stdExpSlow/stdNormSlow thousands of times, including the
// wedge-rejection redraw loops.
func TestZigguratTailBranch(t *testing.T) {
	t.Run("exponential", func(t *testing.T) {
		r := NewRNG(statSeed("zigtail-exp"))
		const want = 3000
		tail := make([]float64, 0, want)
		var draws int
		for len(tail) < want {
			draws++
			if draws > 1<<28 {
				t.Fatal("tail draws did not accumulate; slow path unreachable?")
			}
			if v := stdExp(r); v > zigExpR {
				tail = append(tail, v-zigExpR)
			}
		}
		// P(X > R) = e^{-R} ≈ 4.5e-4: the tail must actually be rare.
		frac := float64(want) / float64(draws)
		if frac > 10*math.Exp(-zigExpR) {
			t.Errorf("tail frequency %.2g far above analytic e^-R = %.2g", frac, math.Exp(-zigExpR))
		}
		d := KSStat(tail, func(x float64) float64 {
			if x < 0 {
				return 0
			}
			return 1 - math.Exp(-x)
		})
		if crit := KSCriticalOne(zigTestAlpha, want); d > crit {
			t.Errorf("exponential tail excess: KS %.5f exceeds critical %.5f", d, crit)
		}
	})
	t.Run("normal", func(t *testing.T) {
		r := NewRNG(statSeed("zigtail-norm"))
		const want = 2000
		tail := make([]float64, 0, want)
		var draws, neg int
		for len(tail) < want {
			draws++
			if draws > 1<<28 {
				t.Fatal("tail draws did not accumulate; slow path unreachable?")
			}
			v := stdNorm(r)
			if v < 0 {
				neg++
				v = -v
			}
			if v > zigNormR {
				tail = append(tail, v)
			}
		}
		// Sign bit must stay unbiased.
		if f := float64(neg) / float64(draws); f < 0.45 || f > 0.55 {
			t.Errorf("sign bias: %.3f of draws negative", f)
		}
		// Conditional CDF beyond R: (Φ(x) − Φ(R)) / (1 − Φ(R)).
		phiR := phi(zigNormR)
		d := KSStat(tail, func(x float64) float64 {
			if x < zigNormR {
				return 0
			}
			return (phi(x) - phiR) / (1 - phiR)
		})
		if crit := KSCriticalOne(zigTestAlpha, want); d > crit {
			t.Errorf("normal tail: KS %.5f exceeds critical %.5f", d, crit)
		}
	})
}

// TestZigguratDeterminism pins the per-seed contract for the fast
// samplers and their RNG bit consumption: equal seeds give identical
// streams, and a fast-path draw consumes exactly one Uint64.
func TestZigguratDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 4096; i++ {
		if va, vb := stdExp(a), stdExp(b); va != vb {
			t.Fatalf("stdExp diverged at draw %d: %v vs %v", i, va, vb)
		}
		if va, vb := stdNorm(a), stdNorm(b); va != vb {
			t.Fatalf("stdNorm diverged at draw %d: %v vs %v", i, va, vb)
		}
	}

	// Fast-path draws consume exactly one Uint64: replay a draw's
	// consumption manually and require the generators to stay in sync.
	r1, r2 := NewRNG(7), NewRNG(7)
	fastPath := 0
	for i := 0; i < 4096; i++ {
		u := r2.Uint64()
		li := u & 0xff
		x := float64(u>>11) * zigExpW[li]
		v := stdExp(r1)
		if x < zigExpX[li+1] {
			fastPath++
			if v != x {
				t.Fatalf("fast-path value mismatch at draw %d", i)
			}
		} else {
			// Slow path: resynchronize by replaying the remainder on r2.
			if got := stdExpSlow(r2, li, x); got != v {
				t.Fatalf("slow-path value mismatch at draw %d", i)
			}
		}
	}
	if frac := float64(fastPath) / 4096; frac < 0.97 {
		t.Errorf("fast-path rate %.3f; ziggurat should accept ≥ ~98.9%% in one compare", frac)
	}
}

// TestSampleIntoMatchesScalar pins the lane-vectorized draws
// bit-identical to scalar draws: for every BatchSampler, SampleInto
// over K lanes must produce exactly Sample(&r[i]) per lane and leave
// each lane generator in exactly the post-scalar-draw state —
// including through a non-unit stride.
func TestSampleIntoMatchesScalar(t *testing.T) {
	batchers := []BatchSampler{
		Exponential{MeanValue: 250},
		Normal{Mu: 3, Sigma: 1.5},
		Uniform{Low: 2, High: 9},
		Constant{C: 42},
	}
	const lanes = 8
	for _, d := range batchers {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			for _, stride := range []int{1, 3} {
				batchRNG := make([]RNG, lanes)
				scalarRNG := make([]RNG, lanes)
				for i := range batchRNG {
					seed := statSeed(d.String()) + uint64(i)*0x9e3779b97f4a7c15
					batchRNG[i].Reseed(seed)
					scalarRNG[i].Reseed(seed)
				}
				dst := make([]float64, (lanes-1)*stride+1)
				for i := range dst {
					dst[i] = math.NaN() // canary: strided gaps must stay untouched
				}
				d.SampleInto(dst, stride, batchRNG)
				for i := 0; i < lanes; i++ {
					want := d.Sample(&scalarRNG[i])
					if got := dst[i*stride]; got != want {
						t.Fatalf("stride %d lane %d: batch draw %v != scalar draw %v",
							stride, i, got, want)
					}
					if batchRNG[i] != scalarRNG[i] {
						t.Fatalf("stride %d lane %d: generator state diverged after draw", stride, i)
					}
				}
				if stride > 1 {
					for i := range dst {
						if i%stride != 0 && !math.IsNaN(dst[i]) {
							t.Fatalf("stride %d: gap slot %d overwritten", stride, i)
						}
					}
				}
			}
		})
	}
}

// TestExactConstruction checks the Exact() mapping: changed samplers
// get reference wrappers, wrappers recurse, and untouched samplers
// pass through unchanged.
func TestExactConstruction(t *testing.T) {
	if _, ok := Exact(Exponential{MeanValue: 1}).(exactExponential); !ok {
		t.Error("Exact(Exponential) did not return the reference sampler")
	}
	if _, ok := Exact(Normal{Mu: 0, Sigma: 1}).(exactNormal); !ok {
		t.Error("Exact(Normal) did not return the reference sampler")
	}
	if _, ok := Exact(LogNormal{Mu: 0, Sigma: 1}).(exactLogNormal); !ok {
		t.Error("Exact(LogNormal) did not return the reference sampler")
	}
	sh := Exact(Shifted{Offset: 5, Inner: Exponential{MeanValue: 2}}).(Shifted)
	if _, ok := sh.Inner.(exactExponential); !ok {
		t.Error("Exact(Shifted{Exponential}) did not recurse into Inner")
	}
	mix := Exact(NewMixture(
		[]float64{1, 1},
		[]Distribution{Normal{Mu: 0, Sigma: 1}, Constant{C: 3}},
	)).(Mixture)
	if _, ok := mix.Components[0].(exactNormal); !ok {
		t.Error("Exact(Mixture) did not recurse into components")
	}
	if _, ok := mix.Components[1].(Constant); !ok {
		t.Error("Exact(Mixture) rewrote an untouched component")
	}
	u := Uniform{Low: 0, High: 1}
	if got := Exact(u); got != Distribution(u) {
		t.Error("Exact(Uniform) should pass through unchanged")
	}

	// Exact's mean must match the original's: same law, old algorithm.
	for _, d := range []Distribution{
		Exponential{MeanValue: 7},
		Normal{Mu: 2, Sigma: 3},
		LogNormal{Mu: 0.3, Sigma: 0.6},
	} {
		if Exact(d).Mean() != d.Mean() {
			t.Errorf("Exact(%s) changed the mean", d)
		}
	}
}

// TestExactExponentialStream pins the reference exponential stream to
// the pre-ziggurat algorithm, bit for bit: -mean·ln(Float64Open).
func TestExactExponentialStream(t *testing.T) {
	d := Exact(Exponential{MeanValue: 250})
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 256; i++ {
		want := -250 * math.Log(b.Float64Open())
		if got := d.Sample(a); got != want {
			t.Fatalf("draw %d: exact sampler %v != inverse-CDF reference %v", i, got, want)
		}
	}
}

// TestZigguratMomentPrecision drives a long fixed-seed run through the
// fast samplers and requires the first two moments to converge to the
// analytic values within tight CLT bands — a higher-resolution
// complement to the KS gate that is sensitive to table construction
// errors too small to move the empirical CDF visibly.
func TestZigguratMomentPrecision(t *testing.T) {
	const n = 2_000_000
	r := NewRNG(statSeed("zig-moments"))
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := stdExp(r)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	if diff := math.Abs(mean - 1); diff > 6.0/math.Sqrt(n) {
		t.Errorf("stdExp mean %.6f off 1 by %.2g (tolerance %.2g)", mean, diff, 6.0/math.Sqrt(n))
	}
	// E[X²] = 2 for Exp(1); Var(X²) = E[X⁴] − 4 = 24 − 4 = 20.
	m2 := sum2 / n
	if diff := math.Abs(m2 - 2); diff > 6*math.Sqrt(20.0/n) {
		t.Errorf("stdExp second moment %.6f off 2 by %.2g", m2, diff)
	}

	sum, sum2 = 0, 0
	for i := 0; i < n; i++ {
		v := stdNorm(r)
		sum += v
		sum2 += v * v
	}
	mean = sum / n
	if diff := math.Abs(mean); diff > 6.0/math.Sqrt(n) {
		t.Errorf("stdNorm mean %.6f off 0 by %.2g", mean, diff)
	}
	// Var(X²) = E[X⁴] − 1 = 2 for N(0,1).
	m2 = sum2 / n
	if diff := math.Abs(m2 - 1); diff > 6*math.Sqrt(2.0/n) {
		t.Errorf("stdNorm variance %.6f off 1 by %.2g", m2, diff)
	}
}
