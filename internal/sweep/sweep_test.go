package sweep

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/obsv"
	"mpgraph/internal/workloads"
)

func TestParseParam(t *testing.T) {
	for name, want := range map[string]Param{
		"":        ParamLatency,
		"latency": ParamLatency,
		"noise":   ParamNoise,
		"perbyte": ParamPerByte,
		"ranks":   ParamRanks,
	} {
		got, err := ParseParam(name)
		if err != nil || got != want {
			t.Errorf("ParseParam(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseParam("entropy"); err == nil {
		t.Error("unknown param accepted")
	}
}

func TestParamStrings(t *testing.T) {
	for p, want := range map[Param]string{
		ParamLatency: "latency", ParamNoise: "noise",
		ParamPerByte: "perbyte", ParamRanks: "ranks",
		Param(9): "param(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q", p, got)
		}
	}
}

func TestLatencySweepSec61Shape(t *testing.T) {
	res, err := Run(Config{
		Workload:        "tokenring",
		WorkloadOptions: workloads.Options{Iterations: 5},
		Machine:         machine.Config{NRanks: 8, Seed: 1},
		Param:           ParamLatency,
		From:            0, To: 400, Step: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !res.HasFit || res.Fit.R2 < 0.999 {
		t.Fatalf("fit = %+v", res.Fit)
	}
	// §6.1 slope ~ traversals × p = 40 (within the ack-path factor).
	if res.Fit.Slope < 40 || res.Fit.Slope > 100 {
		t.Fatalf("slope = %g", res.Fit.Slope)
	}
	if res.Points[0].Result.MaxFinalDelay != 0 {
		t.Fatal("zero perturbation should give zero delay")
	}
}

func TestNoiseAndPerByteSweeps(t *testing.T) {
	for _, p := range []Param{ParamNoise, ParamPerByte} {
		res, err := Run(Config{
			Workload:        "cg",
			WorkloadOptions: workloads.Options{Iterations: 3},
			Machine:         machine.Config{NRanks: 4, Seed: 2},
			Param:           p,
			From:            0, To: 2, Step: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		last := res.Points[len(res.Points)-1].Result.MaxFinalDelay
		if last <= 0 {
			t.Fatalf("%s: no delay at the top of the sweep", p)
		}
	}
}

func TestRanksSweep(t *testing.T) {
	res, err := Run(Config{
		Workload:        "bsp",
		WorkloadOptions: workloads.Options{Iterations: 3},
		Machine:         machine.Config{NRanks: 2, Seed: 3},
		Param:           ParamRanks,
		From:            2, To: 8, Step: 3,
		NoiseMean: 200,
		ModelSeed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Collective-heavy code: more ranks amplify the same noise model.
	if res.Points[2].Result.MaxFinalDelay <= res.Points[0].Result.MaxFinalDelay {
		t.Fatalf("noise amplification did not grow with ranks: %g vs %g",
			res.Points[2].Result.MaxFinalDelay, res.Points[0].Result.MaxFinalDelay)
	}
	// Each point used its own rank count.
	if res.Points[0].Result.NRanks != 2 || res.Points[2].Result.NRanks != 8 {
		t.Fatal("rank counts not applied per point")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Workload: "tokenring", From: 1, To: 0, Step: 1}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := Run(Config{Workload: "tokenring", Step: 0}); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Run(Config{Workload: "nope", From: 0, To: 1, Step: 1,
		Machine: machine.Config{NRanks: 2}}); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown workload accepted: %v", err)
	}
	if _, err := Run(Config{Workload: "tokenring", Param: ParamRanks,
		From: 0, To: 1, Step: 1, Machine: machine.Config{NRanks: 2}}); err == nil {
		t.Fatal("ranks < 1 accepted")
	}
}

func TestMetricsAndProgress(t *testing.T) {
	reg := obsv.NewRegistry()
	var mu sync.Mutex
	var lastDone, calls int
	res, err := Run(Config{
		Workload:        "tokenring",
		WorkloadOptions: workloads.Options{Iterations: 3},
		Machine:         machine.Config{NRanks: 4, Seed: 5},
		Param:           ParamLatency,
		From:            0, To: 200, Step: 100,
		Trials:      3,
		Workers:     2,
		ReplayLanes: 16, // opt in to lane batching; auto is scalar now
		Metrics:     reg,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done > lastDone {
				lastDone = done
			}
			if total != 9 {
				t.Errorf("progress total = %d, want 9", total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	mu.Lock()
	if calls != 9 || lastDone != 9 {
		t.Fatalf("progress calls = %d, max done = %d, want 9/9", calls, lastDone)
	}
	mu.Unlock()
	snap := reg.Snapshot()
	// Trials ride the lane-batched replay path: each point's 3 trials
	// pack into one core.ReplayBatch task, so the pool sees 3 tasks
	// while progress and replay counters still tick once per trial.
	for name, want := range map[string]int64{
		"sweep_points_total":          3,
		"sweep_trials_total":          9,
		"sweep_compiled_points_total": 3,
		"sweep_replay_batches_total":  3,
		"parallel_tasks_total":        3,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if lanes := snap.Gauges["sweep_replay_lanes"]; lanes != 3 {
		t.Errorf("sweep_replay_lanes = %g, want 3", lanes)
	}
	// Engine counters flow through Analyze.Metrics defaulting: each
	// point compiles once (a zero-model streaming pass) and each trial
	// replays the compiled program (as one lane of the point's batch).
	if got := snap.Counters["core_compiles_total"]; got != 3 {
		t.Errorf("core_compiles_total = %d, want 3", got)
	}
	if got := snap.Counters["core_replays_total"]; got != 9 {
		t.Errorf("core_replays_total = %d, want 9", got)
	}
	if snap.Counters["core_events_total"] == 0 {
		t.Error("core_events_total is zero")
	}
	if ms := snap.PhaseMS(); ms["sweep_run"] <= 0 || ms["sweep_trace"] <= 0 ||
		ms["core_compile"] <= 0 || ms["core_replay_batch"] <= 0 {
		t.Errorf("phase timings not all positive: %v", ms)
	}
	if h, ok := snap.Histograms["parallel_task_ms"]; !ok || h.Count != 3 {
		t.Errorf("parallel_task_ms histogram = %+v", snap.Histograms["parallel_task_ms"])
	}
	if w := snap.Gauges["parallel_pool_workers"]; w != 2 {
		t.Errorf("pool workers gauge = %g, want 2", w)
	}
}

// TestMetricsDoNotChangeResults: the same sweep with and without a
// registry attached must produce identical delay series.
func TestMetricsDoNotChangeResults(t *testing.T) {
	base := Config{
		Workload:        "stencil1d",
		WorkloadOptions: workloads.Options{Iterations: 3},
		Machine:         machine.Config{NRanks: 4, Seed: 6},
		Param:           ParamNoise,
		From:            50, To: 150, Step: 50,
		ModelSeed: 11,
		Trials:    2,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	instr := base
	instr.Metrics = obsv.NewRegistry()
	instr.Progress = func(done, total int) {}
	got, err := Run(instr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Points {
		if plain.Points[i].Result.MaxFinalDelay != got.Points[i].Result.MaxFinalDelay ||
			*plain.Points[i].Trials != *got.Points[i].Trials {
			t.Fatalf("point %d diverged under instrumentation", i)
		}
	}
	if plain.Fit != got.Fit {
		t.Fatalf("fit diverged: %+v vs %+v", plain.Fit, got.Fit)
	}
}

// TestStreamingTrialsMatchCompiled: the compiled fast path and the
// streaming escape hatch must produce byte-identical sweeps — same
// per-trial results, same aggregates, same fit.
func TestStreamingTrialsMatchCompiled(t *testing.T) {
	base := Config{
		Workload:        "stencil1d",
		WorkloadOptions: workloads.Options{Iterations: 3, CollEvery: 2},
		Machine:         machine.Config{NRanks: 4, Seed: 9},
		Param:           ParamLatency,
		From:            0, To: 300, Step: 150,
		ModelSeed: 17,
		Trials:    4,
		Workers:   2,
	}
	compiled, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	streaming := base
	streaming.StreamingTrials = true
	want, err := Run(streaming)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, compiled) {
		for i := range want.Points {
			if !reflect.DeepEqual(want.Points[i], compiled.Points[i]) {
				t.Errorf("point %d diverged: streaming trials=%+v compiled trials=%+v",
					i, want.Points[i].Trials, compiled.Points[i].Trials)
			}
		}
		t.Fatal("compiled trials diverged from streaming trials")
	}
}
