package sweep

import (
	"strings"
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/workloads"
)

func TestParseParam(t *testing.T) {
	for name, want := range map[string]Param{
		"":        ParamLatency,
		"latency": ParamLatency,
		"noise":   ParamNoise,
		"perbyte": ParamPerByte,
		"ranks":   ParamRanks,
	} {
		got, err := ParseParam(name)
		if err != nil || got != want {
			t.Errorf("ParseParam(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseParam("entropy"); err == nil {
		t.Error("unknown param accepted")
	}
}

func TestParamStrings(t *testing.T) {
	for p, want := range map[Param]string{
		ParamLatency: "latency", ParamNoise: "noise",
		ParamPerByte: "perbyte", ParamRanks: "ranks",
		Param(9): "param(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q", p, got)
		}
	}
}

func TestLatencySweepSec61Shape(t *testing.T) {
	res, err := Run(Config{
		Workload:        "tokenring",
		WorkloadOptions: workloads.Options{Iterations: 5},
		Machine:         machine.Config{NRanks: 8, Seed: 1},
		Param:           ParamLatency,
		From:            0, To: 400, Step: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !res.HasFit || res.Fit.R2 < 0.999 {
		t.Fatalf("fit = %+v", res.Fit)
	}
	// §6.1 slope ~ traversals × p = 40 (within the ack-path factor).
	if res.Fit.Slope < 40 || res.Fit.Slope > 100 {
		t.Fatalf("slope = %g", res.Fit.Slope)
	}
	if res.Points[0].Result.MaxFinalDelay != 0 {
		t.Fatal("zero perturbation should give zero delay")
	}
}

func TestNoiseAndPerByteSweeps(t *testing.T) {
	for _, p := range []Param{ParamNoise, ParamPerByte} {
		res, err := Run(Config{
			Workload:        "cg",
			WorkloadOptions: workloads.Options{Iterations: 3},
			Machine:         machine.Config{NRanks: 4, Seed: 2},
			Param:           p,
			From:            0, To: 2, Step: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		last := res.Points[len(res.Points)-1].Result.MaxFinalDelay
		if last <= 0 {
			t.Fatalf("%s: no delay at the top of the sweep", p)
		}
	}
}

func TestRanksSweep(t *testing.T) {
	res, err := Run(Config{
		Workload:        "bsp",
		WorkloadOptions: workloads.Options{Iterations: 3},
		Machine:         machine.Config{NRanks: 2, Seed: 3},
		Param:           ParamRanks,
		From:            2, To: 8, Step: 3,
		NoiseMean: 200,
		ModelSeed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Collective-heavy code: more ranks amplify the same noise model.
	if res.Points[2].Result.MaxFinalDelay <= res.Points[0].Result.MaxFinalDelay {
		t.Fatalf("noise amplification did not grow with ranks: %g vs %g",
			res.Points[2].Result.MaxFinalDelay, res.Points[0].Result.MaxFinalDelay)
	}
	// Each point used its own rank count.
	if res.Points[0].Result.NRanks != 2 || res.Points[2].Result.NRanks != 8 {
		t.Fatal("rank counts not applied per point")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Workload: "tokenring", From: 1, To: 0, Step: 1}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := Run(Config{Workload: "tokenring", Step: 0}); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Run(Config{Workload: "nope", From: 0, To: 1, Step: 1,
		Machine: machine.Config{NRanks: 2}}); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown workload accepted: %v", err)
	}
	if _, err := Run(Config{Workload: "tokenring", Param: ParamRanks,
		From: 0, To: 1, Step: 1, Machine: machine.Config{NRanks: 2}}); err == nil {
		t.Fatal("ranks < 1 accepted")
	}
}
