package sweep

import (
	"fmt"
	"strings"
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/machine"
	"mpgraph/internal/workloads"
)

// fingerprint renders every observable field of an analysis result —
// per-rank delays, warnings, per-region attribution, aggregate stats —
// with exact (hex float) formatting, so two results fingerprint
// identically iff they are bit-identical.
func fingerprint(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nranks=%d events=%d max=%x mean=%x makespan=%x window=%d violations=%d\n",
		res.NRanks, res.Events, res.MaxFinalDelay, res.MeanFinalDelay,
		res.MakespanDelay, res.WindowHighWater, res.OrderViolations)
	fmt.Fprintf(&b, "stats n=%d mean=%x var=%x min=%x max=%x\n",
		res.DelayStats.N(), res.DelayStats.Mean(), res.DelayStats.Variance(),
		res.DelayStats.Min(), res.DelayStats.Max())
	for r, rr := range res.Ranks {
		fmt.Fprintf(&b, "rank %d: ev=%d end=%d delay=%x inj=%x abs=%d prop=%d slack=%x induced=%x own=%x remote=%x msg=%x\n",
			r, rr.Events, rr.OrigEnd, rr.FinalDelay, rr.InjectedLocal,
			rr.Absorbed, rr.Propagated, rr.SlackAbsorbed, rr.DelayInduced,
			rr.Attr.OwnNoise, rr.Attr.RemoteNoise, rr.Attr.MsgDelta)
	}
	for _, key := range res.RegionList() {
		reg := res.Regions[key]
		fmt.Fprintf(&b, "region %d/%d: ev=%d abs=%d prop=%d growth=%x\n",
			key.Rank, key.Region, reg.Events, reg.Absorbed, reg.Propagated, reg.DelayGrowth)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}

// sweepFingerprint folds a whole sweep, points and fit, into one
// comparable string.
func sweepFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "param=%s hasfit=%v slope=%x intercept=%x r2=%x\n",
		res.Param, res.HasFit, res.Fit.Slope, res.Fit.Intercept, res.Fit.R2)
	for _, p := range res.Points {
		fmt.Fprintf(&b, "== point %x\n%s", p.Value, fingerprint(p.Result))
		if p.Trials != nil {
			fmt.Fprintf(&b, "trials=%d mean=%x p95=%x min=%x max=%x sd=%x\n",
				p.Trials.Trials, p.Trials.MeanMax, p.Trials.P95Max,
				p.Trials.MinMax, p.Trials.MaxMax, p.Trials.StdDevMax)
		}
	}
	return b.String()
}

// TestSweepDeterminismAcrossWorkers is the load-bearing equivalence
// test for the parallel replay engine: for every seed × propagation
// mode combination, workers=1 and workers=8 must produce byte-identical
// sweeps — same slowdowns, same warnings, same per-region attribution.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 7, 2006} {
		for _, mode := range []core.PropagationMode{core.PropagationAdditive, core.PropagationAnchored} {
			cfg := Config{
				Workload:        "cg",
				WorkloadOptions: workloads.Options{Iterations: 3},
				Machine:         machine.Config{NRanks: 6, Seed: seed},
				Param:           ParamRanks,
				From:            2, To: 6, Step: 2,
				NoiseMean:   150,
				ModelSeed:   seed,
				Propagation: mode,
			}
			cfg.Workers = 1
			serial, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d mode=%s serial: %v", seed, mode, err)
			}
			cfg.Workers = 8
			par, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d mode=%s parallel: %v", seed, mode, err)
			}
			a, b := sweepFingerprint(serial), sweepFingerprint(par)
			if a != b {
				t.Fatalf("seed=%d mode=%s: workers=1 and workers=8 diverge:\n--- serial\n%s\n--- parallel\n%s",
					seed, mode, a, b)
			}
		}
	}
}

// TestSweepTrialsDeterminismAcrossWorkers proves the Monte Carlo mode
// keeps the same guarantee: per-trial seeds depend only on the task
// index, so the trial aggregate is pool-size invariant.
func TestSweepTrialsDeterminismAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{3, 11, 42} {
		for _, mode := range []core.PropagationMode{core.PropagationAdditive, core.PropagationAnchored} {
			cfg := Config{
				Workload:        "tokenring",
				WorkloadOptions: workloads.Options{Iterations: 3},
				Machine:         machine.Config{NRanks: 4, Seed: seed},
				Param:           ParamRanks,
				From:            2, To: 4, Step: 2,
				NoiseMean:   200,
				ModelSeed:   seed,
				Propagation: mode,
				Trials:      5,
			}
			cfg.Workers = 1
			serial, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d mode=%s serial: %v", seed, mode, err)
			}
			cfg.Workers = 8
			par, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d mode=%s parallel: %v", seed, mode, err)
			}
			if a, b := sweepFingerprint(serial), sweepFingerprint(par); a != b {
				t.Fatalf("seed=%d mode=%s trials diverge:\n--- serial\n%s\n--- parallel\n%s",
					seed, mode, a, b)
			}
		}
	}
}

// TestSweepTrialsDeterminismAcrossLanes proves lane batching is pure
// packing: for every lane width — auto, forced single-replay, odd,
// wider than the trial count — and for the streaming engine, the
// Monte Carlo sweep fingerprints bit-identically. Trial seeds derive
// from the flattened (point × trial) index alone, so how trials are
// grouped into tape walks can never show through.
func TestSweepTrialsDeterminismAcrossLanes(t *testing.T) {
	base := Config{
		Workload:        "stencil1d",
		WorkloadOptions: workloads.Options{Iterations: 3, CollEvery: 2},
		Machine:         machine.Config{NRanks: 4, Seed: 13},
		Param:           ParamRanks,
		From:            2, To: 4, Step: 2,
		NoiseMean: 180,
		ModelSeed: 13,
		Trials:    5,
		Workers:   4,
	}
	ref := base
	ref.ReplayLanes = 1
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := sweepFingerprint(want)
	for _, lanes := range []int{0, 2, 3, 5, 64} {
		cfg := base
		cfg.ReplayLanes = lanes
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if fp := sweepFingerprint(got); fp != wantFP {
			t.Fatalf("lanes=%d diverges from single-replay trials:\n--- lanes=1\n%s\n--- lanes=%d\n%s",
				lanes, wantFP, lanes, fp)
		}
	}
	cfg := base
	cfg.StreamingTrials = true
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fp := sweepFingerprint(got); fp != wantFP {
		t.Fatalf("streaming trials diverge from batched trials:\n--- batched\n%s\n--- streaming\n%s", wantFP, fp)
	}
}

// TestSweepTrialsAggregates sanity-checks the Monte Carlo statistics:
// a sampled noise model must show trial-to-trial spread with coherent
// min ≤ mean ≤ p95 ≤ max ordering, and trial 0 must be the reported
// representative Result.
func TestSweepTrialsAggregates(t *testing.T) {
	cfg := Config{
		Workload:        "cg",
		WorkloadOptions: workloads.Options{Iterations: 3},
		Machine:         machine.Config{NRanks: 4, Seed: 9},
		Param:           ParamRanks,
		From:            4, To: 4, Step: 1,
		NoiseMean: 300,
		ModelSeed: 9,
		Trials:    16,
		Workers:   4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d", len(res.Points))
	}
	p := res.Points[0]
	ts := p.Trials
	if ts == nil || ts.Trials != 16 {
		t.Fatalf("trial stats missing: %+v", ts)
	}
	if !(ts.MinMax <= ts.MeanMax && ts.MeanMax <= ts.MaxMax && ts.P95Max <= ts.MaxMax && ts.MinMax <= ts.P95Max) {
		t.Fatalf("incoherent aggregate ordering: %+v", ts)
	}
	if ts.StdDevMax <= 0 || ts.MinMax == ts.MaxMax {
		t.Fatalf("sampled noise shows no trial spread: %+v", ts)
	}
	if p.Result == nil || p.Result.MaxFinalDelay <= 0 {
		t.Fatal("representative result missing")
	}
	// Trials must broaden, not shift, the study: every trial analyzed
	// the same trace, so event counts agree with the representative.
	if p.Result.NRanks != 4 {
		t.Fatalf("representative NRanks = %d", p.Result.NRanks)
	}
}

// TestSweepErrorsMatchSerialUnderParallelism: a failing point must
// surface the same error regardless of the pool size, and a bad grid
// value must fail even when other tasks are in flight.
func TestSweepErrorsMatchSerialUnderParallelism(t *testing.T) {
	cfg := Config{
		Workload:        "tokenring",
		WorkloadOptions: workloads.Options{Iterations: 2},
		Machine:         machine.Config{NRanks: 2, Seed: 1},
		Param:           ParamRanks,
		From:            0, To: 6, Step: 1, // value 0 is invalid for ranks
		NoiseMean: 100,
	}
	cfg.Workers = 1
	_, err1 := Run(cfg)
	cfg.Workers = 8
	_, err8 := Run(cfg)
	if err1 == nil || err8 == nil {
		t.Fatal("invalid ranks value accepted")
	}
	if err1.Error() != err8.Error() {
		t.Fatalf("error text depends on pool size: %q vs %q", err1, err8)
	}
}
