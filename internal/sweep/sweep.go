// Package sweep runs perturbation parameter sweeps: trace a workload
// once per point, analyze under a model derived from the swept value,
// and collect the delay series plus its linear fit — the programmatic
// form of the paper's Section 6.1 protocol, shared by the mpg-sweep
// tool, the benchmark harness, and the examples.
//
// Sweep points (and Monte Carlo trials within a point) are independent
// replays over deterministic traces, so Run fans them out across a
// bounded worker pool (Config.Workers). Parallel execution is
// bit-identical to serial: every replay derives all of its randomness
// from (seed, point, trial), never from scheduling order.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/obsv"
	"mpgraph/internal/parallel"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// Param selects which perturbation parameter the sweep varies.
type Param uint8

const (
	// ParamLatency sweeps a constant per-message-edge delta (the
	// paper's §6.1 axis).
	ParamLatency Param = iota
	// ParamNoise sweeps a constant per-local-edge delta.
	ParamNoise
	// ParamPerByte sweeps a constant per-byte message delta.
	ParamPerByte
	// ParamRanks sweeps the world size with a fixed exponential noise
	// model (scaling studies).
	ParamRanks
)

// String returns the parameter name.
func (p Param) String() string {
	switch p {
	case ParamLatency:
		return "latency"
	case ParamNoise:
		return "noise"
	case ParamPerByte:
		return "perbyte"
	case ParamRanks:
		return "ranks"
	}
	return fmt.Sprintf("param(%d)", uint8(p))
}

// ParseParam resolves a parameter name.
func ParseParam(name string) (Param, error) {
	switch name {
	case "latency", "":
		return ParamLatency, nil
	case "noise":
		return ParamNoise, nil
	case "perbyte":
		return ParamPerByte, nil
	case "ranks":
		return ParamRanks, nil
	}
	return ParamLatency, fmt.Errorf("sweep: unknown parameter %q (latency, noise, perbyte, ranks)", name)
}

// Config describes a sweep.
type Config struct {
	// Workload is the registered workload name.
	Workload string
	// WorkloadOptions parameterize it.
	WorkloadOptions workloads.Options
	// Machine is the tracing platform (NRanks is overridden per point
	// for ParamRanks).
	Machine machine.Config
	// Param is the swept axis.
	Param Param
	// From, To, Step define the inclusive sweep range.
	From, To, Step float64
	// NoiseMean is the fixed exponential noise mean used by ParamRanks.
	NoiseMean float64
	// Propagation selects the delta-combining mode of the point models
	// (additive by default, anchored for the literal Eq. 1/2 reading).
	Propagation core.PropagationMode
	// ModelSeed seeds perturbation sampling. With Trials > 1 it is the
	// base from which per-trial seeds are derived.
	ModelSeed uint64
	// Analyze tunes the analyzer.
	Analyze core.Options
	// Workers bounds the replay worker pool; zero or negative means
	// GOMAXPROCS. Results are identical for every pool size.
	Workers int
	// Trials, when > 1, turns each point into a Monte Carlo study: the
	// point's trace is replayed Trials times, each trial analyzing
	// under an independent seed derived as hash(ModelSeed, task) so
	// that sampled-distribution models (e.g. exponential noise) are
	// integrated over their randomness instead of observed once. The
	// per-point Result is trial 0's; the aggregate lands in
	// Point.Trials. Values <= 1 run the classic single replay.
	//
	// Trials use the compiled fast path automatically: each point's
	// trace is compiled once (core.Compile) and every trial replays
	// the compiled program (core.ReplayCompiled), which is
	// byte-identical to the streaming engine but skips re-parsing and
	// re-matching. A non-nil Analyze.Graph falls back to streaming
	// (the compiled replayer cannot feed a graph sink), as does
	// StreamingTrials.
	Trials int
	// StreamingTrials forces Monte Carlo trials through the streaming
	// analyzer instead of the compiled replayer — an escape hatch for
	// debugging and for A/B-verifying the two engines.
	StreamingTrials bool
	// ReplayLanes sets the lane width of batched compiled trials: each
	// worker task walks a point's compiled tape once while propagating
	// up to ReplayLanes trial models simultaneously (core.ReplayBatch).
	// Zero (the default) runs the pooled single-replay path — since the
	// draw-specialization work the scalar replay is faster per trial
	// than the K=16 batch (DESIGN.md §8.1), so batching is opt-in: set
	// ReplayLanes > 1 explicitly to pack trials per tape walk. Lane
	// packing never changes any result — every lane is byte-identical
	// to a standalone replay with the same derived trial seed — it only
	// changes how trials map onto worker tasks. Streaming trials (and
	// trials with a Trajectory sink, whose per-replay point streams
	// must stay un-interleaved) ignore it.
	ReplayLanes int
	// ReplayWorkers sets the intra-replay worker count of compiled
	// Monte Carlo trials: when > 1 each trial runs through the
	// wavefront-slab parallel engine (core.ReplayParallel) on up to
	// ReplayWorkers cores, and the outer trial pool is shrunk to
	// max(1, Workers/ReplayWorkers) so the total concurrency budget
	// stays ~Workers (inter-replay × intra-replay). Useful when points
	// × trials is small relative to the core count — few big replays —
	// otherwise trial fan-out already saturates the machine. Results
	// are byte-identical for every setting. Streaming trials and
	// lane-batched trials (ReplayLanes > 1) ignore it.
	ReplayWorkers int
	// Metrics, when non-nil, receives sweep observability: tracing
	// phase timers, point/trial counters, the pool metrics (it is
	// passed into the worker pool), and — unless Analyze.Metrics is
	// already set — the engine counters of every replay. Out-of-band:
	// attaching a registry changes no sweep result.
	Metrics *obsv.Registry
	// Progress, when non-nil, is invoked once per completed replay task
	// with the number done so far and the total. It is called from
	// worker goroutines and must be safe for concurrent use
	// (obsv.Progress.Add is; so is any atomic counter).
	Progress func(done, total int)
}

// Point is one sweep observation.
type Point struct {
	// Value is the swept parameter's value.
	Value float64
	// Result is the full analysis outcome (trial 0's when Trials > 1).
	Result *core.Result
	// Trials aggregates the Monte Carlo trials; nil unless
	// Config.Trials > 1.
	Trials *TrialStats
}

// TrialStats summarizes the MaxFinalDelay observed across one point's
// Monte Carlo trials.
type TrialStats struct {
	// Trials is the number of replays aggregated.
	Trials int
	// MeanMax, P95Max, MinMax, MaxMax and StdDevMax summarize the
	// trials' MaxFinalDelay (the paper's headline slowdown per run).
	MeanMax, P95Max, MinMax, MaxMax, StdDevMax float64
}

// Result is a completed sweep.
type Result struct {
	// Param echoes the swept axis.
	Param Param
	// Points holds the observations in sweep order.
	Points []Point
	// Fit is the linear fit of MaxFinalDelay against Value (the trial
	// mean when Trials > 1; zero when fewer than two points or
	// constant x).
	Fit dist.LinearFit
	// HasFit reports whether Fit is meaningful.
	HasFit bool
}

// Values enumerates the sweep grid of cfg (the inclusive From..To
// range in Step increments, accumulated exactly as Run walks it).
func (cfg Config) Values() []float64 {
	var vals []float64
	for v := cfg.From; v <= cfg.To+1e-9; v += cfg.Step {
		vals = append(vals, v)
	}
	return vals
}

// pointModel derives the perturbation model and machine configuration
// for one sweep value.
func (cfg Config) pointModel(v float64) (*core.Model, machine.Config, error) {
	model := &core.Model{Seed: cfg.ModelSeed, Propagation: cfg.Propagation}
	mcfg := cfg.Machine
	switch cfg.Param {
	case ParamLatency:
		model.MsgLatency = dist.Constant{C: v}
	case ParamNoise:
		model.OSNoise = dist.Constant{C: v}
	case ParamPerByte:
		model.PerByte = dist.Constant{C: v}
	case ParamRanks:
		if v < 1 {
			return nil, mcfg, fmt.Errorf("sweep: ranks value %g < 1", v)
		}
		mcfg.NRanks = int(v)
		model.OSNoise = dist.Exponential{MeanValue: cfg.NoiseMean}
	}
	return model, mcfg, nil
}

// tracePoint traces the workload for one sweep value. Tracing is a
// pure function of (workload, options, machine config), so concurrent
// points re-trace independently.
func (cfg Config) tracePoint(v float64, mcfg machine.Config) (*trace.Set, error) {
	defer cfg.Metrics.Timer("sweep_trace").Start()()
	prog, err := workloads.BuildByName(cfg.Workload, cfg.WorkloadOptions)
	if err != nil {
		return nil, err
	}
	run, err := mpi.Run(mpi.Config{Machine: mcfg}, prog)
	if err != nil {
		return nil, fmt.Errorf("sweep: value %g: %w", v, err)
	}
	return run.TraceSet()
}

// Run executes the sweep, fanning the grid (and, with Trials > 1, the
// per-point Monte Carlo trials) across the worker pool.
func Run(cfg Config) (*Result, error) {
	if cfg.Step <= 0 || cfg.To < cfg.From {
		return nil, fmt.Errorf("sweep: invalid range [%g,%g] step %g", cfg.From, cfg.To, cfg.Step)
	}
	if _, err := workloads.BuildByName(cfg.Workload, cfg.WorkloadOptions); err != nil {
		return nil, err
	}
	vals := cfg.Values()
	out := &Result{Param: cfg.Param}
	popts := parallel.Options{Workers: cfg.Workers, Metrics: cfg.Metrics}
	if cfg.Analyze.Metrics == nil {
		cfg.Analyze.Metrics = cfg.Metrics
	}
	defer cfg.Metrics.Timer("sweep_run").Start()()
	cfg.Metrics.Counter("sweep_points_total").Add(int64(len(vals)))

	var xs, ys []float64
	if cfg.Trials <= 1 {
		tick := cfg.progressTick(len(vals))
		results, err := parallel.Map(len(vals), popts, func(i int) (*core.Result, error) {
			defer tick()
			defer cfg.Metrics.SpanStart("sweep_point")()
			v := vals[i]
			model, mcfg, err := cfg.pointModel(v)
			if err != nil {
				return nil, err
			}
			set, err := cfg.tracePoint(v, mcfg)
			if err != nil {
				return nil, err
			}
			res, err := core.Analyze(set, model, cfg.Analyze)
			if err != nil {
				return nil, fmt.Errorf("sweep: value %g: %w", v, err)
			}
			return res, nil
		})
		if err != nil {
			return nil, unwrapTask(err)
		}
		for i, res := range results {
			out.Points = append(out.Points, Point{Value: vals[i], Result: res})
			xs = append(xs, vals[i])
			ys = append(ys, res.MaxFinalDelay)
		}
	} else {
		points, err := cfg.runTrials(vals, popts)
		if err != nil {
			return nil, err
		}
		out.Points = points
		for _, p := range points {
			xs = append(xs, p.Value)
			ys = append(ys, p.Trials.MeanMax)
		}
	}
	if len(xs) >= 2 && xs[0] != xs[len(xs)-1] {
		out.Fit = dist.FitLinear(xs, ys)
		out.HasFit = true
	}
	return out, nil
}

// pointSnap lazily traces and snapshots one point's workload exactly
// once, no matter which trial task gets there first; tracing is
// deterministic, so the winner is irrelevant.
type pointSnap struct {
	once sync.Once
	snap *trace.Snapshot
	err  error
}

func (ps *pointSnap) get(cfg Config, v float64, mcfg machine.Config) (*trace.Snapshot, error) {
	ps.once.Do(func() {
		set, err := cfg.tracePoint(v, mcfg)
		if err != nil {
			ps.err = err
			return
		}
		ps.snap, ps.err = trace.NewSnapshot(set)
	})
	return ps.snap, ps.err
}

// pointProg lazily traces and compiles one point's workload exactly
// once (see core.Compile); the immutable program is then shared by all
// of the point's trial replays.
type pointProg struct {
	once sync.Once
	prog *core.Compiled
	err  error
}

func (pp *pointProg) get(cfg Config, v float64, mcfg machine.Config) (*core.Compiled, error) {
	pp.once.Do(func() {
		set, err := cfg.tracePoint(v, mcfg)
		if err != nil {
			pp.err = err
			return
		}
		pp.prog, pp.err = core.Compile(set, cfg.Analyze)
	})
	return pp.prog, pp.err
}

// runTrials fans out the flattened (point × trial) task grid. Each
// point's trace is captured once — compiled to a graph program on the
// default path, snapshotted for the streaming fallback — and shared
// read-only across its trials; each trial clones the point model with
// its own derived seed, so no sampler state is ever shared between
// replays. Both engines produce byte-identical results (pinned by the
// core equivalence suite), so the fast path is not a mode switch.
func (cfg Config) runTrials(vals []float64, popts parallel.Options) ([]Point, error) {
	trials := cfg.Trials
	streaming := cfg.StreamingTrials || cfg.Analyze.Graph != nil
	snaps := make([]pointSnap, len(vals))
	progs := make([]pointProg, len(vals))
	cfg.Metrics.Counter("sweep_trials_total").Add(int64(len(vals) * trials))
	if !streaming {
		cfg.Metrics.Counter("sweep_compiled_points_total").Add(int64(len(vals)))
		// Batching is opt-in (ReplayLanes > 0): the specialized scalar
		// replay now outruns the lane batch per trial, so auto means
		// scalar. See Config.ReplayLanes and DESIGN.md §8.1.
		lanes := 1
		if cfg.ReplayLanes > 0 {
			lanes = core.PickReplayLanes(cfg.ReplayLanes, trials)
		}
		if cfg.Analyze.Trajectory != nil {
			// A trajectory sink observes one replay's points in order;
			// lane batching would interleave trials within a task.
			lanes = 1
		}
		if lanes > 1 {
			return cfg.runBatchedTrials(vals, progs, popts, lanes)
		}
	}
	replayWorkers := 1
	if !streaming && cfg.ReplayWorkers > 1 {
		// Split the concurrency budget between trial fan-out and
		// intra-replay slab workers: outer × inner ≈ Workers.
		replayWorkers = cfg.ReplayWorkers
		outer := cfg.Workers
		if outer <= 0 {
			outer = runtime.GOMAXPROCS(0)
		}
		if outer = outer / replayWorkers; outer < 1 {
			outer = 1
		}
		popts.Workers = outer
		cfg.Metrics.Gauge("sweep_replay_workers").SetMax(float64(replayWorkers))
	}
	tick := cfg.progressTick(len(vals) * trials)
	results, err := parallel.Map(len(vals)*trials, popts, func(t int) (*core.Result, error) {
		defer tick()
		defer cfg.Metrics.SpanStart("sweep_point")()
		p := t / trials
		v := vals[p]
		model, mcfg, err := cfg.pointModel(v)
		if err != nil {
			return nil, err
		}
		trial := model.Clone()
		trial.Seed = parallel.TaskSeed(cfg.ModelSeed, t)
		var res *core.Result
		if streaming {
			snap, err := snaps[p].get(cfg, v, mcfg)
			if err != nil {
				return nil, err
			}
			set, release := snap.Acquire()
			res, err = core.Analyze(set, trial, cfg.Analyze)
			release()
			if err != nil {
				return nil, fmt.Errorf("sweep: value %g trial %d: %w", v, t%trials, err)
			}
			return res, nil
		}
		prog, err := progs[p].get(cfg, v, mcfg)
		if err != nil {
			return nil, err
		}
		if replayWorkers > 1 {
			res, err = core.ReplayParallel(prog, trial, cfg.Analyze, replayWorkers)
		} else {
			res, err = core.ReplayCompiled(prog, trial, cfg.Analyze)
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: value %g trial %d: %w", v, t%trials, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	return aggregateTrialPoints(vals, results, trials), nil
}

// runBatchedTrials is the lane-batched compiled path: each worker task
// owns one chunk of up to `lanes` consecutive trials of one point and
// propagates them in a single tape walk (core.ReplayBatch). Trial
// seeds are derived from the same flattened (point × trial) task index
// the unbatched path uses — parallel.TaskSeed(ModelSeed, p*trials+k) —
// so every lane width, including 1, produces byte-identical sweeps.
func (cfg Config) runBatchedTrials(vals []float64, progs []pointProg, popts parallel.Options, lanes int) ([]Point, error) {
	trials := cfg.Trials
	chunks := (trials + lanes - 1) / lanes
	cfg.Metrics.Counter("sweep_replay_batches_total").Add(int64(len(vals) * chunks))
	cfg.Metrics.Gauge("sweep_replay_lanes").SetMax(float64(lanes))
	tick := cfg.progressTick(len(vals) * trials)
	batches, err := parallel.Map(len(vals)*chunks, popts, func(b int) ([]*core.Result, error) {
		p := b / chunks
		defer cfg.Metrics.SpanStart("sweep_point")()
		lo := (b % chunks) * lanes
		n := lanes
		if lo+n > trials {
			n = trials - lo
		}
		v := vals[p]
		model, mcfg, err := cfg.pointModel(v)
		if err != nil {
			return nil, err
		}
		models := make([]*core.Model, n)
		for k := 0; k < n; k++ {
			trial := model.Clone()
			trial.Seed = parallel.TaskSeed(cfg.ModelSeed, p*trials+lo+k)
			models[k] = trial
		}
		prog, err := progs[p].get(cfg, v, mcfg)
		if err != nil {
			return nil, err
		}
		res, err := core.ReplayBatch(prog, models, core.BatchOptions{Options: cfg.Analyze})
		if err != nil {
			return nil, fmt.Errorf("sweep: value %g trials %d..%d: %w", v, lo, lo+n-1, err)
		}
		for range res {
			tick()
		}
		return res, nil
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	results := make([]*core.Result, len(vals)*trials)
	for b, rs := range batches {
		p := b / chunks
		lo := (b % chunks) * lanes
		copy(results[p*trials+lo:], rs)
	}
	return aggregateTrialPoints(vals, results, trials), nil
}

// aggregateTrialPoints folds the flattened (point × trial) results
// into per-point trial statistics, identically for the streaming,
// single-replay, and batched paths.
func aggregateTrialPoints(vals []float64, results []*core.Result, trials int) []Point {
	points := make([]Point, len(vals))
	maxima := make([]float64, trials)
	for p, v := range vals {
		var w dist.Welford
		for k := 0; k < trials; k++ {
			maxima[k] = results[p*trials+k].MaxFinalDelay
			w.Add(maxima[k])
		}
		points[p] = Point{
			Value:  v,
			Result: results[p*trials],
			Trials: &TrialStats{
				Trials:    trials,
				MeanMax:   w.Mean(),
				P95Max:    dist.Quantile(maxima, 0.95),
				MinMax:    w.Min(),
				MaxMax:    w.Max(),
				StdDevMax: w.StdDev(),
			},
		}
	}
	return points
}

// progressTick adapts Config.Progress into a per-task completion hook.
// The done count is an atomic, so the hook is safe to call from any
// worker; a nil Progress yields a no-op.
func (cfg Config) progressTick(total int) func() {
	if cfg.Progress == nil {
		return func() {}
	}
	var done atomic.Int64
	return func() {
		cfg.Progress(int(done.Add(1)), total)
	}
}

// unwrapTask strips the engine's task wrapper so sweep callers see the
// same error text a serial loop produced.
func unwrapTask(err error) error {
	if te, ok := err.(*parallel.TaskError); ok {
		return te.Err
	}
	return err
}
