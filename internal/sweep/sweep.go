// Package sweep runs perturbation parameter sweeps: trace a workload
// once per point, analyze under a model derived from the swept value,
// and collect the delay series plus its linear fit — the programmatic
// form of the paper's Section 6.1 protocol, shared by the mpg-sweep
// tool, the benchmark harness, and the examples.
package sweep

import (
	"fmt"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/workloads"
)

// Param selects which perturbation parameter the sweep varies.
type Param uint8

const (
	// ParamLatency sweeps a constant per-message-edge delta (the
	// paper's §6.1 axis).
	ParamLatency Param = iota
	// ParamNoise sweeps a constant per-local-edge delta.
	ParamNoise
	// ParamPerByte sweeps a constant per-byte message delta.
	ParamPerByte
	// ParamRanks sweeps the world size with a fixed exponential noise
	// model (scaling studies).
	ParamRanks
)

// String returns the parameter name.
func (p Param) String() string {
	switch p {
	case ParamLatency:
		return "latency"
	case ParamNoise:
		return "noise"
	case ParamPerByte:
		return "perbyte"
	case ParamRanks:
		return "ranks"
	}
	return fmt.Sprintf("param(%d)", uint8(p))
}

// ParseParam resolves a parameter name.
func ParseParam(name string) (Param, error) {
	switch name {
	case "latency", "":
		return ParamLatency, nil
	case "noise":
		return ParamNoise, nil
	case "perbyte":
		return ParamPerByte, nil
	case "ranks":
		return ParamRanks, nil
	}
	return ParamLatency, fmt.Errorf("sweep: unknown parameter %q (latency, noise, perbyte, ranks)", name)
}

// Config describes a sweep.
type Config struct {
	// Workload is the registered workload name.
	Workload string
	// WorkloadOptions parameterize it.
	WorkloadOptions workloads.Options
	// Machine is the tracing platform (NRanks is overridden per point
	// for ParamRanks).
	Machine machine.Config
	// Param is the swept axis.
	Param Param
	// From, To, Step define the inclusive sweep range.
	From, To, Step float64
	// NoiseMean is the fixed exponential noise mean used by ParamRanks.
	NoiseMean float64
	// ModelSeed seeds perturbation sampling.
	ModelSeed uint64
	// Analyze tunes the analyzer.
	Analyze core.Options
}

// Point is one sweep observation.
type Point struct {
	// Value is the swept parameter's value.
	Value float64
	// Result is the full analysis outcome.
	Result *core.Result
}

// Result is a completed sweep.
type Result struct {
	// Param echoes the swept axis.
	Param Param
	// Points holds the observations in sweep order.
	Points []Point
	// Fit is the linear fit of MaxFinalDelay against Value (zero when
	// fewer than two points or constant x).
	Fit dist.LinearFit
	// HasFit reports whether Fit is meaningful.
	HasFit bool
}

// Run executes the sweep.
func Run(cfg Config) (*Result, error) {
	if cfg.Step <= 0 || cfg.To < cfg.From {
		return nil, fmt.Errorf("sweep: invalid range [%g,%g] step %g", cfg.From, cfg.To, cfg.Step)
	}
	prog, err := workloads.BuildByName(cfg.Workload, cfg.WorkloadOptions)
	if err != nil {
		return nil, err
	}
	out := &Result{Param: cfg.Param}
	var xs, ys []float64
	for v := cfg.From; v <= cfg.To+1e-9; v += cfg.Step {
		model := &core.Model{Seed: cfg.ModelSeed}
		mcfg := cfg.Machine
		switch cfg.Param {
		case ParamLatency:
			model.MsgLatency = dist.Constant{C: v}
		case ParamNoise:
			model.OSNoise = dist.Constant{C: v}
		case ParamPerByte:
			model.PerByte = dist.Constant{C: v}
		case ParamRanks:
			if v < 1 {
				return nil, fmt.Errorf("sweep: ranks value %g < 1", v)
			}
			mcfg.NRanks = int(v)
			model.OSNoise = dist.Exponential{MeanValue: cfg.NoiseMean}
		}
		run, err := mpi.Run(mpi.Config{Machine: mcfg}, prog)
		if err != nil {
			return nil, fmt.Errorf("sweep: value %g: %w", v, err)
		}
		set, err := run.TraceSet()
		if err != nil {
			return nil, err
		}
		res, err := core.Analyze(set, model, cfg.Analyze)
		if err != nil {
			return nil, fmt.Errorf("sweep: value %g: %w", v, err)
		}
		out.Points = append(out.Points, Point{Value: v, Result: res})
		xs = append(xs, v)
		ys = append(ys, res.MaxFinalDelay)
	}
	if len(xs) >= 2 && xs[0] != xs[len(xs)-1] {
		out.Fit = dist.FitLinear(xs, ys)
		out.HasFit = true
	}
	return out, nil
}
