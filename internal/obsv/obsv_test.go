package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Add(3)
	c.Inc()
	if got := r.Counter("events").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("window")
	g.Set(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge after SetMax(3) = %g, want 5", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after SetMax(9) = %g, want 9", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Gauge("x").SetMax(1)
	r.Histogram("x", ExpBuckets(1, 2, 4)).Observe(3)
	stop := r.Timer("x").Start()
	stop()
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Timers) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Buckets are inclusive upper edges: [<=1, <=10, <=100, overflow].
	want := []int64{2, 2, 1, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 0.5+1+5+10+50+1000 {
		t.Fatalf("sum = %g", s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestTimerAccumulates(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(2 * time.Millisecond)
	if got := tm.Total(); got != 5*time.Millisecond {
		t.Fatalf("total = %v, want 5ms", got)
	}
	stop := tm.Start()
	stop()
	snap := r.Snapshot().Timers["phase"]
	if snap.Count != 3 {
		t.Fatalf("timer count = %d, want 3", snap.Count)
	}
	if snap.TotalMS < 5 {
		t.Fatalf("timer total %gms, want >= 5ms", snap.TotalMS)
	}
	if ms := r.Snapshot().PhaseMS(); ms["phase"] != snap.TotalMS {
		t.Fatalf("PhaseMS = %v", ms)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").SetMax(float64(i))
				r.Histogram("h", ExpBuckets(1, 2, 8)).Observe(float64(i % 7))
				r.Timer("t").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["n"])
	}
	if s.Gauges["g"] != 999 {
		t.Fatalf("gauge = %g, want 999", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
	if s.Timers["t"].Count != 8000 {
		t.Fatalf("timer count = %d, want 8000", s.Timers["t"].Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(42)
	r.Gauge("window_high_water").Set(7)
	r.Histogram("task_seconds", []float64{0.001, 0.1}).Observe(0.05)
	r.Timer("analyze").Observe(1500 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Counters["events_total"] != 42 {
		t.Fatalf("round-tripped counter = %d", back.Counters["events_total"])
	}
	if back.Timers["analyze"].TotalMS <= 0 {
		t.Fatalf("round-tripped timer = %+v", back.Timers["analyze"])
	}
	if back.Histograms["task_seconds"].Counts[1] != 1 {
		t.Fatalf("round-tripped histogram = %+v", back.Histograms["task_seconds"])
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Timer("t").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, ib := strings.Index(out, "counter a 2"), strings.Index(out, "counter b 1")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("text output missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "timer t count=1") {
		t.Fatalf("timer line missing:\n%s", out)
	}
}

func TestProgressReporter(t *testing.T) {
	var buf lockedBuffer
	p := NewProgress(&buf, "points", 4, time.Hour) // ticker never fires
	p.Add(1)
	p.Add(3)
	p.Done()
	p.Done() // idempotent
	out := buf.String()
	if !strings.Contains(out, "points 4/4 (100%)") {
		t.Fatalf("final line missing: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final line not newline-terminated: %q", out)
	}
	var nilP *Progress
	nilP.Add(1)
	nilP.Done()
}

func TestRenderProgress(t *testing.T) {
	line := renderProgress("sweep", 3, 12, 3*time.Second)
	for _, want := range []string{"sweep 3/12", "(25%)", "elapsed 3s", "eta 9s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	if got := renderProgress("x", 0, 0, time.Second); !strings.Contains(got, "0/0 (0%)") {
		t.Fatalf("zero-total line = %q", got)
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer for the reporter test.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
