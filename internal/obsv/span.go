package obsv

import (
	"sort"
	"sync/atomic"
	"time"
)

// Span is one completed engine self-profiling interval: a named span of
// wall time recorded by the code being observed (compile, a replay, a
// sweep point, a verify phase). Timestamps are nanoseconds since the
// owning buffer's epoch, so spans from one buffer order against each
// other even across goroutines.
type Span struct {
	Name  string `json:"name"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
}

// SpanBuffer is a fixed-capacity lock-free ring of completed spans.
// Writers claim slots with one atomic increment and publish the span
// with one atomic pointer store, so recording is safe from any number
// of goroutines (the parallel worker pool records concurrently) and
// never blocks; once the ring wraps, the oldest spans are overwritten.
// A nil buffer no-ops everywhere, matching the package's nil-safe
// instrument contract.
type SpanBuffer struct {
	epoch time.Time
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

// DefaultSpanCapacity is the ring size used when EnableSpans is given a
// non-positive capacity.
const DefaultSpanCapacity = 4096

// NewSpanBuffer returns a ring holding up to capacity completed spans
// (DefaultSpanCapacity when capacity is not positive).
func NewSpanBuffer(capacity int) *SpanBuffer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanBuffer{
		epoch: time.Now(),
		slots: make([]atomic.Pointer[Span], capacity),
	}
}

// Now returns the buffer-relative timestamp for an explicit
// Record call (0 for a nil buffer).
func (b *SpanBuffer) Now() int64 {
	if b == nil {
		return 0
	}
	return int64(time.Since(b.epoch))
}

// Record publishes one completed span with explicit buffer-relative
// timestamps (from Now).
func (b *SpanBuffer) Record(name string, startNS, endNS int64) {
	if b == nil {
		return
	}
	i := (b.next.Add(1) - 1) % uint64(len(b.slots))
	b.slots[i].Store(&Span{Name: name, Start: startNS, End: endNS})
}

// noopEnd is the shared do-nothing stop function handed out by the
// disabled span paths, so a disabled Start never allocates.
var noopEnd = func() {}

// Start begins one span; the returned stop function records it. A nil
// buffer returns a shared no-op.
func (b *SpanBuffer) Start(name string) func() {
	if b == nil {
		return noopEnd
	}
	start := b.Now()
	return func() { b.Record(name, start, b.Now()) }
}

// Len returns the number of spans recorded so far, including any that
// have been overwritten after the ring wrapped (0 for nil).
func (b *SpanBuffer) Len() int64 {
	if b == nil {
		return 0
	}
	return int64(b.next.Load())
}

// Snapshot copies out the currently held spans, sorted by start time
// then name (the claim counter orders slots, but publication races mean
// slot order alone is not meaningful). A nil buffer yields nil.
func (b *SpanBuffer) Snapshot() []Span {
	if b == nil {
		return nil
	}
	out := make([]Span, 0, len(b.slots))
	for i := range b.slots {
		if s := b.slots[i].Load(); s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].End < out[j].End
	})
	return out
}

// EnableSpans switches on self-span recording with a ring of the given
// capacity (DefaultSpanCapacity when not positive). Idempotent: the
// first enable wins and later calls keep the existing buffer, so
// already-recorded spans survive. No-op on a nil registry.
func (r *Registry) EnableSpans(capacity int) {
	if r == nil {
		return
	}
	r.spans.CompareAndSwap(nil, NewSpanBuffer(capacity))
}

// Spans returns the registry's span ring, or nil when disabled (or the
// registry is nil).
func (r *Registry) Spans() *SpanBuffer {
	if r == nil {
		return nil
	}
	return r.spans.Load()
}

// SpanStart begins a named self-span; the returned stop function
// records it. When the registry is nil or spans are not enabled it
// returns a shared no-op without allocating, so hot paths can call it
// unconditionally.
func (r *Registry) SpanStart(name string) func() {
	if r == nil {
		return noopEnd
	}
	b := r.spans.Load()
	if b == nil {
		return noopEnd
	}
	return b.Start(name)
}
