package obsv

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantileUniformSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("u", []float64{100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	hs := r.Snapshot().Histograms["u"]
	// All mass in [0, 100]; interpolation is linear in the bucket.
	if !almost(hs.P50, 50) || !almost(hs.P90, 90) || !almost(hs.P99, 99) {
		t.Fatalf("p50=%g p90=%g p99=%g, want 50/90/99", hs.P50, hs.P90, hs.P99)
	}
	if !almost(hs.Quantile(0), 1) {
		t.Fatalf("q0 = %g, want 1 (first observation)", hs.Quantile(0))
	}
	if !almost(hs.Quantile(1), 100) {
		t.Fatalf("q1 = %g, want 100", hs.Quantile(1))
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("two", []float64{10, 20})
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i)) // bucket [0, 10]
	}
	for i := 11; i <= 20; i++ {
		h.Observe(float64(i)) // bucket (10, 20]
	}
	hs := r.Snapshot().Histograms["two"]
	if !almost(hs.P50, 10) {
		t.Errorf("p50 = %g, want 10 (bucket edge)", hs.P50)
	}
	if got := hs.Quantile(0.75); !almost(got, 15) {
		t.Errorf("q75 = %g, want 15", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ovf", []float64{10})
	for i := 0; i < 5; i++ {
		h.Observe(50) // all beyond the last finite bound
	}
	hs := r.Snapshot().Histograms["ovf"]
	// The overflow bucket has no upper edge; the estimate saturates at
	// the last finite bound rather than inventing one.
	if !almost(hs.P50, 10) || !almost(hs.P99, 10) {
		t.Errorf("overflow quantiles = %g/%g, want 10/10", hs.P50, hs.P99)
	}
}

func TestQuantileNoBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("raw", nil)
	h.Observe(4)
	h.Observe(8)
	hs := r.Snapshot().Histograms["raw"]
	// A single unbounded bucket can only report the mean.
	if !almost(hs.P50, 6) {
		t.Errorf("p50 = %g, want mean 6", hs.P50)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var hs HistogramSnapshot
	if hs.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %g", hs.Quantile(0.5))
	}
}

func TestQuantileClampsQ(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", []float64{10})
	h.Observe(5)
	hs := r.Snapshot().Histograms["c"]
	if hs.Quantile(-3) != hs.Quantile(0) || hs.Quantile(7) != hs.Quantile(1) {
		t.Error("q is not clamped to [0, 1]")
	}
}

func TestSnapshotJSONCarriesPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100})
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, key := range []string{`"p50":`, `"p90":`, `"p99":`} {
		if !strings.Contains(s, key) {
			t.Errorf("JSON snapshot missing %s:\n%s", key, s)
		}
	}
}
