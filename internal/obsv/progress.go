package obsv

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live completion reporter for long fan-outs (sweeps,
// Monte Carlo studies): workers call Add as tasks finish and a ticker
// goroutine repaints one status line on the writer (normally stderr,
// so piped CSV output stays clean). All methods are nil-safe, so a
// disabled reporter costs one atomic add per task.
type Progress struct {
	w        io.Writer
	label    string
	total    int64
	interval time.Duration
	start    time.Time

	done atomic.Int64

	mu      sync.Mutex // serializes writes
	lastLen int        // length of the last painted line (under mu)
	stop    chan struct{}
	closed  sync.Once
	wg      sync.WaitGroup
}

// NewProgress starts a reporter for total units of work, repainting
// every interval (250ms when zero or negative).
func NewProgress(w io.Writer, label string, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	p := &Progress{
		w:        w,
		label:    label,
		total:    int64(total),
		interval: interval,
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.paint(false)
		}
	}
}

// Add records n more completed units.
func (p *Progress) Add(n int) {
	if p != nil {
		p.done.Add(int64(n))
	}
}

// Done stops the ticker and paints a final line terminated by a
// newline. Safe to call more than once.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.closed.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.paint(true)
	})
}

func (p *Progress) paint(final bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	line := renderProgress(p.label, p.done.Load(), p.total, time.Since(p.start))
	// A repaint only overwrites as far as it reaches: when the new line
	// is shorter than the last one (the eta clause drops off at the
	// final paint, or on early termination), the tail of the old line
	// would survive on screen. Pad to the previous length to erase it.
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	p.lastLen = len(line)
	if final {
		fmt.Fprintf(p.w, "\r%s%s\n", line, pad)
	} else {
		fmt.Fprintf(p.w, "\r%s%s", line, pad)
	}
}

// renderProgress formats one status line: label, done/total, percent,
// elapsed wall time and a crude remaining-time estimate.
func renderProgress(label string, done, total int64, elapsed time.Duration) string {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	line := fmt.Sprintf("%s %d/%d (%.0f%%) elapsed %s", label, done, total, pct, roundDur(elapsed))
	if done > 0 && done < total {
		eta := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
		line += fmt.Sprintf(" eta %s", roundDur(eta))
	}
	return line
}

func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
