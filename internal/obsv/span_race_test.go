package obsv_test

// External test package: internal/parallel depends on obsv for pool
// metrics, so driving the real worker pool from obsv's own package
// would be an import cycle.

import (
	"testing"

	"mpgraph/internal/obsv"
	"mpgraph/internal/parallel"
)

// TestSpanRecordingConcurrent exercises the lock-free span ring from
// the real parallel worker pool under -race: every task records
// through the shared registry, some tasks race SpanStart against
// EnableSpans, and the final snapshot must be complete and ordered.
func TestSpanRecordingConcurrent(t *testing.T) {
	reg := obsv.NewRegistry()
	const tasks = 512
	_, err := parallel.Map(tasks, parallel.Options{Workers: 8}, func(i int) (struct{}, error) {
		// Racing enables must be safe and must not drop spans: the
		// first EnableSpans wins, later ones keep the buffer.
		reg.EnableSpans(tasks * 2)
		end := reg.SpanStart("task")
		b := reg.Spans()
		b.Record("explicit", b.Now(), b.Now())
		end()
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b := reg.Spans()
	if b == nil {
		t.Fatal("spans not enabled")
	}
	if got := b.Len(); got != 2*tasks {
		t.Fatalf("recorded %d spans, want %d", got, 2*tasks)
	}
	snap := b.Snapshot()
	if len(snap) != 2*tasks {
		t.Fatalf("snapshot holds %d spans, want %d (ring must not have wrapped)", len(snap), 2*tasks)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Start < snap[i-1].Start {
			t.Fatalf("snapshot unordered at %d: %v then %v", i, snap[i-1], snap[i])
		}
	}
	for _, s := range snap {
		if s.End < s.Start {
			t.Fatalf("span ends before it starts: %+v", s)
		}
	}
}

// TestSpanBufferWrapConcurrent hammers a tiny ring from many
// goroutines: wrapping writers must never tear a span or crash, and
// the snapshot only ever holds fully published spans.
func TestSpanBufferWrapConcurrent(t *testing.T) {
	b := obsv.NewSpanBuffer(8)
	_, err := parallel.Map(256, parallel.Options{Workers: 8}, func(i int) (struct{}, error) {
		start := b.Now()
		b.Record("w", start, b.Now())
		for _, s := range b.Snapshot() { // concurrent readers are legal
			if s.Name != "w" {
				t.Errorf("torn span: %+v", s)
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 256 {
		t.Fatalf("Len = %d, want 256", b.Len())
	}
}
