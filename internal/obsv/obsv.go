// Package obsv is the engine's zero-dependency observability layer: a
// metrics registry of counters, gauges, fixed-bucket histograms and
// monotonic phase timers, all lock-free on the hot path (atomics only;
// the registry mutex is touched solely when an instrument is first
// created), snapshot-exportable as JSON or text.
//
// Every accessor and instrument method is nil-safe: a nil *Registry
// hands out nil instruments and nil instruments no-op, so call sites
// never branch on whether observability is enabled. Metrics are
// strictly out-of-band — nothing in this package feeds back into the
// propagation engine, so enabling instrumentation can never change an
// analysis result.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax stores v only if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper edges of the finite buckets; one implicit overflow
// bucket catches everything above the last bound.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor (the usual latency-histogram shape).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Timer accumulates wall time over phases or operations. Durations
// come from time.Since, which uses the monotonic clock, so timers are
// immune to wall-clock steps.
type Timer struct {
	ns    atomic.Int64
	count atomic.Int64
}

// Start begins one timed span; the returned stop function commits it.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.Observe(time.Since(begin)) }
}

// Observe adds one measured duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.ns.Add(int64(d))
	t.count.Add(1)
}

// Total returns the accumulated duration (0 for nil).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Registry holds named instruments. Lookup lazily creates; an existing
// name always returns the same instrument, so concurrent users share
// state. The zero-value-adjacent nil *Registry is the disabled layer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer

	// spans is the self-profiling ring, nil until EnableSpans; kept as
	// an atomic pointer so SpanStart stays lock-free (see span.go).
	spans atomic.Pointer[SpanBuffer]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		timers:   map[string]*Timer{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later callers' bounds are ignored; the first
// registration wins). Bounds must be sorted ascending.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// HistogramSnapshot is one histogram's exported state. Counts has one
// entry per finite bound plus a trailing overflow bucket. P50/P90/P99
// are bucket-interpolated quantile estimates (see Quantile), computed
// at snapshot time.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	P50    float64   `json:"p50,omitempty"`
	P90    float64   `json:"p90,omitempty"`
	P99    float64   `json:"p99,omitempty"`
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts by linear interpolation inside the containing bucket, taking 0
// as the first bucket's lower edge. Observations in the overflow bucket
// have no finite upper edge, so a quantile landing there reports the
// last finite bound (the estimate saturates). Returns 0 when the
// histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1 // any quantile of one observation is that observation
	}
	var cum int64
	for i, c := range h.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < target {
			continue
		}
		if i < len(h.Bounds) {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			return lower + (target-prev)/float64(c)*(h.Bounds[i]-lower)
		}
		// Overflow bucket.
		if len(h.Bounds) == 0 {
			return h.Sum / float64(h.Count)
		}
		return h.Bounds[len(h.Bounds)-1]
	}
	// Unreachable: cum == Count >= target after the last bucket.
	return h.Sum / float64(h.Count)
}

// TimerSnapshot is one timer's exported state.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// Snapshot is a point-in-time copy of every instrument, ready for
// JSON (map keys marshal sorted, so output is deterministic given
// deterministic values) or aligned-text export.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Timers:     map[string]TimerSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P90 = hs.Quantile(0.90)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[name] = hs
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerSnapshot{
			Count:   t.count.Load(),
			TotalMS: float64(t.ns.Load()) / 1e6,
		}
	}
	return s
}

// PhaseMS returns the timers as a name → total-milliseconds map (nil
// when no timers fired), the shape the run-history archive embeds.
func (s Snapshot) PhaseMS() map[string]float64 {
	if len(s.Timers) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.Timers))
	for name, t := range s.Timers {
		out[name] = t.TotalMS
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as sorted "name value" lines, one
// instrument per line (histograms render count/sum/mean).
func (s Snapshot) WriteText(w io.Writer) error {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", name, v))
	}
	for name, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		lines = append(lines, fmt.Sprintf("histogram %s count=%d sum=%g mean=%g p50=%g p90=%g p99=%g",
			name, h.Count, h.Sum, mean, h.P50, h.P90, h.P99))
	}
	for name, t := range s.Timers {
		lines = append(lines, fmt.Sprintf("timer %s count=%d total=%.3fms", name, t.Count, t.TotalMS))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONFile writes the snapshot to a file (0644, truncating).
func WriteJSONFile(path string, s Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return f.Close()
}
