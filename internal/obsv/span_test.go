package obsv

import (
	"strings"
	"testing"
	"time"
)

func TestSpanBufferRecordAndSnapshot(t *testing.T) {
	b := NewSpanBuffer(8)
	b.Record("b", 100, 200)
	b.Record("a", 100, 150)
	b.Record("c", 50, 60)
	got := b.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(got))
	}
	// Sorted by start, then name.
	if got[0].Name != "c" || got[1].Name != "a" || got[2].Name != "b" {
		t.Fatalf("snapshot order = %v", got)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestSpanBufferWraps(t *testing.T) {
	b := NewSpanBuffer(4)
	for i := 0; i < 10; i++ {
		b.Record("s", int64(i), int64(i+1))
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10 recorded", b.Len())
	}
	got := b.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want capacity 4", len(got))
	}
	for _, s := range got {
		if s.Start < 6 {
			t.Fatalf("old span survived the wrap: %+v", s)
		}
	}
}

func TestSpanStartRecords(t *testing.T) {
	b := NewSpanBuffer(8)
	end := b.Start("work")
	time.Sleep(time.Millisecond)
	end()
	got := b.Snapshot()
	if len(got) != 1 || got[0].Name != "work" {
		t.Fatalf("snapshot = %v", got)
	}
	if got[0].End < got[0].Start {
		t.Fatalf("span ends before it starts: %+v", got[0])
	}
}

func TestSpanNilSafety(t *testing.T) {
	var b *SpanBuffer
	b.Record("x", 0, 1)
	b.Start("x")()
	if b.Now() != 0 || b.Len() != 0 || b.Snapshot() != nil {
		t.Fatal("nil buffer is not inert")
	}
	var r *Registry
	r.EnableSpans(4)
	r.SpanStart("x")()
	if r.Spans() != nil {
		t.Fatal("nil registry has spans")
	}
}

func TestRegistrySpansDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	if r.Spans() != nil {
		t.Fatal("spans enabled without EnableSpans")
	}
	r.SpanStart("ignored")()
	if r.Spans() != nil {
		t.Fatal("SpanStart enabled recording")
	}
}

func TestRegistryEnableSpansIdempotent(t *testing.T) {
	r := NewRegistry()
	r.EnableSpans(8)
	r.SpanStart("kept")()
	first := r.Spans()
	r.EnableSpans(8) // second enable must not drop recorded spans
	if r.Spans() != first {
		t.Fatal("re-enable replaced the buffer")
	}
	got := first.Snapshot()
	if len(got) != 1 || got[0].Name != "kept" {
		t.Fatalf("recorded span lost: %v", got)
	}
}

// TestSpanStartDisabledAllocs pins the disabled-path contract: hot
// paths call SpanStart unconditionally, so with spans off (or no
// registry at all) it must hand out the shared no-op without
// allocating.
func TestSpanStartDisabledAllocs(t *testing.T) {
	r := NewRegistry()
	if allocs := testing.AllocsPerRun(100, func() {
		r.SpanStart("hot")()
	}); allocs != 0 {
		t.Errorf("disabled SpanStart allocates %.1f objects/call; want 0", allocs)
	}
	var nilReg *Registry
	if allocs := testing.AllocsPerRun(100, func() {
		nilReg.SpanStart("hot")()
	}); allocs != 0 {
		t.Errorf("nil-registry SpanStart allocates %.1f objects/call; want 0", allocs)
	}
}

func TestSnapshotTextHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p90=") || !strings.Contains(out, "p99=") {
		t.Fatalf("text snapshot missing percentiles:\n%s", out)
	}
}
