package obsv

import (
	"strings"
	"testing"
	"time"
)

// TestProgressFinalNewlineOnEarlyTermination pins the early-exit
// contract: Done always paints a final line terminated by a newline,
// even when no work completed and the ticker never fired, so whatever
// the tool prints next starts on a fresh line.
func TestProgressFinalNewlineOnEarlyTermination(t *testing.T) {
	var buf lockedBuffer
	p := NewProgress(&buf, "job", 100, time.Hour)
	p.Add(3)
	p.Done()
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final paint not newline-terminated: %q", out)
	}
	if !strings.Contains(out, "3/100") {
		t.Fatalf("final paint missing progress: %q", out)
	}
	p.Done() // idempotent; must not paint again
	if buf.String() != out {
		t.Fatal("second Done painted again")
	}
}

// TestProgressRepaintErasesLongerLine pins the padding fix: when a
// repaint is shorter than its predecessor (the eta clause drops once
// the run completes), the stale tail must be overwritten with spaces
// rather than left on screen after the carriage return.
func TestProgressRepaintErasesLongerLine(t *testing.T) {
	var buf lockedBuffer
	p := NewProgress(&buf, "sweep", 1000000, time.Hour)
	p.Add(1) // mid-run line carries "eta <huge>"
	p.paint(false)
	mid := lastPaint(buf.String())
	if !strings.Contains(mid, "eta") {
		t.Fatalf("mid-run paint has no eta clause: %q", mid)
	}
	p.Add(999999) // complete: the final line drops the eta clause
	p.Done()
	final := lastPaint(buf.String())
	if strings.Contains(final, "eta") {
		t.Fatalf("final paint still shows an eta: %q", final)
	}
	if len(final) < len(mid) {
		t.Fatalf("short repaint not padded to erase %q: %q", mid, final)
	}
}

// lastPaint returns the text after the last carriage return, without
// the trailing newline.
func lastPaint(s string) string {
	s = strings.TrimSuffix(s, "\n")
	if i := strings.LastIndexByte(s, '\r'); i >= 0 {
		return s[i+1:]
	}
	return s
}
