// Package scenario loads perturbation scenarios from JSON files: a
// named, persistable bundle of model parameters (the "richer set of
// parameters to the simulation" of the paper's Section 7). A scenario
// file keeps what-if studies reproducible and shareable:
//
//	{
//	  "name": "noisy-shared-node",
//	  "os_noise": "spike:0.01,exponential:20000",
//	  "rank_os_noise": {"5": "constant:50000"},
//	  "noise_quantum": 100000,
//	  "latency": "exponential:300",
//	  "per_byte": "constant:0.01",
//	  "propagation": "additive",
//	  "collectives": "approx",
//	  "collective_bytes": true,
//	  "allow_negative": false,
//	  "seed": 7
//	}
//
// Distribution values use the internal/dist spec syntax. All fields
// are optional; omitted ones inject nothing / use defaults.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
)

// File is the JSON shape of a scenario.
type File struct {
	Name            string            `json:"name,omitempty"`
	OSNoise         string            `json:"os_noise,omitempty"`
	RankOSNoise     map[string]string `json:"rank_os_noise,omitempty"`
	NoiseQuantum    int64             `json:"noise_quantum,omitempty"`
	Latency         string            `json:"latency,omitempty"`
	PerByte         string            `json:"per_byte,omitempty"`
	Propagation     string            `json:"propagation,omitempty"`
	Collectives     string            `json:"collectives,omitempty"`
	CollectiveBytes bool              `json:"collective_bytes,omitempty"`
	AllowNegative   bool              `json:"allow_negative,omitempty"`
	Seed            uint64            `json:"seed,omitempty"`
}

// Load reads and compiles a scenario file into a perturbation model.
func Load(path string) (*core.Model, *File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	m, err := f.Model()
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return m, &f, nil
}

// Model compiles the scenario into a core.Model.
func (f *File) Model() (*core.Model, error) {
	m := &core.Model{
		Seed:            f.Seed,
		NoiseQuantum:    f.NoiseQuantum,
		CollectiveBytes: f.CollectiveBytes,
		AllowNegative:   f.AllowNegative,
	}
	var err error
	if m.OSNoise, err = optDist(f.OSNoise); err != nil {
		return nil, fmt.Errorf("os_noise: %w", err)
	}
	if m.MsgLatency, err = optDist(f.Latency); err != nil {
		return nil, fmt.Errorf("latency: %w", err)
	}
	if m.PerByte, err = optDist(f.PerByte); err != nil {
		return nil, fmt.Errorf("per_byte: %w", err)
	}
	if len(f.RankOSNoise) > 0 {
		maxRank := -1
		parsed := map[int]dist.Distribution{}
		for key, spec := range f.RankOSNoise {
			rank, err := strconv.Atoi(key)
			if err != nil || rank < 0 {
				return nil, fmt.Errorf("rank_os_noise: bad rank key %q", key)
			}
			d, err := dist.Parse(spec)
			if err != nil {
				return nil, fmt.Errorf("rank_os_noise[%s]: %w", key, err)
			}
			parsed[rank] = d
			if rank > maxRank {
				maxRank = rank
			}
		}
		m.RankOSNoise = make([]dist.Distribution, maxRank+1)
		for rank, d := range parsed {
			m.RankOSNoise[rank] = d
		}
	}
	switch f.Propagation {
	case "", "additive":
		m.Propagation = core.PropagationAdditive
	case "anchored":
		m.Propagation = core.PropagationAnchored
	default:
		return nil, fmt.Errorf("propagation: unknown mode %q", f.Propagation)
	}
	switch f.Collectives {
	case "", "approx":
		m.Collectives = core.CollectiveApprox
	case "explicit":
		m.Collectives = core.CollectiveExplicit
	default:
		return nil, fmt.Errorf("collectives: unknown mode %q", f.Collectives)
	}
	return m, nil
}

// Constants builds a scenario that perturbs with fixed (deterministic)
// deltas: latency cycles per message edge, perByte cycles per payload
// byte, and osNoise cycles per noise draw. Zero-valued deltas are
// omitted entirely. The differential verification harness uses constant
// scenarios because they admit exact model-equivalence bounds against
// the DES baseline (doc/VERIFY.md).
func Constants(name string, latency, perByte, osNoise float64) *File {
	f := &File{Name: name, CollectiveBytes: perByte != 0}
	format := func(v float64) string {
		return "constant:" + strconv.FormatFloat(v, 'g', -1, 64)
	}
	if latency != 0 {
		f.Latency = format(latency)
	}
	if perByte != 0 {
		f.PerByte = format(perByte)
	}
	if osNoise != 0 {
		f.OSNoise = format(osNoise)
	}
	return f
}

// Save writes the scenario as indented JSON.
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func optDist(spec string) (dist.Distribution, error) {
	if spec == "" {
		return nil, nil
	}
	return dist.Parse(spec)
}
