package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"mpgraph/internal/core"
)

func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFull(t *testing.T) {
	path := writeScenario(t, `{
	  "name": "noisy",
	  "os_noise": "exponential:200",
	  "rank_os_noise": {"5": "constant:50000", "2": "constant:100"},
	  "noise_quantum": 100000,
	  "latency": "spike:0.01,constant:5000",
	  "per_byte": "constant:0.01",
	  "propagation": "anchored",
	  "collectives": "explicit",
	  "collective_bytes": true,
	  "allow_negative": true,
	  "seed": 7
	}`)
	m, f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "noisy" || m.Seed != 7 || m.NoiseQuantum != 100000 {
		t.Fatalf("scenario = %+v model = %+v", f, m)
	}
	if m.OSNoise == nil || m.MsgLatency == nil || m.PerByte == nil {
		t.Fatal("distributions missing")
	}
	if m.Propagation != core.PropagationAnchored || m.Collectives != core.CollectiveExplicit {
		t.Fatalf("modes: %+v", m)
	}
	if !m.CollectiveBytes || !m.AllowNegative {
		t.Fatal("booleans lost")
	}
	if len(m.RankOSNoise) != 6 || m.RankOSNoise[5] == nil || m.RankOSNoise[2] == nil {
		t.Fatalf("rank noise: %v", m.RankOSNoise)
	}
	if m.RankOSNoise[0] != nil || m.RankOSNoise[3] != nil {
		t.Fatal("unspecified ranks should be nil")
	}
}

func TestLoadMinimal(t *testing.T) {
	m, _, err := Load(writeScenario(t, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Zero() {
		t.Fatal("empty scenario should inject nothing")
	}
	if m.Propagation != core.PropagationAdditive || m.Collectives != core.CollectiveApprox {
		t.Fatal("defaults wrong")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"bad dist":        `{"os_noise": "wat"}`,
		"bad latency":     `{"latency": "x:y"}`,
		"bad per byte":    `{"per_byte": "?"}`,
		"bad rank key":    `{"rank_os_noise": {"x": "constant:1"}}`,
		"negative rank":   `{"rank_os_noise": {"-1": "constant:1"}}`,
		"bad rank dist":   `{"rank_os_noise": {"0": "zzz"}}`,
		"bad propagation": `{"propagation": "diagonal"}`,
		"bad collectives": `{"collectives": "psychic"}`,
	}
	for name, body := range cases {
		if _, _, err := Load(writeScenario(t, body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveRoundTrip(t *testing.T) {
	f := &File{
		Name:    "rt",
		OSNoise: "constant:10",
		Seed:    3,
	}
	path := filepath.Join(t.TempDir(), "rt.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	m, got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.OSNoise != "constant:10" || m.Seed != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}
