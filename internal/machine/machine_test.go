package machine

import (
	"testing"

	"mpgraph/internal/dist"
)

func mustNew(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NRanks: 0},
		{NRanks: -2},
		{NRanks: 1, BytesPerCycle: -1},
		{NRanks: 1, SendOverhead: -1},
		{NRanks: 1, RecvOverhead: -1},
		{NRanks: 1, ComputeQuantum: -1},
		{NRanks: 1, EagerLimit: -1},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := New(Config{NRanks: 4}); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestDefaults(t *testing.T) {
	m := mustNew(t, Config{NRanks: 2})
	if m.OpNoise(0) != 0 {
		t.Error("default noise should be zero")
	}
	if m.Latency() != 1000 {
		t.Errorf("default latency = %d, want 1000", m.Latency())
	}
	if m.XferCycles(500) != 500 {
		t.Errorf("default bandwidth should be 1 byte/cycle")
	}
	if m.SendOverhead() != 100 || m.RecvOverhead() != 100 {
		t.Error("default overheads should be 100")
	}
	if m.LocalClock(0, 12345) != 12345 {
		t.Error("default clocks should be exact")
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	cfg := Config{
		NRanks:  4,
		Seed:    99,
		Noise:   dist.Exponential{MeanValue: 50},
		Latency: dist.Uniform{Low: 500, High: 1500},
	}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	for i := 0; i < 100; i++ {
		r := i % 4
		if x, y := a.OpNoise(r), b.OpNoise(r); x != y {
			t.Fatalf("noise diverged at %d: %d != %d", i, x, y)
		}
		if x, y := a.Latency(), b.Latency(); x != y {
			t.Fatalf("latency diverged at %d: %d != %d", i, x, y)
		}
	}
}

func TestPerRankNoiseStreamsIndependent(t *testing.T) {
	m := mustNew(t, Config{NRanks: 2, Seed: 1, Noise: dist.Uniform{Low: 0, High: 1000}})
	// Sampling rank 1's stream must not disturb rank 0's.
	ref := mustNew(t, Config{NRanks: 2, Seed: 1, Noise: dist.Uniform{Low: 0, High: 1000}})
	for i := 0; i < 50; i++ {
		m.OpNoise(1)
	}
	for i := 0; i < 50; i++ {
		if x, y := m.OpNoise(0), ref.OpNoise(0); x != y {
			t.Fatalf("rank 0 stream perturbed by rank 1 sampling at %d", i)
		}
	}
}

func TestNoiseNeverNegative(t *testing.T) {
	m := mustNew(t, Config{NRanks: 1, Seed: 2, Noise: dist.Normal{Mu: 0, Sigma: 100}})
	for i := 0; i < 1000; i++ {
		if n := m.OpNoise(0); n < 0 {
			t.Fatalf("negative noise %d", n)
		}
	}
}

func TestComputeNoiseQuanta(t *testing.T) {
	m := mustNew(t, Config{NRanks: 1, Seed: 3, Noise: dist.Constant{C: 7}, ComputeQuantum: 100})
	if got := m.ComputeNoise(0, 0); got != 0 {
		t.Fatalf("zero work accrued noise %d", got)
	}
	if got := m.ComputeNoise(0, 1); got != 7 {
		t.Fatalf("1 cycle = 1 quantum: got %d, want 7", got)
	}
	if got := m.ComputeNoise(0, 100); got != 7 {
		t.Fatalf("100 cycles = 1 quantum: got %d, want 7", got)
	}
	if got := m.ComputeNoise(0, 101); got != 14 {
		t.Fatalf("101 cycles = 2 quanta: got %d, want 14", got)
	}
	if got := m.ComputeNoise(0, 1000); got != 70 {
		t.Fatalf("1000 cycles = 10 quanta: got %d, want 70", got)
	}
}

func TestComputeNoiseNoQuantum(t *testing.T) {
	m := mustNew(t, Config{NRanks: 1, Seed: 4, Noise: dist.Constant{C: 5}})
	if got := m.ComputeNoise(0, 1_000_000); got != 5 {
		t.Fatalf("quantum-less compute noise = %d, want single sample 5", got)
	}
}

func TestXferCycles(t *testing.T) {
	m := mustNew(t, Config{NRanks: 1, BytesPerCycle: 4})
	if got := m.XferCycles(4096); got != 1024 {
		t.Fatalf("XferCycles(4096) = %d, want 1024", got)
	}
	if got := m.XferCycles(0); got != 0 {
		t.Fatalf("XferCycles(0) = %d", got)
	}
	if got := m.XferCycles(-5); got != 0 {
		t.Fatalf("XferCycles(-5) = %d", got)
	}
}

func TestNICContentionSerializes(t *testing.T) {
	m := mustNew(t, Config{NRanks: 2, NICContention: true})
	// First injection at t=1000 for 500 cycles.
	if start := m.InjectAt(0, 1000, 500); start != 1000 {
		t.Fatalf("first injection start = %d", start)
	}
	// Second injection ready at 1100 must wait for the NIC until 1500.
	if start := m.InjectAt(0, 1100, 200); start != 1500 {
		t.Fatalf("second injection start = %d, want 1500", start)
	}
	// Third, ready after the NIC is free, starts on time.
	if start := m.InjectAt(0, 2500, 100); start != 2500 {
		t.Fatalf("third injection start = %d, want 2500", start)
	}
	// Other ranks are unaffected.
	if start := m.InjectAt(1, 0, 100); start != 0 {
		t.Fatalf("rank 1 injection start = %d, want 0", start)
	}
}

func TestNICContentionDisabled(t *testing.T) {
	m := mustNew(t, Config{NRanks: 1})
	if start := m.InjectAt(0, 100, 1000); start != 100 {
		t.Fatal("contention applied when disabled")
	}
	if start := m.InjectAt(0, 150, 1000); start != 150 {
		t.Fatal("contention applied when disabled")
	}
}

func TestEagerLimit(t *testing.T) {
	m := mustNew(t, Config{NRanks: 1, EagerLimit: 4096})
	if !m.Eager(4096) || !m.Eager(1) {
		t.Fatal("small messages should be eager")
	}
	if m.Eager(4097) {
		t.Fatal("large message reported eager")
	}
	sync := mustNew(t, Config{NRanks: 1})
	if sync.Eager(1) {
		t.Fatal("eager with zero limit")
	}
}

func TestLocalClockOffsetAndDrift(t *testing.T) {
	m := mustNew(t, Config{
		NRanks:        2,
		Seed:          5,
		ClockOffset:   dist.Constant{C: 1_000_000},
		ClockDriftPPM: dist.Constant{C: 100}, // +100 ppm
	})
	if got := m.LocalClock(0, 0); got != 1_000_000 {
		t.Fatalf("local(0) = %d", got)
	}
	// 10^6 global cycles at +100ppm -> +100 cycles of drift.
	if got := m.LocalClock(0, 1_000_000); got != 2_000_100 {
		t.Fatalf("local(1e6) = %d, want 2000100", got)
	}
	if m.ClockOffset(1) != 1_000_000 || m.ClockDriftPPM(1) != 100 {
		t.Fatal("accessors disagree with samples")
	}
}

func TestLocalClockIntervalScaling(t *testing.T) {
	m := mustNew(t, Config{
		NRanks:        1,
		Seed:          6,
		ClockOffset:   dist.Constant{C: 12345},
		ClockDriftPPM: dist.Constant{C: -200},
	})
	// An interval of W global cycles reads as ~W*(1-200e-6) locally,
	// independent of the offset.
	a := m.LocalClock(0, 5_000_000)
	b := m.LocalClock(0, 6_000_000)
	got := b - a
	want := int64(1_000_000 - 200)
	if got != want {
		t.Fatalf("local interval = %d, want %d", got, want)
	}
}

func TestSampleCounters(t *testing.T) {
	m := mustNew(t, Config{NRanks: 1, Seed: 7, Noise: dist.Constant{C: 1}})
	m.OpNoise(0)
	m.OpNoise(0)
	m.Latency()
	if m.NoiseSamples() != 2 || m.LatencySamples() != 1 {
		t.Fatalf("counters = %d/%d", m.NoiseSamples(), m.LatencySamples())
	}
}

func TestRankNoiseOverride(t *testing.T) {
	m := mustNew(t, Config{
		NRanks:    3,
		Seed:      8,
		Noise:     dist.Constant{C: 10},
		RankNoise: []dist.Distribution{nil, dist.Constant{C: 500}},
	})
	if got := m.OpNoise(0); got != 10 {
		t.Fatalf("rank 0 noise = %d, want fallback 10", got)
	}
	if got := m.OpNoise(1); got != 500 {
		t.Fatalf("rank 1 noise = %d, want override 500", got)
	}
	if got := m.OpNoise(2); got != 10 {
		t.Fatalf("rank 2 (beyond slice) noise = %d, want fallback 10", got)
	}
}

func TestScaleCompute(t *testing.T) {
	m := mustNew(t, Config{NRanks: 3, CPUScale: []float64{2.0, 0, 0.5}})
	if got := m.ScaleCompute(0, 1000); got != 2000 {
		t.Fatalf("slow core scale = %d", got)
	}
	if got := m.ScaleCompute(1, 1000); got != 1000 {
		t.Fatalf("zero entry should mean 1.0: %d", got)
	}
	if got := m.ScaleCompute(2, 1000); got != 500 {
		t.Fatalf("fast core scale = %d", got)
	}
}
