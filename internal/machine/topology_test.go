package machine

import (
	"testing"

	"mpgraph/internal/dist"
)

func TestParseTopology(t *testing.T) {
	for name, want := range map[string]Topology{
		"":          TopoFull,
		"full":      TopoFull,
		"ring":      TopoRing,
		"mesh2d":    TopoMesh2D,
		"mesh":      TopoMesh2D,
		"hypercube": TopoHypercube,
		"cube":      TopoHypercube,
	} {
		got, err := ParseTopology(name)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseTopology("torus9d"); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestTopologyStrings(t *testing.T) {
	for topo, want := range map[Topology]string{
		TopoFull: "full", TopoRing: "ring", TopoMesh2D: "mesh2d",
		TopoHypercube: "hypercube", Topology(99): "topology(99)",
	} {
		if got := topo.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", topo, got, want)
		}
	}
}

func TestHopsFull(t *testing.T) {
	m := mustNew(t, Config{NRanks: 8})
	if m.Hops(0, 7) != 1 || m.Hops(3, 4) != 1 {
		t.Fatal("full crossbar should be one hop")
	}
	if m.Hops(2, 2) != 0 {
		t.Fatal("self distance should be zero")
	}
}

func TestHopsRing(t *testing.T) {
	m := mustNew(t, Config{NRanks: 8, Topology: TopoRing})
	for _, tc := range []struct {
		a, b int
		want int64
	}{
		{0, 1, 1}, {0, 7, 1}, {0, 4, 4}, {1, 6, 3}, {2, 2, 0},
	} {
		if got := m.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHopsMesh2D(t *testing.T) {
	// 8 ranks -> 2x4 grid (width 4): rank = row*4 + col.
	m := mustNew(t, Config{NRanks: 8, Topology: TopoMesh2D})
	for _, tc := range []struct {
		a, b int
		want int64
	}{
		{0, 1, 1}, // same row adjacent
		{0, 4, 1}, // same column adjacent
		{0, 7, 4}, // (0,0)->(1,3): 1+3
		{1, 6, 2}, // (0,1)->(1,2): 1+1
		{3, 3, 0},
	} {
		if got := m.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("mesh Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHopsHypercube(t *testing.T) {
	m := mustNew(t, Config{NRanks: 8, Topology: TopoHypercube})
	for _, tc := range []struct {
		a, b int
		want int64
	}{
		{0, 1, 1}, {0, 3, 2}, {0, 7, 3}, {5, 2, 3}, {6, 6, 0},
	} {
		if got := m.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("cube Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	for _, topo := range []Topology{TopoFull, TopoRing, TopoMesh2D, TopoHypercube} {
		m := mustNew(t, Config{NRanks: 12, Topology: topo})
		for a := 0; a < 12; a++ {
			for b := 0; b < 12; b++ {
				if m.Hops(a, b) != m.Hops(b, a) {
					t.Fatalf("%s: Hops(%d,%d) asymmetric", topo, a, b)
				}
				if a != b && m.Hops(a, b) < 1 {
					t.Fatalf("%s: Hops(%d,%d) < 1", topo, a, b)
				}
			}
		}
	}
}

func TestPathLatencyScalesWithHops(t *testing.T) {
	m := mustNew(t, Config{NRanks: 8, Topology: TopoRing,
		Latency: dist.Constant{C: 100}})
	if got := m.PathLatency(0, 1); got != 100 {
		t.Fatalf("1-hop latency = %d", got)
	}
	if got := m.PathLatency(0, 4); got != 400 {
		t.Fatalf("4-hop latency = %d", got)
	}
	if got := m.PathLatency(3, 3); got != 0 {
		t.Fatalf("self latency = %d", got)
	}
}

func TestMeshWidthChoices(t *testing.T) {
	for _, tc := range []struct{ p, width int }{
		{1, 1}, {2, 2}, {4, 2}, {6, 3}, {8, 4}, {9, 3}, {12, 4}, {16, 4}, {7, 7},
	} {
		if got := meshWidth(tc.p); got != tc.width {
			t.Errorf("meshWidth(%d) = %d, want %d", tc.p, got, tc.width)
		}
	}
}
