package machine

import (
	"fmt"
	"math"
)

// Topology shapes per-pair message latency: a message between two
// ranks samples the latency distribution once and multiplies it by the
// hop count between them. The default TopoFull is a full crossbar
// (every pair one hop), matching the paper's flat latency model;
// the others let experiments probe placement sensitivity.
type Topology uint8

const (
	// TopoFull is a full crossbar: one hop between any pair.
	TopoFull Topology = iota
	// TopoRing is a bidirectional ring: hops = min ring distance.
	TopoRing
	// TopoMesh2D is a 2-D mesh on the most-square factorization of the
	// rank count: hops = Manhattan distance (minimum 1).
	TopoMesh2D
	// TopoHypercube is a binary hypercube (rank count rounded up to a
	// power of two): hops = Hamming distance (minimum 1).
	TopoHypercube
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case TopoFull:
		return "full"
	case TopoRing:
		return "ring"
	case TopoMesh2D:
		return "mesh2d"
	case TopoHypercube:
		return "hypercube"
	}
	return fmt.Sprintf("topology(%d)", uint8(t))
}

// ParseTopology resolves a topology name.
func ParseTopology(name string) (Topology, error) {
	switch name {
	case "", "full":
		return TopoFull, nil
	case "ring":
		return TopoRing, nil
	case "mesh2d", "mesh":
		return TopoMesh2D, nil
	case "hypercube", "cube":
		return TopoHypercube, nil
	}
	return TopoFull, fmt.Errorf("machine: unknown topology %q (full, ring, mesh2d, hypercube)", name)
}

// Hops returns the topology distance between two ranks (minimum 1 for
// distinct ranks, 0 for a rank and itself).
func (m *Machine) Hops(a, b int) int64 {
	if a == b {
		return 0
	}
	p := m.cfg.NRanks
	switch m.cfg.Topology {
	case TopoRing:
		d := a - b
		if d < 0 {
			d = -d
		}
		if p-d < d {
			d = p - d
		}
		return int64(d)
	case TopoMesh2D:
		w := meshWidth(p)
		ax, ay := a%w, a/w
		bx, by := b%w, b/w
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		d := dx + dy
		if d < 1 {
			d = 1
		}
		return int64(d)
	case TopoHypercube:
		x := uint(a) ^ uint(b)
		d := 0
		for x != 0 {
			d += int(x & 1)
			x >>= 1
		}
		if d < 1 {
			d = 1
		}
		return int64(d)
	default:
		return 1
	}
}

// meshWidth is the most-square mesh width for p ranks.
func meshWidth(p int) int {
	w := int(math.Sqrt(float64(p)))
	for w > 1 && p%w != 0 {
		w--
	}
	if w < 1 {
		w = 1
	}
	return p / w // wider dimension as the row width
}

// PathLatency samples a one-way latency for a specific pair: one draw
// from the latency distribution scaled by the hop count.
func (m *Machine) PathLatency(src, dst int) int64 {
	hops := m.Hops(src, dst)
	if hops == 0 {
		return 0
	}
	return m.Latency() * hops
}
