// Package machine models the parallel platform on which traced runs
// execute: per-rank local clocks with offset and drift, an operating
// system noise injector, and an interconnection network with latency,
// bandwidth, and optional NIC serialization (contention).
//
// The paper's methodology needs real machines only as sources of
// (a) traces and (b) microbenchmark-derived parameter distributions.
// This package is the substitute for both: the simulated MPI runtime
// (internal/mpi) asks it for timing, and the microbenchmarks
// (internal/microbench) probe it exactly as they would probe hardware.
// Every quantity is drawn from an internal/dist distribution, which is
// precisely the level of abstraction the paper's Section 5 argues for.
package machine

import (
	"fmt"

	"mpgraph/internal/dist"
)

// Config describes a platform. The zero value is not usable; call
// (Config).Validate or use New which applies defaults.
type Config struct {
	// NRanks is the number of processors.
	NRanks int
	// Seed drives all platform randomness (noise, latency, clock
	// distortion). Runs with equal seeds are identical.
	Seed uint64

	// Noise is the per-operation OS noise distribution (cycles added
	// to every MPI call and compute quantum). Defaults to no noise.
	Noise dist.Distribution
	// RankNoise, when non-nil, overrides Noise per rank (index = rank;
	// nil entries fall back to Noise) — heterogeneous platforms, e.g.
	// one daemon-ridden node.
	RankNoise []dist.Distribution
	// CPUScale, when non-nil, multiplies each rank's compute time
	// (index = rank; 0 entries mean 1.0). Values > 1 model slower
	// cores, < 1 faster ones.
	CPUScale []float64
	// ComputeQuantum is the compute-noise sampling quantum in cycles:
	// a compute period of w cycles accrues ceil(w/quantum) independent
	// Noise samples, modeling FTQ-style periodic interference. Zero
	// means one sample per compute period regardless of length.
	ComputeQuantum int64

	// Latency is the per-message one-way wire latency distribution in
	// cycles. Defaults to constant 1000.
	Latency dist.Distribution
	// BytesPerCycle is the link bandwidth. Defaults to 1.0.
	BytesPerCycle float64
	// SendOverhead and RecvOverhead are fixed per-call CPU costs in
	// cycles (the "o" of LogP-style models). Default 100.
	SendOverhead, RecvOverhead int64
	// EagerLimit is the message size (bytes) at or below which a
	// blocking send completes without waiting for the receiver's
	// acknowledgment. Zero means fully synchronous (rendezvous) sends,
	// matching the paper's blocking model with its ack path.
	EagerLimit int64
	// NICContention serializes message injections per source rank: a
	// rank's NIC transmits one message at a time.
	NICContention bool
	// Topology scales per-pair latency by hop count (default TopoFull:
	// one hop between any pair).
	Topology Topology

	// ClockOffset is sampled once per rank: the local clock's offset
	// in cycles at global time zero. Defaults to zero (aligned clocks).
	ClockOffset dist.Distribution
	// ClockDriftPPM is sampled once per rank: parts-per-million rate
	// error of the local clock. Defaults to zero (perfect rate).
	ClockDriftPPM dist.Distribution
}

// Validate checks structural validity of the configuration.
func (c Config) Validate() error {
	if c.NRanks <= 0 {
		return fmt.Errorf("machine: NRanks must be positive, got %d", c.NRanks)
	}
	if c.BytesPerCycle < 0 {
		return fmt.Errorf("machine: negative bandwidth %g", c.BytesPerCycle)
	}
	if c.SendOverhead < 0 || c.RecvOverhead < 0 {
		return fmt.Errorf("machine: negative overhead")
	}
	if c.ComputeQuantum < 0 {
		return fmt.Errorf("machine: negative compute quantum")
	}
	if c.EagerLimit < 0 {
		return fmt.Errorf("machine: negative eager limit")
	}
	return nil
}

// Machine is an instantiated platform. It is not safe for concurrent
// use: the simulated MPI runtime serializes all access (one rank
// executes at a time), which also keeps the random streams
// deterministic.
type Machine struct {
	cfg Config

	noiseRNG []*dist.RNG // per-rank noise stream
	latRNG   *dist.RNG   // shared latency stream

	offsets []int64 // per-rank clock offset
	drifts  []int64 // per-rank drift in ppm

	nicFree []int64 // per-rank NIC next-free global time (contention)

	// Counters for reports and tests.
	noiseSamples   uint64
	latencySamples uint64
}

// New instantiates a platform, applying defaults for nil distributions.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Noise == nil {
		cfg.Noise = dist.Constant{}
	}
	if cfg.Latency == nil {
		cfg.Latency = dist.Constant{C: 1000}
	}
	if cfg.BytesPerCycle == 0 {
		cfg.BytesPerCycle = 1.0
	}
	if cfg.SendOverhead == 0 {
		cfg.SendOverhead = 100
	}
	if cfg.RecvOverhead == 0 {
		cfg.RecvOverhead = 100
	}
	if cfg.ClockOffset == nil {
		cfg.ClockOffset = dist.Constant{}
	}
	if cfg.ClockDriftPPM == nil {
		cfg.ClockDriftPPM = dist.Constant{}
	}

	m := &Machine{
		cfg:      cfg,
		noiseRNG: make([]*dist.RNG, cfg.NRanks),
		offsets:  make([]int64, cfg.NRanks),
		drifts:   make([]int64, cfg.NRanks),
		nicFree:  make([]int64, cfg.NRanks),
	}
	root := dist.NewRNG(cfg.Seed)
	clockRNG := root.ForkNamed("clocks")
	m.latRNG = root.ForkNamed("latency")
	for r := 0; r < cfg.NRanks; r++ {
		m.noiseRNG[r] = root.ForkNamed(fmt.Sprintf("noise-%d", r))
		m.offsets[r] = int64(cfg.ClockOffset.Sample(clockRNG))
		m.drifts[r] = int64(cfg.ClockDriftPPM.Sample(clockRNG))
	}
	return m, nil
}

// Config returns the (defaulted) configuration the machine runs with.
func (m *Machine) Config() Config { return m.cfg }

// NRanks returns the processor count.
func (m *Machine) NRanks() int { return m.cfg.NRanks }

// noiseFor resolves the noise distribution for a rank.
func (m *Machine) noiseFor(rank int) dist.Distribution {
	if rank < len(m.cfg.RankNoise) && m.cfg.RankNoise[rank] != nil {
		return m.cfg.RankNoise[rank]
	}
	return m.cfg.Noise
}

// OpNoise samples OS noise for a single operation on the given rank.
func (m *Machine) OpNoise(rank int) int64 {
	m.noiseSamples++
	n := int64(m.noiseFor(rank).Sample(m.noiseRNG[rank]))
	if n < 0 {
		n = 0
	}
	return n
}

// ScaleCompute applies the rank's CPU speed factor to a nominal
// compute duration.
func (m *Machine) ScaleCompute(rank int, w int64) int64 {
	if rank < len(m.cfg.CPUScale) && m.cfg.CPUScale[rank] > 0 {
		return int64(float64(w) * m.cfg.CPUScale[rank])
	}
	return w
}

// ComputeNoise returns the OS noise accrued over w cycles of pure
// computation on rank, sampling once per ComputeQuantum (or once total
// when the quantum is zero).
func (m *Machine) ComputeNoise(rank int, w int64) int64 {
	if w <= 0 {
		return 0
	}
	q := m.cfg.ComputeQuantum
	if q <= 0 {
		return m.OpNoise(rank)
	}
	quanta := (w + q - 1) / q
	var total int64
	for i := int64(0); i < quanta; i++ {
		total += m.OpNoise(rank)
	}
	return total
}

// Latency samples a one-way message latency in cycles.
func (m *Machine) Latency() int64 {
	m.latencySamples++
	l := int64(m.cfg.Latency.Sample(m.latRNG))
	if l < 0 {
		l = 0
	}
	return l
}

// XferCycles returns the serialization time of a payload at the
// configured bandwidth.
func (m *Machine) XferCycles(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return int64(float64(bytes) / m.cfg.BytesPerCycle)
}

// InjectAt models NIC serialization: a message of the given size whose
// injection becomes possible at global time ready on rank src actually
// starts when the NIC frees up, and occupies the NIC for the payload's
// serialization time. It returns the injection start time. Without
// NICContention the start time is simply ready.
func (m *Machine) InjectAt(src int, ready, serCycles int64) int64 {
	if !m.cfg.NICContention {
		return ready
	}
	start := ready
	if m.nicFree[src] > start {
		start = m.nicFree[src]
	}
	m.nicFree[src] = start + serCycles
	return start
}

// SendOverhead returns the fixed CPU cost of initiating a send.
func (m *Machine) SendOverhead() int64 { return m.cfg.SendOverhead }

// RecvOverhead returns the fixed CPU cost of initiating a receive.
func (m *Machine) RecvOverhead() int64 { return m.cfg.RecvOverhead }

// Eager reports whether a payload of the given size completes the
// sender without the acknowledgment round trip.
func (m *Machine) Eager(bytes int64) bool {
	return m.cfg.EagerLimit > 0 && bytes <= m.cfg.EagerLimit
}

// LocalClock converts a global virtual time to rank's local clock:
// local = offset + g + g*drift/1e6. Intervals measured on the local
// clock scale by (1 + drift/1e6); cross-rank comparisons of local
// times are meaningless by construction, which is the property the
// paper's Section 4.1 matching argument rests on.
func (m *Machine) LocalClock(rank int, g int64) int64 {
	return m.offsets[rank] + g + g*m.drifts[rank]/1_000_000
}

// ClockOffset returns rank's sampled clock offset (for reports/tests).
func (m *Machine) ClockOffset(rank int) int64 { return m.offsets[rank] }

// ClockDriftPPM returns rank's sampled drift (for reports/tests).
func (m *Machine) ClockDriftPPM(rank int) int64 { return m.drifts[rank] }

// NoiseSamples returns how many OS-noise samples were drawn.
func (m *Machine) NoiseSamples() uint64 { return m.noiseSamples }

// LatencySamples returns how many latency samples were drawn.
func (m *Machine) LatencySamples() uint64 { return m.latencySamples }
