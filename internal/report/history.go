package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"mpgraph/internal/core"
	"mpgraph/internal/obsv"
)

// HistoryEntry is one analysis run's archived summary — the "history
// of analysis experiments" the paper's Section 7 calls for. Entries
// append to a JSON-lines file so runs accumulate across invocations
// and stay grep/jq-friendly.
type HistoryEntry struct {
	// Label is free-form (tool invocation, scenario name).
	Label string `json:"label"`
	// Traces identifies the analyzed trace set (a directory, usually).
	Traces string `json:"traces,omitempty"`
	// Model describes the perturbation model (distribution specs).
	Model map[string]string `json:"model,omitempty"`
	// Ranks and Events size the run.
	Ranks  int   `json:"ranks"`
	Events int64 `json:"events"`
	// MaxDelay, MeanDelay and MakespanDelay are the headline results.
	MaxDelay      float64 `json:"max_delay"`
	MeanDelay     float64 `json:"mean_delay"`
	MakespanDelay float64 `json:"makespan_delay"`
	// Warnings carries the analysis caveats.
	Warnings []string `json:"warnings,omitempty"`
	// DurationMS is the wall time of the run that produced the entry.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// PhaseMS breaks DurationMS down by instrumented phase (an
	// obsv.Snapshot's timer totals, e.g. core_analyze).
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`
}

// AttachTiming records the run's wall time and the per-phase totals of
// a metrics snapshot on the entry.
func (e *HistoryEntry) AttachTiming(durationMS float64, snap obsv.Snapshot) {
	e.DurationMS = durationMS
	if ms := snap.PhaseMS(); len(ms) > 0 {
		e.PhaseMS = ms
	}
}

// NewHistoryEntry summarizes an analysis result.
func NewHistoryEntry(label, traces string, model map[string]string, res *core.Result) HistoryEntry {
	return HistoryEntry{
		Label:         label,
		Traces:        traces,
		Model:         model,
		Ranks:         res.NRanks,
		Events:        res.Events,
		MaxDelay:      res.MaxFinalDelay,
		MeanDelay:     res.MeanFinalDelay,
		MakespanDelay: res.MakespanDelay,
		Warnings:      res.Warnings,
	}
}

// AppendHistory appends the entry to a JSON-lines file, creating it if
// needed.
func AppendHistory(path string, e HistoryEntry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// LoadHistory reads all entries from a JSON-lines history file.
func LoadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
