package report

import (
	"fmt"
	"io"
	"sort"

	"mpgraph/internal/verify"
)

// VerifyCampaign renders a verification campaign summary: scenario
// counts by workload and perturbation class, and every failure with
// its shrunk reproducer.
func VerifyCampaign(w io.Writer, rep *verify.Report) error {
	fmt.Fprintf(w, "## verification campaign\n")
	fmt.Fprintf(w, "seed=%d scenarios=%d checked=%d failed=%d\n",
		rep.Seed, rep.N, rep.Checked, rep.Failed)

	byClass := NewTable("scenarios by perturbation class", "class", "count")
	for _, k := range sortedKeys(rep.ByClass) {
		byClass.AddRow(k, rep.ByClass[k])
	}
	if err := byClass.Render(w); err != nil {
		return err
	}
	byWorkload := NewTable("scenarios by workload", "workload", "count")
	for _, k := range sortedKeys(rep.ByWorkload) {
		byWorkload.AddRow(k, rep.ByWorkload[k])
	}
	if err := byWorkload.Render(w); err != nil {
		return err
	}

	if rep.Failed == 0 {
		_, err := fmt.Fprintln(w, "all scenarios agree: graph traversal matches the DES oracle within documented bounds")
		return err
	}
	for _, r := range rep.Results {
		if r.OK() {
			continue
		}
		fmt.Fprintf(w, "\nFAIL scenario %d (%s):\n", r.Index, r.Scenario.Name())
		for _, f := range r.Failures {
			fmt.Fprintf(w, "  %s\n", f)
		}
		if r.Shrunk != nil && len(r.ShrunkFailures) > 0 {
			fmt.Fprintf(w, "  shrunk to: %s iterations=%d bytes=%d compute=%d\n",
				r.Shrunk.Name(), r.Shrunk.Iterations, r.Shrunk.Bytes, r.Shrunk.Compute)
		}
	}
	for _, p := range rep.ReproPaths {
		fmt.Fprintf(w, "reproducer written: %s\n", p)
	}
	return nil
}

// LintFindings renders linter findings as a table (or a clean bill).
func LintFindings(w io.Writer, findings []verify.Finding) error {
	if len(findings) == 0 {
		_, err := fmt.Fprintln(w, "lint: no findings")
		return err
	}
	tbl := NewTable(fmt.Sprintf("lint findings (%d)", len(findings)), "class", "rank", "event", "message")
	for _, f := range findings {
		rank, event := "-", "-"
		if f.Rank >= 0 {
			rank = fmt.Sprintf("%d", f.Rank)
		}
		if f.Event >= 0 {
			event = fmt.Sprintf("%d", f.Event)
		}
		tbl.AddRow(f.Class, rank, event, f.Message)
	}
	return tbl.Render(w)
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
