package report

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 rendering of a lint report, for code-scanning UIs
// (GitHub code scanning ingests this format directly). The writer
// emits the minimal conforming document: one run, one rule per
// analyzer, one result per diagnostic.
//
// Mapping decisions:
//   - gating findings are level "error" (they fail the build);
//   - info advisories are level "note";
//   - findings suppressed by an //mpg:lint-ignore directive carry a
//     suppression of kind "inSource" with the directive's reason as
//     justification;
//   - baselined findings carry kind "external" (the committed
//     baseline file is the suppression's home).
//
// Suppressed results are included rather than dropped so a scanning
// UI shows the audit trail the text report prints as counts.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription *sarifMessage `json:"shortDescription,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// WriteSARIF renders the report as a SARIF 2.1.0 log.
func (r *LintReport) WriteSARIF(w io.Writer) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:  "mpg-lint",
			Rules: []sarifRule{},
		}},
		Results: []sarifResult{},
	}
	ruleIndex := map[string]int{}
	for i, name := range r.Analyzers {
		rule := sarifRule{ID: name}
		if i < len(r.AnalyzerDocs) && r.AnalyzerDocs[i] != "" {
			rule.ShortDescription = &sarifMessage{Text: r.AnalyzerDocs[i]}
		}
		ruleIndex[name] = len(run.Tool.Driver.Rules)
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, rule)
	}
	for _, d := range r.Diagnostics {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			// A diagnostic from outside the configured analyzer set
			// (e.g. directive validation): register its rule on the fly
			// so every result still points at a rule.
			idx = len(run.Tool.Driver.Rules)
			ruleIndex[d.Analyzer] = idx
			run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{ID: d.Analyzer})
		}
		level := "error"
		if d.Severity == "info" {
			level = "note"
		}
		res := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     level,
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: d.File},
				Region:           sarifRegion{StartLine: max(d.Line, 1), StartColumn: d.Col},
			}}},
		}
		if d.Suppressed {
			res.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.Reason}}
		} else if d.Baselined {
			res.Suppressions = []sarifSuppression{{Kind: "external", Justification: "absorbed by the committed lint baseline"}}
		}
		run.Results = append(run.Results, res)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{Schema: sarifSchema, Version: sarifVersion, Runs: []sarifRun{run}})
}
