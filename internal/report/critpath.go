package report

import (
	"fmt"
	"io"

	"mpgraph/internal/core"
)

// CritPath renders a critical-path blame decomposition: the makespan
// identity, per-kind and per-rank blame tables, and the argmax chain
// itself. Runs of consecutive zero-delta steps (path segments that
// ride along without hurting) are elided to keep long paths readable.
func CritPath(w io.Writer, cp *core.CriticalPath) error {
	if cp == nil {
		_, err := fmt.Fprintln(w, "no critical path recorded")
		return err
	}
	fmt.Fprintf(w, "## critical path\n")
	fmt.Fprintf(w, "sink=%s sink-delay=%.3f sink-offset=%.3f makespan-delay=%.3f cycles\n",
		cp.Sink, cp.SinkDelay, cp.SinkOffset, cp.SinkDelay+cp.SinkOffset)

	kinds := NewTable("blame by edge kind", "kind", "delay", "share")
	for k, blame := range cp.KindBlame {
		kinds.AddRow(core.EdgeKind(k).String(), blame, shareOf(blame, cp.SinkDelay))
	}
	if err := kinds.Render(w); err != nil {
		return err
	}

	ranks := NewTable("blame by rank (nonzero only)", "rank", "delay", "share")
	for r, blame := range cp.RankBlame {
		if blame != 0 {
			ranks.AddRow(r, blame, shareOf(blame, cp.SinkDelay))
		}
	}
	if ranks.NumRows() == 0 {
		ranks.AddRow("-", 0.0, "-")
	}
	if err := ranks.Render(w); err != nil {
		return err
	}

	steps := NewTable("path (source → sink)", "node", "edge", "delta", "delay")
	zeros := 0
	flush := func() {
		if zeros > 0 {
			steps.AddRow(fmt.Sprintf("... (%d zero-delta steps)", zeros), "", "", "")
			zeros = 0
		}
	}
	for i, s := range cp.Steps {
		kind := s.Kind.String()
		if i == 0 {
			kind = "source"
		}
		if i != 0 && i != len(cp.Steps)-1 && s.Delta == 0 {
			zeros++
			continue
		}
		flush()
		steps.AddRow(s.Node.String(), kind, s.Delta, s.Delay)
	}
	flush()
	return steps.Render(w)
}

func shareOf(part, total float64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/total)
}

// CritPathCSV writes the full (unelided) path as CSV.
func CritPathCSV(w io.Writer, cp *core.CriticalPath) error {
	if _, err := fmt.Fprintln(w, "step,rank,event,side,kind,delta,delay"); err != nil {
		return err
	}
	for i, s := range cp.Steps {
		side := "start"
		if s.Node.End {
			side = "end"
		}
		kind := s.Kind.String()
		if i == 0 {
			kind = "source"
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%s,%s,%.6f,%.6f\n",
			i, s.Node.Rank, s.Node.Event, side, kind, s.Delta, s.Delay); err != nil {
			return err
		}
	}
	return nil
}
