package report

import (
	"io"

	"mpgraph/internal/core"
	"mpgraph/internal/timeline"
)

// WaitStates renders the per-rank wait-state decomposition recorded by
// a timeline-instrumented replay: how much induced delay each rank
// absorbed while waiting on a late sender, a late receiver, or a
// collective, next to the rank's perturbed completion time. The total
// column is exactly RankResult.DelayInduced (the timeline invariant
// pins this bitwise), so the table is the text-mode view of the same
// decomposition the Perfetto export draws.
func WaitStates(w io.Writer, tl *timeline.Timeline, res *core.Result) error {
	tbl := NewTable("wait states (cycles of induced delay per rank)",
		"rank", "late-sender", "late-receiver", "collective", "total-wait", "completion")
	var ls, lr, cl, tot float64
	for r := 0; r < res.NRanks; r++ {
		var wr timeline.RankWaits
		if r < len(tl.Waits) {
			wr = tl.Waits[r]
		}
		completion := float64(res.Ranks[r].OrigEnd) + res.Ranks[r].FinalDelay
		tbl.AddRow(r, wr.LateSender, wr.LateReceiver, wr.Collective, wr.Total, completion)
		ls += wr.LateSender
		lr += wr.LateReceiver
		cl += wr.Collective
		tot += wr.Total
	}
	tbl.AddRow("all", ls, lr, cl, tot, "")
	return tbl.Render(w)
}
