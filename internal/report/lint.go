package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// LintDiagnostic is one static-analysis finding as rendered by
// mpg-lint. It mirrors analysis.Diagnostic without importing it, so
// the report layer stays independent of the analysis framework.
type LintDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	// Func is the enclosing function of the finding ("" at file
	// scope); it keys baseline fingerprints.
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
	// Severity is "" for gating findings and "info" for advisories
	// that never gate.
	Severity string `json:"severity,omitempty"`

	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
	Baselined  bool   `json:"baselined,omitempty"`
}

// LintReport is the full outcome of one mpg-lint run.
type LintReport struct {
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// Analyzers lists the analyzers that ran.
	Analyzers []string `json:"analyzers"`
	// AnalyzerDocs carries each analyzer's one-line doc, index-aligned
	// with Analyzers; the SARIF writer renders them as rule
	// descriptions. Omitted from the JSON report to keep it stable.
	AnalyzerDocs []string `json:"-"`
	// Diagnostics holds every finding, including suppressed and
	// baselined ones (marked as such).
	Diagnostics []LintDiagnostic `json:"diagnostics"`
	// Outstanding counts the gating findings: neither suppressed
	// nor baselined nor info-severity. The process exit code is
	// derived from it.
	Outstanding int `json:"outstanding"`
}

// WriteJSON renders the report as indented JSON.
func (r *LintReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as file:line:col lines — gating
// findings bare, advisories tagged "info:" — then a one-line summary.
func (r *LintReport) WriteText(w io.Writer) error {
	var suppressed, baselined, info int
	for _, d := range r.Diagnostics {
		switch {
		case d.Suppressed:
			suppressed++
		case d.Baselined:
			baselined++
		case d.Severity == "info":
			info++
			if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: info: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "mpg-lint: %d packages, %d outstanding, %d info, %d suppressed, %d baselined\n",
		r.Packages, r.Outstanding, info, suppressed, baselined)
	return err
}
