// Package report renders analysis results and experiment sweeps as
// aligned text tables or CSV, the output layer shared by the command
// line tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpgraph/internal/core"
)

// Table is a simple column-aligned text table.
type Table struct {
	// Title is printed above the table when non-empty.
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with Cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell formats one value compactly: floats get %.3g-style trimming,
// everything else uses fmt defaults.
func Cell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

func formatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', 6, 64)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored markdown table (the
// format EXPERIMENTS.md embeds).
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.rows {
		row(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoting cells that
// need it).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Analysis renders a core.Result: the per-run summary, per-rank rows
// (up to maxRanks, 0 = all), per-region rows when markers were used,
// and any warnings.
func Analysis(w io.Writer, res *core.Result, maxRanks int) error {
	fmt.Fprintf(w, "ranks=%d events=%d window-high-water=%d\n",
		res.NRanks, res.Events, res.WindowHighWater)
	fmt.Fprintf(w, "final delay: max=%.0f mean=%.0f makespan-delay=%.0f cycles\n",
		res.MaxFinalDelay, res.MeanFinalDelay, res.MakespanDelay)
	fmt.Fprintf(w, "subevent delay: %s\n", delayLine(res))

	tbl := NewTable("per-rank", "rank", "events", "final-delay", "own-noise",
		"remote-noise", "msg-delta", "absorbed", "propagated")
	n := len(res.Ranks)
	if maxRanks > 0 && maxRanks < n {
		n = maxRanks
	}
	for rank := 0; rank < n; rank++ {
		rr := res.Ranks[rank]
		tbl.AddRow(rank, rr.Events, rr.FinalDelay,
			rr.Attr.OwnNoise, rr.Attr.RemoteNoise, rr.Attr.MsgDelta,
			rr.Absorbed, rr.Propagated)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	if n < len(res.Ranks) {
		fmt.Fprintf(w, "... (%d more ranks)\n", len(res.Ranks)-n)
	}

	if keys := res.RegionList(); len(keys) > len(res.Ranks) {
		// More regions than the implicit one per rank: markers in use.
		reg := NewTable("per-region", "rank", "region", "events", "absorbed",
			"propagated", "delay-growth")
		for _, k := range keys {
			s := res.Regions[k]
			reg.AddRow(k.Rank, k.Region, s.Events, s.Absorbed, s.Propagated, s.DelayGrowth)
		}
		if err := reg.Render(w); err != nil {
			return err
		}
	}

	for _, warn := range res.Warnings {
		fmt.Fprintf(w, "WARNING: %s\n", warn)
	}
	if res.OrderViolations > 0 {
		fmt.Fprintf(w, "order violations clamped: %d\n", res.OrderViolations)
	}
	return nil
}

func delayLine(res *core.Result) string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f max=%.1f",
		res.DelayStats.N(), res.DelayStats.Mean(), res.DelayStats.StdDev(), res.DelayStats.Max())
}
