package report

import (
	"strings"
	"testing"

	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

func ringSet(t *testing.T, nranks int) *trace.Set {
	t.Helper()
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	run, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: nranks, Seed: 1}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestTimelineRenders(t *testing.T) {
	out, err := TimelineString(ringSet(t, 4), 60)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 rank rows + legend.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for rank := 1; rank <= 4; rank++ {
		if !strings.Contains(lines[rank], "|") {
			t.Fatalf("rank row %d malformed: %q", rank, lines[rank])
		}
	}
	// The ring has sends and receives.
	if !strings.Contains(out, "s") || !strings.Contains(out, "r") {
		t.Fatalf("missing send/recv glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Fatal("legend missing")
	}
}

func TestTimelineRowWidths(t *testing.T) {
	out, err := TimelineString(ringSet(t, 3), 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "|") {
			continue
		}
		start := strings.Index(line, "|")
		end := strings.LastIndex(line, "|")
		if end-start-1 != 40 {
			t.Fatalf("row width %d, want 40: %q", end-start-1, line)
		}
	}
}

func TestTimelineDefaultsWidth(t *testing.T) {
	if _, err := TimelineString(ringSet(t, 2), 0); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineEmptyTraceFails(t *testing.T) {
	set, err := trace.SetFromMem([]*trace.MemTrace{
		{Hdr: trace.Header{Rank: 0, NRanks: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TimelineString(set, 40); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestGlyphs(t *testing.T) {
	for k, want := range map[trace.Kind]byte{
		trace.KindSend:      's',
		trace.KindRecv:      'r',
		trace.KindIsend:     'i',
		trace.KindIrecv:     'i',
		trace.KindWait:      'w',
		trace.KindWaitall:   'w',
		trace.KindBarrier:   'C',
		trace.KindAllreduce: 'C',
		trace.KindInit:      'm',
		trace.KindMarker:    'm',
	} {
		if got := glyph(k); got != want {
			t.Errorf("glyph(%s) = %c, want %c", k, got, want)
		}
	}
}
