package report

import (
	"os"
	"strings"
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/workloads"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "name", "value", "note")
	tbl.AddRow("alpha", 1.5, "x")
	tbl.AddRow("b", 42, "longer note")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"## demo", "name", "alpha", "1.5", "42", "longer note", "-----"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q in:\n%s", frag, out)
		}
	}
	// Columns aligned: the header and first row start "value" at the
	// same offset.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %q", out)
	}
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[3], "1.5")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x,y", `he said "hi"`)
	tbl.AddRow(1, 2.25)
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n1,2.25\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestCellFormatting(t *testing.T) {
	for _, tc := range []struct {
		in   interface{}
		want string
	}{
		{1.0, "1"},
		{1.5, "1.5"},
		{int64(7), "7"},
		{"s", "s"},
		{float32(2), "2"},
		{true, "true"},
	} {
		if got := Cell(tc.in); got != tc.want {
			t.Errorf("Cell(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestAnalysisOutput(t *testing.T) {
	prog, err := workloads.BuildByName("tokenring", workloads.Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	run, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 4, Seed: 1}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(set, &core.Model{MsgLatency: dist.Constant{C: 100}}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Analysis(&sb, res, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"ranks=4", "final delay", "per-rank", "per-region"} {
		if !strings.Contains(out, frag) {
			t.Errorf("analysis output missing %q:\n%s", frag, out)
		}
	}
}

func TestAnalysisTruncatesRanks(t *testing.T) {
	res := &core.Result{NRanks: 10, Ranks: make([]core.RankResult, 10),
		Regions: map[core.RegionKey]*core.RegionStats{}}
	var sb strings.Builder
	if err := Analysis(&sb, res, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "7 more ranks") {
		t.Fatalf("truncation note missing:\n%s", sb.String())
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := t.TempDir() + "/history.jsonl"
	res := &core.Result{NRanks: 4, Events: 100, MaxFinalDelay: 42,
		Regions: map[core.RegionKey]*core.RegionStats{}}
	e1 := NewHistoryEntry("run1", "traces/", map[string]string{"latency": "constant:100"}, res)
	if err := AppendHistory(path, e1); err != nil {
		t.Fatal(err)
	}
	e2 := NewHistoryEntry("run2", "traces/", nil, res)
	if err := AppendHistory(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d", len(got))
	}
	if got[0].Label != "run1" || got[0].MaxDelay != 42 || got[0].Model["latency"] != "constant:100" {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[1].Label != "run2" {
		t.Fatalf("entry 1 = %+v", got[1])
	}
}

func TestLoadHistoryErrors(t *testing.T) {
	if _, err := LoadHistory(t.TempDir() + "/missing.jsonl"); err == nil {
		t.Fatal("missing history accepted")
	}
	bad := t.TempDir() + "/bad.jsonl"
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(bad); err == nil {
		t.Fatal("corrupt history accepted")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("demo", "a", "b")
	tbl.AddRow("x|y", 1)
	var sb strings.Builder
	if err := tbl.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"**demo**", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
}
