package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// validateSARIF checks a decoded SARIF log against the sarif-2.1.0
// schema requirements for every element the writer emits: required
// properties, property types, and value enumerations. It is the
// schema subset relevant to this producer, transcribed from
// https://json.schemastore.org/sarif-2.1.0.json (the schema cannot be
// fetched in a hermetic test, so its constraints are pinned here).
func validateSARIF(t *testing.T, doc map[string]any) {
	t.Helper()
	requireString := func(m map[string]any, key, ctx string) string {
		v, ok := m[key]
		if !ok {
			t.Fatalf("%s: required property %q missing", ctx, key)
		}
		s, ok := v.(string)
		if !ok {
			t.Fatalf("%s: property %q must be a string, got %T", ctx, key, v)
		}
		return s
	}
	if got := requireString(doc, "version", "log"); got != "2.1.0" {
		t.Fatalf("log.version must be the enum value \"2.1.0\", got %q", got)
	}
	runsAny, ok := doc["runs"].([]any)
	if !ok || len(runsAny) == 0 {
		t.Fatalf("log.runs must be a non-empty array, got %v", doc["runs"])
	}
	for ri, runAny := range runsAny {
		ctx := fmt.Sprintf("runs[%d]", ri)
		run, ok := runAny.(map[string]any)
		if !ok {
			t.Fatalf("%s: must be an object", ctx)
		}
		tool, ok := run["tool"].(map[string]any)
		if !ok {
			t.Fatalf("%s: required property tool missing or not an object", ctx)
		}
		driver, ok := tool["driver"].(map[string]any)
		if !ok {
			t.Fatalf("%s.tool: required property driver missing or not an object", ctx)
		}
		requireString(driver, "name", ctx+".tool.driver")
		var ruleIDs []string
		if rulesAny, ok := driver["rules"].([]any); ok {
			for i, rAny := range rulesAny {
				r, ok := rAny.(map[string]any)
				if !ok {
					t.Fatalf("%s.tool.driver.rules[%d]: must be an object", ctx, i)
				}
				ruleIDs = append(ruleIDs, requireString(r, "id", fmt.Sprintf("%s.tool.driver.rules[%d]", ctx, i)))
				if sd, ok := r["shortDescription"]; ok {
					sdm, ok := sd.(map[string]any)
					if !ok {
						t.Fatalf("rules[%d].shortDescription must be an object", i)
					}
					requireString(sdm, "text", fmt.Sprintf("rules[%d].shortDescription", i))
				}
			}
		}
		resultsAny, ok := run["results"].([]any)
		if !ok {
			t.Fatalf("%s: results must be an array (the writer always emits it)", ctx)
		}
		levels := map[string]bool{"none": true, "note": true, "warning": true, "error": true}
		kinds := map[string]bool{"inSource": true, "external": true}
		for i, resAny := range resultsAny {
			rctx := fmt.Sprintf("%s.results[%d]", ctx, i)
			res, ok := resAny.(map[string]any)
			if !ok {
				t.Fatalf("%s: must be an object", rctx)
			}
			msg, ok := res["message"].(map[string]any)
			if !ok {
				t.Fatalf("%s: required property message missing or not an object", rctx)
			}
			requireString(msg, "text", rctx+".message")
			if lv, ok := res["level"]; ok {
				if !levels[lv.(string)] {
					t.Errorf("%s.level = %q, not in the schema enum", rctx, lv)
				}
			}
			if ruleID, ok := res["ruleId"]; ok {
				idxAny, hasIdx := res["ruleIndex"]
				if hasIdx {
					idx := int(idxAny.(float64))
					if idx < 0 || idx >= len(ruleIDs) {
						t.Fatalf("%s.ruleIndex = %d out of range of %d rules", rctx, idx, len(ruleIDs))
					}
					if ruleIDs[idx] != ruleID.(string) {
						t.Errorf("%s: ruleIndex %d names %q but ruleId is %q", rctx, idx, ruleIDs[idx], ruleID)
					}
				}
			}
			if locsAny, ok := res["locations"].([]any); ok {
				for li, locAny := range locsAny {
					lctx := fmt.Sprintf("%s.locations[%d]", rctx, li)
					loc := locAny.(map[string]any)
					phys, ok := loc["physicalLocation"].(map[string]any)
					if !ok {
						continue // physicalLocation is optional in the schema
					}
					if art, ok := phys["artifactLocation"].(map[string]any); ok {
						requireString(art, "uri", lctx+".physicalLocation.artifactLocation")
					}
					if reg, ok := phys["region"].(map[string]any); ok {
						if sl, ok := reg["startLine"].(float64); ok && sl < 1 {
							t.Errorf("%s: region.startLine = %v, schema minimum is 1", lctx, sl)
						}
					}
				}
			}
			if suppsAny, ok := res["suppressions"].([]any); ok {
				for si, sAny := range suppsAny {
					s := sAny.(map[string]any)
					kind := requireString(s, "kind", fmt.Sprintf("%s.suppressions[%d]", rctx, si))
					if !kinds[kind] {
						t.Errorf("%s.suppressions[%d].kind = %q, not in the schema enum", rctx, si, kind)
					}
				}
			}
		}
	}
}

func TestSARIFConformsToSchema(t *testing.T) {
	rep := sampleLintReport()
	rep.AnalyzerDocs = []string{"float comparison discipline", "determinism discipline"}
	var b strings.Builder
	if err := rep.WriteSARIF(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("SARIF output does not parse as JSON: %v", err)
	}
	if doc["$schema"] != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %v", doc["$schema"])
	}
	validateSARIF(t, doc)
}

// TestSARIFMapping pins the producer's mapping decisions: severity to
// level, suppression provenance to suppression kind, diagnostics from
// outside the analyzer set registering rules on the fly.
func TestSARIFMapping(t *testing.T) {
	rep := &LintReport{
		Packages:  1,
		Analyzers: []string{"detreach"},
		Diagnostics: []LintDiagnostic{
			{Analyzer: "detreach", File: "a.go", Line: 1, Col: 1, Message: "gating"},
			{Analyzer: "detreach", File: "a.go", Line: 2, Col: 1, Message: "advisory", Severity: "info"},
			{Analyzer: "detreach", File: "a.go", Line: 3, Col: 1, Message: "vouched", Suppressed: true, Reason: "documented boundary"},
			{Analyzer: "detreach", File: "a.go", Line: 4, Col: 1, Message: "debt", Baselined: true},
			{Analyzer: "directive", File: "a.go", Line: 5, Col: 1, Message: "bad directive"},
		},
		Outstanding: 2,
	}
	var b strings.Builder
	if err := rep.WriteSARIF(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct{ ID string }
				}
			}
			Results []struct {
				RuleID       string
				Level        string
				Suppressions []struct{ Kind, Justification string }
			}
		}
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	run := doc.Runs[0]
	if len(run.Results) != 5 {
		t.Fatalf("want all 5 diagnostics as results, got %d", len(run.Results))
	}
	if run.Results[0].Level != "error" || len(run.Results[0].Suppressions) != 0 {
		t.Errorf("gating finding: %+v", run.Results[0])
	}
	if run.Results[1].Level != "note" {
		t.Errorf("info advisory must map to level note: %+v", run.Results[1])
	}
	if s := run.Results[2].Suppressions; len(s) != 1 || s[0].Kind != "inSource" || s[0].Justification != "documented boundary" {
		t.Errorf("in-source suppression mapping: %+v", run.Results[2])
	}
	if s := run.Results[3].Suppressions; len(s) != 1 || s[0].Kind != "external" {
		t.Errorf("baselined finding must carry an external suppression: %+v", run.Results[3])
	}
	if got := run.Results[4].RuleID; got != "directive" {
		t.Errorf("out-of-set analyzer: ruleId = %q", got)
	}
	if n := len(run.Tool.Driver.Rules); n != 2 {
		t.Errorf("want the directive rule registered on the fly (2 rules), got %d", n)
	}
}
