package report

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"mpgraph/internal/trace"
)

// Timeline renders a textual per-rank activity chart of a traced run —
// the quick-look view trace browsers like Vampir provide (paper §1.1).
// Each rank is one row of width buckets; a bucket shows the event kind
// that occupies most of it:
//
//	.  compute (gap between events)
//	s  blocking send        r  blocking receive
//	i  nonblocking post     w  wait / waitall
//	C  collective           m  marker / init / finalize
//
// Times are per-rank *relative* to the rank's first event: with
// unsynchronized clocks (the paper's §4.1 setting), columns are only
// loosely comparable across ranks; the chart is a shape overview, not
// a precise alignment. The set's readers are drained.
func Timeline(w io.Writer, set *trace.Set, width int) error {
	if width < 10 {
		width = 80
	}
	type rankSpan struct {
		recs  []trace.Record
		base  int64
		total int64
	}
	spans := make([]rankSpan, set.NRanks())
	var maxTotal int64
	for rank := 0; rank < set.NRanks(); rank++ {
		var recs []trace.Record
		for {
			rec, err := set.Rank(rank).Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			return fmt.Errorf("report: rank %d trace is empty", rank)
		}
		base := recs[0].Begin
		total := recs[len(recs)-1].End - base
		spans[rank] = rankSpan{recs: recs, base: base, total: total}
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}

	fmt.Fprintf(w, "timeline: %d ranks, %d cycles/column (per-rank relative time)\n",
		set.NRanks(), (maxTotal+int64(width)-1)/int64(width))
	for rank, sp := range spans {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		// Fill compute regions first, then overwrite with events.
		end := int(int64(width) * sp.total / maxTotal)
		for i := 0; i < end && i < width; i++ {
			row[i] = '.'
		}
		for _, rec := range sp.recs {
			lo := int(int64(width) * (rec.Begin - sp.base) / maxTotal)
			hi := int(int64(width) * (rec.End - sp.base) / maxTotal)
			if hi >= width {
				hi = width - 1
			}
			ch := glyph(rec.Kind)
			for i := lo; i <= hi && i < width; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(w, "%4d |%s|\n", rank, string(row))
	}
	fmt.Fprintln(w, "legend: . compute  s send  r recv  i isend/irecv  w wait  C collective  m admin")
	return nil
}

func glyph(k trace.Kind) byte {
	switch {
	case k == trace.KindSend:
		return 's'
	case k == trace.KindRecv:
		return 'r'
	case k == trace.KindIsend || k == trace.KindIrecv:
		return 'i'
	case k.IsCompletion():
		return 'w'
	case k.IsCollective():
		return 'C'
	default:
		return 'm'
	}
}

// TimelineString is Timeline into a string.
func TimelineString(set *trace.Set, width int) (string, error) {
	var sb strings.Builder
	if err := Timeline(&sb, set, width); err != nil {
		return "", err
	}
	return sb.String(), nil
}
