package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleLintReport() *LintReport {
	return &LintReport{
		Packages:  3,
		Analyzers: []string{"floateq", "nondet"},
		Diagnostics: []LintDiagnostic{
			{Analyzer: "floateq", File: "internal/core/x.go", Line: 10, Col: 4, Func: "cmp", Message: "exact comparison"},
			{Analyzer: "nondet", File: "internal/core/y.go", Line: 7, Col: 2, Message: "map iteration",
				Suppressed: true, Reason: "order-insensitive"},
			{Analyzer: "nondet", File: "internal/core/z.go", Line: 3, Col: 1, Message: "time.Now", Baselined: true},
			{Analyzer: "floateq", File: "internal/core/w.go", Line: 5, Col: 2, Message: "consider an epsilon", Severity: "info"},
		},
		Outstanding: 1,
	}
}

func TestLintReportText(t *testing.T) {
	var b strings.Builder
	if err := sampleLintReport().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "internal/core/x.go:10:4: floateq: exact comparison") {
		t.Errorf("gating finding missing from text output:\n%s", out)
	}
	if strings.Contains(out, "map iteration") || strings.Contains(out, "time.Now") {
		t.Errorf("suppressed/baselined findings must not be listed as gating:\n%s", out)
	}
	if !strings.Contains(out, "internal/core/w.go:5:2: floateq: info: consider an epsilon") {
		t.Errorf("info advisory must be listed with the info tag:\n%s", out)
	}
	if !strings.Contains(out, "3 packages, 1 outstanding, 1 info, 1 suppressed, 1 baselined") {
		t.Errorf("summary line wrong:\n%s", out)
	}
}

func TestLintReportJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := sampleLintReport().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got LintReport
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if got.Outstanding != 1 || len(got.Diagnostics) != 4 || got.Packages != 3 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !got.Diagnostics[1].Suppressed || got.Diagnostics[1].Reason == "" {
		t.Errorf("suppression metadata lost: %+v", got.Diagnostics[1])
	}
}
