package core

import (
	"fmt"
	"sort"
	"strings"

	"mpgraph/internal/trace"
)

// Graph is a materialized message-passing graph, built by running the
// analyzer with a capturing sink. It exists for visualization (the
// paper's Fig. 5 Graphviz rendering) and for structural tests; the
// analyzer itself never materializes the graph.
type Graph struct {
	nodes map[NodeRef]GraphNode
	edges []GraphEdge
}

// GraphNode is one subevent.
type GraphNode struct {
	Ref NodeRef
	// Time is the traced local-clock time of the subevent.
	Time int64
	// Kind is the owning record's kind.
	Kind trace.Kind
}

// GraphEdge is one edge with its traced weight and label.
type GraphEdge struct {
	From, To NodeRef
	Kind     EdgeKind
	Weight   int64
	Label    string
}

// AddNode implements GraphSink.
func (g *Graph) AddNode(ref NodeRef, localTime int64, rec trace.Record) {
	if g.nodes == nil {
		g.nodes = map[NodeRef]GraphNode{}
	}
	g.nodes[ref] = GraphNode{Ref: ref, Time: localTime, Kind: rec.Kind}
}

// AddEdge implements GraphSink.
func (g *Graph) AddEdge(from, to NodeRef, kind EdgeKind, weight int64, label string) {
	g.edges = append(g.edges, GraphEdge{From: from, To: to, Kind: kind, Weight: weight, Label: label})
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node looks up a subevent node.
func (g *Graph) Node(ref NodeRef) (GraphNode, bool) {
	n, ok := g.nodes[ref]
	return n, ok
}

// Edges returns the edges in insertion order. The returned slice is
// owned by the graph.
func (g *Graph) Edges() []GraphEdge { return g.edges }

// EdgesByKind counts edges of each kind.
func (g *Graph) EdgesByKind() map[EdgeKind]int {
	out := map[EdgeKind]int{}
	for _, e := range g.edges {
		out[e.Kind]++
	}
	return out
}

// BuildGraph constructs the materialized message-passing graph of a
// trace set without applying any perturbation.
func BuildGraph(set *trace.Set) (*Graph, error) {
	g := &Graph{}
	if _, err := Analyze(set, &Model{}, Options{Graph: g}); err != nil {
		return nil, err
	}
	return g, nil
}

// DOT renders the graph in Graphviz format (the paper's Fig. 5):
// one cluster per rank with its straight-line chain of subevents,
// message edges dashed, collective edges dotted.
func (g *Graph) DOT(title string) string {
	return g.dot(title, nil)
}

// DOTWithPath renders the graph with a critical path overlaid: path
// nodes are filled, edges between consecutive path nodes are bold
// crimson, and path hops with no materialized edge (collective-hub
// shortcuts) gain a synthetic "crit" edge.
func (g *Graph) DOTWithPath(title string, path []PathStep) string {
	return g.dot(title, path)
}

func (g *Graph) dot(title string, path []PathStep) string {
	onPath := map[NodeRef]bool{}
	hop := map[[2]NodeRef]bool{}
	for i, s := range path {
		onPath[s.Node] = true
		if i > 0 {
			hop[[2]NodeRef{path[i-1].Node, s.Node}] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph mpg {\n")
	fmt.Fprintf(&b, "  label=%q;\n", title)
	fmt.Fprintf(&b, "  rankdir=LR;\n  node [shape=box, fontsize=9];\n")

	// Group nodes by rank, ordered.
	byRank := map[int][]GraphNode{}
	//mpg:lint-ignore nondet per-rank buckets are fully re-sorted by (event, end) before emission
	for _, n := range g.nodes {
		byRank[n.Ref.Rank] = append(byRank[n.Ref.Rank], n)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		ns := byRank[r]
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Ref.Event != ns[j].Ref.Event {
				return ns[i].Ref.Event < ns[j].Ref.Event
			}
			return !ns[i].Ref.End && ns[j].Ref.End
		})
		fmt.Fprintf(&b, "  subgraph cluster_rank%d {\n    label=\"rank %d\";\n", r, r)
		for _, n := range ns {
			hi := ""
			if onPath[n.Ref] {
				hi = ", style=filled, fillcolor=lightpink"
			}
			fmt.Fprintf(&b, "    %q [label=\"%s %s\\n@%d\"%s];\n",
				n.Ref.String(), n.Kind, side(n.Ref), n.Time, hi)
		}
		fmt.Fprintf(&b, "  }\n")
	}

	edges := append([]GraphEdge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		a, c := edges[i], edges[j]
		if a.From != c.From {
			return lessRef(a.From, c.From)
		}
		if a.To != c.To {
			return lessRef(a.To, c.To)
		}
		return a.Label < c.Label
	})
	for _, e := range edges {
		style := "solid"
		extra := ""
		switch e.Kind {
		case EdgeMessage:
			style = "dashed"
			extra = ", color=red"
		case EdgeCollective:
			style = "dotted"
			extra = ", color=blue"
		}
		key := [2]NodeRef{e.From, e.To}
		if hop[key] {
			extra = ", color=crimson, penwidth=2.5"
			delete(hop, key)
		}
		label := e.Label
		if e.Kind == EdgeLocal {
			label = fmt.Sprintf("%s w=%d", e.Label, e.Weight)
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q, style=%s%s];\n",
			e.From.String(), e.To.String(), label, style, extra)
	}
	// Path hops with no materialized edge (e.g. the winner-start →
	// participant-end shortcut through a collective hub).
	rest := make([][2]NodeRef, 0, len(hop))
	for k := range hop {
		rest = append(rest, k)
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i][0] != rest[j][0] {
			return lessRef(rest[i][0], rest[j][0])
		}
		return lessRef(rest[i][1], rest[j][1])
	})
	for _, k := range rest {
		fmt.Fprintf(&b, "  %q -> %q [label=\"crit\", style=bold, color=crimson, penwidth=2.5];\n",
			k[0].String(), k[1].String())
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

func side(r NodeRef) string {
	if r.End {
		return "end"
	}
	return "start"
}

func lessRef(a, b NodeRef) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.Event != b.Event {
		return a.Event < b.Event
	}
	return !a.End && b.End
}
