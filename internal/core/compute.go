package core

import (
	"mpgraph/internal/trace"
)

// Shared propagation kernels.
//
// The streaming analyzer (Analyze) and the compiled replayer
// (ReplayCompiled) must produce byte-identical results: same delays,
// same attribution, same critical path. Floating-point arithmetic is
// deterministic but not associative, so "the same math" is not
// enough — both engines must execute the same operation sequences in
// the same order. Every delay/attribution computation both engines
// perform therefore lives here as pure functions; the engines differ
// only in how they discover the graph structure (streamed matching vs
// a precompiled instruction tape).

// xfer is the value half of one point-to-point transfer: everything
// that depends on the perturbation model's samples. The structural
// half (who talks to whom, payload size, FIFO position) lives in
// msgState during streaming and in compiledMsg after compilation.
type xfer struct {
	sendStartD float64 // D at the sender's post (start subevent)
	recvPostD  float64 // D at the receiver's post
	sendAttr   Attribution
	recvAttr   Attribution

	// Deltas sampled at match time.
	dLat1, dPerByte, dLat2, dOS2 float64
	cData, cRecv                 float64
	// cRecvFromData records which side's path dominated the transfer
	// completion (true: the sender's data path; false: the receiver's
	// post), which decides attribution perspective.
	cRecvFromData bool
}

// resolveCompletion computes the shared path contributions (paper
// Fig. 2 / Eq. 1 structure) once both posts and all four deltas are
// known:
//
//	cData = D(send start) + δ_λ1 + δ_t(d)   — the data path
//	cRecv = max(cData, D(recv post))        — transfer completion
//
//mpg:hotpath
func (x *xfer) resolveCompletion() {
	x.cData = x.sendStartD + x.dLat1 + x.dPerByte
	x.cRecv = x.cData
	x.cRecvFromData = true
	if x.recvPostD > x.cRecv {
		x.cRecv = x.recvPostD
		x.cRecvFromData = false
	}
}

// recvPerspective is the attribution of the transfer completion as
// seen by the receiving rank: a data-path win is remote, an own-post
// win is local.
//
//mpg:hotpath
func (x *xfer) recvPerspective() Attribution {
	if x.cRecvFromData {
		return x.sendAttr.asRemote().addMsg(x.dLat1 + x.dPerByte)
	}
	return x.recvAttr
}

// sendPerspective is the attribution of the transfer completion as
// seen by the sending rank: its own data path stays local, a
// receiver-post win is remote.
//
//mpg:hotpath
func (x *xfer) sendPerspective() Attribution {
	if x.cRecvFromData {
		return x.sendAttr.addMsg(x.dLat1 + x.dPerByte)
	}
	return x.recvAttr.asRemote()
}

// sendCompletionKernel applies Eq. 1's sender rule: the local path
// carries δ_os1, the remote path is the transfer completion plus the
// acknowledgment latency δ_λ2 (and, anchored, the receiver-side noise
// that Eq. 1's third term includes). Both candidate attributions are
// returned; the caller merges and picks.
//
//mpg:hotpath
func sendCompletionKernel(mode PropagationMode, startD float64, startAttr Attribution, dOS1 float64, w int64, x *xfer) (local, remote float64, localAttr, remoteAttr Attribution) {
	if mode == PropagationAnchored {
		local = startD
		localAttr = startAttr
		if v := startD + dOS1 - float64(w); v > local {
			local = v
			localAttr = startAttr.addOwn(dOS1 - float64(w))
		}
		remote = x.cRecv + x.dOS2 + x.dLat2 - float64(w)
		remoteAttr = x.sendPerspective()
		remoteAttr.RemoteNoise += x.dOS2
		remoteAttr.MsgDelta += x.dLat2 - float64(w)
		return local, remote, localAttr, remoteAttr
	}
	local = startD + dOS1
	remote = x.cRecv + x.dLat2
	localAttr = startAttr.addOwn(dOS1)
	remoteAttr = x.sendPerspective().addMsg(x.dLat2)
	return local, remote, localAttr, remoteAttr
}

// recvCompletionKernel applies Eq. 1's receiver rule: the local path
// carries δ_os2, the remote path is the data arrival.
//
//mpg:hotpath
func recvCompletionKernel(mode PropagationMode, startD float64, startAttr Attribution, w int64, x *xfer) (local, remote float64, localAttr, remoteAttr Attribution) {
	if mode == PropagationAnchored {
		local = startD
		localAttr = startAttr
		if v := startD + x.dOS2 + x.dLat1 + x.dPerByte - float64(w); v > local {
			local = v
			localAttr = startAttr.addOwn(x.dOS2).addMsg(x.dLat1 + x.dPerByte - float64(w))
		}
		remote = x.cData + x.dOS2 - float64(w)
		remoteAttr = x.sendAttr.asRemote().addMsg(x.dLat1 + x.dPerByte - float64(w))
		remoteAttr.OwnNoise += x.dOS2
		return local, remote, localAttr, remoteAttr
	}
	local = startD + x.dOS2
	remote = x.cRecv
	localAttr = startAttr.addOwn(x.dOS2)
	remoteAttr = x.recvPerspective()
	return local, remote, localAttr, remoteAttr
}

// combineLocalKernel folds a local-edge delta into the running delay.
// Additive: D(end) = D(start) + δ. Anchored: the event's traced
// duration absorbs the delta: D(end) = max(D(start), D(start)+δ−w).
//
//mpg:hotpath
func combineLocalKernel(mode PropagationMode, startD float64, startAttr Attribution, delta float64, w int64) (float64, Attribution) {
	if mode == PropagationAnchored {
		v := startD + delta - float64(w)
		if v < startD {
			return startD, startAttr
		}
		return v, startAttr.addOwn(delta - float64(w))
	}
	return startD + delta, startAttr.addOwn(delta)
}

// mergeStats folds one remote contribution into the local one,
// recording absorbed/propagated statistics for the rank and its
// current region.
//
//mpg:hotpath
func mergeStats(rr *RankResult, reg *RegionStats, local, remote float64) float64 {
	if remote > local {
		rr.Propagated++
		reg.Propagated++
		rr.DelayInduced += remote - local
		return remote
	}
	rr.Absorbed++
	reg.Absorbed++
	rr.SlackAbsorbed += local - remote
	return local
}

// collIn is one collective participant's inbound state as the
// resolution kernels see it, in ascending world-rank order.
type collIn struct {
	rank      int
	startD    float64
	startAttr Attribution
}

// resolveApproxKernel is the paper's Fig. 4 model: every participant's
// inbound delay plus l_δ (ceil(log2 p) samples of noise+latency for
// the symmetric collectives; a single sample for the rooted ones, the
// paper's Reduce simplification) feeds a max that is propagated back
// to all participants. outPred[i*stride] is the index (into in) of the
// participant whose start subevent anchors the winning path. The
// returned value is the propagated max.
//
// stride spaces the output writes: participant i lands at index
// i*stride of each out array. The streaming engine and the single
// replayer pass 1 (dense outputs); the batched replayer passes its
// lane count K, interleaving the K lanes of one participant so each
// lane writes its own column of the shared lane-strided buffers.
// stride only relocates writes — the FP operation sequence is
// identical for every stride, which is what keeps batch lanes
// byte-identical to standalone replays.
//
//mpg:hotpath
func resolveApproxKernel(smp *sampler, kind trace.Kind, bytes int64, in []collIn, outD []float64, outAttr []Attribution, outPred []int32, stride int) float64 {
	p := len(in)
	rounds := ceilLog2(p)
	if kind.IsRooted() {
		rounds = 1
	}
	lMax := 0.0
	winIdx := -1
	var winnerNoise, winnerMsg float64
	for i := range in {
		noise, msg := 0.0, 0.0
		for j := 0; j < rounds; j++ {
			noise += smp.osNoise(in[i].rank)
			msg += smp.latency()
			if smp.model.CollectiveBytes {
				msg += smp.perByte(roundBytes(kind, bytes, j, p))
			}
		}
		if v := in[i].startD + noise + msg; v > lMax || winIdx < 0 {
			lMax = v
			winIdx = i
			winnerNoise, winnerMsg = noise, msg
		}
	}
	winAttr := in[winIdx].startAttr.addOwn(winnerNoise).addMsg(winnerMsg)
	for i := range in {
		outD[i*stride] = lMax
		outPred[i*stride] = int32(winIdx)
		if i == winIdx {
			outAttr[i*stride] = winAttr
		} else {
			outAttr[i*stride] = winAttr.asRemote()
		}
	}
	return lMax
}

// collScratch holds the explicit-pattern working arrays so both
// engines can reuse them across collectives (and, in the compiled
// replayer, across replays).
type collScratch struct {
	d       []float64
	a       []Attribution
	org     []int
	next    []float64
	nextA   []Attribution
	nextOrg []int
}

func (s *collScratch) ensure(p int) {
	if cap(s.d) < p {
		s.d = make([]float64, p)
		s.a = make([]Attribution, p)
		s.org = make([]int, p)
		s.next = make([]float64, p)
		s.nextA = make([]Attribution, p)
		s.nextOrg = make([]int, p)
	}
}

// resolveExplicitKernel builds the collective's actual communication
// pattern in delay space: dissemination rounds for the symmetric
// collectives, binomial trees for Bcast/Reduce, linear exchanges for
// Gather/Scatter, the prefix chain for Scan. outPred[i*stride] is the
// index (into in) of the participant whose start subevent anchors
// member i's winning adopt chain. The returned value is the largest
// outbound delay (for graph labels). stride spaces the output writes
// exactly as in resolveApproxKernel: 1 for dense outputs, the lane
// count K for the batched replayer's lane-strided buffers.
//
//mpg:hotpath
func resolveExplicitKernel(smp *sampler, kind trace.Kind, bytes int64, root int32, in []collIn, sc *collScratch, outD []float64, outAttr []Attribution, outPred []int32, stride int) float64 {
	p := len(in)
	//mpg:lint-ignore hotpathprop lazy scratch growth: the collective working arrays grow monotonically with participant count and are reused across events
	sc.ensure(p)
	D := sc.d[:p]
	A := sc.a[:p]
	// org tracks, per member, which participant's start subevent
	// anchors the member's current winning path (for critical-path
	// extraction); adoption chains inherit the source's origin.
	org := sc.org[:p]
	rootIdx := 0
	for i := range in {
		n := smp.osNoise(in[i].rank)
		D[i] = in[i].startD + n
		A[i] = in[i].startAttr.addOwn(n)
		org[i] = i
		if kind.IsRooted() && int32(in[i].rank) == root {
			rootIdx = i
		}
	}
	// adopt folds a cross-member contribution into dst, reclassifying
	// the source's noise as remote.
	//mpg:lint-ignore hotpathalloc non-escaping closure, stack-allocated; pinned at 0 allocs by TestResolveExplicitKernelAllocs
	adopt := func(dst, src int, msg float64) {
		if v := D[src] + msg; v > D[dst] {
			D[dst] = v
			A[dst] = A[src].asRemote().addMsg(msg)
			org[dst] = org[src]
		}
	}
	//mpg:lint-ignore hotpathalloc non-escaping closure, stack-allocated; pinned at 0 allocs by TestResolveExplicitKernelAllocs
	bytesOf := func(round int) int64 { return roundBytes(kind, bytes, round, p) }
	//mpg:lint-ignore hotpathalloc non-escaping closure, stack-allocated; pinned at 0 allocs by TestResolveExplicitKernelAllocs
	msgDelta := func(round int) float64 {
		d := smp.latency()
		if smp.model.CollectiveBytes {
			d += smp.perByte(bytesOf(round))
		}
		return d
	}
	switch kind {
	case trace.KindBcast:
		for j := 0; (1 << uint(j)) < p; j++ {
			step := 1 << uint(j)
			for rel := 0; rel < step && rel+step < p; rel++ {
				src := (rel + rootIdx) % p
				dst := (rel + step + rootIdx) % p
				adopt(dst, src, msgDelta(j))
			}
		}
	case trace.KindReduce, trace.KindGather:
		// Children push toward the root; non-roots keep their own
		// delay (they complete after sending).
		if kind == trace.KindGather {
			for i := range D {
				if i == rootIdx {
					continue
				}
				adopt(rootIdx, i, msgDelta(0))
			}
		} else {
			for j := 0; (1 << uint(j)) < p; j++ {
				step := 1 << uint(j)
				for rel := step; rel < p; rel += step << 1 {
					src := (rel + rootIdx) % p
					dst := (rel - step + rootIdx) % p
					adopt(dst, src, msgDelta(j))
				}
			}
		}
	case trace.KindScatter:
		for i := range D {
			if i == rootIdx {
				continue
			}
			adopt(i, rootIdx, msgDelta(0))
		}
	case trace.KindScan:
		// Prefix chain: member i adopts member i−1's delay — later
		// ranks inherit earlier ranks' perturbations, never the
		// reverse.
		for i := 1; i < p; i++ {
			adopt(i, i-1, msgDelta(0))
		}
	default: // dissemination for Barrier/Allreduce/Allgather/Alltoall/CommSplit
		rounds := ceilLog2(p)
		next := sc.next[:p]
		nextA := sc.nextA[:p]
		nextOrg := sc.nextOrg[:p]
		for j := 0; j < rounds; j++ {
			step := (1 << uint(j)) % p
			for i := 0; i < p; i++ {
				src := (i - step + p) % p
				msg := msgDelta(j)
				if v := D[src] + msg; v > D[i] {
					next[i] = v
					nextA[i] = A[src].asRemote().addMsg(msg)
					nextOrg[i] = org[src]
				} else {
					next[i] = D[i]
					nextA[i] = A[i]
					nextOrg[i] = org[i]
				}
			}
			copy(D, next)
			copy(A, nextA)
			copy(org, nextOrg)
		}
	}
	lMax := 0.0
	for i := range in {
		outD[i*stride] = D[i]
		outAttr[i*stride] = A[i]
		outPred[i*stride] = int32(org[i])
		if D[i] > lMax {
			lMax = D[i]
		}
	}
	return lMax
}

// orderViolationWarning is the §4.3 clamp warning, shared by both
// engines so the warning strings compare equal.
func orderViolationWarning(res *Result) {
	if res.OrderViolations > 0 {
		res.warnf("%d negative perturbations were clamped to preserve event order (§4.3)", res.OrderViolations)
	}
}
