package core

import (
	"fmt"
	"sort"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// NodeRef identifies a subevent node: the start or end subevent of the
// Event-th record on Rank.
type NodeRef struct {
	// Rank is the world rank owning the node.
	Rank int
	// Event is the zero-based record index within the rank's trace.
	Event int64
	// End selects the end subevent (false = start subevent).
	End bool
}

// String renders the reference as r<rank>.e<event>.<s|e>.
func (n NodeRef) String() string {
	side := "s"
	if n.End {
		side = "e"
	}
	return fmt.Sprintf("r%d.e%d.%s", n.Rank, n.Event, side)
}

// EdgeKind classifies graph edges per the paper's taxonomy.
type EdgeKind uint8

const (
	// EdgeLocal connects subevents on the same rank (compute gaps and
	// event-internal start→end edges).
	EdgeLocal EdgeKind = iota
	// EdgeMessage connects matched subevents on different ranks
	// (data and acknowledgment paths of point-to-point operations).
	EdgeMessage
	// EdgeCollective connects collective participants through the
	// compact hub of the paper's Fig. 4.
	EdgeCollective
)

// String returns the edge kind name.
func (k EdgeKind) String() string {
	switch k {
	case EdgeLocal:
		return "local"
	case EdgeMessage:
		return "message"
	case EdgeCollective:
		return "collective"
	}
	return fmt.Sprintf("edge(%d)", uint8(k))
}

// GraphSink receives the graph as the builder discovers it. AddNode is
// called exactly once per subevent (in per-rank record order); AddEdge
// may be called before the destination node's AddNode when a message
// edge lands on a not-yet-emitted subevent of another rank.
type GraphSink interface {
	// AddNode introduces a subevent node with its traced local time
	// and the record it belongs to.
	AddNode(ref NodeRef, localTime int64, rec trace.Record)
	// AddEdge introduces an edge with its traced weight (local edges)
	// or zero (message edges) and a human-readable label.
	AddEdge(from, to NodeRef, kind EdgeKind, weight int64, label string)
}

// RankResult summarizes one rank's outcome.
type RankResult struct {
	// Events is the number of trace records processed.
	Events int64
	// OrigEnd is the traced local time of the rank's final subevent.
	OrigEnd int64
	// FinalDelay is D at the rank's final subevent: how much later (in
	// cycles) the rank finishes under the modeled perturbations.
	FinalDelay float64
	// InjectedLocal is the total delta injected on the rank's local
	// edges (its own OS noise).
	InjectedLocal float64
	// Absorbed counts merge nodes where the rank's own path dominated
	// (the remote perturbation was absorbed by existing slack).
	Absorbed int64
	// Propagated counts merge nodes where a remote path dominated (the
	// perturbation propagated into this rank).
	Propagated int64
	// SlackAbsorbed accumulates, over absorbed merges, how far the
	// remote contribution fell below the local one.
	SlackAbsorbed float64
	// DelayInduced accumulates, over propagated merges, how much extra
	// delay the remote path pushed onto this rank.
	DelayInduced float64
	// Attr decomposes FinalDelay by cause: the rank's own noise, other
	// ranks' noise, and message-edge deltas. The components sum to
	// FinalDelay in additive mode.
	Attr Attribution
}

// RegionKey identifies a marker-delimited region on one rank. Region
// −1 covers events before the first marker.
type RegionKey struct {
	Rank   int
	Region int32
}

// RegionStats aggregates perturbation behaviour within one region,
// supporting the paper's Section 4.2 goal of locating "regions within
// the graph where perturbations are absorbed or fully propagated".
type RegionStats struct {
	Events     int64
	Absorbed   int64
	Propagated int64
	// DelayGrowth is D at the region's last event minus D at its
	// first: how much delay the region accumulated.
	DelayGrowth float64
	firstSeen   bool
	firstDelay  float64
}

// Result is the outcome of one analysis pass.
type Result struct {
	// NRanks is the world size.
	NRanks int
	// Events is the total number of records processed.
	Events int64
	// Ranks holds per-rank summaries, indexed by rank.
	Ranks []RankResult
	// Regions holds per-region summaries for marker-annotated traces.
	Regions map[RegionKey]*RegionStats
	// MaxFinalDelay and MeanFinalDelay summarize Ranks[i].FinalDelay.
	MaxFinalDelay, MeanFinalDelay float64
	// MakespanDelay is the delay of the rank that defines the
	// perturbed makespan (max over ranks of OrigEnd+FinalDelay, minus
	// max over ranks of OrigEnd). Note: with unsynchronized clocks
	// this mixes per-rank clocks exactly as the paper's per-processor
	// reading does; it is exact when clocks are aligned.
	MakespanDelay float64
	// DelayStats aggregates the delay observed at every subevent.
	DelayStats dist.Welford
	// WindowHighWater is the maximum number of simultaneously pending
	// unmatched operations observed (the streaming window).
	WindowHighWater int
	// OrderViolations counts perturbations (possible only with
	// Model.AllowNegative) that would have made an event begin before
	// its predecessor ended or end before it began; each was clamped
	// to preserve the traced execution order (paper Section 4.3).
	OrderViolations int64
	// Warnings lists non-fatal analysis caveats, e.g. the paper's
	// Section 4.3 warning for ranks that use only asynchronous sends
	// with no completion check.
	Warnings []string
	// CritPath is the makespan blame decomposition; nil unless the
	// analysis ran with Options.RecordCritPath.
	CritPath *CriticalPath
}

// warnf appends a formatted warning.
func (r *Result) warnf(format string, args ...interface{}) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// finalize computes the aggregate fields from per-rank data.
//
//mpg:hotpath
func (r *Result) finalize() {
	var origMax, newMax float64
	var sum float64
	for i := range r.Ranks {
		d := r.Ranks[i].FinalDelay
		sum += d
		if d > r.MaxFinalDelay {
			r.MaxFinalDelay = d
		}
		oe := float64(r.Ranks[i].OrigEnd)
		if oe > origMax {
			origMax = oe
		}
		if oe+d > newMax {
			newMax = oe + d
		}
	}
	if len(r.Ranks) > 0 {
		r.MeanFinalDelay = sum / float64(len(r.Ranks))
	}
	r.MakespanDelay = newMax - origMax
	sort.Strings(r.Warnings)
}

// PerturbedMakespan returns the perturbed schedule's makespan on the
// traced clock: max over ranks of (traced final end + final delay).
func (r *Result) PerturbedMakespan() float64 {
	var m float64
	for i := range r.Ranks {
		if v := float64(r.Ranks[i].OrigEnd) + r.Ranks[i].FinalDelay; v > m {
			m = v
		}
	}
	return m
}

// RegionList returns the region keys in deterministic order.
func (r *Result) RegionList() []RegionKey {
	keys := make([]RegionKey, 0, len(r.Regions))
	for k := range r.Regions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rank != keys[j].Rank {
			return keys[i].Rank < keys[j].Rank
		}
		return keys[i].Region < keys[j].Region
	})
	return keys
}
