package core

import (
	"math"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// collSet builds a p-rank trace whose only interaction is one
// collective of the given kind, with per-rank staggered arrival.
func collSet(t *testing.T, p int, kind trace.Kind, bytes int64, root int32) *trace.Set {
	t.Helper()
	perRank := make([][]trace.Record, p)
	for r := 0; r < p; r++ {
		coll := rec(kind, 100+int64(r)*10, 500)
		coll.Seq, coll.CommSize, coll.Bytes = 1, int32(p), bytes
		if kind.IsRooted() {
			coll.Root = root
		}
		perRank[r] = []trace.Record{
			rec(trace.KindInit, 0, 10),
			coll,
			rec(trace.KindFinalize, 600, 600),
		}
	}
	return mkset(t, perRank...)
}

// TestAllReduceApproxMatchesClosedForm pins the Fig. 4 model against
// its closed form with constant deltas.
func TestAllReduceApproxMatchesClosedForm(t *testing.T) {
	const (
		p = 8
		a = 5.0
		l = 30.0
	)
	model := &Model{
		OSNoise:    dist.Constant{C: a},
		MsgLatency: dist.Constant{C: l},
	}
	res, err := Analyze(collSet(t, p, trace.KindAllreduce, 8, trace.NoRank), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank arrives with inbound delay 2a (init internal + gap).
	// l_delta per rank = log2(8)=3 rounds of (a + l).
	inbound := make([]float64, p)
	lDelta := make([]float64, p)
	for i := range inbound {
		inbound[i] = 2 * a
		lDelta[i] = 3 * (a + l)
	}
	out := CollectiveApproxClosed(inbound, lDelta)
	for r := 0; r < p; r++ {
		// Tail: gap (+a) + finalize internal (+a).
		wantDelay(t, "allreduce rank", res.Ranks[r].FinalDelay, out[r]+2*a)
	}
}

// TestCollectiveSlowestDominates: a single straggler's extra delay
// reaches every participant (the paper's motivating observation for
// collectives).
func TestCollectiveSlowestDominates(t *testing.T) {
	const p = 6
	perRank := make([][]trace.Record, p)
	for r := 0; r < p; r++ {
		coll := rec(trace.KindBarrier, 100, 500)
		coll.Seq, coll.CommSize = 1, int32(p)
		recs := []trace.Record{rec(trace.KindInit, 0, 10), coll,
			rec(trace.KindFinalize, 600, 600)}
		perRank[r] = recs
	}
	// Rank 3 has a big compute gap before the barrier -> its *injected*
	// noise is amplified by the quantum rule.
	perRank[3][1].Begin = 400 // longer gap: more quanta
	model := &Model{OSNoise: dist.Constant{C: 10}, NoiseQuantum: 10}
	res, err := Analyze(mkset(t, perRank...), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks end with identical delays (the max propagated).
	for r := 1; r < p; r++ {
		if math.Abs(res.Ranks[r].FinalDelay-res.Ranks[0].FinalDelay) > 1e-9 {
			t.Fatalf("rank %d delay %g != rank 0 %g", r, res.Ranks[r].FinalDelay, res.Ranks[0].FinalDelay)
		}
	}
	// And the common delay reflects the straggler's larger injection.
	if res.Ranks[0].FinalDelay < 300 {
		t.Fatalf("straggler injection did not propagate: %g", res.Ranks[0].FinalDelay)
	}
}

// TestAllReduceApproxVsExplicit: with constant deltas the explicit
// butterfly accumulates latency across rounds but counts noise once per
// hop-chain, so it is bounded above by the approx model's pessimistic
// per-rank serial sum.
func TestAllReduceApproxVsExplicit(t *testing.T) {
	mk := func(mode CollectiveMode) float64 {
		model := &Model{
			OSNoise:     dist.Constant{C: 20},
			MsgLatency:  dist.Constant{C: 100},
			Collectives: mode,
		}
		res, err := Analyze(collSet(t, 16, trace.KindAllreduce, 8, trace.NoRank), model, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxFinalDelay
	}
	approx := mk(CollectiveApprox)
	explicit := mk(CollectiveExplicit)
	if explicit > approx {
		t.Fatalf("explicit (%g) exceeded approx (%g) under constant deltas", explicit, approx)
	}
	if explicit <= 0 {
		t.Fatal("explicit model injected nothing")
	}
}

func TestRootedCollectivesResolve(t *testing.T) {
	for _, kind := range []trace.Kind{trace.KindBcast, trace.KindReduce,
		trace.KindGather, trace.KindScatter} {
		for _, mode := range []CollectiveMode{CollectiveApprox, CollectiveExplicit} {
			model := &Model{
				OSNoise:     dist.Constant{C: 5},
				MsgLatency:  dist.Constant{C: 50},
				Collectives: mode,
			}
			res, err := Analyze(collSet(t, 5, kind, 64, 2), model, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, mode, err)
			}
			if res.MaxFinalDelay <= 0 {
				t.Fatalf("%s/%s: no delay propagated", kind, mode)
			}
		}
	}
}

func TestExplicitReduceLeavesNonRootsEarly(t *testing.T) {
	// In the explicit model non-root ranks of a Reduce do not wait for
	// the root; in the approx model (paper Fig. 4 simplification) the
	// max returns to everyone. Give rank 0 (the root) a private large
	// delay via a marker region... simplest: stagger arrivals so rank 4
	// arrives with max inbound delay, then compare leaf delays.
	const p = 4
	perRank := make([][]trace.Record, p)
	for r := 0; r < p; r++ {
		coll := rec(trace.KindReduce, 100, 500)
		coll.Seq, coll.CommSize, coll.Root = 1, int32(p), 0
		perRank[r] = []trace.Record{rec(trace.KindInit, 0, 10), coll,
			rec(trace.KindFinalize, 600, 600)}
	}
	// Rank 2 gets a long gap: with quantized noise it arrives very
	// delayed.
	perRank[2][1].Begin = 400
	model := &Model{
		OSNoise:      dist.Constant{C: 10},
		NoiseQuantum: 10,
		Collectives:  CollectiveExplicit,
	}
	res, err := Analyze(mkset(t, perRank...), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Root (0) must see rank 2's delay; rank 1, a leaf that only sends,
	// must not inherit it in the explicit model.
	if res.Ranks[0].FinalDelay <= res.Ranks[1].FinalDelay {
		t.Fatalf("explicit reduce: root %g should exceed leaf %g",
			res.Ranks[0].FinalDelay, res.Ranks[1].FinalDelay)
	}

	model.Collectives = CollectiveApprox
	res2, err := Analyze(mkset(t, perRank...), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Approx mode propagates the max back to everyone (paper's return
	// edges), so the leaf is as delayed as the root.
	if math.Abs(res2.Ranks[0].FinalDelay-res2.Ranks[1].FinalDelay) > 1e-9 {
		t.Fatalf("approx reduce: root %g != leaf %g",
			res2.Ranks[0].FinalDelay, res2.Ranks[1].FinalDelay)
	}
}

func TestCollectiveBytesTerm(t *testing.T) {
	base := &Model{MsgLatency: dist.Constant{C: 10}}
	with := &Model{MsgLatency: dist.Constant{C: 10},
		PerByte: dist.Constant{C: 1}, CollectiveBytes: true}
	r1, err := Analyze(collSet(t, 4, trace.KindAllreduce, 1000, trace.NoRank), base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(collSet(t, 4, trace.KindAllreduce, 1000, trace.NoRank), with, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.MaxFinalDelay <= r1.MaxFinalDelay {
		t.Fatalf("bandwidth term had no effect: %g vs %g", r2.MaxFinalDelay, r1.MaxFinalDelay)
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	perRank := make([][]trace.Record, 2)
	b := rec(trace.KindBarrier, 100, 200)
	b.Seq, b.CommSize = 1, 2
	a := rec(trace.KindAllreduce, 100, 200)
	a.Seq, a.CommSize, a.Bytes = 1, 2, 8
	perRank[0] = []trace.Record{rec(trace.KindInit, 0, 10), b}
	perRank[1] = []trace.Record{rec(trace.KindInit, 0, 10), a}
	_, err := Analyze(mkset(t, perRank...), &Model{}, Options{})
	if err == nil {
		t.Fatal("mismatched collectives accepted")
	}
}

func TestSingletonCollective(t *testing.T) {
	// A communicator of size 1: the collective must resolve trivially.
	coll := rec(trace.KindAllreduce, 100, 200)
	coll.Seq, coll.CommSize, coll.Bytes = 1, 1, 8
	set := mkset(t, []trace.Record{rec(trace.KindInit, 0, 10), coll,
		rec(trace.KindFinalize, 300, 300)})
	res, err := Analyze(set, &Model{MsgLatency: dist.Constant{C: 10}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 3 {
		t.Fatalf("events = %d", res.Events)
	}
}

func TestSubCommunicatorCollectivesMatchByCommID(t *testing.T) {
	// Two disjoint pairs each run their own barrier on different comm
	// ids with the same seq; matching must scope by comm.
	mkRank := func(r int, comm int32) []trace.Record {
		b := rec(trace.KindBarrier, 100, 200)
		b.Seq, b.CommSize, b.Comm = 1, 2, comm
		return []trace.Record{rec(trace.KindInit, 0, 10), b,
			rec(trace.KindFinalize, 300, 300)}
	}
	set := mkset(t, mkRank(0, 1), mkRank(1, 1), mkRank(2, 2), mkRank(3, 2))
	res, err := Analyze(set, &Model{MsgLatency: dist.Constant{C: 10}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 12 {
		t.Fatalf("events = %d", res.Events)
	}
}

func TestScanForwardOnlyPropagation(t *testing.T) {
	// In the graph model, noise injected on rank k's inbound path must
	// delay ranks >= k through the scan but never ranks < k.
	const p = 5
	perRank := make([][]trace.Record, p)
	for r := 0; r < p; r++ {
		c := rec(trace.KindScan, 100, 500)
		c.Seq, c.CommSize, c.Bytes = 1, int32(p), 8
		perRank[r] = []trace.Record{rec(trace.KindInit, 0, 10), c,
			rec(trace.KindFinalize, 600, 600)}
	}
	// Rank 2 alone gets a big gap so quantized noise hits it hard.
	perRank[2][1].Begin = 400
	model := &Model{OSNoise: dist.Constant{C: 10}, NoiseQuantum: 10}
	for _, mode := range []CollectiveMode{CollectiveApprox, CollectiveExplicit} {
		model.Collectives = mode
		res, err := Analyze(mkset(t, perRank...), model, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Ranks 0 and 1 see only their own modest noise; ranks 2..4 see
		// rank 2's large injection.
		if res.Ranks[1].FinalDelay >= res.Ranks[2].FinalDelay {
			t.Fatalf("%s: rank 1 delay %g >= rank 2 delay %g (backward propagation)",
				mode, res.Ranks[1].FinalDelay, res.Ranks[2].FinalDelay)
		}
		for r := 3; r < p; r++ {
			if res.Ranks[r].FinalDelay < res.Ranks[2].FinalDelay {
				t.Fatalf("%s: rank %d did not inherit the straggler's delay", mode, r)
			}
		}
	}
}

func TestAnchoredCollectiveAbsorbsSmallDeltas(t *testing.T) {
	// Anchored mode: a collective whose traced duration (400 cycles)
	// exceeds the modeled l_delta absorbs it entirely.
	model := &Model{
		MsgLatency:  dist.Constant{C: 5},
		Propagation: PropagationAnchored,
	}
	res, err := Analyze(collSet(t, 4, trace.KindAllreduce, 8, trace.NoRank), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFinalDelay != 0 {
		t.Fatalf("anchored collective leaked delay %g", res.MaxFinalDelay)
	}
	// Large deltas exceed the duration and emerge, reduced by it.
	model.MsgLatency = dist.Constant{C: 1000}
	res2, err := Analyze(collSet(t, 4, trace.KindAllreduce, 8, trace.NoRank), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxFinalDelay <= 0 {
		t.Fatal("anchored collective absorbed a delta larger than its duration")
	}
	add, err := Analyze(collSet(t, 4, trace.KindAllreduce, 8, trace.NoRank),
		&Model{MsgLatency: dist.Constant{C: 1000}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxFinalDelay >= add.MaxFinalDelay {
		t.Fatalf("anchored (%g) should be below additive (%g)",
			res2.MaxFinalDelay, add.MaxFinalDelay)
	}
}
