package core

import (
	"strings"
	"testing"

	"mpgraph/internal/trace"
)

func TestBuildGraphBlockingPair(t *testing.T) {
	g, err := BuildGraph(blockingPairSet(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	// 3 records per rank × 2 subevents × 2 ranks = 12 nodes.
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	byKind := g.EdgesByKind()
	// Local edges: per rank, 3 internal + 2 compute gaps = 5; ×2 = 10.
	if byKind[EdgeLocal] != 10 {
		t.Fatalf("local edges = %d, want 10", byKind[EdgeLocal])
	}
	// Message edges: data + ack = 2 (the paper's mandated edge pair).
	if byKind[EdgeMessage] != 2 {
		t.Fatalf("message edges = %d, want 2 (data+ack pair)", byKind[EdgeMessage])
	}
}

func TestGraphMessageEdgeEndpoints(t *testing.T) {
	g, err := BuildGraph(blockingPairSet(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	var data, ack *GraphEdge
	for i := range g.Edges() {
		e := &g.Edges()[i]
		if e.Kind != EdgeMessage {
			continue
		}
		if strings.HasPrefix(e.Label, "data") {
			data = e
		} else if e.Label == "ack" {
			ack = e
		}
	}
	if data == nil || ack == nil {
		t.Fatal("missing data or ack edge")
	}
	// Data: sender's start (rank 0 event 1) -> receiver's end.
	want := NodeRef{Rank: 0, Event: 1}
	if data.From != want {
		t.Fatalf("data edge from %v, want %v", data.From, want)
	}
	if data.To != (NodeRef{Rank: 1, Event: 1, End: true}) {
		t.Fatalf("data edge to %v", data.To)
	}
	// Ack: receiver's end -> sender's end.
	if ack.From != (NodeRef{Rank: 1, Event: 1, End: true}) ||
		ack.To != (NodeRef{Rank: 0, Event: 1, End: true}) {
		t.Fatalf("ack edge %v -> %v", ack.From, ack.To)
	}
}

func TestGraphNonblockingEdgesLandOnWaits(t *testing.T) {
	g, err := BuildGraph(nonblockingPairSet(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Kind != EdgeMessage {
			continue
		}
		if strings.HasPrefix(e.Label, "data") {
			// Data edge: isend start (rank0 event1) -> receiver's WAIT end
			// (rank1 event2).
			if e.From != (NodeRef{Rank: 0, Event: 1}) {
				t.Fatalf("data from %v", e.From)
			}
			if e.To != (NodeRef{Rank: 1, Event: 2, End: true}) {
				t.Fatalf("data to %v (should be the wait, Fig. 3)", e.To)
			}
		}
	}
}

func TestCollectiveHubEdges(t *testing.T) {
	g := &Graph{}
	set := collSet(t, 4, trace.KindAllreduce, 8, trace.NoRank)
	if _, err := Analyze(set, &Model{}, Options{Graph: g}); err != nil {
		t.Fatal(err)
	}
	byKind := g.EdgesByKind()
	// Fig. 4 hub: p inbound l_delta edges + (p-1) outbound l_delta_max.
	if byKind[EdgeCollective] != 4+3 {
		t.Fatalf("collective edges = %d, want 7", byKind[EdgeCollective])
	}
}

func TestDOTOutputShape(t *testing.T) {
	g, err := BuildGraph(blockingPairSet(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("fig5 example")
	for _, frag := range []string{
		"digraph mpg {",
		`label="fig5 example"`,
		"cluster_rank0",
		"cluster_rank1",
		"style=dashed",
		"color=red",
		`"r0.e1.s"`,
		"send",
		"recv",
		"ack",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
	// Deterministic output.
	if dot != g.DOT("fig5 example") {
		t.Error("DOT output not deterministic")
	}
}

func TestDOTEdgeAndNodeCountsMatchGraph(t *testing.T) {
	g, err := BuildGraph(blockingPairSet(t, 64))
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("x")
	if got := strings.Count(dot, " -> "); got != g.NumEdges() {
		t.Fatalf("DOT has %d edges, graph has %d", got, g.NumEdges())
	}
}

func TestGraphNodeLookup(t *testing.T) {
	g, err := BuildGraph(blockingPairSet(t, 64))
	if err != nil {
		t.Fatal(err)
	}
	n, ok := g.Node(NodeRef{Rank: 0, Event: 1})
	if !ok || n.Kind != trace.KindSend || n.Time != 100 {
		t.Fatalf("node lookup: %+v ok=%v", n, ok)
	}
	if _, ok := g.Node(NodeRef{Rank: 9, Event: 9}); ok {
		t.Fatal("phantom node found")
	}
}
