package core

import (
	"math"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/obsv"
	"mpgraph/internal/trace"
)

func nref(rank int, event int64, end bool) NodeRef {
	return NodeRef{Rank: rank, Event: event, End: end}
}

func wantPath(t *testing.T, cp *CriticalPath, want []NodeRef) {
	t.Helper()
	if len(cp.Steps) != len(want) {
		t.Fatalf("path has %d steps, want %d: %v", len(cp.Steps), len(want), cp.Steps)
	}
	for i, w := range want {
		if cp.Steps[i].Node != w {
			t.Fatalf("step %d = %s, want %s (path %v)", i, cp.Steps[i].Node, w, cp.Steps)
		}
	}
}

func wantBlame(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s blame = %g, want %g", name, got, want)
	}
}

// TestCritPath2RankMessage pins the exact argmax chain of a blocking
// pair whose makespan sink is the receiver: the path must hop from the
// receiver's chain across the data message edge to the sender's post.
func TestCritPath2RankMessage(t *testing.T) {
	const l = 100.0
	send := rec(trace.KindSend, 100, 300)
	send.Peer, send.Tag, send.Bytes = 1, 5, 1000
	recv := rec(trace.KindRecv, 50, 300)
	recv.Peer, recv.Tag, recv.Bytes = 0, 5, 1000
	set := mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), send, rec(trace.KindFinalize, 400, 400)},
		// The receiver runs 200 cycles longer, so it defines the
		// perturbed makespan even though the sender's ack delay (2l)
		// is larger than the receiver's data delay (l).
		[]trace.Record{rec(trace.KindInit, 0, 10), recv, rec(trace.KindFinalize, 600, 600)},
	)
	model := &Model{MsgLatency: dist.Constant{C: l}}
	res, err := Analyze(set, model, Options{RecordCritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	cp := res.CritPath
	if cp == nil {
		t.Fatal("RecordCritPath set but Result.CritPath is nil")
	}
	// Sanity on the delays themselves (Eq. 1 with only latency).
	wantDelay(t, "sender final", res.Ranks[0].FinalDelay, 2*l)
	wantDelay(t, "receiver final", res.Ranks[1].FinalDelay, l)

	if cp.Sink != nref(1, 2, true) {
		t.Fatalf("sink = %s, want r1.e2.e", cp.Sink)
	}
	wantBlame(t, "sink delay", cp.SinkDelay, l)
	wantBlame(t, "sink offset", cp.SinkOffset, 0)
	wantPath(t, cp, []NodeRef{
		nref(0, 0, false), // rank 0 init start (zero-delay source)
		nref(0, 0, true),  // init end
		nref(0, 1, false), // send post
		nref(1, 1, true),  // message edge: recv completion on rank 1
		nref(1, 2, false), // finalize start
		nref(1, 2, true),  // finalize end = sink
	})
	wantBlame(t, "local", cp.KindBlame[EdgeLocal], 0)
	wantBlame(t, "message", cp.KindBlame[EdgeMessage], l)
	wantBlame(t, "collective", cp.KindBlame[EdgeCollective], 0)
	wantBlame(t, "rank0", cp.RankBlame[0], 0)
	wantBlame(t, "rank1", cp.RankBlame[1], l)
	// The message step is the one carrying the delta.
	if s := cp.Steps[3]; s.Kind != EdgeMessage || math.Abs(s.Delta-l) > 1e-9 {
		t.Fatalf("message step = %+v, want message/+%g", s, l)
	}
}

// TestCritPath4RankCollectiveHubTie: four ranks enter a barrier with
// identical inbound delays and identical l_delta contributions, so the
// hub argmax is a four-way tie. The tie must break deterministically
// to the lowest rank: the sink rank's path crosses the collective edge
// into rank 0's barrier post.
func TestCritPath4RankCollectiveHubTie(t *testing.T) {
	const (
		p = 4
		a = 5.0
		l = 30.0
	)
	perRank := make([][]trace.Record, p)
	for r := 0; r < p; r++ {
		coll := rec(trace.KindBarrier, 100, 500)
		coll.Seq, coll.CommSize = 1, p
		fin := rec(trace.KindFinalize, 600, 600)
		if r == 2 {
			// Rank 2 runs longest, so it defines the makespan and its
			// path must reach back to the tie-broken hub winner.
			fin = rec(trace.KindFinalize, 700, 700)
		}
		perRank[r] = []trace.Record{rec(trace.KindInit, 0, 10), coll, fin}
	}
	model := &Model{
		OSNoise:    dist.Constant{C: a},
		MsgLatency: dist.Constant{C: l},
	}
	res, err := Analyze(mkset(t, perRank...), model, Options{RecordCritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	cp := res.CritPath
	// l_delta = ceil(log2 4) = 2 rounds of (a + l) on top of the
	// winner's inbound 2a; every rank adds its own 2a tail.
	lDelta := 2 * (a + l)
	wantDelay(t, "rank2 final", res.Ranks[2].FinalDelay, 2*a+lDelta+2*a)

	if cp.Sink != nref(2, 2, true) {
		t.Fatalf("sink = %s, want r2.e2.e", cp.Sink)
	}
	wantPath(t, cp, []NodeRef{
		nref(0, 0, false), // tie broken to rank 0: path anchors at its init
		nref(0, 0, true),
		nref(0, 1, false), // rank 0's barrier post (the hub argmax)
		nref(2, 1, true),  // collective edge into the sink rank's barrier end
		nref(2, 2, false),
		nref(2, 2, true),
	})
	wantBlame(t, "local", cp.KindBlame[EdgeLocal], 4*a)
	wantBlame(t, "collective", cp.KindBlame[EdgeCollective], lDelta)
	wantBlame(t, "message", cp.KindBlame[EdgeMessage], 0)
	wantBlame(t, "rank0", cp.RankBlame[0], 2*a)
	wantBlame(t, "rank2", cp.RankBlame[2], lDelta+2*a)
	wantBlame(t, "rank1", cp.RankBlame[1], 0)
	wantBlame(t, "rank3", cp.RankBlame[3], 0)
	if s := cp.Steps[3]; s.Kind != EdgeCollective || math.Abs(s.Delta-lDelta) > 1e-9 {
		t.Fatalf("collective step = %+v, want collective/+%g", s, lDelta)
	}
}

// richSet is a 3-rank trace mixing messages and a collective, for the
// identity tests below.
func richSet(t *testing.T) *trace.Set {
	t.Helper()
	send01 := rec(trace.KindSend, 20, 120)
	send01.Peer, send01.Tag, send01.Bytes = 1, 1, 4096
	recv01 := rec(trace.KindRecv, 30, 120)
	recv01.Peer, recv01.Tag, recv01.Bytes = 0, 1, 4096
	send12 := rec(trace.KindSend, 150, 260)
	send12.Peer, send12.Tag, send12.Bytes = 2, 2, 512
	recv12 := rec(trace.KindRecv, 40, 260)
	recv12.Peer, recv12.Tag, recv12.Bytes = 1, 2, 512
	mkColl := func() trace.Record {
		c := rec(trace.KindAllreduce, 300, 400)
		c.Seq, c.CommSize, c.Bytes = 1, 3, 64
		return c
	}
	return mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), send01, mkColl(), rec(trace.KindFinalize, 500, 500)},
		[]trace.Record{rec(trace.KindInit, 0, 10), recv01, send12, mkColl(), rec(trace.KindFinalize, 520, 520)},
		[]trace.Record{rec(trace.KindInit, 0, 10), recv12, mkColl(), rec(trace.KindFinalize, 490, 490)},
	)
}

// TestCritPathBlameTelescopes: the per-step deltas must sum exactly to
// the sink delay, and SinkDelay + SinkOffset must equal the reported
// MakespanDelay, in every propagation/collective mode — the deltas are
// differences of recorded delays, so the sum telescopes by
// construction and any mismatch means the recorded argmax disagrees
// with the propagation.
func TestCritPathBlameTelescopes(t *testing.T) {
	cases := []struct {
		name  string
		model Model
	}{
		{"additive_approx", Model{Seed: 7, OSNoise: dist.Exponential{MeanValue: 40}, MsgLatency: dist.Exponential{MeanValue: 90}, PerByte: dist.Constant{C: 0.02}}},
		{"additive_explicit", Model{Seed: 9, OSNoise: dist.Exponential{MeanValue: 40}, MsgLatency: dist.Constant{C: 55}, Collectives: CollectiveExplicit, CollectiveBytes: true}},
		{"anchored", Model{Seed: 11, OSNoise: dist.Exponential{MeanValue: 160}, MsgLatency: dist.Exponential{MeanValue: 120}, Propagation: PropagationAnchored}},
		{"negative", Model{Seed: 13, OSNoise: dist.Normal{Mu: 0, Sigma: 50}, MsgLatency: dist.Constant{C: 30}, AllowNegative: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := Analyze(richSet(t), &tc.model, Options{RecordCritPath: true})
			if err != nil {
				t.Fatal(err)
			}
			cp := res.CritPath
			var sum float64
			for _, s := range cp.Steps {
				sum += s.Delta
			}
			wantBlame(t, "step sum vs sink delay", sum, cp.SinkDelay)
			kindSum := cp.KindBlame[0] + cp.KindBlame[1] + cp.KindBlame[2]
			wantBlame(t, "kind blame vs sink delay", kindSum, cp.SinkDelay)
			var rankSum float64
			for _, v := range cp.RankBlame {
				rankSum += v
			}
			wantBlame(t, "rank blame vs sink delay", rankSum, cp.SinkDelay)
			wantBlame(t, "makespan identity", cp.SinkDelay+cp.SinkOffset, res.MakespanDelay)
			if cp.Steps[0].Delay != 0 || cp.Steps[0].Node.End || cp.Steps[0].Node.Event != 0 {
				t.Fatalf("path source is not a first-event start: %+v", cp.Steps[0])
			}
			if last := cp.Steps[len(cp.Steps)-1]; last.Node != cp.Sink || math.Abs(last.Delay-cp.SinkDelay) > 1e-9 {
				t.Fatalf("path tail %+v does not land on sink %s/%g", last, cp.Sink, cp.SinkDelay)
			}
		})
	}
}

// TestCritPathDeterminismUnchangedDelays: enabling argmax recording
// and metrics must not change a single propagated delay.
func TestCritPathDeterminismUnchangedDelays(t *testing.T) {
	model := Model{Seed: 3, OSNoise: dist.Exponential{MeanValue: 75}, MsgLatency: dist.Exponential{MeanValue: 130}, PerByte: dist.Constant{C: 0.01}}
	plain, err := Analyze(richSet(t), model.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := Analyze(richSet(t), model.Clone(), Options{RecordCritPath: true, Metrics: obsv.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.MaxFinalDelay != instrumented.MaxFinalDelay ||
		plain.MeanFinalDelay != instrumented.MeanFinalDelay ||
		plain.MakespanDelay != instrumented.MakespanDelay {
		t.Fatalf("aggregates changed under instrumentation: %+v vs %+v", plain, instrumented)
	}
	for r := range plain.Ranks {
		if plain.Ranks[r].FinalDelay != instrumented.Ranks[r].FinalDelay {
			t.Fatalf("rank %d delay changed: %g vs %g", r,
				plain.Ranks[r].FinalDelay, instrumented.Ranks[r].FinalDelay)
		}
	}
	if plain.DelayStats != instrumented.DelayStats {
		t.Fatalf("subevent delay stats changed: %+v vs %+v", plain.DelayStats, instrumented.DelayStats)
	}
}

// TestCritPathZeroModel: a zero model yields an all-zero path down the
// sink rank's local chain — every blame bucket empty.
func TestCritPathZeroModel(t *testing.T) {
	res, err := Analyze(richSet(t), &Model{}, Options{RecordCritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	cp := res.CritPath
	wantBlame(t, "sink delay", cp.SinkDelay, 0)
	for _, s := range cp.Steps {
		if s.Delta != 0 {
			t.Fatalf("zero model produced nonzero step %+v", s)
		}
	}
	wantBlame(t, "makespan identity", cp.SinkDelay+cp.SinkOffset, res.MakespanDelay)
}
