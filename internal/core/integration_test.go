package core

import (
	"math"
	"testing"
	"testing/quick"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
)

// traceWorkload executes a program on the simulated runtime and
// returns its trace set.
func traceWorkload(t *testing.T, mcfg machine.Config, prog mpi.Program) *trace.Set {
	t.Helper()
	res, err := mpi.Run(mpi.Config{Machine: mcfg}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := res.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// ring is a token ring: each rank passes a payload around the ring
// for the given number of traversals.
func ring(traversals int, bytes, computeCycles int64) mpi.Program {
	return func(r *mpi.Rank) error {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		for k := 0; k < traversals; k++ {
			r.Compute(computeCycles)
			if r.Rank() == 0 {
				r.Send(next, 0, bytes)
				r.Recv(prev, 0)
			} else {
				r.Recv(prev, 0)
				r.Send(next, 0, bytes)
			}
		}
		return nil
	}
}

func TestEndToEndRingZeroModel(t *testing.T) {
	set := traceWorkload(t, machine.Config{NRanks: 8, Seed: 1}, ring(4, 512, 1000))
	res, err := Analyze(set, &Model{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rr.FinalDelay != 0 {
			t.Fatalf("rank %d delay %g under zero model", rank, rr.FinalDelay)
		}
	}
	if res.WindowHighWater > 16 {
		t.Fatalf("ring window high water %d", res.WindowHighWater)
	}
}

func TestEndToEndRingWithNoisyMachineTraces(t *testing.T) {
	// Traces from a noisy machine (with drifting, offset clocks) must
	// still analyze cleanly: matching uses order only (§4.1).
	mcfg := machine.Config{
		NRanks:        6,
		Seed:          3,
		Noise:         dist.Exponential{MeanValue: 80},
		Latency:       dist.Uniform{Low: 500, High: 2000},
		ClockOffset:   dist.Uniform{Low: 0, High: 1e12},
		ClockDriftPPM: dist.Uniform{Low: -300, High: 300},
	}
	set := traceWorkload(t, mcfg, ring(5, 1024, 2000))
	res, err := Analyze(set, &Model{MsgLatency: dist.Constant{C: 100}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFinalDelay <= 0 {
		t.Fatal("no delay propagated")
	}
}

func TestClockOffsetsDoNotChangeAnalysis(t *testing.T) {
	// Same workload, same machine timing, different clock offsets:
	// identical intervals => identical analysis (the paper's §4.1
	// argument that only execution order matters).
	base := machine.Config{NRanks: 4, Seed: 5}
	offset := base
	offset.ClockOffset = dist.Uniform{Low: 0, High: 1e12}
	model := &Model{Seed: 1, OSNoise: dist.Exponential{MeanValue: 40},
		MsgLatency: dist.Exponential{MeanValue: 300}}

	resA, err := Analyze(traceWorkload(t, base, ring(3, 256, 500)), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Analyze(traceWorkload(t, offset, ring(3, 256, 500)), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank := range resA.Ranks {
		if resA.Ranks[rank].FinalDelay != resB.Ranks[rank].FinalDelay {
			t.Fatalf("rank %d: offset clocks changed the analysis: %g vs %g",
				rank, resA.Ranks[rank].FinalDelay, resB.Ranks[rank].FinalDelay)
		}
	}
}

// TestTokenRingLinearGrowth is the paper's Section 6.1 experiment in
// miniature: injecting a constant c cycles of noise per message makes
// each rank's runtime grow by ~ traversals × c × p.
func TestTokenRingLinearGrowth(t *testing.T) {
	const (
		p          = 16
		traversals = 5
	)
	set := func() *trace.Set {
		return traceWorkload(t, machine.Config{NRanks: p, Seed: 7}, ring(traversals, 64, 1000))
	}
	var xs, ys []float64
	for c := 0.0; c <= 700; c += 100 {
		res, err := Analyze(set(), &Model{MsgLatency: dist.Constant{C: c}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, c)
		ys = append(ys, res.MaxFinalDelay)
	}
	fit := dist.FitLinear(xs, ys)
	if fit.R2 < 0.999 {
		t.Fatalf("growth not linear: R2 = %g", fit.R2)
	}
	// Every hop of the ring carries the token through a message edge;
	// with the ack path each hop contributes ~2c (data + ack latency)
	// to the critical chain. The paper's statement (traversals × c × p)
	// corresponds to the one-way chain; our slope must be within a
	// small factor of traversals × p.
	hops := float64(traversals * p)
	if fit.Slope < hops || fit.Slope > 2.5*hops {
		t.Fatalf("slope = %g, want within [%g, %g]", fit.Slope, hops, 2.5*hops)
	}
}

func TestQuickZeroModelAlwaysZero(t *testing.T) {
	// Property: for arbitrary random workload shapes, a zero model
	// yields exactly zero delays everywhere.
	f := func(seed uint64) bool {
		r := dist.NewRNG(seed)
		n := 2 + r.Intn(5)
		iters := 1 + r.Intn(4)
		doColl := r.Intn(2) == 0
		bytes := int64(1 + r.Intn(4096))
		mcfg := machine.Config{NRanks: n, Seed: seed,
			Noise: dist.Exponential{MeanValue: 50}}
		res, err := mpi.Run(mpi.Config{Machine: mcfg}, func(rk *mpi.Rank) error {
			next := (rk.Rank() + 1) % rk.Size()
			prev := (rk.Rank() + rk.Size() - 1) % rk.Size()
			for i := 0; i < iters; i++ {
				rk.Compute(int64(100 * (rk.Rank() + 1)))
				rk.Sendrecv(next, 0, bytes, prev, 0)
				if doColl {
					rk.Allreduce(8)
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
		set, err := res.TraceSet()
		if err != nil {
			return false
		}
		out, err := Analyze(set, &Model{}, Options{})
		if err != nil {
			return false
		}
		for _, rr := range out.Ranks {
			if rr.FinalDelay != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMonotoneInConstantNoise(t *testing.T) {
	// Property: increasing a constant perturbation never decreases any
	// rank's final delay.
	set := func() *trace.Set {
		return traceWorkload(t, machine.Config{NRanks: 4, Seed: 9}, ring(3, 128, 700))
	}
	prev := make([]float64, 4)
	for c := 0.0; c <= 500; c += 50 {
		res, err := Analyze(set(), &Model{OSNoise: dist.Constant{C: c},
			MsgLatency: dist.Constant{C: c}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for rank, rr := range res.Ranks {
			if rr.FinalDelay+1e-9 < prev[rank] {
				t.Fatalf("c=%g rank %d: delay %g < previous %g", c, rank, rr.FinalDelay, prev[rank])
			}
			prev[rank] = rr.FinalDelay
		}
	}
}

func TestBurstSizeDoesNotChangeResults(t *testing.T) {
	set := func() *trace.Set {
		return traceWorkload(t, machine.Config{NRanks: 6, Seed: 11}, ring(4, 256, 900))
	}
	model := &Model{Seed: 2, OSNoise: dist.Constant{C: 25}, MsgLatency: dist.Constant{C: 75}}
	ref, err := Analyze(set(), model, Options{Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, burst := range []int{2, 7, 64, 1000} {
		res, err := Analyze(set(), model, Options{Burst: burst})
		if err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
		for rank := range res.Ranks {
			if math.Abs(res.Ranks[rank].FinalDelay-ref.Ranks[rank].FinalDelay) > 1e-9 {
				t.Fatalf("burst %d rank %d: %g vs %g", burst, rank,
					res.Ranks[rank].FinalDelay, ref.Ranks[rank].FinalDelay)
			}
		}
	}
}

func TestEagerTracesAnalyzeCleanly(t *testing.T) {
	mcfg := machine.Config{NRanks: 4, Seed: 13, EagerLimit: 1 << 16}
	set := traceWorkload(t, mcfg, func(r *mpi.Rank) error {
		// Unidirectional nonblocking burst with a late receiver: many
		// transfers are in flight at once, so the analyzer's matching
		// window must grow.
		if r.Rank() == 0 {
			var reqs []*mpi.Request
			for i := 0; i < 10; i++ {
				reqs = append(reqs, r.Isend(1, 0, 128))
			}
			r.Waitall(reqs...)
		}
		if r.Rank() == 1 {
			r.Compute(100_000)
			for i := 0; i < 10; i++ {
				r.Recv(0, 0)
			}
		}
		r.Barrier()
		return nil
	})
	res, err := Analyze(set, &Model{MsgLatency: dist.Constant{C: 10}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowHighWater < 5 {
		t.Fatalf("expected a deep window for the eager burst, got %d", res.WindowHighWater)
	}
}
