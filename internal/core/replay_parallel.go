package core

import (
	"errors"
	"runtime"
	"sort"

	"mpgraph/internal/dist"
	"mpgraph/internal/parallel"
	"mpgraph/internal/trace"
)

// Wavefront-slab parallel replay: one replay across many cores,
// byte-identical to ReplayCompiled.
//
// The tape's FP semantics are order-sensitive in exactly two ways:
// each rank's operation sequence (delays, attribution, region stats,
// critical-path argmaxes accumulate in per-rank op order) and the
// global tape order (the Welford delay-stats chain and the
// Trajectory/Interval emission). Everything else is a pure function
// of already-published values. ReplayParallel therefore splits a
// replay into three phases:
//
//  1. Draw prefetch. Sampling is value-independent (§4.1) and every
//     sampler call touches exactly one RNG stream (the shared message
//     stream or one rank's stream), so each stream's value sequence
//     is the stream's site list — the tape-order projection of draw
//     calls onto that stream — walked with a freshly forked
//     generator. Streams prefetch independently, in parallel, into a
//     flat value array; the fork offsets reproduce ForkHierarchyInto
//     exactly, so every value is bit-identical to the serial draw.
//  2. Wavefront slab execution. Each rank's begin/end ops (plus the
//     collective resolutions it owns) form an ordered node stream,
//     partitioned into slabs delimited by the cross-rank edges:
//     a slab boundary falls before every node that consumes another
//     rank's value (message-peer completion, collective resolve/end)
//     and after every node another rank consumes (a posted begin, an
//     owned resolve). Workers advance rank streams slab-by-slab over
//     a parallel.Frontier; a slab runs only when the slabs producing
//     its inputs have published, so every max() merge reads exactly
//     the values the serial replay would have read. Per-rank FP
//     accumulation order is preserved because a rank's slabs execute
//     in stream order on one worker at a time.
//  3. Serial finalization. The main goroutine replays the tape-order
//     commit effects that are global: the Welford chain over the
//     stored end delays, Trajectory/Interval emission, counter sums,
//     warnings, regions, and the critical-path walk.
//
// Point-to-point matches need no scheduled node at all: the xfer is a
// pure function of both posts' published delays plus four prefetched
// draws, so each completion op reconstructs it on the stack —
// duplicating ~20 flops instead of sharing a mutable slot.

// Draw-site kinds. A site is one sampler method call (which may
// consume zero RNG words — nil distribution, zero-length gap,
// Constant per-byte — but always produces exactly one value).
const (
	drawComputeNoise uint8 = iota // computeNoise(rank, arg=gap)
	drawOSNoise                   // osNoise(rank)
	drawLatency                   // latency()
	drawPerByte                   // perByte(arg=bytes)
)

// drawSite is one sampler call in one stream's consumption order:
// the method, its argument, and the flat value-array slot the result
// lands in.
type drawSite struct {
	kind uint8
	arg  int64
	dst  int32
}

// drawRecorder collects draw sites. The collective kernels are run
// through a recording sampler at plan time (on zero delay inputs;
// kernel control flow is value-independent), so their exact call
// sequence is learned, never hand-mirrored. Stream 0 is the message
// stream, stream r+1 is rank r's stream.
type drawRecorder struct {
	streams [][]drawSite
	cur     int32
}

func (r *drawRecorder) noise(rank int) {
	r.streams[rank+1] = append(r.streams[rank+1], drawSite{kind: drawOSNoise, dst: r.cur})
	r.cur++
}

func (r *drawRecorder) msg(kind uint8, bytes int64) {
	r.streams[0] = append(r.streams[0], drawSite{kind: kind, arg: bytes, dst: r.cur})
	r.cur++
}

// drawPlanKey is the model shape a draw plan depends on: collective
// mode and the CollectiveBytes switch are the only model fields that
// change which sampler calls a replay makes (nil distributions and
// quantization change how many RNG words a call consumes, but the
// live prefetch sampler handles that inside the call).
type drawPlanKey struct {
	mode  CollectiveMode
	bytes bool
}

// drawPlan is the per-model-shape draw schedule: one site list per
// RNG stream (in that stream's tape-order consumption order) and the
// flat value-array layout. Value layout: [0,T) begin compute-noise,
// [T,2T) end OS-noise, [2T,2T+4M) per-message lat1/perByte/lat2/os2
// interleaved, [2T+4M, valsLen) collective kernel values in call
// order, collOff[i] the base of collective i's span.
type drawPlan struct {
	streams [][]drawSite
	collOff []int32 // len nColls+1; collOff[nColls] == valsLen
	endOff  int     // == T
	msgOff  int     // == 2T
	valsLen int
}

// parDep is one cross-stream dependency: the owning rank's stream
// must have published position >= pos (i.e. the node at pos-1, always
// the last node of its slab, has executed).
type parDep struct {
	rank int32
	pos  int64
}

// parSlab is one contiguous run [lo,hi) of a rank's node stream whose
// only cross-stream inputs arrive at its first node.
type parSlab struct {
	lo, hi int32
	depOff int32
	depN   int32
	level  int32 // wavefront index: longest dependency chain to this slab
}

// parPlan is the structural (model-independent) half of the wavefront
// schedule, built once per Compiled.
type parPlan struct {
	// nodes holds op-tape indices, rank-major: rank r's stream is
	// nodes[nodeBase[r]:nodeBase[r+1]], in tape order. opMatch ops are
	// excluded (match values are reconstructed consumer-side); each
	// opCollResolve is assigned to its lowest-rank participant.
	nodes    []int32
	nodeBase []int32
	slabs    []parSlab
	slabBase []int32 // rank r's slabs are slabs[slabBase[r]:slabBase[r+1]]
	deps     []parDep
	targets  []int64 // per rank: stream length (Frontier targets)

	nWavefronts int
}

// parPlanOf returns the structural wavefront plan, building it on
// first use.
func (c *Compiled) parPlanOf() *parPlan {
	c.parPlanOnce.Do(func() { c.parPlanVal = buildParPlan(c) })
	return c.parPlanVal
}

// drawPlanOf returns the draw plan for the model's collective shape,
// building and caching it on first use.
func (c *Compiled) drawPlanOf(m *Model) *drawPlan {
	key := drawPlanKey{mode: m.Collectives, bytes: m.CollectiveBytes}
	if key.mode != CollectiveApprox && key.mode != CollectiveExplicit {
		// Every unknown mode resolves nothing (Scan excepted, which is
		// mode-independent); collapse them to one cache entry.
		key.mode = CollectiveMode(0xff)
	}
	c.drawPlanMu.Lock()
	defer c.drawPlanMu.Unlock()
	if c.drawPlans == nil {
		c.drawPlans = make(map[drawPlanKey]*drawPlan, 4)
	}
	if p, ok := c.drawPlans[key]; ok {
		return p
	}
	p := buildDrawPlan(c, key)
	c.drawPlans[key] = p
	return p
}

// buildDrawPlan walks the tape once, projecting every draw call onto
// its RNG stream in tape order. Collective kernels are executed with
// a recording sampler so the plan carries their true call sequence.
func buildDrawPlan(c *Compiled, key drawPlanKey) *drawPlan {
	T := int(c.evBase[c.nranks])
	M := len(c.msgs)
	p := &drawPlan{
		collOff: make([]int32, len(c.colls)+1),
		endOff:  T,
		msgOff:  2 * T,
	}
	rec := &drawRecorder{
		streams: make([][]drawSite, c.nranks+1),
		cur:     int32(2*T + 4*M),
	}
	shape := &Model{Collectives: key.mode, CollectiveBytes: key.bytes}
	var smp sampler
	smp.model = shape
	smp.rec = rec
	in := make([]collIn, c.maxParts)
	outD := make([]float64, c.maxParts)
	outAttr := make([]Attribution, c.maxParts)
	outPred := make([]int32, c.maxParts)
	var csc collScratch
	for i := range c.ops {
		o := &c.ops[i]
		switch o.code {
		case opBegin:
			rank := int(o.rank)
			gi := c.evBase[rank] + o.event
			rec.streams[rank+1] = append(rec.streams[rank+1],
				drawSite{kind: drawComputeNoise, arg: o.aux, dst: int32(gi)})
		case opMatch:
			cm := &c.msgs[o.arg]
			base := int32(2*T + 4*int(o.arg))
			rec.streams[0] = append(rec.streams[0],
				drawSite{kind: drawLatency, dst: base},
				drawSite{kind: drawPerByte, arg: cm.bytes, dst: base + 1},
				drawSite{kind: drawLatency, dst: base + 2})
			rec.streams[int(cm.recvRank)+1] = append(rec.streams[int(cm.recvRank)+1],
				drawSite{kind: drawOSNoise, dst: base + 3})
		case opEndLocal, opEndSend:
			rank := int(o.rank)
			gi := c.evBase[rank] + o.event
			rec.streams[rank+1] = append(rec.streams[rank+1],
				drawSite{kind: drawOSNoise, dst: int32(T + int(gi))})
		case opCollResolve:
			cc := &c.colls[o.arg]
			p.collOff[o.arg] = rec.cur
			np := int(cc.partN)
			for j := 0; j < np; j++ {
				in[j] = collIn{rank: int(c.parts[int(cc.partOff)+j].rank)}
			}
			switch {
			case cc.kind == trace.KindScan:
				resolveExplicitKernel(&smp, cc.kind, cc.bytes, cc.root, in[:np], &csc, outD, outAttr, outPred, 1)
			case key.mode == CollectiveApprox:
				resolveApproxKernel(&smp, cc.kind, cc.bytes, in[:np], outD, outAttr, outPred, 1)
			case key.mode == CollectiveExplicit:
				resolveExplicitKernel(&smp, cc.kind, cc.bytes, cc.root, in[:np], &csc, outD, outAttr, outPred, 1)
			}
		}
	}
	p.collOff[len(c.colls)] = rec.cur
	p.streams = rec.streams
	p.valsLen = int(rec.cur)
	return p
}

// buildParPlan partitions the tape into per-rank, cross-edge-
// delimited slabs and the dependency schedule between them.
func buildParPlan(c *Compiled) *parPlan {
	n := c.nranks
	total := 0
	streamLen := make([]int32, n)
	route := func(o *op) int {
		if o.code == opCollResolve {
			// A resolve is owned by its lowest-rank participant (parts
			// are in ascending world-rank order).
			return int(c.parts[c.colls[o.arg].partOff].rank)
		}
		return int(o.rank)
	}
	for i := range c.ops {
		o := &c.ops[i]
		if o.code == opMatch {
			continue
		}
		streamLen[route(o)]++
		total++
	}
	plan := &parPlan{
		nodes:    make([]int32, total),
		nodeBase: make([]int32, n+1),
		slabBase: make([]int32, n+1),
		targets:  make([]int64, n),
	}
	for r := 0; r < n; r++ {
		plan.nodeBase[r+1] = plan.nodeBase[r] + streamLen[r]
		plan.targets[r] = int64(streamLen[r])
	}

	// Route ops to streams in tape order, recording positions and
	// collecting per-node dependencies; mark publish targets (nodes
	// other streams depend on — slabs are cut after them so a dep is
	// always satisfied by the target's own slab completing).
	cursor := make([]int32, n)
	beginPos := make([]int32, c.evBase[n]) // gi -> stream position of the begin node
	resolvePos := make([]int32, len(c.colls))
	resolveOwner := make([]int32, len(c.colls))
	nodeDeps := make([][]parDep, total)
	isTarget := make([]bool, total)
	addDep := func(flat int, rank int, depRank int32, depPos int32) {
		if int(depRank) == rank {
			return // in-stream order already guarantees it
		}
		nodeDeps[flat] = append(nodeDeps[flat], parDep{rank: depRank, pos: int64(depPos) + 1})
		isTarget[plan.nodeBase[depRank]+depPos] = true
	}
	for i := range c.ops {
		o := &c.ops[i]
		if o.code == opMatch {
			continue
		}
		r := route(o)
		pos := cursor[r]
		cursor[r]++
		flat := int(plan.nodeBase[r] + pos)
		plan.nodes[flat] = int32(i)
		switch o.code {
		case opBegin:
			beginPos[c.evBase[r]+o.event] = pos
		case opCollResolve:
			resolvePos[o.arg] = pos
			resolveOwner[o.arg] = int32(r)
			cc := &c.colls[o.arg]
			for j := int32(0); j < cc.partN; j++ {
				pt := &c.parts[cc.partOff+j]
				addDep(flat, r, pt.rank, beginPos[c.evBase[pt.rank]+pt.event])
			}
		case opEndSend:
			cm := &c.msgs[o.arg]
			addDep(flat, r, cm.recvRank, beginPos[c.evBase[cm.recvRank]+cm.recvEvent])
		case opEndRecv:
			cm := &c.msgs[o.arg]
			addDep(flat, r, cm.sendRank, beginPos[c.evBase[cm.sendRank]+cm.sendEvent])
		case opEndColl:
			pt := &c.parts[o.arg]
			addDep(flat, r, resolveOwner[pt.coll], resolvePos[pt.coll])
		}
	}

	// Segment each stream into slabs: cut before every dep-carrying
	// node, after every publish target.
	slabOfNode := make([]int32, total)
	for r := 0; r < n; r++ {
		base := int(plan.nodeBase[r])
		L := int(streamLen[r])
		plan.slabBase[r] = int32(len(plan.slabs))
		lo := 0
		for p := 0; p <= L; p++ {
			cut := p == L ||
				(p > 0 && (len(nodeDeps[base+p]) > 0 || isTarget[base+p-1]))
			if !cut {
				continue
			}
			if p == lo {
				continue
			}
			depOff := int32(len(plan.deps))
			plan.deps = append(plan.deps, nodeDeps[base+lo]...)
			si := int32(len(plan.slabs))
			plan.slabs = append(plan.slabs, parSlab{
				lo:     int32(lo),
				hi:     int32(p),
				depOff: depOff,
				depN:   int32(len(nodeDeps[base+lo])),
			})
			for q := lo; q < p; q++ {
				slabOfNode[base+q] = si
			}
			lo = p
		}
	}
	plan.slabBase[n] = int32(len(plan.slabs))

	// Wavefront levels, assigned in tape order of each slab's first
	// node: every dependency targets the last node of a slab whose
	// first node has a strictly smaller tape index, so processing in
	// that order sees all predecessors leveled — which is also the
	// acyclicity proof the property tests pin.
	order := make([]int32, len(plan.slabs))
	for i := range order {
		order[i] = int32(i)
	}
	firstOp := func(si int32) int32 {
		// Recover the slab's rank via slabBase to index its nodes.
		r := sort.Search(n, func(r int) bool { return plan.slabBase[r+1] > si })
		return plan.nodes[plan.nodeBase[r]+plan.slabs[si].lo]
	}
	sort.Slice(order, func(a, b int) bool { return firstOp(order[a]) < firstOp(order[b]) })
	maxLevel := int32(0)
	for _, si := range order {
		sl := &plan.slabs[si]
		lv := int32(0)
		for _, d := range plan.deps[sl.depOff : sl.depOff+sl.depN] {
			target := slabOfNode[plan.nodeBase[d.rank]+int32(d.pos)-1]
			if tl := plan.slabs[target].level + 1; tl > lv {
				lv = tl
			}
		}
		sl.level = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	if len(plan.slabs) > 0 {
		plan.nWavefronts = int(maxLevel) + 1
	}
	return plan
}

// parWorker is one executor worker's private scratch: a live sampler
// for the prefetch phase and a popping sampler plus kernel buffers
// for the collective resolutions it executes.
type parWorker struct {
	pre    sampler // prefetch: live draws against the shared RNG backing
	smp    sampler // execution: pops prefetched collective values
	collIn []collIn
	csc    collScratch
}

// parCursor is one rank stream's executor position.
type parCursor struct {
	slab int32 // next slab index (relative to slabBase[rank])
	pos  int64 // published node position
}

// parState is the pooled working memory of one parallel replay.
type parState struct {
	frontier parallel.Frontier

	// RNG hierarchy backing, seeded identically to replayState.reset:
	// slot 0 the message stream, slot r+1 rank r.
	rngBacking []dist.RNG
	forkLabels []string
	rankPtrs   []*dist.RNG

	vals []float64 // prefetched draw values (drawPlan layout)

	startD    []float64
	startAttr []Attribution
	prevD     []float64
	prevAttr  []Attribution
	endD      []float64
	waitVal   []float64
	waitKind  []uint8

	collOutD    []float64
	collOutAttr []Attribution
	collOutPred []int32

	regions  []RegionStats
	ordViol  []int64 // per-rank §4.3 clamp counts, summed at finalize
	cursors  []parCursor
	workers  []parWorker
	nWorkers int

	critStart []critStep
	crit      [][]critNode
	critBack  []critNode

	// Per-replay bindings (cleared after the run).
	c          *Compiled
	model      *Model
	plan       *parPlan
	draws      *drawPlan
	res        *Result
	recordCrit bool
}

// parPoolGet and parPoolPut confine the analysis loader's stubbed
// sync.Pool to one seam, mirroring poolGet/poolPut for the scalar
// replay state.
func (c *Compiled) parPoolGet() *parState {
	//mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Get itself does not allocate (misses take the caller's cold path)
	st, _ := c.parPool.Get().(*parState)
	return st
}

func (c *Compiled) parPoolPut(st *parState) {
	//mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Put does not allocate
	c.parPool.Put(st)
}

func newParState(c *Compiled) *parState {
	n := c.nranks
	total := c.evBase[n]
	st := &parState{
		rngBacking:  make([]dist.RNG, n+1),
		forkLabels:  replayForkLabels(n),
		rankPtrs:    make([]*dist.RNG, n),
		startD:      make([]float64, total),
		startAttr:   make([]Attribution, total),
		prevD:       make([]float64, n),
		prevAttr:    make([]Attribution, n),
		endD:        make([]float64, total),
		waitVal:     make([]float64, total),
		waitKind:    make([]uint8, total),
		collOutD:    make([]float64, len(c.parts)),
		collOutAttr: make([]Attribution, len(c.parts)),
		collOutPred: make([]int32, len(c.parts)),
		regions:     make([]RegionStats, len(c.regionKeys)),
		ordViol:     make([]int64, n),
		cursors:     make([]parCursor, n),
		critStart:   make([]critStep, n),
	}
	for r := 0; r < n; r++ {
		st.rankPtrs[r] = &st.rngBacking[r+1]
	}
	return st
}

// reset binds the state to one replay, seeding the RNG hierarchy
// exactly as replayState.reset does and clearing the per-replay
// accumulators. Draw values, subevent slots, and collective outputs
// need no clearing: every slot a replay reads, it writes first.
func (st *parState) reset(c *Compiled, m *Model, plan *parPlan, draws *drawPlan, res *Result, recordCrit bool, workers int) {
	st.c, st.model, st.plan, st.draws, st.res, st.recordCrit = c, m, plan, draws, res, recordCrit
	dist.ForkHierarchyInto(m.Seed, st.forkLabels, st.rngBacking)
	if cap(st.vals) < draws.valsLen {
		st.vals = make([]float64, draws.valsLen)
	}
	st.vals = st.vals[:draws.valsLen]
	for r := range st.prevD {
		st.prevD[r] = 0
		st.prevAttr[r] = Attribution{}
		st.ordViol[r] = 0
		st.cursors[r] = parCursor{}
	}
	for i := range st.regions {
		st.regions[i] = RegionStats{}
	}
	st.frontier.Reset(c.nranks)
	if cap(st.workers) < workers {
		st.workers = append(st.workers[:cap(st.workers)], make([]parWorker, workers-cap(st.workers))...)
	}
	st.workers = st.workers[:workers]
	st.nWorkers = workers
	for i := range st.workers {
		w := &st.workers[i]
		w.pre.model = m
		//mpg:lint-ignore rngpurity workers share the backing hierarchy but never a stream: prefetch statically assigns each RNG stream to exactly one worker, pinned byte-identical under -race
		w.pre.rankRNG = st.rankPtrs
		w.pre.msgRNG = &st.rngBacking[0]
		w.pre.nNoise, w.pre.nMsg = 0, 0
		w.pre.pre, w.pre.preCur, w.pre.rec = nil, 0, nil
		w.smp.model = m
		if cap(w.collIn) < c.maxParts {
			w.collIn = make([]collIn, c.maxParts)
		}
	}
}

// ensureCrit mirrors replayState.ensureCrit.
func (st *parState) ensureCrit(c *Compiled) {
	if st.critBack == nil {
		st.critBack = make([]critNode, c.evBase[c.nranks])
		st.crit = make([][]critNode, c.nranks)
	}
	for r := 0; r < c.nranks; r++ {
		st.crit[r] = st.critBack[c.evBase[r]:c.evBase[r]:c.evBase[r+1]]
	}
}

// prefetch walks one RNG stream's site list with a live sampler,
// storing each value at its planned slot. Stream 0 is the message
// stream; stream s>0 is rank s-1, and only touches that rank's
// generator, so distinct streams prefetch concurrently without
// sharing any mutable state but the worker's own sampler counters.
//
//mpg:hotpath
func (st *parState) prefetch(w *parWorker, stream int) {
	sites := st.draws.streams[stream]
	smp := &w.pre
	rank := stream - 1
	for i := range sites {
		s := &sites[i]
		var v float64
		switch s.kind {
		case drawComputeNoise:
			v = smp.computeNoise(rank, s.arg)
		case drawOSNoise:
			v = smp.osNoise(rank)
		case drawLatency:
			v = smp.latency()
		case drawPerByte:
			v = smp.perByte(s.arg)
		}
		st.vals[s.dst] = v
	}
}

// depsMet reports whether every cross-stream input of the slab has
// been published.
//
//mpg:hotpath
func (st *parState) depsMet(sl *parSlab) bool {
	deps := st.plan.deps[sl.depOff : sl.depOff+sl.depN]
	for i := range deps {
		if st.frontier.At(int(deps[i].rank)) < deps[i].pos {
			return false
		}
	}
	return true
}

// advance runs every currently-ready slab of one rank stream in
// order, publishing after each so dependent streams wake promptly,
// and returns the stream's new position.
//
//mpg:hotpath
func (st *parState) advance(w *parWorker, rank int) int64 {
	plan := st.plan
	cur := &st.cursors[rank]
	slabs := plan.slabs[plan.slabBase[rank]:plan.slabBase[rank+1]]
	for int(cur.slab) < len(slabs) {
		sl := &slabs[cur.slab]
		if !st.depsMet(sl) {
			break
		}
		st.execSlab(w, rank, sl)
		cur.slab++
		cur.pos = int64(sl.hi)
		st.frontier.Publish(rank, cur.pos)
	}
	return cur.pos
}

// execSlab executes one slab's nodes in stream order. The body is the
// op dispatch of ReplayCompiled with draws read from the prefetched
// value array instead of live RNG streams, global commit effects
// (Welford, Trajectory/Interval) deferred to the finalize pass, and
// point-to-point transfers reconstructed on the stack.
//
//mpg:hotpath
func (st *parState) execSlab(w *parWorker, rank int, sl *parSlab) {
	c := st.c
	model := st.model
	recordCrit := st.recordCrit
	rr := &st.res.Ranks[rank]
	base := st.plan.nodeBase[rank]
	for p := sl.lo; p < sl.hi; p++ {
		o := &c.ops[st.plan.nodes[base+p]]
		switch o.code {
		case opBegin:
			gi := c.evBase[rank] + o.event
			delta := st.vals[gi]
			sD := st.prevD[rank] + delta
			sA := st.prevAttr[rank].addOwn(delta)
			rr.InjectedLocal += delta
			if model.AllowNegative && o.started {
				if floor := st.prevD[rank] - float64(o.aux); sD < floor {
					sD = floor
					st.ordViol[rank]++
				}
			}
			st.startD[gi] = sD
			st.startAttr[gi] = sA
			if recordCrit {
				cs := critStep{d: sD, kind: EdgeLocal}
				if o.started {
					cs.pred = NodeRef{Rank: rank, Event: o.event - 1, End: true}
					cs.predD = st.prevD[rank]
					cs.hasPred = true
				}
				st.critStart[rank] = cs
			}

		case opCollResolve:
			st.resolveCollPar(w, o.arg)

		default: // end ops
			gi := c.evBase[rank] + o.event
			sD := st.startD[gi]
			sA := st.startAttr[gi]
			reg := &st.regions[o.region]
			var endD float64
			var endAttr Attribution
			var critEnd critStep
			var ivWait float64
			var ivState WaitState
			if recordCrit {
				critEnd = critStep{pred: NodeRef{Rank: rank, Event: o.event}, predD: sD, kind: EdgeLocal, hasPred: true}
			}
			switch o.code {
			case opEndMarker, opEndImmediate:
				endD, endAttr = sD, sA

			case opEndLocal:
				delta := st.vals[st.draws.endOff+int(gi)]
				rr.InjectedLocal += delta
				endD, endAttr = combineLocalKernel(model.Propagation, sD, sA, delta, o.aux)

			case opEndSend:
				var m xfer
				st.loadXfer(&m, o.arg)
				dOS1 := st.vals[st.draws.endOff+int(gi)]
				rr.InjectedLocal += dOS1
				local, remote, localAttr, remoteAttr := sendCompletionKernel(
					model.Propagation, sD, sA, dOS1, o.aux, &m)
				mergeStats(rr, reg, local, remote)
				if remote > local {
					endD, endAttr = remote, remoteAttr
					ivWait, ivState = remote-local, WaitLateReceiver
					if recordCrit {
						critEnd = parMsgCrit(c, &m, o.arg)
					}
				} else {
					endD, endAttr = local, localAttr
				}

			case opEndRecv:
				var m xfer
				st.loadXfer(&m, o.arg)
				rr.InjectedLocal += m.dOS2
				local, remote, localAttr, remoteAttr := recvCompletionKernel(
					model.Propagation, sD, sA, o.aux, &m)
				mergeStats(rr, reg, local, remote)
				if remote > local {
					endD, endAttr = remote, remoteAttr
					ivWait, ivState = remote-local, WaitLateSender
					if recordCrit {
						if model.Propagation == PropagationAnchored {
							cm := &c.msgs[o.arg]
							critEnd = critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
						} else {
							critEnd = parMsgCrit(c, &m, o.arg)
						}
					}
				} else {
					endD, endAttr = local, localAttr
				}

			case opEndColl:
				pi := o.arg
				pt := &c.parts[pi]
				local := sD
				remote := st.collOutD[pi]
				if model.Propagation == PropagationAnchored {
					remote -= float64(pt.dur)
				}
				mergeStats(rr, reg, local, remote)
				if remote > local {
					endD, endAttr = remote, st.collOutAttr[pi]
					ivWait, ivState = remote-local, WaitCollective
					if recordCrit {
						cc := &c.colls[pt.coll]
						wp := &c.parts[cc.partOff+st.collOutPred[pi]]
						wgi := c.evBase[wp.rank] + wp.event
						critEnd = critStep{pred: NodeRef{Rank: int(wp.rank), Event: wp.event}, predD: st.startD[wgi], kind: EdgeCollective, hasPred: true}
					}
				} else {
					endD, endAttr = local, sA
				}
			}

			if model.AllowNegative {
				if floor := sD - float64(o.aux); endD < floor {
					endD = floor
					st.ordViol[rank]++
				}
			}
			if recordCrit {
				critEnd.d = endD
				//mpg:lint-ignore hotpathalloc appends into pooled critBack backing whose cap is the rank's full event count; never grows
				st.crit[rank] = append(st.crit[rank], critNode{start: st.critStart[rank], end: critEnd})
			}
			st.prevD[rank] = endD
			st.prevAttr[rank] = endAttr
			rr.Events++
			st.endD[gi] = endD
			st.waitVal[gi] = ivWait
			st.waitKind[gi] = uint8(ivState)
			if !reg.firstSeen {
				reg.firstSeen = true
				reg.firstDelay = endD
			}
			reg.Events++
			reg.DelayGrowth = endD - reg.firstDelay
		}
	}
}

// loadXfer reconstructs a transfer's value half on the stack from the
// two published posts and the four prefetched match draws — the same
// inputs resolveCompletion saw serially, so the same FP outputs.
//
//mpg:hotpath
func (st *parState) loadXfer(m *xfer, idx int32) {
	c := st.c
	cm := &c.msgs[idx]
	sgi := c.evBase[cm.sendRank] + cm.sendEvent
	rgi := c.evBase[cm.recvRank] + cm.recvEvent
	m.sendStartD = st.startD[sgi]
	m.sendAttr = st.startAttr[sgi]
	m.recvPostD = st.startD[rgi]
	m.recvAttr = st.startAttr[rgi]
	mbase := st.draws.msgOff + 4*int(idx)
	m.dLat1 = st.vals[mbase]
	m.dPerByte = st.vals[mbase+1]
	m.dLat2 = st.vals[mbase+2]
	m.dOS2 = st.vals[mbase+3]
	m.resolveCompletion()
}

// parMsgCrit is replayState.msgCrit over a stack-reconstructed xfer.
//
//mpg:hotpath
func parMsgCrit(c *Compiled, m *xfer, idx int32) critStep {
	cm := &c.msgs[idx]
	if m.cRecvFromData {
		return critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
	}
	return critStep{pred: NodeRef{Rank: int(cm.recvRank), Event: cm.recvEvent}, predD: m.recvPostD, kind: EdgeMessage, hasPred: true}
}

// resolveCollPar runs the collective resolution kernel with the
// worker's popping sampler over the collective's prefetched value
// span, mirroring replayState.resolveColl's dispatch.
//
//mpg:hotpath
func (st *parState) resolveCollPar(w *parWorker, idx int32) {
	c := st.c
	cc := &c.colls[idx]
	p := int(cc.partN)
	in := w.collIn[:p]
	for j := 0; j < p; j++ {
		pt := &c.parts[int(cc.partOff)+j]
		gi := c.evBase[pt.rank] + pt.event
		in[j] = collIn{rank: int(pt.rank), startD: st.startD[gi], startAttr: st.startAttr[gi]}
	}
	outD := st.collOutD[cc.partOff : int(cc.partOff)+p]
	outAttr := st.collOutAttr[cc.partOff : int(cc.partOff)+p]
	outPred := st.collOutPred[cc.partOff : int(cc.partOff)+p]
	w.smp.pre = st.vals[st.draws.collOff[idx]:st.draws.collOff[idx+1]]
	w.smp.preCur = 0
	if cc.kind == trace.KindScan {
		resolveExplicitKernel(&w.smp, cc.kind, cc.bytes, cc.root, in, &w.csc, outD, outAttr, outPred, 1)
		return
	}
	switch st.model.Collectives {
	case CollectiveApprox:
		resolveApproxKernel(&w.smp, cc.kind, cc.bytes, in, outD, outAttr, outPred, 1)
	case CollectiveExplicit:
		resolveExplicitKernel(&w.smp, cc.kind, cc.bytes, cc.root, in, &w.csc, outD, outAttr, outPred, 1)
	default:
		for j := range outD {
			outD[j], outAttr[j], outPred[j] = 0, Attribution{}, 0
		}
	}
}

// ReplayParallel propagates a perturbation model over a compiled
// graph program using up to `workers` cores for a single replay, with
// a Result byte-identical to ReplayCompiled(c, model, opts): same
// delays, attribution, regions, warnings, critical path, trajectory,
// and interval streams, for every worker count. workers <= 0 means
// runtime.GOMAXPROCS(0); the effective pool never exceeds the rank
// count. Concurrent ReplayParallel calls on one Compiled are safe;
// each borrows its own pooled state.
//
// Like ReplayCompiled, a non-nil opts.Graph is an error, and
// opts.MaxWindow/opts.Burst have no effect (the schedule was fixed at
// compile time). See the package comment at the top of this file for
// the three-phase structure and the determinism argument.
func ReplayParallel(c *Compiled, model *Model, opts Options, workers int) (*Result, error) {
	if opts.Graph != nil {
		return nil, errors.New("core: ReplayParallel cannot feed a graph sink; use Analyze for graph export")
	}
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: the registry observes the replay but never feeds results back
	defer opts.Metrics.Timer("core_replay_parallel").Start()()
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: spans observe the replay but never feed back into its results
	defer opts.Metrics.SpanStart("replay_parallel")()
	if model == nil {
		model = &Model{}
	}
	plan := c.parPlanOf()
	draws := c.drawPlanOf(model)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.nranks {
		workers = c.nranks
	}
	if workers < 1 {
		workers = 1
	}

	st := c.parPoolGet()
	if st == nil {
		//mpg:lint-ignore hotpathprop cold pool-miss path: the parallel state is built once and recycled via the pool
		st = newParState(c)
		//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
		opts.Metrics.Counter("core_replay_par_pool_misses_total").Inc()
	} else {
		//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
		opts.Metrics.Counter("core_replay_par_pool_hits_total").Inc()
	}

	res := &Result{
		NRanks:          c.nranks,
		Ranks:           make([]RankResult, c.nranks),
		Regions:         make(map[RegionKey]*RegionStats, len(c.regionKeys)),
		WindowHighWater: c.highWater,
	}
	st.reset(c, model, plan, draws, res, opts.RecordCritPath, workers)
	if opts.RecordCritPath {
		st.ensureCrit(c)
	}

	// Phases 1+2: every worker prefetches its share of the RNG
	// streams, rendezvouses, then advances its rank streams through
	// the slab schedule.
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
	runSlabs := opts.Metrics.SpanStart("replay_slabs")
	err := st.frontier.Run(workers, plan.targets,
		func(me int) {
			for s := me; s < c.nranks+1; s += workers {
				st.prefetch(&st.workers[me], s)
			}
		},
		func(me, rank int) int64 {
			return st.advance(&st.workers[me], rank)
		})
	runSlabs()
	if err != nil {
		// A worker panicked mid-replay; the state may hold partially
		// executed slabs, so it is not returned to the pool.
		return nil, err
	}

	// Phase 3: serial, global-order finalization.
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
	finSpan := opts.Metrics.SpanStart("replay_finalize")
	var nNoise, nMsg int64
	for i := range st.workers {
		nNoise += st.workers[i].pre.nNoise
		nMsg += st.workers[i].pre.nMsg
	}
	for r := 0; r < c.nranks; r++ {
		res.OrderViolations += st.ordViol[r]
	}
	for i := range c.ops {
		o := &c.ops[i]
		switch o.code {
		case opBegin, opMatch, opCollResolve:
			continue
		}
		rank := int(o.rank)
		gi := c.evBase[rank] + o.event
		endD := st.endD[gi]
		res.Events++
		res.DelayStats.Add(endD)
		if opts.Trajectory != nil {
			opts.Trajectory(TrajectoryPoint{
				Rank:    rank,
				Event:   o.event,
				Kind:    o.kind,
				OrigEnd: o.origEnd,
				Delay:   endD,
				Region:  c.regionKeys[o.region].Region,
			})
		}
		if opts.Interval != nil {
			p := IntervalPoint{
				Rank:       rank,
				Event:      o.event,
				Kind:       o.kind,
				OrigBegin:  o.origEnd - o.aux,
				OrigEnd:    o.origEnd,
				StartDelay: st.startD[gi],
				EndDelay:   endD,
				Wait:       st.waitVal[gi],
				State:      WaitState(st.waitKind[gi]),
				PeerRank:   -1,
			}
			if o.code == opEndRecv {
				cm := &c.msgs[o.arg]
				p.PeerRank = int(cm.sendRank)
				p.PeerEvent = cm.sendEvent
			}
			opts.Interval(p)
		}
	}
	for r := 0; r < c.nranks; r++ {
		rr := &res.Ranks[r]
		rr.OrigEnd = c.origEnd[r]
		rr.FinalDelay = st.prevD[r]
		rr.Attr = st.prevAttr[r]
	}
	if len(c.warnings) > 0 {
		res.Warnings = make([]string, len(c.warnings), len(c.warnings)+1)
		copy(res.Warnings, c.warnings)
	}
	//mpg:lint-ignore hotpathprop once-per-replay warning assembly after the event loop
	orderViolationWarning(res)
	res.finalize()
	if len(c.regionKeys) > 0 {
		stats := make([]RegionStats, len(c.regionKeys))
		copy(stats, st.regions)
		for i, k := range c.regionKeys {
			res.Regions[k] = &stats[i]
		}
	}
	if opts.RecordCritPath {
		//mpg:lint-ignore hotpathprop once-per-replay path reconstruction after the event loop
		res.CritPath = buildCritPath(res, st.crit)
	}
	finSpan()

	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: recorded after the event loop, never feeds back into replay results
	if m := opts.Metrics; m != nil {
		m.Counter("core_replays_total").Inc()
		m.Counter("core_replays_parallel_total").Inc()
		m.Counter("core_events_total").Add(res.Events)
		m.Counter("core_edges_local_total").Add(c.nLocalEdges)
		m.Counter("core_edges_message_total").Add(c.nMsgEdges)
		m.Counter("core_edges_collective_total").Add(c.nCollEdges)
		m.Counter("core_matches_total").Add(c.nMatches)
		m.Counter("core_collectives_total").Add(c.nColls)
		m.Counter("core_samples_noise_total").Add(nNoise)
		m.Counter("core_samples_message_total").Add(nMsg)
		m.Counter("core_replay_slabs_total").Add(int64(len(plan.slabs)))
		m.Counter("core_replay_slab_stalls_total").Add(st.frontier.Stalls())
		m.Gauge("core_replay_wavefronts").SetMax(float64(plan.nWavefronts))
		m.Gauge("core_replay_parallel_workers").SetMax(float64(workers))
		m.Gauge("core_window_high_water").SetMax(float64(c.highWater))
	}

	// Drop per-replay bindings before pooling so the pooled state
	// retains neither the Result nor the model.
	st.res, st.model, st.plan, st.draws = nil, nil, nil, nil
	c.parPoolPut(st)
	return res, nil
}
