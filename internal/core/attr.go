package core

// Attribution decomposes a delay into where it came from: noise
// injected on the rank's own local edges, noise injected on other
// ranks that propagated in through message or collective edges, and
// message-edge deltas (latency/bandwidth). Because propagation picks
// one dominating path at every max() merge, the decomposition follows
// the winning path and the three components sum to the delay exactly
// (in additive mode; anchored mode's duration absorption makes it an
// upper-bound decomposition).
//
// Attribution answers the practical question behind the paper's §4.2
// goal ("the degree of suitability of a parallel program to a
// particular platform"): is a rank slow because of its own platform
// noise, because of its neighbors, or because of the interconnect?
type Attribution struct {
	// OwnNoise is delay from this rank's local-edge deltas.
	OwnNoise float64
	// RemoteNoise is delay from other ranks' local-edge deltas that
	// reached this rank through message/collective edges.
	RemoteNoise float64
	// MsgDelta is delay from message-edge deltas (latency and
	// size-dependent terms), wherever they were injected.
	MsgDelta float64
}

// Total returns the attributed delay.
func (a Attribution) Total() float64 { return a.OwnNoise + a.RemoteNoise + a.MsgDelta }

// addOwn returns a with own-noise delta added.
//
//mpg:hotpath
func (a Attribution) addOwn(d float64) Attribution {
	a.OwnNoise += d
	return a
}

// addMsg returns a with message delta added.
//
//mpg:hotpath
func (a Attribution) addMsg(d float64) Attribution {
	a.MsgDelta += d
	return a
}

// asRemote reclassifies a contribution adopted across a rank boundary:
// every noise component of the winning path becomes remote noise from
// the adopter's perspective.
//
//mpg:hotpath
func (a Attribution) asRemote() Attribution {
	return Attribution{RemoteNoise: a.OwnNoise + a.RemoteNoise, MsgDelta: a.MsgDelta}
}
