package core

import (
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// benchCompiled builds the same stencil1d workload mpg-bench -replay
// times, so profiles taken here explain the committed BENCH_replay.json
// numbers.
func benchCompiled(b *testing.B) *Compiled {
	b.Helper()
	prog, err := workloads.BuildByName("stencil1d", workloads.Options{
		Iterations: 10, CollEvery: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 64, Seed: 1}}, prog)
	if err != nil {
		b.Fatal(err)
	}
	set, err := res.TraceSet()
	if err != nil {
		b.Fatal(err)
	}
	snap, err := trace.NewSnapshot(set)
	if err != nil {
		b.Fatal(err)
	}
	cset, release := snap.Acquire()
	defer release()
	compiled, err := Compile(cset, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return compiled
}

// benchModel mirrors mpg-bench's replayModel: all three sampled delta
// classes active so the benchmark pays representative draw costs.
func benchModel(trial int) *Model {
	return &Model{
		Seed:       uint64(trial)*0x9e3779b97f4a7c15 + 1,
		OSNoise:    dist.Exponential{MeanValue: 300},
		MsgLatency: dist.Exponential{MeanValue: 500},
		PerByte:    dist.Constant{C: 0.5},
	}
}

func BenchmarkReplayCompiled(b *testing.B) {
	compiled := benchCompiled(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayCompiled(compiled, benchModel(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayBatch16(b *testing.B) {
	compiled := benchCompiled(b)
	const lanes = 16
	models := make([]*Model, lanes)
	b.ResetTimer()
	for i := 0; i < b.N; i += lanes {
		for k := 0; k < lanes; k++ {
			models[k] = benchModel(i + k)
		}
		if _, err := ReplayBatch(compiled, models, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
