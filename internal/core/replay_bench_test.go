package core

import (
	"fmt"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// benchCompiled builds the same stencil1d workload mpg-bench -replay
// times, so profiles taken here explain the committed BENCH_replay.json
// numbers.
func benchCompiled(b *testing.B) *Compiled {
	b.Helper()
	prog, err := workloads.BuildByName("stencil1d", workloads.Options{
		Iterations: 10, CollEvery: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 64, Seed: 1}}, prog)
	if err != nil {
		b.Fatal(err)
	}
	set, err := res.TraceSet()
	if err != nil {
		b.Fatal(err)
	}
	snap, err := trace.NewSnapshot(set)
	if err != nil {
		b.Fatal(err)
	}
	cset, release := snap.Acquire()
	defer release()
	compiled, err := Compile(cset, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return compiled
}

// benchModel mirrors mpg-bench's replayModel: all three sampled delta
// classes active so the benchmark pays representative draw costs.
func benchModel(trial int) *Model {
	return &Model{
		Seed:       uint64(trial)*0x9e3779b97f4a7c15 + 1,
		OSNoise:    dist.Exponential{MeanValue: 300},
		MsgLatency: dist.Exponential{MeanValue: 500},
		PerByte:    dist.Constant{C: 0.5},
	}
}

func BenchmarkReplayCompiled(b *testing.B) {
	compiled := benchCompiled(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayCompiled(compiled, benchModel(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayParallel(b *testing.B) {
	compiled := benchCompiled(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ReplayParallel(compiled, benchModel(i), Options{}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplayParallelPhases isolates the three phases of the
// wavefront-slab engine at one worker — the serial-overhead
// decomposition DESIGN.md §8.3 cites: "prefetch" walks every RNG
// stream's site list into the value array, "slabs" executes the full
// slab schedule over pre-filled values, and the whole-engine number
// minus the two is finalize + scheduling.
func BenchmarkReplayParallelPhases(b *testing.B) {
	compiled := benchCompiled(b)
	model := benchModel(0)
	plan := compiled.parPlanOf()
	draws := compiled.drawPlanOf(model)
	st := newParState(compiled)
	res := &Result{
		NRanks:  compiled.nranks,
		Ranks:   make([]RankResult, compiled.nranks),
		Regions: map[RegionKey]*RegionStats{},
	}
	reset := func() {
		for i := range res.Ranks {
			res.Ranks[i] = RankResult{}
		}
		st.reset(compiled, model, plan, draws, res, false, 1)
	}
	b.Run("prefetch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reset()
			for s := 0; s <= compiled.nranks; s++ {
				st.prefetch(&st.workers[0], s)
			}
		}
	})
	b.Run("slabs", func(b *testing.B) {
		reset()
		for s := 0; s <= compiled.nranks; s++ {
			st.prefetch(&st.workers[0], s)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := range res.Ranks {
				res.Ranks[r] = RankResult{}
			}
			for r := range st.prevD {
				st.prevD[r] = 0
				st.prevAttr[r] = Attribution{}
				st.ordViol[r] = 0
				st.cursors[r] = parCursor{}
			}
			for j := range st.regions {
				st.regions[j] = RegionStats{}
			}
			st.frontier.Reset(compiled.nranks)
			if err := st.frontier.Run(1, plan.targets, nil, func(me, rank int) int64 {
				return st.advance(&st.workers[me], rank)
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReplayBatch16(b *testing.B) {
	compiled := benchCompiled(b)
	const lanes = 16
	models := make([]*Model, lanes)
	b.ResetTimer()
	for i := 0; i < b.N; i += lanes {
		for k := 0; k < lanes; k++ {
			models[k] = benchModel(i + k)
		}
		if _, err := ReplayBatch(compiled, models, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
