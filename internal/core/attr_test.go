package core

import (
	"math"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/trace"
)

// TestAttributionSumsToDelay is the core invariant: in additive mode
// the three attribution components sum to the final delay exactly
// (the winning path decomposes additively).
func TestAttributionSumsToDelay(t *testing.T) {
	cases := []struct {
		name  string
		model *Model
	}{
		{"noise-only", &Model{Seed: 1, OSNoise: dist.Exponential{MeanValue: 80}}},
		{"latency-only", &Model{Seed: 2, MsgLatency: dist.Exponential{MeanValue: 200}}},
		{"mixed", &Model{Seed: 3, OSNoise: dist.Exponential{MeanValue: 80},
			MsgLatency: dist.Exponential{MeanValue: 200}, PerByte: dist.Constant{C: 0.05}}},
	}
	workloadSets := func() []*trace.Set {
		return []*trace.Set{
			traceWorkload(t, machine.Config{NRanks: 6, Seed: 4}, ring(4, 512, 800)),
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, set := range workloadSets() {
				res, err := Analyze(set, tc.model, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for rank, rr := range res.Ranks {
					sum := rr.Attr.Total()
					if math.Abs(sum-rr.FinalDelay) > 1e-6*(1+math.Abs(rr.FinalDelay)) {
						t.Fatalf("rank %d: attribution sum %g != delay %g (%+v)",
							rank, sum, rr.FinalDelay, rr.Attr)
					}
				}
			}
		})
	}
}

func TestAttributionLatencyOnlyIsMsgDelta(t *testing.T) {
	set := traceWorkload(t, machine.Config{NRanks: 4, Seed: 5}, ring(3, 128, 500))
	res, err := Analyze(set, &Model{MsgLatency: dist.Constant{C: 300}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rr.Attr.OwnNoise != 0 || rr.Attr.RemoteNoise != 0 {
			t.Fatalf("rank %d: latency-only model attributed noise: %+v", rank, rr.Attr)
		}
		if rr.Attr.MsgDelta != rr.FinalDelay {
			t.Fatalf("rank %d: MsgDelta %g != delay %g", rank, rr.Attr.MsgDelta, rr.FinalDelay)
		}
	}
}

// TestAttributionSingleNoisyRank is the "one bad node" study: with
// per-rank noise on rank 2 only, rank 2's delay is OwnNoise and every
// other rank's delay is RemoteNoise — the blame points at the noisy
// node.
func TestAttributionSingleNoisyRank(t *testing.T) {
	const p = 6
	perRank := make([]dist.Distribution, p)
	perRank[2] = dist.Constant{C: 500}
	model := &Model{Seed: 6, RankOSNoise: perRank}

	set := traceWorkload(t, machine.Config{NRanks: p, Seed: 7}, ring(4, 128, 500))
	res, err := Analyze(set, model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2 := res.Ranks[2].Attr
	if r2.OwnNoise <= 0 {
		t.Fatalf("noisy rank has no own-noise attribution: %+v", r2)
	}
	for rank, rr := range res.Ranks {
		if rank == 2 {
			continue
		}
		if rr.FinalDelay <= 0 {
			t.Fatalf("rank %d: noisy neighbor's delay did not propagate", rank)
		}
		if rr.Attr.OwnNoise != 0 {
			t.Fatalf("rank %d: quiet rank attributed own noise %g", rank, rr.Attr.OwnNoise)
		}
		if rr.Attr.RemoteNoise != rr.FinalDelay {
			t.Fatalf("rank %d: remote-noise %g != delay %g", rank, rr.Attr.RemoteNoise, rr.FinalDelay)
		}
	}
}

// TestAttributionSingleNoisyRankCollectives repeats the bad-node study
// through collectives under both collective models.
func TestAttributionSingleNoisyRankCollectives(t *testing.T) {
	const p = 8
	perRank := make([]dist.Distribution, p)
	perRank[5] = dist.Constant{C: 1000}

	coll := func(r int) []trace.Record {
		c := rec(trace.KindAllreduce, 1_000, 2_000)
		c.Seq, c.CommSize, c.Bytes = 1, int32(p), 8
		return []trace.Record{
			rec(trace.KindInit, 0, 10), c, rec(trace.KindFinalize, 3_000, 3_000),
		}
	}
	for _, mode := range []CollectiveMode{CollectiveApprox, CollectiveExplicit} {
		perRankRecs := make([][]trace.Record, p)
		for r := 0; r < p; r++ {
			perRankRecs[r] = coll(r)
		}
		set := mkset(t, perRankRecs...)
		res, err := Analyze(set, &Model{Seed: 8, RankOSNoise: perRank, Collectives: mode}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for rank, rr := range res.Ranks {
			if rank == 5 {
				if rr.Attr.OwnNoise <= 0 {
					t.Fatalf("%s: noisy rank 5 attribution: %+v", mode, rr.Attr)
				}
				continue
			}
			if rr.FinalDelay > 0 && rr.Attr.RemoteNoise <= 0 {
				t.Fatalf("%s: rank %d delayed %g but remote-noise = %g",
					mode, rank, rr.FinalDelay, rr.Attr.RemoteNoise)
			}
			if rr.Attr.OwnNoise != 0 {
				t.Fatalf("%s: quiet rank %d has own noise %g", mode, rank, rr.Attr.OwnNoise)
			}
		}
	}
}

func TestRankOSNoiseFallback(t *testing.T) {
	// Entries beyond the slice or nil entries fall back to OSNoise.
	model := &Model{
		Seed:        9,
		OSNoise:     dist.Constant{C: 10},
		RankOSNoise: []dist.Distribution{dist.Constant{C: 100}}, // rank 0 only
	}
	set := traceWorkload(t, machine.Config{NRanks: 2, Seed: 10}, ring(2, 64, 500))
	res, err := Analyze(set, model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].InjectedLocal <= res.Ranks[1].InjectedLocal {
		t.Fatalf("per-rank override not applied: %g vs %g",
			res.Ranks[0].InjectedLocal, res.Ranks[1].InjectedLocal)
	}
	if res.Ranks[1].InjectedLocal == 0 {
		t.Fatal("fallback OSNoise not applied to rank 1")
	}
}

func TestModelZeroWithRankNoise(t *testing.T) {
	m := &Model{RankOSNoise: make([]dist.Distribution, 4)}
	if !m.Zero() {
		t.Fatal("all-nil per-rank noise should still be zero")
	}
	m.RankOSNoise[2] = dist.Constant{C: 1}
	if m.Zero() {
		t.Fatal("per-rank noise not detected by Zero()")
	}
}

func TestAttributionHelpers(t *testing.T) {
	a := Attribution{OwnNoise: 1, RemoteNoise: 2, MsgDelta: 3}
	if a.Total() != 6 {
		t.Fatalf("Total = %g", a.Total())
	}
	b := a.addOwn(4)
	if b.OwnNoise != 5 || a.OwnNoise != 1 {
		t.Fatal("addOwn should not mutate the receiver")
	}
	c := a.addMsg(7)
	if c.MsgDelta != 10 {
		t.Fatalf("addMsg = %+v", c)
	}
	r := a.asRemote()
	if r.OwnNoise != 0 || r.RemoteNoise != 3 || r.MsgDelta != 3 {
		t.Fatalf("asRemote = %+v", r)
	}
}
