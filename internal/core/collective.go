package core

import (
	"fmt"

	"mpgraph/internal/trace"
)

// completeCollective resolves a collective record. All participants
// stall until the last one arrives; the last arrival computes every
// participant's outbound contribution under the configured collective
// model and reschedules the others.
func (a *analyzer) completeCollective(rs *rankState, rec trace.Record) (float64, Attribution, bool, error) {
	key := collKey{comm: rec.Comm, seq: rec.Seq}
	cs := rs.myColl // a stalled participant resumes on its own instance
	if cs == nil {
		cs = a.colls[key]
	}
	if cs == nil {
		cs = &collState{
			kind:   rec.Kind,
			bytes:  rec.Bytes,
			expect: int(rec.CommSize),
			root:   rec.Root,
		}
		a.colls[key] = cs
		a.windowGrow()
	}
	if !rs.posted {
		if cs.kind != rec.Kind || cs.root != rec.Root {
			return 0, Attribution{}, false, fmt.Errorf("core: rank %d: collective mismatch at comm %d seq %d: %s/root=%d vs %s/root=%d",
				rs.rank, rec.Comm, rec.Seq, rec.Kind, rec.Root, cs.kind, cs.root)
		}
		if len(cs.parts) >= cs.expect {
			return 0, Attribution{}, false, fmt.Errorf("core: comm %d seq %d has more participants than its size %d",
				rec.Comm, rec.Seq, cs.expect)
		}
		cs.parts = append(cs.parts, collParticipant{
			rank:      rs.rank,
			startD:    rs.startD,
			startAttr: rs.startAttr,
			startRef:  NodeRef{Rank: rs.rank, Event: rs.eventIdx},
			endRef:    NodeRef{Rank: rs.rank, Event: rs.eventIdx, End: true},
			dur:       rec.Duration(),
		})
		rs.posted = true
		rs.myColl = cs
	}
	if len(cs.parts) < cs.expect {
		rs.why = fmt.Sprintf("%s comm=%d seq=%d (%d/%d arrived)",
			rec.Kind, rec.Comm, rec.Seq, len(cs.parts), cs.expect)
		return 0, Attribution{}, false, nil
	}
	if !cs.resolved {
		a.resolveCollective(cs)
		delete(a.colls, key)
		a.windowShrink()
		for i := range cs.parts {
			if cs.parts[i].rank != rs.rank {
				a.enqueue(cs.parts[i].rank)
			}
		}
		a.sinkCollective(cs)
	}
	// Find this rank's resolved contribution.
	for i := range cs.parts {
		p := &cs.parts[i]
		if p.rank == rs.rank {
			local := rs.startD
			remote := p.outD
			if a.model.Propagation == PropagationAnchored {
				remote -= float64(p.dur)
			}
			if a.merge(rs, local, remote) == remote && remote > local {
				if a.crit != nil {
					rs.critEnd = critStep{pred: p.outPredRef, predD: p.outPredD, kind: EdgeCollective, hasPred: true}
				}
				return remote, p.outAttr, true, nil
			}
			return local, rs.startAttr, true, nil
		}
	}
	return 0, Attribution{}, false, fmt.Errorf("core: rank %d lost its collective participation", rs.rank)
}

// resolveCollective computes each participant's outbound delay
// contribution under the configured model. Participants are processed
// in ascending world-rank order so sampling is deterministic.
func (a *analyzer) resolveCollective(cs *collState) {
	cs.resolved = true
	a.nColls++
	a.nCollEdges += int64(2*len(cs.parts) - 1) // Fig. 4 hub in/out edges
	// Sort participants by rank for deterministic sampling; arrival
	// order depends on scheduling.
	ordered := make([]*collParticipant, len(cs.parts))
	for i := range cs.parts {
		ordered[i] = &cs.parts[i]
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1].rank > ordered[j].rank; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	if cs.kind == trace.KindScan {
		// Scan's forward-only dependence has no Fig. 4 hub analog (the
		// hub would let later ranks delay earlier ones); the explicit
		// prefix chain is already compact (O(p)), so both modes use it.
		a.resolveExplicit(cs, ordered)
		return
	}
	switch a.model.Collectives {
	case CollectiveApprox:
		a.resolveApprox(cs, ordered)
	case CollectiveExplicit:
		a.resolveExplicit(cs, ordered)
	}
}

// resolveApprox is the paper's Fig. 4 model: every participant's
// inbound delay plus l_δ (ceil(log2 p) samples of noise+latency for
// the symmetric collectives; a single sample for the rooted ones, the
// paper's Reduce simplification) feeds a max that is propagated back
// to all participants.
func (a *analyzer) resolveApprox(cs *collState, ordered []*collParticipant) {
	p := len(ordered)
	rounds := ceilLog2(p)
	if cs.kind.IsRooted() {
		rounds = 1
	}
	lMax := 0.0
	var winner *collParticipant
	var winnerNoise, winnerMsg float64
	for _, part := range ordered {
		noise, msg := 0.0, 0.0
		for j := 0; j < rounds; j++ {
			noise += a.smp.osNoise(part.rank)
			msg += a.smp.latency()
			if a.model.CollectiveBytes {
				msg += a.smp.perByte(roundBytes(cs.kind, cs.bytes, j, p))
			}
		}
		if v := part.startD + noise + msg; v > lMax || winner == nil {
			lMax = v
			winner = part
			winnerNoise, winnerMsg = noise, msg
		}
	}
	cs.lMax = lMax
	winAttr := winner.startAttr.addOwn(winnerNoise).addMsg(winnerMsg)
	for _, part := range ordered {
		part.outD = lMax
		part.outPredRef = winner.startRef
		part.outPredD = winner.startD
		if part == winner {
			part.outAttr = winAttr
		} else {
			part.outAttr = winAttr.asRemote()
		}
	}
}

// resolveExplicit builds the collective's actual communication
// pattern in delay space: dissemination rounds for the symmetric
// collectives, binomial trees for Bcast/Reduce, linear exchanges for
// Gather/Scatter.
func (a *analyzer) resolveExplicit(cs *collState, ordered []*collParticipant) {
	p := len(ordered)
	D := make([]float64, p)
	A := make([]Attribution, p)
	// org tracks, per member, which participant's start subevent
	// anchors the member's current winning path (for critical-path
	// extraction); adoption chains inherit the source's origin.
	org := make([]int, p)
	rootIdx := 0
	for i, part := range ordered {
		n := a.smp.osNoise(part.rank)
		D[i] = part.startD + n
		A[i] = part.startAttr.addOwn(n)
		org[i] = i
		if cs.kind.IsRooted() && int32(part.rank) == cs.root {
			rootIdx = i
		}
	}
	// adopt folds a cross-member contribution into dst, reclassifying
	// the source's noise as remote.
	adopt := func(dst, src int, msg float64) {
		if v := D[src] + msg; v > D[dst] {
			D[dst] = v
			A[dst] = A[src].asRemote().addMsg(msg)
			org[dst] = org[src]
		}
	}
	bytesOf := func(round int) int64 { return roundBytes(cs.kind, cs.bytes, round, p) }
	msgDelta := func(round int) float64 {
		d := a.smp.latency()
		if a.model.CollectiveBytes {
			d += a.smp.perByte(bytesOf(round))
		}
		return d
	}
	switch cs.kind {
	case trace.KindBcast:
		for j := 0; (1 << uint(j)) < p; j++ {
			step := 1 << uint(j)
			for rel := 0; rel < step && rel+step < p; rel++ {
				src := (rel + rootIdx) % p
				dst := (rel + step + rootIdx) % p
				adopt(dst, src, msgDelta(j))
			}
		}
	case trace.KindReduce, trace.KindGather:
		// Children push toward the root; non-roots keep their own
		// delay (they complete after sending).
		if cs.kind == trace.KindGather {
			for i := range D {
				if i == rootIdx {
					continue
				}
				adopt(rootIdx, i, msgDelta(0))
			}
		} else {
			for j := 0; (1 << uint(j)) < p; j++ {
				step := 1 << uint(j)
				for rel := step; rel < p; rel += step << 1 {
					src := (rel + rootIdx) % p
					dst := (rel - step + rootIdx) % p
					adopt(dst, src, msgDelta(j))
				}
			}
		}
	case trace.KindScatter:
		for i := range D {
			if i == rootIdx {
				continue
			}
			adopt(i, rootIdx, msgDelta(0))
		}
	case trace.KindScan:
		// Prefix chain: member i adopts member i−1's delay — later
		// ranks inherit earlier ranks' perturbations, never the
		// reverse.
		for i := 1; i < p; i++ {
			adopt(i, i-1, msgDelta(0))
		}
	default: // dissemination for Barrier/Allreduce/Allgather/Alltoall/CommSplit
		rounds := ceilLog2(p)
		next := make([]float64, p)
		nextA := make([]Attribution, p)
		nextOrg := make([]int, p)
		for j := 0; j < rounds; j++ {
			step := (1 << uint(j)) % p
			for i := 0; i < p; i++ {
				src := (i - step + p) % p
				msg := msgDelta(j)
				if v := D[src] + msg; v > D[i] {
					next[i] = v
					nextA[i] = A[src].asRemote().addMsg(msg)
					nextOrg[i] = org[src]
				} else {
					next[i] = D[i]
					nextA[i] = A[i]
					nextOrg[i] = org[i]
				}
			}
			copy(D, next)
			copy(A, nextA)
			copy(org, nextOrg)
		}
	}
	for i, part := range ordered {
		part.outD = D[i]
		part.outAttr = A[i]
		part.outPredRef = ordered[org[i]].startRef
		part.outPredD = ordered[org[i]].startD
		if D[i] > cs.lMax {
			cs.lMax = D[i]
		}
	}
}

// CollectiveRounds is the number of rounds the compact (Fig. 4) model
// charges a p-participant collective: ceil(log2 p), minimum 1, for the
// symmetric collectives and a single round for the rooted ones (the
// paper's Reduce simplification). Exposed for the differential
// verification bounds, which must account for the DES baseline
// charging ceil(log2 p) rounds to every collective kind.
func CollectiveRounds(kind trace.Kind, p int) int {
	if kind.IsRooted() {
		return 1
	}
	return ceilLog2(p)
}

// CollectiveRoundBytes is the exported form of roundBytes: the payload
// the model attributes to one round of a collective.
func CollectiveRoundBytes(kind trace.Kind, bytes int64, round, p int) int64 {
	return roundBytes(kind, bytes, round, p)
}

// roundBytes is the payload attributed to one round of a collective.
func roundBytes(kind trace.Kind, bytes int64, round, p int) int64 {
	switch kind {
	case trace.KindBarrier, trace.KindCommSplit:
		return 0
	case trace.KindAllgather:
		return bytes << uint(round)
	case trace.KindAlltoall:
		r := ceilLog2(p)
		return bytes * int64(p) / int64(r)
	default:
		return bytes
	}
}

// ceilLog2 returns ceil(log2(p)), minimum 1.
func ceilLog2(p int) int {
	r := 0
	for (1 << uint(r)) < p {
		r++
	}
	if r == 0 {
		r = 1
	}
	return r
}

// sinkCollective emits the paper's Fig. 4 hub structure: an l_δ edge
// from every participant's start to the hub's end node, and an
// l_δmax edge from the hub's end back to every other participant's
// end.
func (a *analyzer) sinkCollective(cs *collState) {
	sink := a.opts.Graph
	if sink == nil {
		return
	}
	hub := &cs.parts[0]
	for i := range cs.parts {
		if cs.parts[i].rank < hub.rank {
			hub = &cs.parts[i]
		}
	}
	for i := range cs.parts {
		p := &cs.parts[i]
		sink.AddEdge(p.startRef, hub.endRef, EdgeCollective, 0, "l_delta")
		if p != hub {
			sink.AddEdge(hub.endRef, p.endRef, EdgeCollective, 0, "l_delta_max")
		}
	}
}
