package core

import (
	"fmt"

	"mpgraph/internal/trace"
)

// completeCollective resolves a collective record. All participants
// stall until the last one arrives; the last arrival computes every
// participant's outbound contribution under the configured collective
// model and reschedules the others.
func (a *analyzer) completeCollective(rs *rankState, rec trace.Record) (float64, Attribution, bool, error) {
	key := collKey{comm: rec.Comm, seq: rec.Seq}
	cs := rs.myColl // a stalled participant resumes on its own instance
	if cs == nil {
		cs = a.colls[key]
	}
	if cs == nil {
		cs = &collState{
			kind:   rec.Kind,
			bytes:  rec.Bytes,
			expect: int(rec.CommSize),
			root:   rec.Root,
		}
		a.colls[key] = cs
		a.windowGrow()
	}
	if !rs.posted {
		if cs.kind != rec.Kind || cs.root != rec.Root {
			return 0, Attribution{}, false, fmt.Errorf("core: rank %d: collective mismatch at comm %d seq %d: %s/root=%d vs %s/root=%d",
				rs.rank, rec.Comm, rec.Seq, rec.Kind, rec.Root, cs.kind, cs.root)
		}
		if len(cs.parts) >= cs.expect {
			return 0, Attribution{}, false, fmt.Errorf("core: comm %d seq %d has more participants than its size %d",
				rec.Comm, rec.Seq, cs.expect)
		}
		cs.parts = append(cs.parts, collParticipant{
			rank:      rs.rank,
			startD:    rs.startD,
			startAttr: rs.startAttr,
			startRef:  NodeRef{Rank: rs.rank, Event: rs.eventIdx},
			endRef:    NodeRef{Rank: rs.rank, Event: rs.eventIdx, End: true},
			dur:       rec.Duration(),
		})
		rs.posted = true
		rs.myColl = cs
	}
	if len(cs.parts) < cs.expect {
		rs.why = fmt.Sprintf("%s comm=%d seq=%d (%d/%d arrived)",
			rec.Kind, rec.Comm, rec.Seq, len(cs.parts), cs.expect)
		return 0, Attribution{}, false, nil
	}
	if !cs.resolved {
		a.resolveCollective(cs)
		delete(a.colls, key)
		a.windowShrink()
		for i := range cs.parts {
			if cs.parts[i].rank != rs.rank {
				a.enqueue(cs.parts[i].rank)
			}
		}
		a.sinkCollective(cs)
	}
	// Find this rank's resolved contribution.
	for i := range cs.parts {
		p := &cs.parts[i]
		if p.rank == rs.rank {
			local := rs.startD
			remote := p.outD
			if a.model.Propagation == PropagationAnchored {
				remote -= float64(p.dur)
			}
			a.merge(rs, local, remote)
			if remote > local {
				rs.ivWait, rs.ivState = remote-local, WaitCollective
				if a.crit != nil {
					rs.critEnd = critStep{pred: p.outPredRef, predD: p.outPredD, kind: EdgeCollective, hasPred: true}
				}
				return remote, p.outAttr, true, nil
			}
			return local, rs.startAttr, true, nil
		}
	}
	return 0, Attribution{}, false, fmt.Errorf("core: rank %d lost its collective participation", rs.rank)
}

// resolveCollective computes each participant's outbound delay
// contribution under the configured model. Participants are processed
// in ascending world-rank order so sampling is deterministic.
func (a *analyzer) resolveCollective(cs *collState) {
	cs.resolved = true
	a.nColls++
	a.nCollEdges += int64(2*len(cs.parts) - 1) // Fig. 4 hub in/out edges
	// Sort participants by rank for deterministic sampling; arrival
	// order depends on scheduling.
	ordered := make([]*collParticipant, len(cs.parts))
	for i := range cs.parts {
		ordered[i] = &cs.parts[i]
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1].rank > ordered[j].rank; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	if a.rec != nil {
		a.rec.onCollResolve(cs, ordered)
	}
	if cs.kind == trace.KindScan {
		// Scan's forward-only dependence has no Fig. 4 hub analog (the
		// hub would let later ranks delay earlier ones); the explicit
		// prefix chain is already compact (O(p)), so both modes use it.
		a.resolveExplicit(cs, ordered)
		return
	}
	switch a.model.Collectives {
	case CollectiveApprox:
		a.resolveApprox(cs, ordered)
	case CollectiveExplicit:
		a.resolveExplicit(cs, ordered)
	}
}

// collBufs sizes the analyzer's reusable kernel buffers for a
// p-participant collective and loads the inbound view.
func (a *analyzer) collBufs(ordered []*collParticipant) (in []collIn, outD []float64, outAttr []Attribution, outPred []int32) {
	p := len(ordered)
	if cap(a.collIn) < p {
		a.collIn = make([]collIn, p)
		a.collOutD = make([]float64, p)
		a.collOutAttr = make([]Attribution, p)
		a.collOutPred = make([]int32, p)
	}
	in = a.collIn[:p]
	for i, part := range ordered {
		in[i] = collIn{rank: part.rank, startD: part.startD, startAttr: part.startAttr}
	}
	return in, a.collOutD[:p], a.collOutAttr[:p], a.collOutPred[:p]
}

// applyCollOut copies the kernel outputs back onto the participants,
// resolving winner indices to node references.
func applyCollOut(ordered []*collParticipant, outD []float64, outAttr []Attribution, outPred []int32) {
	for i, part := range ordered {
		part.outD = outD[i]
		part.outAttr = outAttr[i]
		w := ordered[outPred[i]]
		part.outPredRef = w.startRef
		part.outPredD = w.startD
	}
}

// resolveApprox is the paper's Fig. 4 model (compute.go kernel,
// shared with the compiled replayer): every participant's inbound
// delay plus l_δ feeds a max that is propagated back to everyone.
func (a *analyzer) resolveApprox(cs *collState, ordered []*collParticipant) {
	in, outD, outAttr, outPred := a.collBufs(ordered)
	cs.lMax = resolveApproxKernel(a.smp, cs.kind, cs.bytes, in, outD, outAttr, outPred, 1)
	applyCollOut(ordered, outD, outAttr, outPred)
}

// resolveExplicit builds the collective's actual communication
// pattern in delay space (compute.go kernel): dissemination rounds
// for the symmetric collectives, binomial trees for Bcast/Reduce,
// linear exchanges for Gather/Scatter.
func (a *analyzer) resolveExplicit(cs *collState, ordered []*collParticipant) {
	in, outD, outAttr, outPred := a.collBufs(ordered)
	cs.lMax = resolveExplicitKernel(a.smp, cs.kind, cs.bytes, cs.root, in, &a.csc, outD, outAttr, outPred, 1)
	applyCollOut(ordered, outD, outAttr, outPred)
}

// CollectiveRounds is the number of rounds the compact (Fig. 4) model
// charges a p-participant collective: ceil(log2 p), minimum 1, for the
// symmetric collectives and a single round for the rooted ones (the
// paper's Reduce simplification). Exposed for the differential
// verification bounds, which must account for the DES baseline
// charging ceil(log2 p) rounds to every collective kind.
func CollectiveRounds(kind trace.Kind, p int) int {
	if kind.IsRooted() {
		return 1
	}
	return ceilLog2(p)
}

// CollectiveRoundBytes is the exported form of roundBytes: the payload
// the model attributes to one round of a collective.
func CollectiveRoundBytes(kind trace.Kind, bytes int64, round, p int) int64 {
	return roundBytes(kind, bytes, round, p)
}

// roundBytes is the payload attributed to one round of a collective.
//
//mpg:hotpath
func roundBytes(kind trace.Kind, bytes int64, round, p int) int64 {
	switch kind {
	case trace.KindBarrier, trace.KindCommSplit:
		return 0
	case trace.KindAllgather:
		return bytes << uint(round)
	case trace.KindAlltoall:
		r := ceilLog2(p)
		return bytes * int64(p) / int64(r)
	default:
		return bytes
	}
}

// ceilLog2 returns ceil(log2(p)), minimum 1.
//
//mpg:hotpath
func ceilLog2(p int) int {
	r := 0
	for (1 << uint(r)) < p {
		r++
	}
	if r == 0 {
		r = 1
	}
	return r
}

// sinkCollective emits the paper's Fig. 4 hub structure: an l_δ edge
// from every participant's start to the hub's end node, and an
// l_δmax edge from the hub's end back to every other participant's
// end.
func (a *analyzer) sinkCollective(cs *collState) {
	sink := a.opts.Graph
	if sink == nil {
		return
	}
	hub := &cs.parts[0]
	for i := range cs.parts {
		if cs.parts[i].rank < hub.rank {
			hub = &cs.parts[i]
		}
	}
	for i := range cs.parts {
		p := &cs.parts[i]
		sink.AddEdge(p.startRef, hub.endRef, EdgeCollective, 0, "l_delta")
		if p != hub {
			sink.AddEdge(hub.endRef, p.endRef, EdgeCollective, 0, "l_delta_max")
		}
	}
}
