package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// snapWorkload runs a named workload and snapshots its trace so the
// equivalence tests can analyze it any number of times.
func snapWorkload(t *testing.T, name string, nranks int, opts workloads.Options) *trace.Snapshot {
	t.Helper()
	prog, err := workloads.BuildByName(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return snapProgram(t, nranks, prog)
}

func snapProgram(t *testing.T, nranks int, prog mpi.Program) *trace.Snapshot {
	t.Helper()
	set := traceWorkload(t, machine.Config{NRanks: nranks, Seed: 7}, prog)
	snap, err := trace.NewSnapshot(set)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// collZoo exercises every collective kind, markers (region stats and
// the marker-switches-region-before-its-own-event rule), and mixed
// point-to-point traffic.
func collZoo(r *mpi.Rank) error {
	next := (r.Rank() + 1) % r.Size()
	prev := (r.Rank() + r.Size() - 1) % r.Size()
	r.Marker(1)
	r.Compute(500)
	r.Bcast(0, 1024)
	r.Reduce(1, 2048)
	r.Compute(300)
	r.Scan(64)
	r.Gather(2, 256)
	r.Scatter(0, 512)
	r.Allgather(128)
	r.Marker(2)
	r.Compute(200)
	r.Sendrecv(next, 0, 4096, prev, 0)
	r.Allreduce(8)
	r.Alltoall(64)
	r.Barrier()
	return nil
}

// equivalenceModels is the model grid the byte-identity tests sweep:
// sampled continuous noise, quantized noise with a per-rank override,
// heavy per-byte terms with collective payload charging, and negative
// perturbations exercising the §4.3 clamps.
func equivalenceModels() []*Model {
	base := []*Model{
		{Seed: 3}, // zero model
		{
			Seed:       11,
			OSNoise:    dist.Exponential{MeanValue: 60},
			MsgLatency: dist.Exponential{MeanValue: 250},
			PerByte:    dist.Exponential{MeanValue: 0.05},
		},
		{
			Seed:            12,
			OSNoise:         dist.Exponential{MeanValue: 40},
			RankOSNoise:     []dist.Distribution{nil, dist.Pareto{Xm: 100, Alpha: 1.8}},
			NoiseQuantum:    500,
			MsgLatency:      dist.Uniform{Low: 50, High: 400},
			PerByte:         dist.Constant{C: 0.02},
			CollectiveBytes: true,
		},
		{
			Seed:          13,
			OSNoise:       dist.Normal{Mu: 0, Sigma: 80},
			MsgLatency:    dist.Normal{Mu: 100, Sigma: 150},
			AllowNegative: true,
		},
	}
	var out []*Model
	for _, m := range base {
		for _, prop := range []PropagationMode{PropagationAdditive, PropagationAnchored} {
			for _, coll := range []CollectiveMode{CollectiveApprox, CollectiveExplicit} {
				mm := m.Clone()
				mm.Propagation = prop
				mm.Collectives = coll
				out = append(out, mm)
			}
		}
	}
	return out
}

func modelLabel(m *Model) string {
	return fmt.Sprintf("seed=%d/%s/%s/quant=%d/neg=%v",
		m.Seed, m.Propagation, m.Collectives, m.NoiseQuantum, m.AllowNegative)
}

// TestReplayCompiledMatchesAnalyze is the tentpole correctness pin:
// over every workload shape and model in the grid, ReplayCompiled must
// be byte-identical to Analyze — delays, attribution, region stats,
// order-violation clamps, warnings, critical path, and the trajectory
// stream. Each model replays twice so the pooled-state reuse path is
// exercised, not just the cold path.
func TestReplayCompiledMatchesAnalyze(t *testing.T) {
	snaps := map[string]*trace.Snapshot{
		"tokenring": snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 4}),
		"stencil1d": snapWorkload(t, "stencil1d", 8, workloads.Options{Iterations: 6, CollEvery: 2}),
		"bsp":       snapWorkload(t, "bsp", 6, workloads.Options{Iterations: 3}),
		"collzoo":   snapProgram(t, 6, collZoo),
	}
	for name, snap := range snaps {
		t.Run(name, func(t *testing.T) {
			set, release := snap.Acquire()
			c, err := Compile(set, Options{})
			release()
			if err != nil {
				t.Fatal(err)
			}
			if c.Events() != snap.Events() {
				t.Fatalf("compiled %d events, trace has %d", c.Events(), snap.Events())
			}
			for _, model := range equivalenceModels() {
				t.Run(modelLabel(model), func(t *testing.T) {
					var trajA []TrajectoryPoint
					set, release := snap.Acquire()
					want, err := Analyze(set, model, Options{
						RecordCritPath: true,
						Trajectory:     func(p TrajectoryPoint) { trajA = append(trajA, p) },
					})
					release()
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 2; i++ {
						var trajB []TrajectoryPoint
						got, err := ReplayCompiled(c, model, Options{
							RecordCritPath: true,
							Trajectory:     func(p TrajectoryPoint) { trajB = append(trajB, p) },
						})
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("replay %d diverged from Analyze:\n%s", i, diffResults(want, got))
						}
						if !reflect.DeepEqual(trajA, trajB) {
							t.Fatalf("replay %d trajectory diverged (%d vs %d points)", i, len(trajA), len(trajB))
						}
					}
				})
			}
		})
	}
}

// diffResults renders an actionable summary of the first fields that
// differ between two results.
func diffResults(want, got *Result) string {
	s := ""
	add := func(field string, a, b interface{}) {
		if !reflect.DeepEqual(a, b) {
			s += fmt.Sprintf("  %s: analyze=%v replay=%v\n", field, a, b)
		}
	}
	add("NRanks", want.NRanks, got.NRanks)
	add("Events", want.Events, got.Events)
	add("MaxFinalDelay", want.MaxFinalDelay, got.MaxFinalDelay)
	add("MeanFinalDelay", want.MeanFinalDelay, got.MeanFinalDelay)
	add("MakespanDelay", want.MakespanDelay, got.MakespanDelay)
	add("DelayStats", want.DelayStats, got.DelayStats)
	add("WindowHighWater", want.WindowHighWater, got.WindowHighWater)
	add("OrderViolations", want.OrderViolations, got.OrderViolations)
	add("Warnings", want.Warnings, got.Warnings)
	for r := 0; r < want.NRanks && r < got.NRanks; r++ {
		add(fmt.Sprintf("Ranks[%d]", r), want.Ranks[r], got.Ranks[r])
	}
	add("len(Regions)", len(want.Regions), len(got.Regions))
	for k, v := range want.Regions {
		if g, ok := got.Regions[k]; ok {
			add(fmt.Sprintf("Regions[%v]", k), *v, *g)
		} else {
			s += fmt.Sprintf("  Regions[%v]: missing in replay\n", k)
		}
	}
	add("CritPath", want.CritPath, got.CritPath)
	if s == "" {
		s = "  (results differ in unexpanded fields)\n"
	}
	return s
}

// TestReplayCompiledGraphSinkRejected: graph export needs the
// streaming engine; the compiled replayer must refuse, not silently
// skip.
func TestReplayCompiledGraphSinkRejected(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 4, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayCompiled(c, &Model{}, Options{Graph: discardSink{}}); err == nil {
		t.Fatal("expected an error for a graph sink on the compiled replayer")
	}
}

type discardSink struct{}

func (discardSink) AddNode(NodeRef, int64, trace.Record)              {}
func (discardSink) AddEdge(NodeRef, NodeRef, EdgeKind, int64, string) {}

// TestReplayCompiledConcurrent replays one compiled program from many
// goroutines with the same model; every result must be identical (the
// determinism claim behind parallel Monte Carlo). Run with -race.
func TestReplayCompiledConcurrent(t *testing.T) {
	snap := snapWorkload(t, "stencil1d", 8, workloads.Options{Iterations: 4, CollEvery: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	model := &Model{
		Seed:       21,
		OSNoise:    dist.Exponential{MeanValue: 50},
		MsgLatency: dist.Exponential{MeanValue: 200},
	}
	want, err := ReplayCompiled(c, model, Options{RecordCritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				got, err := ReplayCompiled(c, model, Options{RecordCritPath: true})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(want, got) {
					errs <- fmt.Errorf("concurrent replay diverged:\n%s", diffResults(want, got))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReplayCompiledAllocs pins the near-zero-allocation claim on the
// warm replay path. The expected steady state is ~6 allocations: the
// Result, its Ranks slice, the Regions map and its stats backing, and
// the timer/registry-free bookkeeping; the bound leaves headroom of
// roughly 2x for runtime/map internals so the guard fails on real
// regressions (per-event or per-message allocation would add
// thousands), not on Go version drift.
func TestReplayCompiledAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 8})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	model := &Model{
		Seed:       5,
		OSNoise:    dist.Exponential{MeanValue: 50},
		MsgLatency: dist.Exponential{MeanValue: 200},
	}
	// Warm the pool.
	if _, err := ReplayCompiled(c, model, Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ReplayCompiled(c, model, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Fatalf("warm ReplayCompiled allocates %.1f objects/replay; want <= 16", allocs)
	}
}

// TestReplayCompiledTimelineOffAllocs pins the timeline-off contract:
// a replay with no Interval sink stays inside the existing hot-path
// budget even when the same pooled state has previously serviced an
// interval-recording replay. The per-point IntervalPoint is stack-
// built only when the sink is set, so disabled runs pay nothing.
func TestReplayCompiledTimelineOffAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 8})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	model := &Model{
		Seed:       5,
		OSNoise:    dist.Exponential{MeanValue: 50},
		MsgLatency: dist.Exponential{MeanValue: 200},
	}
	// Warm the pool with an interval-recording replay so the guard also
	// proves recording leaves no allocation residue in the pooled state.
	sink := func(IntervalPoint) {}
	if _, err := ReplayCompiled(c, model, Options{Interval: sink}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ReplayCompiled(c, model, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Fatalf("warm timeline-off ReplayCompiled allocates %.1f objects/replay; want <= 16", allocs)
	}
}

// TestSnapshotAcquireAllocs pins Snapshot.Acquire's pooled reader
// path: ~3 allocations (the readers slice, the Set, the release
// closure) with 2x headroom.
func TestSnapshotAcquireAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 2})
	set, release := snap.Acquire() // warm the pool
	_ = set
	release()
	allocs := testing.AllocsPerRun(50, func() {
		set, release := snap.Acquire()
		_ = set
		release()
	})
	if allocs > 6 {
		t.Fatalf("warm Snapshot.Acquire allocates %.1f objects; want <= 6", allocs)
	}
}

// TestCompileConsumesSet documents single-use semantics: a Compile
// exhausts its Set exactly like Analyze does.
func TestCompileConsumesSet(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 4, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	defer release()
	if _, err := Compile(set, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(set, Options{}); err == nil {
		t.Fatal("expected the second Compile over one Set to fail (sets are single-use)")
	}
}
