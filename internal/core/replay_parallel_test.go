package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// parallelSnaps is the workload grid the parallel-replay pins sweep:
// same four shapes as TestReplayCompiledMatchesAnalyze, so the
// byte-identity chain Analyze == ReplayCompiled == ReplayParallel is
// closed over one corpus.
func parallelSnaps(t *testing.T) map[string]*trace.Snapshot {
	t.Helper()
	return map[string]*trace.Snapshot{
		"tokenring": snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 4}),
		"stencil1d": snapWorkload(t, "stencil1d", 8, workloads.Options{Iterations: 6, CollEvery: 2}),
		"bsp":       snapWorkload(t, "bsp", 6, workloads.Options{Iterations: 3}),
		"collzoo":   snapProgram(t, 6, collZoo),
	}
}

// TestReplayParallelMatchesCompiled is the tentpole correctness pin:
// across every workload shape, every model in the equivalence grid,
// and workers in {1, 2, 4, 8}, ReplayParallel must be byte-identical
// to ReplayCompiled — the full Result (delays, attribution, regions,
// order violations, warnings, critical path) plus the trajectory and
// interval streams. Each combo replays twice so pooled-state reuse is
// exercised, not just the cold path. Run with -race: the same test
// doubles as the data-race pin on the slab executor.
func TestReplayParallelMatchesCompiled(t *testing.T) {
	for name, snap := range parallelSnaps(t) {
		t.Run(name, func(t *testing.T) {
			set, release := snap.Acquire()
			c, err := Compile(set, Options{})
			release()
			if err != nil {
				t.Fatal(err)
			}
			for _, model := range equivalenceModels() {
				t.Run(modelLabel(model), func(t *testing.T) {
					var trajW []TrajectoryPoint
					var ivW []IntervalPoint
					want, err := ReplayCompiled(c, model, Options{
						RecordCritPath: true,
						Trajectory:     func(p TrajectoryPoint) { trajW = append(trajW, p) },
						Interval:       func(p IntervalPoint) { ivW = append(ivW, p) },
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 2, 4, 8} {
						for i := 0; i < 2; i++ {
							var trajG []TrajectoryPoint
							var ivG []IntervalPoint
							got, err := ReplayParallel(c, model, Options{
								RecordCritPath: true,
								Trajectory:     func(p TrajectoryPoint) { trajG = append(trajG, p) },
								Interval:       func(p IntervalPoint) { ivG = append(ivG, p) },
							}, workers)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(want, got) {
								t.Fatalf("workers=%d replay %d diverged from ReplayCompiled:\n%s",
									workers, i, diffResults(want, got))
							}
							if !reflect.DeepEqual(trajW, trajG) {
								t.Fatalf("workers=%d replay %d trajectory diverged (%d vs %d points)",
									workers, i, len(trajW), len(trajG))
							}
							if !reflect.DeepEqual(ivW, ivG) {
								t.Fatalf("workers=%d replay %d interval stream diverged (%d vs %d points)",
									workers, i, len(ivW), len(ivG))
							}
						}
					}
				})
			}
		})
	}
}

// TestReplayParallelConcurrent replays one compiled program from many
// goroutines at mixed worker counts; every result must equal the
// serial reference. Run with -race — this is the pin on concurrent
// ReplayParallel calls sharing one Compiled (plan caches, pools).
func TestReplayParallelConcurrent(t *testing.T) {
	snap := snapWorkload(t, "stencil1d", 8, workloads.Options{Iterations: 4, CollEvery: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	model := &Model{
		Seed:       21,
		OSNoise:    dist.Exponential{MeanValue: 50},
		MsgLatency: dist.Exponential{MeanValue: 200},
		PerByte:    dist.Exponential{MeanValue: 0.03},
	}
	want, err := ReplayCompiled(c, model, Options{RecordCritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			workers := []int{1, 2, 4, 8}[g%4]
			for i := 0; i < 8; i++ {
				got, err := ReplayParallel(c, model, Options{RecordCritPath: true}, workers)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(want, got) {
					errs <- fmt.Errorf("goroutine %d (workers=%d) replay %d diverged:\n%s",
						g, workers, i, diffResults(want, got))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// slabRank recovers the owning rank of a slab index from slabBase —
// the same recovery the level assignment uses.
func slabRank(p *parPlan, si int32) int {
	for r := 0; r+1 < len(p.slabBase); r++ {
		if p.slabBase[r] <= si && si < p.slabBase[r+1] {
			return r
		}
	}
	return -1
}

// TestParPlanProperties pins the slab planner's structural contract on
// every workload shape:
//
//   - Coverage: every non-match op appears in exactly one stream node,
//     streams are in ascending tape order, and slabs partition each
//     stream contiguously.
//   - Edge cutting: every cross-stream dependency targets the *last*
//     node of some slab (publication grants it), and every
//     dep-carrying node is the *first* node of its slab (the msg/coll
//     edge is cut at a slab boundary); same-rank edges carry no dep.
//   - Acyclicity: every dependency's producing slab has a strictly
//     smaller wavefront level than the consuming slab, and
//     nWavefronts is the maximum level + 1 — so the schedule is a
//     proper topological layering.
//   - Determinism: two independent builds of the plan are deeply equal.
func TestParPlanProperties(t *testing.T) {
	for name, snap := range parallelSnaps(t) {
		t.Run(name, func(t *testing.T) {
			set, release := snap.Acquire()
			c, err := Compile(set, Options{})
			release()
			if err != nil {
				t.Fatal(err)
			}
			p := c.parPlanOf()
			n := c.nranks

			// Coverage: each non-match op in exactly one node.
			nonMatch := 0
			for i := range c.ops {
				if c.ops[i].code != opMatch {
					nonMatch++
				}
			}
			if len(p.nodes) != nonMatch {
				t.Fatalf("plan has %d nodes, tape has %d non-match ops", len(p.nodes), nonMatch)
			}
			seen := make(map[int32]bool, len(p.nodes))
			for r := 0; r < n; r++ {
				stream := p.nodes[p.nodeBase[r]:p.nodeBase[r+1]]
				if int64(len(stream)) != p.targets[r] {
					t.Fatalf("rank %d: stream length %d != target %d", r, len(stream), p.targets[r])
				}
				for i, opIdx := range stream {
					if seen[opIdx] {
						t.Fatalf("op %d routed to two stream nodes", opIdx)
					}
					seen[opIdx] = true
					if c.ops[opIdx].code == opMatch {
						t.Fatalf("rank %d node %d is an opMatch; matches must not be scheduled", r, i)
					}
					if i > 0 && stream[i-1] >= opIdx {
						t.Fatalf("rank %d stream not in ascending tape order at node %d", r, i)
					}
				}
				// Slabs partition [0, len(stream)) contiguously.
				pos := int32(0)
				for _, sl := range p.slabs[p.slabBase[r]:p.slabBase[r+1]] {
					if sl.lo != pos || sl.hi <= sl.lo {
						t.Fatalf("rank %d: slab [%d,%d) does not continue partition at %d", r, sl.lo, sl.hi, pos)
					}
					pos = sl.hi
				}
				if int64(pos) != p.targets[r] {
					t.Fatalf("rank %d: slabs cover [0,%d), stream has %d nodes", r, pos, p.targets[r])
				}
			}

			// Edge cutting + acyclicity.
			slabOf := func(r int, pos int64) *parSlab {
				for i := p.slabBase[r]; i < p.slabBase[r+1]; i++ {
					if int64(p.slabs[i].lo) <= pos && pos < int64(p.slabs[i].hi) {
						return &p.slabs[i]
					}
				}
				t.Fatalf("rank %d position %d not covered by any slab", r, pos)
				return nil
			}
			for si := range p.slabs {
				sl := &p.slabs[si]
				r := slabRank(p, int32(si))
				if sl.depN > 0 && sl.lo != 0 {
					// The deps stored on a slab belong to its first node;
					// verify that node starts the slab (cut-before-dep).
					_ = r
				}
				for _, d := range p.deps[sl.depOff : sl.depOff+sl.depN] {
					if int(d.rank) == r {
						t.Fatalf("slab %d carries a same-rank dependency", si)
					}
					target := slabOf(int(d.rank), d.pos-1)
					if int64(target.hi) != d.pos {
						t.Fatalf("dep on rank %d pos %d does not target a slab-final node (slab ends at %d)",
							d.rank, d.pos, target.hi)
					}
					if target.level >= sl.level {
						t.Fatalf("dep target slab level %d >= consumer level %d: schedule not acyclic",
							target.level, sl.level)
					}
				}
			}
			maxLevel := int32(-1)
			for si := range p.slabs {
				if p.slabs[si].level > maxLevel {
					maxLevel = p.slabs[si].level
				}
			}
			if p.nWavefronts != int(maxLevel)+1 {
				t.Fatalf("nWavefronts=%d, max level=%d", p.nWavefronts, maxLevel)
			}

			// Every message/collective edge is either intra-stream or cut:
			// each cross-rank completion node must start its slab.
			for r := 0; r < n; r++ {
				stream := p.nodes[p.nodeBase[r]:p.nodeBase[r+1]]
				for i, opIdx := range stream {
					o := &c.ops[opIdx]
					cross := false
					switch o.code {
					case opEndSend:
						cross = int(c.msgs[o.arg].recvRank) != r
					case opEndRecv:
						cross = int(c.msgs[o.arg].sendRank) != r
					case opEndColl:
						cc := &c.colls[c.parts[o.arg].coll]
						cross = int(c.parts[cc.partOff].rank) != r
					case opCollResolve:
						cc := &c.colls[o.arg]
						for j := int32(0); j < cc.partN; j++ {
							if int(c.parts[cc.partOff+j].rank) != r {
								cross = true
							}
						}
					}
					if cross {
						sl := slabOf(r, int64(i))
						if int(sl.lo) != i {
							t.Fatalf("rank %d node %d (op %d, code %d) consumes a cross-rank edge but is mid-slab [%d,%d)",
								r, i, opIdx, o.code, sl.lo, sl.hi)
						}
					}
				}
			}

			// Determinism: an independent build is byte-equal.
			again := buildParPlan(c)
			if !reflect.DeepEqual(p, again) {
				t.Fatal("buildParPlan is not deterministic across builds")
			}
		})
	}
}

// TestDrawPlanLayout pins the draw plan invariants: collective spans
// are monotone and close the value array, every site writes a distinct
// slot, and independent builds agree.
func TestDrawPlanLayout(t *testing.T) {
	snap := snapProgram(t, 6, collZoo)
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []CollectiveMode{CollectiveApprox, CollectiveExplicit} {
		for _, bytes := range []bool{false, true} {
			key := drawPlanKey{mode: mode, bytes: bytes}
			p := buildDrawPlan(c, key)
			T := int(c.evBase[c.nranks])
			if p.endOff != T || p.msgOff != 2*T {
				t.Fatalf("%v: layout offsets endOff=%d msgOff=%d, want %d/%d", key, p.endOff, p.msgOff, T, 2*T)
			}
			if int(p.collOff[len(c.colls)]) != p.valsLen {
				t.Fatalf("%v: final collOff %d != valsLen %d", key, p.collOff[len(c.colls)], p.valsLen)
			}
			for i := 0; i < len(c.colls); i++ {
				if p.collOff[i] > p.collOff[i+1] {
					t.Fatalf("%v: collOff not monotone at %d", key, i)
				}
			}
			written := make(map[int32]bool, p.valsLen)
			for s, sites := range p.streams {
				for _, site := range sites {
					if site.dst < 0 || int(site.dst) >= p.valsLen {
						t.Fatalf("%v: stream %d site dst %d out of range [0,%d)", key, s, site.dst, p.valsLen)
					}
					if written[site.dst] {
						t.Fatalf("%v: slot %d written by two sites", key, site.dst)
					}
					written[site.dst] = true
				}
			}
			again := buildDrawPlan(c, key)
			if !reflect.DeepEqual(p, again) {
				t.Fatalf("%v: buildDrawPlan not deterministic", key)
			}
		}
	}
}

// TestReplayParallelGraphSinkRejected mirrors the ReplayCompiled rule:
// graph export needs the streaming engine.
func TestReplayParallelGraphSinkRejected(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 4, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayParallel(c, &Model{}, Options{Graph: discardSink{}}, 2); err == nil {
		t.Fatal("expected an error for a graph sink on the parallel replayer")
	}
}

// TestReplayParallelAllocs pins the amortized allocation budget of the
// warm parallel path at 4 workers: the Result trio (struct, Ranks,
// Regions map + stats backing) plus the per-run goroutine spawns and
// their closure captures. Worker goroutines dominate (~3 spawns × a
// few objects each); the bound leaves ~2x headroom so it catches
// per-slab or per-event allocation (which would add hundreds), not Go
// runtime drift.
func TestReplayParallelAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 8})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	model := &Model{
		Seed:       5,
		OSNoise:    dist.Exponential{MeanValue: 50},
		MsgLatency: dist.Exponential{MeanValue: 200},
	}
	// Warm the pool and the plan caches.
	if _, err := ReplayParallel(c, model, Options{}, 4); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ReplayParallel(c, model, Options{}, 4); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 48 {
		t.Fatalf("warm ReplayParallel allocates %.1f objects/replay; want <= 48", allocs)
	}
}
