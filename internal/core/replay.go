package core

import (
	"errors"
	"fmt"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// ReplayCompiled propagates a perturbation model over a compiled graph
// program. It is byte-identical to Analyze over the same trace with
// the same model and the same Options.Burst used at Compile time —
// same delays, same attribution, same critical path, same warnings —
// but performs zero parsing and zero matching, and (after the first
// replay warms the program's buffer pool) allocates only the returned
// Result. Concurrent replays of one Compiled program are safe; each
// borrows its own pooled state.
//
// Graph export requires the streaming engine: a non-nil opts.Graph is
// an error. opts.MaxWindow and opts.Burst have no effect at replay
// (the schedule was fixed at compile time).
//
//mpg:hotpath
func ReplayCompiled(c *Compiled, model *Model, opts Options) (*Result, error) {
	if opts.Graph != nil {
		return nil, errors.New("core: ReplayCompiled cannot feed a graph sink; use Analyze for graph export")
	}
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: the registry observes the replay but never feeds results back, and the nil-registry fast path is allocation-free
	defer opts.Metrics.Timer("core_replay_compiled").Start()()
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: spans observe the replay but never feed back into its results
	defer opts.Metrics.SpanStart("replay")()
	if model == nil {
		//mpg:lint-ignore hotpathalloc nil-model fallback; Monte Carlo callers always pass a model
		model = &Model{}
	}
	st := c.poolGet()
	if st == nil {
		//mpg:lint-ignore hotpathprop cold pool-miss path: the replay state is built once and recycled via the pool
		st = newReplayState(c)
		//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
		opts.Metrics.Counter("core_replay_pool_misses_total").Inc()
	} else {
		//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
		opts.Metrics.Counter("core_replay_pool_hits_total").Inc()
	}
	defer c.poolPut(st)
	st.reset(model)
	recordCrit := opts.RecordCritPath
	if recordCrit {
		//mpg:lint-ignore hotpathprop lazy one-time critical-path buffers, allocated on first use and recycled with the pooled state
		st.ensureCrit(c)
	}

	//mpg:lint-ignore hotpathalloc the returned Result is the replay's one documented allocation group (AllocsPerRun-guarded <= 16)
	res := &Result{
		NRanks:          c.nranks,
		Ranks:           make([]RankResult, c.nranks),
		Regions:         make(map[RegionKey]*RegionStats, len(c.regionKeys)),
		WindowHighWater: c.highWater,
	}

	// Per-replay draw specialization: when the model's laws are the
	// common concrete families (exponential noise and latency with no
	// per-rank overrides or quantization, constant per-byte), the op
	// sites below draw inline — the ziggurat fast path is then the only
	// call per draw, instead of threading every draw through the
	// sampler wrappers' per-draw dispatch. Both paths consume identical
	// RNG bits in identical order and keep identical draw counts, so
	// specialization is invisible to the result.
	smp := &st.smp
	noiseExp, fastNoise := model.OSNoise.(dist.Exponential)
	fastNoise = fastNoise && len(model.RankOSNoise) == 0 && model.NoiseQuantum <= 0
	latExp, fastLat := model.MsgLatency.(dist.Exponential)
	pbConst, fastPB := model.PerByte.(dist.Constant)
	fastMatch := fastNoise && fastLat && fastPB
	negOK := model.AllowNegative

	for i := range c.ops {
		o := &c.ops[i]
		switch o.code {
		case opBegin:
			rank := int(o.rank)
			var delta float64
			if fastNoise {
				if o.aux > 0 {
					smp.nNoise++
					delta = noiseExp.Sample(smp.rankRNG[rank])
					if delta < 0 && !negOK {
						delta = 0
					}
				}
			} else {
				delta = smp.computeNoise(rank, o.aux)
			}
			sD := st.prevD[rank] + delta
			sA := st.prevAttr[rank].addOwn(delta)
			res.Ranks[rank].InjectedLocal += delta
			if model.AllowNegative && o.started {
				// Order preservation (§4.3), as in beginRecord.
				if floor := st.prevD[rank] - float64(o.aux); sD < floor {
					sD = floor
					res.OrderViolations++
				}
			}
			gi := c.evBase[rank] + o.event
			st.startD[gi] = sD
			st.startAttr[gi] = sA
			if recordCrit {
				cs := critStep{d: sD, kind: EdgeLocal}
				if o.started {
					cs.pred = NodeRef{Rank: rank, Event: o.event - 1, End: true}
					cs.predD = st.prevD[rank]
					cs.hasPred = true
				}
				st.critStart[rank] = cs
			}

		case opMatch:
			m := &st.msgs[o.arg]
			cm := &c.msgs[o.arg]
			sgi := c.evBase[cm.sendRank] + cm.sendEvent
			rgi := c.evBase[cm.recvRank] + cm.recvEvent
			m.sendStartD = st.startD[sgi]
			m.sendAttr = st.startAttr[sgi]
			m.recvPostD = st.startD[rgi]
			m.recvAttr = st.startAttr[rgi]
			// Same draw order as resolveMatch.
			if fastMatch {
				smp.nMsg += 2
				v1 := latExp.Sample(smp.msgRNG)
				if v1 < 0 && !negOK {
					v1 = 0
				}
				var vb float64
				if cm.bytes > 0 {
					smp.nMsg++
					vb = pbConst.C * float64(cm.bytes)
					if vb < 0 && !negOK {
						vb = 0
					}
				}
				v2 := latExp.Sample(smp.msgRNG)
				if v2 < 0 && !negOK {
					v2 = 0
				}
				smp.nNoise++
				os2 := noiseExp.Sample(smp.rankRNG[cm.recvRank])
				if os2 < 0 && !negOK {
					os2 = 0
				}
				m.dLat1, m.dPerByte, m.dLat2, m.dOS2 = v1, vb, v2, os2
			} else {
				m.dLat1 = st.smp.latency()
				m.dPerByte = st.smp.perByte(cm.bytes)
				m.dLat2 = st.smp.latency()
				m.dOS2 = st.smp.osNoise(int(cm.recvRank))
			}
			m.resolveCompletion()

		case opCollResolve:
			st.resolveColl(c, o.arg, model)

		default: // end ops
			rank := int(o.rank)
			gi := c.evBase[rank] + o.event
			sD := st.startD[gi]
			sA := st.startAttr[gi]
			rr := &res.Ranks[rank]
			reg := &st.regions[o.region]
			var endD float64
			var endAttr Attribution
			var critEnd critStep
			var ivWait float64
			var ivState WaitState
			if recordCrit {
				// Default argmax: the event's own start subevent.
				critEnd = critStep{pred: NodeRef{Rank: rank, Event: o.event}, predD: sD, kind: EdgeLocal, hasPred: true}
			}
			switch o.code {
			case opEndMarker, opEndImmediate:
				endD, endAttr = sD, sA

			case opEndLocal:
				var delta float64
				if fastNoise {
					smp.nNoise++
					delta = noiseExp.Sample(smp.rankRNG[rank])
					if delta < 0 && !negOK {
						delta = 0
					}
				} else {
					delta = smp.osNoise(rank)
				}
				rr.InjectedLocal += delta
				endD, endAttr = combineLocalKernel(model.Propagation, sD, sA, delta, o.aux)

			case opEndSend:
				m := &st.msgs[o.arg]
				var dOS1 float64
				if fastNoise {
					smp.nNoise++
					dOS1 = noiseExp.Sample(smp.rankRNG[rank])
					if dOS1 < 0 && !negOK {
						dOS1 = 0
					}
				} else {
					dOS1 = smp.osNoise(rank)
				}
				rr.InjectedLocal += dOS1
				local, remote, localAttr, remoteAttr := sendCompletionKernel(
					model.Propagation, sD, sA, dOS1, o.aux, m)
				mergeStats(rr, reg, local, remote)
				if remote > local {
					endD, endAttr = remote, remoteAttr
					ivWait, ivState = remote-local, WaitLateReceiver
					if recordCrit {
						critEnd = st.msgCrit(c, o.arg)
					}
				} else {
					endD, endAttr = local, localAttr
				}

			case opEndRecv:
				m := &st.msgs[o.arg]
				rr.InjectedLocal += m.dOS2
				local, remote, localAttr, remoteAttr := recvCompletionKernel(
					model.Propagation, sD, sA, o.aux, m)
				mergeStats(rr, reg, local, remote)
				if remote > local {
					endD, endAttr = remote, remoteAttr
					ivWait, ivState = remote-local, WaitLateSender
					if recordCrit {
						if model.Propagation == PropagationAnchored {
							// Anchored receive: the remote path is always the
							// data arrival, never the receiver's own post.
							cm := &c.msgs[o.arg]
							critEnd = critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
						} else {
							critEnd = st.msgCrit(c, o.arg)
						}
					}
				} else {
					endD, endAttr = local, localAttr
				}

			case opEndColl:
				pi := o.arg
				pt := &c.parts[pi]
				local := sD
				remote := st.collOutD[pi]
				if model.Propagation == PropagationAnchored {
					remote -= float64(pt.dur)
				}
				mergeStats(rr, reg, local, remote)
				if remote > local {
					endD, endAttr = remote, st.collOutAttr[pi]
					ivWait, ivState = remote-local, WaitCollective
					if recordCrit {
						cc := &c.colls[pt.coll]
						wp := &c.parts[cc.partOff+st.collOutPred[pi]]
						wgi := c.evBase[wp.rank] + wp.event
						critEnd = critStep{pred: NodeRef{Rank: int(wp.rank), Event: wp.event}, predD: st.startD[wgi], kind: EdgeCollective, hasPred: true}
					}
				} else {
					endD, endAttr = local, sA
				}
			}

			// Commit, mirroring finishRecord.
			if model.AllowNegative {
				if floor := sD - float64(o.aux); endD < floor {
					endD = floor
					res.OrderViolations++
				}
			}
			if recordCrit {
				critEnd.d = endD
				//mpg:lint-ignore hotpathalloc appends into pooled critBack backing whose cap is the rank's full event count; never grows
				st.crit[rank] = append(st.crit[rank], critNode{start: st.critStart[rank], end: critEnd})
			}
			st.prevD[rank] = endD
			st.prevAttr[rank] = endAttr
			rr.Events++
			res.Events++
			res.DelayStats.Add(endD)
			//mpg:lint-ignore hotpathprop caller-supplied observation hook, invoked only when the caller opted in
			if opts.Trajectory != nil {
				opts.Trajectory(TrajectoryPoint{
					Rank:    rank,
					Event:   o.event,
					Kind:    o.kind,
					OrigEnd: o.origEnd,
					Delay:   endD,
					Region:  c.regionKeys[o.region].Region,
				})
			}
			//mpg:lint-ignore hotpathprop caller-supplied observation hook, invoked only when the caller opted in
			if opts.Interval != nil {
				p := IntervalPoint{
					Rank:       rank,
					Event:      o.event,
					Kind:       o.kind,
					OrigBegin:  o.origEnd - o.aux,
					OrigEnd:    o.origEnd,
					StartDelay: sD,
					EndDelay:   endD,
					Wait:       ivWait,
					State:      ivState,
					PeerRank:   -1,
				}
				if o.code == opEndRecv {
					cm := &c.msgs[o.arg]
					p.PeerRank = int(cm.sendRank)
					p.PeerEvent = cm.sendEvent
				}
				opts.Interval(p)
			}
			if !reg.firstSeen {
				reg.firstSeen = true
				reg.firstDelay = endD
			}
			reg.Events++
			reg.DelayGrowth = endD - reg.firstDelay
		}
	}

	for r := 0; r < c.nranks; r++ {
		rr := &res.Ranks[r]
		rr.OrigEnd = c.origEnd[r]
		rr.FinalDelay = st.prevD[r]
		rr.Attr = st.prevAttr[r]
	}
	if len(c.warnings) > 0 {
		//mpg:lint-ignore hotpathalloc warnings escape into the returned Result by design; part of the guarded budget
		res.Warnings = make([]string, len(c.warnings), len(c.warnings)+1)
		copy(res.Warnings, c.warnings)
	}
	//mpg:lint-ignore hotpathprop once-per-replay warning assembly after the event loop
	orderViolationWarning(res)
	res.finalize()
	// The Result must not reference pooled memory: region stats are
	// copied out into a fresh backing array.
	if len(c.regionKeys) > 0 {
		//mpg:lint-ignore hotpathalloc region stats escape into the returned Result by design; part of the guarded budget
		stats := make([]RegionStats, len(c.regionKeys))
		copy(stats, st.regions)
		for i, k := range c.regionKeys {
			res.Regions[k] = &stats[i]
		}
	}
	if recordCrit {
		//mpg:lint-ignore hotpathprop once-per-replay path reconstruction after the event loop
		res.CritPath = buildCritPath(res, st.crit)
	}
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: recorded after the event loop, never feeds back into replay results
	if m := opts.Metrics; m != nil {
		m.Counter("core_replays_total").Inc()
		m.Counter("core_events_total").Add(res.Events)
		m.Counter("core_edges_local_total").Add(c.nLocalEdges)
		m.Counter("core_edges_message_total").Add(c.nMsgEdges)
		m.Counter("core_edges_collective_total").Add(c.nCollEdges)
		m.Counter("core_matches_total").Add(c.nMatches)
		m.Counter("core_collectives_total").Add(c.nColls)
		m.Counter("core_samples_noise_total").Add(st.smp.nNoise)
		m.Counter("core_samples_message_total").Add(st.smp.nMsg)
		m.Gauge("core_window_high_water").SetMax(float64(c.highWater))
	}
	return res, nil
}

// replayState is the reusable per-replay working memory, pooled on the
// Compiled program. Everything here is either reset or fully
// overwritten each replay; nothing escapes into the returned Result.
type replayState struct {
	smp sampler
	// rngBacking holds the sampler's generator hierarchy in fork order:
	// the message stream first, then one generator per rank ascending —
	// the order newSampler forks them, so ForkHierarchyInto over
	// forkLabels reproduces its streams exactly.
	rngBacking []dist.RNG
	forkLabels []string // "messages", then precomputed "rank-%d" labels

	// Flat per-subevent delay state, indexed by evBase[rank]+event.
	startD    []float64
	startAttr []Attribution
	prevD     []float64
	prevAttr  []Attribution

	msgs []xfer // value half of each transfer, indexed like Compiled.msgs

	// Collective kernel buffers. The out arrays are indexed by global
	// participant index (like Compiled.parts) so resolved contributions
	// survive until each participant's end op consumes them.
	collIn      []collIn
	collOutD    []float64
	collOutAttr []Attribution
	collOutPred []int32
	csc         collScratch

	regions []RegionStats // dense, indexed like Compiled.regionKeys

	// Critical-path recording (lazy; only when RecordCritPath).
	critStart []critStep
	crit      [][]critNode
	critBack  []critNode
}

// poolGet and poolPut confine the analysis loader's stubbed sync.Pool
// type to one seam: Get's result is re-typed here, so the replay body
// downstream keeps statically resolvable method calls in the lint
// call graph instead of degrading to unprovable dynamic ones.
//
//mpg:hotpath
func (c *Compiled) poolGet() *replayState {
	//mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Get itself does not allocate (misses take the caller's cold path)
	st, _ := c.pool.Get().(*replayState)
	return st
}

//mpg:hotpath
func (c *Compiled) poolPut(st *replayState) {
	//mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Put does not allocate
	c.pool.Put(st)
}

func newReplayState(c *Compiled) *replayState {
	n := c.nranks
	total := c.evBase[n]
	st := &replayState{
		rngBacking:  make([]dist.RNG, n+1),
		forkLabels:  replayForkLabels(n),
		startD:      make([]float64, total),
		startAttr:   make([]Attribution, total),
		prevD:       make([]float64, n),
		prevAttr:    make([]Attribution, n),
		msgs:        make([]xfer, len(c.msgs)),
		collIn:      make([]collIn, c.maxParts),
		collOutD:    make([]float64, len(c.parts)),
		collOutAttr: make([]Attribution, len(c.parts)),
		collOutPred: make([]int32, len(c.parts)),
		regions:     make([]RegionStats, len(c.regionKeys)),
		critStart:   make([]critStep, n),
	}
	st.smp.msgRNG = &st.rngBacking[0]
	st.smp.rankRNG = make([]*dist.RNG, n)
	for r := 0; r < n; r++ {
		st.smp.rankRNG[r] = &st.rngBacking[r+1]
	}
	return st
}

// replayForkLabels precomputes the sampler hierarchy's fork labels in
// fork order: the shared message stream, then the per-rank streams
// ascending. Both the single and the batched replay states seed their
// generators by running dist.ForkHierarchyInto over this slice, which
// is what pins their streams to newSampler's.
func replayForkLabels(n int) []string {
	labels := make([]string, n+1)
	labels[0] = "messages"
	for r := 0; r < n; r++ {
		labels[r+1] = fmt.Sprintf("rank-%d", r)
	}
	return labels
}

// reset re-seeds the sampler hierarchy exactly as newSampler would
// (message stream forked first, then ranks ascending) and clears the
// per-replay accumulators. Per-subevent and per-transfer slots need no
// clearing: the tape writes every slot before reading it.
//
//mpg:hotpath
func (st *replayState) reset(m *Model) {
	st.smp.model = m
	st.smp.nNoise, st.smp.nMsg = 0, 0
	dist.ForkHierarchyInto(m.Seed, st.forkLabels, st.rngBacking)
	for r := range st.prevD {
		st.prevD[r] = 0
		st.prevAttr[r] = Attribution{}
	}
	for i := range st.regions {
		st.regions[i] = RegionStats{}
	}
}

// ensureCrit prepares the per-rank argmax recording slices over a
// single pooled backing array (full length is known from the program).
func (st *replayState) ensureCrit(c *Compiled) {
	if st.critBack == nil {
		st.critBack = make([]critNode, c.evBase[c.nranks])
		st.crit = make([][]critNode, c.nranks)
	}
	for r := 0; r < c.nranks; r++ {
		st.crit[r] = st.critBack[c.evBase[r]:c.evBase[r]:c.evBase[r+1]]
	}
}

// msgCrit is critRemoteMsg for the compiled engine: the winning
// message-edge predecessor of a transfer completion.
//
//mpg:hotpath
func (st *replayState) msgCrit(c *Compiled, idx int32) critStep {
	m := &st.msgs[idx]
	cm := &c.msgs[idx]
	if m.cRecvFromData {
		return critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
	}
	return critStep{pred: NodeRef{Rank: int(cm.recvRank), Event: cm.recvEvent}, predD: m.recvPostD, kind: EdgeMessage, hasPred: true}
}

// resolveColl runs the collective resolution kernel for one compiled
// collective, mirroring resolveCollective's mode dispatch.
//
//mpg:hotpath
func (st *replayState) resolveColl(c *Compiled, idx int32, model *Model) {
	cc := &c.colls[idx]
	p := int(cc.partN)
	in := st.collIn[:p]
	for j := 0; j < p; j++ {
		pt := &c.parts[int(cc.partOff)+j]
		gi := c.evBase[pt.rank] + pt.event
		in[j] = collIn{rank: int(pt.rank), startD: st.startD[gi], startAttr: st.startAttr[gi]}
	}
	outD := st.collOutD[cc.partOff : int(cc.partOff)+p]
	outAttr := st.collOutAttr[cc.partOff : int(cc.partOff)+p]
	outPred := st.collOutPred[cc.partOff : int(cc.partOff)+p]
	if cc.kind == trace.KindScan {
		// Scan always uses the explicit prefix chain (see
		// resolveCollective).
		resolveExplicitKernel(&st.smp, cc.kind, cc.bytes, cc.root, in, &st.csc, outD, outAttr, outPred, 1)
		return
	}
	switch model.Collectives {
	case CollectiveApprox:
		resolveApproxKernel(&st.smp, cc.kind, cc.bytes, in, outD, outAttr, outPred, 1)
	case CollectiveExplicit:
		resolveExplicitKernel(&st.smp, cc.kind, cc.bytes, cc.root, in, &st.csc, outD, outAttr, outPred, 1)
	default:
		// Unknown mode: the streaming engine resolves nothing; clear the
		// reused buffers so stale values from a prior replay can't leak.
		for j := range outD {
			outD[j], outAttr[j], outPred[j] = 0, Attribution{}, 0
		}
	}
}
