package core

import (
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// The //mpg:hotpath annotations (enforced by internal/analysis's
// hotpathalloc analyzer) promise that the shared propagation kernels
// never allocate on the warm path. These guards pin that promise:
// unlike the end-to-end ReplayCompiled budget they demand exactly
// zero, because a single stray allocation in a kernel multiplies by
// the event count and then by the Monte Carlo trial count.

func kernelSampler(nranks int) *sampler {
	return newSampler(&Model{
		Seed:            17,
		OSNoise:         dist.Exponential{MeanValue: 40},
		MsgLatency:      dist.Exponential{MeanValue: 150},
		PerByte:         dist.Constant{C: 0.02},
		CollectiveBytes: true,
	}, nranks)
}

// TestResolveExplicitKernelAllocs is the guard the lint suppressions
// on resolveExplicitKernel's closures point at: every explicit
// collective pattern resolves with zero allocations once the scratch
// is warm (so the adopt/bytesOf/msgDelta closures are stack-allocated,
// not heap-escaping environments).
func TestResolveExplicitKernelAllocs(t *testing.T) {
	const p = 8
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10), startAttr: Attribution{OwnNoise: float64(i)}}
	}
	sc := &collScratch{}
	outD := make([]float64, p)
	outAttr := make([]Attribution, p)
	outPred := make([]int32, p)
	kinds := []trace.Kind{
		trace.KindBarrier, trace.KindBcast, trace.KindReduce, trace.KindAllreduce,
		trace.KindGather, trace.KindAllgather, trace.KindScatter, trace.KindAlltoall,
		trace.KindScan, trace.KindCommSplit,
	}
	// Warm the scratch arrays once.
	resolveExplicitKernel(smp, trace.KindAllreduce, 1024, 0, in, sc, outD, outAttr, outPred)
	for _, kind := range kinds {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveExplicitKernel(smp, kind, 1024, 0, in, sc, outD, outAttr, outPred)
		})
		if allocs != 0 {
			t.Errorf("resolveExplicitKernel(%v) allocates %.1f objects/call; want 0", kind, allocs)
		}
	}
}

func TestResolveApproxKernelAllocs(t *testing.T) {
	const p = 8
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10)}
	}
	outD := make([]float64, p)
	outAttr := make([]Attribution, p)
	outPred := make([]int32, p)
	for _, kind := range []trace.Kind{trace.KindAllreduce, trace.KindReduce} {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveApproxKernel(smp, kind, 2048, in, outD, outAttr, outPred)
		})
		if allocs != 0 {
			t.Errorf("resolveApproxKernel(%v) allocates %.1f objects/call; want 0", kind, allocs)
		}
	}
}

// TestCompletionKernelAllocs covers the point-to-point kernels and the
// merge/attribution helpers in both propagation modes.
func TestCompletionKernelAllocs(t *testing.T) {
	x := &xfer{
		sendStartD: 100, recvPostD: 250,
		sendAttr: Attribution{OwnNoise: 30},
		recvAttr: Attribution{OwnNoise: 50},
		dLat1:    40, dPerByte: 10, dLat2: 25, dOS2: 5,
	}
	var rr RankResult
	var reg RegionStats
	for _, mode := range []PropagationMode{PropagationAdditive, PropagationAnchored} {
		mode := mode
		allocs := testing.AllocsPerRun(50, func() {
			x.resolveCompletion()
			local, remote, la, ra := sendCompletionKernel(mode, 120, Attribution{OwnNoise: 20}, 7, 90, x)
			_ = mergeStats(&rr, &reg, local, remote)
			local, remote, la, ra = recvCompletionKernel(mode, 140, Attribution{OwnNoise: 25}, 80, x)
			_ = mergeStats(&rr, &reg, local, remote)
			d, a := combineLocalKernel(mode, local, ra, 12, 60)
			_, _, _ = d, a, la
		})
		if allocs != 0 {
			t.Errorf("completion kernels (%v) allocate %.1f objects/iteration; want 0", mode, allocs)
		}
	}
}

// TestReplayStateResetAllocs pins the pooled replay state's re-seed
// path at zero: Reseed/ForkNamedInto write into the pooled rngBacking
// array instead of constructing generators.
func TestReplayStateResetAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	st := newReplayState(c)
	m := &Model{Seed: 23, OSNoise: dist.Exponential{MeanValue: 30}}
	st.reset(m)
	allocs := testing.AllocsPerRun(50, func() { st.reset(m) })
	if allocs != 0 {
		t.Errorf("replayState.reset allocates %.1f objects/call; want 0", allocs)
	}
}
