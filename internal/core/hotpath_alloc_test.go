package core

import (
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// The //mpg:hotpath annotations (enforced by internal/analysis's
// hotpathalloc analyzer) promise that the shared propagation kernels
// never allocate on the warm path. These guards pin that promise:
// unlike the end-to-end ReplayCompiled budget they demand exactly
// zero, because a single stray allocation in a kernel multiplies by
// the event count and then by the Monte Carlo trial count.

func kernelSampler(nranks int) *sampler {
	return newSampler(&Model{
		Seed:            17,
		OSNoise:         dist.Exponential{MeanValue: 40},
		MsgLatency:      dist.Exponential{MeanValue: 150},
		PerByte:         dist.Constant{C: 0.02},
		CollectiveBytes: true,
	}, nranks)
}

// TestResolveExplicitKernelAllocs is the guard the lint suppressions
// on resolveExplicitKernel's closures point at: every explicit
// collective pattern resolves with zero allocations once the scratch
// is warm (so the adopt/bytesOf/msgDelta closures are stack-allocated,
// not heap-escaping environments).
func TestResolveExplicitKernelAllocs(t *testing.T) {
	const p = 8
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10), startAttr: Attribution{OwnNoise: float64(i)}}
	}
	sc := &collScratch{}
	outD := make([]float64, p)
	outAttr := make([]Attribution, p)
	outPred := make([]int32, p)
	kinds := []trace.Kind{
		trace.KindBarrier, trace.KindBcast, trace.KindReduce, trace.KindAllreduce,
		trace.KindGather, trace.KindAllgather, trace.KindScatter, trace.KindAlltoall,
		trace.KindScan, trace.KindCommSplit,
	}
	// Warm the scratch arrays once.
	resolveExplicitKernel(smp, trace.KindAllreduce, 1024, 0, in, sc, outD, outAttr, outPred, 1)
	for _, kind := range kinds {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveExplicitKernel(smp, kind, 1024, 0, in, sc, outD, outAttr, outPred, 1)
		})
		if allocs != 0 {
			t.Errorf("resolveExplicitKernel(%v) allocates %.1f objects/call; want 0", kind, allocs)
		}
	}
}

func TestResolveApproxKernelAllocs(t *testing.T) {
	const p = 8
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10)}
	}
	outD := make([]float64, p)
	outAttr := make([]Attribution, p)
	outPred := make([]int32, p)
	for _, kind := range []trace.Kind{trace.KindAllreduce, trace.KindReduce} {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveApproxKernel(smp, kind, 2048, in, outD, outAttr, outPred, 1)
		})
		if allocs != 0 {
			t.Errorf("resolveApproxKernel(%v) allocates %.1f objects/call; want 0", kind, allocs)
		}
	}
}

// TestCompletionKernelAllocs covers the point-to-point kernels and the
// merge/attribution helpers in both propagation modes.
func TestCompletionKernelAllocs(t *testing.T) {
	x := &xfer{
		sendStartD: 100, recvPostD: 250,
		sendAttr: Attribution{OwnNoise: 30},
		recvAttr: Attribution{OwnNoise: 50},
		dLat1:    40, dPerByte: 10, dLat2: 25, dOS2: 5,
	}
	var rr RankResult
	var reg RegionStats
	for _, mode := range []PropagationMode{PropagationAdditive, PropagationAnchored} {
		mode := mode
		allocs := testing.AllocsPerRun(50, func() {
			x.resolveCompletion()
			local, remote, la, ra := sendCompletionKernel(mode, 120, Attribution{OwnNoise: 20}, 7, 90, x)
			_ = mergeStats(&rr, &reg, local, remote)
			local, remote, la, ra = recvCompletionKernel(mode, 140, Attribution{OwnNoise: 25}, 80, x)
			_ = mergeStats(&rr, &reg, local, remote)
			d, a := combineLocalKernel(mode, local, ra, 12, 60)
			_, _, _ = d, a, la
		})
		if allocs != 0 {
			t.Errorf("completion kernels (%v) allocate %.1f objects/iteration; want 0", mode, allocs)
		}
	}
}

// TestStridedKernelAllocs re-runs the collective kernels with the
// batch replayer's lane stride: a stride-K write pattern must stay as
// allocation-free as the dense stride-1 one.
func TestStridedKernelAllocs(t *testing.T) {
	const p, stride = 8, 4
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10), startAttr: Attribution{OwnNoise: float64(i)}}
	}
	sc := &collScratch{}
	outD := make([]float64, p*stride)
	outAttr := make([]Attribution, p*stride)
	outPred := make([]int32, p*stride)
	resolveExplicitKernel(smp, trace.KindAllreduce, 1024, 0, in, sc, outD, outAttr, outPred, stride)
	for _, kind := range []trace.Kind{trace.KindAllreduce, trace.KindBcast, trace.KindScan} {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveApproxKernel(smp, kind, 2048, in, outD, outAttr, outPred, stride)
			resolveExplicitKernel(smp, kind, 1024, 0, in, sc, outD, outAttr, outPred, stride)
		})
		if allocs != 0 {
			t.Errorf("stride-%d collective kernels (%v) allocate %.1f objects/call; want 0", stride, kind, allocs)
		}
	}
}

// TestMatchLanesKernelAllocs pins the batched opMatch fan-out at
// zero: K lanes of posts, draws, and completion resolution must touch
// only the preallocated lane-strided buffers.
func TestMatchLanesKernelAllocs(t *testing.T) {
	const K = 8
	smps := make([]sampler, K)
	rng := make([]dist.RNG, K*3)
	for k := 0; k < K; k++ {
		smps[k].model = &Model{
			Seed:       uint64(100 + k),
			OSNoise:    dist.Exponential{MeanValue: 40},
			MsgLatency: dist.Exponential{MeanValue: 150},
			PerByte:    dist.Constant{C: 0.02},
		}
		smps[k].msgRNG = &rng[k*3]
		smps[k].rankRNG = make([]*dist.RNG, 2)
		for r := 0; r < 2; r++ {
			smps[k].rankRNG[r] = &rng[k*3+1+r]
		}
		dist.ForkHierarchyInto(uint64(100+k), replayForkLabels(2), rng[k*3:(k+1)*3])
	}
	ms := make([]xfer, K)
	sendD := make([]float64, K)
	sendA := make([]Attribution, K)
	recvD := make([]float64, K)
	recvA := make([]Attribution, K)
	for k := range sendD {
		sendD[k] = float64(k * 7)
		recvD[k] = float64(k * 11)
	}
	allocs := testing.AllocsPerRun(50, func() {
		matchLanesKernel(smps, ms, sendD, sendA, recvD, recvA, 4096, 1)
	})
	if allocs != 0 {
		t.Errorf("matchLanesKernel allocates %.1f objects/call; want 0", allocs)
	}
}

// TestBatchStateResetAllocs pins the pooled batch state's re-seed
// path at zero: K sampler hierarchies re-seed in place via
// ForkHierarchyInto, no generator is constructed.
func TestBatchStateResetAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	models := make([]*Model, K)
	for k := range models {
		models[k] = &Model{Seed: uint64(50 + k), OSNoise: dist.Exponential{MeanValue: 30}}
	}
	st := newBatchState(c, K)
	st.reset(models)
	allocs := testing.AllocsPerRun(50, func() { st.reset(models) })
	if allocs != 0 {
		t.Errorf("batchState.reset allocates %.1f objects/call; want 0", allocs)
	}
}

// TestReplayBatchAllocs pins the warm batched replay at the same
// per-lane budget as ReplayCompiled: the only allocations are the K
// returned Results (and their rank/region backing), never per-event
// or per-lane-per-event work.
func TestReplayBatchAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 8})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	models := make([]*Model, K)
	for k := range models {
		models[k] = &Model{
			Seed:       uint64(5 + k),
			OSNoise:    dist.Exponential{MeanValue: 50},
			MsgLatency: dist.Exponential{MeanValue: 200},
		}
	}
	// Warm the batch pool.
	if _, err := ReplayBatch(c, models, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ReplayBatch(c, models, BatchOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16*K {
		t.Fatalf("warm ReplayBatch(K=%d) allocates %.1f objects/batch; want <= %d", K, allocs, 16*K)
	}
}

// TestReplayStateResetAllocs pins the pooled replay state's re-seed
// path at zero: Reseed/ForkNamedInto write into the pooled rngBacking
// array instead of constructing generators.
func TestReplayStateResetAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	st := newReplayState(c)
	m := &Model{Seed: 23, OSNoise: dist.Exponential{MeanValue: 30}}
	st.reset(m)
	allocs := testing.AllocsPerRun(50, func() { st.reset(m) })
	if allocs != 0 {
		t.Errorf("replayState.reset allocates %.1f objects/call; want 0", allocs)
	}
}
