package core

import (
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// The //mpg:hotpath annotations (enforced by internal/analysis's
// hotpathalloc analyzer) promise that the shared propagation kernels
// never allocate on the warm path. These guards pin that promise:
// unlike the end-to-end ReplayCompiled budget they demand exactly
// zero, because a single stray allocation in a kernel multiplies by
// the event count and then by the Monte Carlo trial count.

func kernelSampler(nranks int) *sampler {
	return newSampler(&Model{
		Seed:            17,
		OSNoise:         dist.Exponential{MeanValue: 40},
		MsgLatency:      dist.Exponential{MeanValue: 150},
		PerByte:         dist.Constant{C: 0.02},
		CollectiveBytes: true,
	}, nranks)
}

// TestResolveExplicitKernelAllocs is the guard the lint suppressions
// on resolveExplicitKernel's closures point at: every explicit
// collective pattern resolves with zero allocations once the scratch
// is warm (so the adopt/bytesOf/msgDelta closures are stack-allocated,
// not heap-escaping environments).
func TestResolveExplicitKernelAllocs(t *testing.T) {
	const p = 8
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10), startAttr: Attribution{OwnNoise: float64(i)}}
	}
	sc := &collScratch{}
	outD := make([]float64, p)
	outAttr := make([]Attribution, p)
	outPred := make([]int32, p)
	kinds := []trace.Kind{
		trace.KindBarrier, trace.KindBcast, trace.KindReduce, trace.KindAllreduce,
		trace.KindGather, trace.KindAllgather, trace.KindScatter, trace.KindAlltoall,
		trace.KindScan, trace.KindCommSplit,
	}
	// Warm the scratch arrays once.
	resolveExplicitKernel(smp, trace.KindAllreduce, 1024, 0, in, sc, outD, outAttr, outPred, 1)
	for _, kind := range kinds {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveExplicitKernel(smp, kind, 1024, 0, in, sc, outD, outAttr, outPred, 1)
		})
		if allocs != 0 {
			t.Errorf("resolveExplicitKernel(%v) allocates %.1f objects/call; want 0", kind, allocs)
		}
	}
}

func TestResolveApproxKernelAllocs(t *testing.T) {
	const p = 8
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10)}
	}
	outD := make([]float64, p)
	outAttr := make([]Attribution, p)
	outPred := make([]int32, p)
	for _, kind := range []trace.Kind{trace.KindAllreduce, trace.KindReduce} {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveApproxKernel(smp, kind, 2048, in, outD, outAttr, outPred, 1)
		})
		if allocs != 0 {
			t.Errorf("resolveApproxKernel(%v) allocates %.1f objects/call; want 0", kind, allocs)
		}
	}
}

// TestCompletionKernelAllocs covers the point-to-point kernels and the
// merge/attribution helpers in both propagation modes.
func TestCompletionKernelAllocs(t *testing.T) {
	x := &xfer{
		sendStartD: 100, recvPostD: 250,
		sendAttr: Attribution{OwnNoise: 30},
		recvAttr: Attribution{OwnNoise: 50},
		dLat1:    40, dPerByte: 10, dLat2: 25, dOS2: 5,
	}
	var rr RankResult
	var reg RegionStats
	for _, mode := range []PropagationMode{PropagationAdditive, PropagationAnchored} {
		mode := mode
		allocs := testing.AllocsPerRun(50, func() {
			x.resolveCompletion()
			local, remote, la, ra := sendCompletionKernel(mode, 120, Attribution{OwnNoise: 20}, 7, 90, x)
			_ = mergeStats(&rr, &reg, local, remote)
			local, remote, la, ra = recvCompletionKernel(mode, 140, Attribution{OwnNoise: 25}, 80, x)
			_ = mergeStats(&rr, &reg, local, remote)
			d, a := combineLocalKernel(mode, local, ra, 12, 60)
			_, _, _ = d, a, la
		})
		if allocs != 0 {
			t.Errorf("completion kernels (%v) allocate %.1f objects/iteration; want 0", mode, allocs)
		}
	}
}

// TestStridedKernelAllocs re-runs the collective kernels with the
// batch replayer's lane stride: a stride-K write pattern must stay as
// allocation-free as the dense stride-1 one.
func TestStridedKernelAllocs(t *testing.T) {
	const p, stride = 8, 4
	smp := kernelSampler(p)
	in := make([]collIn, p)
	for i := range in {
		in[i] = collIn{rank: i, startD: float64(i * 10), startAttr: Attribution{OwnNoise: float64(i)}}
	}
	sc := &collScratch{}
	outD := make([]float64, p*stride)
	outAttr := make([]Attribution, p*stride)
	outPred := make([]int32, p*stride)
	resolveExplicitKernel(smp, trace.KindAllreduce, 1024, 0, in, sc, outD, outAttr, outPred, stride)
	for _, kind := range []trace.Kind{trace.KindAllreduce, trace.KindBcast, trace.KindScan} {
		kind := kind
		allocs := testing.AllocsPerRun(20, func() {
			resolveApproxKernel(smp, kind, 2048, in, outD, outAttr, outPred, stride)
			resolveExplicitKernel(smp, kind, 1024, 0, in, sc, outD, outAttr, outPred, stride)
		})
		if allocs != 0 {
			t.Errorf("stride-%d collective kernels (%v) allocate %.1f objects/call; want 0", stride, kind, allocs)
		}
	}
}

// drawTestBatchState hand-builds a minimal K-lane batch state over n
// ranks (stream-major rng layout, seeded, plan built) without needing
// a Compiled program, so the draw kernels can be pinned in isolation.
func drawTestBatchState(t *testing.T, models []*Model, n int) *batchState {
	t.Helper()
	K := len(models)
	st := &batchState{
		K:          K,
		smps:       make([]sampler, K),
		rng:        make([]dist.RNG, K*(n+1)),
		forkLabels: replayForkLabels(n),
		noiseB:     make([]dist.BatchSampler, n),
		noiseZero:  make([]bool, n),
		laneBuf:    make([]float64, 4*K),
	}
	for k := 0; k < K; k++ {
		st.smps[k].model = models[k]
		st.smps[k].msgRNG = &st.rng[k]
		st.smps[k].rankRNG = make([]*dist.RNG, n)
		for r := 0; r < n; r++ {
			st.smps[k].rankRNG[r] = &st.rng[(1+r)*K+k]
		}
		dist.ForkHierarchyIntoStride(models[k].Seed, st.forkLabels, st.rng[k:], K)
	}
	st.planDraws(models)
	return st
}

// TestMatchLanesAllocs pins the batched opMatch fan-out at zero: K
// lanes of posts, column-wise draws, and completion resolution must
// touch only the preallocated lane-strided buffers — on both the
// vectorized path (all lanes share one batchable distribution) and the
// scalar fallback (heterogeneous models).
func TestMatchLanesAllocs(t *testing.T) {
	const K = 8
	shared := make([]*Model, K)
	mixed := make([]*Model, K)
	for k := 0; k < K; k++ {
		shared[k] = &Model{
			Seed:       uint64(100 + k),
			OSNoise:    dist.Exponential{MeanValue: 40},
			MsgLatency: dist.Exponential{MeanValue: 150},
			PerByte:    dist.Constant{C: 0.02},
		}
		// Per-lane latency means defeat the shared-value plan, forcing
		// the per-lane scalar draw path.
		mixed[k] = &Model{
			Seed:       uint64(200 + k),
			OSNoise:    dist.Exponential{MeanValue: 40},
			MsgLatency: dist.Exponential{MeanValue: float64(150 + k)},
			PerByte:    dist.Constant{C: 0.02},
		}
	}
	for _, tc := range []struct {
		name   string
		models []*Model
	}{{"vectorized", shared}, {"scalar-fallback", mixed}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			st := drawTestBatchState(t, tc.models, 2)
			ms := make([]xfer, K)
			sendD := make([]float64, K)
			sendA := make([]Attribution, K)
			recvD := make([]float64, K)
			recvA := make([]Attribution, K)
			for k := range sendD {
				sendD[k] = float64(k * 7)
				recvD[k] = float64(k * 11)
			}
			allocs := testing.AllocsPerRun(50, func() {
				st.matchLanes(ms, sendD, sendA, recvD, recvA, 4096, 1)
			})
			if allocs != 0 {
				t.Errorf("matchLanes allocates %.1f objects/call; want 0", allocs)
			}
		})
	}
}

// TestBatchDrawLanesAllocs pins each column-wise draw kernel at zero
// allocations, including the interface-to-interface plan dispatch.
func TestBatchDrawLanesAllocs(t *testing.T) {
	const K = 8
	models := make([]*Model, K)
	for k := 0; k < K; k++ {
		models[k] = &Model{
			Seed:       uint64(300 + k),
			OSNoise:    dist.Normal{Mu: 50, Sigma: 20},
			MsgLatency: dist.Exponential{MeanValue: 150},
			PerByte:    dist.Uniform{Low: 0.01, High: 0.03},
		}
	}
	st := drawTestBatchState(t, models, 2)
	dst := make([]float64, K)
	allocs := testing.AllocsPerRun(100, func() {
		st.drawNoiseLanes(1, dst)
		st.drawComputeNoiseLanes(0, 512, dst)
		st.drawLatencyLanes(dst)
		st.drawPerByteLanes(4096, dst)
	})
	if allocs != 0 {
		t.Errorf("batch draw kernels allocate %.1f objects/iteration; want 0", allocs)
	}
}

// TestSampleFastAllocs pins the devirtualized scalar draw helper: the
// type switch must not box, and the ziggurat draws must stay on the
// stack for every devirtualized family.
func TestSampleFastAllocs(t *testing.T) {
	r := dist.NewRNG(11)
	dists := []dist.Distribution{
		dist.Exponential{MeanValue: 100},
		dist.Normal{Mu: 0, Sigma: 1},
		dist.Uniform{Low: 0, High: 1},
		dist.Constant{C: 3},
		dist.LogNormal{Mu: 0, Sigma: 0.5}, // default branch
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		for _, d := range dists {
			sink += sampleFast(d, r)
		}
	})
	if allocs != 0 {
		t.Errorf("sampleFast allocates %.1f objects/iteration; want 0", allocs)
	}
	_ = sink
}

// TestBatchStateResetAllocs pins the pooled batch state's re-seed
// path at zero: K sampler hierarchies re-seed in place via
// ForkHierarchyInto, no generator is constructed.
func TestBatchStateResetAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	models := make([]*Model, K)
	for k := range models {
		models[k] = &Model{Seed: uint64(50 + k), OSNoise: dist.Exponential{MeanValue: 30}}
	}
	st := newBatchState(c, K)
	st.reset(models)
	allocs := testing.AllocsPerRun(50, func() { st.reset(models) })
	if allocs != 0 {
		t.Errorf("batchState.reset allocates %.1f objects/call; want 0", allocs)
	}
}

// TestReplayBatchAllocs pins the warm batched replay at the same
// per-lane budget as ReplayCompiled: the only allocations are the K
// returned Results (and their rank/region backing), never per-event
// or per-lane-per-event work.
func TestReplayBatchAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 8})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	models := make([]*Model, K)
	for k := range models {
		models[k] = &Model{
			Seed:       uint64(5 + k),
			OSNoise:    dist.Exponential{MeanValue: 50},
			MsgLatency: dist.Exponential{MeanValue: 200},
		}
	}
	// Warm the batch pool.
	if _, err := ReplayBatch(c, models, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ReplayBatch(c, models, BatchOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16*K {
		t.Fatalf("warm ReplayBatch(K=%d) allocates %.1f objects/batch; want <= %d", K, allocs, 16*K)
	}
}

// TestReplayStateResetAllocs pins the pooled replay state's re-seed
// path at zero: Reseed/ForkNamedInto write into the pooled rngBacking
// array instead of constructing generators.
func TestReplayStateResetAllocs(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	st := newReplayState(c)
	m := &Model{Seed: 23, OSNoise: dist.Exponential{MeanValue: 30}}
	st.reset(m)
	allocs := testing.AllocsPerRun(50, func() { st.reset(m) })
	if allocs != 0 {
		t.Errorf("replayState.reset allocates %.1f objects/call; want 0", allocs)
	}
}
