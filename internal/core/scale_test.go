package core

import (
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/mpi"
	"mpgraph/internal/workloads"
)

// TestLargeTraceStreams drives a ~300k-event, 128-rank trace through
// the analyzer and checks the §4.2/§6 scalability claims: the window
// stays tiny relative to the trace and the whole analysis completes
// in well under test-timeout territory.
func TestLargeTraceStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("large trace test skipped in -short mode")
	}
	prog, err := workloads.BuildByName("stencil1d",
		workloads.Options{Iterations: 300, CollEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	run, err := mpi.Run(mpi.Config{Machine: machine.Config{NRanks: 128, Seed: 1}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	set, err := run.TraceSet()
	if err != nil {
		t.Fatal(err)
	}
	model := &Model{
		Seed:       1,
		OSNoise:    dist.Exponential{MeanValue: 50},
		MsgLatency: dist.Exponential{MeanValue: 200},
	}
	res, err := Analyze(set, model, Options{Burst: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 300_000 {
		t.Fatalf("expected >= 300k events, got %d", res.Events)
	}
	// The window must be a tiny fraction of the trace: bounded by
	// in-flight operations, not by length.
	if res.WindowHighWater > 2_000 {
		t.Fatalf("window high water %d for %d events — streaming claim violated",
			res.WindowHighWater, res.Events)
	}
	if res.MaxFinalDelay <= 0 {
		t.Fatal("no delay propagated")
	}
	t.Logf("events=%d window=%d max-delay=%.0f", res.Events, res.WindowHighWater, res.MaxFinalDelay)
}
