package core

import (
	"sync"

	"mpgraph/internal/trace"
)

// Compile-once, replay-many.
//
// Matching is sample-invariant (§4.1): which send pairs with which
// receive, which events form a collective, and the order in which the
// analyzer resolves them depend only on the trace's execution order
// and Options.Burst — never on sampled perturbation values (samples
// feed delays; delays never feed control flow). One zero-model
// streaming pass can therefore record the analyzer's entire execution
// schedule as a flat instruction tape; replaying the tape under any
// perturbation model performs exactly the sample draws and max()
// merges Analyze would, in the same order, with zero re-parsing and
// zero re-matching.

// opCode enumerates compiled-program instructions.
type opCode uint8

const (
	// opBegin is a record's start subevent: compute-gap noise draw,
	// order clamp, crit-path start step.
	opBegin opCode = iota
	// opEndLocal ends an Init/Finalize record: one osNoise draw folded
	// by combineLocalKernel.
	opEndLocal
	// opEndMarker ends a Marker record: no draw, end = start.
	opEndMarker
	// opEndImmediate ends an Isend/Irecv record: no draw, end = start
	// (Eq. 2 immediate return).
	opEndImmediate
	// opEndSend ends a blocking Send or a wait on an Isend; arg is the
	// transfer index.
	opEndSend
	// opEndRecv ends a blocking Recv or a wait on an Irecv; arg is the
	// transfer index.
	opEndRecv
	// opEndColl ends a collective record; arg is the global
	// participant index.
	opEndColl
	// opMatch resolves a point-to-point match (four sample draws);
	// arg is the transfer index.
	opMatch
	// opCollResolve resolves a complete collective (per-participant
	// draws in ascending-rank order); arg is the collective index.
	opCollResolve
)

// op is one instruction of the compiled program. Ops appear in the
// exact order the streaming analyzer executed them, which fixes the
// global RNG draw schedule, the Welford accumulation order, and the
// Trajectory emission order.
type op struct {
	code    opCode
	kind    uint8 // trace.Kind of the record (end ops; Trajectory)
	started bool  // begin: the rank had a predecessor event
	rank    int32
	region  int32 // dense region index (end ops)
	arg     int32 // transfer/collective/participant index (see opCode)
	event   int64 // rank-local record index
	aux     int64 // begin: compute gap; end ops: traced duration
	origEnd int64 // end ops: traced end time (Trajectory)
}

// compiledMsg is the structural half of one matched point-to-point
// transfer; the value half is an xfer slot in the replay state.
type compiledMsg struct {
	sendRank, recvRank   int32
	sendEvent, recvEvent int64
	bytes                int64
}

// compiledColl is one collective instance; its participants occupy
// parts[partOff : partOff+partN] in ascending world-rank order (the
// order the resolution kernels draw samples in).
type compiledColl struct {
	kind    trace.Kind
	bytes   int64
	root    int32
	partOff int32
	partN   int32
}

// compiledCollPart is one rank's participation in a collective.
type compiledCollPart struct {
	coll  int32
	rank  int32
	event int64
	dur   int64
}

// Compiled is an immutable, flat graph program: the structural half of
// an analysis (subevent layout, matched transfers, collective groups,
// the execution schedule) captured once, over which any number of
// perturbation models can be replayed concurrently via
// ReplayCompiled. All exported state is read-only after Compile; the
// internal buffer pool makes concurrent replays allocation-light.
type Compiled struct {
	nranks int
	// evBase is the CSR row index of the flat per-event arrays:
	// rank r's events occupy [evBase[r], evBase[r+1]).
	evBase []int64
	ops    []op
	msgs   []compiledMsg
	colls  []compiledColl
	parts  []compiledCollPart
	// maxParts is the largest collective's participant count, sizing
	// the replay scratch.
	maxParts int

	// regionKeys maps dense region indices (op.region) back to keys,
	// in first-use order.
	regionKeys []RegionKey

	// Structural result fields, identical across all replays.
	events     int64
	rankEvents []int64
	origEnd    []int64
	highWater  int
	warnings   []string // sorted; value-independent caveats (§4.3)

	// Structure-only engine counters for the metrics flush.
	nLocalEdges, nMsgEdges, nCollEdges int64
	nMatches, nColls                   int64

	pool      sync.Pool // of *replayState
	batchPool sync.Pool // of *batchState (lane-strided ReplayBatch memory)
	parPool   sync.Pool // of *parState (ReplayParallel working memory)

	// Wavefront-slab plan cache (ReplayParallel). The structural plan
	// depends only on the tape; the draw plans additionally depend on
	// the model's collective shape (mode + CollectiveBytes), the only
	// model fields that change which sampler calls the replay makes.
	// Both are immutable once built and shared by every replay.
	parPlanOnce sync.Once
	parPlanVal  *parPlan
	drawPlanMu  sync.Mutex
	drawPlans   map[drawPlanKey]*drawPlan
}

// NRanks returns the world size of the compiled trace.
func (c *Compiled) NRanks() int { return c.nranks }

// Events returns the total record count across ranks.
func (c *Compiled) Events() int64 { return c.events }

// Messages returns the number of matched point-to-point transfers.
func (c *Compiled) Messages() int { return len(c.msgs) }

// Collectives returns the number of collective instances.
func (c *Compiled) Collectives() int { return len(c.colls) }

// compileRecorder observes the streaming analyzer from inside
// (builder.go/collective.go hooks) and assembles the tape. It never
// alters control flow; the compile pass runs a zero model, so no
// sample is drawn and no clamp fires while recording.
type compileRecorder struct {
	ops        []op
	msgs       []compiledMsg
	msgIdx     map[*msgState]int32
	colls      []compiledColl
	parts      []compiledCollPart
	collIdx    map[*collState]int32
	maxParts   int
	regionIdx  map[RegionKey]int32
	regionKeys []RegionKey
}

func newCompileRecorder() *compileRecorder {
	return &compileRecorder{
		msgIdx:    map[*msgState]int32{},
		collIdx:   map[*collState]int32{},
		regionIdx: map[RegionKey]int32{},
	}
}

func (r *compileRecorder) regionIndex(key RegionKey) int32 {
	if idx, ok := r.regionIdx[key]; ok {
		return idx
	}
	idx := int32(len(r.regionKeys))
	r.regionIdx[key] = idx
	r.regionKeys = append(r.regionKeys, key)
	return idx
}

func (r *compileRecorder) onBegin(rs *rankState, gap int64) {
	r.ops = append(r.ops, op{
		code:    opBegin,
		started: rs.started,
		rank:    int32(rs.rank),
		event:   rs.eventIdx,
		aux:     gap,
	})
}

func (r *compileRecorder) onMatch(m *msgState) {
	idx := int32(len(r.msgs))
	r.msgIdx[m] = idx
	r.msgs = append(r.msgs, compiledMsg{
		sendRank:  int32(m.sendStartRef.Rank),
		sendEvent: m.sendStartRef.Event,
		recvRank:  int32(m.recvStartRef.Rank),
		recvEvent: m.recvStartRef.Event,
		bytes:     m.bytes,
	})
	r.ops = append(r.ops, op{code: opMatch, arg: idx})
}

func (r *compileRecorder) onCollResolve(cs *collState, ordered []*collParticipant) {
	idx := int32(len(r.colls))
	r.collIdx[cs] = idx
	off := int32(len(r.parts))
	for _, p := range ordered {
		r.parts = append(r.parts, compiledCollPart{
			coll:  idx,
			rank:  int32(p.rank),
			event: p.startRef.Event,
			dur:   p.dur,
		})
	}
	if len(ordered) > r.maxParts {
		r.maxParts = len(ordered)
	}
	r.colls = append(r.colls, compiledColl{
		kind:    cs.kind,
		bytes:   cs.bytes,
		root:    cs.root,
		partOff: off,
		partN:   int32(len(ordered)),
	})
	r.ops = append(r.ops, op{code: opCollResolve, arg: idx})
}

func (r *compileRecorder) onEnd(rs *rankState, rec trace.Record) {
	o := op{
		kind:    uint8(rec.Kind),
		rank:    int32(rs.rank),
		region:  r.regionIndex(RegionKey{Rank: rs.rank, Region: rs.region}),
		event:   rs.eventIdx,
		aux:     rec.Duration(),
		origEnd: rec.End,
	}
	switch {
	case rec.Kind == trace.KindMarker:
		o.code = opEndMarker
	case rec.Kind == trace.KindInit || rec.Kind == trace.KindFinalize:
		o.code = opEndLocal
	case rec.Kind == trace.KindSend:
		o.code, o.arg = opEndSend, r.msgIdx[rs.myMsg]
	case rec.Kind == trace.KindRecv:
		o.code, o.arg = opEndRecv, r.msgIdx[rs.myMsg]
	case rec.Kind == trace.KindIsend || rec.Kind == trace.KindIrecv:
		o.code = opEndImmediate
	case rec.Kind.IsCompletion():
		ref := rs.reqs[rec.Req]
		if ref.isSend {
			o.code = opEndSend
		} else {
			o.code = opEndRecv
		}
		o.arg = r.msgIdx[ref.msg]
	case rec.Kind.IsCollective():
		o.code = opEndColl
		cc := r.colls[r.collIdx[rs.myColl]]
		for j := int32(0); j < cc.partN; j++ {
			if r.parts[cc.partOff+j].rank == int32(rs.rank) {
				o.arg = cc.partOff + j
				break
			}
		}
	}
	r.ops = append(r.ops, o)
}

// Compile runs the streaming matcher once over the trace set and
// returns the immutable compiled program. Like any other consumer, it
// exhausts the set. The schedule (and hence the tape) honors
// opts.Burst and opts.MaxWindow; caller sinks (Graph, Trajectory,
// RecordCritPath) are meaningless during the structural pass and are
// ignored — pass them to ReplayCompiled instead.
func Compile(set *trace.Set, opts Options) (*Compiled, error) {
	defer opts.Metrics.Timer("core_compile").Start()()
	defer opts.Metrics.SpanStart("compile")()
	opts.Graph = nil
	opts.Trajectory = nil
	opts.Interval = nil
	opts.RecordCritPath = false
	a, err := newAnalyzer(set, &Model{}, opts)
	if err != nil {
		return nil, err
	}
	rec := newCompileRecorder()
	a.rec = rec
	res, err := a.run()
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		nranks:      res.NRanks,
		evBase:      make([]int64, res.NRanks+1),
		ops:         rec.ops,
		msgs:        rec.msgs,
		colls:       rec.colls,
		parts:       rec.parts,
		maxParts:    rec.maxParts,
		regionKeys:  rec.regionKeys,
		events:      res.Events,
		rankEvents:  make([]int64, res.NRanks),
		origEnd:     make([]int64, res.NRanks),
		highWater:   res.WindowHighWater,
		warnings:    res.Warnings,
		nLocalEdges: a.nLocalEdges,
		nMsgEdges:   a.nMsgEdges,
		nCollEdges:  a.nCollEdges,
		nMatches:    a.nMatches,
		nColls:      a.nColls,
	}
	for r := 0; r < res.NRanks; r++ {
		c.rankEvents[r] = res.Ranks[r].Events
		c.origEnd[r] = res.Ranks[r].OrigEnd
		c.evBase[r+1] = c.evBase[r] + res.Ranks[r].Events
	}
	if m := opts.Metrics; m != nil {
		m.Counter("core_compiles_total").Inc()
		m.Gauge("core_compiled_ops").SetMax(float64(len(c.ops)))
	}
	return c, nil
}
