package core

// Closed forms of the paper's equations, used by tests and benches to
// pin the propagation engine against hand-derivable answers. All
// functions work in delay space: inputs are the inbound delays at the
// relevant start subevents plus the sampled deltas; outputs are the
// end-subevent delays.

func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Eq1Additive is the blocking send/receive pair (Fig. 2) under the
// additive model:
//
//	cData = dSS + δλ1 + δt
//	cRecv = max(cData, dRS)
//	dRE   = max(dRS + δos2, cRecv)
//	dSE   = max(dSS + δos1, cRecv + δλ2)
func Eq1Additive(dSS, dRS, dOS1, dOS2, dLat1, dPerByte, dLat2 float64) (dSE, dRE float64) {
	cData := dSS + dLat1 + dPerByte
	cRecv := fmax(cData, dRS)
	dRE = fmax(dRS+dOS2, cRecv)
	dSE = fmax(dSS+dOS1, cRecv+dLat2)
	return dSE, dRE
}

// Eq1Anchored is Eq. 1 as printed, in delay space, for a pair whose
// inbound delays are dSS and dRS and whose traced event durations are
// wS and wR:
//
//	t'_se = max(t_se, t'_ss + δos1, cRecv' + δos2 + δλ2)
//	t'_re = max(t_re, t'_rs + δos2 + δλ1 + δt, cData' + δos2)
//
// The t_re floor on the receive line is our addition (the printed
// equation would otherwise let a receive finish before its traced end
// even with zero inbound delay; see DESIGN.md).
func Eq1Anchored(dSS, dRS, dOS1, dOS2, dLat1, dPerByte, dLat2 float64, wS, wR int64) (dSE, dRE float64) {
	cData := dSS + dLat1 + dPerByte
	cRecv := fmax(cData, dRS)
	dRE = fmax(dRS, fmax(dRS+dOS2+dLat1+dPerByte-float64(wR), cData+dOS2-float64(wR)))
	dSE = fmax(dSS, fmax(dSS+dOS1-float64(wS), cRecv+dOS2+dLat2-float64(wS)))
	return dSE, dRE
}

// Eq2Additive is the nonblocking pair with waits (Fig. 3): the Isend
// and Irecv end subevents keep their start delays (immediate return);
// the delays land on the wait operations.
//
//	cData = dIsendStart + δλ1 + δt
//	cRecv = max(cData, dIrecvStart)
//	dWaitRecvEnd = max(dWaitRecvStart + δos2, cRecv)
//	dWaitSendEnd = max(dWaitSendStart + δos1, cRecv + δλ2)
func Eq2Additive(dIsendStart, dIrecvStart, dWaitSendStart, dWaitRecvStart,
	dOS1, dOS2, dLat1, dPerByte, dLat2 float64) (dWaitSendEnd, dWaitRecvEnd float64) {
	cData := dIsendStart + dLat1 + dPerByte
	cRecv := fmax(cData, dIrecvStart)
	dWaitRecvEnd = fmax(dWaitRecvStart+dOS2, cRecv)
	dWaitSendEnd = fmax(dWaitSendStart+dOS1, cRecv+dLat2)
	return dWaitSendEnd, dWaitRecvEnd
}

// CollectiveApproxClosed is the Fig. 4 model's closed form: given each
// participant's inbound delay and its sampled l_δ, every participant
// leaves with max(own inbound, max_i(inbound_i + l_δ_i)).
func CollectiveApproxClosed(inbound, lDelta []float64) []float64 {
	m := 0.0
	for i := range inbound {
		if v := inbound[i] + lDelta[i]; v > m {
			m = v
		}
	}
	out := make([]float64, len(inbound))
	for i := range inbound {
		out[i] = fmax(inbound[i], m)
	}
	return out
}
