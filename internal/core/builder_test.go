package core

import (
	"math"
	"strings"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// mkset builds a trace.Set from per-rank record slices.
func mkset(t *testing.T, perRank ...[]trace.Record) *trace.Set {
	t.Helper()
	n := len(perRank)
	mems := make([]*trace.MemTrace, n)
	for r, recs := range perRank {
		mems[r] = &trace.MemTrace{
			Hdr:     trace.Header{Rank: r, NRanks: n},
			Records: recs,
		}
	}
	set, err := trace.SetFromMem(mems)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func wantDelay(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s: delay = %g, want %g", name, got, want)
	}
}

// rec builds a record with the defaults the builder expects.
func rec(k trace.Kind, begin, end int64) trace.Record {
	return trace.Record{Kind: k, Begin: begin, End: end, Peer: trace.NoRank, Root: trace.NoRank}
}

// blockingPairSet is the canonical Fig. 2 trace: rank 0 sends d bytes
// to rank 1 with blocking primitives.
func blockingPairSet(t *testing.T, d int64) *trace.Set {
	send := rec(trace.KindSend, 100, 300)
	send.Peer, send.Tag, send.Bytes = 1, 5, d
	recv := rec(trace.KindRecv, 50, 300)
	recv.Peer, recv.Tag, recv.Bytes = 0, 5, d
	return mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), send, rec(trace.KindFinalize, 400, 400)},
		[]trace.Record{rec(trace.KindInit, 0, 10), recv, rec(trace.KindFinalize, 400, 400)},
	)
}

func TestZeroModelZeroDelays(t *testing.T) {
	res, err := Analyze(blockingPairSet(t, 1000), &Model{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rr.FinalDelay != 0 {
			t.Fatalf("rank %d delay %g under zero model", rank, rr.FinalDelay)
		}
	}
	if res.Events != 6 {
		t.Fatalf("events = %d", res.Events)
	}
	if res.MaxFinalDelay != 0 || res.MakespanDelay != 0 {
		t.Fatalf("aggregate delays non-zero: %+v", res)
	}
}

// TestEq1BlockingSendRecvAdditive pins the engine against the additive
// closed form of Eq. 1 (Fig. 2) with constant deltas.
func TestEq1BlockingSendRecvAdditive(t *testing.T) {
	const (
		a  = 7.0  // OS noise per local edge
		l  = 40.0 // latency delta per message edge
		pb = 0.25 // per-byte delta
		d  = 1000 // message size
	)
	model := &Model{
		OSNoise:    dist.Constant{C: a},
		MsgLatency: dist.Constant{C: l},
		PerByte:    dist.Constant{C: pb},
	}
	res, err := Analyze(blockingPairSet(t, d), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Inbound delays at the send/recv starts: init internal edge (+a)
	// plus one compute gap (+a) on each rank.
	dSS, dRS := 2*a, 2*a
	dSE, dRE := Eq1Additive(dSS, dRS, a, a, l, pb*d, l)
	// Final delays add the gap to finalize (+a) and the finalize
	// internal edge (+a)... finalize has zero duration, so its internal
	// edge still samples one noise unit.
	wantDelay(t, "rank0 (sender)", res.Ranks[0].FinalDelay, dSE+2*a)
	wantDelay(t, "rank1 (receiver)", res.Ranks[1].FinalDelay, dRE+2*a)
}

// TestEq1SenderDelayPropagatesToReceiver checks the data-path message
// edge: a large delta on the sender's side must appear at the
// receiver's end subevent (the edge-pair requirement of Section 2).
func TestEq1SenderDelayPropagatesToReceiver(t *testing.T) {
	const l = 100000.0
	model := &Model{MsgLatency: dist.Constant{C: l}}
	res, err := Analyze(blockingPairSet(t, 1000), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// cData = 0 + l (two latency samples per pair: data and ack).
	dSE, dRE := Eq1Additive(0, 0, 0, 0, l, 0, l)
	wantDelay(t, "receiver sees data latency", res.Ranks[1].FinalDelay, dRE)
	wantDelay(t, "sender sees ack latency", res.Ranks[0].FinalDelay, dSE)
	if res.Ranks[0].FinalDelay != 2*l {
		t.Fatalf("sender delay %g, want 2l (data+ack)", res.Ranks[0].FinalDelay)
	}
}

// TestEq1Anchored pins the anchored (literal Eq. 1) mode. Deltas are
// chosen larger than the traced durations so the original-completion
// floors do not bind and the printed equation holds exactly.
func TestEq1Anchored(t *testing.T) {
	const (
		a  = 500.0
		l  = 1000.0
		pb = 1.0
		d  = 800
	)
	model := &Model{
		OSNoise:     dist.Constant{C: a},
		MsgLatency:  dist.Constant{C: l},
		PerByte:     dist.Constant{C: pb},
		Propagation: PropagationAnchored,
	}
	res, err := Analyze(blockingPairSet(t, d), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Anchored local-edge rule on init (duration 10, delta a):
	// D = max(0, a-10). Compute gap rule is unchanged (additive).
	dInit := math.Max(0, a-10)
	dSS := dInit + a // init + compute gap
	dRS := dInit + a
	dSE, dRE := Eq1Anchored(dSS, dRS, a, a, l, pb*d, l, 200, 250)
	// Tail: compute gap (+a), finalize anchored (duration 0): +a.
	wantDelay(t, "anchored sender", res.Ranks[0].FinalDelay, dSE+2*a)
	wantDelay(t, "anchored receiver", res.Ranks[1].FinalDelay, dRE+2*a)
}

// TestAnchoredAbsorbsSmallDeltas: in anchored mode a delta smaller
// than the event's traced duration disappears into it (Eq. 1's max
// with the original completion time).
func TestAnchoredAbsorbsSmallDeltas(t *testing.T) {
	model := &Model{
		MsgLatency:  dist.Constant{C: 5}, // tiny vs durations of 200+
		Propagation: PropagationAnchored,
	}
	res, err := Analyze(blockingPairSet(t, 1000), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rr.FinalDelay != 0 {
			t.Fatalf("rank %d: small anchored delta not absorbed: %g", rank, rr.FinalDelay)
		}
	}
	// The same delta in additive mode does NOT disappear.
	model.Propagation = PropagationAdditive
	res, err = Analyze(blockingPairSet(t, 1000), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[1].FinalDelay == 0 {
		t.Fatal("additive mode unexpectedly absorbed the delta")
	}
}

// nonblockingPairSet is the Fig. 3 trace: isend/irecv followed by
// waits, with computation in between.
func nonblockingPairSet(t *testing.T) *trace.Set {
	isend := rec(trace.KindIsend, 100, 110)
	isend.Peer, isend.Tag, isend.Bytes, isend.Req = 1, 9, 2000, 1
	irecv := rec(trace.KindIrecv, 100, 105)
	irecv.Peer, irecv.Tag, irecv.Req = 0, 9, 1
	ws := rec(trace.KindWait, 500, 700)
	ws.Req = 1
	wr := rec(trace.KindWait, 600, 800)
	wr.Req = 1
	return mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), isend, ws, rec(trace.KindFinalize, 900, 900)},
		[]trace.Record{rec(trace.KindInit, 0, 10), irecv, wr, rec(trace.KindFinalize, 900, 900)},
	)
}

// TestEq2Nonblocking pins the nonblocking pair (Fig. 3) against the
// Eq. 2 closed form: isend/irecv ends unmodified, perturbation lands
// on the waits.
func TestEq2Nonblocking(t *testing.T) {
	const (
		a  = 11.0
		l  = 60.0
		pb = 0.5
	)
	model := &Model{
		OSNoise:    dist.Constant{C: a},
		MsgLatency: dist.Constant{C: l},
		PerByte:    dist.Constant{C: pb},
	}
	res, err := Analyze(nonblockingPairSet(t), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0: init(+a), gap(+a) -> isend start 2a, isend end 2a
	// (immediate return), gap(+a) -> wait start 3a.
	// Rank 1 symmetric.
	dWS, dWR := Eq2Additive(2*a, 2*a, 3*a, 3*a, a, a, l, pb*2000, l)
	wantDelay(t, "sender wait", res.Ranks[0].FinalDelay, dWS+2*a)
	wantDelay(t, "receiver wait", res.Ranks[1].FinalDelay, dWR+2*a)
}

// TestEq2ImmediateReturn verifies that isend/irecv end subevents carry
// no perturbation even under heavy message deltas (their delay equals
// the inbound delay; everything lands on the waits).
func TestEq2ImmediateReturn(t *testing.T) {
	model := &Model{MsgLatency: dist.Constant{C: 1e6}}
	g := &Graph{}
	res, err := Analyze(nonblockingPairSet(t), model, Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	// Only the waits (and everything after) are delayed.
	dWS, dWR := Eq2Additive(0, 0, 0, 0, 0, 0, 1e6, 0, 1e6)
	wantDelay(t, "sender", res.Ranks[0].FinalDelay, dWS)
	wantDelay(t, "receiver", res.Ranks[1].FinalDelay, dWR)
}

func TestRecvBeforeSendPost(t *testing.T) {
	// Receiver posts long before the sender; sender's delay must still
	// reach it through the data edge.
	send := rec(trace.KindSend, 10_000, 10_200)
	send.Peer, send.Tag, send.Bytes = 1, 0, 100
	recv := rec(trace.KindRecv, 50, 10_400)
	recv.Peer, recv.Bytes = 0, 100
	set := mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), send, rec(trace.KindFinalize, 11_000, 11_000)},
		[]trace.Record{rec(trace.KindInit, 0, 10), recv, rec(trace.KindFinalize, 11_000, 11_000)},
	)
	const l = 777.0
	res, err := Analyze(set, &Model{MsgLatency: dist.Constant{C: l}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantDelay(t, "receiver", res.Ranks[1].FinalDelay, l)
	wantDelay(t, "sender", res.Ranks[0].FinalDelay, 2*l)
}

func TestFIFOMatchingSameTag(t *testing.T) {
	// Two same-tag messages of different sizes: per-byte deltas must
	// attach in posting order (non-overtaking).
	s1 := rec(trace.KindSend, 100, 200)
	s1.Peer, s1.Bytes = 1, 1000
	s2 := rec(trace.KindSend, 300, 400)
	s2.Peer, s2.Bytes = 1, 1 // negligible
	r1 := rec(trace.KindRecv, 100, 200)
	r1.Peer, r1.Bytes = 0, 1000
	r2 := rec(trace.KindRecv, 300, 400)
	r2.Peer, r2.Bytes = 0, 1
	set := mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), s1, s2, rec(trace.KindFinalize, 500, 500)},
		[]trace.Record{rec(trace.KindInit, 0, 10), r1, r2, rec(trace.KindFinalize, 500, 500)},
	)
	res, err := Analyze(set, &Model{PerByte: dist.Constant{C: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First transfer contributes 1000 cycles of per-byte delay; the
	// second only 1. If matching swapped them the totals would differ.
	wantDelay(t, "receiver", res.Ranks[1].FinalDelay, 1000+1)
}

func TestUnmatchedBlockingSendFails(t *testing.T) {
	send := rec(trace.KindSend, 100, 200)
	send.Peer, send.Bytes = 1, 10
	set := mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), send},
		[]trace.Record{rec(trace.KindInit, 0, 10), rec(trace.KindFinalize, 50, 50)},
	)
	_, err := Analyze(set, &Model{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "not self-consistent") {
		t.Fatalf("unmatched blocking send not detected: %v", err)
	}
}

func TestFireAndForgetIsendWarns(t *testing.T) {
	// Sender never waits (paper §4.3's questionable-but-possible case):
	// the analysis completes but warns.
	isend := rec(trace.KindIsend, 100, 110)
	isend.Peer, isend.Bytes, isend.Req = 1, 10, 1
	recv := rec(trace.KindRecv, 100, 300)
	recv.Peer, recv.Bytes = 0, 10
	set := mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), isend, rec(trace.KindFinalize, 400, 400)},
		[]trace.Record{rec(trace.KindInit, 0, 10), recv, rec(trace.KindFinalize, 400, 400)},
	)
	res, err := Analyze(set, &Model{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "never waits") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing §4.3 warning; warnings = %v", res.Warnings)
	}
}

func TestWaitUnknownRequestFails(t *testing.T) {
	w := rec(trace.KindWait, 100, 200)
	w.Req = 99
	set := mkset(t, []trace.Record{rec(trace.KindInit, 0, 10), w})
	_, err := Analyze(set, &Model{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown request") {
		t.Fatalf("unknown request not detected: %v", err)
	}
}

func TestOverlappingRecordsRejected(t *testing.T) {
	set := mkset(t, []trace.Record{
		rec(trace.KindInit, 0, 100),
		rec(trace.KindFinalize, 50, 60),
	})
	_, err := Analyze(set, &Model{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlap not detected: %v", err)
	}
}

func TestMaxWindowEnforced(t *testing.T) {
	// Rank 0 posts many isends before rank 1 receives any; a tiny
	// window must trip.
	var recs0 []trace.Record
	recs0 = append(recs0, rec(trace.KindInit, 0, 10))
	tm := int64(100)
	for i := 0; i < 50; i++ {
		is := rec(trace.KindIsend, tm, tm+10)
		is.Peer, is.Bytes, is.Req = 1, 10, uint64(i+1)
		recs0 = append(recs0, is)
		tm += 20
	}
	var recs1 []trace.Record
	recs1 = append(recs1, rec(trace.KindInit, 0, 10))
	tm = 2000
	for i := 0; i < 50; i++ {
		rv := rec(trace.KindRecv, tm, tm+10)
		rv.Peer, rv.Bytes = 0, 10
		recs1 = append(recs1, rv)
		tm += 20
	}
	recs1 = append(recs1, rec(trace.KindFinalize, tm, tm))
	set := mkset(t, recs0, recs1)
	_, err := Analyze(set, &Model{}, Options{MaxWindow: 5, Burst: 100})
	if err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("window overflow not detected: %v", err)
	}
	// With a generous window the same trace analyzes fine (with a
	// fire-and-forget warning).
	set = mkset(t, recs0, recs1)
	res, err := Analyze(set, &Model{}, Options{MaxWindow: 100, Burst: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowHighWater == 0 {
		t.Fatal("high water not tracked")
	}
}

func TestWindowHighWaterSmallForSynchronousTraffic(t *testing.T) {
	// A tightly synchronized pattern should keep the window tiny even
	// with many events.
	var recs0, recs1 []trace.Record
	recs0 = append(recs0, rec(trace.KindInit, 0, 10))
	recs1 = append(recs1, rec(trace.KindInit, 0, 10))
	tm := int64(100)
	for i := 0; i < 500; i++ {
		s := rec(trace.KindSend, tm, tm+50)
		s.Peer, s.Bytes = 1, 10
		r := rec(trace.KindRecv, tm, tm+50)
		r.Peer, r.Bytes = 0, 10
		recs0 = append(recs0, s)
		recs1 = append(recs1, r)
		tm += 100
	}
	recs0 = append(recs0, rec(trace.KindFinalize, tm, tm))
	recs1 = append(recs1, rec(trace.KindFinalize, tm, tm))
	set := mkset(t, recs0, recs1)
	res, err := Analyze(set, &Model{}, Options{Burst: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowHighWater > 10 {
		t.Fatalf("window high water %d for synchronous traffic", res.WindowHighWater)
	}
}

func TestNegativePerturbationOrderPreserved(t *testing.T) {
	// "What if the platform had less noise": negative local deltas
	// shrink delays but may never reorder events (§7 + §4.3).
	model := &Model{
		OSNoise:       dist.Constant{C: -1e6}, // absurdly negative
		AllowNegative: true,
	}
	res, err := Analyze(blockingPairSet(t, 100), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderViolations == 0 {
		t.Fatal("expected clamped order violations")
	}
	for rank, rr := range res.Ranks {
		// Final delay may be negative (a faster run) but bounded below
		// by the negated trace length.
		if rr.FinalDelay > 0 {
			t.Fatalf("rank %d: negative noise increased delay %g", rank, rr.FinalDelay)
		}
		if rr.FinalDelay < -float64(rr.OrigEnd) {
			t.Fatalf("rank %d: delay %g below physical floor", rank, rr.FinalDelay)
		}
	}
}

func TestNegativeWithoutAllowIsClamped(t *testing.T) {
	// Without AllowNegative, negative samples clamp to zero at the
	// sampler.
	model := &Model{OSNoise: dist.Constant{C: -500}}
	res, err := Analyze(blockingPairSet(t, 100), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rr.FinalDelay != 0 {
			t.Fatalf("rank %d: clamped negative noise leaked: %g", rank, rr.FinalDelay)
		}
	}
}

func TestMarkersDefineRegions(t *testing.T) {
	m1 := rec(trace.KindMarker, 50, 50)
	m1.Tag = 1
	m2 := rec(trace.KindMarker, 350, 350)
	m2.Tag = 2
	send := rec(trace.KindSend, 100, 300)
	send.Peer, send.Bytes = 1, 10
	recv := rec(trace.KindRecv, 100, 300)
	recv.Peer, recv.Bytes = 0, 10
	set := mkset(t,
		[]trace.Record{rec(trace.KindInit, 0, 10), m1, send, m2, rec(trace.KindFinalize, 400, 400)},
		[]trace.Record{rec(trace.KindInit, 0, 10), recv, rec(trace.KindFinalize, 400, 400)},
	)
	res, err := Analyze(set, &Model{MsgLatency: dist.Constant{C: 10}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions[RegionKey{Rank: 0, Region: 1}] == nil {
		t.Fatal("region 1 missing")
	}
	if res.Regions[RegionKey{Rank: 0, Region: -1}] == nil {
		t.Fatal("pre-marker region missing")
	}
	keys := res.RegionList()
	if len(keys) < 3 {
		t.Fatalf("region list = %v", keys)
	}
}

func TestAbsorptionAccounting(t *testing.T) {
	// With latency deltas only, the receiver's merges are dominated by
	// the remote path (propagated); with huge local noise on the
	// receiver only... use per-rank asymmetry via trace shape instead:
	// a receiver that posts very late absorbs the sender's delay.
	res, err := Analyze(blockingPairSet(t, 100), &Model{MsgLatency: dist.Constant{C: 1e5}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := res.Ranks[1]
	if r1.Propagated == 0 {
		t.Fatalf("receiver should have propagated merges: %+v", r1)
	}
	if res.Ranks[0].Propagated == 0 {
		t.Fatal("sender should see the ack path as propagated")
	}
	if r1.DelayInduced <= 0 {
		t.Fatal("no induced delay recorded")
	}
}

func TestDeterministicAnalysis(t *testing.T) {
	model := &Model{
		Seed:       99,
		OSNoise:    dist.Exponential{MeanValue: 50},
		MsgLatency: dist.Uniform{Low: 10, High: 100},
		PerByte:    dist.Exponential{MeanValue: 0.01},
	}
	run := func() *Result {
		res, err := Analyze(blockingPairSet(t, 4096), model, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for r := range a.Ranks {
		if a.Ranks[r].FinalDelay != b.Ranks[r].FinalDelay {
			t.Fatalf("rank %d delays differ across identical runs", r)
		}
	}
}

func TestNoiseQuantumScalesWithGapLength(t *testing.T) {
	// One rank, two compute gaps of very different lengths.
	set := func() *trace.Set {
		return mkset(t, []trace.Record{
			rec(trace.KindInit, 0, 0),
			rec(trace.KindMarker, 1_000, 1_000),     // gap 1000
			rec(trace.KindMarker, 101_000, 101_000), // gap 100000
			rec(trace.KindFinalize, 101_000, 101_000),
		})
	}
	model := &Model{OSNoise: dist.Constant{C: 3}, NoiseQuantum: 1000}
	res, err := Analyze(set(), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// gap1: 1 quantum -> 3; gap2: 100 quanta -> 300. Zero-length gap to
	// finalize: 0. Init duration 0: internal edge has w=0 but os noise
	// applies to init's internal edge via combineLocal... duration 0,
	// additive: +3.
	wantDelay(t, "quantized noise", res.Ranks[0].FinalDelay, 3+3+300+3)
}

func TestModeStrings(t *testing.T) {
	for v, want := range map[interface{ String() string }]string{
		PropagationAdditive: "additive",
		PropagationAnchored: "anchored",
		PropagationMode(9):  "propagation(9)",
		CollectiveApprox:    "approx",
		CollectiveExplicit:  "explicit",
		CollectiveMode(9):   "collective(9)",
		EdgeLocal:           "local",
		EdgeMessage:         "message",
		EdgeCollective:      "collective",
		EdgeKind(9):         "edge(9)",
	} {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if (NodeRef{Rank: 2, Event: 3, End: true}).String() != "r2.e3.e" {
		t.Error("NodeRef.String wrong")
	}
	if (NodeRef{Rank: 2, Event: 3}).String() != "r2.e3.s" {
		t.Error("NodeRef.String wrong for start")
	}
}

func TestRoundBytesPerKind(t *testing.T) {
	for _, tc := range []struct {
		kind  trace.Kind
		round int
		want  int64
	}{
		{trace.KindBarrier, 0, 0},
		{trace.KindCommSplit, 1, 0},
		{trace.KindAllreduce, 2, 100},
		{trace.KindAllgather, 0, 100},
		{trace.KindAllgather, 2, 400},
		{trace.KindAlltoall, 0, 100 * 8 / 3},
		{trace.KindBcast, 1, 100},
	} {
		if got := roundBytes(tc.kind, 100, tc.round, 8); got != tc.want {
			t.Errorf("roundBytes(%s, round %d) = %d, want %d", tc.kind, tc.round, got, tc.want)
		}
	}
}

func TestNegativeMessageDeltaSpeedsReceiver(t *testing.T) {
	// §7 what-if on the interconnect: negative latency deltas model a
	// faster network; the receiver's embedded wait shrinks, order
	// preserved by clamping.
	model := &Model{MsgLatency: dist.Constant{C: -50}, AllowNegative: true}
	res, err := Analyze(blockingPairSet(t, 100), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rr.FinalDelay > 0 {
			t.Fatalf("rank %d slowed down by a faster network: %g", rank, rr.FinalDelay)
		}
	}
}
