package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
	"mpgraph/internal/workloads"
)

// The ReplayBatch contract is byte-identity, not statistical
// agreement: lane k of a batch must DeepEqual a standalone
// ReplayCompiled of lane k's model — delays, attribution, region
// stats, warnings, critical path, and the trajectory stream. These
// tests pin that across the equivalence workloads, the full
// model/mode grid (including heterogeneous mode mixes *within* one
// batch), lane permutations, and concurrent batches.

// batchLaneModels builds K lane models by cycling the equivalence
// grid with per-lane distinct seeds, so one batch mixes propagation
// modes, collective modes, quantized noise, and negative
// perturbations across its lanes. offset rotates the grid so small
// batches over multiple calls still cover every combo.
func batchLaneModels(K, offset int, grid []*Model) []*Model {
	lanes := make([]*Model, K)
	for k := 0; k < K; k++ {
		m := grid[(k+offset)%len(grid)].Clone()
		m.Seed = m.Seed*31 + uint64(k)*1000003 + 17
		lanes[k] = m
	}
	return lanes
}

// batchEquivSnaps are the four equivalence workloads from
// TestReplayCompiledMatchesAnalyze.
func batchEquivSnaps(t *testing.T) map[string]*trace.Snapshot {
	t.Helper()
	return map[string]*trace.Snapshot{
		"tokenring": snapWorkload(t, "tokenring", 8, workloads.Options{Iterations: 4}),
		"stencil1d": snapWorkload(t, "stencil1d", 8, workloads.Options{Iterations: 6, CollEvery: 2}),
		"bsp":       snapWorkload(t, "bsp", 6, workloads.Options{Iterations: 3}),
		"collzoo":   snapProgram(t, 6, collZoo),
	}
}

// assertBatchMatchesSingles replays each lane's model standalone and
// demands byte-identity with the batch's lane result and trajectory.
func assertBatchMatchesSingles(t *testing.T, c *Compiled, lanes []*Model, got []*Result, gotTraj [][]TrajectoryPoint) {
	t.Helper()
	if len(got) != len(lanes) {
		t.Fatalf("batch returned %d results for %d models", len(got), len(lanes))
	}
	for k, m := range lanes {
		var trajS []TrajectoryPoint
		want, err := ReplayCompiled(c, m, Options{
			RecordCritPath: true,
			Trajectory:     func(p TrajectoryPoint) { trajS = append(trajS, p) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got[k]) {
			t.Fatalf("lane %d (%s) diverged from standalone replay:\n%s",
				k, modelLabel(m), diffResults(want, got[k]))
		}
		if !reflect.DeepEqual(trajS, gotTraj[k]) {
			t.Fatalf("lane %d (%s) trajectory diverged (%d vs %d points)",
				k, modelLabel(m), len(trajS), len(gotTraj[k]))
		}
	}
}

// TestReplayBatchMatchesSingle is the tentpole pin: over every
// equivalence workload and lane widths spanning the fallback (K=1),
// tiny, odd, power-of-two, and wide (K=64, which cycles the whole
// 16-combo model grid four times over), every batch lane must be
// byte-identical to a standalone seeded ReplayCompiled. Each width
// runs twice so the pooled batch-state reuse path is exercised too.
func TestReplayBatchMatchesSingle(t *testing.T) {
	grid := equivalenceModels()
	for name, snap := range batchEquivSnaps(t) {
		t.Run(name, func(t *testing.T) {
			set, release := snap.Acquire()
			c, err := Compile(set, Options{})
			release()
			if err != nil {
				t.Fatal(err)
			}
			for ki, K := range []int{1, 2, 7, 8, 64} {
				t.Run(fmt.Sprintf("K=%d", K), func(t *testing.T) {
					lanes := batchLaneModels(K, ki*3, grid)
					for round := 0; round < 2; round++ {
						gotTraj := make([][]TrajectoryPoint, K)
						got, err := ReplayBatch(c, lanes, BatchOptions{
							Options:        Options{RecordCritPath: true},
							LaneTrajectory: func(k int, p TrajectoryPoint) { gotTraj[k] = append(gotTraj[k], p) },
						})
						if err != nil {
							t.Fatal(err)
						}
						assertBatchMatchesSingles(t, c, lanes, got, gotTraj)
					}
				})
			}
		})
	}
}

// TestReplayBatchLanePermutation is the property test behind the lane
// independence claim: shuffling which lane carries which model never
// changes any model's result. Each round draws a fresh permutation of
// an 8-lane batch and demands res[i] == baseRes[perm[i]] lane for
// lane.
func TestReplayBatchLanePermutation(t *testing.T) {
	snap := snapWorkload(t, "stencil1d", 8, workloads.Options{Iterations: 4, CollEvery: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	lanes := batchLaneModels(K, 5, equivalenceModels())
	base, err := ReplayBatch(c, lanes, BatchOptions{Options: Options{RecordCritPath: true}})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(97)
	perm := make([]int, K)
	shuffled := make([]*Model, K)
	for round := 0; round < 10; round++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(K, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i, p := range perm {
			shuffled[i] = lanes[p]
		}
		got, err := ReplayBatch(c, shuffled, BatchOptions{Options: Options{RecordCritPath: true}})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range perm {
			if !reflect.DeepEqual(base[p], got[i]) {
				t.Fatalf("round %d: lane %d carrying model %d (%s) diverged from the same model at lane %d:\n%s",
					round, i, p, modelLabel(lanes[p]), p, diffResults(base[p], got[i]))
			}
		}
	}
}

// TestReplayBatchConcurrent batches one compiled program from many
// goroutines; every batch must be identical lane for lane (the
// determinism claim behind batched parallel Monte Carlo). Run with
// -race alongside TestReplayCompiledConcurrent.
func TestReplayBatchConcurrent(t *testing.T) {
	snap := snapWorkload(t, "stencil1d", 8, workloads.Options{Iterations: 4, CollEvery: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	lanes := batchLaneModels(7, 1, equivalenceModels())
	want, err := ReplayBatch(c, lanes, BatchOptions{Options: Options{RecordCritPath: true}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				got, err := ReplayBatch(c, lanes, BatchOptions{Options: Options{RecordCritPath: true}})
				if err != nil {
					errs <- err
					return
				}
				for k := range want {
					if !reflect.DeepEqual(want[k], got[k]) {
						errs <- fmt.Errorf("concurrent batch lane %d diverged:\n%s", k, diffResults(want[k], got[k]))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReplayBatchRejections: the batch replayer refuses inputs it
// cannot honor rather than silently degrading — graph sinks need the
// streaming engine, lane-less trajectory callbacks would scramble
// lanes, and an empty batch has no meaning.
func TestReplayBatchRejections(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 4, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	models := []*Model{{Seed: 1}, {Seed: 2}}
	if _, err := ReplayBatch(c, models, BatchOptions{Options: Options{Graph: discardSink{}}}); err == nil {
		t.Error("expected an error for a graph sink on the batch replayer")
	}
	if _, err := ReplayBatch(c, models, BatchOptions{Options: Options{Trajectory: func(TrajectoryPoint) {}}}); err == nil {
		t.Error("expected an error for Options.Trajectory (LaneTrajectory carries the lane)")
	}
	if _, err := ReplayBatch(c, nil, BatchOptions{}); err == nil {
		t.Error("expected an error for an empty model batch")
	}
}

// TestReplayBatchNilModels: nil lane models behave exactly like a nil
// model passed to ReplayCompiled (the zero model), at K=1 (the
// delegating fallback) and inside a wide batch.
func TestReplayBatchNilModels(t *testing.T) {
	snap := snapWorkload(t, "tokenring", 4, workloads.Options{Iterations: 2})
	set, release := snap.Acquire()
	c, err := Compile(set, Options{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReplayCompiled(c, nil, Options{RecordCritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, models := range [][]*Model{
		{nil},
		{nil, {Seed: 9, OSNoise: dist.Exponential{MeanValue: 25}}, nil},
	} {
		got, err := ReplayBatch(c, models, BatchOptions{Options: Options{RecordCritPath: true}})
		if err != nil {
			t.Fatal(err)
		}
		for k, m := range models {
			if m != nil {
				continue
			}
			if !reflect.DeepEqual(want, got[k]) {
				t.Fatalf("K=%d: nil-model lane %d diverged from nil-model ReplayCompiled:\n%s",
					len(models), k, diffResults(want, got[k]))
			}
		}
	}
}

// TestPickReplayLanes pins the auto-width rules the CLI flags rely
// on: non-positive requests auto-pick, the width never exceeds the
// pending work, and the result is always at least 1.
func TestPickReplayLanes(t *testing.T) {
	cases := []struct{ lanes, pending, want int }{
		{0, 1000, DefaultReplayLanes},
		{-3, 1000, DefaultReplayLanes},
		{0, 5, 5},
		{4, 1000, 4},
		{64, 10, 10},
		{8, 0, 1},
		{0, 0, 1},
	}
	for _, tc := range cases {
		if got := PickReplayLanes(tc.lanes, tc.pending); got != tc.want {
			t.Errorf("PickReplayLanes(%d, %d) = %d; want %d", tc.lanes, tc.pending, got, tc.want)
		}
	}
}
