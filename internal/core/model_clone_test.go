package core

import (
	"testing"

	"mpgraph/internal/dist"
)

func TestModelClone(t *testing.T) {
	orig := &Model{
		Seed:         1,
		OSNoise:      dist.Exponential{MeanValue: 100},
		RankOSNoise:  []dist.Distribution{nil, dist.Constant{C: 5}},
		NoiseQuantum: 7,
		MsgLatency:   dist.Constant{C: 2},
		Propagation:  PropagationAnchored,
		Collectives:  CollectiveExplicit,
	}
	c := orig.Clone()
	if c == orig {
		t.Fatal("Clone returned the receiver")
	}
	c.Seed = 99
	c.RankOSNoise[0] = dist.Constant{C: 1}
	if orig.Seed != 1 || orig.RankOSNoise[0] != nil {
		t.Fatal("mutating the clone leaked into the original")
	}
	if c.Propagation != PropagationAnchored || c.Collectives != CollectiveExplicit {
		t.Fatal("scalar fields not copied")
	}
	if c.MsgLatency != orig.MsgLatency {
		t.Fatal("distribution values should be shared (they are pure)")
	}
}

func TestModelCloneNil(t *testing.T) {
	var m *Model
	c := m.Clone()
	if c == nil || !c.Zero() {
		t.Fatalf("nil.Clone() = %+v", c)
	}
}
