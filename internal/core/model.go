// Package core implements the paper's contribution: construction of
// the message-passing graph from per-rank event traces and the
// propagation of simulated perturbations through it.
//
// Events are split into start/end subevents (graph nodes); local edges
// connect successive subevents on one rank, message edges connect
// matched subevents across ranks (Section 2). Matching uses execution
// order only — never cross-rank timestamps (Section 4.1): point-to-
// point events match through per-(comm,src,dst,tag) FIFO queues (MPI
// non-overtaking order), nonblocking operations link to their waits by
// request id, and collectives match by per-communicator sequence
// number.
//
// Perturbations are expressed as *delays*: each node v carries
// D(v) = t'(v) − t(v), the difference between its perturbed and traced
// times on its own rank's clock. Delays propagate along edges with
// max() merges (Section 3); because only delays ever cross rank
// boundaries, unsynchronized clocks are harmless. The builder streams
// records through bounded per-rank windows (Sections 4.2, 6), so trace
// size is limited by disk, not memory.
package core

import (
	"fmt"

	"mpgraph/internal/dist"
	"mpgraph/internal/obsv"
)

// PropagationMode selects how injected deltas combine with traced
// event durations.
type PropagationMode uint8

const (
	// PropagationAdditive treats every delta as additional delay on
	// top of the traced timings: D(v) = max over incoming edges of
	// (D(u) + δ). This is the model described in the paper's Sections
	// 4.2 and 6 ("the change is additively propagated through the
	// graph", "the max() operators ... modify the times of each node
	// based on the simulated perturbation deltas"), and the default.
	PropagationAdditive PropagationMode = iota
	// PropagationAnchored implements Eq. 1/Eq. 2 as literally printed:
	// perturbation paths are anchored at the event's *start*, so an
	// event's traced duration absorbs deltas smaller than itself
	// (e.g. t'_se = max(t_se, t_ss + δ_os1, t_ss + δ_λ1 + δ_t +
	// δ_os2 + δ_λ2)). Under zero inbound delay this reproduces the
	// printed equations exactly; it can let perturbed events complete
	// earlier than traced when modeled deltas undercut embedded waits.
	PropagationAnchored
)

// String returns the mode name.
func (m PropagationMode) String() string {
	switch m {
	case PropagationAdditive:
		return "additive"
	case PropagationAnchored:
		return "anchored"
	}
	return fmt.Sprintf("propagation(%d)", uint8(m))
}

// CollectiveMode selects the collective subgraph construction.
type CollectiveMode uint8

const (
	// CollectiveApprox is the paper's compact model (Fig. 4): each
	// participant contributes l_δ = Σ over ceil(log2 p) rounds of
	// (OS-noise + latency [+ bandwidth]) samples; the maximum of
	// (inbound delay + l_δ) over participants propagates to everyone.
	CollectiveApprox CollectiveMode = iota
	// CollectiveExplicit builds the actual communication pattern in
	// delay space: dissemination exchanges for the symmetric
	// collectives and binomial trees for the rooted ones — O(p log p)
	// edges, the alternative the paper calls correct but "not space or
	// time efficient".
	CollectiveExplicit
)

// String returns the mode name.
func (m CollectiveMode) String() string {
	switch m {
	case CollectiveApprox:
		return "approx"
	case CollectiveExplicit:
		return "explicit"
	}
	return fmt.Sprintf("collective(%d)", uint8(m))
}

// Model parameterizes the simulated perturbations (paper Section 5).
// Each field is a distribution so that both analytic families and
// empirical microbenchmark-derived distributions plug in uniformly; a
// nil distribution injects nothing.
type Model struct {
	// Seed drives all perturbation sampling. Identical seeds over
	// identical traces yield identical analyses.
	Seed uint64

	// OSNoise is sampled once per local edge (compute gaps between
	// events and event-internal start→end edges) and added as delay on
	// that edge; the paper's δ_os.
	OSNoise dist.Distribution
	// RankOSNoise, when non-nil, overrides OSNoise per rank (index =
	// world rank; nil entries fall back to OSNoise). This models
	// heterogeneous platforms — e.g. a single daemon-ridden node in an
	// otherwise quiet cluster.
	RankOSNoise []dist.Distribution
	// NoiseQuantum, when positive, makes compute-gap noise
	// length-dependent: a gap of w cycles draws ceil(w/NoiseQuantum)
	// OSNoise samples (FTQ-style periodic interference). Zero draws a
	// single sample per gap regardless of length. At most
	// MaxNoiseSamplesPerEdge samples are drawn per edge; beyond that
	// the expectation is extrapolated linearly.
	NoiseQuantum int64

	// MsgLatency is sampled once per message edge; the paper's δ_λ.
	MsgLatency dist.Distribution
	// PerByte is sampled once per message edge and multiplied by the
	// payload size; the paper's size-dependent δ_t(d).
	PerByte dist.Distribution

	// Propagation selects additive (default) or anchored combining.
	Propagation PropagationMode
	// Collectives selects the compact or explicit collective model.
	Collectives CollectiveMode
	// CollectiveBytes, when true, includes the PerByte term in
	// collective round contributions (scaled by the round's payload).
	CollectiveBytes bool

	// AllowNegative permits distributions with negative support
	// (the paper's future-work "what if the platform had less noise"
	// analysis, Section 7). The correctness checker still rejects any
	// perturbation that would reorder events (Section 4.3).
	AllowNegative bool
}

// MaxNoiseSamplesPerEdge bounds quantized noise sampling per local
// edge; longer gaps extrapolate the sampled mean.
const MaxNoiseSamplesPerEdge = 4096

// Clone returns an independent copy of the model, for per-task model
// instantiation in parallel replays: callers that vary a field (most
// commonly Seed, one derived seed per Monte Carlo trial) must clone
// first so concurrent replays never share a mutated Model. The
// RankOSNoise slice is copied; the Distribution values themselves are
// shared, which is safe because Distribution implementations are pure
// (all randomness flows through the per-analysis RNG, never through
// distribution-internal state). Clone of a nil model yields the zero
// model.
func (m *Model) Clone() *Model {
	if m == nil {
		return &Model{}
	}
	c := *m
	if m.RankOSNoise != nil {
		c.RankOSNoise = append([]dist.Distribution(nil), m.RankOSNoise...)
	}
	return &c
}

// Zero reports whether the model injects no perturbation at all.
func (m *Model) Zero() bool {
	for _, d := range m.RankOSNoise {
		if d != nil {
			return false
		}
	}
	return m.OSNoise == nil && m.MsgLatency == nil && m.PerByte == nil
}

// Options tunes the analyzer machinery (not the perturbation model).
type Options struct {
	// MaxWindow bounds the number of simultaneously pending unmatched
	// events; exceeding it aborts the analysis with an error. Zero
	// means unbounded (the high-water mark is still reported).
	MaxWindow int
	// Burst is the number of records processed per rank per scheduling
	// turn; smaller values keep rank progress balanced and windows
	// small. Default 64.
	Burst int
	// Graph, when non-nil, receives every node and edge as it is
	// created (used by the DOT exporter and by tests that inspect the
	// graph structure).
	Graph GraphSink
	// Trajectory, when non-nil, is invoked once per resolved event end
	// subevent with the event's traced end time (local clock) and its
	// delay — the raw series behind "regions where perturbations are
	// absorbed or fully propagated" (§4.2). Events arrive in per-rank
	// order but interleaved across ranks.
	Trajectory func(TrajectoryPoint)
	// Interval, when non-nil, is invoked once per resolved event end
	// subevent with the timing detail a per-rank timeline needs: the
	// traced interval, the delays at both subevents, and — when a
	// remote path won the completion merge — the excess over the local
	// path (the wait) with its wait-state classification. Points arrive
	// in per-rank order but interleaved across ranks, in the same order
	// Trajectory points do. The hook observes only: no sample is drawn
	// and no delay changes, so instrumented runs are byte-identical to
	// uninstrumented ones.
	Interval func(IntervalPoint)
	// RecordCritPath records the argmax predecessor at every max()
	// merge so Result.CritPath can name the edges behind the makespan
	// delay. Recording never alters propagated delays (no sample is
	// drawn and no comparison changes), at the cost of O(events)
	// memory.
	RecordCritPath bool
	// Metrics, when non-nil, receives engine counters (events, edges,
	// matches, samples drawn, window high-water) and the analyze phase
	// timer. Metrics are out-of-band: attaching a registry changes no
	// analysis result.
	Metrics *obsv.Registry
}

// TrajectoryPoint is one event's delay observation.
type TrajectoryPoint struct {
	// Rank is the world rank.
	Rank int
	// Event is the record index on the rank.
	Event int64
	// Kind is the event kind.
	Kind uint8
	// OrigEnd is the traced local end time.
	OrigEnd int64
	// Delay is D at the end subevent.
	Delay float64
	// Region is the rank's current marker region (−1 before the first
	// marker).
	Region int32
}

// WaitState classifies the blocked portion of a completed event: which
// remote path held the event's end subevent past its own local path.
type WaitState uint8

const (
	// WaitNone marks events whose own local path dominated (no remote
	// wait; the event absorbed any inbound perturbation).
	WaitNone WaitState = iota
	// WaitLateSender marks receive-side completions (blocking Recv or a
	// wait on an Irecv) held by the transfer: the data left the sender
	// too late for the receiver's local path to hide it.
	WaitLateSender
	// WaitLateReceiver marks send-side completions (blocking Send or a
	// wait on an Isend) held by the acknowledgment path: the receiver
	// completed the transfer later than the sender's local path.
	WaitLateReceiver
	// WaitCollective marks collective completions held by another
	// participant's inbound delay (collective imbalance).
	WaitCollective
)

// String returns the wait-state name.
func (s WaitState) String() string {
	switch s {
	case WaitNone:
		return "none"
	case WaitLateSender:
		return "late-sender"
	case WaitLateReceiver:
		return "late-receiver"
	case WaitCollective:
		return "collective"
	}
	return fmt.Sprintf("wait(%d)", uint8(s))
}

// IntervalPoint is one event's timeline observation: enough to place
// the event's perturbed interval on its rank's track and split it into
// an executing part and a waiting part.
type IntervalPoint struct {
	// Rank is the world rank.
	Rank int
	// Event is the record index on the rank.
	Event int64
	// Kind is the event kind.
	Kind uint8
	// OrigBegin and OrigEnd are the traced local interval.
	OrigBegin, OrigEnd int64
	// StartDelay is D at the event's start subevent, EndDelay is D at
	// its end subevent (after any §4.3 order clamp). The perturbed
	// interval is [OrigBegin+StartDelay, OrigEnd+EndDelay].
	StartDelay, EndDelay float64
	// Wait is the excess of the winning remote path over the event's
	// local path (remote − local, exactly the amount mergeStats adds to
	// RankResult.DelayInduced), zero when the local path won or the
	// event performed no merge. Per rank, the Waits accumulated in
	// point order sum bitwise to that rank's DelayInduced.
	Wait float64
	// State classifies Wait; WaitNone when Wait is zero.
	State WaitState
	// PeerRank/PeerEvent name the sending rank's posting event for
	// receive-side completions (the message edge the data traveled);
	// PeerRank is −1 for every other event.
	PeerRank  int
	PeerEvent int64
}

// sampler owns the deterministic perturbation streams: one OS-noise
// stream per rank and one shared message stream, mirroring the
// structure of the machine model so that per-rank noise is independent
// of messaging order on other ranks.
type sampler struct {
	model    *Model
	rankRNG  []*dist.RNG
	msgRNG   *dist.RNG
	negative bool

	// Sample counts for the metrics flush. Plain ints: a sampler
	// belongs to one single-goroutine analysis, so the counts go
	// through the shared registry only once, at the end of the run.
	nNoise, nMsg int64

	// pre, when non-nil, switches osNoise/latency/perByte into
	// prefetch replay: each call pops the next precomputed value
	// instead of touching any RNG. The parallel replayer runs the
	// collective kernels through this mode — the values were produced
	// earlier by the *same* sampler methods walking each RNG stream in
	// tape order, so a popped value is bit-identical to what a live
	// draw at this call site would have returned (including clamping
	// and the no-draw zero cases), and the kernel's FP sequence is
	// unchanged.
	pre    []float64
	preCur int
	// rec, when non-nil, switches osNoise/latency/perByte into site
	// recording: each call registers (stream, kind, args) with the
	// recorder and returns 0 without consuming RNG. The parallel
	// planner runs the collective kernels through this mode to learn
	// their exact draw-call sequence instead of hand-mirroring it —
	// kernel control flow is value-independent, so the recorded
	// sequence is the sequence every replay performs.
	rec *drawRecorder
}

func newSampler(m *Model, nranks int) *sampler {
	root := dist.NewRNG(m.Seed)
	s := &sampler{
		model:   m,
		rankRNG: make([]*dist.RNG, nranks),
		msgRNG:  root.ForkNamed("messages"),
	}
	for r := 0; r < nranks; r++ {
		s.rankRNG[r] = root.ForkNamed(fmt.Sprintf("rank-%d", r))
	}
	return s
}

// sampleFast draws one value from d, devirtualizing the common
// concrete distributions: the type switch lets the compiler emit
// direct (inlinable) calls into the ziggurat fast path for the
// families that dominate perturbation models, instead of an interface
// dispatch per draw. Behavior is identical to d.Sample(r) for every
// type — this is purely a call-overhead optimization, so streaming,
// compiled, and batched engines all draw the same values whether or
// not their call site went through the switch.
//
//mpg:hotpath
func sampleFast(d dist.Distribution, r *dist.RNG) float64 {
	switch v := d.(type) {
	case dist.Exponential:
		return v.Sample(r)
	case dist.Constant:
		return v.C
	case dist.Normal:
		return v.Sample(r)
	case dist.Uniform:
		return v.Sample(r)
	default:
		return d.Sample(r) //mpg:lint-ignore hotpathprop interface fallback for custom distributions outside the specialized fast paths; stock models hit the concrete cases above
	}
}

// clamp applies the non-negativity rule unless the model allows
// negative deltas.
//
//mpg:hotpath
func (s *sampler) clamp(v float64) float64 {
	if v < 0 && !s.model.AllowNegative {
		return 0
	}
	return v
}

// noiseDist resolves the noise distribution for a rank (per-rank
// override first, then the shared one; nil = no noise).
//
//mpg:hotpath
func (s *sampler) noiseDist(rank int) dist.Distribution {
	if rank < len(s.model.RankOSNoise) && s.model.RankOSNoise[rank] != nil {
		return s.model.RankOSNoise[rank]
	}
	return s.model.OSNoise
}

// osNoise samples the local-edge delta for one operation edge on rank.
//
//mpg:hotpath
func (s *sampler) osNoise(rank int) float64 {
	if s.pre != nil {
		v := s.pre[s.preCur]
		s.preCur++
		return v
	}
	//mpg:lint-ignore hotpathprop draw-plan recording runs once at plan capture, not during compiled replay
	if s.rec != nil {
		s.rec.noise(rank)
		return 0
	}
	d := s.noiseDist(rank)
	if d == nil {
		return 0
	}
	s.nNoise++
	// Exponential is the common noise law; asserting it here inlines
	// its Sample so the draw is one call (stdExp) deep instead of
	// going through sampleFast's extra frame.
	if e, ok := d.(dist.Exponential); ok {
		return s.clamp(e.Sample(s.rankRNG[rank]))
	}
	return s.clamp(sampleFast(d, s.rankRNG[rank]))
}

// computeNoise samples the delta for a compute gap of w cycles; a
// zero-length gap (back-to-back events) accrues no noise.
//
//mpg:hotpath
func (s *sampler) computeNoise(rank int, w int64) float64 {
	d := s.noiseDist(rank)
	if d == nil || w <= 0 {
		return 0
	}
	q := s.model.NoiseQuantum
	if q <= 0 {
		return s.osNoise(rank)
	}
	quanta := (w + q - 1) / q
	if quanta == 0 {
		return 0
	}
	n := quanta
	if n > MaxNoiseSamplesPerEdge {
		n = MaxNoiseSamplesPerEdge
	}
	var sum float64
	s.nNoise += n
	for i := int64(0); i < n; i++ {
		sum += s.clamp(sampleFast(d, s.rankRNG[rank]))
	}
	if n < quanta {
		sum *= float64(quanta) / float64(n)
	}
	return sum
}

// latency samples the message-edge latency delta.
//
//mpg:hotpath
func (s *sampler) latency() float64 {
	if s.pre != nil {
		v := s.pre[s.preCur]
		s.preCur++
		return v
	}
	//mpg:lint-ignore hotpathprop draw-plan recording runs once at plan capture, not during compiled replay
	if s.rec != nil {
		s.rec.msg(drawLatency, 0)
		return 0
	}
	if s.model.MsgLatency == nil {
		return 0
	}
	s.nMsg++
	if e, ok := s.model.MsgLatency.(dist.Exponential); ok {
		return s.clamp(e.Sample(s.msgRNG))
	}
	return s.clamp(sampleFast(s.model.MsgLatency, s.msgRNG))
}

// perByte samples the size-dependent message delta for a payload.
//
//mpg:hotpath
func (s *sampler) perByte(bytes int64) float64 {
	if s.pre != nil {
		v := s.pre[s.preCur]
		s.preCur++
		return v
	}
	//mpg:lint-ignore hotpathprop draw-plan recording runs once at plan capture, not during compiled replay
	if s.rec != nil {
		s.rec.msg(drawPerByte, bytes)
		return 0
	}
	if s.model.PerByte == nil || bytes <= 0 {
		return 0
	}
	s.nMsg++
	if c, ok := s.model.PerByte.(dist.Constant); ok {
		return s.clamp(c.C * float64(bytes))
	}
	return s.clamp(sampleFast(s.model.PerByte, s.msgRNG) * float64(bytes))
}
