package core

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"mpgraph/internal/trace"
)

// Analyze builds the message-passing graph from the trace set and
// propagates the model's perturbations through it in a single
// streaming pass, returning the per-rank delay outcome.
func Analyze(set *trace.Set, model *Model, opts Options) (*Result, error) {
	defer opts.Metrics.Timer("core_analyze").Start()()
	defer opts.Metrics.SpanStart("analyze")()
	a, err := newAnalyzer(set, model, opts)
	if err != nil {
		return nil, err
	}
	return a.run()
}

// --- matching state ----------------------------------------------------

// msgKey identifies a point-to-point matching queue (world ranks).
type msgKey struct {
	comm     int32
	src, dst int32
	tag      int32
}

// msgState tracks one point-to-point transfer through matching and
// delay resolution. The embedded xfer carries the value half (post
// delays, sampled deltas, completion contributions — see compute.go);
// msgState adds the structural half the streaming matcher needs.
type msgState struct {
	xfer

	bytes    int64
	sendSeen bool
	recvSeen bool
	matched  bool

	// Ranks stalled on this transfer (blocking sender/receiver or
	// waiters), to be rescheduled when the match resolves.
	waiters []int

	// Graph-sink and critical-path bookkeeping.
	sendStartRef NodeRef
	recvStartRef NodeRef
	sendDoneRef  NodeRef
	recvDoneRef  NodeRef
	sendDoneSet  bool
	recvDoneSet  bool
	dataEmitted  bool
	ackEmitted   bool
}

// collKey identifies one collective instance.
type collKey struct {
	comm int32
	seq  int64
}

// collParticipant is one rank's arrival at a collective.
type collParticipant struct {
	rank      int
	startD    float64
	startAttr Attribution
	startRef  NodeRef
	endRef    NodeRef
	dur       int64
	outD      float64     // resolved completion contribution
	outAttr   Attribution // attribution of outD from this rank's view
	// outPred anchors outD for critical-path extraction: the start
	// subevent of the participant whose path won the collective's max
	// (the hub argmax in approx mode, the adopt-chain origin in
	// explicit mode) and that participant's inbound delay.
	outPredRef NodeRef
	outPredD   float64
}

// collState gathers a collective's participants until all arrive.
type collState struct {
	kind     trace.Kind
	bytes    int64
	expect   int
	root     int32
	parts    []collParticipant
	resolved bool
	lMax     float64 // the propagated max (approx mode), for labels
}

// --- per-rank state -----------------------------------------------------

type phase uint8

const (
	phaseFetch    phase = iota // need next record from the reader
	phaseComplete              // record posted; completing (may stall)
	phaseEOF
)

type rankState struct {
	rank   int
	reader trace.Reader

	eventIdx int64
	started  bool
	prevEnd  int64   // traced local end of the previous record
	prevD    float64 // D at the previous record's end

	ph        phase
	cur       trace.Record
	startD    float64     // D at cur's start subevent
	startAttr Attribution // attribution of startD
	prevAttr  Attribution // attribution at the previous record's end
	posted    bool        // cur's side effects (queue postings) done
	myMsg     *msgState
	myColl    *collState

	stalled bool
	why     string

	region int32

	// Pending critical-path steps for the current record (valid only
	// while crit recording is enabled).
	critStart critStep
	critEnd   critStep

	// Pending interval detail for the current record (valid only while
	// Options.Interval is set): the wait charged by the completion merge
	// and, for receive completions, the matched sender subevent.
	ivWait      float64
	ivState     WaitState
	ivPeerRank  int
	ivPeerEvent int64

	reqs map[uint64]*reqRef

	sendReqs    int64
	waitedSends int64
	unwaited    int
}

// reqRef links a request id to its transfer and side.
type reqRef struct {
	msg    *msgState
	isSend bool
	waited bool
}

// --- analyzer -----------------------------------------------------------

type analyzer struct {
	set   *trace.Set
	model *Model
	opts  Options
	smp   *sampler
	res   *Result

	ranks  []*rankState
	queues map[msgKey][]*msgState // unmatched posts, FIFO per key
	colls  map[collKey]*collState

	pendingOps int

	runnable []int
	queued   []bool

	// crit holds the recorded argmax decisions, one critNode per event
	// in per-rank record order; nil unless Options.RecordCritPath.
	crit [][]critNode

	// rec, when non-nil, records the execution schedule as a compiled
	// instruction tape (see compile.go). The recorder observes; it
	// never alters control flow or sampling.
	rec *compileRecorder

	// Reusable collective-resolution buffers (see compute.go kernels).
	csc         collScratch
	collIn      []collIn
	collOutD    []float64
	collOutAttr []Attribution
	collOutPred []int32

	// Engine counters, flushed to Options.Metrics at the end of the
	// run. Plain ints: the analyzer is single-goroutine.
	nLocalEdges, nMsgEdges, nCollEdges int64
	nMatches, nColls                   int64
}

func newAnalyzer(set *trace.Set, model *Model, opts Options) (*analyzer, error) {
	if model == nil {
		model = &Model{}
	}
	if opts.Burst <= 0 {
		opts.Burst = 64
	}
	n := set.NRanks()
	a := &analyzer{
		set:    set,
		model:  model,
		opts:   opts,
		smp:    newSampler(model, n),
		res:    &Result{NRanks: n, Ranks: make([]RankResult, n), Regions: map[RegionKey]*RegionStats{}},
		ranks:  make([]*rankState, n),
		queues: map[msgKey][]*msgState{},
		colls:  map[collKey]*collState{},
		queued: make([]bool, n),
	}
	if opts.RecordCritPath {
		a.crit = make([][]critNode, n)
	}
	for r := 0; r < n; r++ {
		a.ranks[r] = &rankState{
			rank:   r,
			reader: set.Rank(r),
			region: -1,
			reqs:   map[uint64]*reqRef{},
		}
		a.enqueue(r)
	}
	return a, nil
}

func (a *analyzer) enqueue(rank int) {
	if !a.queued[rank] {
		a.queued[rank] = true
		a.runnable = append(a.runnable, rank)
	}
}

func (a *analyzer) run() (*Result, error) {
	for len(a.runnable) > 0 {
		rank := a.runnable[0]
		a.runnable = a.runnable[1:]
		a.queued[rank] = false
		if err := a.processBurst(a.ranks[rank]); err != nil {
			return nil, err
		}
	}
	// Every rank must have drained cleanly.
	var stuck []string
	for _, rs := range a.ranks {
		if rs.ph != phaseEOF {
			stuck = append(stuck, fmt.Sprintf("rank %d: %s", rs.rank, rs.why))
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return nil, fmt.Errorf("core: trace is not self-consistent; unresolved events: %v", stuck)
	}
	for rank := range a.res.Ranks {
		if a.res.Ranks[rank].Events == 0 {
			return nil, fmt.Errorf("core: rank %d trace is empty — trace sets are single-use; build a fresh Set (or Reset an in-memory one) before re-analyzing", rank)
		}
	}
	if a.pendingOps > 0 {
		a.res.warnf("analysis ended with %d unmatched posted operations (unreceived sends or unsent receives)", a.pendingOps)
	}
	orderViolationWarning(a.res)
	a.res.finalize()
	if a.crit != nil {
		a.res.CritPath = buildCritPath(a.res, a.crit)
	}
	if m := a.opts.Metrics; m != nil {
		m.Counter("core_analyses_total").Inc()
		m.Counter("core_events_total").Add(a.res.Events)
		m.Counter("core_edges_local_total").Add(a.nLocalEdges)
		m.Counter("core_edges_message_total").Add(a.nMsgEdges)
		m.Counter("core_edges_collective_total").Add(a.nCollEdges)
		m.Counter("core_matches_total").Add(a.nMatches)
		m.Counter("core_collectives_total").Add(a.nColls)
		m.Counter("core_samples_noise_total").Add(a.smp.nNoise)
		m.Counter("core_samples_message_total").Add(a.smp.nMsg)
		m.Gauge("core_window_high_water").SetMax(float64(a.res.WindowHighWater))
	}
	return a.res, nil
}

// processBurst advances one rank by up to Burst records, stopping on
// stall or EOF.
func (a *analyzer) processBurst(rs *rankState) error {
	for i := 0; i < a.opts.Burst; i++ {
		switch rs.ph {
		case phaseEOF:
			return nil
		case phaseFetch:
			rec, err := rs.reader.Next()
			if errors.Is(err, io.EOF) {
				a.finishRank(rs)
				return nil
			}
			if err != nil {
				return fmt.Errorf("core: rank %d: %w", rs.rank, err)
			}
			if err := a.beginRecord(rs, rec); err != nil {
				return err
			}
		case phaseComplete:
			done, err := a.completeRecord(rs)
			if err != nil {
				return err
			}
			if !done {
				rs.stalled = true
				return nil // stalled; another rank will re-enqueue us
			}
		}
		if a.opts.MaxWindow > 0 && a.pendingOps > a.opts.MaxWindow {
			return fmt.Errorf("core: streaming window exceeded %d pending operations (high water %d); raise Options.MaxWindow or check the trace for unreceived sends",
				a.opts.MaxWindow, a.res.WindowHighWater)
		}
	}
	a.enqueue(rs.rank) // budget exhausted, come back later
	return nil
}

// beginRecord handles the record's start subevent: the compute-gap
// local edge and the queue side effects that must happen exactly once.
func (a *analyzer) beginRecord(rs *rankState, rec trace.Record) error {
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("core: rank %d record %d: %w", rs.rank, rs.eventIdx, err)
	}
	if rs.started && rec.Begin < rs.prevEnd {
		return fmt.Errorf("core: rank %d: record %d overlaps its predecessor", rs.rank, rs.eventIdx)
	}
	rs.cur = rec
	rs.posted = false
	rs.myMsg = nil
	rs.myColl = nil
	rs.ivWait = 0
	rs.ivState = WaitNone
	rs.ivPeerRank = -1
	rs.ivPeerEvent = 0
	rs.ph = phaseComplete

	gap := int64(0)
	if rs.started {
		gap = rec.Begin - rs.prevEnd
	}
	if a.rec != nil {
		a.rec.onBegin(rs, gap)
	}
	delta := a.smp.computeNoise(rs.rank, gap)
	rs.startD = rs.prevD + delta
	rs.startAttr = rs.prevAttr.addOwn(delta)
	a.res.Ranks[rs.rank].InjectedLocal += delta
	if a.model.AllowNegative && rs.started {
		// Order preservation (§4.3): an event may not begin before its
		// predecessor's perturbed end.
		if floor := rs.prevD - float64(gap); rs.startD < floor {
			rs.startD = floor
			a.res.OrderViolations++
		}
	}

	if rs.started {
		a.nLocalEdges++ // compute-gap edge
	}
	if a.crit != nil {
		rs.critStart = critStep{d: rs.startD, kind: EdgeLocal}
		if rs.started {
			rs.critStart.pred = NodeRef{Rank: rs.rank, Event: rs.eventIdx - 1, End: true}
			rs.critStart.predD = rs.prevD
			rs.critStart.hasPred = true
		}
	}
	if sink := a.opts.Graph; sink != nil {
		ref := NodeRef{Rank: rs.rank, Event: rs.eventIdx}
		sink.AddNode(ref, rec.Begin, rec)
		if rs.started {
			prev := NodeRef{Rank: rs.rank, Event: rs.eventIdx - 1, End: true}
			sink.AddEdge(prev, ref, EdgeLocal, gap, "compute")
		}
	}
	return nil
}

// completeRecord attempts to resolve the current record's end
// subevent. It returns false when the record must wait for remote
// counterparts (the rank stalls).
func (a *analyzer) completeRecord(rs *rankState) (bool, error) {
	rec := rs.cur
	var endD float64
	var endAttr Attribution
	if a.crit != nil {
		// Default argmax: the event's own start subevent (the local
		// internal edge). Remote-win completion paths overwrite this.
		rs.critEnd = critStep{
			pred:    NodeRef{Rank: rs.rank, Event: rs.eventIdx},
			predD:   rs.startD,
			kind:    EdgeLocal,
			hasPred: true,
		}
	}
	switch {
	case rec.Kind == trace.KindMarker:
		rs.region = rec.Tag
		endD = rs.startD
		endAttr = rs.startAttr

	case rec.Kind == trace.KindInit || rec.Kind == trace.KindFinalize:
		delta := a.smp.osNoise(rs.rank)
		a.res.Ranks[rs.rank].InjectedLocal += delta
		endD, endAttr = a.combineLocal(rs, delta, rec.Duration())

	case rec.Kind == trace.KindSend || rec.Kind == trace.KindRecv:
		d, attr, ok, err := a.completeBlockingP2P(rs, rec)
		if err != nil || !ok {
			return ok, err
		}
		endD, endAttr = d, attr

	case rec.Kind == trace.KindIsend || rec.Kind == trace.KindIrecv:
		endD = rs.startD // immediate return: end times unmodified (Eq. 2)
		endAttr = rs.startAttr
		a.postNonblocking(rs, rec)

	case rec.Kind.IsCompletion():
		d, attr, ok, err := a.completeWait(rs, rec)
		if err != nil || !ok {
			return ok, err
		}
		endD, endAttr = d, attr

	case rec.Kind.IsCollective():
		d, attr, ok, err := a.completeCollective(rs, rec)
		if err != nil || !ok {
			return ok, err
		}
		endD, endAttr = d, attr

	default:
		return false, fmt.Errorf("core: rank %d: unsupported record kind %s", rs.rank, rec.Kind)
	}

	a.finishRecord(rs, rec, endD, endAttr)
	return true, nil
}

// finishRecord commits the resolved end subevent and advances the
// rank's frontier.
func (a *analyzer) finishRecord(rs *rankState, rec trace.Record, endD float64, endAttr Attribution) {
	if a.rec != nil {
		a.rec.onEnd(rs, rec)
	}
	if a.model.AllowNegative {
		// Order preservation (§4.3): an event may not end before it
		// begins under negative perturbations.
		if floor := rs.startD - float64(rec.Duration()); endD < floor {
			endD = floor
			a.res.OrderViolations++
		}
	}
	a.nLocalEdges++ // the event-internal start→end edge
	if a.crit != nil {
		rs.critEnd.d = endD
		a.crit[rs.rank] = append(a.crit[rs.rank], critNode{start: rs.critStart, end: rs.critEnd})
	}
	if sink := a.opts.Graph; sink != nil {
		ref := NodeRef{Rank: rs.rank, Event: rs.eventIdx, End: true}
		sink.AddNode(ref, rec.End, rec)
		sink.AddEdge(NodeRef{Rank: rs.rank, Event: rs.eventIdx}, ref,
			EdgeLocal, rec.Duration(), rec.Kind.String())
	}
	rs.started = true
	rs.prevEnd = rec.End
	rs.prevD = endD
	rs.prevAttr = endAttr
	rs.stalled = false
	rs.why = ""
	rs.eventIdx++
	rs.ph = phaseFetch

	rr := &a.res.Ranks[rs.rank]
	rr.Events++
	a.res.Events++
	a.res.DelayStats.Add(endD)
	if a.opts.Trajectory != nil {
		a.opts.Trajectory(TrajectoryPoint{
			Rank:    rs.rank,
			Event:   rs.eventIdx - 1,
			Kind:    uint8(rec.Kind),
			OrigEnd: rec.End,
			Delay:   endD,
			Region:  rs.region,
		})
	}
	if a.opts.Interval != nil {
		a.opts.Interval(IntervalPoint{
			Rank:       rs.rank,
			Event:      rs.eventIdx - 1,
			Kind:       uint8(rec.Kind),
			OrigBegin:  rec.Begin,
			OrigEnd:    rec.End,
			StartDelay: rs.startD,
			EndDelay:   endD,
			Wait:       rs.ivWait,
			State:      rs.ivState,
			PeerRank:   rs.ivPeerRank,
			PeerEvent:  rs.ivPeerEvent,
		})
	}

	key := RegionKey{Rank: rs.rank, Region: rs.region}
	reg := a.res.Regions[key]
	if reg == nil {
		reg = &RegionStats{}
		a.res.Regions[key] = reg
	}
	if !reg.firstSeen {
		reg.firstSeen = true
		reg.firstDelay = endD
	}
	reg.Events++
	reg.DelayGrowth = endD - reg.firstDelay
}

// finishRank handles EOF on one rank.
func (a *analyzer) finishRank(rs *rankState) {
	rs.ph = phaseEOF
	rr := &a.res.Ranks[rs.rank]
	rr.OrigEnd = rs.prevEnd
	rr.FinalDelay = rs.prevD
	rr.Attr = rs.prevAttr
	if rs.sendReqs > 0 && rs.waitedSends == 0 {
		// The paper's Section 4.3 warning: only asynchronous sends with
		// no completion check — perturbation correctness cannot be
		// guaranteed for arbitrary perturbations.
		a.res.warnf("rank %d issues nonblocking sends but never waits on any; perturbed ordering cannot be guaranteed (paper §4.3)", rs.rank)
	}
	if rs.unwaited > 0 {
		a.res.warnf("rank %d finalized with %d outstanding nonblocking requests", rs.rank, rs.unwaited)
	}
}

// --- combination rules --------------------------------------------------

// combineLocal folds a local-edge delta into the running delay
// (compute.go kernel; shared with the compiled replayer).
func (a *analyzer) combineLocal(rs *rankState, delta float64, w int64) (float64, Attribution) {
	return combineLocalKernel(a.model.Propagation, rs.startD, rs.startAttr, delta, w)
}

// region returns (creating if needed) the stats bucket of the rank's
// current marker region.
func (a *analyzer) region(rs *rankState) *RegionStats {
	key := RegionKey{Rank: rs.rank, Region: rs.region}
	reg := a.res.Regions[key]
	if reg == nil {
		reg = &RegionStats{}
		a.res.Regions[key] = reg
	}
	return reg
}

// merge folds one remote contribution into the local one, recording
// absorbed/propagated statistics for the rank and its current region.
func (a *analyzer) merge(rs *rankState, local, remote float64) float64 {
	return mergeStats(&a.res.Ranks[rs.rank], a.region(rs), local, remote)
}

// --- point-to-point -----------------------------------------------------

// postP2P registers the record's post with the matching queues and
// resolves the transfer if the counterpart has already posted.
func (a *analyzer) postP2P(rs *rankState, rec trace.Record, isSend bool, startD float64) *msgState {
	var key msgKey
	if isSend {
		key = msgKey{comm: rec.Comm, src: int32(rs.rank), dst: rec.Peer, tag: rec.Tag}
	} else {
		key = msgKey{comm: rec.Comm, src: rec.Peer, dst: int32(rs.rank), tag: rec.Tag}
	}
	q := a.queues[key]
	var m *msgState
	// Find the first entry still missing our side (FIFO, non-overtaking).
	for _, cand := range q {
		if isSend && !cand.sendSeen || !isSend && !cand.recvSeen {
			m = cand
			break
		}
	}
	if m == nil {
		m = &msgState{}
		a.queues[key] = append(q, m)
		a.windowGrow()
	}
	if isSend {
		m.sendSeen = true
		m.sendStartD = startD
		m.sendAttr = rs.startAttr
		m.bytes = rec.Bytes
		m.sendStartRef = NodeRef{Rank: rs.rank, Event: rs.eventIdx}
	} else {
		m.recvSeen = true
		m.recvPostD = startD
		m.recvAttr = rs.startAttr
		m.recvStartRef = NodeRef{Rank: rs.rank, Event: rs.eventIdx}
	}
	if m.sendSeen && m.recvSeen && !m.matched {
		a.resolveMatch(key, m, int(key.dst))
	}
	return m
}

// resolveMatch samples the transfer's deltas and computes the shared
// path contributions (paper Fig. 2 / Eq. 1 structure):
//
//	cData = D(send start) + δ_λ1 + δ_t(d)   — the data path
//	cRecv = max(cData, D(recv post))        — transfer completion
func (a *analyzer) resolveMatch(key msgKey, m *msgState, recvRank int) {
	m.dLat1 = a.smp.latency()
	m.dPerByte = a.smp.perByte(m.bytes)
	m.dLat2 = a.smp.latency()
	m.dOS2 = a.smp.osNoise(recvRank)
	m.resolveCompletion()
	m.matched = true
	a.nMatches++
	a.nMsgEdges += 2 // data + acknowledgment edges
	if a.rec != nil {
		a.rec.onMatch(m)
	}
	// Drop the matched entry from the front region of its queue.
	q := a.queues[key]
	for i, cand := range q {
		if cand == m {
			a.queues[key] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(a.queues[key]) == 0 {
		delete(a.queues, key)
	}
	a.windowShrink()
	for _, w := range m.waiters {
		a.enqueue(w)
	}
	m.waiters = nil
}

// completeBlockingP2P resolves a blocking Send or Recv end subevent.
func (a *analyzer) completeBlockingP2P(rs *rankState, rec trace.Record) (float64, Attribution, bool, error) {
	isSend := rec.Kind == trace.KindSend
	if !rs.posted {
		rs.myMsg = a.postP2P(rs, rec, isSend, rs.startD)
		rs.posted = true
	}
	m := rs.myMsg
	if !m.matched {
		m.waiters = append(m.waiters, rs.rank)
		rs.why = fmt.Sprintf("%s peer=%d tag=%d", rec.Kind, rec.Peer, rec.Tag)
		return 0, Attribution{}, false, nil
	}
	var d float64
	var attr Attribution
	if isSend {
		d, attr = a.sendCompletion(rs, m, rec.Duration())
		a.sinkSendDone(rs, m)
	} else {
		d, attr = a.recvCompletion(rs, m, rec.Duration())
		a.sinkRecvDone(rs, m)
	}
	return d, attr, true, nil
}

// critRemoteMsg records the transfer completion as the argmax
// predecessor of the current record's end subevent: the sender's post
// when the data path dominated cRecv, the receiver's post otherwise.
// Either way the winning edge is a message edge.
func (a *analyzer) critRemoteMsg(rs *rankState, m *msgState) {
	if a.crit == nil {
		return
	}
	if m.cRecvFromData {
		rs.critEnd = critStep{pred: m.sendStartRef, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
	} else {
		rs.critEnd = critStep{pred: m.recvStartRef, predD: m.recvPostD, kind: EdgeMessage, hasPred: true}
	}
}

// sendCompletion applies Eq. 1's sender rule: the local path carries
// δ_os1, the remote path is the transfer completion plus the
// acknowledgment latency δ_λ2 (and, anchored, the receiver-side noise
// that Eq. 1's third term includes).
func (a *analyzer) sendCompletion(rs *rankState, m *msgState, w int64) (float64, Attribution) {
	dOS1 := a.smp.osNoise(rs.rank)
	a.res.Ranks[rs.rank].InjectedLocal += dOS1
	local, remote, localAttr, remoteAttr := sendCompletionKernel(
		a.model.Propagation, rs.startD, rs.startAttr, dOS1, w, &m.xfer)
	a.merge(rs, local, remote)
	// mergeStats adopts the remote path exactly when remote > local,
	// so the branch repeats its comparison instead of re-testing the
	// returned float for equality.
	if remote > local {
		rs.ivWait, rs.ivState = remote-local, WaitLateReceiver
		a.critRemoteMsg(rs, m)
		return remote, remoteAttr
	}
	return local, localAttr
}

// recvCompletion applies Eq. 1's receiver rule: the local path carries
// δ_os2, the remote path is the data arrival.
func (a *analyzer) recvCompletion(rs *rankState, m *msgState, w int64) (float64, Attribution) {
	a.res.Ranks[rs.rank].InjectedLocal += m.dOS2
	local, remote, localAttr, remoteAttr := recvCompletionKernel(
		a.model.Propagation, rs.startD, rs.startAttr, w, &m.xfer)
	a.merge(rs, local, remote)
	rs.ivPeerRank = m.sendStartRef.Rank
	rs.ivPeerEvent = m.sendStartRef.Event
	if remote > local {
		rs.ivWait, rs.ivState = remote-local, WaitLateSender
		if a.model.Propagation == PropagationAnchored {
			if a.crit != nil {
				// Anchored receive: the remote path is always the data
				// arrival (cData), never the receiver's own post.
				rs.critEnd = critStep{pred: m.sendStartRef, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
			}
		} else {
			a.critRemoteMsg(rs, m)
		}
		return remote, remoteAttr
	}
	return local, localAttr
}

// postNonblocking registers an Isend/Irecv post; the end subevent is
// unperturbed (immediate return).
func (a *analyzer) postNonblocking(rs *rankState, rec trace.Record) {
	isSend := rec.Kind == trace.KindIsend
	m := a.postP2P(rs, rec, isSend, rs.startD)
	rs.reqs[rec.Req] = &reqRef{msg: m, isSend: isSend}
	rs.unwaited++
	if isSend {
		rs.sendReqs++
	}
}

// completeWait resolves a Wait/Waitall record against its request.
func (a *analyzer) completeWait(rs *rankState, rec trace.Record) (float64, Attribution, bool, error) {
	ref := rs.reqs[rec.Req]
	if ref == nil {
		return 0, Attribution{}, false, fmt.Errorf("core: rank %d: wait on unknown request %d", rs.rank, rec.Req)
	}
	m := ref.msg
	if !m.matched {
		m.waiters = append(m.waiters, rs.rank)
		rs.why = fmt.Sprintf("%s req=%d", rec.Kind, rec.Req)
		return 0, Attribution{}, false, nil
	}
	if !ref.waited {
		ref.waited = true
		rs.unwaited--
		if ref.isSend {
			rs.waitedSends++
		}
	}
	var d float64
	var attr Attribution
	if ref.isSend {
		d, attr = a.sendCompletion(rs, m, rec.Duration())
		a.sinkSendDone(rs, m)
	} else {
		d, attr = a.recvCompletion(rs, m, rec.Duration())
		a.sinkRecvDone(rs, m)
	}
	return d, attr, true, nil
}

// sinkSendDone / sinkRecvDone emit the message edges once the
// corresponding completion subevents are known. The data edge runs
// send-start → receive-completion-end; the acknowledgment edge runs
// receive-completion-end → send-completion-end (Fig. 2/3).
func (a *analyzer) sinkSendDone(rs *rankState, m *msgState) {
	if a.opts.Graph == nil {
		return
	}
	m.sendDoneRef = NodeRef{Rank: rs.rank, Event: rs.eventIdx, End: true}
	m.sendDoneSet = true
	a.sinkMsgEdges(m)
}

func (a *analyzer) sinkRecvDone(rs *rankState, m *msgState) {
	if a.opts.Graph == nil {
		return
	}
	m.recvDoneRef = NodeRef{Rank: rs.rank, Event: rs.eventIdx, End: true}
	m.recvDoneSet = true
	a.sinkMsgEdges(m)
}

func (a *analyzer) sinkMsgEdges(m *msgState) {
	if !m.recvDoneSet {
		return
	}
	sink := a.opts.Graph
	if !m.dataEmitted {
		sink.AddEdge(m.sendStartRef, m.recvDoneRef, EdgeMessage, 0,
			fmt.Sprintf("data %dB", m.bytes))
		m.dataEmitted = true
	}
	if m.sendDoneSet && !m.ackEmitted {
		sink.AddEdge(m.recvDoneRef, m.sendDoneRef, EdgeMessage, 0, "ack")
		m.ackEmitted = true
	}
}

// --- window accounting ---------------------------------------------------

func (a *analyzer) windowGrow() {
	a.pendingOps++
	if a.pendingOps > a.res.WindowHighWater {
		a.res.WindowHighWater = a.pendingOps
	}
}

func (a *analyzer) windowShrink() { a.pendingOps-- }
