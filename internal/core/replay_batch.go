package core

import (
	"errors"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// Batched replay: one walk of the compiled op tape propagates K
// perturbation models at once.
//
// The schedule is sample-invariant (§4.1), so every lane visits the
// same ops in the same order; only the sampled values differ. The
// batch state therefore holds each per-subevent quantity as a flat
// lane-strided array — slot gi of the single replayer becomes the
// K-wide span [gi*K, gi*K+K) — and each tape op is decoded once, its
// delay/attribution update fanned across the K contiguous lanes.
// Equivalence with ReplayCompiled is structural, not approximate:
// every lane owns a full sampler hierarchy seeded exactly as a
// standalone replay would seed it (dist.ForkHierarchyInto over the
// same labels in the same order), and the fan-out loops execute the
// identical FP operation sequence per lane, so lane k's Result is
// byte-identical to ReplayCompiled(c, models[k], opts). The
// batch-vs-single equivalence suite (replay_batch_test.go), the
// verify campaign's CompiledBatchEquivalence check, and the in-band
// mpg-bench -replay-batch gate all pin this.

// DefaultReplayLanes is the lane width ReplayBatch callers use when
// the user does not override it (-replay-lanes). Chosen from the
// mpg-bench -replay-batch sweep over K ∈ {1,4,16,64} on the
// BENCH_replay.json workload: K=16 is the measured knee — tape decode
// and op dispatch amortize across lanes while each event's K-lane span
// still fits a couple of cache lines, whereas K=64 regresses as the
// lane-strided arrays outgrow cache. The headline win is bounded by
// sampling cost, which is per-lane by the byte-identity contract
// (every lane draws exactly what its standalone replay would), so on
// sampling-heavy models the batch mainly buys one pooled state and one
// tape walk per K trials rather than a large per-replay speedup; see
// BENCH_replay.json's "batched" trajectory for the recorded numbers.
const DefaultReplayLanes = 16

// PickReplayLanes resolves a lane-width setting against the number of
// pending replays: non-positive lanes means auto (DefaultReplayLanes),
// and the width never exceeds the work available. The result is at
// least 1.
func PickReplayLanes(lanes, pending int) int {
	if lanes <= 0 {
		lanes = DefaultReplayLanes
	}
	if pending < 1 {
		return 1
	}
	if lanes > pending {
		return pending
	}
	return lanes
}

// BatchOptions tunes a batched replay. The embedded Options apply to
// every lane; Options.Trajectory must be nil (it carries no lane
// identity — use LaneTrajectory) and Options.Graph must be nil (as in
// ReplayCompiled).
type BatchOptions struct {
	Options

	// LaneTrajectory, when non-nil, receives every lane's trajectory
	// points: it is invoked exactly as Options.Trajectory would be for
	// a standalone replay of that lane's model, with the lane index
	// prepended. Points arrive grouped by op — all K lanes of one
	// event end before the next event — so per-lane consumers must key
	// on the lane index, not on arrival order.
	LaneTrajectory func(lane int, p TrajectoryPoint)

	// LaneInterval is Options.Interval with the lane index prepended,
	// under the same delivery contract as LaneTrajectory. Options.
	// Interval must be nil when batching (it carries no lane identity).
	LaneInterval func(lane int, p IntervalPoint)
}

// ReplayBatch propagates K perturbation models over a compiled graph
// program in one tape walk, returning one Result per model. Result k
// is byte-identical to ReplayCompiled(c, models[k], opts.Options):
// same delays, same attribution, same regions, same critical path,
// same warnings. A nil model entry behaves like a nil model passed to
// ReplayCompiled (the zero model).
//
// A single-model batch delegates to the pooled single-replay path.
// Concurrent batches over one Compiled program are safe; each borrows
// its own pooled lane state (pooled per lane width — mixing widths
// under one program works but repools on every width change).
func ReplayBatch(c *Compiled, models []*Model, opts BatchOptions) ([]*Result, error) {
	if opts.Graph != nil {
		return nil, errors.New("core: ReplayBatch cannot feed a graph sink; use Analyze for graph export")
	}
	if opts.Trajectory != nil {
		return nil, errors.New("core: ReplayBatch needs lane identity on trajectory points; set BatchOptions.LaneTrajectory, not Options.Trajectory")
	}
	if opts.Interval != nil {
		return nil, errors.New("core: ReplayBatch needs lane identity on interval points; set BatchOptions.LaneInterval, not Options.Interval")
	}
	if len(models) == 0 {
		return nil, errors.New("core: ReplayBatch requires at least one model")
	}
	if len(models) == 1 {
		single := opts.Options
		if lt := opts.LaneTrajectory; lt != nil {
			single.Trajectory = func(p TrajectoryPoint) { lt(0, p) }
		}
		if li := opts.LaneInterval; li != nil {
			single.Interval = func(p IntervalPoint) { li(0, p) }
		}
		res, err := ReplayCompiled(c, models[0], single)
		if err != nil {
			return nil, err
		}
		return []*Result{res}, nil
	}
	defer opts.Metrics.Timer("core_replay_batch").Start()()
	defer opts.Metrics.SpanStart("replay_batch")()
	K := len(models)
	for i, m := range models {
		if m == nil {
			cp := make([]*Model, K)
			copy(cp, models)
			for j := i; j < K; j++ {
				if cp[j] == nil {
					cp[j] = &Model{}
				}
			}
			models = cp
			break
		}
	}

	st, _ := c.batchPool.Get().(*batchState)
	if st == nil || st.K != K {
		st = newBatchState(c, K)
		opts.Metrics.Counter("core_replay_batch_pool_misses_total").Inc()
	} else {
		opts.Metrics.Counter("core_replay_batch_pool_hits_total").Inc()
	}
	defer c.batchPool.Put(st)
	st.reset(models)
	recordCrit := opts.RecordCritPath
	if recordCrit {
		st.ensureCrit(c)
	}

	res := make([]*Result, K)
	for k := range res {
		res[k] = &Result{
			NRanks:          c.nranks,
			Ranks:           make([]RankResult, c.nranks),
			Regions:         make(map[RegionKey]*RegionStats, len(c.regionKeys)),
			WindowHighWater: c.highWater,
		}
	}

	st.walk(c, res, recordCrit, opts.LaneTrajectory, opts.LaneInterval)

	// Finalize each lane exactly as ReplayCompiled finalizes its one
	// result; nothing here may reference pooled memory.
	for k := 0; k < K; k++ {
		r := res[k]
		for rank := 0; rank < c.nranks; rank++ {
			rr := &r.Ranks[rank]
			rr.OrigEnd = c.origEnd[rank]
			rr.FinalDelay = st.prevD[rank*K+k]
			rr.Attr = st.prevAttr[rank*K+k]
		}
		if len(c.warnings) > 0 {
			r.Warnings = make([]string, len(c.warnings), len(c.warnings)+1)
			copy(r.Warnings, c.warnings)
		}
		orderViolationWarning(r)
		r.finalize()
		if len(c.regionKeys) > 0 {
			stats := make([]RegionStats, len(c.regionKeys))
			for ri := range stats {
				stats[ri] = st.regions[ri*K+k]
			}
			for ri, key := range c.regionKeys {
				r.Regions[key] = &stats[ri]
			}
		}
		if recordCrit {
			r.CritPath = buildCritPath(r, st.crit[k*c.nranks:(k+1)*c.nranks])
		}
	}

	if m := opts.Metrics; m != nil {
		m.Counter("core_replay_batches_total").Inc()
		m.Gauge("core_replay_batch_lanes").SetMax(float64(K))
		var events, nNoise, nMsg int64
		for k := range res {
			events += res[k].Events
		}
		for k := range st.smps {
			nNoise += st.smps[k].nNoise
			nMsg += st.smps[k].nMsg
		}
		m.Counter("core_replays_total").Add(int64(K))
		m.Counter("core_events_total").Add(events)
		m.Counter("core_edges_local_total").Add(c.nLocalEdges * int64(K))
		m.Counter("core_edges_message_total").Add(c.nMsgEdges * int64(K))
		m.Counter("core_edges_collective_total").Add(c.nCollEdges * int64(K))
		m.Counter("core_matches_total").Add(c.nMatches * int64(K))
		m.Counter("core_collectives_total").Add(c.nColls * int64(K))
		m.Counter("core_samples_noise_total").Add(nNoise)
		m.Counter("core_samples_message_total").Add(nMsg)
		m.Gauge("core_window_high_water").SetMax(float64(c.highWater))
	}
	return res, nil
}

// batchState is the reusable K-lane working memory, pooled on the
// Compiled program. Layout is structure-of-arrays with the lane index
// innermost: the single replayer's slot i becomes the contiguous span
// [i*K, i*K+K), so one op's K-lane fan-out walks a cache line, not K
// distant arrays. Everything here is reset or fully overwritten each
// batch; nothing escapes into the returned Results.
type batchState struct {
	K int

	// One full sampler hierarchy per lane. rng packs the generators in
	// fork order per lane (messages, then ranks ascending — the same
	// forkLabels order replayState uses); each sampler's pointers
	// address its own lane's window of rng.
	smps       []sampler
	rng        []dist.RNG
	forkLabels []string

	// Lane-strided per-subevent delay state: subevent gi of lane k
	// lives at gi*K+k (gi = evBase[rank]+event, as in replayState).
	startD    []float64
	startAttr []Attribution
	prevD     []float64     // rank*K+k
	prevAttr  []Attribution // rank*K+k

	msgs []xfer // transfer mi of lane k at mi*K+k

	// Collective kernel buffers. collIn is per-op scratch shared
	// across lanes (lanes resolve sequentially within an op); the out
	// arrays are lane-strided by global participant index, written
	// in-place by the stride-K kernels.
	collIn      []collIn
	collOutD    []float64
	collOutAttr []Attribution
	collOutPred []int32
	csc         collScratch

	regions []RegionStats // region ri of lane k at ri*K+k

	// Critical-path recording (lazy; only when RecordCritPath). crit
	// and critBack are lane-major — lane k's rank r at crit[k*nranks+r]
	// — so buildCritPath consumes one lane's window unchanged.
	critStart []critStep // rank*K+k
	crit      [][]critNode
	critBack  []critNode
}

func newBatchState(c *Compiled, K int) *batchState {
	n := c.nranks
	total := int(c.evBase[n])
	st := &batchState{
		K:           K,
		smps:        make([]sampler, K),
		rng:         make([]dist.RNG, K*(n+1)),
		forkLabels:  replayForkLabels(n),
		startD:      make([]float64, K*total),
		startAttr:   make([]Attribution, K*total),
		prevD:       make([]float64, K*n),
		prevAttr:    make([]Attribution, K*n),
		msgs:        make([]xfer, K*len(c.msgs)),
		collIn:      make([]collIn, c.maxParts),
		collOutD:    make([]float64, K*len(c.parts)),
		collOutAttr: make([]Attribution, K*len(c.parts)),
		collOutPred: make([]int32, K*len(c.parts)),
		regions:     make([]RegionStats, K*len(c.regionKeys)),
		critStart:   make([]critStep, K*n),
	}
	for k := 0; k < K; k++ {
		base := k * (n + 1)
		st.smps[k].msgRNG = &st.rng[base]
		st.smps[k].rankRNG = make([]*dist.RNG, n)
		for r := 0; r < n; r++ {
			st.smps[k].rankRNG[r] = &st.rng[base+1+r]
		}
	}
	return st
}

// reset re-seeds every lane's sampler hierarchy exactly as a
// standalone replay of that lane's model would (ForkHierarchyInto
// over the shared label order) and clears the per-batch accumulators.
// Per-subevent and per-transfer slots need no clearing: the tape
// writes every slot before reading it, lane by lane.
//
//mpg:hotpath
func (st *batchState) reset(models []*Model) {
	stride := len(st.forkLabels)
	for k := range st.smps {
		smp := &st.smps[k]
		smp.model = models[k]
		smp.nNoise, smp.nMsg = 0, 0
		dist.ForkHierarchyInto(models[k].Seed, st.forkLabels, st.rng[k*stride:(k+1)*stride])
	}
	for i := range st.prevD {
		st.prevD[i] = 0
		st.prevAttr[i] = Attribution{}
	}
	for i := range st.regions {
		st.regions[i] = RegionStats{}
	}
}

// ensureCrit prepares the per-lane per-rank argmax recording slices
// over a single pooled backing array (lane-major, each rank window
// three-index sliced so appends can never cross into a neighbor).
func (st *batchState) ensureCrit(c *Compiled) {
	total := int(c.evBase[c.nranks])
	if st.critBack == nil {
		st.critBack = make([]critNode, st.K*total)
		st.crit = make([][]critNode, st.K*c.nranks)
	}
	for k := 0; k < st.K; k++ {
		lb := k * total
		for r := 0; r < c.nranks; r++ {
			lo, hi := lb+int(c.evBase[r]), lb+int(c.evBase[r+1])
			st.crit[k*c.nranks+r] = st.critBack[lo:lo:hi]
		}
	}
}

// walk is the batched tape loop: each op is decoded once and its
// update fanned across the K lanes. Per lane it mirrors
// ReplayCompiled's op dispatch statement for statement — same kernel
// calls, same comparison order, same clamp rules — which is what makes
// every lane byte-identical to a standalone replay.
//
//mpg:hotpath
func (st *batchState) walk(c *Compiled, res []*Result, recordCrit bool, lt func(int, TrajectoryPoint), li func(int, IntervalPoint)) {
	K := st.K
	k64 := int64(K)
	for i := range c.ops {
		o := &c.ops[i]
		switch o.code {
		case opBegin:
			rank := int(o.rank)
			base := (c.evBase[rank] + o.event) * k64
			pb := rank * K
			for k := 0; k < K; k++ {
				smp := &st.smps[k]
				delta := smp.computeNoise(rank, o.aux)
				sD := st.prevD[pb+k] + delta
				sA := st.prevAttr[pb+k].addOwn(delta)
				res[k].Ranks[rank].InjectedLocal += delta
				if smp.model.AllowNegative && o.started {
					// Order preservation (§4.3), as in beginRecord.
					if floor := st.prevD[pb+k] - float64(o.aux); sD < floor {
						sD = floor
						res[k].OrderViolations++
					}
				}
				st.startD[base+int64(k)] = sD
				st.startAttr[base+int64(k)] = sA
				if recordCrit {
					cs := critStep{d: sD, kind: EdgeLocal}
					if o.started {
						cs.pred = NodeRef{Rank: rank, Event: o.event - 1, End: true}
						cs.predD = st.prevD[pb+k]
						cs.hasPred = true
					}
					st.critStart[pb+k] = cs
				}
			}

		case opMatch:
			cm := &c.msgs[o.arg]
			sgi := (c.evBase[cm.sendRank] + cm.sendEvent) * k64
			rgi := (c.evBase[cm.recvRank] + cm.recvEvent) * k64
			mi := int64(o.arg) * k64
			matchLanesKernel(st.smps, st.msgs[mi:mi+k64],
				st.startD[sgi:sgi+k64], st.startAttr[sgi:sgi+k64],
				st.startD[rgi:rgi+k64], st.startAttr[rgi:rgi+k64],
				cm.bytes, int(cm.recvRank))

		case opCollResolve:
			st.resolveCollLanes(c, o.arg)

		default: // end ops
			rank := int(o.rank)
			base := (c.evBase[rank] + o.event) * k64
			pb := rank * K
			rb := int(o.region) * K
			for k := 0; k < K; k++ {
				smp := &st.smps[k]
				model := smp.model
				sD := st.startD[base+int64(k)]
				sA := st.startAttr[base+int64(k)]
				rr := &res[k].Ranks[rank]
				reg := &st.regions[rb+k]
				var endD float64
				var endAttr Attribution
				var critEnd critStep
				var ivWait float64
				var ivState WaitState
				if recordCrit {
					// Default argmax: the event's own start subevent.
					critEnd = critStep{pred: NodeRef{Rank: rank, Event: o.event}, predD: sD, kind: EdgeLocal, hasPred: true}
				}
				switch o.code {
				case opEndMarker, opEndImmediate:
					endD, endAttr = sD, sA

				case opEndLocal:
					delta := smp.osNoise(rank)
					rr.InjectedLocal += delta
					endD, endAttr = combineLocalKernel(model.Propagation, sD, sA, delta, o.aux)

				case opEndSend:
					m := &st.msgs[int64(o.arg)*k64+int64(k)]
					dOS1 := smp.osNoise(rank)
					rr.InjectedLocal += dOS1
					local, remote, localAttr, remoteAttr := sendCompletionKernel(
						model.Propagation, sD, sA, dOS1, o.aux, m)
					mergeStats(rr, reg, local, remote)
					if remote > local {
						endD, endAttr = remote, remoteAttr
						ivWait, ivState = remote-local, WaitLateReceiver
						if recordCrit {
							critEnd = st.msgCritLane(c, o.arg, k)
						}
					} else {
						endD, endAttr = local, localAttr
					}

				case opEndRecv:
					m := &st.msgs[int64(o.arg)*k64+int64(k)]
					rr.InjectedLocal += m.dOS2
					local, remote, localAttr, remoteAttr := recvCompletionKernel(
						model.Propagation, sD, sA, o.aux, m)
					mergeStats(rr, reg, local, remote)
					if remote > local {
						endD, endAttr = remote, remoteAttr
						ivWait, ivState = remote-local, WaitLateSender
						if recordCrit {
							if model.Propagation == PropagationAnchored {
								// Anchored receive: the remote path is always the
								// data arrival, never the receiver's own post.
								cm := &c.msgs[o.arg]
								critEnd = critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
							} else {
								critEnd = st.msgCritLane(c, o.arg, k)
							}
						}
					} else {
						endD, endAttr = local, localAttr
					}

				case opEndColl:
					pt := &c.parts[o.arg]
					pi := int(o.arg)*K + k
					local := sD
					remote := st.collOutD[pi]
					if model.Propagation == PropagationAnchored {
						remote -= float64(pt.dur)
					}
					mergeStats(rr, reg, local, remote)
					if remote > local {
						endD, endAttr = remote, st.collOutAttr[pi]
						ivWait, ivState = remote-local, WaitCollective
						if recordCrit {
							cc := &c.colls[pt.coll]
							wp := &c.parts[cc.partOff+st.collOutPred[pi]]
							wgi := (c.evBase[wp.rank]+wp.event)*k64 + int64(k)
							critEnd = critStep{pred: NodeRef{Rank: int(wp.rank), Event: wp.event}, predD: st.startD[wgi], kind: EdgeCollective, hasPred: true}
						}
					} else {
						endD, endAttr = local, sA
					}
				}

				// Commit, mirroring finishRecord.
				if model.AllowNegative {
					if floor := sD - float64(o.aux); endD < floor {
						endD = floor
						res[k].OrderViolations++
					}
				}
				if recordCrit {
					critEnd.d = endD
					//mpg:lint-ignore hotpathalloc appends into pooled critBack backing whose cap is the lane's full per-rank event count; never grows
					st.crit[k*c.nranks+rank] = append(st.crit[k*c.nranks+rank], critNode{start: st.critStart[pb+k], end: critEnd})
				}
				st.prevD[pb+k] = endD
				st.prevAttr[pb+k] = endAttr
				rr.Events++
				res[k].Events++
				res[k].DelayStats.Add(endD)
				if lt != nil {
					lt(k, TrajectoryPoint{
						Rank:    rank,
						Event:   o.event,
						Kind:    o.kind,
						OrigEnd: o.origEnd,
						Delay:   endD,
						Region:  c.regionKeys[o.region].Region,
					})
				}
				if li != nil {
					p := IntervalPoint{
						Rank:       rank,
						Event:      o.event,
						Kind:       o.kind,
						OrigBegin:  o.origEnd - o.aux,
						OrigEnd:    o.origEnd,
						StartDelay: sD,
						EndDelay:   endD,
						Wait:       ivWait,
						State:      ivState,
						PeerRank:   -1,
					}
					if o.code == opEndRecv {
						cm := &c.msgs[o.arg]
						p.PeerRank = int(cm.sendRank)
						p.PeerEvent = cm.sendEvent
					}
					li(k, p)
				}
				if !reg.firstSeen {
					reg.firstSeen = true
					reg.firstDelay = endD
				}
				reg.Events++
				reg.DelayGrowth = endD - reg.firstDelay
			}
		}
	}
}

// msgCritLane is msgCrit for one batch lane: the winning message-edge
// predecessor of lane k's view of a transfer completion.
//
//mpg:hotpath
func (st *batchState) msgCritLane(c *Compiled, idx int32, k int) critStep {
	m := &st.msgs[int(idx)*st.K+k]
	cm := &c.msgs[idx]
	if m.cRecvFromData {
		return critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
	}
	return critStep{pred: NodeRef{Rank: int(cm.recvRank), Event: cm.recvEvent}, predD: m.recvPostD, kind: EdgeMessage, hasPred: true}
}

// resolveCollLanes runs the collective resolution kernel once per
// lane, mirroring resolveColl's mode dispatch with the lane's own
// model and sampler. The in buffer is rebuilt per lane from the
// lane-strided start arrays; outputs land lane-strided via the
// kernels' stride parameter.
//
//mpg:hotpath
func (st *batchState) resolveCollLanes(c *Compiled, idx int32) {
	K := st.K
	k64 := int64(K)
	cc := &c.colls[idx]
	p := int(cc.partN)
	in := st.collIn[:p]
	for k := 0; k < K; k++ {
		for j := 0; j < p; j++ {
			pt := &c.parts[int(cc.partOff)+j]
			gi := (c.evBase[pt.rank]+pt.event)*k64 + int64(k)
			in[j] = collIn{rank: int(pt.rank), startD: st.startD[gi], startAttr: st.startAttr[gi]}
		}
		off := int(cc.partOff)*K + k
		outD := st.collOutD[off:]
		outAttr := st.collOutAttr[off:]
		outPred := st.collOutPred[off:]
		smp := &st.smps[k]
		if cc.kind == trace.KindScan {
			// Scan always uses the explicit prefix chain (see
			// resolveCollective).
			resolveExplicitKernel(smp, cc.kind, cc.bytes, cc.root, in, &st.csc, outD, outAttr, outPred, K)
			continue
		}
		switch smp.model.Collectives {
		case CollectiveApprox:
			resolveApproxKernel(smp, cc.kind, cc.bytes, in, outD, outAttr, outPred, K)
		case CollectiveExplicit:
			resolveExplicitKernel(smp, cc.kind, cc.bytes, cc.root, in, &st.csc, outD, outAttr, outPred, K)
		default:
			// Unknown mode: the streaming engine resolves nothing; clear
			// this lane's reused slots so stale values can't leak.
			for j := 0; j < p; j++ {
				outD[j*K], outAttr[j*K], outPred[j*K] = 0, Attribution{}, 0
			}
		}
	}
}
