package core

import (
	"errors"

	"mpgraph/internal/dist"
	"mpgraph/internal/trace"
)

// Batched replay: one walk of the compiled op tape propagates K
// perturbation models at once.
//
// The schedule is sample-invariant (§4.1), so every lane visits the
// same ops in the same order; only the sampled values differ. The
// batch state therefore holds each per-subevent quantity as a flat
// lane-strided array — slot gi of the single replayer becomes the
// K-wide span [gi*K, gi*K+K) — and each tape op is decoded once, its
// delay/attribution update fanned across the K contiguous lanes.
// Equivalence with ReplayCompiled is structural, not approximate:
// every lane owns a full sampler hierarchy seeded exactly as a
// standalone replay would seed it (dist.ForkHierarchyInto over the
// same labels in the same order), and the fan-out loops execute the
// identical FP operation sequence per lane, so lane k's Result is
// byte-identical to ReplayCompiled(c, models[k], opts). The
// batch-vs-single equivalence suite (replay_batch_test.go), the
// verify campaign's CompiledBatchEquivalence check, and the in-band
// mpg-bench -replay-batch gate all pin this.

// DefaultReplayLanes is the lane width ReplayBatch callers use when
// the user does not override it (-replay-lanes). Chosen from the
// mpg-bench -replay-batch sweep over K ∈ {1,4,16,64} on the
// BENCH_replay.json workload: K=16 balances tape-decode amortization
// against cache footprint (K=64 regresses as the lane-strided arrays
// outgrow cache). Per-replay the batch no longer beats the scalar
// compiled path — since the ziggurat/draw-specialization work
// (DESIGN.md §8.2) the specialized scalar replay is slightly faster —
// so the batch's value is structural: one pooled state, one walk, and
// one task-dispatch per K trials (fewer, larger parallel tasks in
// sweeps), with column-wise SampleInto draws over the SoA lane
// layout; see BENCH_replay.json's "batched" trajectory for numbers.
const DefaultReplayLanes = 16

// PickReplayLanes resolves a lane-width setting against the number of
// pending replays: non-positive lanes means auto (DefaultReplayLanes),
// and the width never exceeds the work available. The result is at
// least 1.
func PickReplayLanes(lanes, pending int) int {
	if lanes <= 0 {
		lanes = DefaultReplayLanes
	}
	if pending < 1 {
		return 1
	}
	if lanes > pending {
		return pending
	}
	return lanes
}

// BatchOptions tunes a batched replay. The embedded Options apply to
// every lane; Options.Trajectory must be nil (it carries no lane
// identity — use LaneTrajectory) and Options.Graph must be nil (as in
// ReplayCompiled).
type BatchOptions struct {
	Options

	// LaneTrajectory, when non-nil, receives every lane's trajectory
	// points: it is invoked exactly as Options.Trajectory would be for
	// a standalone replay of that lane's model, with the lane index
	// prepended. Points arrive grouped by op — all K lanes of one
	// event end before the next event — so per-lane consumers must key
	// on the lane index, not on arrival order.
	LaneTrajectory func(lane int, p TrajectoryPoint)

	// LaneInterval is Options.Interval with the lane index prepended,
	// under the same delivery contract as LaneTrajectory. Options.
	// Interval must be nil when batching (it carries no lane identity).
	LaneInterval func(lane int, p IntervalPoint)
}

// ReplayBatch propagates K perturbation models over a compiled graph
// program in one tape walk, returning one Result per model. Result k
// is byte-identical to ReplayCompiled(c, models[k], opts.Options):
// same delays, same attribution, same regions, same critical path,
// same warnings. A nil model entry behaves like a nil model passed to
// ReplayCompiled (the zero model).
//
// A single-model batch delegates to the pooled single-replay path.
// Concurrent batches over one Compiled program are safe; each borrows
// its own pooled lane state (pooled per lane width — mixing widths
// under one program works but repools on every width change).
func ReplayBatch(c *Compiled, models []*Model, opts BatchOptions) ([]*Result, error) {
	if opts.Graph != nil {
		return nil, errors.New("core: ReplayBatch cannot feed a graph sink; use Analyze for graph export")
	}
	if opts.Trajectory != nil {
		return nil, errors.New("core: ReplayBatch needs lane identity on trajectory points; set BatchOptions.LaneTrajectory, not Options.Trajectory")
	}
	if opts.Interval != nil {
		return nil, errors.New("core: ReplayBatch needs lane identity on interval points; set BatchOptions.LaneInterval, not Options.Interval")
	}
	if len(models) == 0 {
		return nil, errors.New("core: ReplayBatch requires at least one model")
	}
	if len(models) == 1 {
		single := opts.Options
		if lt := opts.LaneTrajectory; lt != nil {
			single.Trajectory = func(p TrajectoryPoint) { lt(0, p) }
		}
		if li := opts.LaneInterval; li != nil {
			single.Interval = func(p IntervalPoint) { li(0, p) }
		}
		res, err := ReplayCompiled(c, models[0], single)
		if err != nil {
			return nil, err
		}
		return []*Result{res}, nil
	}
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: the registry observes the replay but never feeds results back
	defer opts.Metrics.Timer("core_replay_batch").Start()()
	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: spans observe the replay but never feed back into its results
	defer opts.Metrics.SpanStart("replay_batch")()
	K := len(models)
	for i, m := range models {
		if m == nil {
			cp := make([]*Model, K)
			copy(cp, models)
			for j := i; j < K; j++ {
				if cp[j] == nil {
					cp[j] = &Model{}
				}
			}
			models = cp
			break
		}
	}

	st := c.batchPoolGet()
	if st == nil || st.K != K {
		//mpg:lint-ignore hotpathprop cold pool-miss path: the lane-strided state is built once per K and recycled via the pool
		st = newBatchState(c, K)
		//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
		opts.Metrics.Counter("core_replay_batch_pool_misses_total").Inc()
	} else {
		//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary
		opts.Metrics.Counter("core_replay_batch_pool_hits_total").Inc()
	}
	defer c.batchPoolPut(st)
	st.reset(models)
	recordCrit := opts.RecordCritPath
	if recordCrit {
		//mpg:lint-ignore hotpathprop lazy one-time critical-path buffers, allocated on first use and recycled with the pooled state
		st.ensureCrit(c)
	}

	res := make([]*Result, K)
	for k := range res {
		res[k] = &Result{
			NRanks:          c.nranks,
			Ranks:           make([]RankResult, c.nranks),
			Regions:         make(map[RegionKey]*RegionStats, len(c.regionKeys)),
			WindowHighWater: c.highWater,
		}
	}

	st.walk(c, recordCrit, opts.LaneTrajectory, opts.LaneInterval)

	// Finalize each lane exactly as ReplayCompiled finalizes its one
	// result; nothing here may reference pooled memory. The walk's SoA
	// accumulators are copied out by value, then the finalize-only
	// fields filled in.
	for k := 0; k < K; k++ {
		r := res[k]
		for rank := 0; rank < c.nranks; rank++ {
			acc := st.rankAcc[rank*K+k]
			acc.Events = st.rankEvents[rank]
			acc.OrigEnd = c.origEnd[rank]
			acc.FinalDelay = st.prevD[rank*K+k]
			acc.Attr = st.prevAttr[rank*K+k]
			r.Ranks[rank] = acc
		}
		r.Events = st.events
		r.OrderViolations = st.ordViol[k]
		r.DelayStats = st.delayAcc[k]
		if len(c.warnings) > 0 {
			r.Warnings = make([]string, len(c.warnings), len(c.warnings)+1)
			copy(r.Warnings, c.warnings)
		}
		//mpg:lint-ignore hotpathprop once-per-replay warning assembly after the event loop
		orderViolationWarning(r)
		r.finalize()
		if len(c.regionKeys) > 0 {
			stats := make([]RegionStats, len(c.regionKeys))
			for ri := range stats {
				stats[ri] = st.regions[ri*K+k]
			}
			for ri, key := range c.regionKeys {
				r.Regions[key] = &stats[ri]
			}
		}
		if recordCrit {
			//mpg:lint-ignore hotpathprop once-per-replay path reconstruction after the event loop
			r.CritPath = buildCritPath(r, st.crit[k*c.nranks:(k+1)*c.nranks])
		}
	}

	//mpg:lint-ignore hotpathprop,detreach out-of-band metrics boundary: recorded after the event loop, never feeds back into replay results
	if m := opts.Metrics; m != nil {
		m.Counter("core_replay_batches_total").Inc()
		m.Gauge("core_replay_batch_lanes").SetMax(float64(K))
		var events, nNoise, nMsg int64
		for k := range res {
			events += res[k].Events
		}
		for k := range st.smps {
			nNoise += st.smps[k].nNoise
			nMsg += st.smps[k].nMsg
		}
		m.Counter("core_replays_total").Add(int64(K))
		m.Counter("core_events_total").Add(events)
		m.Counter("core_edges_local_total").Add(c.nLocalEdges * int64(K))
		m.Counter("core_edges_message_total").Add(c.nMsgEdges * int64(K))
		m.Counter("core_edges_collective_total").Add(c.nCollEdges * int64(K))
		m.Counter("core_matches_total").Add(c.nMatches * int64(K))
		m.Counter("core_collectives_total").Add(c.nColls * int64(K))
		m.Counter("core_samples_noise_total").Add(nNoise)
		m.Counter("core_samples_message_total").Add(nMsg)
		m.Gauge("core_window_high_water").SetMax(float64(c.highWater))
	}
	return res, nil
}

// batchState is the reusable K-lane working memory, pooled on the
// Compiled program. Layout is structure-of-arrays with the lane index
// innermost: the single replayer's slot i becomes the contiguous span
// [i*K, i*K+K), so one op's K-lane fan-out walks a cache line, not K
// distant arrays. Everything here is reset or fully overwritten each
// batch; nothing escapes into the returned Results.
type batchState struct {
	K int

	// One full sampler hierarchy per lane. rng packs the generators
	// stream-major: stream i (fork order: messages, then ranks
	// ascending — the same forkLabels order replayState uses) of lane k
	// lives at rng[i*K+k], so one stream's K lane generators form a
	// contiguous span that the column-wise dist.BatchSampler draws can
	// walk directly. Each lane's sampler pointers address its own
	// strided column.
	smps       []sampler
	rng        []dist.RNG
	forkLabels []string

	// Lane-vectorized draw plan, rebuilt per reset (planDraws): when
	// every lane's model resolves the *same* distribution value at a
	// draw site and that value is batchable, the site draws all K lanes
	// with one SampleInto loop over the stream's contiguous generators
	// instead of K interface-dispatched scalar draws. The *B fields
	// hold the shared batch sampler (nil: fall back to scalar), the
	// *Zero fields record that every lane resolves nil (pure zero
	// fill, no RNG consumed — exactly like the scalar nil guard).
	latB, pbB       dist.BatchSampler
	latZero, pbZero bool
	noiseB          []dist.BatchSampler // per rank
	noiseZero       []bool              // per rank
	noiseQZero      bool                // no lane uses quantized compute noise
	laneBuf         []float64           // 4*K draw-column scratch for one op

	// Lane-strided per-subevent delay state: subevent gi of lane k
	// lives at gi*K+k (gi = evBase[rank]+event, as in replayState).
	startD    []float64
	startAttr []Attribution
	prevD     []float64     // rank*K+k
	prevAttr  []Attribution // rank*K+k

	msgs []xfer // transfer mi of lane k at mi*K+k

	// Collective kernel buffers. collIn is per-op scratch shared
	// across lanes (lanes resolve sequentially within an op); the out
	// arrays are lane-strided by global participant index, written
	// in-place by the stride-K kernels.
	collIn      []collIn
	collOutD    []float64
	collOutAttr []Attribution
	collOutPred []int32
	csc         collScratch

	regions []RegionStats // region ri of lane k at ri*K+k

	// Walk accumulators for per-Result totals, kept SoA so the fan
	// loops touch contiguous scratch instead of chasing K heap Results:
	// rank totals at rankAcc[rank*K+k] (only the walk-accumulated
	// fields; the finalizer fills the rest), lane k's delay statistics
	// at delayAcc[k], order violations at ordViol[k]. Event counts are
	// lane-invariant — every lane visits every op — so the walk counts
	// them once (events, rankEvents) and the finalizer fans them out.
	rankAcc    []RankResult
	delayAcc   []dist.Welford
	ordViol    []int64
	rankEvents []int64
	events     int64

	// Per-lane model flags hoisted at reset so the fan loops read a
	// contiguous byte/word per lane instead of chasing K Model pointers
	// on every event.
	laneProp []PropagationMode
	laneNeg  []bool

	// Critical-path recording (lazy; only when RecordCritPath). crit
	// and critBack are lane-major — lane k's rank r at crit[k*nranks+r]
	// — so buildCritPath consumes one lane's window unchanged.
	critStart []critStep // rank*K+k
	crit      [][]critNode
	critBack  []critNode
}

// batchPoolGet and batchPoolPut confine the analysis loader's stubbed
// sync.Pool to one seam, mirroring poolGet/poolPut for the scalar
// replay state.
func (c *Compiled) batchPoolGet() *batchState {
	//mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Get itself does not allocate (misses take the caller's cold path)
	st, _ := c.batchPool.Get().(*batchState)
	return st
}

func (c *Compiled) batchPoolPut(st *batchState) {
	//mpg:lint-ignore hotpathprop sync.Pool is stubbed by the analysis loader; Put does not allocate
	c.batchPool.Put(st)
}

func newBatchState(c *Compiled, K int) *batchState {
	n := c.nranks
	total := int(c.evBase[n])
	st := &batchState{
		K:           K,
		smps:        make([]sampler, K),
		rng:         make([]dist.RNG, K*(n+1)),
		forkLabels:  replayForkLabels(n),
		startD:      make([]float64, K*total),
		startAttr:   make([]Attribution, K*total),
		prevD:       make([]float64, K*n),
		prevAttr:    make([]Attribution, K*n),
		msgs:        make([]xfer, K*len(c.msgs)),
		collIn:      make([]collIn, c.maxParts),
		collOutD:    make([]float64, K*len(c.parts)),
		collOutAttr: make([]Attribution, K*len(c.parts)),
		collOutPred: make([]int32, K*len(c.parts)),
		regions:     make([]RegionStats, K*len(c.regionKeys)),
		rankAcc:     make([]RankResult, K*n),
		delayAcc:    make([]dist.Welford, K),
		ordViol:     make([]int64, K),
		rankEvents:  make([]int64, n),
		laneProp:    make([]PropagationMode, K),
		laneNeg:     make([]bool, K),
		critStart:   make([]critStep, K*n),
		noiseB:      make([]dist.BatchSampler, n),
		noiseZero:   make([]bool, n),
		laneBuf:     make([]float64, 4*K),
	}
	for k := 0; k < K; k++ {
		st.smps[k].msgRNG = &st.rng[k]
		st.smps[k].rankRNG = make([]*dist.RNG, n)
		for r := 0; r < n; r++ {
			st.smps[k].rankRNG[r] = &st.rng[(1+r)*K+k]
		}
	}
	return st
}

// reset re-seeds every lane's sampler hierarchy exactly as a
// standalone replay of that lane's model would (ForkHierarchyInto
// over the shared label order) and clears the per-batch accumulators.
// Per-subevent and per-transfer slots need no clearing: the tape
// writes every slot before reading it, lane by lane.
//
//mpg:hotpath
func (st *batchState) reset(models []*Model) {
	for k := range st.smps {
		smp := &st.smps[k]
		smp.model = models[k]
		smp.nNoise, smp.nMsg = 0, 0
		st.laneProp[k] = models[k].Propagation
		st.laneNeg[k] = models[k].AllowNegative
		// Stream-major seeding: lane k's generator for fork label i
		// lands at rng[i*K+k] — bit-identical per lane to what a dense
		// ForkHierarchyInto over a lane-major layout would seed, just
		// relocated so each stream's K lane columns stay contiguous.
		dist.ForkHierarchyIntoStride(models[k].Seed, st.forkLabels, st.rng[k:], st.K)
	}
	for i := range st.prevD {
		st.prevD[i] = 0
		st.prevAttr[i] = Attribution{}
	}
	for i := range st.regions {
		st.regions[i] = RegionStats{}
	}
	for i := range st.rankAcc {
		st.rankAcc[i] = RankResult{}
	}
	for k := range st.delayAcc {
		st.delayAcc[k] = dist.Welford{}
		st.ordViol[k] = 0
	}
	for i := range st.rankEvents {
		st.rankEvents[i] = 0
	}
	st.events = 0
	st.planDraws(models)
}

// planDraws rebuilds the lane-vectorized draw plan for this batch's
// models. A draw site batches only when every lane resolves the same
// distribution value, so one SampleInto serves all K lanes; a site
// where every lane resolves nil becomes a zero fill; anything else
// (heterogeneous models) keeps the per-lane scalar draws. All three
// paths produce bit-identical values and RNG consumption per lane —
// the plan only chooses how the draws are scheduled.
func (st *batchState) planDraws(models []*Model) {
	st.latB, st.latZero = planLaneSite(models, siteMsgLatency)
	st.pbB, st.pbZero = planLaneSite(models, sitePerByte)
	st.noiseQZero = true
	for _, m := range models {
		if m.NoiseQuantum > 0 {
			st.noiseQZero = false
			break
		}
	}
	for r := range st.noiseB {
		st.noiseB[r] = nil
		st.noiseZero[r] = false
		d0 := st.smps[0].noiseDist(r)
		if d0 == nil {
			zero := true
			for k := 1; k < st.K; k++ {
				if st.smps[k].noiseDist(r) != nil {
					zero = false
					break
				}
			}
			st.noiseZero[r] = zero
			continue
		}
		b, ok := batchableDist(d0)
		if !ok {
			continue
		}
		same := true
		for k := 1; k < st.K; k++ {
			if st.smps[k].noiseDist(r) != d0 {
				same = false
				break
			}
		}
		if same {
			st.noiseB[r] = b
		}
	}
}

func siteMsgLatency(m *Model) dist.Distribution { return m.MsgLatency }
func sitePerByte(m *Model) dist.Distribution    { return m.PerByte }

// planLaneSite classifies one model-level draw site across the lanes:
// (sampler, false) when every lane shares the same batchable value,
// (nil, true) when every lane resolves nil, (nil, false) otherwise.
func planLaneSite(models []*Model, site func(*Model) dist.Distribution) (dist.BatchSampler, bool) {
	d0 := site(models[0]) //mpg:lint-ignore hotpathprop site accessor func value runs at plan-build time (once per reset), not in the per-event loop
	if d0 == nil {
		for _, m := range models[1:] {
			if site(m) != nil { //mpg:lint-ignore hotpathprop site accessor func value runs at plan-build time (once per reset), not in the per-event loop
				return nil, false
			}
		}
		return nil, true
	}
	b, ok := batchableDist(d0)
	if !ok {
		return nil, false
	}
	for _, m := range models[1:] {
		// Safe even when the other side carries a non-comparable
		// dynamic type (Mixture holds slices): interface comparison
		// panics only when *both* operands carry the same
		// non-comparable type, and batchableDist whitelisted d0's type
		// as comparable.
		if site(m) != d0 { //mpg:lint-ignore hotpathprop site accessor func value runs at plan-build time (once per reset), not in the per-event loop
			return nil, false
		}
	}
	return b, false
}

// batchableDist reports whether d can drive a column-wise SampleInto:
// it must implement dist.BatchSampler and be one of the comparable
// concrete families, so planDraws' cross-lane equality tests can never
// panic. The whitelist matters: a future non-comparable BatchSampler
// implementation must be skipped here, not asserted blindly.
func batchableDist(d dist.Distribution) (dist.BatchSampler, bool) {
	switch d.(type) {
	case dist.Exponential, dist.Normal, dist.Uniform, dist.Constant:
		b, ok := d.(dist.BatchSampler)
		return b, ok
	}
	return nil, false
}

// drawNoiseLanes fills dst[k] with lane k's osNoise(rank) draw: the
// batched form runs one SampleInto over the rank stream's contiguous
// lane generators and then applies each lane's own counter and clamp,
// reproducing the scalar draw bit for bit.
//
//mpg:hotpath
func (st *batchState) drawNoiseLanes(rank int, dst []float64) {
	if st.noiseZero[rank] {
		for k := range dst {
			dst[k] = 0
		}
		return
	}
	if b := st.noiseB[rank]; b != nil {
		b.SampleInto(dst, 1, st.rng[(1+rank)*st.K:(2+rank)*st.K]) //mpg:lint-ignore hotpathprop BatchSampler dispatch amortizes one dynamic call across K lanes; implementations are the dist SampleInto kernels, themselves //mpg:hotpath-guarded
		for k := range dst {
			smp := &st.smps[k]
			smp.nNoise++
			if dst[k] < 0 && !smp.model.AllowNegative {
				dst[k] = 0
			}
		}
		return
	}
	for k := range dst {
		dst[k] = st.smps[k].osNoise(rank)
	}
}

// drawComputeNoiseLanes is drawNoiseLanes for a compute gap of w
// cycles: zero-length gaps draw nothing, quantized models (any lane
// with NoiseQuantum > 0) fall back to the scalar variable-draw path.
//
//mpg:hotpath
func (st *batchState) drawComputeNoiseLanes(rank int, w int64, dst []float64) {
	if w <= 0 {
		for k := range dst {
			dst[k] = 0
		}
		return
	}
	if st.noiseQZero {
		st.drawNoiseLanes(rank, dst)
		return
	}
	for k := range dst {
		dst[k] = st.smps[k].computeNoise(rank, w)
	}
}

// drawLatencyLanes fills dst[k] with lane k's latency() draw.
//
//mpg:hotpath
func (st *batchState) drawLatencyLanes(dst []float64) {
	if st.latZero {
		for k := range dst {
			dst[k] = 0
		}
		return
	}
	if st.latB != nil {
		st.latB.SampleInto(dst, 1, st.rng[:st.K]) //mpg:lint-ignore hotpathprop BatchSampler dispatch amortizes one dynamic call across K lanes; implementations are the dist SampleInto kernels, themselves //mpg:hotpath-guarded
		for k := range dst {
			smp := &st.smps[k]
			smp.nMsg++
			if dst[k] < 0 && !smp.model.AllowNegative {
				dst[k] = 0
			}
		}
		return
	}
	for k := range dst {
		dst[k] = st.smps[k].latency()
	}
}

// drawPerByteLanes fills dst[k] with lane k's perByte(bytes) draw.
//
//mpg:hotpath
func (st *batchState) drawPerByteLanes(bytes int64, dst []float64) {
	if st.pbZero || bytes <= 0 {
		for k := range dst {
			dst[k] = 0
		}
		return
	}
	if st.pbB != nil {
		st.pbB.SampleInto(dst, 1, st.rng[:st.K]) //mpg:lint-ignore hotpathprop BatchSampler dispatch amortizes one dynamic call across K lanes; implementations are the dist SampleInto kernels, themselves //mpg:hotpath-guarded
		fb := float64(bytes)
		for k := range dst {
			smp := &st.smps[k]
			smp.nMsg++
			v := dst[k] * fb
			if v < 0 && !smp.model.AllowNegative {
				v = 0
			}
			dst[k] = v
		}
		return
	}
	for k := range dst {
		dst[k] = st.smps[k].perByte(bytes)
	}
}

// matchLanes is the batched form of the opMatch step: lane k's posted
// subevents are loaded, the four transfer deltas are drawn in exactly
// the single-replay order per lane (λ1, per-byte, λ2, receiver-side
// noise — see ReplayCompiled's opMatch case) via the column-wise draw
// helpers, and each lane's completion is resolved. Drawing a column
// across lanes before the next column preserves every lane's draw
// sequence exactly, because each lane owns independent generators —
// only the intra-lane order is observable.
//
//mpg:hotpath
func (st *batchState) matchLanes(ms []xfer, sendD []float64, sendAttr []Attribution, recvD []float64, recvAttr []Attribution, bytes int64, recvRank int) {
	K := st.K
	lat1 := st.laneBuf[:K]
	pb := st.laneBuf[K : 2*K]
	lat2 := st.laneBuf[2*K : 3*K]
	os2 := st.laneBuf[3*K : 4*K]
	st.drawLatencyLanes(lat1)
	st.drawPerByteLanes(bytes, pb)
	st.drawLatencyLanes(lat2)
	st.drawNoiseLanes(recvRank, os2)
	for k := range ms {
		m := &ms[k]
		m.sendStartD = sendD[k]
		m.sendAttr = sendAttr[k]
		m.recvPostD = recvD[k]
		m.recvAttr = recvAttr[k]
		m.dLat1 = lat1[k]
		m.dPerByte = pb[k]
		m.dLat2 = lat2[k]
		m.dOS2 = os2[k]
		m.resolveCompletion()
	}
}

// ensureCrit prepares the per-lane per-rank argmax recording slices
// over a single pooled backing array (lane-major, each rank window
// three-index sliced so appends can never cross into a neighbor).
func (st *batchState) ensureCrit(c *Compiled) {
	total := int(c.evBase[c.nranks])
	if st.critBack == nil {
		st.critBack = make([]critNode, st.K*total)
		st.crit = make([][]critNode, st.K*c.nranks)
	}
	for k := 0; k < st.K; k++ {
		lb := k * total
		for r := 0; r < c.nranks; r++ {
			lo, hi := lb+int(c.evBase[r]), lb+int(c.evBase[r+1])
			st.crit[k*c.nranks+r] = st.critBack[lo:lo:hi]
		}
	}
}

// walk is the batched tape loop: each op is decoded once and its
// update fanned across the K lanes. Per lane it mirrors
// ReplayCompiled's op dispatch statement for statement — same kernel
// calls, same comparison order, same clamp rules — which is what makes
// every lane byte-identical to a standalone replay.
//
//mpg:hotpath
func (st *batchState) walk(c *Compiled, recordCrit bool, lt func(int, TrajectoryPoint), li func(int, IntervalPoint)) {
	K := st.K
	k64 := int64(K)
	for i := range c.ops {
		o := &c.ops[i]
		switch o.code {
		case opBegin:
			rank := int(o.rank)
			base := (c.evBase[rank] + o.event) * k64
			pb := rank * K
			noise := st.laneBuf[:K]
			st.drawComputeNoiseLanes(rank, o.aux, noise)
			for k := 0; k < K; k++ {
				delta := noise[k]
				sD := st.prevD[pb+k] + delta
				sA := st.prevAttr[pb+k].addOwn(delta)
				st.rankAcc[pb+k].InjectedLocal += delta
				if st.laneNeg[k] && o.started {
					// Order preservation (§4.3), as in beginRecord.
					if floor := st.prevD[pb+k] - float64(o.aux); sD < floor {
						sD = floor
						st.ordViol[k]++
					}
				}
				st.startD[base+int64(k)] = sD
				st.startAttr[base+int64(k)] = sA
				if recordCrit {
					cs := critStep{d: sD, kind: EdgeLocal}
					if o.started {
						cs.pred = NodeRef{Rank: rank, Event: o.event - 1, End: true}
						cs.predD = st.prevD[pb+k]
						cs.hasPred = true
					}
					st.critStart[pb+k] = cs
				}
			}

		case opMatch:
			cm := &c.msgs[o.arg]
			sgi := (c.evBase[cm.sendRank] + cm.sendEvent) * k64
			rgi := (c.evBase[cm.recvRank] + cm.recvEvent) * k64
			mi := int64(o.arg) * k64
			st.matchLanes(st.msgs[mi:mi+k64],
				st.startD[sgi:sgi+k64], st.startAttr[sgi:sgi+k64],
				st.startD[rgi:rgi+k64], st.startAttr[rgi:rgi+k64],
				cm.bytes, int(cm.recvRank))

		case opCollResolve:
			st.resolveCollLanes(c, o.arg)

		default: // end ops
			rank := int(o.rank)
			base := (c.evBase[rank] + o.event) * k64
			pb := rank * K
			rb := int(o.region) * K
			// Hoist the per-lane noise draw out of the fan loop for the
			// end ops that sample: one column-wise draw, then the loop
			// consumes lane k's value in place of its scalar call.
			var noise []float64
			if o.code == opEndLocal || o.code == opEndSend {
				noise = st.laneBuf[:K]
				st.drawNoiseLanes(rank, noise)
			}
			for k := 0; k < K; k++ {
				prop := st.laneProp[k]
				sD := st.startD[base+int64(k)]
				sA := st.startAttr[base+int64(k)]
				rr := &st.rankAcc[pb+k]
				reg := &st.regions[rb+k]
				var endD float64
				var endAttr Attribution
				var critEnd critStep
				var ivWait float64
				var ivState WaitState
				if recordCrit {
					// Default argmax: the event's own start subevent.
					critEnd = critStep{pred: NodeRef{Rank: rank, Event: o.event}, predD: sD, kind: EdgeLocal, hasPred: true}
				}
				switch o.code {
				case opEndMarker, opEndImmediate:
					endD, endAttr = sD, sA

				case opEndLocal:
					delta := noise[k]
					rr.InjectedLocal += delta
					endD, endAttr = combineLocalKernel(prop, sD, sA, delta, o.aux)

				case opEndSend:
					m := &st.msgs[int64(o.arg)*k64+int64(k)]
					dOS1 := noise[k]
					rr.InjectedLocal += dOS1
					local, remote, localAttr, remoteAttr := sendCompletionKernel(
						prop, sD, sA, dOS1, o.aux, m)
					mergeStats(rr, reg, local, remote)
					if remote > local {
						endD, endAttr = remote, remoteAttr
						ivWait, ivState = remote-local, WaitLateReceiver
						if recordCrit {
							critEnd = st.msgCritLane(c, o.arg, k)
						}
					} else {
						endD, endAttr = local, localAttr
					}

				case opEndRecv:
					m := &st.msgs[int64(o.arg)*k64+int64(k)]
					rr.InjectedLocal += m.dOS2
					local, remote, localAttr, remoteAttr := recvCompletionKernel(
						prop, sD, sA, o.aux, m)
					mergeStats(rr, reg, local, remote)
					if remote > local {
						endD, endAttr = remote, remoteAttr
						ivWait, ivState = remote-local, WaitLateSender
						if recordCrit {
							if prop == PropagationAnchored {
								// Anchored receive: the remote path is always the
								// data arrival, never the receiver's own post.
								cm := &c.msgs[o.arg]
								critEnd = critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
							} else {
								critEnd = st.msgCritLane(c, o.arg, k)
							}
						}
					} else {
						endD, endAttr = local, localAttr
					}

				case opEndColl:
					pt := &c.parts[o.arg]
					pi := int(o.arg)*K + k
					local := sD
					remote := st.collOutD[pi]
					if prop == PropagationAnchored {
						remote -= float64(pt.dur)
					}
					mergeStats(rr, reg, local, remote)
					if remote > local {
						endD, endAttr = remote, st.collOutAttr[pi]
						ivWait, ivState = remote-local, WaitCollective
						if recordCrit {
							cc := &c.colls[pt.coll]
							wp := &c.parts[cc.partOff+st.collOutPred[pi]]
							wgi := (c.evBase[wp.rank]+wp.event)*k64 + int64(k)
							critEnd = critStep{pred: NodeRef{Rank: int(wp.rank), Event: wp.event}, predD: st.startD[wgi], kind: EdgeCollective, hasPred: true}
						}
					} else {
						endD, endAttr = local, sA
					}
				}

				// Commit, mirroring finishRecord.
				if st.laneNeg[k] {
					if floor := sD - float64(o.aux); endD < floor {
						endD = floor
						st.ordViol[k]++
					}
				}
				if recordCrit {
					critEnd.d = endD
					//mpg:lint-ignore hotpathalloc appends into pooled critBack backing whose cap is the lane's full per-rank event count; never grows
					st.crit[k*c.nranks+rank] = append(st.crit[k*c.nranks+rank], critNode{start: st.critStart[pb+k], end: critEnd})
				}
				st.prevD[pb+k] = endD
				st.prevAttr[pb+k] = endAttr
				// The K delayAcc Welford chains are independent, so the
				// serial divide in Add pipelines across lanes here instead
				// of stalling one chain per event as the scalar replay must.
				st.delayAcc[k].Add(endD)
				//mpg:lint-ignore hotpathprop caller-supplied observation hook, invoked only when the caller opted in
				if lt != nil {
					lt(k, TrajectoryPoint{
						Rank:    rank,
						Event:   o.event,
						Kind:    o.kind,
						OrigEnd: o.origEnd,
						Delay:   endD,
						Region:  c.regionKeys[o.region].Region,
					})
				}
				//mpg:lint-ignore hotpathprop caller-supplied observation hook, invoked only when the caller opted in
				if li != nil {
					p := IntervalPoint{
						Rank:       rank,
						Event:      o.event,
						Kind:       o.kind,
						OrigBegin:  o.origEnd - o.aux,
						OrigEnd:    o.origEnd,
						StartDelay: sD,
						EndDelay:   endD,
						Wait:       ivWait,
						State:      ivState,
						PeerRank:   -1,
					}
					if o.code == opEndRecv {
						cm := &c.msgs[o.arg]
						p.PeerRank = int(cm.sendRank)
						p.PeerEvent = cm.sendEvent
					}
					li(k, p)
				}
				if !reg.firstSeen {
					reg.firstSeen = true
					reg.firstDelay = endD
				}
				reg.Events++
				reg.DelayGrowth = endD - reg.firstDelay
			}
			st.rankEvents[rank]++
			st.events++
		}
	}
}

// msgCritLane is msgCrit for one batch lane: the winning message-edge
// predecessor of lane k's view of a transfer completion.
//
//mpg:hotpath
func (st *batchState) msgCritLane(c *Compiled, idx int32, k int) critStep {
	m := &st.msgs[int(idx)*st.K+k]
	cm := &c.msgs[idx]
	if m.cRecvFromData {
		return critStep{pred: NodeRef{Rank: int(cm.sendRank), Event: cm.sendEvent}, predD: m.sendStartD, kind: EdgeMessage, hasPred: true}
	}
	return critStep{pred: NodeRef{Rank: int(cm.recvRank), Event: cm.recvEvent}, predD: m.recvPostD, kind: EdgeMessage, hasPred: true}
}

// resolveCollLanes runs the collective resolution kernel once per
// lane, mirroring resolveColl's mode dispatch with the lane's own
// model and sampler. The in buffer is rebuilt per lane from the
// lane-strided start arrays; outputs land lane-strided via the
// kernels' stride parameter.
//
//mpg:hotpath
func (st *batchState) resolveCollLanes(c *Compiled, idx int32) {
	K := st.K
	k64 := int64(K)
	cc := &c.colls[idx]
	p := int(cc.partN)
	in := st.collIn[:p]
	for k := 0; k < K; k++ {
		for j := 0; j < p; j++ {
			pt := &c.parts[int(cc.partOff)+j]
			gi := (c.evBase[pt.rank]+pt.event)*k64 + int64(k)
			in[j] = collIn{rank: int(pt.rank), startD: st.startD[gi], startAttr: st.startAttr[gi]}
		}
		off := int(cc.partOff)*K + k
		outD := st.collOutD[off:]
		outAttr := st.collOutAttr[off:]
		outPred := st.collOutPred[off:]
		smp := &st.smps[k]
		if cc.kind == trace.KindScan {
			// Scan always uses the explicit prefix chain (see
			// resolveCollective).
			resolveExplicitKernel(smp, cc.kind, cc.bytes, cc.root, in, &st.csc, outD, outAttr, outPred, K)
			continue
		}
		switch smp.model.Collectives {
		case CollectiveApprox:
			resolveApproxKernel(smp, cc.kind, cc.bytes, in, outD, outAttr, outPred, K)
		case CollectiveExplicit:
			resolveExplicitKernel(smp, cc.kind, cc.bytes, cc.root, in, &st.csc, outD, outAttr, outPred, K)
		default:
			// Unknown mode: the streaming engine resolves nothing; clear
			// this lane's reused slots so stale values can't leak.
			for j := 0; j < p; j++ {
				outD[j*K], outAttr[j*K], outPred[j*K] = 0, Attribution{}, 0
			}
		}
	}
}
