package core

import (
	"strings"
	"testing"
	"testing/quick"

	"mpgraph/internal/dist"
	"mpgraph/internal/machine"
	"mpgraph/internal/trace"
)

// TestQuickAnalyzerNeverPanicsOnCorruptTraces mutates valid traces at
// random — swapped peers, retagged messages, dropped records, resized
// collectives, reassigned request ids — and requires the analyzer to
// either produce a result or return an error: never panic (corrupt
// input is an expected condition for a trace tool; §4.3 requires
// detectable inconsistency, not crashes).
func TestQuickAnalyzerNeverPanicsOnCorruptTraces(t *testing.T) {
	prop := func(seed uint64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %#x panicked: %v", seed, r)
				ok = false
			}
		}()
		rng := dist.NewRNG(seed)
		set := corruptedSet(t, rng)
		_, _ = Analyze(set, &Model{
			OSNoise:    dist.Constant{C: 10},
			MsgLatency: dist.Constant{C: 10},
		}, Options{MaxWindow: 10_000})
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// corruptedSet builds a valid multi-pattern trace and applies random
// record-level mutations that keep each record individually valid.
func corruptedSet(t *testing.T, rng *dist.RNG) *trace.Set {
	t.Helper()
	n := 2 + rng.Intn(4)
	set := traceWorkload(t, machine.Config{NRanks: n, Seed: rng.Uint64()},
		ring(2+rng.Intn(3), 64, 500))
	mems := make([]*trace.MemTrace, n)
	for r := 0; r < n; r++ {
		m, err := trace.ReadAll(set.Rank(r))
		if err != nil {
			t.Fatal(err)
		}
		mems[r] = m
	}
	// Apply 1..6 mutations.
	for k := 0; k < 1+rng.Intn(6); k++ {
		m := mems[rng.Intn(n)]
		if len(m.Records) == 0 {
			continue
		}
		i := rng.Intn(len(m.Records))
		rec := &m.Records[i]
		switch rng.Intn(6) {
		case 0: // retarget a point-to-point event
			if rec.Kind.IsPointToPoint() {
				rec.Peer = int32(rng.Intn(n))
			}
		case 1: // retag
			rec.Tag = int32(rng.Intn(5))
		case 2: // drop the record
			m.Records = append(m.Records[:i], m.Records[i+1:]...)
		case 3: // inflate a collective's expected size
			if rec.Kind.IsCollective() {
				rec.CommSize = int32(1 + rng.Intn(2*n))
			}
		case 4: // reassign a request id
			if rec.Req != 0 {
				rec.Req = uint64(1 + rng.Intn(10))
			}
		case 5: // duplicate the record (at the same position; keeps
			// per-rank time order only if zero-duration — accept the
			// chance of an overlap error, that's a valid outcome)
			dup := *rec
			m.Records = append(m.Records[:i], append([]trace.Record{dup}, m.Records[i:]...)...)
		}
	}
	out, err := trace.SetFromMem(mems)
	if err != nil {
		// Setwise corruption (should not happen here — headers intact).
		t.Fatal(err)
	}
	return out
}

// TestAnalyzerErrorsAreDescriptive spot-checks that common corruption
// modes yield actionable error text.
func TestAnalyzerErrorsAreDescriptive(t *testing.T) {
	mkPair := func(mutate func(sets [][]trace.Record)) error {
		send := rec(trace.KindSend, 100, 300)
		send.Peer, send.Bytes = 1, 10
		recv := rec(trace.KindRecv, 100, 300)
		recv.Peer, recv.Bytes = 0, 10
		perRank := [][]trace.Record{
			{rec(trace.KindInit, 0, 10), send, rec(trace.KindFinalize, 400, 400)},
			{rec(trace.KindInit, 0, 10), recv, rec(trace.KindFinalize, 400, 400)},
		}
		mutate(perRank)
		set := mkset(t, perRank...)
		_, err := Analyze(set, &Model{}, Options{})
		return err
	}

	if err := mkPair(func([][]trace.Record) {}); err != nil {
		t.Fatalf("control pair failed: %v", err)
	}

	for name, tc := range map[string]struct {
		mutate func([][]trace.Record)
		want   string
	}{
		"dropped receiver": {
			func(s [][]trace.Record) { s[1] = append(s[1][:1], s[1][2:]...) },
			"not self-consistent",
		},
		"mismatched tag": {
			func(s [][]trace.Record) { s[1][1].Tag = 9 },
			"not self-consistent",
		},
	} {
		err := mkPair(tc.mutate)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q missing %q", name, err, tc.want)
		}
	}
}
