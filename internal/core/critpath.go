package core

// Critical-path extraction: when Options.RecordCritPath is set, the
// analyzer records the argmax predecessor at every max() merge — the
// local-vs-remote decision of Eq. 1/Eq. 2 completions and of the
// collective hub — without touching the propagated delays themselves
// (recording reads the same comparisons merge() already makes; no
// sample is drawn and no delay is altered, so instrumented runs are
// byte-identical to uninstrumented ones).
//
// After propagation, the recorded chain is walked backward from the
// perturbed makespan sink. Each backward step carries the delay
// increment of its winning edge (delta = D(node) − D(pred)), so the
// per-step deltas telescope exactly to the sink's final delay in every
// propagation mode; aggregating them per rank and per EdgeKind turns
// "the run is N cycles slower" into "which edges caused it".

// critStep is the recorded argmax decision at one subevent: the
// predecessor whose path won the merge, that predecessor's delay, this
// subevent's delay, and the kind of the winning edge.
type critStep struct {
	pred    NodeRef
	predD   float64
	d       float64
	kind    EdgeKind
	hasPred bool
}

// critNode holds both subevents of one record.
type critNode struct {
	start, end critStep
}

// PathStep is one node of the extracted critical path with the delay
// its inbound winning edge contributed.
type PathStep struct {
	// Node is the subevent on the path.
	Node NodeRef
	// Kind classifies the winning edge into Node (local noise, message
	// latency/bandwidth, or collective). Meaningless for the first step.
	Kind EdgeKind
	// Delta is the delay the winning edge added: D(Node) − D(pred).
	// Zero deltas mark path segments that ride along without hurting.
	Delta float64
	// Delay is the cumulative delay D at Node.
	Delay float64
}

// CriticalPath is the blame decomposition of the perturbed makespan:
// the argmax chain from a zero-delay source to the makespan sink, plus
// per-kind and per-rank aggregates of the per-edge deltas.
type CriticalPath struct {
	// Sink is the end subevent of the rank that defines the perturbed
	// makespan (argmax over ranks of OrigEnd + FinalDelay; ties break
	// to the lowest rank).
	Sink NodeRef
	// SinkDelay is D at the sink — the sum of every step's Delta.
	SinkDelay float64
	// SinkOffset is OrigEnd(sink rank) − max over ranks of OrigEnd
	// (≤ 0). The reported MakespanDelay equals SinkDelay + SinkOffset:
	// when the perturbed sink is not also the traced-longest rank, part
	// of its delay is hidden by the slack other ranks already had.
	SinkOffset float64
	// Steps is the path in source → sink order. Steps[0] is the
	// zero-delay source (always the start subevent of some rank's first
	// event); its Delta is 0.
	Steps []PathStep
	// KindBlame aggregates Delta per winning-edge kind, indexed by
	// EdgeKind (EdgeLocal, EdgeMessage, EdgeCollective). The entries
	// sum to SinkDelay.
	KindBlame [3]float64
	// RankBlame aggregates Delta per rank — attributed to the rank
	// owning the node the delay materialized at. Sums to SinkDelay.
	RankBlame []float64
}

// step looks up the recorded argmax decision for a subevent.
func critAt(crit [][]critNode, ref NodeRef) critStep {
	n := crit[ref.Rank][ref.Event]
	if ref.End {
		return n.end
	}
	return n.start
}

// buildCritPath walks the recorded argmax chain backward from the
// makespan sink and aggregates blame.
func buildCritPath(res *Result, crit [][]critNode) *CriticalPath {
	sinkRank := 0
	best := 0.0
	var origMax int64
	for r := range res.Ranks {
		if oe := res.Ranks[r].OrigEnd; oe > origMax {
			origMax = oe
		}
		v := float64(res.Ranks[r].OrigEnd) + res.Ranks[r].FinalDelay
		if r == 0 || v > best {
			best = v
			sinkRank = r
		}
	}
	cp := &CriticalPath{
		Sink:       NodeRef{Rank: sinkRank, Event: int64(len(crit[sinkRank]) - 1), End: true},
		SinkDelay:  res.Ranks[sinkRank].FinalDelay,
		SinkOffset: float64(res.Ranks[sinkRank].OrigEnd - origMax),
		RankBlame:  make([]float64, res.NRanks),
	}

	// Backward walk. The chain is acyclic (every predecessor is
	// causally earlier), so it terminates at a first-event start; the
	// step bound is a defensive backstop only.
	var rev []PathStep
	cur := cp.Sink
	for limit := 2*res.Events + 1; limit > 0; limit-- {
		st := critAt(crit, cur)
		if !st.hasPred {
			rev = append(rev, PathStep{Node: cur, Kind: st.kind, Delta: 0, Delay: st.d})
			break
		}
		delta := st.d - st.predD
		rev = append(rev, PathStep{Node: cur, Kind: st.kind, Delta: delta, Delay: st.d})
		cp.KindBlame[st.kind] += delta
		cp.RankBlame[cur.Rank] += delta
		cur = st.pred
	}
	cp.Steps = make([]PathStep, len(rev))
	for i, s := range rev {
		cp.Steps[len(rev)-1-i] = s
	}
	return cp
}
