package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis. Type information is best-effort: imports from outside the
// module resolve to empty stub packages, so expressions involving
// them carry invalid types and the TypeErrors list is usually
// non-empty. Analyzers must treat missing type information as "no
// finding", never as an error.
type Package struct {
	ImportPath string
	Dir        string // module-relative, slash-separated
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader resolves and type-checks module packages from source. One
// Loader shares a FileSet and a package cache across all Load calls,
// so a package imported by several analyzed packages is checked once.
type Loader struct {
	// Root is the absolute path of the module root (the directory
	// holding go.mod).
	Root string
	// ModulePath is the module's import path from go.mod.
	ModulePath string

	fset  *token.FileSet
	pkgs  map[string]*Package       // by import path; nil while loading (cycle guard)
	stubs map[string]*types.Package // non-module imports
}

// NewLoader locates the enclosing module starting from dir (walking
// up to the filesystem root) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; d = filepath.Dir(d) {
		mod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(mod); err == nil {
			mp := modulePath(string(data))
			if mp == "" {
				return nil, fmt.Errorf("analysis: no module line in %s", mod)
			}
			return &Loader{
				Root:       d,
				ModulePath: mp,
				fset:       token.NewFileSet(),
				pkgs:       make(map[string]*Package),
				stubs:      make(map[string]*types.Package),
			}, nil
		}
		if filepath.Dir(d) == d {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Fset exposes the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load expands the given patterns ("./...", "./internal/core",
// "internal/core/...") into module package directories and loads each
// one. The result is sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				dirs[pat] = true
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "bin") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				rel = filepath.ToSlash(rel)
				if rel == "." {
					rel = ""
				}
				dirs[rel] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for dir := range dirs {
		ip := l.ModulePath
		if dir != "" {
			ip = path.Join(l.ModulePath, dir)
		}
		pkg, err := l.loadPackage(ip)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if analyzableFile(e) {
			return true
		}
	}
	return false
}

func analyzableFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// loadPackage parses and type-checks one module package by import
// path, caching the result. Import cycles (illegal in Go anyway)
// resolve to a stub rather than recursing forever.
func (l *Loader) loadPackage(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle guard
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if !analyzableFile(e) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		displayName := path.Join(rel, name)
		f, err := parser.ParseFile(l.fset, displayName, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", displayName, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(l.pkgs, importPath)
		return nil, nil
	}
	pkg, err := l.check(importPath, rel, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// CheckSource type-checks a single in-memory file as a package with
// the given import path, resolving module imports against the real
// module source. It exists for fixture tests that embed snippets. The
// checked package is registered in the loader's cache, so a later
// CheckSource on the same loader can import it — which is how the
// cross-package call-graph fixtures are assembled.
func (l *Loader) CheckSource(importPath, filename, src string) (*Package, error) {
	f, err := parser.ParseFile(l.fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check(importPath, path.Dir(filename), []*ast.File{f})
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// check runs the lenient type checker over the parsed files.
func (l *Loader) check(importPath, rel string, files []*ast.File) (*Package, error) {
	var typeErrs []error
	conf := types.Config{
		Importer:    (*moduleImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// Errors are expected (stubbed external imports); the returned
	// package is still usable for best-effort analysis.
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	return &Package{
		ImportPath: importPath,
		Dir:        rel,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// moduleImporter resolves module-internal imports from source and
// everything else (stdlib, third-party) to empty stub packages.
type moduleImporter Loader

func (m *moduleImporter) Import(p string) (*types.Package, error) {
	l := (*Loader)(m)
	if p == l.ModulePath || strings.HasPrefix(p, l.ModulePath+"/") {
		pkg, err := l.loadPackage(p)
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return m.stub(p), nil
		}
		return pkg.Types, nil
	}
	return m.stub(p), nil
}

// stub fabricates an empty, complete package for a non-module import.
// Selector lookups against it produce ordinary type errors, which the
// lenient checker swallows.
func (m *moduleImporter) stub(p string) *types.Package {
	if s, ok := m.stubs[p]; ok {
		return s
	}
	name := path.Base(p)
	// "math/rand/v2" and friends: the package name is the element
	// before the version suffix.
	if len(name) > 1 && name[0] == 'v' && strings.Trim(name[1:], "0123456789") == "" {
		name = path.Base(path.Dir(p))
	}
	s := types.NewPackage(p, name)
	s.MarkComplete()
	m.stubs[p] = s
	return s
}
