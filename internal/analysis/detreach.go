package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetReachAnalyzer enforces determinism *by reachability*: everything
// the replay kernels can reach — not just everything that happens to
// live in the deterministic packages — must be a pure function of
// (trace, model, seed). The file-local nondet analyzer draws its
// boundary by import path; a helper moved to a utility package slips
// out of that scope while staying firmly on the replay path. detreach
// closes the gap by walking the call graph from the replay roots:
//
//   - core.ReplayCompiled / core.ReplayBatch / core.ReplayParallel
//     (the three replay engines),
//   - every function declared in internal/core/compute.go (the shared
//     propagation kernels),
//   - baseline.Replay / baseline.ReplayRetimed (the DES oracle the
//     differential verifier diffs against).
//
// Along every reachable path it gates on:
//
//   - time.Now / time.Since / time.Until — wall-clock reads;
//   - any call into math/rand or math/rand/v2 — unseeded process-
//     global randomness;
//   - map iteration outside the collect-then-sort idiom — Go
//     randomizes iteration order per run;
//   - writes to package-level variables — hidden mutable state makes
//     a second replay observe the first.
//
// Dynamic calls (interface dispatch, function values) are reported at
// info severity: determinism cannot be *verified* through them, but
// gating on every hook would force annotations onto caller-supplied
// callbacks whose contracts are documented elsewhere. This is the
// deliberate conservatism trade-off: unknown callees are surfaced,
// never silently trusted, but they advise rather than gate (unlike
// hotpathprop, where the allocation budget is a hard claim).
//
// An //mpg:lint-ignore detreach directive on a call site prunes that
// edge from the walk: the stated reason vouches for the subtree
// behind the call (e.g. an observability hook that reads the clock by
// design and feeds nothing back into replay results).
var DetReachAnalyzer = &Analyzer{
	Name:      "detreach",
	Doc:       "verifies determinism over everything reachable from the replay kernels and the DES oracle, not just the statically scoped packages",
	RunModule: runDetReach,
}

// detReachRoots names the entry points whose reachable closure must
// stay deterministic, as (import path, function name) pairs.
var detReachRoots = []struct{ pkg, name string }{
	{"mpgraph/internal/core", "ReplayCompiled"},
	{"mpgraph/internal/core", "ReplayBatch"},
	{"mpgraph/internal/core", "ReplayParallel"},
	{"mpgraph/internal/baseline", "Replay"},
	{"mpgraph/internal/baseline", "ReplayRetimed"},
}

// detReachRootFiles roots every function declared in these files (the
// shared propagation kernels are roots as a file, so a new kernel is
// covered the moment it is written).
var detReachRootFiles = map[string]bool{
	"internal/core/compute.go": true,
}

func runDetReach(pass *ModulePass) {
	g := pass.Graph
	var roots []*FuncNode
	for _, n := range g.Funcs {
		if detReachRootFiles[n.Pkg.Fset.Position(n.Decl.Pos()).Filename] {
			roots = append(roots, n)
			continue
		}
		for _, r := range detReachRoots {
			if n.Pkg.ImportPath == r.pkg && n.Obj.Name() == r.name && n.Decl.Recv == nil {
				roots = append(roots, n)
				break
			}
		}
	}
	visited := g.Reach(pass.Analyzer.Name, roots, func(from *FuncNode, e *CallEdge, reason string) {
		pass.Report(from.Pkg, e.Site, "determinism verification stops at the call to %s (suppressed boundary)", e.Target())
	})
	for _, n := range g.Funcs {
		if _, ok := visited[n]; !ok {
			continue
		}
		chain := Chain(visited, n)
		for i := range n.Calls {
			e := &n.Calls[i]
			switch e.Kind {
			case EdgeUnknown:
				pass.ReportInfo(n.Pkg, e.Site, "%s: dynamic call (interface or function value): determinism cannot be verified through it", chain)
			case EdgeExternal:
				switch e.ExtPkg {
				case "time":
					if forbiddenTimeFuncs[e.ExtName] {
						pass.Report(n.Pkg, e.Site, "%s: time.%s on a replay-reachable path; replay results must not depend on wall-clock time", chain, e.ExtName)
					}
				case "math/rand", "math/rand/v2":
					pass.Report(n.Pkg, e.Site, "%s: %s.%s on a replay-reachable path; randomness must flow through seeded mpgraph/internal/dist generators", chain, e.ExtPkg, e.ExtName)
				}
			}
		}
		checkDetBody(pass, n, chain)
	}
}

// checkDetBody scans one reachable function body for determinism
// leaks that are not call edges: unsorted map ranges and writes to
// package-level state.
func checkDetBody(pass *ModulePass, n *FuncNode, chain string) {
	if n.Decl.Body == nil {
		return
	}
	pkg := n.Pkg
	file := fileOf(pkg, n.Decl.Pos())
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.RangeStmt:
			if file != nil && mapRangeNondet(pkg, file, x) {
				pass.Report(pkg, x.Pos(), "%s: map iteration order is nondeterministic on a replay-reachable path; collect keys and sort before use", chain)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if v := packageLevelTarget(pkg, lhs); v != nil {
					pass.Report(pkg, lhs.Pos(), "%s: write to package-level variable %s on a replay-reachable path; replay results must be a pure function of (trace, model, seed)", chain, v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(pkg, x.X); v != nil {
				pass.Report(pkg, x.Pos(), "%s: write to package-level variable %s on a replay-reachable path; replay results must be a pure function of (trace, model, seed)", chain, v.Name())
			}
		}
		return true
	})
}

// fileOf returns the *ast.File of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

// packageLevelTarget resolves the base of an assignment target
// (unwrapping selectors, index expressions, derefs and parens) and
// returns the variable when it is declared at package scope — in this
// module or, via a pkg.Var selector, in another module package.
func packageLevelTarget(pkg *Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pkg.pkgPathOf(id); isPkg {
					return pkgScopeVar(pkg.Info.Uses[x.Sel])
				}
			}
			e = x.X
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			return pkgScopeVar(pkg.Info.Uses[x])
		default:
			return nil
		}
	}
}

func pkgScopeVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}
