package analysis

import "testing"

const rngScope = "mpgraph/internal/sim/fixture"

func TestRNGPurityFlagsCopiesAndLiterals(t *testing.T) {
	res := runFixture(t, RNGPurityAnalyzer, rngScope, "internal/sim/fixture/copy.go", `
package fixture

import "mpgraph/internal/dist"

func Copy(r *dist.RNG) dist.RNG {
	v := *r
	use(v)
	return v
}

func use(r dist.RNG) {}

func Conjure() {
	_ = dist.RNG{}
}
`)
	wantOutstanding(t, res,
		"dist.RNG copied by value",
		"dist.RNG passed by value",
		"dist.RNG returned by value",
		"composite literal bypasses the approved constructors",
	)
}

func TestRNGPurityFlagsGoroutineCapture(t *testing.T) {
	res := runFixture(t, RNGPurityAnalyzer, rngScope, "internal/sim/fixture/capture.go", `
package fixture

import "mpgraph/internal/dist"

func Race(r *dist.RNG, out []float64) {
	for i := range out {
		go func(i int) {
			out[i] = r.Float64()
		}(i)
	}
}
`)
	wantOutstanding(t, res, `RNG "r" captured by a goroutine closure`)
}

func TestRNGPurityFlagsSharedStore(t *testing.T) {
	res := runFixture(t, RNGPurityAnalyzer, rngScope, "internal/sim/fixture/store.go", `
package fixture

import "mpgraph/internal/dist"

type worker struct{ rng *dist.RNG }

func Share(ws []*worker, r *dist.RNG) {
	for _, w := range ws {
		w.rng = r
	}
}
`)
	wantOutstanding(t, res, "shares one stream between owners")
}

func TestRNGPurityAllowsConstructorsAndPointers(t *testing.T) {
	res := runFixture(t, RNGPurityAnalyzer, rngScope, "internal/sim/fixture/ok.go", `
package fixture

import "mpgraph/internal/dist"

type worker struct {
	rng     *dist.RNG
	backing [4]dist.RNG
}

func Wire(w *worker, parent *dist.RNG) {
	w.rng = parent.ForkNamed("worker")
	for i := range w.backing {
		w.backing[i].Reseed(uint64(i))
	}
	w.rng = &w.backing[0]
}
`)
	wantOutstanding(t, res)
}

func TestRNGPurityExemptInDistPackage(t *testing.T) {
	res := runFixture(t, RNGPurityAnalyzer, "mpgraph/internal/dist", "internal/dist/fixture.go", `
package dist

func clone(r RNG) RNG { return r }
`)
	wantOutstanding(t, res)
}

func TestRNGPuritySuppression(t *testing.T) {
	res := runFixture(t, RNGPurityAnalyzer, rngScope, "internal/sim/fixture/supp.go", `
package fixture

import "mpgraph/internal/dist"

func Snapshot(r *dist.RNG) dist.RNG {
	//mpg:lint-ignore rngpurity demonstration fixture: state capture for golden tests, stream is discarded
	return *r
}
`)
	wantOutstanding(t, res)
	wantSuppressed(t, res, 1)
}
