package analysis

import "testing"

func TestHotPathAllocFlagsAllocatingConstructs(t *testing.T) {
	res := runFixture(t, HotPathAllocAnalyzer, "mpgraph/internal/sim/fixture", "internal/sim/fixture/hot.go", `
package fixture

import "fmt"

type node struct{ next *node }

//mpg:hotpath
func Hot(n int) int {
	buf := make([]float64, n)
	buf = append(buf, 1)
	head := &node{}
	f := func() int { return n }
	ids := []int{1, 2}
	fmt.Println(n)
	_ = buf
	_ = head
	_ = ids
	return f()
}
`)
	wantOutstanding(t, res,
		"make in hot path Hot",
		"append in hot path Hot",
		"&composite literal in hot path Hot",
		"closure in hot path Hot",
		"slice literal in hot path Hot",
		"fmt.Println in hot path Hot",
	)
}

func TestHotPathAllocFlagsInterfaceBoxing(t *testing.T) {
	res := runFixture(t, HotPathAllocAnalyzer, "mpgraph/internal/sim/fixture", "internal/sim/fixture/box.go", `
package fixture

type point struct{ x, y float64 }

func sink(v interface{}) {}

//mpg:hotpath
func Box(p point, pp *point) interface{} {
	sink(p)  // boxes: concrete value into interface parameter
	sink(pp) // pointer fits in the interface word: no boxing
	var out interface{}
	out = p
	return out
}
`)
	wantOutstanding(t, res,
		"boxes a value on the heap; pass a pointer",
		"boxes a value on the heap; store a pointer",
	)
}

func TestHotPathAllocIgnoresUnannotatedAndValueLiterals(t *testing.T) {
	res := runFixture(t, HotPathAllocAnalyzer, "mpgraph/internal/sim/fixture", "internal/sim/fixture/cold.go", `
package fixture

type pair struct{ a, b int }

func Cold(n int) []int {
	return make([]int, n) // unannotated: allocation is fine
}

//mpg:hotpath
func HotValue(n int) int {
	p := pair{a: n, b: n} // struct *value* literal: no heap allocation
	return p.a + p.b
}
`)
	wantOutstanding(t, res)
}

func TestHotPathAllocSuppressionCoversMultilineStatement(t *testing.T) {
	res := runFixture(t, HotPathAllocAnalyzer, "mpgraph/internal/sim/fixture", "internal/sim/fixture/supp.go", `
package fixture

type result struct {
	delays  []float64
	regions map[string]float64
}

//mpg:hotpath
func Finish(n int) *result {
	//mpg:lint-ignore hotpathalloc the returned result is the one documented allocation group, AllocsPerRun-guarded
	res := &result{
		delays:  make([]float64, n),
		regions: make(map[string]float64, 4),
	}
	return res
}
`)
	// One standalone directive covers the whole multi-line composite
	// literal: the &literal and both makes inside it.
	wantOutstanding(t, res)
	wantSuppressed(t, res, 3)
}
