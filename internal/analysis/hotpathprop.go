package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathPropAnalyzer is the interprocedural companion to
// hotpathalloc: it computes the transitive closure of the
// //mpg:hotpath roots over the call graph and enforces the allocation
// discipline on everything the roots *reach*, not just their own
// bodies. hotpathalloc stops at an annotated function's body — a call
// to an allocating helper escapes it entirely; hotpathprop closes
// that gap:
//
//   - an allocating construct (make/new/append, &composite, slice or
//     map literal, closure) in a *reachable but unannotated* function
//     is a gating finding, reported at the construct with the full
//     call chain from the root ("core.ReplayCompiled →
//     core.newReplayState: make allocates");
//   - a call into fmt or reflect anywhere on the closure is gating
//     (in annotated bodies fmt is already hotpathalloc's finding, so
//     only unannotated functions report it here);
//   - a dynamic call (interface dispatch, function value, lost type
//     info) from any closure member is gating: the callee cannot be
//     proven allocation-free. Unknown callees taint — they are never
//     silently dropped;
//   - a reachable function that lacks the //mpg:hotpath annotation
//     gets an advisory (info) finding so the annotation set stays
//     complete: annotating it hands its body to hotpathalloc's
//     stricter per-construct treatment (including boxing checks).
//
// An //mpg:lint-ignore hotpathprop directive on a call site prunes
// that edge from the closure: the reason justifies the entire subtree
// behind the call (an out-of-band metrics registry, a caller-provided
// hook documented as non-hot). Each pruned edge still emits an
// always-suppressed diagnostic so the report carries the audit trail.
var HotPathPropAnalyzer = &Analyzer{
	Name:      "hotpathprop",
	Doc:       "propagates the //mpg:hotpath allocation discipline through the call graph (transitive closure of the annotated roots)",
	RunModule: runHotPathProp,
}

func runHotPathProp(pass *ModulePass) {
	g := pass.Graph
	var roots []*FuncNode
	for _, n := range g.Funcs {
		if n.HotPath {
			roots = append(roots, n)
		}
	}
	visited := g.Reach(pass.Analyzer.Name, roots, func(from *FuncNode, e *CallEdge, reason string) {
		// Audit trail for the pruned boundary; the directive that
		// caused the prune marks this suppressed, so it never gates.
		pass.Report(from.Pkg, e.Site, "hot-path propagation stops at the call to %s: callee not proven allocation-free (suppressed boundary)", e.Target())
	})
	for _, n := range g.Funcs { // Funcs is name-sorted: deterministic output
		if _, ok := visited[n]; !ok {
			continue
		}
		chain := Chain(visited, n)
		if !n.HotPath {
			pass.ReportInfo(n.Pkg, n.Decl.Pos(), "%s is reachable from //mpg:hotpath roots (via %s) but not annotated; add //mpg:hotpath so hotpathalloc guards its body", n.Name, chain)
			scanAllocConstructs(n, func(pos token.Pos, what string) {
				pass.Report(n.Pkg, pos, "%s: %s", chain, what)
			})
		}
		for i := range n.Calls {
			e := &n.Calls[i]
			switch e.Kind {
			case EdgeUnknown:
				pass.Report(n.Pkg, e.Site, "%s: dynamic call (interface or function value) cannot be proven allocation-free; devirtualize, hoist off the hot path, or suppress the edge with justification", chain)
			case EdgeExternal:
				switch e.ExtPkg {
				case "fmt":
					if !n.HotPath { // annotated bodies: hotpathalloc already reports fmt
						pass.Report(n.Pkg, e.Site, "%s: fmt.%s allocates and boxes its operands", chain, e.ExtName)
					}
				case "reflect":
					pass.Report(n.Pkg, e.Site, "%s: reflect.%s reaches the hot path; reflection allocates and defeats devirtualization", chain, e.ExtName)
				}
			}
		}
	}
}

// scanAllocConstructs reports the allocating constructs hotpathalloc
// forbids, for a function that is *not* annotated (so hotpathalloc
// itself stays silent on it). Boxing analysis is deliberately left to
// hotpathalloc: the advisory annotation finding nudges the function
// into the stricter file-local treatment.
func scanAllocConstructs(n *FuncNode, report func(pos token.Pos, what string)) {
	if n.Decl.Body == nil {
		return
	}
	pkg := n.Pkg
	skipComposite := map[*ast.CompositeLit]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure environment may be heap-allocated")
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := x.X.(*ast.CompositeLit); ok {
					skipComposite[cl] = true
					report(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if skipComposite[x] {
				return true
			}
			if t := pkg.typeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(x.Pos(), kindWord(t)+" literal allocates backing storage")
				}
			}
		case *ast.CallExpr:
			switch {
			case pkg.isBuiltin(x, "make"):
				report(x.Pos(), "make allocates")
			case pkg.isBuiltin(x, "new"):
				report(x.Pos(), "new allocates")
			case pkg.isBuiltin(x, "append"):
				report(x.Pos(), "append allocates (growth may reallocate the backing array)")
			}
		}
		return true
	})
}
