package analysis

import "testing"

// concScope nests the fixtures under the parallel package so the
// scoped rules apply.
const concScope = "mpgraph/internal/parallel/fixture"

func TestConcLockCopyValueReceiver(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/recv.go", `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) read() int { return g.n }
`)
	wantOutstanding(t, res, "method read copies its receiver guarded, which contains sync.Mutex (field mu); use a pointer receiver")
}

func TestConcLockCopyAssignment(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/assign.go", `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func dup(g *guarded) int {
	c := *g
	return c.n
}
`)
	wantOutstanding(t, res, "assignment copies guarded, which contains sync.Mutex (field mu); share a *guarded instead")
}

// TestConcLockCopyTransitive: lock-bearing propagates through struct
// nesting — copying a wrapper that embeds a guarded struct is the
// same bug one level up.
func TestConcLockCopyTransitive(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/wrap.go", `package fixture

import "sync"

type guarded struct {
	wg sync.WaitGroup
}

type wrapper struct {
	g guarded
	n int
}

func dup(w *wrapper) int {
	c := *w
	return c.n
}
`)
	wantOutstanding(t, res, "assignment copies wrapper, which contains sync.WaitGroup (field wg) via field g guarded")
}

func TestConcLockCopyRangeValue(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/range.go", `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
}

func visit(gs []guarded) {
	for _, g := range gs {
		_ = g
	}
}
`)
	wantOutstanding(t, res,
		"range value copies guarded, which contains sync.Mutex (field mu); iterate by index and take a pointer",
		"assignment copies guarded, which contains sync.Mutex (field mu); share a *guarded instead",
	)
}

// TestConcLockConstructionIsLegal: composite literals and call
// results initialize, they don't copy shared state.
func TestConcLockConstructionIsLegal(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/ctor.go", `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func fresh() guarded { return guarded{} }

func build() *guarded {
	g := guarded{n: 1}
	return &g
}
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("construction sites must stay legal:\n%s", formatDiags(out))
	}
}

func TestConcAtomicMixedWithPlainWrite(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/atomic.go", `package fixture

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) resetBadly() { c.n = 0 }

func (c *counter) bumpBadly() { c.n++ }
`)
	wantOutstanding(t, res,
		"plain write to n, which is accessed via sync/atomic elsewhere; every access must go through sync/atomic",
		"plain ++ of n, which is accessed via sync/atomic elsewhere; every access must go through sync/atomic",
	)
}

func TestConcGoroutineLoopVarCapture(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/loop.go", `package fixture

func spawn(xs []int) {
	for i := range xs {
		go func() {
			_ = i
		}()
	}
}
`)
	wantOutstanding(t, res, "goroutine closure captures loop variable i; pass it as a call argument so the per-iteration ownership is explicit")
}

func TestConcGoroutineCapturedWrite(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/capture.go", `package fixture

func race() int {
	total := 0
	go func() {
		total = 1
	}()
	return total
}
`)
	wantOutstanding(t, res, "goroutine closure writes to captured variable total; return the value over a channel or give each goroutine an owned slot")
}

// TestConcGoroutineIndexedWriteSuppressible: writes through a captured
// slice get the rank-ownership phrasing, and the documented ownership
// argument suppresses them in place (the Frontier pattern).
func TestConcGoroutineIndexedWriteSuppressible(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/owned.go", `package fixture

func fanOut(out []float64) {
	go func() {
		out[0] = 1 // flagged: ownership not documented
	}()
	go func() {
		//mpg:lint-ignore concdiscipline worker 1 owns index 1 exclusively; disjoint rank ownership
		out[1] = 2
	}()
}
`)
	wantOutstanding(t, res, "goroutine closure writes through captured out; if each goroutine owns a disjoint index range, suppress with the ownership argument")
	wantSuppressed(t, res, 1)
}

// TestConcHotPathSend: rule 5 rides the call graph — the send is two
// hops from the annotated root.
func TestConcHotPathSend(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, concScope, "internal/parallel/fixture/send.go", `package fixture

//mpg:hotpath
func hotLoop(ch chan int) {
	for i := 0; i < 8; i++ {
		emit(ch, i)
	}
}

func emit(ch chan int, v int) { ch <- v }
`)
	wantOutstanding(t, res, "fixture.hotLoop → fixture.emit: channel send on the hot path blocks on the receiver; buffer the result in an owned slot and publish after the loop")
}

// TestConcScopeExcludesOtherPackages: rules 1–4 apply only to the
// parallel replay machinery; the same copy elsewhere is out of scope.
func TestConcScopeExcludesOtherPackages(t *testing.T) {
	res := runFixture(t, ConcDisciplineAnalyzer, "mpgraph/internal/obsv/fixture", "internal/obsv/fixture/copy.go", `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
}

func (g guarded) bad() {}
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("out-of-scope package must not be linted by rules 1-4:\n%s", formatDiags(out))
	}
}
