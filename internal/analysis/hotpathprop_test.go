package analysis

import (
	"strings"
	"testing"
)

// The acceptance fixture for the interprocedural engine: an annotated
// root that delegates its allocation to an unannotated helper.
// hotpathalloc stops at Root's body — the call is just a call — while
// hotpathprop follows the edge and reports the helper's make with the
// full chain.
const calleeAllocFixture = `package fixture

//mpg:hotpath
func Root(n int) []float64 {
	return helper(n)
}

func helper(n int) []float64 {
	return make([]float64, n)
}
`

func TestHotPathAllocMissesCalleeAlloc(t *testing.T) {
	res := runFixture(t, HotPathAllocAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/prop.go", calleeAllocFixture)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("hotpathalloc is file-local and must stay silent on a callee's allocation, got:\n%s", formatDiags(out))
	}
}

func TestHotPathPropCatchesCalleeAlloc(t *testing.T) {
	res := runFixture(t, HotPathPropAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/prop.go", calleeAllocFixture)
	wantOutstanding(t, res, "fixture.Root → fixture.helper: make allocates")
	// The helper also draws the annotation-completeness advisory at
	// info severity — visible, never gating.
	var infos []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Severity == SeverityInfo {
			infos = append(infos, d)
		}
	}
	if len(infos) != 1 || !strings.Contains(infos[0].Message, "but not annotated; add //mpg:hotpath") {
		t.Errorf("want one annotation advisory, got:\n%s", formatDiags(infos))
	}
}

// TestHotPathPropTransitiveChain: the chain in the finding spans every
// intermediate hop, not just the immediate caller.
func TestHotPathPropTransitiveChain(t *testing.T) {
	res := runFixture(t, HotPathPropAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/deep.go", `package fixture

//mpg:hotpath
func Root() { mid() }

func mid() { leaf() }

func leaf() []int {
	xs := []int{1}
	return append(xs, 2)
}
`)
	wantOutstanding(t, res,
		"fixture.Root → fixture.mid → fixture.leaf: slice literal allocates backing storage",
		"fixture.Root → fixture.mid → fixture.leaf: append allocates",
	)
}

// TestHotPathPropUnknownEdgeGates: a dynamic call from the closure
// cannot be proven allocation-free, so it taints rather than
// vanishing.
func TestHotPathPropUnknownEdgeGates(t *testing.T) {
	res := runFixture(t, HotPathPropAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/dyn.go", `package fixture

type sampler interface{ sample() float64 }

//mpg:hotpath
func Root(s sampler) float64 { return s.sample() }
`)
	wantOutstanding(t, res, "dynamic call (interface or function value) cannot be proven allocation-free")
}

// TestHotPathPropExternalCalls: fmt in an unannotated closure member
// gates (annotated bodies are hotpathalloc's job); reflect gates
// everywhere on the closure.
func TestHotPathPropExternalCalls(t *testing.T) {
	res := runFixture(t, HotPathPropAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/ext.go", `package fixture

import (
	"fmt"
	"reflect"
)

//mpg:hotpath
func Root(v any) string {
	_ = reflect.TypeOf(v)
	return describe(v)
}

func describe(v any) string { return fmt.Sprintf("%v", v) }
`)
	wantOutstanding(t, res,
		"fixture.Root: reflect.TypeOf reaches the hot path",
		"fixture.Root → fixture.describe: fmt.Sprintf allocates and boxes its operands",
	)
}

// TestHotPathPropEdgePruneStopsSubtree: a justified directive on the
// call site prunes the whole subtree behind it, leaving only the
// always-suppressed audit diagnostic.
func TestHotPathPropEdgePruneStopsSubtree(t *testing.T) {
	res := runFixture(t, HotPathPropAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/boundary.go", `package fixture

//mpg:hotpath
func Root() {
	//mpg:lint-ignore hotpathprop out-of-band observation boundary; nothing feeds back into the replay
	observe()
}

func observe() { _ = make([]int, 8) }
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("pruned subtree still gates:\n%s", formatDiags(out))
	}
	var audits int
	for _, d := range res.Diagnostics {
		if d.Suppressed && strings.Contains(d.Message, "hot-path propagation stops at the call to fixture.observe") {
			audits++
		}
	}
	if audits != 1 {
		t.Errorf("want exactly one suppressed boundary audit, got %d:\n%s", audits, formatDiags(res.Diagnostics))
	}
}

// TestHotPathPropAnnotatedCalleeDefersToHotpathalloc: an annotated
// callee's body belongs to hotpathalloc; hotpathprop adds no
// duplicate construct findings for it.
func TestHotPathPropAnnotatedCalleeDefersToHotpathalloc(t *testing.T) {
	res := runFixture(t, HotPathPropAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/annotated.go", `package fixture

//mpg:hotpath
func Root(n int) []float64 { return helper(n) }

//mpg:hotpath
func helper(n int) []float64 { return make([]float64, n) }
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("annotated callee must be hotpathalloc's finding, not hotpathprop's:\n%s", formatDiags(out))
	}
}
