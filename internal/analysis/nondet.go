package analysis

import (
	"go/ast"
)

// deterministicScope is the set of packages whose outputs must be a
// pure function of (trace, model, seed): the propagation engines, the
// differential verifier, and the DES oracle. The observability layer
// and the CLI front-ends are deliberately outside it — wall-clock
// timing and progress reporting live there by design.
var deterministicScope = []string{
	"mpgraph/internal/core",
	"mpgraph/internal/verify",
	"mpgraph/internal/des",
}

// NondetAnalyzer forbids the three classic determinism leaks inside
// the deterministic packages:
//
//   - time.Now / time.Since: wall-clock reads make results
//     run-dependent;
//   - math/rand (and math/rand/v2): the global generator is seeded
//     per-process and shared; all randomness must flow through
//     mpgraph/internal/dist seeded generators;
//   - ranging over a map, unless the loop only collects keys/values
//     into slices that are subsequently sorted in the same function.
//     Go randomizes map iteration order per run, and even "harmless"
//     floating-point accumulation over a map is order-sensitive
//     because FP addition is not associative.
var NondetAnalyzer = &Analyzer{
	Name:  "nondet",
	Doc:   "forbids time.Now, global math/rand, and unsorted map iteration in deterministic packages",
	Scope: deterministicScope,
	Run:   runNondet,
}

var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true, // calls Now internally
	"Until": true,
}

func runNondet(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			switch impPath(imp) {
			case "math/rand", "math/rand/v2":
				pass.Report(imp.Pos(), "package %s imported in a deterministic package; use seeded mpgraph/internal/dist generators", impPath(imp))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if p, name, ok := pass.Pkg.callTarget(x); ok && p == "time" && forbiddenTimeFuncs[name] {
					pass.Report(x.Pos(), "time.%s in a deterministic package: results must not depend on wall-clock time", name)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, x)
			}
			return true
		})
	}
}

func impPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		p = p[1 : len(p)-1]
	}
	return p
}

// checkMapRange flags iteration over maps unless it follows the
// collect-then-sort idiom: every statement in the loop body appends
// the key or value to a slice variable (possibly behind a plain
// if-filter), and at least one of those slices is later passed to a
// sort-package call inside the same function.
func checkMapRange(pass *Pass, f *ast.File, rng *ast.RangeStmt) {
	if mapRangeNondet(pass.Pkg, f, rng) {
		pass.Report(rng.Pos(), "map iteration order is nondeterministic: collect keys and sort before use, or suppress with justification")
	}
}

// mapRangeNondet reports whether rng iterates a map without the
// collect-then-sort escape hatch (shared with detreach, which applies
// the same idiom test along replay-reachable paths).
func mapRangeNondet(pkg *Package, f *ast.File, rng *ast.RangeStmt) bool {
	if !isMap(pkg.typeOf(rng.X)) {
		return false
	}
	collected := map[string]bool{}
	return !(collectOnly(pkg, rng.Body.List, collected) && len(collected) > 0 &&
		sortedLater(pkg, f, rng, collected))
}

// collectOnly reports whether every statement is an append of the
// form `s = append(s, ...)` — optionally wrapped in an else-less if —
// recording the destination slice names.
func collectOnly(pkg *Package, stmts []ast.Stmt, collected map[string]bool) bool {
	for _, st := range stmts {
		switch x := st.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return false
			}
			lhs, ok := x.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := x.Rhs[0].(*ast.CallExpr)
			if !ok || !pkg.isBuiltin(call, "append") || len(call.Args) == 0 {
				return false
			}
			if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != lhs.Name {
				return false
			}
			collected[lhs.Name] = true
		case *ast.IfStmt:
			if x.Else != nil || x.Init != nil || !collectOnly(pkg, x.Body.List, collected) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedLater reports whether, after the range statement, the
// enclosing function passes one of the collected slices to a
// sort-package function.
func sortedLater(pkg *Package, f *ast.File, rng *ast.RangeStmt, collected map[string]bool) bool {
	body := enclosingFuncBody(f, rng)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if p, _, ok := pkg.callTarget(call); !ok || (p != "sort" && p != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && collected[id.Name] {
				found = true
			}
		}
		return true
	})
	return found
}

// FloateqAnalyzer forbids exact floating-point comparisons (==, !=,
// >=) in the deterministic packages outside the two approved kernel
// files. The engines' equality guarantees are *byte* guarantees
// produced by executing identical operation sequences — scattering ad
// hoc exact comparisons invites code that is correct only until an
// operand is computed by a different-but-equivalent expression.
// Ordered merges (>, <) are the engine's bread and butter and stay
// legal; >= is forbidden because its equality half silently changes
// winner-selection (and therefore attribution/critical-path argmax)
// between "first wins" and "last wins".
var FloateqAnalyzer = &Analyzer{
	Name:  "floateq",
	Doc:   "forbids ==, != and >= on floating-point values outside the approved compute kernels",
	Scope: deterministicScope,
	Run:   runFloateq,
}

// floateqApprovedFiles are the shared propagation kernels where exact
// FP comparison is the point (both engines must take bitwise-equal
// branches).
var floateqApprovedFiles = map[string]bool{
	"internal/core/compute.go": true,
	"internal/core/eq.go":      true,
}

func runFloateq(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		name := pass.Pkg.Fset.Position(f.Pos()).Filename
		if floateqApprovedFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var op string
			switch be.Op.String() {
			case "==", "!=", ">=":
				op = be.Op.String()
			default:
				return true
			}
			xt, yt := pass.Pkg.typeOf(be.X), pass.Pkg.typeOf(be.Y)
			if !isFloat(xt) && !isFloat(yt) {
				return true
			}
			if isConstExpr(pass, be.X) && isConstExpr(pass, be.Y) {
				return true // compile-time constant comparison
			}
			// x != x is the portable NaN test; leave it alone.
			if ix, ok := be.X.(*ast.Ident); ok {
				if iy, ok := be.Y.(*ast.Ident); ok && ix.Name == iy.Name {
					return true
				}
			}
			pass.Report(be.OpPos, "exact floating-point comparison (%s) outside the approved kernels; compare via the shared kernels, use an epsilon, or suppress with justification", op)
			return true
		})
	}
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
