// Package analysis is a zero-dependency (stdlib go/ast + go/parser +
// go/types only) static-analysis framework for the repository's own
// source tree. It exists to prove, at lint time, the determinism and
// hot-path invariants that the runtime test suites can only sample:
// byte-identical serial/parallel/compiled replays (DESIGN.md §4.1
// sample-invariant schedule, §4.3 order preservation) and the
// ~12-allocs/replay compiled hot path.
//
// The framework loads packages with a lenient type checker (module
// packages are type-checked from source; imports outside the module
// resolve to empty stub packages, and the resulting "undeclared name"
// errors are ignored), runs a set of domain Analyzers over each
// package, and filters the diagnostics through explicit source
// suppressions (//mpg:lint-ignore) and a committed baseline file.
//
// Two source directives drive the suite:
//
//	//mpg:hotpath
//	    in a function's doc comment marks it as an allocation-free
//	    hot path; the hotpathalloc analyzer then forbids allocating
//	    constructs in its body.
//
//	//mpg:lint-ignore <analyzer>[,<analyzer>...] <reason>
//	    suppresses the named analyzers' diagnostics, either on the
//	    same line (trailing comment) or — as a standalone comment —
//	    for the whole statement or declaration that starts on the
//	    next non-directive line (standalone directives stack). The
//	    reason is mandatory and is carried into reports. For the
//	    interprocedural analyzers (hotpathprop, detreach) a
//	    suppression on a call site additionally prunes that call
//	    edge from the reachability closure, so one justified
//	    boundary (e.g. an out-of-band metrics call) stops the whole
//	    transitive walk instead of requiring suppressions in every
//	    function behind it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive prefixes recognized in comments.
const (
	DirectiveHotPath = "//mpg:hotpath"
	DirectiveIgnore  = "//mpg:lint-ignore"
)

// Analyzer is one named check. Run is invoked once per loaded package
// that falls inside the analyzer's scope.
type Analyzer struct {
	// Name is the stable identifier used in reports, suppressions
	// and baselines.
	Name string
	// Doc is a one-line description, shown by mpg-lint -list.
	Doc string
	// Scope restricts the analyzer to packages whose import path
	// matches one of these prefixes (a prefix matches the package
	// itself or any package below it). Empty means every package.
	Scope []string
	// Exempt removes packages from Scope by the same prefix rule;
	// exemption wins over scope.
	Exempt []string
	// Run performs the check, reporting findings via pass.Report.
	// File-local analyzers set Run; it is invoked once per in-scope
	// package.
	Run func(pass *Pass)
	// RunModule, when set, marks an interprocedural analyzer: it is
	// invoked exactly once per run with every loaded package and the
	// shared call graph, and Run/Scope/Exempt are ignored (module
	// analyzers scope themselves).
	RunModule func(pass *ModulePass)
}

// appliesTo reports whether the analyzer should run on a package.
func (a *Analyzer) appliesTo(importPath string) bool {
	for _, p := range a.Exempt {
		if matchPrefix(importPath, p) {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, p := range a.Scope {
		if matchPrefix(importPath, p) {
			return true
		}
	}
	return false
}

// matchPrefix reports whether path is prefix itself or lies below it
// ("a/b" matches "a/b" and "a/b/c", never "a/bc").
func matchPrefix(path, prefix string) bool {
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Report records a finding at the given position.
func (p *Pass) Report(pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Func:     enclosingFuncName(p.Pkg, pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one interprocedural analyzer's view of the whole
// loaded module: every package plus the shared call graph.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph

	report func(Diagnostic)
}

// Report records a gating finding at the given position, resolving
// the owning package from the graph's shared FileSet.
func (p *ModulePass) Report(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	p.reportSeverity(pkg, pos, "", format, args...)
}

// ReportInfo records an advisory (non-gating) finding.
func (p *ModulePass) ReportInfo(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	p.reportSeverity(pkg, pos, SeverityInfo, format, args...)
}

func (p *ModulePass) reportSeverity(pkg *Package, pos token.Pos, severity, format string, args ...interface{}) {
	position := pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Func:     enclosingFuncName(pkg, pos),
		Message:  fmt.Sprintf(format, args...),
		Severity: severity,
	})
}

// SeverityInfo marks advisory findings (annotation-completeness
// nudges, unprovable-determinism notes). Info diagnostics appear in
// reports but never gate: Outstanding skips them and baselines do not
// absorb them. The empty severity is an error (gating), so existing
// analyzers and serialized reports keep their meaning.
const SeverityInfo = "info"

// Diagnostic is one finding, positioned in the source tree. File is
// the path as the loader saw it (module-relative when loaded through
// Load).
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	// Func is the enclosing function or method name at the position
	// ("" at file scope). It keys baseline fingerprints, so a finding
	// stays pinned to its function when unrelated code moves it.
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
	// Severity is "" for gating findings and SeverityInfo for
	// advisory ones.
	Severity string `json:"severity,omitempty"`

	// Suppressed is set when an //mpg:lint-ignore directive covers
	// the diagnostic; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// Baselined is set when the committed baseline absorbs the
	// diagnostic.
	Baselined bool `json:"baselined,omitempty"`
}

// enclosingFuncName names the function or method declaration whose
// body (or signature) spans pos: "Func" for functions,
// "(Recv).Method" for methods, "" at file scope.
func enclosingFuncName(pkg *Package, pos token.Pos) string {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fn.Pos() || pos > fn.End() {
				continue
			}
			return funcDeclName(fn)
		}
	}
	return ""
}

// funcDeclName renders a declaration's name with its receiver type.
func funcDeclName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	return "(" + recvTypeName(fn.Recv.List[0].Type) + ")." + fn.Name.Name
}

// recvTypeName renders a receiver type expression ("T", "*T";
// generic receivers drop their type parameters).
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// sortDiagnostics orders findings by file, line, column, analyzer for
// stable output.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// suppression is one parsed //mpg:lint-ignore directive with the line
// span it covers.
type suppression struct {
	analyzer  string
	reason    string
	firstLine int // first covered line
	lastLine  int // last covered line (inclusive)
	used      bool
}

// collectSuppressions parses every //mpg:lint-ignore directive in a
// file. A trailing directive covers its own line; a standalone
// directive covers the whole statement or declaration beginning on
// the next non-directive line (so one directive covers a multi-line
// composite literal, and standalone directives for different
// analyzers stack above one statement). A directive naming several
// analyzers (comma-separated) yields one suppression per name.
func collectSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	// Line spans of statements/declarations, for standalone
	// directives that cover the following node.
	type span struct{ first, last int }
	var spans []span
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.Field:
			spans = append(spans, span{
				fset.Position(n.Pos()).Line,
				fset.Position(n.End()).Line,
			})
		}
		return true
	})
	// Lines holding standalone directives, so a stack of directives
	// above one statement all skip forward to the statement itself.
	directiveLines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, DirectiveIgnore) &&
				(fset.Position(c.Pos()).Column == 1 || standsAlone(fset, f, c)) {
				directiveLines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	coveredThrough := func(startLine int) int {
		// The largest last-line among nodes starting on startLine.
		last := startLine
		for _, s := range spans {
			if s.first == startLine && s.last > last {
				last = s.last
			}
		}
		return last
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectiveIgnore) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, DirectiveIgnore))
			names, reason, _ := strings.Cut(rest, " ")
			line := fset.Position(c.Pos()).Line
			first, last := line, line
			if directiveLines[line] {
				// Standalone comment: cover the next node, skipping any
				// further stacked directives in between.
				first = line + 1
				for directiveLines[first] {
					first++
				}
				last = coveredThrough(first)
			}
			for _, name := range strings.Split(names, ",") {
				out = append(out, suppression{
					analyzer:  strings.TrimSpace(name),
					reason:    strings.TrimSpace(reason),
					firstLine: first,
					lastLine:  last,
				})
			}
		}
	}
	return out
}

// standsAlone reports whether the comment is the only thing on its
// line (i.e. not a trailing comment after code).
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return true
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return true
		}
		if fset.Position(n.Pos()).Line <= line && fset.Position(n.End()).Line >= line {
			// A node overlapping the comment's line is fine if it's a
			// container (block, function, file); only leaf code on the
			// same exact line makes the comment "trailing".
			switch n.(type) {
			case *ast.File, *ast.BlockStmt, *ast.FuncDecl, *ast.GenDecl,
				*ast.CaseClause, *ast.CommClause, *ast.StructType,
				*ast.InterfaceType, *ast.FieldList, *ast.CompositeLit,
				*ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
				return true
			}
			if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
				alone = false
				return false
			}
		}
		return true
	})
	return alone
}

// hasHotPathDirective reports whether a function declaration carries
// the //mpg:hotpath marker in its doc comment.
func hasHotPathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == DirectiveHotPath || strings.HasPrefix(c.Text, DirectiveHotPath+" ") {
			return true
		}
	}
	return false
}
