// Package analysis is a zero-dependency (stdlib go/ast + go/parser +
// go/types only) static-analysis framework for the repository's own
// source tree. It exists to prove, at lint time, the determinism and
// hot-path invariants that the runtime test suites can only sample:
// byte-identical serial/parallel/compiled replays (DESIGN.md §4.1
// sample-invariant schedule, §4.3 order preservation) and the
// ~12-allocs/replay compiled hot path.
//
// The framework loads packages with a lenient type checker (module
// packages are type-checked from source; imports outside the module
// resolve to empty stub packages, and the resulting "undeclared name"
// errors are ignored), runs a set of domain Analyzers over each
// package, and filters the diagnostics through explicit source
// suppressions (//mpg:lint-ignore) and a committed baseline file.
//
// Two source directives drive the suite:
//
//	//mpg:hotpath
//	    in a function's doc comment marks it as an allocation-free
//	    hot path; the hotpathalloc analyzer then forbids allocating
//	    constructs in its body.
//
//	//mpg:lint-ignore <analyzer> <reason>
//	    suppresses one analyzer's diagnostics, either on the same
//	    line (trailing comment) or — as a standalone comment — for
//	    the whole statement or declaration that starts on the next
//	    line. The reason is mandatory and is carried into reports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive prefixes recognized in comments.
const (
	DirectiveHotPath = "//mpg:hotpath"
	DirectiveIgnore  = "//mpg:lint-ignore"
)

// Analyzer is one named check. Run is invoked once per loaded package
// that falls inside the analyzer's scope.
type Analyzer struct {
	// Name is the stable identifier used in reports, suppressions
	// and baselines.
	Name string
	// Doc is a one-line description, shown by mpg-lint -list.
	Doc string
	// Scope restricts the analyzer to packages whose import path
	// matches one of these prefixes (a prefix matches the package
	// itself or any package below it). Empty means every package.
	Scope []string
	// Exempt removes packages from Scope by the same prefix rule;
	// exemption wins over scope.
	Exempt []string
	// Run performs the check, reporting findings via pass.Report.
	Run func(pass *Pass)
}

// appliesTo reports whether the analyzer should run on a package.
func (a *Analyzer) appliesTo(importPath string) bool {
	for _, p := range a.Exempt {
		if matchPrefix(importPath, p) {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, p := range a.Scope {
		if matchPrefix(importPath, p) {
			return true
		}
	}
	return false
}

// matchPrefix reports whether path is prefix itself or lies below it
// ("a/b" matches "a/b" and "a/b/c", never "a/bc").
func matchPrefix(path, prefix string) bool {
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Report records a finding at the given position.
func (p *Pass) Report(pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the source tree. File is
// the path as the loader saw it (module-relative when loaded through
// Load).
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`

	// Suppressed is set when an //mpg:lint-ignore directive covers
	// the diagnostic; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// Baselined is set when the committed baseline absorbs the
	// diagnostic.
	Baselined bool `json:"baselined,omitempty"`
}

// sortDiagnostics orders findings by file, line, column, analyzer for
// stable output.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// suppression is one parsed //mpg:lint-ignore directive with the line
// span it covers.
type suppression struct {
	analyzer  string
	reason    string
	firstLine int // first covered line
	lastLine  int // last covered line (inclusive)
	used      bool
}

// collectSuppressions parses every //mpg:lint-ignore directive in a
// file. A trailing directive covers its own line; a standalone
// directive covers the whole statement or declaration beginning on
// the next non-comment line (so one directive can cover a multi-line
// composite literal).
func collectSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	// Line spans of statements/declarations, for standalone
	// directives that cover the following node.
	type span struct{ first, last int }
	var spans []span
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.Field:
			spans = append(spans, span{
				fset.Position(n.Pos()).Line,
				fset.Position(n.End()).Line,
			})
		}
		return true
	})
	coveredThrough := func(startLine int) int {
		// The largest last-line among nodes starting on startLine.
		last := startLine
		for _, s := range spans {
			if s.first == startLine && s.last > last {
				last = s.last
			}
		}
		return last
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectiveIgnore) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, DirectiveIgnore))
			name, reason, _ := strings.Cut(rest, " ")
			line := fset.Position(c.Pos()).Line
			s := suppression{
				analyzer:  name,
				reason:    strings.TrimSpace(reason),
				firstLine: line,
				lastLine:  line,
			}
			if fset.Position(c.Pos()).Column == 1 || standsAlone(fset, f, c) {
				// Standalone comment: also cover the next node.
				s.firstLine = line + 1
				s.lastLine = coveredThrough(line + 1)
			}
			out = append(out, s)
		}
	}
	return out
}

// standsAlone reports whether the comment is the only thing on its
// line (i.e. not a trailing comment after code).
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return true
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return true
		}
		if fset.Position(n.Pos()).Line <= line && fset.Position(n.End()).Line >= line {
			// A node overlapping the comment's line is fine if it's a
			// container (block, function, file); only leaf code on the
			// same exact line makes the comment "trailing".
			switch n.(type) {
			case *ast.File, *ast.BlockStmt, *ast.FuncDecl, *ast.GenDecl,
				*ast.CaseClause, *ast.CommClause, *ast.StructType,
				*ast.InterfaceType, *ast.FieldList, *ast.CompositeLit,
				*ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
				return true
			}
			if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
				alone = false
				return false
			}
		}
		return true
	})
	return alone
}

// hasHotPathDirective reports whether a function declaration carries
// the //mpg:hotpath marker in its doc comment.
func hasHotPathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == DirectiveHotPath || strings.HasPrefix(c.Text, DirectiveHotPath+" ") {
			return true
		}
	}
	return false
}
