package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ConcDisciplineAnalyzer enforces the concurrency discipline of the
// parallel replay core (internal/parallel and the slab-replay code in
// internal/core). Four rules, each a well-known way a data race or a
// deadlock sneaks past `go vet`-level review:
//
//  1. Lock-bearing values must not be copied. A struct that contains
//     (directly or transitively) a sync.Mutex, RWMutex, WaitGroup,
//     Once, Cond, Pool, Map or a sync/atomic value is flagged when a
//     method takes it by value receiver or an assignment copies it:
//     the copy carries a snapshot of the lock state, so the original
//     and the copy guard nothing together.
//  2. A field updated through sync/atomic somewhere must be updated
//     through sync/atomic everywhere. Mixing atomic.AddInt64(&s.n, 1)
//     with a plain s.n++ loses the atomicity the first site paid for.
//  3. Goroutine closures must not capture loop variables — pass them
//     as call arguments. Go ≥1.22 makes the capture per-iteration, so
//     this is a discipline rule rather than a correctness one: the
//     explicit argument is the visible ownership transfer.
//  4. Goroutine closures must not write to captured outer variables
//     (directly or through an index). Rank-owned output slots — each
//     goroutine writing only its own index, as Frontier does — are the
//     sanctioned exception, suppressed in place with the reason
//     documenting the ownership argument.
//
// A fifth, interprocedural rule rides on the call graph: no channel
// sends anywhere in the //mpg:hotpath closure. A send blocks on the
// receiver, so one slow consumer stalls the replay inner loop.
//
// Detection of sync/atomic *fields* is syntactic (the lenient loader
// stubs external packages, so a sync.Mutex field has an invalid
// type); module-defined lock-bearing types then propagate through the
// type checker transitively.
var ConcDisciplineAnalyzer = &Analyzer{
	Name:      "concdiscipline",
	Doc:       "enforces the parallel-core concurrency rules: no lock copies, no mixed atomic/plain access, no loop-var capture or captured writes in goroutines, no channel sends on the hot path",
	RunModule: runConcDiscipline,
}

// concScopePrefixes limits rules 1–4 to the packages that host the
// parallel replay machinery (fixture packages nest under them).
var concScopePrefixes = []string{
	"mpgraph/internal/parallel",
	"mpgraph/internal/core",
}

func inConcScope(importPath string) bool {
	for _, p := range concScopePrefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

func runConcDiscipline(pass *ModulePass) {
	var scoped []*Package
	for _, pkg := range pass.Pkgs {
		if inConcScope(pkg.ImportPath) {
			scoped = append(scoped, pkg)
		}
	}
	lockSet := collectLockBearing(scoped)
	for _, pkg := range scoped {
		checkLockCopies(pass, pkg, lockSet)
		checkAtomicMix(pass, pkg)
		checkGoroutines(pass, pkg)
	}
	checkHotPathSends(pass)
}

// syncLockTypes are the sync types whose zero-value identity matters:
// copying any of them detaches the copy from every existing waiter.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// collectLockBearing finds module-defined struct types that contain
// sync state, directly (a field of a sync or sync/atomic type,
// detected syntactically because those packages are stubbed) or
// transitively (a field whose type is itself lock-bearing). The value
// is a human-readable provenance like "sync.Mutex (field mu)".
func collectLockBearing(pkgs []*Package) map[*types.TypeName]string {
	type structDecl struct {
		pkg *Package
		st  *ast.StructType
	}
	decls := map[*types.TypeName]structDecl{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					decls[tn] = structDecl{pkg, st}
				}
				return true
			})
		}
	}
	lockSet := map[*types.TypeName]string{}
	for changed := true; changed; {
		changed = false
		for tn, d := range decls {
			if _, done := lockSet[tn]; done {
				continue
			}
			for _, field := range d.st.Fields.List {
				fieldName := "embedded"
				if len(field.Names) > 0 {
					fieldName = "field " + field.Names[0].Name
				}
				if syncName := syncTypeName(d.pkg, field.Type); syncName != "" {
					lockSet[tn] = syncName + " (" + fieldName + ")"
					changed = true
					break
				}
				if inner := fieldTypeName(d.pkg, field.Type); inner != nil {
					if via, ok := lockSet[inner]; ok {
						lockSet[tn] = via + " via " + fieldName + " " + inner.Name()
						changed = true
						break
					}
				}
			}
		}
	}
	return lockSet
}

// syncTypeName reports whether the field type expression names a sync
// or sync/atomic type (unwrapping array layers), returning its
// qualified name or "".
func syncTypeName(pkg *Package, e ast.Expr) string {
	for {
		if arr, ok := e.(*ast.ArrayType); ok {
			e = arr.Elt
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	switch path, _ := pkg.pkgPathOf(qual); path {
	case "sync":
		if syncLockTypes[sel.Sel.Name] {
			return "sync." + sel.Sel.Name
		}
	case "sync/atomic":
		return "atomic." + sel.Sel.Name
	}
	return ""
}

// fieldTypeName resolves a field type expression to the module
// TypeName it names, unwrapping arrays (an array of lock-bearing
// values is lock-bearing; a slice or pointer is a reference and is
// not).
func fieldTypeName(pkg *Package, e ast.Expr) *types.TypeName {
	for {
		if arr, ok := e.(*ast.ArrayType); ok && arr.Len != nil {
			e = arr.Elt
			continue
		}
		break
	}
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	tn, _ := pkg.Info.Uses[id].(*types.TypeName)
	return tn
}

// checkLockCopies flags value receivers on lock-bearing types and
// assignments that copy lock-bearing values.
func checkLockCopies(pass *ModulePass, pkg *Package, lockSet map[*types.TypeName]string) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv == nil || len(x.Recv.List) == 0 {
					return true
				}
				if tn := fieldTypeName(pkg, x.Recv.List[0].Type); tn != nil {
					if via, ok := lockSet[tn]; ok {
						pass.Report(pkg, x.Recv.Pos(), "method %s copies its receiver %s, which contains %s; use a pointer receiver", x.Name.Name, tn.Name(), via)
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					reportLockCopy(pass, pkg, lockSet, rhs, "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range x.Values {
					reportLockCopy(pass, pkg, lockSet, v, "declaration")
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if tn, via := lockBearingType(pkg, lockSet, rangeValueType(pkg, x.Value)); tn != nil {
						pass.Report(pkg, x.Value.Pos(), "range value copies %s, which contains %s; iterate by index and take a pointer", tn.Name(), via)
					}
				}
			}
			return true
		})
	}
}

// rangeValueType resolves the type of a range value expression. A
// `:=`-declared range variable is recorded in Defs, not Types, so
// typeOf alone would miss it.
func rangeValueType(pkg *Package, e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return pkg.typeOf(e)
}

// reportLockCopy flags e when evaluating it yields a by-value copy of
// a lock-bearing struct. Construction sites — composite literals and
// call results — are initialization, not copies of a shared value,
// and stay legal.
func reportLockCopy(pass *ModulePass, pkg *Package, lockSet map[*types.TypeName]string, e ast.Expr, what string) {
	switch ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return
	}
	if tn, via := lockBearingType(pkg, lockSet, pkg.typeOf(e)); tn != nil {
		pass.Report(pkg, e.Pos(), "%s copies %s, which contains %s; share a *%s instead", what, tn.Name(), via, tn.Name())
	}
}

func lockBearingType(pkg *Package, lockSet map[*types.TypeName]string, t types.Type) (*types.TypeName, string) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	if via, ok := lockSet[named.Obj()]; ok {
		return named.Obj(), via
	}
	return nil, ""
}

// checkAtomicMix collects every variable or field passed to a
// sync/atomic function by address, then flags plain writes to the
// same object elsewhere in the package.
func checkAtomicMix(pass *ModulePass, pkg *Package) {
	atomicObjs := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p, _, ok := pkg.callTarget(call); !ok || p != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if obj := selectedObject(pkg, un.X); obj != nil {
				atomicObjs[obj] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if obj := selectedObject(pkg, lhs); obj != nil && atomicObjs[obj] {
						pass.Report(pkg, lhs.Pos(), "plain write to %s, which is accessed via sync/atomic elsewhere; every access must go through sync/atomic", obj.Name())
					}
				}
			case *ast.IncDecStmt:
				if obj := selectedObject(pkg, x.X); obj != nil && atomicObjs[obj] {
					pass.Report(pkg, x.Pos(), "plain %s of %s, which is accessed via sync/atomic elsewhere; every access must go through sync/atomic", x.Tok, obj.Name())
				}
			}
			return true
		})
	}
}

// selectedObject resolves x.f or a bare identifier to its object.
func selectedObject(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return pkg.Info.Uses[x.Sel]
	case *ast.Ident:
		return pkg.Info.Uses[x]
	}
	return nil
}

// checkGoroutines enforces rules 3 and 4 on `go func(...){...}(...)`
// closures: no loop-variable capture, no writes to captured outer
// variables.
func checkGoroutines(pass *ModulePass, pkg *Package) {
	for _, f := range pkg.Files {
		loopVars := collectLoopVars(pkg, f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoClosure(pass, pkg, fl, loopVars)
			return true
		})
	}
}

// collectLoopVars gathers the objects declared as range key/value
// variables or for-init short declarations in f.
func collectLoopVars(pkg *Package, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	def := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x.Tok == token.DEFINE {
				if x.Key != nil {
					def(x.Key)
				}
				if x.Value != nil {
					def(x.Value)
				}
			}
		case *ast.ForStmt:
			if as, ok := x.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					def(lhs)
				}
			}
		}
		return true
	})
	return out
}

func checkGoClosure(pass *ModulePass, pkg *Package, fl *ast.FuncLit, loopVars map[types.Object]bool) {
	capturedFrom := func(obj types.Object) bool {
		return obj != nil && obj.Pos() != token.NoPos &&
			(obj.Pos() < fl.Pos() || obj.Pos() > fl.End())
	}
	reported := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if loopVars[obj] && capturedFrom(obj) && !reported[obj] {
				reported[obj] = true
				pass.Report(pkg, x.Pos(), "goroutine closure captures loop variable %s; pass it as a call argument so the per-iteration ownership is explicit", obj.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkCapturedWrite(pass, pkg, fl, lhs, capturedFrom)
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(pass, pkg, fl, x.X, capturedFrom)
		}
		return true
	})
}

// checkCapturedWrite flags a write whose target base is a variable
// captured from outside the goroutine closure: either the variable
// itself or an element of a captured slice/map/array. Writes through
// captured *pointers* (sel.X.field) are the pointee owner's business
// and are left to rule 2 and the race detector.
func checkCapturedWrite(pass *ModulePass, pkg *Package, fl *ast.FuncLit, lhs ast.Expr, capturedFrom func(types.Object) bool) {
	base := ast.Unparen(lhs)
	indexed := false
	for {
		ix, ok := base.(*ast.IndexExpr)
		if !ok {
			break
		}
		indexed = true
		base = ast.Unparen(ix.X)
	}
	id, ok := base.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() || !capturedFrom(v) {
		return
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return // package-level writes are detreach's finding
	}
	if indexed {
		pass.Report(pkg, lhs.Pos(), "goroutine closure writes through captured %s; if each goroutine owns a disjoint index range, suppress with the ownership argument", v.Name())
		return
	}
	pass.Report(pkg, lhs.Pos(), "goroutine closure writes to captured variable %s; return the value over a channel or give each goroutine an owned slot", v.Name())
}

// checkHotPathSends walks the //mpg:hotpath closure (rule 5): a
// channel send anywhere in it blocks the replay inner loop on a
// consumer.
func checkHotPathSends(pass *ModulePass) {
	g := pass.Graph
	var roots []*FuncNode
	for _, n := range g.Funcs {
		if n.HotPath {
			roots = append(roots, n)
		}
	}
	visited := g.Reach(pass.Analyzer.Name, roots, nil)
	for _, n := range g.Funcs {
		if _, ok := visited[n]; !ok {
			continue
		}
		if n.Decl.Body == nil {
			continue
		}
		chain := Chain(visited, n)
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if s, ok := node.(*ast.SendStmt); ok {
				pass.Report(n.Pkg, s.Arrow, "%s: channel send on the hot path blocks on the receiver; buffer the result in an owned slot and publish after the loop", chain)
			}
			return true
		})
	}
}
