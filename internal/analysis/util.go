package analysis

import (
	"go/ast"
	"go/types"
)

// pkgPathOf resolves an identifier used as a selector qualifier to
// the import path of the package it names, via the type checker's
// Uses map (so a local variable shadowing a package name is never
// mistaken for the package).
func (p *Package) pkgPathOf(id *ast.Ident) (string, bool) {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
	}
	return "", false
}

// callTarget resolves calls of the form pkg.Fn(...) to (import path,
// function name).
func (p *Package) callTarget(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	path, ok := p.pkgPathOf(qual)
	if !ok {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// typeOf returns the checked type of an expression, or nil when the
// lenient checker could not determine one.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isBuiltin reports whether the call's function is the named builtin.
func (p *Package) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj, ok := p.Info.Uses[id]
	if !ok {
		// No resolution (shadowed or checker gave up): the bare name
		// is treated as the builtin, the conservative reading.
		return true
	}
	_, isb := obj.(*types.Builtin)
	return isb
}

// namedType unwraps a type to its named form, returning the defining
// package path and type name.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isFloat reports whether t is a floating-point basic type (or an
// untyped float constant's type).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// containsNamed reports whether t is, points to, or is a
// slice/array/map of the named type pkg.name (one level of each
// wrapper, applied repeatedly).
func containsNamed(t types.Type, pkg, name string) bool {
	for i := 0; i < 8 && t != nil; i++ {
		if p, n, ok := namedType(t); ok && p == pkg && n == name {
			return true
		}
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		default:
			return false
		}
	}
	return false
}

// enclosingFunc returns the innermost function declaration or literal
// body that contains pos, searching the file.
func enclosingFuncBody(f *ast.File, pos ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos.Pos() && pos.End() <= body.End() {
			best = body // keep innermost: Inspect visits outer first
		}
		return true
	})
	return best
}
