package analysis

import (
	"go/ast"
)

const distPkg = "mpgraph/internal/dist"

// RNGPurityAnalyzer enforces the ownership discipline that makes the
// random streams sample-invariant (§4.1): every dist.RNG belongs to
// exactly one simulated component and is obtained through the
// approved constructors (NewRNG, Fork, ForkNamed, or the in-place
// Reseed / ForkNamedInto used by pooled replay state). Concretely:
//
//   - an RNG-typed variable must not be captured by a goroutine
//     closure — concurrent draws interleave nondeterministically;
//   - dist.RNG values must not be copied (assignment, call argument,
//     return, composite-literal element, or range value variable):
//     a copy silently duplicates the stream, and the two halves
//     diverge from the schedule the seed derivation promised;
//   - a dist.RNG composite literal outside the dist package conjures
//     an unseeded generator, bypassing the constructors;
//   - an existing *dist.RNG must not be stored into a struct field
//     or element (sharing one stream between two owners); fields are
//     populated from constructor calls or by taking the address of
//     owned backing storage.
var RNGPurityAnalyzer = &Analyzer{
	Name: "rngpurity",
	Doc:  "enforces single-owner, constructor-derived dist.RNG usage (no copies, no goroutine capture, no shared stores)",
	Scope: []string{
		"mpgraph/internal",
		"mpgraph/cmd",
		"mpgraph/examples",
	},
	Exempt: []string{
		distPkg, // the defining package manages its own state
	},
	Run: runRNGPurity,
}

func isRNGValue(pass *Pass, e ast.Expr) bool {
	t := pass.Pkg.typeOf(e)
	if t == nil {
		return false
	}
	p, n, ok := namedType(t)
	return ok && p == distPkg && n == "RNG"
}

// isRNGCopy reports whether e is an RNG value being copied. A
// composite literal is not a copy of an existing stream — it gets its
// own (sharper) construction diagnostic instead of two reports.
func isRNGCopy(pass *Pass, e ast.Expr) bool {
	if _, ok := e.(*ast.CompositeLit); ok {
		return false
	}
	return isRNGValue(pass, e)
}

func runRNGPurity(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				checkGoCapture(pass, x)
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					if isRNGCopy(pass, rhs) {
						pass.Report(rhs.Pos(), "dist.RNG copied by value: a copy duplicates the random stream; keep a pointer or Reseed a dedicated generator")
					}
				}
				checkSharedStore(pass, x)
			case *ast.ValueSpec:
				for _, v := range x.Values {
					if isRNGCopy(pass, v) {
						pass.Report(v.Pos(), "dist.RNG copied by value: a copy duplicates the random stream; keep a pointer or Reseed a dedicated generator")
					}
				}
			case *ast.CallExpr:
				for _, arg := range x.Args {
					if isRNGCopy(pass, arg) {
						pass.Report(arg.Pos(), "dist.RNG passed by value: the callee draws from a silent duplicate of the caller's stream; pass *dist.RNG")
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if isRNGCopy(pass, r) {
						pass.Report(r.Pos(), "dist.RNG returned by value: the caller receives a duplicate stream; return *dist.RNG")
					}
				}
			case *ast.CompositeLit:
				if isRNGValue(pass, x) {
					pass.Report(x.Pos(), "dist.RNG composite literal bypasses the approved constructors (NewRNG/Fork/ForkNamed/Reseed/ForkNamedInto)")
					return true
				}
				for _, el := range x.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isRNGValue(pass, v) {
						pass.Report(v.Pos(), "dist.RNG copied by value into a composite literal; store a pointer or backing array instead")
					}
				}
			case *ast.RangeStmt:
				if v, ok := x.Value.(*ast.Ident); ok && v.Name != "_" && isRNGValue(pass, x.Value) {
					pass.Report(x.Value.Pos(), "range value variable copies dist.RNG elements; iterate by index and take addresses")
				}
			}
			return true
		})
	}
}

// checkGoCapture flags goroutine function literals that capture an
// RNG-typed variable declared outside the literal.
func checkGoCapture(pass *Pass, g *ast.GoStmt) {
	lits := []*ast.FuncLit{}
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		lits = append(lits, fl)
	}
	for _, arg := range g.Call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			lits = append(lits, fl)
		}
	}
	for _, fl := range lits {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Uses[id]
			if !ok || obj.Pos() == 0 {
				return true
			}
			// Declared inside the literal: not a capture.
			if fl.Pos() <= obj.Pos() && obj.Pos() < fl.End() {
				return true
			}
			if containsNamed(obj.Type(), distPkg, "RNG") {
				pass.Report(id.Pos(), "RNG %q captured by a goroutine closure: concurrent draws interleave nondeterministically; fork a per-goroutine generator from a deterministic seed instead", id.Name)
			}
			return true
		})
	}
}

// checkSharedStore flags assignments that store an already-owned
// *dist.RNG into a field or element, which would share one stream
// between two owners. Constructor-call results and fresh addresses
// (&backing[i]) remain legal.
func checkSharedStore(pass *Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // multi-value call assignment: nothing RNG-shaped to check
		}
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue // plain local aliasing is sequential and visible
		}
		rhs := as.Rhs[i]
		t := pass.Pkg.typeOf(rhs)
		if t == nil || !containsNamed(t, distPkg, "RNG") {
			continue
		}
		switch rhs.(type) {
		case *ast.CallExpr:
			// NewRNG/Fork/ForkNamed result: a fresh stream.
		case *ast.UnaryExpr:
			// &owned-backing: ownership transfer, not sharing.
		case *ast.CompositeLit:
			// Fresh backing storage (e.g. []*dist.RNG{...} handled
			// element-wise above).
		default:
			pass.Report(rhs.Pos(), "storing an existing RNG reference into a field/element shares one stream between owners; fork a dedicated generator (ForkNamed/ForkNamedInto)")
		}
	}
}
