package analysis

import "testing"

func TestFloateqFlagsExactComparisons(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, nondetScope, "internal/core/fixture/cmp.go", `
package fixture

func Cmp(a, b float64) (bool, bool, bool) {
	return a == b, a != b, a >= b
}
`)
	wantOutstanding(t, res,
		"exact floating-point comparison (==)",
		"exact floating-point comparison (!=)",
		"exact floating-point comparison (>=)",
	)
}

func TestFloateqAllowsOrderedNaNConstAndInts(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, nondetScope, "internal/core/fixture/ok.go", `
package fixture

func OK(a, b float64, i, j int) bool {
	if a > b || a < b { // ordered merges are the engine's bread and butter
		return true
	}
	if a != a { // portable NaN test
		return false
	}
	const x, y = 1.0, 2.0
	return x == y || i == j
}
`)
	wantOutstanding(t, res)
}

func TestFloateqApprovedKernelFileExempt(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, "mpgraph/internal/core", "internal/core/eq.go", `
package core

func bitEqual(a, b float64) bool { return a == b }
`)
	wantOutstanding(t, res)
}

func TestFloateqSuppression(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, nondetScope, "internal/core/fixture/supp.go", `
package fixture

func IsZero(d float64) bool {
	//mpg:lint-ignore floateq parameter-identity check against an exact zero default
	return d == 0
}
`)
	wantOutstanding(t, res)
	wantSuppressed(t, res, 1)
}
