package analysis

import (
	"strings"
	"testing"
)

// runFixture type-checks one in-memory file as a package of the real
// module (so fixtures can import mpgraph/internal/dist etc.) and runs
// the given analyzer over it, honoring its scope rules.
func runFixture(t *testing.T, a *Analyzer, importPath, filename, src string) *Result {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.CheckSource(importPath, filename, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	res, err := RunPackages([]*Package{pkg}, Config{Analyzers: []*Analyzer{a}})
	if err != nil {
		t.Fatalf("RunPackages: %v", err)
	}
	return res
}

// wantOutstanding asserts the result has exactly the outstanding
// diagnostics whose messages contain the given substrings, in order.
func wantOutstanding(t *testing.T, res *Result, substrings ...string) {
	t.Helper()
	out := res.Outstanding()
	if len(out) != len(substrings) {
		t.Fatalf("got %d outstanding diagnostics, want %d:\n%s",
			len(out), len(substrings), formatDiags(out))
	}
	for i, want := range substrings {
		if !strings.Contains(out[i].Message, want) {
			t.Errorf("diagnostic %d: message %q does not contain %q", i, out[i].Message, want)
		}
	}
}

// wantSuppressed asserts the result has exactly n suppressed
// diagnostics, each carrying a non-empty reason.
func wantSuppressed(t *testing.T, res *Result, n int) {
	t.Helper()
	var supp []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Suppressed {
			supp = append(supp, d)
		}
	}
	if len(supp) != n {
		t.Fatalf("got %d suppressed diagnostics, want %d:\n%s", len(supp), n, formatDiags(res.Diagnostics))
	}
	for _, d := range supp {
		if d.Reason == "" {
			t.Errorf("suppressed diagnostic at %s:%d has no reason", d.File, d.Line)
		}
	}
}

func formatDiags(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  ")
		b.WriteString(d.File)
		b.WriteString(": ")
		b.WriteString(d.Analyzer)
		b.WriteString(": ")
		b.WriteString(d.Message)
		if d.Suppressed {
			b.WriteString(" [suppressed]")
		}
		b.WriteString("\n")
	}
	return b.String()
}
