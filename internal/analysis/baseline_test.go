package analysis

import "testing"

// TestBaselineFingerprintPreventsSwap is the regression test for the
// fingerprinting fix: under the legacy (analyzer, file, message)
// count-absorb, fixing a baselined violation in one function while
// introducing the same-shaped violation in another function netted
// out to zero — the baseline silently migrated to cover the new bug.
// Fingerprints key on the enclosing function, so the swap surfaces.
func TestBaselineFingerprintPreventsSwap(t *testing.T) {
	const (
		file = "internal/core/x.go"
		msg  = "exact floating-point comparison (==) on sampled times; compare |a-b| against an epsilon"
	)
	recorded := []Diagnostic{{Analyzer: "floateq", File: file, Func: "oldOffender", Message: msg}}
	bl := FromDiagnostics(recorded)

	// The swap: oldOffender was fixed, newOffender picked up the
	// identical message in the same file.
	swapped := []Diagnostic{{Analyzer: "floateq", File: file, Func: "newOffender", Message: msg}}
	bl.absorb(swapped)
	if swapped[0].Baselined {
		t.Error("fingerprinted baseline absorbed a same-shaped finding from a different function (swap netted to zero)")
	}

	// The recorded shape itself still absorbs.
	same := []Diagnostic{{Analyzer: "floateq", File: file, Func: "oldOffender", Message: msg}}
	bl.absorb(same)
	if !same[0].Baselined {
		t.Error("fingerprinted baseline failed to absorb the exact recorded shape")
	}
}

// TestBaselineLegacyEntriesStillLoad: entries without a fingerprint
// (old baseline files) degrade to the per-key count-absorb so they
// keep working — with the documented blind spot the fingerprint fixes.
func TestBaselineLegacyEntriesStillLoad(t *testing.T) {
	const (
		file = "internal/core/x.go"
		msg  = "exact floating-point comparison (==)"
	)
	legacy := &Baseline{Entries: []BaselineEntry{{Analyzer: "floateq", File: file, Message: msg, Count: 1}}}
	ds := []Diagnostic{
		{Analyzer: "floateq", File: file, Func: "anyFunc", Message: msg},
		{Analyzer: "floateq", File: file, Func: "otherFunc", Message: msg},
	}
	legacy.absorb(ds)
	if !ds[0].Baselined {
		t.Error("legacy entry did not absorb by (analyzer, file, message)")
	}
	if ds[1].Baselined {
		t.Error("legacy entry absorbed more findings than its count records")
	}
}

// TestBaselineFingerprintWinsOverLegacy: when both entry kinds match,
// the fingerprint entry is consumed first, leaving the legacy count
// for findings the fingerprint cannot claim.
func TestBaselineFingerprintWinsOverLegacy(t *testing.T) {
	const (
		file = "internal/core/x.go"
		msg  = "exact floating-point comparison (==)"
	)
	bl := &Baseline{Entries: []BaselineEntry{
		{Analyzer: "floateq", File: file, Func: "pinned", Message: msg, Count: 1,
			Fingerprint: Fingerprint("floateq", file, "pinned", msg)},
		{Analyzer: "floateq", File: file, Message: msg, Count: 1},
	}}
	ds := []Diagnostic{
		{Analyzer: "floateq", File: file, Func: "pinned", Message: msg},
		{Analyzer: "floateq", File: file, Func: "drifter", Message: msg},
		{Analyzer: "floateq", File: file, Func: "third", Message: msg},
	}
	bl.absorb(ds)
	if !ds[0].Baselined || !ds[1].Baselined {
		t.Errorf("want fingerprint to claim the pinned finding and legacy the next, got %v %v", ds[0].Baselined, ds[1].Baselined)
	}
	if ds[2].Baselined {
		t.Error("absorbed beyond the recorded counts")
	}
}

// TestBaselineIgnoresInfoAndSuppressed: the ledger records gating debt
// only; advisories and in-source suppressions never consume counts.
func TestBaselineIgnoresInfoAndSuppressed(t *testing.T) {
	const (
		file = "internal/core/x.go"
		msg  = "some finding"
	)
	bl := FromDiagnostics([]Diagnostic{
		{Analyzer: "detreach", File: file, Func: "f", Message: msg, Severity: SeverityInfo},
		{Analyzer: "detreach", File: file, Func: "f", Message: msg, Suppressed: true},
	})
	if len(bl.Entries) != 0 {
		t.Fatalf("info/suppressed findings leaked into the baseline: %+v", bl.Entries)
	}
	ds := []Diagnostic{{Analyzer: "detreach", File: file, Func: "f", Message: msg, Severity: SeverityInfo}}
	(&Baseline{Entries: []BaselineEntry{{Analyzer: "detreach", File: file, Message: msg, Count: 1}}}).absorb(ds)
	if ds[0].Baselined {
		t.Error("baseline absorbed an info diagnostic; advisories never gate and never consume counts")
	}
}

// TestStackedDirectives: standalone directives for different analyzers
// stack above one statement and each covers the full statement span.
func TestStackedDirectives(t *testing.T) {
	res := runFixture(t, FloateqAnalyzer, nondetScope, "internal/core/fixture/stack.go", `package fixture

func Stacked(a, b float64) bool {
	//mpg:lint-ignore nondet unrelated analyzer stacked above the same statement
	//mpg:lint-ignore floateq demonstration fixture for stacked standalone directives
	x := a == b
	return x
}
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("stacked directive did not reach past its sibling:\n%s", formatDiags(out))
	}
	wantSuppressed(t, res, 1)
}

// TestCommaDirective: one directive naming several analyzers yields a
// suppression per name (the form every pruned call-graph boundary in
// the repo uses).
func TestCommaDirective(t *testing.T) {
	res := runFixture(t, HotPathPropAnalyzer, "mpgraph/internal/core/fixture", "internal/core/fixture/comma.go", `package fixture

//mpg:hotpath
func Root() {
	//mpg:lint-ignore hotpathprop,detreach shared out-of-band boundary
	observe()
}

func observe() { _ = make([]int, 4) }
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("comma directive did not suppress the named analyzer:\n%s", formatDiags(out))
	}
	// And the same fixture through detreach: the second name prunes
	// that analyzer's walk too.
	res2 := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

import "time"

func ReplayCompiled() {
	//mpg:lint-ignore hotpathprop,detreach shared out-of-band boundary
	observe()
}

func observe() { _ = time.Now() }
`)
	if out := res2.Outstanding(); len(out) != 0 {
		t.Fatalf("comma directive did not prune the second analyzer's walk:\n%s", formatDiags(out))
	}
}
