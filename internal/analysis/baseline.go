package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the committed debt ledger: diagnostics recorded here
// are reported but do not gate. The repo ships an *empty* baseline —
// the suite landed clean — so any entry added later is a visible,
// reviewable IOU. Matching is by (analyzer, file, message) with
// per-key counts, deliberately ignoring line numbers so unrelated
// edits above a baselined finding don't resurrect it.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one absorbed diagnostic shape. Count allows
// multiple identical findings in one file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline (the strict default), a malformed one is an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline as stable, diff-friendly JSON.
func (b *Baseline) Save(path string) error {
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// absorb marks diagnostics matched by the baseline, consuming counts
// so the baseline never hides more findings than it records.
func (b *Baseline) absorb(diags []Diagnostic) {
	remaining := map[string]int{}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		remaining[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	for i := range diags {
		d := &diags[i]
		if d.Suppressed {
			continue
		}
		k := baselineKey(d.Analyzer, d.File, d.Message)
		if remaining[k] > 0 {
			remaining[k]--
			d.Baselined = true
		}
	}
}

// FromDiagnostics builds a baseline absorbing every outstanding
// diagnostic in ds (suppressed ones are already handled in source).
func FromDiagnostics(ds []Diagnostic) *Baseline {
	counts := map[BaselineEntry]int{}
	for _, d := range ds {
		if d.Suppressed {
			continue
		}
		counts[BaselineEntry{Analyzer: d.Analyzer, File: d.File, Message: d.Message}]++
	}
	b := &Baseline{}
	for e, n := range counts {
		e.Count = n
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}
