package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the committed debt ledger: diagnostics recorded here
// are reported but do not gate. The repo ships an *empty* baseline —
// the suite landed clean — so any entry added later is a visible,
// reviewable IOU.
//
// Matching is by stable fingerprint: a hash of (analyzer, file,
// enclosing function, message), deliberately line-number-agnostic so
// unrelated edits above a baselined finding don't resurrect it, but
// function-keyed so fixing one violation while introducing a
// *different* one in the same file can never net out to zero.
// Entries without a fingerprint fall back to the legacy per-key
// count-absorb on (analyzer, file, message) — kept only so old
// baseline files keep loading; Fingerprint entries win first.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one absorbed diagnostic shape. Count allows
// multiple identical findings in one function (fingerprint entries)
// or file (legacy entries).
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	// Func is the enclosing function of the absorbed finding; part of
	// the fingerprint, recorded for review legibility.
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
	Count   int    `json:"count"`
	// Fingerprint is hex(sha256(analyzer|file|func|message))[:16].
	// Empty on legacy entries, which degrade to count-absorb keyed by
	// (analyzer, file, message) only.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Fingerprint computes the stable identity of a diagnostic shape.
func Fingerprint(analyzer, file, fn, message string) string {
	h := sha256.Sum256([]byte(analyzer + "\x00" + file + "\x00" + fn + "\x00" + message))
	return hex.EncodeToString(h[:8])
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline (the strict default), a malformed one is an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline as stable, diff-friendly JSON.
func (b *Baseline) Save(path string) error {
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	sortBaselineEntries(b.Entries)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortBaselineEntries(es []BaselineEntry) {
	sort.Slice(es, func(i, j int) bool {
		a, c := es[i], es[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Func != c.Func {
			return a.Func < c.Func
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
}

// absorb marks diagnostics matched by the baseline, consuming counts
// so the baseline never hides more findings than it records.
// Fingerprint entries match first (analyzer+file+function+message);
// legacy entries without a fingerprint count-absorb by (analyzer,
// file, message) afterwards. Info diagnostics never gate, so the
// baseline ignores them.
func (b *Baseline) absorb(diags []Diagnostic) {
	byFingerprint := map[string]int{}
	legacy := map[string]int{}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		if e.Fingerprint != "" {
			byFingerprint[e.Fingerprint] += n
		} else {
			legacy[baselineKey(e.Analyzer, e.File, e.Message)] += n
		}
	}
	for i := range diags {
		d := &diags[i]
		if d.Suppressed || d.Severity == SeverityInfo {
			continue
		}
		if fp := Fingerprint(d.Analyzer, d.File, d.Func, d.Message); byFingerprint[fp] > 0 {
			byFingerprint[fp]--
			d.Baselined = true
			continue
		}
		k := baselineKey(d.Analyzer, d.File, d.Message)
		if legacy[k] > 0 {
			legacy[k]--
			d.Baselined = true
		}
	}
}

// FromDiagnostics builds a fingerprinted baseline absorbing every
// outstanding diagnostic in ds (suppressed ones are already handled
// in source; info ones never gate).
func FromDiagnostics(ds []Diagnostic) *Baseline {
	counts := map[BaselineEntry]int{}
	for _, d := range ds {
		if d.Suppressed || d.Severity == SeverityInfo {
			continue
		}
		counts[BaselineEntry{Analyzer: d.Analyzer, File: d.File, Func: d.Func, Message: d.Message}]++
	}
	b := &Baseline{}
	for e, n := range counts {
		e.Count = n
		e.Fingerprint = Fingerprint(e.Analyzer, e.File, e.Func, e.Message)
		b.Entries = append(b.Entries, e)
	}
	sortBaselineEntries(b.Entries)
	return b
}
