package analysis

import (
	"fmt"
	"strings"
	"time"
)

// All returns the full analyzer suite in stable order: the four
// file-local analyzers from the original suite, then the three
// interprocedural analyzers layered on the call graph.
func All() []*Analyzer {
	return []*Analyzer{
		ConcDisciplineAnalyzer,
		DetReachAnalyzer,
		FloateqAnalyzer,
		HotPathAllocAnalyzer,
		HotPathPropAnalyzer,
		NondetAnalyzer,
		RNGPurityAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list against All.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Config controls one Run.
type Config struct {
	// Patterns are package patterns relative to the module root
	// ("./...", "./internal/core"). Default: "./...".
	Patterns []string
	// Analyzers defaults to All().
	Analyzers []*Analyzer
	// Baseline, when non-nil, absorbs known diagnostics.
	Baseline *Baseline
}

// StageTiming is one timed phase of a Run, for the linter
// self-benchmark (mpg-bench -lint).
type StageTiming struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// Result is the outcome of one Run: every diagnostic produced, with
// suppressed and baselined ones marked rather than dropped, so
// reports can show the full picture.
type Result struct {
	Diagnostics []Diagnostic
	// Packages is the number of packages analyzed.
	Packages int
	// Graph is the shared call graph, built at most once per run and
	// reused by every interprocedural analyzer (nil when no selected
	// analyzer needed it).
	Graph *CallGraph
	// Timings records the run's phases in execution order: "load"
	// (when Run loaded the packages), "callgraph" (when a graph was
	// built), then one entry per analyzer.
	Timings []StageTiming
}

// Outstanding returns the diagnostics that still gate: neither
// suppressed in source, absorbed by the baseline, nor info-severity.
func (r *Result) Outstanding() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed && !d.Baselined && d.Severity != SeverityInfo {
			out = append(out, d)
		}
	}
	return out
}

// Run loads the packages under the module enclosing dir and applies
// the configured analyzers.
func Run(dir string, cfg Config) (*Result, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	loadMs := float64(time.Since(start)) / float64(time.Millisecond)
	res, err := RunPackages(pkgs, cfg)
	if err != nil {
		return nil, err
	}
	res.Timings = append([]StageTiming{{Name: "load", Ms: loadMs}}, res.Timings...)
	return res, nil
}

// RunPackages applies the configured analyzers to already-loaded
// packages (the seam fixture tests use). The call graph, when any
// selected analyzer declares RunModule, is built exactly once and
// shared across all of them.
func RunPackages(pkgs []*Package, cfg Config) (*Result, error) {
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	var timings []StageTiming
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule != nil && graph == nil {
			start := time.Now()
			graph = BuildCallGraph(pkgs)
			timings = append(timings, StageTiming{Name: "callgraph", Ms: float64(time.Since(start)) / float64(time.Millisecond)})
		}
	}
	for _, a := range analyzers {
		start := time.Now()
		if a.RunModule != nil {
			a.RunModule(&ModulePass{
				Analyzer: a,
				Pkgs:     pkgs,
				Graph:    graph,
				report:   report,
			})
		} else {
			for _, pkg := range pkgs {
				if !a.appliesTo(pkg.ImportPath) {
					continue
				}
				a.Run(&Pass{Analyzer: a, Pkg: pkg, report: report})
			}
		}
		timings = append(timings, StageTiming{Name: a.Name, Ms: float64(time.Since(start)) / float64(time.Millisecond)})
	}
	for _, pkg := range pkgs {
		diags = append(diags, directiveDiagnostics(pkg, analyzers)...)
	}
	applySuppressions(pkgs, diags)
	if cfg.Baseline != nil {
		cfg.Baseline.absorb(diags)
	}
	sortDiagnostics(diags)
	return &Result{Diagnostics: diags, Packages: len(pkgs), Graph: graph, Timings: timings}, nil
}

// directiveDiagnostics validates //mpg:lint-ignore directives
// themselves: a directive must name a known analyzer and carry a
// reason — an unexplained suppression is a finding in its own right.
func directiveDiagnostics(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectiveIgnore) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, DirectiveIgnore))
				names, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if names == "" {
					out = append(out, Diagnostic{
						Analyzer: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "mpg:lint-ignore names no analyzer",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					switch {
					case name == "":
						out = append(out, Diagnostic{
							Analyzer: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: "mpg:lint-ignore has an empty analyzer name in its list",
						})
					case !known[name]:
						out = append(out, Diagnostic{
							Analyzer: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("mpg:lint-ignore names unknown analyzer %q", name),
						})
					case strings.TrimSpace(reason) == "":
						out = append(out, Diagnostic{
							Analyzer: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("mpg:lint-ignore %s carries no reason; justify the suppression", name),
						})
					}
				}
			}
		}
	}
	return out
}

// applySuppressions marks diagnostics covered by //mpg:lint-ignore
// directives in the analyzed files.
func applySuppressions(pkgs []*Package, diags []Diagnostic) {
	supp := map[string][]suppression{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			supp[name] = collectSuppressions(pkg.Fset, f)
		}
	}
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == "directive" {
			continue // directives cannot suppress their own validation
		}
		for j := range supp[d.File] {
			s := &supp[d.File][j]
			if s.analyzer != d.Analyzer || s.reason == "" {
				continue
			}
			if d.Line >= s.firstLine && d.Line <= s.lastLine {
				d.Suppressed = true
				d.Reason = s.reason
				s.used = true
				break
			}
		}
	}
}

// countVisibleSuppressed is a small helper for reports.
func countVisibleSuppressed(ds []Diagnostic) (suppressed, baselined int) {
	for _, d := range ds {
		if d.Suppressed {
			suppressed++
		}
		if d.Baselined {
			baselined++
		}
	}
	return
}
