package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Whole-module call graph.
//
// The interprocedural analyzers (hotpathprop, detreach,
// concdiscipline) need to reason about what the replay kernels
// *reach*, not just what their bodies contain. BuildCallGraph
// resolves every call site in the loaded packages to one of three
// edge kinds:
//
//   - static: the callee is a declared function or method of the
//     module, resolved through go/types — direct calls, method calls
//     on concrete receiver types (including methods promoted through
//     embedding), and cross-package calls all land here;
//   - external: the callee lives outside the module (stdlib or
//     third-party; the lenient loader stubs those packages), so only
//     its import path and name are known — the graph cannot descend
//     into it, and each analyzer decides which external packages are
//     benign (math, sort) and which are findings (fmt, time.Now);
//   - unknown: the callee cannot be named at all — interface method
//     calls, calls through function-typed values (including method
//     values), and calls whose type information the lenient checker
//     dropped. Unknown edges taint: an analyzer that proves a
//     property by reachability must treat them as "anything could
//     happen here", never silently drop them.
//
// Soundness note: the graph covers *calls only*. Taking a function or
// method value creates no edge at the use site; the later call
// through the value is an unknown edge at the call site, which is
// where the conservatism lands. Dead edges (calls behind
// unreachable branches) are included — the graph over-approximates.

// EdgeKind classifies a call edge's resolution.
type EdgeKind uint8

const (
	// EdgeStatic resolves to a module function with a known body.
	EdgeStatic EdgeKind = iota
	// EdgeExternal names a function outside the module (ExtPkg,
	// ExtName); no body is available.
	EdgeExternal
	// EdgeUnknown is a dynamic call: interface dispatch, a
	// function-typed value, or lost type information.
	EdgeUnknown
)

// CallEdge is one call site in a function body.
type CallEdge struct {
	Kind   EdgeKind
	Callee *FuncNode // non-nil iff Kind == EdgeStatic
	// ExtPkg/ExtName identify an external callee ("time", "Now").
	ExtPkg  string
	ExtName string
	// Site is the call expression's position (the suppression line
	// for edge pruning).
	Site token.Pos
}

// Target renders the edge's callee for diagnostics.
func (e *CallEdge) Target() string {
	switch e.Kind {
	case EdgeStatic:
		return e.Callee.Name
	case EdgeExternal:
		return path.Base(e.ExtPkg) + "." + e.ExtName
	}
	return "dynamic callee"
}

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	// Obj is the type-checker object keying the node.
	Obj *types.Func
	// Decl is the syntax, in Pkg. Function literals contribute their
	// bodies (and edges) to the enclosing declaration.
	Decl *ast.FuncDecl
	Pkg  *Package
	// Name is the display name: "core.ReplayCompiled",
	// "dist.(*RNG).Uint64".
	Name string
	// HotPath reports the //mpg:hotpath doc directive.
	HotPath bool
	// Calls lists the node's outgoing edges in source order.
	Calls []CallEdge
}

// CallGraph is the module-wide call graph plus the per-file
// suppression index the interprocedural analyzers use for edge
// pruning.
type CallGraph struct {
	// Nodes maps every declared module function to its node.
	Nodes map[*types.Func]*FuncNode
	// Funcs is Nodes' values sorted by Name for deterministic walks.
	Funcs []*FuncNode
	// UnknownCalls counts unresolved (dynamic) edges, for the
	// self-benchmark's conservatism trend line.
	UnknownCalls int

	supp map[string][]suppression // per display filename, for edge pruning
}

// NodeByName resolves a display name ("core.ReplayCompiled") to its
// node, or nil.
func (g *CallGraph) NodeByName(name string) *FuncNode {
	for _, n := range g.Funcs {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// EdgeCount returns the total number of edges of the given kind.
func (g *CallGraph) EdgeCount(kind EdgeKind) int {
	total := 0
	for _, n := range g.Funcs {
		for i := range n.Calls {
			if n.Calls[i].Kind == kind {
				total++
			}
		}
	}
	return total
}

// edgePruned reports whether an //mpg:lint-ignore directive for the
// given analyzer covers the edge's call-site line. A pruned edge is
// excluded from that analyzer's reachability closure: the suppression
// reason justifies the whole subtree behind the call, which is how a
// documented boundary (an out-of-band metrics call, a caller-provided
// hook) stops transitive findings without suppressions in every
// function behind it.
func (g *CallGraph) edgePruned(analyzer string, pkg *Package, site token.Pos) (reason string, pruned bool) {
	pos := pkg.Fset.Position(site)
	for _, s := range g.supp[pos.Filename] {
		if s.analyzer == analyzer && s.reason != "" &&
			pos.Line >= s.firstLine && pos.Line <= s.lastLine {
			return s.reason, true
		}
	}
	return "", false
}

// displayName renders a node name from the type-checker object:
// package base name, receiver type if any, function name.
func displayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		if n, ok := rt.(*types.Named); ok {
			name = "(" + ptr + n.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return path.Base(fn.Pkg().Path()) + "." + name
	}
	return name
}

// BuildCallGraph resolves the static call graph over the loaded
// packages. Only calls appearing in the given packages produce edges;
// a callee declared in a module package outside the load set still
// resolves as a static edge but has no body edges of its own.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes: map[*types.Func]*FuncNode{},
		supp:  map[string][]suppression{},
	}
	// Pass 1: a node per function declaration (so forward and
	// cross-package references resolve), plus the suppression index.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			g.supp[pkg.Fset.Position(f.Pos()).Filename] = collectSuppressions(pkg.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue // lenient checker gave up on the declaration
				}
				g.Nodes[obj] = &FuncNode{
					Obj:     obj,
					Decl:    fd,
					Pkg:     pkg,
					Name:    displayName(obj),
					HotPath: hasHotPathDirective(fd),
				}
			}
		}
	}
	// Pass 2: edges. Function literals attribute their calls to the
	// enclosing declaration — a closure runs on its creator's stack of
	// responsibility as far as reachability is concerned.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := g.Nodes[obj]
				if node == nil {
					continue
				}
				closures := localClosureVars(pkg, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if edge, ok := resolveCall(pkg, call, g.Nodes, closures); ok {
						if edge.Kind == EdgeUnknown {
							g.UnknownCalls++
						}
						node.Calls = append(node.Calls, edge)
					}
					return true
				})
			}
		}
	}
	g.Funcs = make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		g.Funcs = append(g.Funcs, n)
	}
	sort.Slice(g.Funcs, func(i, j int) bool {
		if g.Funcs[i].Name != g.Funcs[j].Name {
			return g.Funcs[i].Name < g.Funcs[j].Name
		}
		// Same display name (e.g. methods on same-named receivers in
		// different packages): order by position for determinism.
		return g.Funcs[i].Decl.Pos() < g.Funcs[j].Decl.Pos()
	})
	return g
}

// localClosureVars finds the variables in body that hold exactly one
// function literal and are never reassigned or address-taken: a call
// through such a variable is a call to that literal, whose edges are
// already attributed to the enclosing declaration, so it resolves
// instead of tainting as dynamic (the `adopt := func(...){...}` kernel
// idiom would otherwise make every kernel unprovable).
func localClosureVars(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	candidate := map[types.Object]bool{}
	tainted := map[types.Object]bool{}
	bind := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			return
		}
		if _, isLit := rhs.(*ast.FuncLit); isLit {
			candidate[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					bind(x.Lhs[i], x.Rhs[i])
				}
				return true
			}
			// Reassignment kills the single-binding guarantee.
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						tainted[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					bind(x.Names[i], x.Values[i])
				}
			}
		case *ast.UnaryExpr:
			// Address-taken: the variable can be rebound through the
			// pointer.
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						tainted[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj := range tainted {
		delete(candidate, obj)
	}
	return candidate
}

// resolveCall classifies one call expression. Returns ok=false for
// non-calls that parse as CallExpr: type conversions and builtins
// (make, len, append — the file-local analyzers handle those).
func resolveCall(pkg *Package, call *ast.CallExpr, nodes map[*types.Func]*FuncNode, closures map[types.Object]bool) (CallEdge, bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](x) — resolve the underlying ident.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := pkg.Info.Types[idx.X]; ok && !tv.IsType() {
			fun = idx.X
		}
	case *ast.IndexListExpr:
		fun = idx.X
	}
	// A conversion is not a call.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return CallEdge{}, false
	}
	switch x := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[x].(type) {
		case *types.Builtin:
			return CallEdge{}, false
		case *types.TypeName:
			return CallEdge{}, false
		case *types.Func:
			return staticOrExternal(obj, nodes, call.Lparen), true
		case nil:
			// Unresolved bare identifier: the lenient checker lost it
			// (or it is a shadowed builtin). Conservatively unknown.
			return CallEdge{Kind: EdgeUnknown, Site: call.Lparen}, true
		default:
			if closures[obj] {
				// Single-assignment local closure: its literal's body is
				// already attributed to the enclosing declaration.
				return CallEdge{}, false
			}
			// A variable of function type: dynamic call.
			return CallEdge{Kind: EdgeUnknown, Site: call.Lparen}, true
		}
	case *ast.SelectorExpr:
		// pkg.Fn(...) — qualified call into another package.
		if qual, ok := x.X.(*ast.Ident); ok {
			if pkgPath, ok := pkg.pkgPathOf(qual); ok {
				if obj, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
					return staticOrExternal(obj, nodes, call.Lparen), true
				}
				// Stubbed external package: name is all we have.
				return CallEdge{Kind: EdgeExternal, ExtPkg: pkgPath, ExtName: x.Sel.Name, Site: call.Lparen}, true
			}
		}
		// expr.Method(...) — resolve through the selection.
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return CallEdge{Kind: EdgeUnknown, Site: call.Lparen}, true
			}
			if m, ok := sel.Obj().(*types.Func); ok {
				return staticOrExternal(m, nodes, call.Lparen), true
			}
		}
		// Field of function type, or a selection on a stub-typed value
		// (e.g. a sync.Pool field): dynamic.
		return CallEdge{Kind: EdgeUnknown, Site: call.Lparen}, true
	case *ast.FuncLit:
		// Immediately-invoked literal: its body's edges are already
		// attributed to the enclosing declaration.
		return CallEdge{}, false
	}
	return CallEdge{Kind: EdgeUnknown, Site: call.Lparen}, true
}

// staticOrExternal wires an edge to a module node when the resolved
// function has one, and an external edge otherwise.
func staticOrExternal(obj *types.Func, nodes map[*types.Func]*FuncNode, site token.Pos) CallEdge {
	if n, ok := nodes[obj]; ok {
		return CallEdge{Kind: EdgeStatic, Callee: n, Site: site}
	}
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return CallEdge{Kind: EdgeExternal, ExtPkg: pkgPath, ExtName: obj.Name(), Site: site}
}

// ReachStep records how a node entered a reachability closure: the
// caller and the edge used, for call-chain reconstruction.
type ReachStep struct {
	From *FuncNode
	Edge *CallEdge
}

// Reach computes the closure of the roots over static edges,
// breadth-first (so recorded chains are shortest), in deterministic
// order. Edges covered by an //mpg:lint-ignore directive for the
// given analyzer at their call-site line are pruned: the pruned
// callback (if non-nil) observes each such edge once, and traversal
// does not descend through it. Roots map to a zero ReachStep.
func (g *CallGraph) Reach(analyzer string, roots []*FuncNode,
	pruned func(from *FuncNode, edge *CallEdge, reason string)) map[*FuncNode]ReachStep {
	visited := map[*FuncNode]ReachStep{}
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := visited[r]; !ok {
			visited[r] = ReachStep{}
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for i := range n.Calls {
			e := &n.Calls[i]
			if e.Kind != EdgeStatic {
				continue
			}
			if _, ok := visited[e.Callee]; ok {
				continue
			}
			if reason, p := g.edgePruned(analyzer, n.Pkg, e.Site); p {
				if pruned != nil {
					pruned(n, e, reason)
				}
				continue
			}
			visited[e.Callee] = ReachStep{From: n, Edge: e}
			queue = append(queue, e.Callee)
		}
	}
	return visited
}

// Chain reconstructs the call chain from a root to node as
// "root → ... → node".
func Chain(visited map[*FuncNode]ReachStep, node *FuncNode) string {
	var names []string
	for n := node; n != nil; {
		names = append(names, n.Name)
		step, ok := visited[n]
		if !ok || step.From == nil {
			break
		}
		n = step.From
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}
