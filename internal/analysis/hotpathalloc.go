package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAllocAnalyzer enforces the allocation budget of functions
// annotated //mpg:hotpath. The compiled replay loop owes its ~12
// allocs/replay (BENCH_replay.json, AllocsPerRun guards) to every
// buffer being pooled or preallocated; one stray literal or append in
// a kernel silently multiplies by the number of Monte Carlo trials.
// The analyzer is deliberately stricter than the optimizer — a
// construct the escape analyzer would stack-allocate still needs an
// explicit suppression, which doubles as documentation of the alloc
// budget and is pinned by the corresponding AllocsPerRun test.
//
// Inside an annotated function it flags:
//
//   - make/new calls and &composite-literal (heap allocations);
//   - slice and map composite literals (allocate backing storage) —
//     plain struct *value* literals stay legal;
//   - append calls (growth may allocate; preallocate capacity or
//     justify via suppression);
//   - function literals (closure environments may allocate);
//   - fmt.* calls (allocate and box through interfaces);
//   - implicit boxing: a non-pointer concrete value passed to an
//     interface parameter or assigned to an interface variable.
var HotPathAllocAnalyzer = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbids allocating constructs inside functions annotated //mpg:hotpath",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotPathDirective(fn) {
				continue
			}
			checkHotBody(pass, fn)
		}
	}
}

func checkHotBody(pass *Pass, fn *ast.FuncDecl) {
	skipComposite := map[*ast.CompositeLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Report(x.Pos(), "closure in hot path %s: the environment may be heap-allocated; hoist to a method or suppress with an AllocsPerRun-backed justification", fn.Name.Name)
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if cl, ok := x.X.(*ast.CompositeLit); ok {
					skipComposite[cl] = true
					pass.Report(x.Pos(), "&composite literal in hot path %s escapes to the heap", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if skipComposite[x] {
				return true
			}
			t := pass.Pkg.typeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Report(x.Pos(), "%s literal in hot path %s allocates backing storage", kindWord(t), fn.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, x)
		case *ast.AssignStmt:
			checkHotBoxingAssign(pass, fn, x)
		}
		return true
	})
}

func kindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	switch {
	case pass.Pkg.isBuiltin(call, "make"):
		pass.Report(call.Pos(), "make in hot path %s allocates; preallocate in the pooled state and reuse", fn.Name.Name)
		return
	case pass.Pkg.isBuiltin(call, "new"):
		pass.Report(call.Pos(), "new in hot path %s allocates; preallocate in the pooled state and reuse", fn.Name.Name)
		return
	case pass.Pkg.isBuiltin(call, "append"):
		pass.Report(call.Pos(), "append in hot path %s may grow its backing array; preallocate capacity (three-index slice from pooled backing) or suppress with justification", fn.Name.Name)
		return
	}
	if p, name, ok := pass.Pkg.callTarget(call); ok && p == "fmt" {
		pass.Report(call.Pos(), "fmt.%s in hot path %s allocates and boxes its operands", name, fn.Name.Name)
		return
	}
	checkHotBoxingCall(pass, fn, call)
}

// checkHotBoxingCall flags non-pointer concrete arguments passed to
// interface parameters (implicit boxing allocates; pointers fit in
// the interface word and do not).
func checkHotBoxingCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	ft := pass.Pkg.typeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(pass, arg) {
			pass.Report(arg.Pos(), "implicit interface conversion in hot path %s boxes a value on the heap; pass a pointer or restructure", fn.Name.Name)
		}
	}
}

// checkHotBoxingAssign flags assignments of non-pointer concrete
// values to interface-typed destinations.
func checkHotBoxingAssign(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		lt := pass.Pkg.typeOf(lhs)
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		if boxes(pass, as.Rhs[i]) {
			pass.Report(as.Rhs[i].Pos(), "implicit interface conversion in hot path %s boxes a value on the heap; store a pointer instead", fn.Name.Name)
		}
	}
}

// boxes reports whether assigning e to an interface would heap-box
// it: a concrete non-pointer, non-interface, non-nil value. Small
// integer constants (the runtime's staticuint64s) are still reported:
// the hot path should not rely on that cache.
func boxes(pass *Pass, e ast.Expr) bool {
	t := pass.Pkg.typeOf(e)
	if t == nil {
		return false
	}
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.IsNil() {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}
