package analysis

import (
	"strings"
	"testing"
)

// The detreach fixtures type-check under the real root import path
// and filenames, because rooting is exact: ReplayCompiled in
// mpgraph/internal/core, or any function declared in
// internal/core/compute.go.

func TestDetReachWallClock(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

import "time"

func ReplayCompiled() int64 { return helper() }

func helper() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }
`)
	wantOutstanding(t, res, "core.ReplayCompiled → core.helper → core.stamp: time.Now on a replay-reachable path")
}

func TestDetReachGlobalRand(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

import "math/rand"

func ReplayBatch() float64 { return jitter() }

func jitter() float64 { return rand.Float64() }
`)
	wantOutstanding(t, res, "core.ReplayBatch → core.jitter: math/rand.Float64 on a replay-reachable path; randomness must flow through seeded mpgraph/internal/dist generators")
}

func TestDetReachMapRange(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

func ReplayParallel(m map[int]float64) float64 {
	return total(m)
}

func total(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
`)
	wantOutstanding(t, res, "core.ReplayParallel → core.total: map iteration order is nondeterministic on a replay-reachable path")
}

func TestDetReachPackageLevelWrite(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

var replayCount int

func ReplayCompiled() {
	replayCount++
	bump()
}

func bump() { replayCount = replayCount + 1 }
`)
	wantOutstanding(t, res,
		"core.ReplayCompiled: write to package-level variable replayCount on a replay-reachable path",
		"core.ReplayCompiled → core.bump: write to package-level variable replayCount on a replay-reachable path",
	)
}

// TestDetReachComputeFileRoots: every function declared in
// internal/core/compute.go is a root by file, with no name matching.
func TestDetReachComputeFileRoots(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/compute.go", `package core

import "time"

func anyKernel() int64 { return time.Now().UnixNano() }
`)
	wantOutstanding(t, res, "core.anyKernel: time.Now on a replay-reachable path")
}

// TestDetReachOracleRoots: the baseline DES oracle is rooted too —
// a nondeterministic oracle would silently vouch for a broken replay.
func TestDetReachOracleRoots(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/baseline", "internal/baseline/det_fixture.go", `package baseline

import "time"

func Replay() int64 { return time.Now().UnixNano() }
`)
	wantOutstanding(t, res, "baseline.Replay: time.Now on a replay-reachable path")
}

// TestDetReachDynamicCallIsAdvisory: unverifiable dispatch surfaces at
// info severity — visible, never gating. This is detreach's documented
// conservatism trade-off (hotpathprop gates on the same edge shape).
func TestDetReachDynamicCallIsAdvisory(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

type hook interface{ observe(float64) }

func ReplayCompiled(h hook) { h.observe(1) }
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("dynamic calls must advise, not gate:\n%s", formatDiags(out))
	}
	var infos int
	for _, d := range res.Diagnostics {
		if d.Severity == SeverityInfo && strings.Contains(d.Message, "determinism cannot be verified through it") {
			infos++
		}
	}
	if infos != 1 {
		t.Errorf("want one dynamic-call advisory, got %d:\n%s", infos, formatDiags(res.Diagnostics))
	}
}

// TestDetReachEdgePrune: a justified directive vouches for the
// subtree; the walk stops there with a suppressed audit entry.
func TestDetReachEdgePrune(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

import "time"

func ReplayCompiled() {
	//mpg:lint-ignore detreach out-of-band metrics boundary; timestamps never feed back into replay results
	recordWallClock()
}

func recordWallClock() { _ = time.Now() }
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("pruned subtree still gates:\n%s", formatDiags(out))
	}
	var audits int
	for _, d := range res.Diagnostics {
		if d.Suppressed && strings.Contains(d.Message, "determinism verification stops at the call to core.recordWallClock") {
			audits++
		}
	}
	if audits != 1 {
		t.Errorf("want one suppressed boundary audit, got %d:\n%s", audits, formatDiags(res.Diagnostics))
	}
}

// TestDetReachUnreachableIsSilent: the same violations outside the
// replay closure are not detreach's findings (the file-local nondet
// analyzer owns its statically scoped packages).
func TestDetReachUnreachableIsSilent(t *testing.T) {
	res := runFixture(t, DetReachAnalyzer, "mpgraph/internal/core", "internal/core/det_fixture.go", `package core

import "time"

func unreachableTool() int64 { return time.Now().UnixNano() }
`)
	if out := res.Outstanding(); len(out) != 0 {
		t.Fatalf("function outside the replay closure must not gate:\n%s", formatDiags(out))
	}
}
